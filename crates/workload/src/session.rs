//! Client-session models for monotonic reads (§3.2).
//!
//! PBS monotonic reads is k-staleness with `k = 1 + γgw/γcr`: the expected
//! number of versions written globally between a client's consecutive reads
//! of the same key, plus one. This module generates interleaved
//! global-write / client-read timelines and measures that `k` empirically,
//! so the closed form can be validated and applied to measured rates.

use rand::Rng;
use rand::RngCore;

/// A single-key session model: one client reading at rate `γcr` while the
/// world writes at rate `γgw` (both Poisson).
#[derive(Debug, Clone, Copy)]
pub struct SessionModel {
    /// Global write rate to the key (ops/ms).
    pub gamma_gw: f64,
    /// Client read rate from the key (ops/ms).
    pub gamma_cr: f64,
}

/// One client read in a generated session timeline.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct SessionRead {
    /// Read time (ms).
    pub at_ms: f64,
    /// Number of globally committed versions at this time.
    pub version_at_read: u64,
    /// Versions committed since this client's previous read (the empirical
    /// `γgw/γcr` increment; `k = 1 +` this value).
    pub versions_since_last_read: u64,
}

impl SessionModel {
    /// Build from positive rates.
    pub fn new(gamma_gw: f64, gamma_cr: f64) -> Self {
        assert!(gamma_gw > 0.0 && gamma_cr > 0.0, "rates must be positive");
        Self { gamma_gw, gamma_cr }
    }

    /// The monotonic-reads staleness exponent `k = 1 + γgw/γcr` (Eq. 3).
    pub fn k(&self) -> f64 {
        1.0 + self.gamma_gw / self.gamma_cr
    }

    /// Generate a timeline of `reads` client reads interleaved with global
    /// writes, both Poisson.
    pub fn generate(&self, rng: &mut dyn RngCore, reads: usize) -> Vec<SessionRead> {
        assert!(reads > 0);
        let mut out = Vec::with_capacity(reads);
        let mut version = 0u64;
        let mut last_version = 0u64;
        let mut t = 0.0f64;
        let mut next_write = t + exp_gap(rng, self.gamma_gw);
        let mut next_read = t + exp_gap(rng, self.gamma_cr);
        while out.len() < reads {
            if next_write <= next_read {
                t = next_write;
                version += 1;
                next_write = t + exp_gap(rng, self.gamma_gw);
            } else {
                t = next_read;
                out.push(SessionRead {
                    at_ms: t,
                    version_at_read: version,
                    versions_since_last_read: version - last_version,
                });
                last_version = version;
                next_read = t + exp_gap(rng, self.gamma_cr);
            }
        }
        out
    }

    /// Empirical mean of `1 + versions_since_last_read` over a generated
    /// timeline — converges to [`k`](Self::k).
    pub fn empirical_k(&self, rng: &mut dyn RngCore, reads: usize) -> f64 {
        let timeline = self.generate(rng, reads);
        let total: u64 = timeline.iter().map(|r| r.versions_since_last_read).sum();
        1.0 + total as f64 / reads as f64
    }
}

fn exp_gap(rng: &mut dyn RngCore, rate: f64) -> f64 {
    let u: f64 = rng.gen::<f64>().max(f64::MIN_POSITIVE);
    -u.ln() / rate
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn k_formula() {
        let s = SessionModel::new(4.0, 1.0);
        assert!((s.k() - 5.0).abs() < 1e-12);
        let s = SessionModel::new(1.0, 10.0);
        assert!((s.k() - 1.1).abs() < 1e-12);
    }

    #[test]
    fn timeline_versions_monotone() {
        let s = SessionModel::new(0.5, 0.5);
        let mut rng = StdRng::seed_from_u64(1);
        let reads = s.generate(&mut rng, 500);
        assert_eq!(reads.len(), 500);
        for w in reads.windows(2) {
            assert!(w[1].at_ms > w[0].at_ms);
            assert!(w[1].version_at_read >= w[0].version_at_read);
        }
    }

    #[test]
    fn empirical_k_matches_closed_form() {
        for (gw, cr) in [(1.0f64, 1.0f64), (4.0, 1.0), (0.5, 2.0)] {
            let s = SessionModel::new(gw, cr);
            let mut rng = StdRng::seed_from_u64(7);
            let emp = s.empirical_k(&mut rng, 100_000);
            assert!(
                (emp - s.k()).abs() / s.k() < 0.03,
                "γgw={gw} γcr={cr}: empirical {emp} vs {}",
                s.k()
            );
        }
    }

    #[test]
    fn versions_since_last_read_accounting() {
        let s = SessionModel::new(1.0, 1.0);
        let mut rng = StdRng::seed_from_u64(3);
        let reads = s.generate(&mut rng, 1000);
        // Sum of increments equals the version at the last read.
        let total: u64 = reads.iter().map(|r| r.versions_since_last_read).sum();
        assert_eq!(total, reads.last().unwrap().version_at_read);
    }
}
