//! Key-popularity models.
//!
//! Each key has its own quorum system (§2.2), so the per-key write rate —
//! set by popularity — determines that key's γgw and its monotonic-reads
//! behaviour (§3.2).
//!
//! [`Zipf`] draws in O(1) time and O(1) memory via rejection-inversion
//! sampling, so key universes of hundreds of millions are fine; the
//! table-based [`ZipfCdf`] is kept as the exact property-test oracle for
//! small universes.

use rand::Rng;
use rand::RngCore;

/// Chooses which key an operation targets.
pub trait KeyChooser: Send + Sync {
    /// Number of distinct keys.
    fn key_count(&self) -> u64;

    /// Sample a key id in `0..key_count()`.
    fn choose(&self, rng: &mut dyn RngCore) -> u64;
}

/// Uniform popularity over `count` keys.
#[derive(Debug, Clone, Copy)]
pub struct UniformKeys {
    count: u64,
}

impl UniformKeys {
    /// Uniform over `count ≥ 1` keys.
    pub fn new(count: u64) -> Self {
        assert!(count >= 1);
        Self { count }
    }
}

impl KeyChooser for UniformKeys {
    fn key_count(&self) -> u64 {
        self.count
    }

    fn choose(&self, rng: &mut dyn RngCore) -> u64 {
        rng.gen_range(0..self.count)
    }
}

/// Zipf-distributed popularity: key `i` (0-based rank) has probability
/// proportional to `1/(i+1)^s`.
///
/// Sampling is rejection-inversion over the hazard integral
/// (Hörmann & Derflinger 1996): O(1) expected time per draw with **no
/// precomputed table**, so the key universe is bounded only by `u64` —
/// this is the construction path for the realistic-scale sweeps (tens of
/// millions of keys and up). For small universes where an exact PMF is
/// needed, [`ZipfCdf`] remains the oracle.
#[derive(Debug, Clone, Copy)]
pub struct Zipf {
    count: u64,
    s: f64,
    /// `H(1.5) − 1` — the left edge of the inversion domain.
    h_x1: f64,
    /// `H(count + 0.5)` — the right edge of the inversion domain.
    h_n: f64,
    /// Acceptance shortcut: draws with `k − x ≤ dd` skip the exact test.
    dd: f64,
}

/// The hazard integral `H(x) = ∫ t^−s dt` (antiderivative of the
/// unnormalised density), continuous in `s` through `s = 1`.
fn h_integral(x: f64, s: f64) -> f64 {
    if s == 1.0 {
        x.ln()
    } else {
        (x.powf(1.0 - s) - 1.0) / (1.0 - s)
    }
}

/// Inverse of [`h_integral`].
fn h_integral_inv(v: f64, s: f64) -> f64 {
    if s == 1.0 {
        v.exp()
    } else {
        (1.0 + v * (1.0 - s)).max(0.0).powf(1.0 / (1.0 - s))
    }
}

/// The unnormalised density `h(x) = x^−s`.
fn h(x: f64, s: f64) -> f64 {
    x.powf(-s)
}

impl Zipf {
    /// Build over `count ≥ 1` keys with exponent `s ≥ 0` (0 = uniform,
    /// ~1 = classic web-like skew). No size cap: construction is O(1).
    pub fn new(count: u64, s: f64) -> Self {
        assert!(count >= 1, "need at least one key");
        assert!(s >= 0.0 && s.is_finite(), "exponent must be finite and nonnegative");
        let h_x1 = h_integral(1.5, s) - 1.0;
        let h_n = h_integral(count as f64 + 0.5, s);
        let dd = 2.0 - h_integral_inv(h_integral(2.5, s) - h(2.0, s), s);
        Self { count, s, h_x1, h_n, dd }
    }
}

impl KeyChooser for Zipf {
    fn key_count(&self) -> u64 {
        self.count
    }

    fn choose(&self, rng: &mut dyn RngCore) -> u64 {
        loop {
            let u = self.h_n + rng.gen::<f64>() * (self.h_x1 - self.h_n);
            let x = h_integral_inv(u, self.s);
            let k = x.round().clamp(1.0, self.count as f64);
            // Accept when k is within the guaranteed-acceptance band of x,
            // or when the exact majorising test passes.
            if k - x <= self.dd || u >= h_integral(k + 0.5, self.s) - h(k, self.s) {
                return k as u64 - 1;
            }
        }
    }
}

/// Exact table-based Zipf: precomputed CDF plus binary search, O(n) build
/// and O(log n) per draw. Capped at 16M keys; kept as the property-test
/// oracle for [`Zipf`]'s rejection-inversion path (exact [`pmf`]
/// evaluation needs the normalising constant, which is inherently O(n)).
///
/// [`pmf`]: ZipfCdf::pmf
#[derive(Debug, Clone)]
pub struct ZipfCdf {
    cdf: Vec<f64>,
}

impl ZipfCdf {
    /// Build over `count ≥ 1` keys with exponent `s ≥ 0` (0 = uniform,
    /// ~1 = classic web-like skew).
    pub fn new(count: u64, s: f64) -> Self {
        assert!((1..=16_000_000).contains(&count), "key universe too large for CDF table");
        assert!(s >= 0.0 && s.is_finite());
        let mut cdf = Vec::with_capacity(count as usize);
        let mut acc = 0.0;
        for i in 0..count {
            acc += 1.0 / ((i + 1) as f64).powf(s);
            cdf.push(acc);
        }
        let total = acc;
        for v in &mut cdf {
            *v /= total;
        }
        Self { cdf }
    }

    /// Probability of the given key rank.
    pub fn pmf(&self, key: u64) -> f64 {
        let i = key as usize;
        assert!(i < self.cdf.len());
        if i == 0 {
            self.cdf[0]
        } else {
            self.cdf[i] - self.cdf[i - 1]
        }
    }

    /// Cumulative probability of ranks `0..=key`.
    pub fn cdf(&self, key: u64) -> f64 {
        self.cdf[key as usize]
    }
}

impl KeyChooser for ZipfCdf {
    fn key_count(&self) -> u64 {
        self.cdf.len() as u64
    }

    fn choose(&self, rng: &mut dyn RngCore) -> u64 {
        let u: f64 = rng.gen();
        self.cdf.partition_point(|&c| c < u) as u64
    }
}

/// Hot-set popularity: a fraction of operations target a small hot subset
/// uniformly; the rest spread over the cold keys.
#[derive(Debug, Clone, Copy)]
pub struct HotSet {
    count: u64,
    hot_keys: u64,
    hot_fraction: f64,
}

impl HotSet {
    /// `hot_fraction` of draws land uniformly in keys `0..hot_keys`; the
    /// remainder lands uniformly in `hot_keys..count`.
    pub fn new(count: u64, hot_keys: u64, hot_fraction: f64) -> Self {
        assert!(count >= 2 && hot_keys >= 1 && hot_keys < count);
        assert!((0.0..=1.0).contains(&hot_fraction));
        Self { count, hot_keys, hot_fraction }
    }
}

impl KeyChooser for HotSet {
    fn key_count(&self) -> u64 {
        self.count
    }

    fn choose(&self, rng: &mut dyn RngCore) -> u64 {
        if rng.gen::<f64>() < self.hot_fraction {
            rng.gen_range(0..self.hot_keys)
        } else {
            rng.gen_range(self.hot_keys..self.count)
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn uniform_covers_all_keys() {
        let k = UniformKeys::new(10);
        let mut rng = StdRng::seed_from_u64(0);
        let mut seen = [false; 10];
        for _ in 0..1000 {
            seen[k.choose(&mut rng) as usize] = true;
        }
        assert!(seen.iter().all(|&s| s));
    }

    #[test]
    fn zipf_cdf_pmf_sums_to_one_and_is_decreasing() {
        let z = ZipfCdf::new(1000, 1.0);
        let sum: f64 = (0..1000).map(|i| z.pmf(i)).sum();
        assert!((sum - 1.0).abs() < 1e-9);
        for i in 1..1000 {
            assert!(z.pmf(i) <= z.pmf(i - 1) + 1e-15);
        }
    }

    #[test]
    fn zipf_s0_is_uniform() {
        let oracle = ZipfCdf::new(50, 0.0);
        for i in 0..50 {
            assert!((oracle.pmf(i) - 0.02).abs() < 1e-12);
        }
        // The rejection-inversion path at s = 0 is uniform too.
        let z = Zipf::new(50, 0.0);
        let mut rng = StdRng::seed_from_u64(11);
        let n = 100_000;
        let mut counts = vec![0usize; 50];
        for _ in 0..n {
            counts[z.choose(&mut rng) as usize] += 1;
        }
        for (key, &c) in counts.iter().enumerate() {
            let emp = c as f64 / n as f64;
            assert!((emp - 0.02).abs() < 0.005, "key {key}: emp {emp}");
        }
    }

    /// The tentpole property test: the O(1) sampler agrees with the exact
    /// CDF oracle — per-key PMF at the head and a KS statistic over the
    /// whole distribution — for several exponents including s = 1 (the
    /// logarithmic special case) and s > 1.
    #[test]
    fn zipf_sampling_matches_cdf_oracle() {
        for &s in &[0.5, 1.0, 1.2, 2.5] {
            let keys = 100u64;
            let oracle = ZipfCdf::new(keys, s);
            let z = Zipf::new(keys, s);
            let mut rng = StdRng::seed_from_u64(5);
            let n = 200_000;
            let mut counts = vec![0usize; keys as usize];
            for _ in 0..n {
                counts[z.choose(&mut rng) as usize] += 1;
            }
            for key in [0u64, 1, 5, 20] {
                let emp = counts[key as usize] as f64 / n as f64;
                let expected = oracle.pmf(key);
                assert!(
                    (emp - expected).abs() < 0.01 + 0.1 * expected,
                    "s {s} key {key}: emp {emp} vs pmf {expected}"
                );
            }
            // KS distance between the empirical CDF and the oracle CDF.
            let mut acc = 0usize;
            let mut ks = 0.0f64;
            for key in 0..keys {
                acc += counts[key as usize];
                let emp_cdf = acc as f64 / n as f64;
                ks = ks.max((emp_cdf - oracle.cdf(key)).abs());
            }
            assert!(ks < 0.01, "s {s}: KS distance {ks} too large for n={n}");
        }
    }

    /// Per-seed bitwise determinism: the rejection loop consumes a
    /// deterministic number of draws, so two samplers with equal seeds
    /// yield the identical key sequence.
    #[test]
    fn zipf_draws_are_bitwise_deterministic_per_seed() {
        let z = Zipf::new(1_000_000_007, 0.99);
        let seq = |seed: u64| -> Vec<u64> {
            let mut rng = StdRng::seed_from_u64(seed);
            (0..1000).map(|_| z.choose(&mut rng)).collect()
        };
        assert_eq!(seq(42), seq(42), "same seed must replay bit-identically");
        assert_ne!(seq(42), seq(43), "different seeds must differ");
    }

    /// The 16M cap is gone: a 10^9-key universe builds in O(1) and every
    /// draw stays in range, with rank 0 still the most popular key.
    #[test]
    fn zipf_handles_huge_universes_in_o1() {
        let keys = 1_000_000_000u64;
        let z = Zipf::new(keys, 1.0);
        assert_eq!(z.key_count(), keys);
        let mut rng = StdRng::seed_from_u64(7);
        let mut rank0 = 0usize;
        let n = 50_000;
        for _ in 0..n {
            let k = z.choose(&mut rng);
            assert!(k < keys);
            if k == 0 {
                rank0 += 1;
            }
        }
        // p(0) = 1/H_{1e9} ≈ 1/21.3 ≈ 4.7%; loose band.
        let frac = rank0 as f64 / n as f64;
        assert!((0.02..0.08).contains(&frac), "rank-0 fraction {frac}");
    }

    #[test]
    fn hotset_concentrates_traffic() {
        let h = HotSet::new(1000, 10, 0.9);
        let mut rng = StdRng::seed_from_u64(9);
        let n = 50_000;
        let hot = (0..n).filter(|_| h.choose(&mut rng) < 10).count();
        let frac = hot as f64 / n as f64;
        assert!((frac - 0.9).abs() < 0.01, "hot fraction {frac}");
    }
}
