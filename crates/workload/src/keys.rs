//! Key-popularity models.
//!
//! Each key has its own quorum system (§2.2), so the per-key write rate —
//! set by popularity — determines that key's γgw and its monotonic-reads
//! behaviour (§3.2).

use rand::Rng;
use rand::RngCore;

/// Chooses which key an operation targets.
pub trait KeyChooser: Send + Sync {
    /// Number of distinct keys.
    fn key_count(&self) -> u64;

    /// Sample a key id in `0..key_count()`.
    fn choose(&self, rng: &mut dyn RngCore) -> u64;
}

/// Uniform popularity over `count` keys.
#[derive(Debug, Clone, Copy)]
pub struct UniformKeys {
    count: u64,
}

impl UniformKeys {
    /// Uniform over `count ≥ 1` keys.
    pub fn new(count: u64) -> Self {
        assert!(count >= 1);
        Self { count }
    }
}

impl KeyChooser for UniformKeys {
    fn key_count(&self) -> u64 {
        self.count
    }

    fn choose(&self, rng: &mut dyn RngCore) -> u64 {
        rng.gen_range(0..self.count)
    }
}

/// Zipf-distributed popularity: key `i` (0-based rank) has probability
/// proportional to `1/(i+1)^s`. Implemented with a precomputed CDF and
/// binary search — exact, O(log n) per draw, suitable for key universes up
/// to a few million.
#[derive(Debug, Clone)]
pub struct Zipf {
    cdf: Vec<f64>,
}

impl Zipf {
    /// Build over `count ≥ 1` keys with exponent `s ≥ 0` (0 = uniform,
    /// ~1 = classic web-like skew).
    pub fn new(count: u64, s: f64) -> Self {
        assert!((1..=16_000_000).contains(&count), "key universe too large for CDF table");
        assert!(s >= 0.0 && s.is_finite());
        let mut cdf = Vec::with_capacity(count as usize);
        let mut acc = 0.0;
        for i in 0..count {
            acc += 1.0 / ((i + 1) as f64).powf(s);
            cdf.push(acc);
        }
        let total = acc;
        for v in &mut cdf {
            *v /= total;
        }
        Self { cdf }
    }

    /// Probability of the given key rank.
    pub fn pmf(&self, key: u64) -> f64 {
        let i = key as usize;
        assert!(i < self.cdf.len());
        if i == 0 {
            self.cdf[0]
        } else {
            self.cdf[i] - self.cdf[i - 1]
        }
    }
}

impl KeyChooser for Zipf {
    fn key_count(&self) -> u64 {
        self.cdf.len() as u64
    }

    fn choose(&self, rng: &mut dyn RngCore) -> u64 {
        let u: f64 = rng.gen();
        self.cdf.partition_point(|&c| c < u) as u64
    }
}

/// Hot-set popularity: a fraction of operations target a small hot subset
/// uniformly; the rest spread over the cold keys.
#[derive(Debug, Clone, Copy)]
pub struct HotSet {
    count: u64,
    hot_keys: u64,
    hot_fraction: f64,
}

impl HotSet {
    /// `hot_fraction` of draws land uniformly in keys `0..hot_keys`; the
    /// remainder lands uniformly in `hot_keys..count`.
    pub fn new(count: u64, hot_keys: u64, hot_fraction: f64) -> Self {
        assert!(count >= 2 && hot_keys >= 1 && hot_keys < count);
        assert!((0.0..=1.0).contains(&hot_fraction));
        Self { count, hot_keys, hot_fraction }
    }
}

impl KeyChooser for HotSet {
    fn key_count(&self) -> u64 {
        self.count
    }

    fn choose(&self, rng: &mut dyn RngCore) -> u64 {
        if rng.gen::<f64>() < self.hot_fraction {
            rng.gen_range(0..self.hot_keys)
        } else {
            rng.gen_range(self.hot_keys..self.count)
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn uniform_covers_all_keys() {
        let k = UniformKeys::new(10);
        let mut rng = StdRng::seed_from_u64(0);
        let mut seen = [false; 10];
        for _ in 0..1000 {
            seen[k.choose(&mut rng) as usize] = true;
        }
        assert!(seen.iter().all(|&s| s));
    }

    #[test]
    fn zipf_pmf_sums_to_one_and_is_decreasing() {
        let z = Zipf::new(1000, 1.0);
        let sum: f64 = (0..1000).map(|i| z.pmf(i)).sum();
        assert!((sum - 1.0).abs() < 1e-9);
        for i in 1..1000 {
            assert!(z.pmf(i) <= z.pmf(i - 1) + 1e-15);
        }
    }

    #[test]
    fn zipf_s0_is_uniform() {
        let z = Zipf::new(50, 0.0);
        for i in 0..50 {
            assert!((z.pmf(i) - 0.02).abs() < 1e-12);
        }
    }

    #[test]
    fn zipf_sampling_matches_pmf() {
        let z = Zipf::new(100, 1.2);
        let mut rng = StdRng::seed_from_u64(5);
        let n = 200_000;
        let mut counts = vec![0usize; 100];
        for _ in 0..n {
            counts[z.choose(&mut rng) as usize] += 1;
        }
        for key in [0u64, 1, 5, 20] {
            let emp = counts[key as usize] as f64 / n as f64;
            let expected = z.pmf(key);
            assert!(
                (emp - expected).abs() < 0.01 + 0.1 * expected,
                "key {key}: emp {emp} vs pmf {expected}"
            );
        }
    }

    #[test]
    fn hotset_concentrates_traffic() {
        let h = HotSet::new(1000, 10, 0.9);
        let mut rng = StdRng::seed_from_u64(9);
        let n = 50_000;
        let hot = (0..n).filter(|_| h.choose(&mut rng) < 10).count();
        let frac = hot as f64 / n as f64;
        assert!((frac - 0.9).abs() < 0.01, "hot fraction {frac}");
    }
}
