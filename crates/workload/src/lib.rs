//! # pbs-workload — workload generation for the PBS store and models
//!
//! The paper's experiments need three workload ingredients, all provided
//! here:
//!
//! * [`arrivals`] — when operations happen (fixed-rate, Poisson, bursty
//!   on/off, and piecewise-nonstationary [`PiecewisePoisson`] processes).
//!   §5.2's validation interleaves writes with concurrent reads; §3.2's
//!   monotonic-reads model is parameterised by rates; `pbs-scenario`'s
//!   load timelines are piecewise schedules.
//! * [`keys`] — which keys they touch (uniform, Zipf, hot-set). Dynamo-style
//!   stores shard one quorum system per key (§2.2), so key popularity drives
//!   per-key write rates γgw.
//! * [`ops`] and [`session`] — read/write mixes, streaming operation
//!   sources ([`OpStream`] — what the open-loop client actors in `pbs-kvs`
//!   pull from), full traces, and per-client session models for measuring
//!   monotonic-reads violations.
//!
//! All generation is deterministic given an RNG, matching the workspace's
//! reproducibility rule.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod arrivals;
pub mod keys;
pub mod ops;
pub mod session;

pub use arrivals::{
    ArrivalProcess, Bursty, FixedRate, PiecewisePoisson, Poisson, StationaryArrivals,
};
pub use keys::{HotSet, KeyChooser, UniformKeys, Zipf, ZipfCdf};
pub use ops::{Op, OpKind, OpMix, OpSource, OpStream, SharedOpSource, SharedStream, TraceBuilder};
pub use session::SessionModel;
