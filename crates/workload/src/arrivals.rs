//! Operation arrival processes.

use rand::Rng;
use rand::RngCore;

/// A stationary arrival process generating inter-arrival gaps in
/// milliseconds.
pub trait ArrivalProcess: Send + Sync {
    /// Sample the next inter-arrival gap (ms, ≥ 0).
    fn next_gap(&mut self, rng: &mut dyn RngCore) -> f64;

    /// Mean rate in operations per millisecond.
    fn rate(&self) -> f64;

    /// Generate `n` absolute arrival times starting at `start_ms`.
    fn schedule(&mut self, rng: &mut dyn RngCore, n: usize, start_ms: f64) -> Vec<f64> {
        let mut t = start_ms;
        let mut out = Vec::with_capacity(n);
        for _ in 0..n {
            t += self.next_gap(rng);
            out.push(t);
        }
        out
    }
}

/// Deterministic fixed-interval arrivals.
#[derive(Debug, Clone, Copy)]
pub struct FixedRate {
    gap_ms: f64,
}

impl FixedRate {
    /// One arrival every `gap_ms > 0` milliseconds.
    pub fn new(gap_ms: f64) -> Self {
        assert!(gap_ms > 0.0 && gap_ms.is_finite());
        Self { gap_ms }
    }

    /// From a rate in operations/second.
    pub fn per_second(ops: f64) -> Self {
        assert!(ops > 0.0);
        Self::new(1000.0 / ops)
    }
}

impl ArrivalProcess for FixedRate {
    fn next_gap(&mut self, _rng: &mut dyn RngCore) -> f64 {
        self.gap_ms
    }

    fn rate(&self) -> f64 {
        1.0 / self.gap_ms
    }
}

/// Poisson arrivals (exponential gaps) with a given mean rate.
#[derive(Debug, Clone, Copy)]
pub struct Poisson {
    rate_per_ms: f64,
}

impl Poisson {
    /// From a rate in operations per millisecond.
    pub fn per_ms(rate_per_ms: f64) -> Self {
        assert!(rate_per_ms > 0.0 && rate_per_ms.is_finite());
        Self { rate_per_ms }
    }

    /// From a rate in operations per second (e.g. Table 2's 718.18 gets/s).
    pub fn per_second(ops: f64) -> Self {
        Self::per_ms(ops / 1000.0)
    }
}

impl ArrivalProcess for Poisson {
    fn next_gap(&mut self, rng: &mut dyn RngCore) -> f64 {
        let u: f64 = rng.gen::<f64>().max(f64::MIN_POSITIVE);
        -u.ln() / self.rate_per_ms
    }

    fn rate(&self) -> f64 {
        self.rate_per_ms
    }
}

/// Two-state on/off (Markov-modulated) arrivals: bursts of fast Poisson
/// arrivals separated by quiet periods. Stress-tests staleness under write
/// bursts, where ⟨k,t⟩ bounds are weakest (§3.5).
#[derive(Debug, Clone, Copy)]
pub struct Bursty {
    burst_rate_per_ms: f64,
    idle_rate_per_ms: f64,
    /// Probability that each arrival toggles the state.
    switch_prob: f64,
    bursting: bool,
}

impl Bursty {
    /// Build from burst/idle rates (ops per ms) and a per-arrival switch
    /// probability in `(0, 1]`.
    pub fn new(burst_rate_per_ms: f64, idle_rate_per_ms: f64, switch_prob: f64) -> Self {
        assert!(burst_rate_per_ms > 0.0 && idle_rate_per_ms > 0.0);
        assert!(burst_rate_per_ms >= idle_rate_per_ms, "burst rate should exceed idle rate");
        assert!((0.0..=1.0).contains(&switch_prob) && switch_prob > 0.0);
        Self { burst_rate_per_ms, idle_rate_per_ms, switch_prob, bursting: true }
    }
}

impl ArrivalProcess for Bursty {
    fn next_gap(&mut self, rng: &mut dyn RngCore) -> f64 {
        if rng.gen::<f64>() < self.switch_prob {
            self.bursting = !self.bursting;
        }
        let rate = if self.bursting { self.burst_rate_per_ms } else { self.idle_rate_per_ms };
        let u: f64 = rng.gen::<f64>().max(f64::MIN_POSITIVE);
        -u.ln() / rate
    }

    fn rate(&self) -> f64 {
        // Symmetric switching → equal time in each state by arrival count;
        // the harmonic mean of rates is the effective arrival rate.
        2.0 / (1.0 / self.burst_rate_per_ms + 1.0 / self.idle_rate_per_ms)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn fixed_rate_schedule_is_regular() {
        let mut p = FixedRate::per_second(100.0); // every 10ms
        let mut rng = StdRng::seed_from_u64(0);
        let times = p.schedule(&mut rng, 5, 0.0);
        assert_eq!(times, vec![10.0, 20.0, 30.0, 40.0, 50.0]);
        assert!((p.rate() - 0.1).abs() < 1e-12);
    }

    #[test]
    fn poisson_mean_gap_matches_rate() {
        let mut p = Poisson::per_ms(0.25); // mean gap 4ms
        let mut rng = StdRng::seed_from_u64(1);
        let n = 100_000;
        let total: f64 = (0..n).map(|_| p.next_gap(&mut rng)).sum();
        let mean = total / n as f64;
        assert!((mean - 4.0).abs() < 0.1, "mean gap {mean}");
    }

    #[test]
    fn poisson_schedule_is_increasing() {
        let mut p = Poisson::per_second(718.18);
        let mut rng = StdRng::seed_from_u64(2);
        let times = p.schedule(&mut rng, 1000, 5.0);
        assert!(times[0] >= 5.0);
        for w in times.windows(2) {
            assert!(w[1] >= w[0]);
        }
    }

    #[test]
    fn bursty_rate_between_extremes() {
        let mut p = Bursty::new(1.0, 0.01, 0.05);
        let mut rng = StdRng::seed_from_u64(3);
        let n = 200_000;
        let total: f64 = (0..n).map(|_| p.next_gap(&mut rng)).sum();
        let empirical_rate = n as f64 / total;
        assert!(
            empirical_rate > 0.01 && empirical_rate < 1.0,
            "rate {empirical_rate} should sit between idle and burst"
        );
        // And roughly match the harmonic-mean prediction.
        assert!((empirical_rate - p.rate()).abs() / p.rate() < 0.25);
    }
}
