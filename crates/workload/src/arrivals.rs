//! Operation arrival processes.

use rand::Rng;
use rand::RngCore;

/// A stationary arrival process generating inter-arrival gaps in
/// milliseconds.
pub trait ArrivalProcess: Send + Sync {
    /// Sample the next inter-arrival gap (ms, ≥ 0).
    fn next_gap(&mut self, rng: &mut dyn RngCore) -> f64;

    /// Mean rate in operations per millisecond.
    fn rate(&self) -> f64;

    /// Generate `n` absolute arrival times starting at `start_ms`.
    fn schedule(&mut self, rng: &mut dyn RngCore, n: usize, start_ms: f64) -> Vec<f64> {
        let mut t = start_ms;
        let mut out = Vec::with_capacity(n);
        for _ in 0..n {
            t += self.next_gap(rng);
            out.push(t);
        }
        out
    }
}

/// Marker for arrival processes that are **memoryless across calls**: a
/// copy of the process produces the same gap distribution as the original,
/// because `next_gap` keeps no state between draws.
///
/// Only such processes may back a [`SharedOpSource`], where one immutable
/// value serves millions of clients concurrently. [`Bursty`] and
/// [`PiecewisePoisson`] carry per-stream state (burst phase, stream clock)
/// and deliberately do not qualify.
///
/// [`SharedOpSource`]: crate::ops::SharedOpSource
pub trait StationaryArrivals: ArrivalProcess + Copy {}

impl StationaryArrivals for FixedRate {}
impl StationaryArrivals for Poisson {}

/// Deterministic fixed-interval arrivals.
#[derive(Debug, Clone, Copy)]
pub struct FixedRate {
    gap_ms: f64,
}

impl FixedRate {
    /// One arrival every `gap_ms > 0` milliseconds.
    pub fn new(gap_ms: f64) -> Self {
        assert!(gap_ms > 0.0 && gap_ms.is_finite());
        Self { gap_ms }
    }

    /// From a rate in operations/second.
    pub fn per_second(ops: f64) -> Self {
        assert!(ops > 0.0);
        Self::new(1000.0 / ops)
    }
}

impl ArrivalProcess for FixedRate {
    fn next_gap(&mut self, _rng: &mut dyn RngCore) -> f64 {
        self.gap_ms
    }

    fn rate(&self) -> f64 {
        1.0 / self.gap_ms
    }
}

/// Poisson arrivals (exponential gaps) with a given mean rate.
#[derive(Debug, Clone, Copy)]
pub struct Poisson {
    rate_per_ms: f64,
}

impl Poisson {
    /// From a rate in operations per millisecond.
    pub fn per_ms(rate_per_ms: f64) -> Self {
        assert!(rate_per_ms > 0.0 && rate_per_ms.is_finite());
        Self { rate_per_ms }
    }

    /// From a rate in operations per second (e.g. Table 2's 718.18 gets/s).
    pub fn per_second(ops: f64) -> Self {
        Self::per_ms(ops / 1000.0)
    }
}

impl ArrivalProcess for Poisson {
    fn next_gap(&mut self, rng: &mut dyn RngCore) -> f64 {
        let u: f64 = rng.gen::<f64>().max(f64::MIN_POSITIVE);
        -u.ln() / self.rate_per_ms
    }

    fn rate(&self) -> f64 {
        self.rate_per_ms
    }
}

/// Two-state on/off (Markov-modulated) arrivals: bursts of fast Poisson
/// arrivals separated by quiet periods. Stress-tests staleness under write
/// bursts, where ⟨k,t⟩ bounds are weakest (§3.5).
#[derive(Debug, Clone, Copy)]
pub struct Bursty {
    burst_rate_per_ms: f64,
    idle_rate_per_ms: f64,
    /// Probability that each arrival toggles the state.
    switch_prob: f64,
    bursting: bool,
}

impl Bursty {
    /// Build from burst/idle rates (ops per ms) and a per-arrival switch
    /// probability in `(0, 1]`.
    pub fn new(burst_rate_per_ms: f64, idle_rate_per_ms: f64, switch_prob: f64) -> Self {
        assert!(burst_rate_per_ms > 0.0 && idle_rate_per_ms > 0.0);
        assert!(burst_rate_per_ms >= idle_rate_per_ms, "burst rate should exceed idle rate");
        assert!((0.0..=1.0).contains(&switch_prob) && switch_prob > 0.0);
        Self { burst_rate_per_ms, idle_rate_per_ms, switch_prob, bursting: true }
    }
}

impl ArrivalProcess for Bursty {
    fn next_gap(&mut self, rng: &mut dyn RngCore) -> f64 {
        if rng.gen::<f64>() < self.switch_prob {
            self.bursting = !self.bursting;
        }
        let rate = if self.bursting { self.burst_rate_per_ms } else { self.idle_rate_per_ms };
        let u: f64 = rng.gen::<f64>().max(f64::MIN_POSITIVE);
        -u.ln() / rate
    }

    fn rate(&self) -> f64 {
        // Symmetric switching → equal time in each state by arrival count;
        // the harmonic mean of rates is the effective arrival rate.
        2.0 / (1.0 / self.burst_rate_per_ms + 1.0 / self.idle_rate_per_ms)
    }
}

/// A **nonstationary** Poisson process with a piecewise-constant rate —
/// the declarative load timeline of `pbs-scenario`'s chaos scenarios
/// (diurnal load curves, traffic steps, flash crowds).
///
/// Segments are `(start_ms, rate_per_ms)` pairs with strictly increasing
/// starts, the first at 0. The last segment either extends forever or, in
/// [`cyclic`](Self::cyclic) mode, wraps back to the first after
/// `period_ms` (a repeating diurnal cycle).
///
/// Sampling uses the exponential's memorylessness: a gap drawn in the
/// current segment that would cross the next boundary is discarded and
/// redrawn from the boundary, which yields an exact piecewise-constant
/// intensity. The process tracks its own absolute clock (ms since
/// [`reset`](Self::reset)); [`next_gap`](ArrivalProcess::next_gap)
/// advances it.
#[derive(Debug, Clone)]
pub struct PiecewisePoisson {
    /// `(start_ms, rate_per_ms)`, first start at 0, starts increasing.
    segments: Vec<(f64, f64)>,
    /// Cycle length; `None` = the last segment extends forever.
    period_ms: Option<f64>,
    now_ms: f64,
}

impl PiecewisePoisson {
    /// Build from `(start_ms, rate_per_ms)` segments; the last segment
    /// extends forever (and must therefore have a positive rate).
    pub fn new(segments: Vec<(f64, f64)>) -> Self {
        let s = Self { segments, period_ms: None, now_ms: 0.0 };
        s.validate();
        s
    }

    /// Build a repeating schedule: after `period_ms` the timeline wraps to
    /// the first segment. At least one segment must have a positive rate.
    pub fn cyclic(segments: Vec<(f64, f64)>, period_ms: f64) -> Self {
        assert!(period_ms > 0.0 && period_ms.is_finite());
        let s = Self { segments, period_ms: Some(period_ms), now_ms: 0.0 };
        s.validate();
        assert!(
            s.segments.last().expect("validated nonempty").0 < period_ms,
            "segment starts must precede the period"
        );
        s
    }

    fn validate(&self) {
        assert!(!self.segments.is_empty(), "need at least one segment");
        assert_eq!(self.segments[0].0, 0.0, "first segment must start at 0");
        for pair in self.segments.windows(2) {
            assert!(pair[0].0 < pair[1].0, "segment starts must increase");
        }
        for &(start, rate) in &self.segments {
            assert!(start >= 0.0 && start.is_finite());
            assert!(rate >= 0.0 && rate.is_finite(), "rates must be finite and ≥ 0");
        }
        assert!(
            self.segments.iter().any(|&(_, r)| r > 0.0),
            "at least one segment must have a positive rate"
        );
        if self.period_ms.is_none() {
            assert!(
                self.segments.last().expect("nonempty").1 > 0.0,
                "the final (unbounded) segment needs a positive rate"
            );
        }
    }

    /// Restart the internal clock at `at_ms` (e.g. the start of a run).
    pub fn reset(&mut self, at_ms: f64) {
        assert!(at_ms >= 0.0 && at_ms.is_finite());
        self.now_ms = at_ms;
    }

    /// The process's current absolute time (ms).
    pub fn now_ms(&self) -> f64 {
        self.now_ms
    }

    /// The instantaneous rate at absolute time `t_ms`.
    pub fn rate_at(&self, t_ms: f64) -> f64 {
        let t = match self.period_ms {
            Some(p) => t_ms.rem_euclid(p),
            None => t_ms,
        };
        let idx =
            self.segments.iter().rposition(|&(start, _)| start <= t).unwrap_or_default();
        self.segments[idx].1
    }

    /// The absolute time of the next segment boundary strictly after
    /// `t_ms` (`f64::INFINITY` inside a final unbounded segment).
    fn boundary_after(&self, t_ms: f64) -> f64 {
        match self.period_ms {
            Some(p) => {
                let cycle = (t_ms / p).floor();
                let in_cycle = t_ms - cycle * p;
                for &(start, _) in &self.segments {
                    if start > in_cycle {
                        return cycle * p + start;
                    }
                }
                (cycle + 1.0) * p
            }
            None => {
                for &(start, _) in &self.segments {
                    if start > t_ms {
                        return start;
                    }
                }
                f64::INFINITY
            }
        }
    }
}

impl ArrivalProcess for PiecewisePoisson {
    fn next_gap(&mut self, rng: &mut dyn RngCore) -> f64 {
        let from = self.now_ms;
        loop {
            let rate = self.rate_at(self.now_ms);
            let boundary = self.boundary_after(self.now_ms);
            if rate <= 0.0 {
                debug_assert!(boundary.is_finite(), "zero-rate segments cannot be final");
                self.now_ms = boundary;
                continue;
            }
            let u: f64 = rng.gen::<f64>().max(f64::MIN_POSITIVE);
            let gap = -u.ln() / rate;
            if self.now_ms + gap <= boundary {
                self.now_ms += gap;
                return self.now_ms - from;
            }
            // The draw crosses into the next regime: restart there
            // (memorylessness makes this exact).
            self.now_ms = boundary;
        }
    }

    /// Time-averaged rate: over one period in cyclic mode, over the
    /// defined breakpoint span plus the final segment otherwise (where the
    /// final rate dominates as the horizon grows, that rate is returned
    /// when there is a single segment).
    fn rate(&self) -> f64 {
        let span_end = match self.period_ms {
            Some(p) => p,
            None => {
                let last_start = self.segments.last().expect("nonempty").0;
                if last_start == 0.0 {
                    return self.segments[0].1;
                }
                // Weight the unbounded tail as one more span of the same
                // length as the defined breakpoints.
                2.0 * last_start
            }
        };
        let mut total = 0.0;
        for (i, &(start, rate)) in self.segments.iter().enumerate() {
            let end = self.segments.get(i + 1).map(|&(s, _)| s).unwrap_or(span_end);
            total += rate * (end.min(span_end) - start).max(0.0);
        }
        total / span_end
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn fixed_rate_schedule_is_regular() {
        let mut p = FixedRate::per_second(100.0); // every 10ms
        let mut rng = StdRng::seed_from_u64(0);
        let times = p.schedule(&mut rng, 5, 0.0);
        assert_eq!(times, vec![10.0, 20.0, 30.0, 40.0, 50.0]);
        assert!((p.rate() - 0.1).abs() < 1e-12);
    }

    #[test]
    fn poisson_mean_gap_matches_rate() {
        let mut p = Poisson::per_ms(0.25); // mean gap 4ms
        let mut rng = StdRng::seed_from_u64(1);
        let n = 100_000;
        let total: f64 = (0..n).map(|_| p.next_gap(&mut rng)).sum();
        let mean = total / n as f64;
        assert!((mean - 4.0).abs() < 0.1, "mean gap {mean}");
    }

    #[test]
    fn poisson_schedule_is_increasing() {
        let mut p = Poisson::per_second(718.18);
        let mut rng = StdRng::seed_from_u64(2);
        let times = p.schedule(&mut rng, 1000, 5.0);
        assert!(times[0] >= 5.0);
        for w in times.windows(2) {
            assert!(w[1] >= w[0]);
        }
    }

    #[test]
    fn piecewise_matches_segment_rates() {
        // 0–1000ms at 0.5/ms, then 0.05/ms forever.
        let mut p = PiecewisePoisson::new(vec![(0.0, 0.5), (1000.0, 0.05)]);
        let mut rng = StdRng::seed_from_u64(7);
        let (mut in_first, mut in_second) = (0usize, 0usize);
        p.reset(0.0);
        while p.now_ms() < 11_000.0 {
            let _ = p.next_gap(&mut rng);
            if p.now_ms() < 1000.0 {
                in_first += 1;
            } else if p.now_ms() < 11_000.0 {
                in_second += 1;
            }
        }
        let rate1 = in_first as f64 / 1000.0;
        let rate2 = in_second as f64 / 10_000.0;
        assert!((rate1 - 0.5).abs() < 0.06, "first segment rate {rate1}");
        assert!((rate2 - 0.05).abs() < 0.01, "second segment rate {rate2}");
        assert_eq!(p.rate_at(500.0), 0.5);
        assert_eq!(p.rate_at(5000.0), 0.05);
    }

    #[test]
    fn piecewise_zero_rate_segment_is_silent() {
        let mut p = PiecewisePoisson::new(vec![(0.0, 1.0), (100.0, 0.0), (200.0, 1.0)]);
        let mut rng = StdRng::seed_from_u64(8);
        let mut arrivals = Vec::new();
        p.reset(0.0);
        while p.now_ms() < 300.0 {
            let _ = p.next_gap(&mut rng);
            if p.now_ms() < 300.0 {
                arrivals.push(p.now_ms());
            }
        }
        assert!(arrivals.iter().all(|&t| !(100.0..200.0).contains(&t)), "quiet window respected");
        assert!(arrivals.iter().any(|&t| t < 100.0));
        assert!(arrivals.iter().any(|&t| t >= 200.0));
    }

    #[test]
    fn cyclic_schedule_wraps() {
        // 0–100ms busy (1/ms), 100–200ms quiet (0.01/ms), period 200ms.
        let mut p = PiecewisePoisson::cyclic(vec![(0.0, 1.0), (100.0, 0.01)], 200.0);
        assert_eq!(p.rate_at(50.0), 1.0);
        assert_eq!(p.rate_at(150.0), 0.01);
        assert_eq!(p.rate_at(250.0), 1.0, "second cycle busy phase");
        assert_eq!(p.rate_at(350.0), 0.01);
        assert!((p.rate() - (1.0 * 100.0 + 0.01 * 100.0) / 200.0).abs() < 1e-12);
        // Empirically, cycle 2's busy window sees ~100× the quiet window.
        let mut rng = StdRng::seed_from_u64(9);
        let (mut busy, mut quiet) = (0usize, 0usize);
        p.reset(0.0);
        while p.now_ms() < 2_000.0 {
            let _ = p.next_gap(&mut rng);
            if p.now_ms() < 2_000.0 {
                if p.now_ms().rem_euclid(200.0) < 100.0 {
                    busy += 1;
                } else {
                    quiet += 1;
                }
            }
        }
        assert!(busy > 20 * quiet.max(1), "busy {busy} vs quiet {quiet}");
    }

    #[test]
    fn bursty_rate_between_extremes() {
        let mut p = Bursty::new(1.0, 0.01, 0.05);
        let mut rng = StdRng::seed_from_u64(3);
        let n = 200_000;
        let total: f64 = (0..n).map(|_| p.next_gap(&mut rng)).sum();
        let empirical_rate = n as f64 / total;
        assert!(
            empirical_rate > 0.01 && empirical_rate < 1.0,
            "rate {empirical_rate} should sit between idle and burst"
        );
        // And roughly match the harmonic-mean prediction.
        assert!((empirical_rate - p.rate()).abs() / p.rate() < 0.25);
    }
}
