//! Operation mixes and trace generation.

use crate::arrivals::ArrivalProcess;
use crate::keys::KeyChooser;
use rand::Rng;
use rand::RngCore;

/// Read or write.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum OpKind {
    /// Quorum read.
    Read,
    /// Quorum write.
    Write,
}

/// One operation in a generated trace.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Op {
    /// Issue time (ms since trace start).
    pub at_ms: f64,
    /// Read or write.
    pub kind: OpKind,
    /// Target key.
    pub key: u64,
    /// Issuing client id.
    pub client: u32,
}

/// Read/write mix (e.g. LinkedIn's 60% read / 40% read-modify-write
/// traffic, §5.4).
#[derive(Debug, Clone, Copy)]
pub struct OpMix {
    read_fraction: f64,
}

impl OpMix {
    /// `read_fraction ∈ [0, 1]` of operations are reads.
    pub fn new(read_fraction: f64) -> Self {
        assert!((0.0..=1.0).contains(&read_fraction));
        Self { read_fraction }
    }

    /// The LinkedIn mix from §5.4: 60% reads.
    pub fn linkedin() -> Self {
        Self::new(0.6)
    }

    /// Sample an operation kind.
    pub fn sample(&self, rng: &mut dyn RngCore) -> OpKind {
        if rng.gen::<f64>() < self.read_fraction {
            OpKind::Read
        } else {
            OpKind::Write
        }
    }

    /// The configured read fraction.
    pub fn read_fraction(&self) -> f64 {
        self.read_fraction
    }
}

/// Builds complete operation traces from an arrival process, a key chooser,
/// and an op mix, spread round-robin across `clients`.
pub struct TraceBuilder<A, K> {
    arrivals: A,
    keys: K,
    mix: OpMix,
    clients: u32,
}

impl<A: ArrivalProcess, K: KeyChooser> TraceBuilder<A, K> {
    /// Assemble a builder.
    pub fn new(arrivals: A, keys: K, mix: OpMix, clients: u32) -> Self {
        assert!(clients >= 1);
        Self { arrivals, keys, mix, clients }
    }

    /// Generate `n` operations starting at time 0.
    pub fn build(&mut self, rng: &mut dyn RngCore, n: usize) -> Vec<Op> {
        let mut t = 0.0;
        let mut ops = Vec::with_capacity(n);
        for i in 0..n {
            t += self.arrivals.next_gap(rng);
            ops.push(Op {
                at_ms: t,
                kind: self.mix.sample(rng),
                key: self.keys.choose(rng),
                client: (i as u32) % self.clients,
            });
        }
        ops
    }
}

impl<A: std::fmt::Debug, K: std::fmt::Debug> std::fmt::Debug for TraceBuilder<A, K> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("TraceBuilder")
            .field("arrivals", &self.arrivals)
            .field("keys", &self.keys)
            .field("clients", &self.clients)
            .finish_non_exhaustive()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::arrivals::Poisson;
    use crate::keys::UniformKeys;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn mix_fraction_respected() {
        let mix = OpMix::new(0.75);
        let mut rng = StdRng::seed_from_u64(0);
        let n = 100_000;
        let reads = (0..n).filter(|_| mix.sample(&mut rng) == OpKind::Read).count();
        let frac = reads as f64 / n as f64;
        assert!((frac - 0.75).abs() < 0.01, "{frac}");
    }

    #[test]
    fn degenerate_mixes() {
        let mut rng = StdRng::seed_from_u64(1);
        assert_eq!(OpMix::new(1.0).sample(&mut rng), OpKind::Read);
        assert_eq!(OpMix::new(0.0).sample(&mut rng), OpKind::Write);
    }

    #[test]
    fn trace_is_time_ordered_and_round_robins_clients() {
        let mut b = TraceBuilder::new(
            Poisson::per_second(1000.0),
            UniformKeys::new(16),
            OpMix::linkedin(),
            4,
        );
        let mut rng = StdRng::seed_from_u64(2);
        let trace = b.build(&mut rng, 100);
        assert_eq!(trace.len(), 100);
        for w in trace.windows(2) {
            assert!(w[1].at_ms >= w[0].at_ms);
        }
        assert_eq!(trace[0].client, 0);
        assert_eq!(trace[5].client, 1);
        assert!(trace.iter().all(|o| o.key < 16));
    }
}
