//! Operation mixes, streaming operation sources, and trace generation.
//!
//! The streaming layer is the workload side of the open-loop concurrency
//! engine: an [`OpStream`] yields one time-stamped [`Op`] at a time (O(1)
//! memory), so in-sim client actors can pull arrivals lazily instead of
//! pre-materialising a `Vec<Op>`. [`TraceBuilder::build`] is now a thin
//! collector over the same stream.

use crate::arrivals::{ArrivalProcess, StationaryArrivals};
use crate::keys::KeyChooser;
use rand::Rng;
use rand::RngCore;

/// Read or write.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum OpKind {
    /// Quorum read.
    Read,
    /// Quorum write.
    Write,
}

/// One operation in a generated trace.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Op {
    /// Issue time (ms since trace start).
    pub at_ms: f64,
    /// Read or write.
    pub kind: OpKind,
    /// Target key.
    pub key: u64,
    /// Issuing client id.
    pub client: u32,
}

/// Read/write mix (e.g. LinkedIn's 60% read / 40% read-modify-write
/// traffic, §5.4).
#[derive(Debug, Clone, Copy)]
pub struct OpMix {
    read_fraction: f64,
}

impl OpMix {
    /// `read_fraction ∈ [0, 1]` of operations are reads.
    pub fn new(read_fraction: f64) -> Self {
        assert!((0.0..=1.0).contains(&read_fraction));
        Self { read_fraction }
    }

    /// The LinkedIn mix from §5.4: 60% reads.
    pub fn linkedin() -> Self {
        Self::new(0.6)
    }

    /// All writes — e.g. the probe half of a write→read probe pair.
    pub fn writes_only() -> Self {
        Self::new(0.0)
    }

    /// Sample an operation kind.
    pub fn sample(&self, rng: &mut dyn RngCore) -> OpKind {
        if rng.gen::<f64>() < self.read_fraction {
            OpKind::Read
        } else {
            OpKind::Write
        }
    }

    /// The configured read fraction.
    pub fn read_fraction(&self) -> f64 {
        self.read_fraction
    }
}

/// A streaming source of time-ordered operations.
///
/// This is the interface the open-loop client actors in `pbs-kvs` pull
/// from: one operation at a time, deterministic given the RNG, with no
/// buffering — memory stays O(1) regardless of how long the workload runs.
/// Sources must be `Send`: a client actor (and the source inside it) may
/// execute on any worker thread of the parallel engine.
pub trait OpSource: Send {
    /// Produce the next operation. `at_ms` values are nondecreasing and
    /// relative to the stream's own clock (its first call starts at 0 plus
    /// the first inter-arrival gap).
    fn next_op(&mut self, rng: &mut dyn RngCore) -> Op;
}

impl<S: OpSource + ?Sized> OpSource for Box<S> {
    fn next_op(&mut self, rng: &mut dyn RngCore) -> Op {
        (**self).next_op(rng)
    }
}

/// The canonical [`OpSource`]: arrivals × key popularity × read/write mix,
/// spread round-robin across `clients` logical client ids.
#[derive(Debug, Clone)]
pub struct OpStream<A, K> {
    arrivals: A,
    keys: K,
    mix: OpMix,
    clients: u32,
    now_ms: f64,
    idx: u64,
}

impl<A: ArrivalProcess, K: KeyChooser> OpStream<A, K> {
    /// Assemble a stream from its three ingredients.
    pub fn new(arrivals: A, keys: K, mix: OpMix, clients: u32) -> Self {
        assert!(clients >= 1);
        Self { arrivals, keys, mix, clients, now_ms: 0.0, idx: 0 }
    }

    /// Reset the stream clock and the round-robin client counter to zero
    /// (the arrival process keeps its internal state, e.g. a burst phase).
    pub fn rewind(&mut self) {
        self.now_ms = 0.0;
        self.idx = 0;
    }

    /// The stream's current clock (ms): the timestamp of the last yielded
    /// operation.
    pub fn now_ms(&self) -> f64 {
        self.now_ms
    }
}

impl<A: ArrivalProcess, K: KeyChooser> OpSource for OpStream<A, K> {
    fn next_op(&mut self, rng: &mut dyn RngCore) -> Op {
        self.now_ms += self.arrivals.next_gap(rng);
        let op = Op {
            at_ms: self.now_ms,
            kind: self.mix.sample(rng),
            key: self.keys.choose(rng),
            client: (self.idx % self.clients as u64) as u32,
        };
        self.idx += 1;
        op
    }
}

/// A thread-shareable operation source: one immutable value serves any
/// number of clients, each of which carries only its own stream clock and
/// RNG.
///
/// This is the million-client face of [`OpSource`]: where a boxed
/// `OpStream` costs a heap allocation plus ~64 bytes *per client*, a
/// `SharedOpSource` is one `Arc` per worker — per-client marginal cost is
/// the 8-byte clock the caller already stores. Implementations must be
/// pure functions of `(now_ms, rng)` so that draws stay bit-reproducible
/// and clients cannot observe each other.
pub trait SharedOpSource: Send + Sync {
    /// Produce the next operation for a client whose stream clock (the
    /// `at_ms` of its previous operation, 0 initially) is `now_ms`.
    ///
    /// Must consume RNG draws in the exact order `gap, kind, key` so a
    /// shared stream replays bit-identically to a per-client
    /// [`OpStream`] over the same RNG. The returned `client` field is 0;
    /// the caller owns client identity.
    fn next_op_after(&self, now_ms: f64, rng: &mut dyn RngCore) -> Op;
}

/// The canonical [`SharedOpSource`]: arrivals × key popularity × read/write
/// mix, like [`OpStream`] but immutable. Requires [`StationaryArrivals`]
/// (Poisson / fixed-rate) because the arrival process is copied per draw.
#[derive(Debug, Clone, Copy)]
pub struct SharedStream<A, K> {
    arrivals: A,
    keys: K,
    mix: OpMix,
}

impl<A: StationaryArrivals, K: KeyChooser> SharedStream<A, K> {
    /// Assemble a shared stream from its three ingredients.
    pub fn new(arrivals: A, keys: K, mix: OpMix) -> Self {
        Self { arrivals, keys, mix }
    }
}

impl<A: StationaryArrivals, K: KeyChooser> SharedOpSource for SharedStream<A, K> {
    fn next_op_after(&self, now_ms: f64, rng: &mut dyn RngCore) -> Op {
        // Identical draw order to `OpStream::next_op`: gap, kind, key.
        let mut arrivals = self.arrivals;
        let at_ms = now_ms + arrivals.next_gap(rng);
        Op { at_ms, kind: self.mix.sample(rng), key: self.keys.choose(rng), client: 0 }
    }
}

/// Builds operation traces from an arrival process, a key chooser, and an
/// op mix, spread round-robin across `clients` — a thin collector over
/// [`OpStream`].
pub struct TraceBuilder<A, K> {
    stream: OpStream<A, K>,
}

impl<A: ArrivalProcess, K: KeyChooser> TraceBuilder<A, K> {
    /// Assemble a builder.
    pub fn new(arrivals: A, keys: K, mix: OpMix, clients: u32) -> Self {
        Self { stream: OpStream::new(arrivals, keys, mix, clients) }
    }

    /// Iterate operations lazily (the streaming face of this builder):
    /// the returned iterator yields time-ordered operations forever, so
    /// bound it with `.take(n)` or by timestamp.
    pub fn iter<'a>(
        &'a mut self,
        rng: &'a mut dyn RngCore,
    ) -> impl Iterator<Item = Op> + 'a {
        let stream = &mut self.stream;
        std::iter::repeat_with(move || stream.next_op(rng))
    }

    /// Generate `n` operations starting at time 0 — collects
    /// [`iter`](Self::iter) after rewinding the stream clock.
    pub fn build(&mut self, rng: &mut dyn RngCore, n: usize) -> Vec<Op> {
        self.stream.rewind();
        self.iter(rng).take(n).collect()
    }

    /// Convert into the underlying stream (for open-loop client actors).
    pub fn into_stream(self) -> OpStream<A, K> {
        self.stream
    }
}

impl<A: std::fmt::Debug, K: std::fmt::Debug> std::fmt::Debug for TraceBuilder<A, K> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("TraceBuilder").field("stream", &self.stream).finish_non_exhaustive()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::arrivals::Poisson;
    use crate::keys::UniformKeys;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn mix_fraction_respected() {
        let mix = OpMix::new(0.75);
        let mut rng = StdRng::seed_from_u64(0);
        let n = 100_000;
        let reads = (0..n).filter(|_| mix.sample(&mut rng) == OpKind::Read).count();
        let frac = reads as f64 / n as f64;
        assert!((frac - 0.75).abs() < 0.01, "{frac}");
    }

    #[test]
    fn degenerate_mixes() {
        let mut rng = StdRng::seed_from_u64(1);
        assert_eq!(OpMix::new(1.0).sample(&mut rng), OpKind::Read);
        assert_eq!(OpMix::writes_only().sample(&mut rng), OpKind::Write);
    }

    #[test]
    fn trace_is_time_ordered_and_round_robins_clients() {
        let mut b = TraceBuilder::new(
            Poisson::per_second(1000.0),
            UniformKeys::new(16),
            OpMix::linkedin(),
            4,
        );
        let mut rng = StdRng::seed_from_u64(2);
        let trace = b.build(&mut rng, 100);
        assert_eq!(trace.len(), 100);
        for w in trace.windows(2) {
            assert!(w[1].at_ms >= w[0].at_ms);
        }
        assert_eq!(trace[0].client, 0);
        assert_eq!(trace[5].client, 1);
        assert!(trace.iter().all(|o| o.key < 16));
    }

    #[test]
    fn build_matches_streaming_pull() {
        // `build` must be exactly "rewind + n pulls" from the stream.
        let mk = || {
            TraceBuilder::new(
                Poisson::per_second(500.0),
                UniformKeys::new(8),
                OpMix::new(0.5),
                3,
            )
        };
        let built = mk().build(&mut StdRng::seed_from_u64(9), 64);
        let mut stream = mk().into_stream();
        let mut rng = StdRng::seed_from_u64(9);
        let pulled: Vec<Op> = (0..64).map(|_| stream.next_op(&mut rng)).collect();
        assert_eq!(built, pulled);
    }

    #[test]
    fn stream_is_o1_memory_and_monotone() {
        let mut stream = OpStream::new(
            Poisson::per_ms(1.0),
            UniformKeys::new(4),
            OpMix::linkedin(),
            2,
        );
        let mut rng = StdRng::seed_from_u64(3);
        let mut last = 0.0;
        for _ in 0..10_000 {
            let op = stream.next_op(&mut rng);
            assert!(op.at_ms >= last);
            last = op.at_ms;
        }
        assert!((stream.now_ms() - last).abs() < 1e-12);
        stream.rewind();
        assert_eq!(stream.now_ms(), 0.0);
    }

    /// The shared stream is a drop-in for a 1-client `OpStream`: same RNG,
    /// same clock, bit-identical ops — the contract the compact client
    /// table's shared-source mode rests on.
    #[test]
    fn shared_stream_replays_op_stream_bit_identically() {
        let mut boxed = OpStream::new(
            Poisson::per_second(750.0),
            UniformKeys::new(32),
            OpMix::linkedin(),
            1,
        );
        let shared = SharedStream::new(
            Poisson::per_second(750.0),
            UniformKeys::new(32),
            OpMix::linkedin(),
        );
        let mut rng_a = StdRng::seed_from_u64(6);
        let mut rng_b = StdRng::seed_from_u64(6);
        let mut clock = 0.0;
        for _ in 0..512 {
            let a = boxed.next_op(&mut rng_a);
            let b = shared.next_op_after(clock, &mut rng_b);
            clock = b.at_ms;
            assert_eq!(a, b);
        }
    }

    #[test]
    fn iter_continues_the_stream() {
        let mut b = TraceBuilder::new(
            Poisson::per_second(100.0),
            UniformKeys::new(2),
            OpMix::new(0.5),
            1,
        );
        let mut rng = StdRng::seed_from_u64(4);
        let first: Vec<Op> = b.iter(&mut rng).take(5).collect();
        let next: Vec<Op> = b.iter(&mut rng).take(5).collect();
        assert!(next[0].at_ms >= first[4].at_ms, "iter resumes, build rewinds");
    }
}
