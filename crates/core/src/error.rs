//! Error types for replica-configuration validation.

use std::fmt;

/// An invalid `(N, R, W)` replication configuration.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ConfigError {
    /// `N` was zero — a key must have at least one replica.
    ZeroReplicas,
    /// `R` was zero — reads must contact at least one replica.
    ZeroReadQuorum,
    /// `W` was zero — writes must be acknowledged by at least one replica.
    ZeroWriteQuorum,
    /// `R > N`: a read quorum cannot exceed the replication factor.
    ReadQuorumTooLarge {
        /// Requested read quorum size.
        r: u32,
        /// Replication factor.
        n: u32,
    },
    /// `W > N`: a write quorum cannot exceed the replication factor.
    WriteQuorumTooLarge {
        /// Requested write quorum size.
        w: u32,
        /// Replication factor.
        n: u32,
    },
}

impl fmt::Display for ConfigError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ConfigError::ZeroReplicas => write!(f, "replication factor N must be at least 1"),
            ConfigError::ZeroReadQuorum => write!(f, "read quorum R must be at least 1"),
            ConfigError::ZeroWriteQuorum => write!(f, "write quorum W must be at least 1"),
            ConfigError::ReadQuorumTooLarge { r, n } => {
                write!(f, "read quorum R={r} exceeds replication factor N={n}")
            }
            ConfigError::WriteQuorumTooLarge { w, n } => {
                write!(f, "write quorum W={w} exceeds replication factor N={n}")
            }
        }
    }
}

impl std::error::Error for ConfigError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_is_informative() {
        let e = ConfigError::ReadQuorumTooLarge { r: 4, n: 3 };
        let s = e.to_string();
        assert!(s.contains("R=4") && s.contains("N=3"));
    }
}
