//! Replication configuration `(N, R, W)` shared by every PBS model.

use crate::error::ConfigError;
use std::fmt;

/// A Dynamo-style replication configuration.
///
/// `N` is the replication factor, `R` the number of replica responses a read
/// coordinator waits for, and `W` the number of acknowledgments a write
/// coordinator waits for (§2.2 of the paper). The type enforces
/// `1 ≤ R ≤ N` and `1 ≤ W ≤ N` at construction.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct ReplicaConfig {
    n: u32,
    r: u32,
    w: u32,
}

impl ReplicaConfig {
    /// Validate and build a configuration.
    ///
    /// # Errors
    ///
    /// Returns a [`ConfigError`] when any of `N`, `R`, `W` is zero or when a
    /// quorum exceeds the replication factor.
    pub fn new(n: u32, r: u32, w: u32) -> Result<Self, ConfigError> {
        if n == 0 {
            return Err(ConfigError::ZeroReplicas);
        }
        if r == 0 {
            return Err(ConfigError::ZeroReadQuorum);
        }
        if w == 0 {
            return Err(ConfigError::ZeroWriteQuorum);
        }
        if r > n {
            return Err(ConfigError::ReadQuorumTooLarge { r, n });
        }
        if w > n {
            return Err(ConfigError::WriteQuorumTooLarge { w, n });
        }
        Ok(Self { n, r, w })
    }

    /// Replication factor `N`.
    #[inline]
    pub fn n(&self) -> u32 {
        self.n
    }

    /// Read quorum size `R`.
    #[inline]
    pub fn r(&self) -> u32 {
        self.r
    }

    /// Write quorum size `W`.
    #[inline]
    pub fn w(&self) -> u32 {
        self.w
    }

    /// A *strict* quorum: `R + W > N`, so any read quorum intersects any
    /// write quorum and reads are regular (§2.2).
    #[inline]
    pub fn is_strict(&self) -> bool {
        self.r + self.w > self.n
    }

    /// A *partial* quorum: `R + W ≤ N`; reads may miss the latest write.
    #[inline]
    pub fn is_partial(&self) -> bool {
        !self.is_strict()
    }

    /// Whether `W > ⌈N/2⌉ − 1`, i.e. `W > N/2`, which the paper notes
    /// ensures consistency in the presence of concurrent writes (no two
    /// write quorums can both commit without ordering).
    #[inline]
    pub fn serializes_concurrent_writes(&self) -> bool {
        2 * self.w > self.n
    }

    /// Cassandra's documented default: `N=3, R=W=1` (§2.3).
    pub fn cassandra_default() -> Self {
        Self { n: 3, r: 1, w: 1 }
    }

    /// Riak's documented default: `N=3, R=W=2` (§2.3).
    pub fn riak_default() -> Self {
        Self { n: 3, r: 2, w: 2 }
    }

    /// LinkedIn's low-latency Voldemort deployment: `N=3, R=W=1` (§2.3).
    pub fn voldemort_low_latency() -> Self {
        Self { n: 3, r: 1, w: 1 }
    }

    /// Majority quorums for a given `N`: `R = W = ⌊N/2⌋ + 1`.
    ///
    /// # Errors
    ///
    /// Returns [`ConfigError::ZeroReplicas`] for `n == 0`.
    pub fn majority(n: u32) -> Result<Self, ConfigError> {
        let q = n / 2 + 1;
        Self::new(n, q, q)
    }

    /// Enumerate every valid `(R, W)` pair for this `N`, in lexicographic
    /// order. Useful for SLA optimizers (`pbs-predictor`), which search the
    /// whole `O(N²)` space as §6 suggests.
    pub fn all_for_n(n: u32) -> impl Iterator<Item = ReplicaConfig> {
        (1..=n).flat_map(move |r| (1..=n).map(move |w| ReplicaConfig { n, r, w }))
    }
}

impl fmt::Display for ReplicaConfig {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "N={}, R={}, W={}", self.n, self.r, self.w)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn rejects_invalid() {
        assert_eq!(ReplicaConfig::new(0, 1, 1), Err(ConfigError::ZeroReplicas));
        assert_eq!(ReplicaConfig::new(3, 0, 1), Err(ConfigError::ZeroReadQuorum));
        assert_eq!(ReplicaConfig::new(3, 1, 0), Err(ConfigError::ZeroWriteQuorum));
        assert_eq!(
            ReplicaConfig::new(3, 4, 1),
            Err(ConfigError::ReadQuorumTooLarge { r: 4, n: 3 })
        );
        assert_eq!(
            ReplicaConfig::new(3, 1, 4),
            Err(ConfigError::WriteQuorumTooLarge { w: 4, n: 3 })
        );
    }

    #[test]
    fn strictness() {
        assert!(ReplicaConfig::new(3, 2, 2).unwrap().is_strict());
        assert!(ReplicaConfig::new(3, 1, 3).unwrap().is_strict());
        assert!(ReplicaConfig::new(3, 1, 1).unwrap().is_partial());
        assert!(ReplicaConfig::new(3, 1, 2).unwrap().is_partial());
        assert!(ReplicaConfig::new(2, 1, 1).unwrap().is_partial());
    }

    #[test]
    fn majority_sizes() {
        assert_eq!(ReplicaConfig::majority(3).unwrap().r(), 2);
        assert_eq!(ReplicaConfig::majority(4).unwrap().r(), 3);
        assert_eq!(ReplicaConfig::majority(5).unwrap().w(), 3);
        assert!(ReplicaConfig::majority(1).unwrap().is_strict());
        for n in 1..32 {
            assert!(ReplicaConfig::majority(n).unwrap().is_strict(), "n={n}");
        }
    }

    #[test]
    fn concurrent_write_serialization() {
        assert!(!ReplicaConfig::new(3, 1, 1).unwrap().serializes_concurrent_writes());
        assert!(ReplicaConfig::new(3, 1, 2).unwrap().serializes_concurrent_writes());
        assert!(!ReplicaConfig::new(4, 1, 2).unwrap().serializes_concurrent_writes());
        assert!(ReplicaConfig::new(4, 1, 3).unwrap().serializes_concurrent_writes());
    }

    #[test]
    fn all_for_n_covers_grid() {
        let all: Vec<_> = ReplicaConfig::all_for_n(3).collect();
        assert_eq!(all.len(), 9);
        assert!(all.iter().all(|c| c.n() == 3));
        assert!(all.contains(&ReplicaConfig::new(3, 2, 1).unwrap()));
    }

    #[test]
    fn display_round_trip() {
        let c = ReplicaConfig::new(5, 2, 3).unwrap();
        assert_eq!(c.to_string(), "N=5, R=2, W=3");
    }
}
