//! Quorum-system load and capacity under staleness tolerance (§3.3).
//!
//! *Load* (Naor & Wool) is the access frequency of the busiest replica under
//! the best possible access strategy; *capacity* is its inverse. Strict
//! quorum systems obey `load ≥ 1/√N`. An ε-intersecting probabilistic quorum
//! system (Malkhi et al.) obeys `load ≥ (1 − √ε)/√N`. The paper's §3.3
//! observation: tolerating `k` versions of staleness with overall violation
//! probability `p` only requires each of the `k` constituent systems to be
//! `ε = p^{1/k}`-intersecting, giving
//!
//! `load ≥ (1 − p^{1/(2k)}) / √N`
//!
//! which is *asymptotically* lower than both the strict bound and the plain
//! probabilistic bound — staleness tolerance buys capacity.
//!
//! Note on the paper text: the flattened arXiv rendering prints this bound as
//! `(1−p)^{1/2k}/√N`; the derivation from `ε = p^{1/k}` (also stated inline,
//! as "ε = k√p", i.e. the k-th root) pins the intended grouping to
//! `1 − p^{1/(2k)}`, which is also the only reading under which the bound
//! decreases as staleness tolerance grows.

/// Lower bound on the load of any strict quorum system over `n` replicas:
/// `1/√n` (Naor & Wool).
pub fn strict_load_lower_bound(n: u32) -> f64 {
    assert!(n > 0, "n must be positive");
    1.0 / (n as f64).sqrt()
}

/// Lower bound on the load of an ε-intersecting probabilistic quorum system:
/// `(1 − √ε)/√n` (Malkhi et al., Corollary 3.12).
pub fn epsilon_intersecting_load_lower_bound(n: u32, epsilon: f64) -> f64 {
    assert!(n > 0, "n must be positive");
    assert!((0.0..=1.0).contains(&epsilon), "epsilon must be a probability");
    ((1.0 - epsilon.sqrt()) / (n as f64).sqrt()).max(0.0)
}

/// §3.3 — lower bound on the load of a PBS *k-staleness*-tolerant system
/// with overall violation probability at most `p`:
/// `(1 − p^{1/(2k)})/√n`.
pub fn k_staleness_load_lower_bound(n: u32, p: f64, k: u32) -> f64 {
    assert!(k > 0, "k must be positive");
    assert!((0.0..=1.0).contains(&p), "p must be a probability");
    let epsilon = p.powf(1.0 / k as f64);
    epsilon_intersecting_load_lower_bound(n, epsilon)
}

/// §3.3 — lower bound on load under PBS *monotonic reads* with client read
/// rate `γcr` and global write rate `γgw`: the effective staleness tolerance
/// is `C = 1 + γgw/γcr`.
pub fn monotonic_reads_load_lower_bound(n: u32, p: f64, gamma_gw: f64, gamma_cr: f64) -> f64 {
    assert!(gamma_gw > 0.0 && gamma_cr > 0.0, "rates must be positive");
    assert!((0.0..=1.0).contains(&p), "p must be a probability");
    let c = 1.0 + gamma_gw / gamma_cr;
    let epsilon = p.powf(1.0 / c);
    epsilon_intersecting_load_lower_bound(n, epsilon)
}

/// Capacity (sustainable aggregate request rate relative to a single
/// replica's capacity) implied by a load value: `1/load`. Infinite when the
/// load bound is zero (i.e. the bound is vacuous).
pub fn capacity_from_load(load: f64) -> f64 {
    assert!(load >= 0.0, "load cannot be negative");
    if load == 0.0 {
        f64::INFINITY
    } else {
        1.0 / load
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn strict_bound_decreases_with_n() {
        assert!((strict_load_lower_bound(1) - 1.0).abs() < 1e-12);
        assert!((strict_load_lower_bound(4) - 0.5).abs() < 1e-12);
        assert!(strict_load_lower_bound(100) < strict_load_lower_bound(99));
    }

    #[test]
    fn epsilon_zero_recovers_strict_bound() {
        for n in [1, 3, 10, 100] {
            assert!(
                (epsilon_intersecting_load_lower_bound(n, 0.0) - strict_load_lower_bound(n)).abs()
                    < 1e-12
            );
        }
    }

    #[test]
    fn staleness_tolerance_lowers_load() {
        let n = 9;
        let p = 0.01;
        let l1 = k_staleness_load_lower_bound(n, p, 1);
        let l2 = k_staleness_load_lower_bound(n, p, 2);
        let l5 = k_staleness_load_lower_bound(n, p, 5);
        assert!(l1 > l2 && l2 > l5, "load bound must fall with k: {l1} {l2} {l5}");
        // k = 1 equals the plain ε-intersecting bound with ε = p.
        assert!((l1 - epsilon_intersecting_load_lower_bound(n, p)).abs() < 1e-12);
        // And every probabilistic bound sits below the strict one.
        assert!(l1 < strict_load_lower_bound(n));
    }

    #[test]
    fn load_bound_vanishes_as_k_grows() {
        let bound = k_staleness_load_lower_bound(9, 0.01, 10_000);
        assert!(bound < 1e-4, "huge staleness tolerance → vacuous load bound, got {bound}");
    }

    #[test]
    fn monotonic_reads_matches_k_formula() {
        // γgw/γcr = 4 → C = 5, so must match k=5 exactly.
        let a = monotonic_reads_load_lower_bound(16, 0.05, 4.0, 1.0);
        let b = k_staleness_load_lower_bound(16, 0.05, 5);
        assert!((a - b).abs() < 1e-12);
    }

    #[test]
    fn capacity_inverts_load() {
        assert!((capacity_from_load(0.25) - 4.0).abs() < 1e-12);
        assert!(capacity_from_load(0.0).is_infinite());
    }
}
