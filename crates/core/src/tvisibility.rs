//! Closed-form PBS t-visibility and ⟨k,t⟩-staleness for *expanding* quorums
//! (Equations 4–5 of the paper), parameterised by a write-diffusion model.
//!
//! ## The erratum in Equation 4
//!
//! The paper prints the first term of Eq. 4 as `C(N−W, N)/C(N, R)`, which is
//! dimensionally inconsistent (`C(N−W, N) = 0` whenever `W ≥ 1`). Equation 5
//! and the surrounding prose make the intent clear: conditioned on exactly
//! `c` replicas holding the version `t` seconds after commit, the read
//! quorum misses it with probability `C(N−c, R)/C(N, R)`, and Eq. 4 is the
//! expectation of that miss probability over the distribution of `c`:
//!
//! `p_st(t) = Σ_{c=W..N}  P[W_r(t) = c] · C(N−c, R)/C(N, R)`
//!
//! We implement this corrected form. At `t = 0`, expanding quorums have
//! exactly `W` replicas with the version (`P[W_r(0)=W] = 1`), recovering
//! Eq. 1; as `t → ∞`, `P[W_r = N] → 1` and the violation probability goes
//! to zero. Eq. 4 remains a conservative bound with respect to real
//! Dynamo-style systems because it assumes instantaneous reads (§3.4); the
//! `pbs-wars` crate models the full WARS message timeline.

use crate::combinatorics::{binomial_pmf, choose_ratio};
use crate::config::ReplicaConfig;

/// A model of write propagation: the distribution of the number of replicas
/// `W_r(t)` holding a committed version `t` seconds after commit.
///
/// Implementations must guarantee `pmf(c, t) = 0` for `c < W` or `c > N`
/// (at commit time `W` replicas already hold the value by definition) and
/// `Σ_c pmf(c, t) = 1` for every `t ≥ 0`.
pub trait WriteDiffusion {
    /// `P[W_r(t) = c]` — probability exactly `c` replicas hold the version
    /// `t` seconds (or whatever unit the caller uses consistently) after the
    /// write committed.
    fn pmf(&self, c: u32, t: f64) -> f64;
}

/// Frozen (non-expanding) quorums: the write quorum never grows. Under this
/// model Eq. 4 degenerates to Eq. 1, which is how the paper's closed-form
/// k-staleness analysis treats quorums.
#[derive(Debug, Clone, Copy)]
pub struct FrozenDiffusion {
    cfg: ReplicaConfig,
}

impl FrozenDiffusion {
    /// Diffusion that never propagates beyond the initial `W` replicas.
    pub fn new(cfg: ReplicaConfig) -> Self {
        Self { cfg }
    }
}

impl WriteDiffusion for FrozenDiffusion {
    fn pmf(&self, c: u32, _t: f64) -> f64 {
        if c == self.cfg.w() {
            1.0
        } else {
            0.0
        }
    }
}

/// Independent per-replica anti-entropy: each of the `N − W` replicas that
/// missed the synchronous write receives it after an i.i.d. delay with CDF
/// `F(t)`, so `W_r(t) = W + Binomial(N − W, F(t))`.
///
/// This matches the "expanding partial quorum" behaviour of §2.2: the
/// coordinator sent the write to all `N` replicas, the slowest `N − W`
/// deliveries are the anti-entropy tail.
pub struct BinomialDiffusion<F> {
    cfg: ReplicaConfig,
    arrival_cdf: F,
}

impl<F: Fn(f64) -> f64> BinomialDiffusion<F> {
    /// Build from an arrival-time CDF for the post-commit stragglers.
    ///
    /// `arrival_cdf(t)` must be a CDF: nondecreasing from 0 (at `t ≤ 0`)
    /// toward 1.
    pub fn new(cfg: ReplicaConfig, arrival_cdf: F) -> Self {
        Self { cfg, arrival_cdf }
    }
}

impl<F: Fn(f64) -> f64> WriteDiffusion for BinomialDiffusion<F> {
    fn pmf(&self, c: u32, t: f64) -> f64 {
        let (n, w) = (self.cfg.n(), self.cfg.w());
        if c < w || c > n {
            return 0.0;
        }
        let p = (self.arrival_cdf)(t.max(0.0)).clamp(0.0, 1.0);
        binomial_pmf((n - w) as u64, (c - w) as u64, p)
    }
}

impl<F> std::fmt::Debug for BinomialDiffusion<F> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("BinomialDiffusion").field("cfg", &self.cfg).finish_non_exhaustive()
    }
}

/// Exponential anti-entropy with rate `λ` (mean straggler delay `1/λ`):
/// `W_r(t) = W + Binomial(N − W, 1 − e^{−λt})`.
#[derive(Debug, Clone, Copy)]
pub struct ExponentialDiffusion {
    cfg: ReplicaConfig,
    rate: f64,
}

impl ExponentialDiffusion {
    /// Exponential straggler-arrival model with the given rate (per time
    /// unit). Panics if `rate` is not positive.
    pub fn new(cfg: ReplicaConfig, rate: f64) -> Self {
        assert!(rate > 0.0, "diffusion rate must be positive");
        Self { cfg, rate }
    }
}

impl WriteDiffusion for ExponentialDiffusion {
    fn pmf(&self, c: u32, t: f64) -> f64 {
        let (n, w) = (self.cfg.n(), self.cfg.w());
        if c < w || c > n {
            return 0.0;
        }
        let p = if t <= 0.0 { 0.0 } else { 1.0 - (-self.rate * t).exp() };
        binomial_pmf((n - w) as u64, (c - w) as u64, p)
    }
}

/// Empirical diffusion built from observed per-replica arrival offsets,
/// e.g. extracted from a `pbs-kvs` simulation or production tracing.
///
/// `arrival_offsets[i]` holds, for trial `i`, the sorted delays (relative to
/// commit) at which the `N − W` straggler replicas received the write.
#[derive(Debug, Clone)]
pub struct EmpiricalDiffusion {
    cfg: ReplicaConfig,
    /// Per-trial sorted straggler arrival offsets.
    trials: Vec<Vec<f64>>,
}

impl EmpiricalDiffusion {
    /// Build from per-trial straggler arrival offsets. Each inner vector is
    /// sorted internally; trials shorter than `N − W` are treated as if the
    /// missing replicas never receive the write (e.g. crashed nodes).
    pub fn new(cfg: ReplicaConfig, mut trials: Vec<Vec<f64>>) -> Self {
        for t in &mut trials {
            t.sort_by(|a, b| a.partial_cmp(b).expect("arrival offsets must not be NaN"));
        }
        Self { cfg, trials }
    }

    /// Number of recorded trials.
    pub fn len(&self) -> usize {
        self.trials.len()
    }

    /// True when no trials were recorded.
    pub fn is_empty(&self) -> bool {
        self.trials.is_empty()
    }
}

impl WriteDiffusion for EmpiricalDiffusion {
    fn pmf(&self, c: u32, t: f64) -> f64 {
        let (n, w) = (self.cfg.n(), self.cfg.w());
        if c < w || c > n || self.trials.is_empty() {
            return 0.0;
        }
        let extra = (c - w) as usize;
        let mut hits = 0usize;
        for trial in &self.trials {
            // Number of stragglers that have arrived by t (sorted → partition
            // point).
            let arrived = trial.partition_point(|&x| x <= t);
            let arrived = arrived.min((n - w) as usize);
            if arrived == extra {
                hits += 1;
            }
        }
        hits as f64 / self.trials.len() as f64
    }
}

/// **Equation 4 (corrected)** — probability that a read starting `t` after a
/// write commits misses that write, under the given diffusion model:
///
/// `p_st(t) = Σ_{c=W..N} P[W_r(t)=c] · C(N−c, R)/C(N, R)`
///
/// This assumes instantaneous reads and is therefore a conservative upper
/// bound for real systems (§3.4).
pub fn t_visibility_violation<D: WriteDiffusion + ?Sized>(
    cfg: ReplicaConfig,
    diffusion: &D,
    t: f64,
) -> f64 {
    let (n, r, w) = (cfg.n(), cfg.r(), cfg.w());
    let mut p = 0.0;
    for c in w..=n {
        let mass = diffusion.pmf(c, t);
        if mass > 0.0 {
            p += mass * choose_ratio((n - c) as u64, n as u64, r as u64);
        }
    }
    p.clamp(0.0, 1.0)
}

/// Probability of a consistent read at offset `t` — complement of
/// [`t_visibility_violation`].
pub fn prob_consistent_at<D: WriteDiffusion + ?Sized>(
    cfg: ReplicaConfig,
    diffusion: &D,
    t: f64,
) -> f64 {
    1.0 - t_visibility_violation(cfg, diffusion, t)
}

/// **Equation 5** — ⟨k,t⟩-staleness violation probability: the read misses
/// all of the last `k` versions even though the oldest of them committed at
/// least `t` ago. The paper's conservative bound assumes all `k` writes
/// committed simultaneously, so the single-write probability is
/// exponentiated by `k`.
pub fn kt_staleness_violation<D: WriteDiffusion + ?Sized>(
    cfg: ReplicaConfig,
    diffusion: &D,
    t: f64,
    k: u32,
) -> f64 {
    t_visibility_violation(cfg, diffusion, t).powi(k as i32)
}

/// Refined ⟨k,t⟩ bound when per-version commit offsets are known (§3.5's
/// "individual t" improvement): `offsets[j]` is the elapsed time since the
/// j-th most recent version committed. The violation probability is the
/// product of each version's individual miss probability.
pub fn kt_staleness_violation_individual<D: WriteDiffusion + ?Sized>(
    cfg: ReplicaConfig,
    diffusion: &D,
    offsets: &[f64],
) -> f64 {
    offsets
        .iter()
        .map(|&t| t_visibility_violation(cfg, diffusion, t))
        .product()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::staleness::non_intersection_probability;

    fn cfg(n: u32, r: u32, w: u32) -> ReplicaConfig {
        ReplicaConfig::new(n, r, w).unwrap()
    }

    #[test]
    fn frozen_reduces_to_eq1() {
        for (n, r, w) in [(3, 1, 1), (3, 1, 2), (5, 2, 1), (10, 3, 2)] {
            let c = cfg(n, r, w);
            let d = FrozenDiffusion::new(c);
            for &t in &[0.0, 1.0, 1e6] {
                let p = t_visibility_violation(c, &d, t);
                assert!((p - non_intersection_probability(c)).abs() < 1e-12, "{c} t={t}");
            }
        }
    }

    #[test]
    fn exponential_diffusion_at_zero_matches_eq1_and_decays() {
        let c = cfg(3, 1, 1);
        let d = ExponentialDiffusion::new(c, 0.5);
        let p0 = t_visibility_violation(c, &d, 0.0);
        assert!((p0 - 2.0 / 3.0).abs() < 1e-12);
        let mut prev = p0;
        for i in 1..=50 {
            let p = t_visibility_violation(c, &d, i as f64 * 0.5);
            assert!(p <= prev + 1e-12, "must be nonincreasing in t");
            prev = p;
        }
        assert!(prev < 1e-4, "staleness should vanish for large t, got {prev}");
    }

    #[test]
    fn strict_quorum_never_stale_under_any_diffusion() {
        let c = cfg(3, 2, 2);
        let d = ExponentialDiffusion::new(c, 0.01);
        for &t in &[0.0, 0.1, 10.0] {
            assert_eq!(t_visibility_violation(c, &d, t), 0.0);
        }
    }

    #[test]
    fn binomial_diffusion_pmf_sums_to_one() {
        let c = cfg(7, 2, 2);
        let d = BinomialDiffusion::new(c, |t: f64| 1.0 - (-t).exp());
        for &t in &[0.0, 0.5, 2.0, 100.0] {
            let sum: f64 = (0..=7).map(|x| d.pmf(x, t)).sum();
            assert!((sum - 1.0).abs() < 1e-12, "t={t} sum={sum}");
        }
    }

    #[test]
    fn empirical_diffusion_counts_arrivals() {
        let c = cfg(3, 1, 1);
        // Two trials; stragglers (N−W = 2) arrive at the given offsets.
        let d = EmpiricalDiffusion::new(c, vec![vec![1.0, 5.0], vec![2.0, 3.0]]);
        assert_eq!(d.len(), 2);
        // t=0: nobody extra arrived → c=1 w.p. 1.
        assert!((d.pmf(1, 0.0) - 1.0).abs() < 1e-12);
        // t=1.5: trial 1 has one arrival, trial 2 has none.
        assert!((d.pmf(2, 1.5) - 0.5).abs() < 1e-12);
        assert!((d.pmf(1, 1.5) - 0.5).abs() < 1e-12);
        // t=10: both trials fully propagated → c=3.
        assert!((d.pmf(3, 10.0) - 1.0).abs() < 1e-12);
        // Violation probability decreases across those times.
        let p0 = t_visibility_violation(c, &d, 0.0);
        let p1 = t_visibility_violation(c, &d, 1.5);
        let p2 = t_visibility_violation(c, &d, 10.0);
        assert!(p0 > p1 && p1 > p2);
        assert_eq!(p2, 0.0);
    }

    #[test]
    fn eq5_exponentiates_eq4() {
        let c = cfg(3, 1, 1);
        let d = ExponentialDiffusion::new(c, 0.3);
        let t = 1.2;
        let p1 = t_visibility_violation(c, &d, t);
        for k in 1..5 {
            let pk = kt_staleness_violation(c, &d, t, k);
            assert!((pk - p1.powi(k as i32)).abs() < 1e-12);
        }
    }

    #[test]
    fn individual_offsets_tighter_than_simultaneous_bound() {
        let c = cfg(3, 1, 1);
        let d = ExponentialDiffusion::new(c, 0.3);
        // Oldest version committed 5.0 ago, newer ones more recently. The
        // conservative Eq. 5 uses t = time since the *k-th newest* commit and
        // assumes all k committed simultaneously at the most pessimistic
        // point; with real (older) offsets the product is no larger than
        // exponentiating the *newest* offset.
        let offsets = [0.5, 2.0, 5.0];
        let refined = kt_staleness_violation_individual(c, &d, &offsets);
        let conservative = kt_staleness_violation(c, &d, 0.5, 3);
        assert!(refined <= conservative + 1e-15);
    }
}
