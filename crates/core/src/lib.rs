//! # pbs-core — closed-form Probabilistically Bounded Staleness
//!
//! This crate implements the analytical backbone of *"Probabilistically
//! Bounded Staleness for Practical Partial Quorums"* (Bailis et al., VLDB
//! 2012):
//!
//! * **Equation 1** — probability a random read quorum misses the last write
//!   quorum ([`staleness::non_intersection_probability`]).
//! * **Equation 2** — PBS *k-staleness*: the miss probability is
//!   exponentially reduced by tolerating `k` versions of staleness
//!   ([`staleness::k_staleness_violation`]).
//! * **Equation 3** — PBS *monotonic reads* as a k-staleness special case
//!   with `k = 1 + γgw/γcr` ([`staleness::monotonic_reads_violation`]).
//! * **Equation 4** — PBS *t-visibility* for expanding quorums, parameterised
//!   by a write-diffusion model ([`tvisibility::t_visibility_violation`]).
//! * **Equation 5** — PBS *⟨k,t⟩-staleness* ([`tvisibility::kt_staleness_violation`]).
//! * **§3.3** — load/capacity improvements for staleness-tolerant quorum
//!   systems ([`load`]).
//!
//! Everything here is deterministic, allocation-free in steady state, and has
//! no dependencies; the Monte-Carlo machinery lives in `pbs-wars` and the
//! simulated data store in `pbs-kvs`.
//!
//! ## Quick example
//!
//! ```
//! use pbs_core::{ReplicaConfig, staleness};
//!
//! // Cassandra's defaults: N=3, R=W=1 (partial quorum).
//! let cfg = ReplicaConfig::new(3, 1, 1).unwrap();
//! assert!(!cfg.is_strict());
//!
//! // Probability a read misses the most recent write (Eq. 1): 2/3.
//! let p1 = staleness::non_intersection_probability(cfg);
//! assert!((p1 - 2.0 / 3.0).abs() < 1e-12);
//!
//! // …but the probability of being >2 versions stale is smaller (Eq. 2):
//! // (2/3)^2 = 4/9.
//! let p2 = staleness::k_staleness_violation(cfg, 2);
//! assert!((p2 - 4.0 / 9.0).abs() < 1e-12);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]
#![warn(missing_debug_implementations)]

pub mod combinatorics;
pub mod config;
pub mod error;
pub mod load;
pub mod staleness;
pub mod tvisibility;

pub use config::ReplicaConfig;
pub use error::ConfigError;
