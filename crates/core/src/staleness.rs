//! Closed-form PBS k-staleness and monotonic-reads probabilities
//! (Equations 1–3 of the paper).
//!
//! These formulas model *non-expanding* quorums: `W` of `N` replicas are
//! chosen uniformly at random per write, `R` of `N` per read, and replica
//! sets do not grow via anti-entropy. For Dynamo-style expanding quorums
//! they are conservative upper bounds on staleness (§3.1).

use crate::combinatorics::choose_ratio;
use crate::config::ReplicaConfig;

/// **Equation 1** — probability that a uniformly random read quorum does
/// *not* intersect the most recent write quorum:
///
/// `p_s = C(N − W, R) / C(N, R)`
///
/// Returns `0` for strict quorums (`R + W > N`), where intersection is
/// guaranteed.
pub fn non_intersection_probability(cfg: ReplicaConfig) -> f64 {
    let (n, r, w) = (cfg.n() as u64, cfg.r() as u64, cfg.w() as u64);
    if cfg.is_strict() {
        return 0.0;
    }
    choose_ratio(n - w, n, r)
}

/// **Equation 2** — probability of violating PBS *k-staleness*: the read
/// quorum misses *all* of the last `k` independent write quorums, so the
/// returned value is more than `k` versions old:
///
/// `p_sk = (C(N − W, R) / C(N, R))^k`
///
/// `k = 0` is degenerate ("stale by more than zero versions" before any
/// intersection requirement) and returns `1.0`; callers normally use
/// `k ≥ 1`.
pub fn k_staleness_violation(cfg: ReplicaConfig, k: u32) -> f64 {
    non_intersection_probability(cfg).powi(k as i32)
}

/// Probability that a read returns a value within the last `k` committed
/// versions — the complement of [`k_staleness_violation`].
pub fn prob_within_k_versions(cfg: ReplicaConfig, k: u32) -> f64 {
    1.0 - k_staleness_violation(cfg, k)
}

/// Expected number of versions of staleness under the Eq.-2 geometric tail.
///
/// A read is "at least k versions stale" with probability `p_s^k`, so the
/// expectation telescopes to `Σ_{k≥1} p_s^k = p_s / (1 − p_s)`. Strict
/// quorums return `0`; the degenerate fully-miss case (`p_s = 1`, impossible
/// for valid configs since `W ≥ 1` forces intersection mass) would return
/// infinity.
pub fn expected_staleness_versions(cfg: ReplicaConfig) -> f64 {
    let ps = non_intersection_probability(cfg);
    if ps >= 1.0 {
        f64::INFINITY
    } else {
        ps / (1.0 - ps)
    }
}

/// Smallest `k` such that the k-staleness violation probability is at most
/// `target` — "how many versions must I tolerate for 1 − target confidence?"
///
/// Returns `None` if `target` is unreachable (`p_s = 1`, impossible for valid
/// configs) and `Some(1)` when even `k = 1` suffices (including all strict
/// quorums).
pub fn k_for_target(cfg: ReplicaConfig, target: f64) -> Option<u32> {
    assert!(
        (0.0..1.0).contains(&target) && target > 0.0,
        "target must be in (0, 1), got {target}"
    );
    let ps = non_intersection_probability(cfg);
    if ps == 0.0 {
        return Some(1);
    }
    if ps >= 1.0 {
        return None;
    }
    // p_s^k ≤ target  ⇔  k ≥ ln(target)/ln(p_s)  (both logs negative).
    let k = (target.ln() / ps.ln()).ceil();
    Some((k as u32).max(1))
}

/// **Equation 3** — probability of violating PBS *monotonic reads*: with a
/// client read rate `γcr` and a global write rate `γgw` to the same key,
/// `k = 1 + γgw/γcr` versions land between successive client reads, and the
/// violation probability is `p_s^(1 + γgw/γcr)`.
///
/// Rates must be positive. Non-integer exponents are meaningful here (the
/// paper computes expectations over the rate distribution).
pub fn monotonic_reads_violation(cfg: ReplicaConfig, gamma_gw: f64, gamma_cr: f64) -> f64 {
    assert!(gamma_gw > 0.0, "global write rate must be positive");
    assert!(gamma_cr > 0.0, "client read rate must be positive");
    let ps = non_intersection_probability(cfg);
    ps.powf(1.0 + gamma_gw / gamma_cr)
}

/// Strict monotonic reads (§3.2): the client must observe *strictly newer*
/// data when it exists, so the exponent drops to `γgw/γcr`.
pub fn strict_monotonic_reads_violation(cfg: ReplicaConfig, gamma_gw: f64, gamma_cr: f64) -> f64 {
    assert!(gamma_gw > 0.0, "global write rate must be positive");
    assert!(gamma_cr > 0.0, "client read rate must be positive");
    let ps = non_intersection_probability(cfg);
    ps.powf(gamma_gw / gamma_cr)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn cfg(n: u32, r: u32, w: u32) -> ReplicaConfig {
        ReplicaConfig::new(n, r, w).unwrap()
    }

    #[test]
    fn eq1_paper_values() {
        // §2.1: N=100, R=W=30 → 1.88e-6.
        let p = non_intersection_probability(cfg(100, 30, 30));
        assert!((p / 1.88e-6 - 1.0).abs() < 0.01);
        // §2.1: N=3, R=W=1 → 2/3 (printed as 0.6-repeating in the paper).
        let p = non_intersection_probability(cfg(3, 1, 1));
        assert!((p - 2.0 / 3.0).abs() < 1e-12);
    }

    #[test]
    fn eq1_strict_is_zero() {
        for n in 1..=10 {
            for r in 1..=n {
                for w in 1..=n {
                    let c = cfg(n, r, w);
                    if c.is_strict() {
                        assert_eq!(non_intersection_probability(c), 0.0, "{c}");
                    } else {
                        assert!(non_intersection_probability(c) > 0.0, "{c}");
                    }
                }
            }
        }
    }

    #[test]
    fn eq2_section_3_1_values() {
        // §3.1, N=3, R=W=1 (probabilities of returning within k versions;
        // the paper prints repeating decimals: 0.5̄ = 5/9, 0.703, 0.868, 0.98).
        let c = cfg(3, 1, 1);
        assert!((prob_within_k_versions(c, 2) - 5.0 / 9.0).abs() < 1e-12);
        assert!((prob_within_k_versions(c, 3) - 0.7037).abs() < 1e-4);
        assert!(prob_within_k_versions(c, 5) > 0.868);
        assert!(prob_within_k_versions(c, 10) > 0.98);

        // §3.1, N=3, R=1, W=2: k=1 → 2/3, k=2 → 8/9, k=5 → >0.995.
        let c = cfg(3, 1, 2);
        assert!((prob_within_k_versions(c, 1) - 2.0 / 3.0).abs() < 1e-12);
        assert!((prob_within_k_versions(c, 2) - 8.0 / 9.0).abs() < 1e-12);
        assert!(prob_within_k_versions(c, 5) > 0.995);

        // R=2, W=1 is equivalent by symmetry of Eq. 1? Not algebraically
        // identical in general, but for N=3 the paper calls them equivalent:
        // C(2,2)/C(3,2) = 1/3 = C(1,1)/C(3,1).
        let c2 = cfg(3, 2, 1);
        assert!(
            (non_intersection_probability(c2) - non_intersection_probability(c)).abs() < 1e-12
        );
    }

    #[test]
    fn eq2_monotone_decreasing_in_k() {
        let c = cfg(5, 2, 1);
        let mut prev = 1.0;
        for k in 1..30 {
            let p = k_staleness_violation(c, k);
            assert!(p <= prev + 1e-15, "k={k}");
            prev = p;
        }
    }

    #[test]
    fn expected_staleness_matches_geometric() {
        let c = cfg(3, 1, 1); // ps = 2/3 → expectation 2.
        assert!((expected_staleness_versions(c) - 2.0).abs() < 1e-12);
        let strict = cfg(3, 2, 2);
        assert_eq!(expected_staleness_versions(strict), 0.0);
    }

    #[test]
    fn k_for_target_inverts_eq2() {
        let c = cfg(3, 1, 1);
        for &target in &[0.5, 0.1, 0.01, 1e-6] {
            let k = k_for_target(c, target).unwrap();
            assert!(k_staleness_violation(c, k) <= target, "k={k}, target={target}");
            if k > 1 {
                assert!(k_staleness_violation(c, k - 1) > target, "k too large");
            }
        }
        assert_eq!(k_for_target(cfg(3, 2, 2), 1e-9), Some(1));
    }

    #[test]
    fn monotonic_reads_special_cases() {
        let c = cfg(3, 1, 1);
        // γgw = γcr → k = 2 → (2/3)^2 = 4/9.
        let p = monotonic_reads_violation(c, 10.0, 10.0);
        assert!((p - 4.0 / 9.0).abs() < 1e-12);
        // Strict variant uses k = γgw/γcr = 1 → 2/3.
        let p = strict_monotonic_reads_violation(c, 10.0, 10.0);
        assert!((p - 2.0 / 3.0).abs() < 1e-12);
        // Faster client reads (γcr ≫ γgw) approach plain Eq. 1 from below.
        let p = monotonic_reads_violation(c, 0.001, 10.0);
        assert!(p < 2.0 / 3.0 && p > 0.6);
    }

    #[test]
    #[should_panic(expected = "target must be in (0, 1)")]
    fn k_for_target_rejects_bad_target() {
        let _ = k_for_target(cfg(3, 1, 1), 1.5);
    }
}
