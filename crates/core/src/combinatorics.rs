//! Exact and log-space combinatorics used by the PBS closed forms.
//!
//! The quorum formulas divide binomial coefficients whose magnitudes explode
//! well before `N = 100` (the paper's §2.1 example uses `N=100, R=W=30`).
//! We therefore compute ratios in log space via a Lanczos `ln Γ`
//! approximation, falling back to exact `u128` arithmetic for small inputs
//! (both paths are tested against each other).

/// Lanczos coefficients for `g = 7`, giving ~15 significant digits.
const LANCZOS_G: f64 = 7.0;
const LANCZOS_COEF: [f64; 9] = [
    0.999_999_999_999_809_9,
    676.520_368_121_885_1,
    -1_259.139_216_722_402_8,
    771.323_428_777_653_1,
    -176.615_029_162_140_6,
    12.507_343_278_686_905,
    -0.138_571_095_265_720_12,
    9.984_369_578_019_572e-6,
    1.505_632_735_149_311_6e-7,
];

/// Natural log of the Gamma function for `x > 0`.
///
/// Uses the Lanczos approximation with reflection unnecessary since inputs
/// here are always positive integers plus one.
pub fn ln_gamma(x: f64) -> f64 {
    debug_assert!(x > 0.0, "ln_gamma requires x > 0, got {x}");
    if x < 0.5 {
        // Reflection formula, kept for robustness even though quorum math
        // never hits it.
        let pi = std::f64::consts::PI;
        return (pi / (pi * x).sin()).ln() - ln_gamma(1.0 - x);
    }
    let x = x - 1.0;
    let mut acc = LANCZOS_COEF[0];
    for (i, &c) in LANCZOS_COEF.iter().enumerate().skip(1) {
        acc += c / (x + i as f64);
    }
    let t = x + LANCZOS_G + 0.5;
    0.5 * (2.0 * std::f64::consts::PI).ln() + (x + 0.5) * t.ln() - t + acc.ln()
}

/// `ln(n!)` for non-negative `n`.
pub fn ln_factorial(n: u64) -> f64 {
    // Small values come from an exact table so unit tests can rely on
    // bit-exact results for the common quorum sizes.
    const TABLE: [f64; 21] = [
        1.0,
        1.0,
        2.0,
        6.0,
        24.0,
        120.0,
        720.0,
        5_040.0,
        40_320.0,
        362_880.0,
        3_628_800.0,
        39_916_800.0,
        479_001_600.0,
        6_227_020_800.0,
        87_178_291_200.0,
        1_307_674_368_000.0,
        20_922_789_888_000.0,
        355_687_428_096_000.0,
        6_402_373_705_728_000.0,
        121_645_100_408_832_000.0,
        2_432_902_008_176_640_000.0,
    ];
    if (n as usize) < TABLE.len() {
        TABLE[n as usize].ln()
    } else {
        ln_gamma(n as f64 + 1.0)
    }
}

/// `ln C(n, k)`; returns `f64::NEG_INFINITY` when the coefficient is zero
/// (`k > n`).
pub fn ln_choose(n: u64, k: u64) -> f64 {
    if k > n {
        return f64::NEG_INFINITY;
    }
    if k == 0 || k == n {
        return 0.0;
    }
    ln_factorial(n) - ln_factorial(k) - ln_factorial(n - k)
}

/// Exact binomial coefficient in `u128`, or `None` on overflow.
///
/// Uses the multiplicative formula with interleaved division so intermediate
/// values stay minimal; exact for every coefficient that fits in `u128`.
pub fn choose_exact(n: u64, k: u64) -> Option<u128> {
    if k > n {
        return Some(0);
    }
    let k = k.min(n - k);
    let mut acc: u128 = 1;
    for i in 0..k {
        // acc * (n - i) is exact before division because acc already contains
        // C(n, i) and C(n, i) * (n - i) = C(n, i + 1) * (i + 1).
        acc = acc.checked_mul((n - i) as u128)? / (i as u128 + 1);
    }
    Some(acc)
}

/// Binomial coefficient as `f64` (exact when it fits in `u128`, log-space
/// otherwise).
pub fn choose(n: u64, k: u64) -> f64 {
    match choose_exact(n, k) {
        Some(v) => v as f64,
        None => ln_choose(n, k).exp(),
    }
}

/// Ratio `C(a, k) / C(b, k)` computed in log space.
///
/// This is the building block of every PBS closed form: Eq. 1 is
/// `choose_ratio(N − W, N, R)`. Returns `0.0` when the numerator vanishes
/// (`k > a`), and panics in debug builds if the denominator vanishes.
pub fn choose_ratio(a: u64, b: u64, k: u64) -> f64 {
    debug_assert!(k <= b, "denominator C({b},{k}) must be nonzero");
    if k > a {
        return 0.0;
    }
    if a == b {
        return 1.0;
    }
    (ln_choose(a, k) - ln_choose(b, k)).exp()
}

/// Hypergeometric pmf: probability of drawing exactly `x` marked items when
/// drawing `n` of `total` items of which `marked` are marked.
///
/// Used by `pbs-quorum` for exact intersection distributions.
pub fn hypergeometric_pmf(total: u64, marked: u64, n: u64, x: u64) -> f64 {
    if x > marked || x > n || n > total || n - x > total - marked {
        return 0.0;
    }
    (ln_choose(marked, x) + ln_choose(total - marked, n - x) - ln_choose(total, n)).exp()
}

/// Binomial pmf `C(n, k) p^k (1-p)^(n-k)` evaluated stably in log space.
pub fn binomial_pmf(n: u64, k: u64, p: f64) -> f64 {
    debug_assert!((0.0..=1.0).contains(&p), "p must be a probability");
    if k > n {
        return 0.0;
    }
    if p == 0.0 {
        return if k == 0 { 1.0 } else { 0.0 };
    }
    if p == 1.0 {
        return if k == n { 1.0 } else { 0.0 };
    }
    (ln_choose(n, k) + k as f64 * p.ln() + (n - k) as f64 * (1.0 - p).ln()).exp()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ln_gamma_matches_factorials() {
        for n in 1u64..=20 {
            let exact = ln_factorial(n);
            let lg = ln_gamma(n as f64 + 1.0);
            assert!(
                (exact - lg).abs() < 1e-9,
                "n={n}: table {exact} vs lanczos {lg}"
            );
        }
    }

    #[test]
    fn choose_small_values() {
        assert_eq!(choose_exact(0, 0), Some(1));
        assert_eq!(choose_exact(5, 0), Some(1));
        assert_eq!(choose_exact(5, 5), Some(1));
        assert_eq!(choose_exact(5, 2), Some(10));
        assert_eq!(choose_exact(10, 3), Some(120));
        assert_eq!(choose_exact(52, 5), Some(2_598_960));
        assert_eq!(choose_exact(3, 7), Some(0));
    }

    #[test]
    fn choose_exact_vs_log_space() {
        for n in 0u64..=60 {
            for k in 0..=n {
                let exact = choose_exact(n, k).unwrap() as f64;
                let approx = ln_choose(n, k).exp();
                let rel = (exact - approx).abs() / exact.max(1.0);
                assert!(rel < 1e-9, "C({n},{k}): {exact} vs {approx}");
            }
        }
    }

    #[test]
    fn choose_exact_large_overflow_is_none() {
        // C(200, 100) ≈ 9e58 > u128::MAX? u128 max ≈ 3.4e38, so this must
        // overflow.
        assert_eq!(choose_exact(200, 100), None);
        // …but the f64 path still produces a finite positive value.
        let v = choose(200, 100);
        assert!(v.is_finite() && v > 1e58);
    }

    #[test]
    fn choose_ratio_paper_example() {
        // §2.1: N=100, R=W=30 → p_s = C(70,30)/C(100,30) ≈ 1.88e-6.
        let ps = choose_ratio(70, 100, 30);
        assert!((ps / 1.88e-6 - 1.0).abs() < 0.01, "got {ps}");
        // §2.1: N=3, R=W=1 → p_s = C(2,1)/C(3,1) = 2/3. (The paper prints
        // "0.6" with an overline — the repeating decimal 0.666…)
        assert!((choose_ratio(2, 3, 1) - 2.0 / 3.0).abs() < 1e-12);
        assert!((choose_ratio(1, 3, 1) - 1.0 / 3.0).abs() < 1e-12);
    }

    #[test]
    fn hypergeometric_sums_to_one() {
        let (total, marked, n) = (20, 7, 9);
        let sum: f64 = (0..=n).map(|x| hypergeometric_pmf(total, marked, n, x)).sum();
        assert!((sum - 1.0).abs() < 1e-12);
    }

    #[test]
    fn binomial_pmf_sums_to_one() {
        for &p in &[0.0, 0.3, 0.5, 0.99, 1.0] {
            let sum: f64 = (0..=25).map(|k| binomial_pmf(25, k, p)).sum();
            assert!((sum - 1.0).abs() < 1e-12, "p={p}: sum={sum}");
        }
    }

    #[test]
    fn binomial_pmf_degenerate() {
        assert_eq!(binomial_pmf(10, 0, 0.0), 1.0);
        assert_eq!(binomial_pmf(10, 10, 1.0), 1.0);
        assert_eq!(binomial_pmf(10, 3, 0.0), 0.0);
    }
}
