//! Property-based tests for the closed-form PBS math.

use pbs_core::combinatorics::{binomial_pmf, choose, choose_exact, hypergeometric_pmf, ln_choose};
use pbs_core::staleness::{
    k_staleness_violation, monotonic_reads_violation, non_intersection_probability,
    prob_within_k_versions,
};
use pbs_core::tvisibility::{t_visibility_violation, ExponentialDiffusion, FrozenDiffusion};
use pbs_core::{load, ReplicaConfig};
use proptest::prelude::*;

/// Strategy producing an arbitrary valid (N, R, W) configuration.
fn any_config() -> impl Strategy<Value = ReplicaConfig> {
    (1u32..=24).prop_flat_map(|n| {
        (Just(n), 1u32..=n, 1u32..=n)
            .prop_map(|(n, r, w)| ReplicaConfig::new(n, r, w).expect("valid by construction"))
    })
}

proptest! {
    #[test]
    fn eq1_is_probability(cfg in any_config()) {
        let p = non_intersection_probability(cfg);
        prop_assert!((0.0..=1.0).contains(&p));
    }

    #[test]
    fn eq1_strict_iff_zero(cfg in any_config()) {
        let p = non_intersection_probability(cfg);
        if cfg.is_strict() {
            prop_assert_eq!(p, 0.0);
        } else {
            prop_assert!(p > 0.0);
        }
    }

    #[test]
    fn eq1_monotone_in_r_and_w(cfg in any_config()) {
        // Larger read or write quorums can only decrease miss probability.
        let p = non_intersection_probability(cfg);
        if cfg.r() < cfg.n() {
            let bigger_r = ReplicaConfig::new(cfg.n(), cfg.r() + 1, cfg.w()).unwrap();
            prop_assert!(non_intersection_probability(bigger_r) <= p + 1e-12);
        }
        if cfg.w() < cfg.n() {
            let bigger_w = ReplicaConfig::new(cfg.n(), cfg.r(), cfg.w() + 1).unwrap();
            prop_assert!(non_intersection_probability(bigger_w) <= p + 1e-12);
        }
    }

    #[test]
    fn eq2_probability_and_monotone_in_k(cfg in any_config(), k in 1u32..64) {
        let pk = k_staleness_violation(cfg, k);
        let pk1 = k_staleness_violation(cfg, k + 1);
        prop_assert!((0.0..=1.0).contains(&pk));
        prop_assert!(pk1 <= pk + 1e-15);
        prop_assert!((prob_within_k_versions(cfg, k) - (1.0 - pk)).abs() < 1e-15);
    }

    #[test]
    fn eq3_bounded_by_eq1(cfg in any_config(), gw in 0.001f64..1000.0, cr in 0.001f64..1000.0) {
        // Monotonic-reads violation (k ≥ 1 exponent ≥ 1) never exceeds the
        // single-read miss probability.
        let p = monotonic_reads_violation(cfg, gw, cr);
        prop_assert!((0.0..=1.0).contains(&p));
        prop_assert!(p <= non_intersection_probability(cfg) + 1e-15);
    }

    #[test]
    fn eq4_bounded_and_monotone(cfg in any_config(), rate in 0.01f64..10.0, t in 0.0f64..100.0) {
        let d = ExponentialDiffusion::new(cfg, rate);
        let p_now = t_visibility_violation(cfg, &d, t);
        let p_later = t_visibility_violation(cfg, &d, t + 1.0);
        prop_assert!((0.0..=1.0).contains(&p_now));
        prop_assert!(p_later <= p_now + 1e-12);
        // Frozen diffusion dominates every expanding model.
        let frozen = FrozenDiffusion::new(cfg);
        prop_assert!(p_now <= t_visibility_violation(cfg, &frozen, t) + 1e-12);
    }

    #[test]
    fn choose_exact_matches_log_space(n in 0u64..80, frac in 0.0f64..=1.0) {
        let k = ((n as f64) * frac).round() as u64;
        if let Some(exact) = choose_exact(n, k) {
            let approx = ln_choose(n, k).exp();
            let exact = exact as f64;
            let rel = (exact - approx).abs() / exact.max(1.0);
            prop_assert!(rel < 1e-8, "C({},{}) exact {} vs log {}", n, k, exact, approx);
        }
    }

    #[test]
    fn pascals_rule(n in 1u64..60, frac in 0.0f64..=1.0) {
        let k = 1 + ((n.saturating_sub(2)) as f64 * frac).round() as u64;
        if k <= n {
            let lhs = choose(n, k);
            let rhs = choose(n - 1, k - 1) + choose(n - 1, k);
            prop_assert!((lhs - rhs).abs() / lhs.max(1.0) < 1e-9);
        }
    }

    #[test]
    fn hypergeometric_normalises(total in 1u64..60, m_frac in 0.0f64..=1.0, n_frac in 0.0f64..=1.0) {
        let marked = (total as f64 * m_frac).round() as u64;
        let n = (total as f64 * n_frac).round() as u64;
        let sum: f64 = (0..=n).map(|x| hypergeometric_pmf(total, marked, n, x)).sum();
        prop_assert!((sum - 1.0).abs() < 1e-9, "sum={}", sum);
    }

    #[test]
    fn binomial_normalises(n in 0u64..120, p in 0.0f64..=1.0) {
        let sum: f64 = (0..=n).map(|k| binomial_pmf(n, k, p)).sum();
        prop_assert!((sum - 1.0).abs() < 1e-9, "sum={}", sum);
    }

    #[test]
    fn load_bounds_ordered(n in 1u32..100, p in 0.0f64..=1.0, k in 1u32..20) {
        let strict = load::strict_load_lower_bound(n);
        let eps = load::epsilon_intersecting_load_lower_bound(n, p);
        let kb = load::k_staleness_load_lower_bound(n, p, k);
        prop_assert!(eps <= strict + 1e-12);
        prop_assert!(kb <= eps + 1e-12, "k-staleness bound must not exceed k=1 bound");
        prop_assert!(kb >= 0.0);
    }
}
