//! Gifford's weighted voting (SOSP 1979) — the original quorum scheme the
//! paper's §2.1 lineage begins with ("Systems designers have long proposed
//! quorum systems as a replication strategy for distributed data", citing
//! Gifford's weighted voting).
//!
//! Each replica carries a vote weight; reads need `r` votes, writes `w`
//! votes, and `r + w > total` guarantees intersection. Uneven weights model
//! heterogeneous replicas (a beefy primary plus thin backups) and subsume
//! read-one/write-all as special cases.

use crate::nodeset::NodeSet;
use crate::systems::QuorumSystem;
use rand::Rng;
use rand::RngCore;

/// A weighted-voting quorum system.
#[derive(Debug, Clone)]
pub struct WeightedVoting {
    weights: Vec<u32>,
    total: u32,
    read_votes: u32,
    write_votes: u32,
}

impl WeightedVoting {
    /// Build from per-replica vote weights and read/write vote thresholds.
    ///
    /// Panics unless `0 < r, w ≤ total` and every weight is positive; note
    /// that strictness additionally requires `r + w > total` (checked by
    /// [`QuorumSystem::is_strict`], not at construction, so partial
    /// weighted systems can be studied too).
    pub fn new(weights: Vec<u32>, read_votes: u32, write_votes: u32) -> Self {
        assert!(!weights.is_empty() && weights.len() <= 64);
        assert!(weights.iter().all(|&w| w > 0), "weights must be positive");
        let total: u32 = weights.iter().sum();
        assert!((1..=total).contains(&read_votes), "invalid read threshold");
        assert!((1..=total).contains(&write_votes), "invalid write threshold");
        Self { weights, total, read_votes, write_votes }
    }

    /// Total votes in the system.
    pub fn total_votes(&self) -> u32 {
        self.total
    }

    /// Greedily accumulate votes from a random permutation of replicas
    /// until the threshold is met — a minimal random vote quorum.
    fn sample_votes(&self, rng: &mut dyn RngCore, needed: u32) -> NodeSet {
        let n = self.weights.len();
        let mut perm: [usize; 64] = [0; 64];
        for (i, p) in perm.iter_mut().enumerate().take(n) {
            *p = i;
        }
        // Partial Fisher–Yates while collecting votes.
        let mut votes = 0u32;
        let mut set = NodeSet::EMPTY;
        for i in 0..n {
            let j = rng.gen_range(i..n);
            perm.swap(i, j);
            let node = perm[i];
            set.insert(node as u32);
            votes += self.weights[node];
            if votes >= needed {
                break;
            }
        }
        debug_assert!(votes >= needed);
        set
    }
}

impl QuorumSystem for WeightedVoting {
    fn universe(&self) -> u32 {
        self.weights.len() as u32
    }

    fn sample_read(&self, rng: &mut dyn RngCore) -> NodeSet {
        self.sample_votes(rng, self.read_votes)
    }

    fn sample_write(&self, rng: &mut dyn RngCore) -> NodeSet {
        self.sample_votes(rng, self.write_votes)
    }

    fn is_strict(&self) -> bool {
        self.read_votes + self.write_votes > self.total
    }

    fn name(&self) -> String {
        format!(
            "WeightedVoting(weights={:?}, r={}, w={})",
            self.weights, self.read_votes, self.write_votes
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::analysis;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn uniform_weights_reduce_to_majority() {
        // 5 replicas × 1 vote, r = w = 3 → plain majority.
        let sys = WeightedVoting::new(vec![1; 5], 3, 3);
        assert!(sys.is_strict());
        let p = analysis::intersection_probability(&sys, 20_000, 1);
        assert_eq!(p, 1.0);
        let mut rng = StdRng::seed_from_u64(2);
        for _ in 0..100 {
            assert_eq!(sys.sample_read(&mut rng).len(), 3);
        }
    }

    #[test]
    fn strict_weighted_quorums_always_intersect() {
        // Heavy primary (3 votes) + four thin replicas: r=2, w=3 of total 7
        // is NOT strict; r=4, w=4 is.
        let strict = WeightedVoting::new(vec![3, 1, 1, 1, 1], 4, 4);
        assert!(strict.is_strict());
        assert_eq!(analysis::intersection_probability(&strict, 30_000, 3), 1.0);

        let partial = WeightedVoting::new(vec![3, 1, 1, 1, 1], 2, 3);
        assert!(!partial.is_strict());
        let p = analysis::intersection_probability(&partial, 30_000, 3);
        assert!(p < 1.0, "partial weighted system must sometimes miss: {p}");
    }

    #[test]
    fn read_one_write_all_as_weighted_voting() {
        // r = 1, w = total: reads touch any single replica, writes all.
        let sys = WeightedVoting::new(vec![1; 4], 1, 4);
        assert!(sys.is_strict());
        let mut rng = StdRng::seed_from_u64(4);
        for _ in 0..50 {
            assert_eq!(sys.sample_read(&mut rng).len(), 1);
            assert_eq!(sys.sample_write(&mut rng).len(), 4);
        }
    }

    #[test]
    fn heavy_primary_concentrates_load() {
        // With a 5-vote primary and r=5, every read quorum containing the
        // primary alone suffices → primary appears in nearly every quorum.
        let sys = WeightedVoting::new(vec![5, 1, 1, 1, 1, 1], 5, 6);
        let load = analysis::measure_load(&sys, 50_000, 5);
        assert!(load > 0.5, "primary-dominated load, got {load}");
    }

    #[test]
    #[should_panic(expected = "invalid read threshold")]
    fn threshold_exceeding_total_panics() {
        let _ = WeightedVoting::new(vec![1, 1], 3, 1);
    }
}
