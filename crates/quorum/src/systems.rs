//! Quorum-system constructions: random fixed-size, majority, grid, tree.

use crate::nodeset::NodeSet;
use rand::Rng;
use rand::RngCore;

/// A (possibly probabilistic) quorum system: a rule for drawing read and
/// write quorums over a universe of `n` replicas.
///
/// Strict systems guarantee every sampled read quorum intersects every
/// sampled write quorum; partial systems do not (§2.1).
pub trait QuorumSystem: Send + Sync {
    /// Number of replicas in the universe (≤ 64).
    fn universe(&self) -> u32;

    /// Draw a read quorum.
    fn sample_read(&self, rng: &mut dyn RngCore) -> NodeSet;

    /// Draw a write quorum.
    fn sample_write(&self, rng: &mut dyn RngCore) -> NodeSet;

    /// Whether the construction guarantees read/write intersection.
    fn is_strict(&self) -> bool;

    /// Name for reports.
    fn name(&self) -> String;
}

/// Sample a uniformly random subset of size `k` from `0..n` (partial
/// Fisher–Yates over a stack buffer).
pub(crate) fn random_subset(rng: &mut dyn RngCore, n: u32, k: u32) -> NodeSet {
    debug_assert!(k <= n && n <= 64);
    let mut pool: [u32; 64] = [0; 64];
    for (i, slot) in pool.iter_mut().enumerate().take(n as usize) {
        *slot = i as u32;
    }
    let mut set = NodeSet::EMPTY;
    for i in 0..k as usize {
        let j = rng.gen_range(i..n as usize);
        pool.swap(i, j);
        set.insert(pool[i]);
    }
    set
}

/// The PBS probabilistic model: uniformly random read quorums of size `R`
/// and write quorums of size `W` over `N` replicas (Equation 1's setting).
#[derive(Debug, Clone, Copy)]
pub struct RandomFixed {
    n: u32,
    r: u32,
    w: u32,
}

impl RandomFixed {
    /// Build with `1 ≤ r, w ≤ n ≤ 64`.
    pub fn new(n: u32, r: u32, w: u32) -> Self {
        assert!((1..=64).contains(&n), "n must be in 1..=64");
        assert!((1..=n).contains(&r) && (1..=n).contains(&w));
        Self { n, r, w }
    }
}

impl QuorumSystem for RandomFixed {
    fn universe(&self) -> u32 {
        self.n
    }

    fn sample_read(&self, rng: &mut dyn RngCore) -> NodeSet {
        random_subset(rng, self.n, self.r)
    }

    fn sample_write(&self, rng: &mut dyn RngCore) -> NodeSet {
        random_subset(rng, self.n, self.w)
    }

    fn is_strict(&self) -> bool {
        self.r + self.w > self.n
    }

    fn name(&self) -> String {
        format!("RandomFixed(N={}, R={}, W={})", self.n, self.r, self.w)
    }
}

/// Majority quorums: every quorum is a uniformly random subset of size
/// `⌊N/2⌋ + 1`.
///
/// The paper writes the majority size as `⌈N/2⌉`, which coincides for odd
/// `N`; for even `N` intersection requires `⌊N/2⌋ + 1`, which is what we
/// use.
#[derive(Debug, Clone, Copy)]
pub struct Majority {
    n: u32,
}

impl Majority {
    /// Build over `n ≤ 64` replicas.
    pub fn new(n: u32) -> Self {
        assert!((1..=64).contains(&n));
        Self { n }
    }

    /// The quorum size `⌊N/2⌋ + 1`.
    pub fn quorum_size(&self) -> u32 {
        self.n / 2 + 1
    }
}

impl QuorumSystem for Majority {
    fn universe(&self) -> u32 {
        self.n
    }

    fn sample_read(&self, rng: &mut dyn RngCore) -> NodeSet {
        random_subset(rng, self.n, self.quorum_size())
    }

    fn sample_write(&self, rng: &mut dyn RngCore) -> NodeSet {
        random_subset(rng, self.n, self.quorum_size())
    }

    fn is_strict(&self) -> bool {
        true
    }

    fn name(&self) -> String {
        format!("Majority(N={})", self.n)
    }
}

/// Naor–Wool grid quorums: nodes arranged in a `side × side` grid; a quorum
/// is one full row plus one full column (chosen uniformly). Any two such
/// quorums intersect (one's row crosses the other's column), with quorum
/// size `2·side − 1 = O(√N)` — the classic low-load strict construction
/// referenced in §2.1.
#[derive(Debug, Clone, Copy)]
pub struct Grid {
    side: u32,
}

impl Grid {
    /// Build a `side × side` grid (`side² ≤ 64`, i.e. `side ≤ 8`).
    pub fn new(side: u32) -> Self {
        assert!(side >= 1 && side * side <= 64, "side² must be ≤ 64");
        Self { side }
    }

    fn node(&self, row: u32, col: u32) -> u32 {
        row * self.side + col
    }

    fn sample_quorum(&self, rng: &mut dyn RngCore) -> NodeSet {
        let row = rng.gen_range(0..self.side);
        let col = rng.gen_range(0..self.side);
        let mut set = NodeSet::EMPTY;
        for c in 0..self.side {
            set.insert(self.node(row, c));
        }
        for r in 0..self.side {
            set.insert(self.node(r, col));
        }
        set
    }
}

impl QuorumSystem for Grid {
    fn universe(&self) -> u32 {
        self.side * self.side
    }

    fn sample_read(&self, rng: &mut dyn RngCore) -> NodeSet {
        self.sample_quorum(rng)
    }

    fn sample_write(&self, rng: &mut dyn RngCore) -> NodeSet {
        self.sample_quorum(rng)
    }

    fn is_strict(&self) -> bool {
        true
    }

    fn name(&self) -> String {
        format!("Grid({0}×{0})", self.side)
    }
}

/// Agrawal–El Abbadi tree quorums over a complete binary tree of `depth`
/// levels (`2^depth − 1 ≤ 63` nodes).
///
/// A quorum is formed recursively: take the subtree root plus a quorum of
/// one child, or (modeling an unavailable root) quorums of *both* children.
/// Any two tree quorums intersect; in the best case a quorum is a
/// root-to-leaf path of `O(log N)` nodes.
#[derive(Debug, Clone, Copy)]
pub struct TreeQuorum {
    depth: u32,
    /// Probability that a recursion step routes around the subtree root.
    skip_root_prob: f64,
}

impl TreeQuorum {
    /// Build with `1 ≤ depth ≤ 6` (≤ 63 nodes) and the probability of
    /// bypassing a subtree root (0 ⇒ always root+path, the minimum quorum).
    pub fn new(depth: u32, skip_root_prob: f64) -> Self {
        assert!((1..=6).contains(&depth));
        assert!((0.0..=1.0).contains(&skip_root_prob));
        Self { depth, skip_root_prob }
    }

    fn sample_subtree(&self, rng: &mut dyn RngCore, root: u32, level: u32, set: &mut NodeSet) {
        let leaf = level + 1 == self.depth;
        if leaf {
            set.insert(root);
            return;
        }
        let left = 2 * root + 1;
        let right = 2 * root + 2;
        if rng.gen::<f64>() < self.skip_root_prob {
            // Root unavailable: need quorums of both children.
            self.sample_subtree(rng, left, level + 1, set);
            self.sample_subtree(rng, right, level + 1, set);
        } else {
            set.insert(root);
            let child = if rng.gen::<bool>() { left } else { right };
            self.sample_subtree(rng, child, level + 1, set);
        }
    }
}

impl QuorumSystem for TreeQuorum {
    fn universe(&self) -> u32 {
        (1u32 << self.depth) - 1
    }

    fn sample_read(&self, rng: &mut dyn RngCore) -> NodeSet {
        let mut set = NodeSet::EMPTY;
        self.sample_subtree(rng, 0, 0, &mut set);
        set
    }

    fn sample_write(&self, rng: &mut dyn RngCore) -> NodeSet {
        self.sample_read(rng)
    }

    fn is_strict(&self) -> bool {
        true
    }

    fn name(&self) -> String {
        format!("Tree(depth={}, skip={})", self.depth, self.skip_root_prob)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn random_subset_sizes_and_uniformity() {
        let mut rng = StdRng::seed_from_u64(1);
        let mut counts = [0usize; 5];
        let trials = 50_000;
        for _ in 0..trials {
            let s = random_subset(&mut rng, 5, 2);
            assert_eq!(s.len(), 2);
            for i in s.iter() {
                counts[i as usize] += 1;
            }
        }
        // Each node appears in a 2-of-5 subset with probability 2/5.
        for (i, &c) in counts.iter().enumerate() {
            let frac = c as f64 / trials as f64;
            assert!((frac - 0.4).abs() < 0.02, "node {i}: {frac}");
        }
    }

    #[test]
    fn majority_always_intersects() {
        for n in [1u32, 2, 3, 4, 5, 8, 15] {
            let sys = Majority::new(n);
            let mut rng = StdRng::seed_from_u64(7);
            for _ in 0..2000 {
                let a = sys.sample_read(&mut rng);
                let b = sys.sample_write(&mut rng);
                assert!(a.intersects(b), "N={n}");
            }
        }
    }

    #[test]
    fn grid_quorums_intersect_and_have_sqrt_size() {
        let sys = Grid::new(5);
        assert_eq!(sys.universe(), 25);
        let mut rng = StdRng::seed_from_u64(3);
        for _ in 0..2000 {
            let a = sys.sample_read(&mut rng);
            let b = sys.sample_write(&mut rng);
            assert_eq!(a.len(), 9, "2·side − 1");
            assert!(a.intersects(b));
        }
    }

    #[test]
    fn tree_quorums_intersect() {
        for skip in [0.0, 0.3, 0.7] {
            let sys = TreeQuorum::new(4, skip);
            assert_eq!(sys.universe(), 15);
            let mut rng = StdRng::seed_from_u64(11);
            for _ in 0..3000 {
                let a = sys.sample_read(&mut rng);
                let b = sys.sample_write(&mut rng);
                assert!(a.intersects(b), "skip={skip}: {a:?} vs {b:?}");
            }
        }
    }

    #[test]
    fn tree_minimum_quorum_is_a_path() {
        let sys = TreeQuorum::new(5, 0.0);
        let mut rng = StdRng::seed_from_u64(0);
        let q = sys.sample_read(&mut rng);
        assert_eq!(q.len(), 5, "root-to-leaf path length = depth");
    }

    #[test]
    fn random_fixed_strictness() {
        assert!(RandomFixed::new(3, 2, 2).is_strict());
        assert!(!RandomFixed::new(3, 1, 1).is_strict());
    }
}
