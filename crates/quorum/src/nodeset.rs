//! Compact replica sets over at most 64 nodes.
//!
//! Quorum analysis samples millions of quorums; a `u64` bitmask keeps that
//! allocation-free. Replication factors above 64 never occur in the paper's
//! domain (production N is 1–3, the theory example uses N=100 only for the
//! *closed form*, which `pbs-core` computes combinatorially).

/// A set of node indices in `0..64`, stored as a bitmask.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default)]
pub struct NodeSet {
    bits: u64,
}

impl NodeSet {
    /// The empty set.
    pub const EMPTY: NodeSet = NodeSet { bits: 0 };

    /// Set containing the nodes `0..n`.
    pub fn full(n: u32) -> Self {
        assert!(n <= 64, "NodeSet supports at most 64 nodes, got {n}");
        if n == 64 {
            NodeSet { bits: u64::MAX }
        } else {
            NodeSet { bits: (1u64 << n) - 1 }
        }
    }

    /// Singleton set.
    pub fn singleton(node: u32) -> Self {
        assert!(node < 64);
        NodeSet { bits: 1u64 << node }
    }

    /// Insert `node`.
    pub fn insert(&mut self, node: u32) {
        assert!(node < 64, "node index {node} out of range");
        self.bits |= 1u64 << node;
    }

    /// Whether `node` is present.
    pub fn contains(&self, node: u32) -> bool {
        node < 64 && (self.bits >> node) & 1 == 1
    }

    /// Number of nodes in the set.
    pub fn len(&self) -> u32 {
        self.bits.count_ones()
    }

    /// Whether the set is empty.
    pub fn is_empty(&self) -> bool {
        self.bits == 0
    }

    /// Set union.
    pub fn union(&self, other: NodeSet) -> NodeSet {
        NodeSet { bits: self.bits | other.bits }
    }

    /// Set intersection.
    pub fn intersection(&self, other: NodeSet) -> NodeSet {
        NodeSet { bits: self.bits & other.bits }
    }

    /// Whether the two sets share any node — the quorum intersection test.
    pub fn intersects(&self, other: NodeSet) -> bool {
        self.bits & other.bits != 0
    }

    /// Iterate over member indices in ascending order.
    pub fn iter(&self) -> impl Iterator<Item = u32> + '_ {
        let bits = self.bits;
        (0..64u32).filter(move |i| (bits >> i) & 1 == 1)
    }
}

impl FromIterator<u32> for NodeSet {
    fn from_iter<I: IntoIterator<Item = u32>>(iter: I) -> Self {
        let mut s = NodeSet::EMPTY;
        for i in iter {
            s.insert(i);
        }
        s
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn basic_membership() {
        let mut s = NodeSet::EMPTY;
        assert!(s.is_empty());
        s.insert(0);
        s.insert(63);
        assert!(s.contains(0) && s.contains(63) && !s.contains(5));
        assert_eq!(s.len(), 2);
        assert_eq!(s.iter().collect::<Vec<_>>(), vec![0, 63]);
    }

    #[test]
    fn full_sets() {
        assert_eq!(NodeSet::full(0), NodeSet::EMPTY);
        assert_eq!(NodeSet::full(3).len(), 3);
        assert_eq!(NodeSet::full(64).len(), 64);
    }

    #[test]
    fn set_algebra() {
        let a: NodeSet = [0u32, 1, 2].into_iter().collect();
        let b: NodeSet = [2u32, 3].into_iter().collect();
        assert!(a.intersects(b));
        assert_eq!(a.intersection(b).iter().collect::<Vec<_>>(), vec![2]);
        assert_eq!(a.union(b).len(), 4);
        let c = NodeSet::singleton(9);
        assert!(!a.intersects(c));
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn oversized_index_panics() {
        let mut s = NodeSet::EMPTY;
        s.insert(64);
    }
}
