//! Monte-Carlo analysis of quorum systems: intersection probability,
//! k-staleness, and load.

use crate::nodeset::NodeSet;
use crate::systems::QuorumSystem;
use rand::rngs::StdRng;
use rand::SeedableRng;

/// Estimate the probability that a random read quorum intersects a random
/// write quorum — `1 − p_s` in Equation 1's terms.
pub fn intersection_probability<S: QuorumSystem + ?Sized>(
    sys: &S,
    trials: usize,
    seed: u64,
) -> f64 {
    assert!(trials > 0);
    let mut rng = StdRng::seed_from_u64(seed);
    let mut hits = 0usize;
    for _ in 0..trials {
        let w = sys.sample_write(&mut rng);
        let r = sys.sample_read(&mut rng);
        if r.intersects(w) {
            hits += 1;
        }
    }
    hits as f64 / trials as f64
}

/// Monte-Carlo PBS k-staleness violation for an arbitrary quorum system:
/// probability that a read quorum misses all of the last `k` independent
/// write quorums (the general form of Equation 2, frozen quorums).
pub fn k_staleness_mc<S: QuorumSystem + ?Sized>(
    sys: &S,
    k: u32,
    trials: usize,
    seed: u64,
) -> f64 {
    assert!(k >= 1 && trials > 0);
    let mut rng = StdRng::seed_from_u64(seed);
    let mut misses_all = 0usize;
    for _ in 0..trials {
        let r = sys.sample_read(&mut rng);
        let mut missed = true;
        for _ in 0..k {
            let w = sys.sample_write(&mut rng);
            if r.intersects(w) {
                missed = false;
                break;
            }
        }
        if missed {
            misses_all += 1;
        }
    }
    misses_all as f64 / trials as f64
}

/// Measured load of a quorum system *under its own sampling strategy*: the
/// access frequency of the busiest replica across `trials` quorum draws
/// (reads and writes weighted equally).
///
/// This is an upper bound on the Naor–Wool load (which optimises over all
/// access strategies); for symmetric systems like [`crate::Majority`],
/// [`crate::Grid`] with uniform row/column choice, and
/// [`crate::RandomFixed`], uniform sampling is optimal and the measured
/// value converges to the true load.
pub fn measure_load<S: QuorumSystem + ?Sized>(sys: &S, trials: usize, seed: u64) -> f64 {
    assert!(trials > 0);
    let n = sys.universe() as usize;
    let mut rng = StdRng::seed_from_u64(seed);
    let mut counts = vec![0u64; n];
    let mut total_quorums = 0u64;
    let record = |q: NodeSet, counts: &mut Vec<u64>| {
        for i in q.iter() {
            counts[i as usize] += 1;
        }
    };
    for _ in 0..trials {
        record(sys.sample_read(&mut rng), &mut counts);
        record(sys.sample_write(&mut rng), &mut counts);
        total_quorums += 2;
    }
    let busiest = counts.iter().copied().max().unwrap_or(0);
    busiest as f64 / total_quorums as f64
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::systems::{Grid, Majority, RandomFixed, TreeQuorum};
    use pbs_core::{staleness, ReplicaConfig};

    #[test]
    fn random_fixed_matches_eq1_closed_form() {
        for (n, r, w) in [(3u32, 1u32, 1u32), (3, 1, 2), (5, 2, 1), (10, 3, 2)] {
            let sys = RandomFixed::new(n, r, w);
            let mc = 1.0 - intersection_probability(&sys, 200_000, 42);
            let exact = staleness::non_intersection_probability(
                ReplicaConfig::new(n, r, w).unwrap(),
            );
            assert!(
                (mc - exact).abs() < 0.005,
                "N={n} R={r} W={w}: MC {mc} vs exact {exact}"
            );
        }
    }

    #[test]
    fn random_fixed_k_staleness_matches_eq2() {
        let cfg = ReplicaConfig::new(3, 1, 1).unwrap();
        let sys = RandomFixed::new(3, 1, 1);
        for k in [1u32, 2, 3, 5] {
            let mc = k_staleness_mc(&sys, k, 200_000, 7);
            let exact = staleness::k_staleness_violation(cfg, k);
            assert!((mc - exact).abs() < 0.005, "k={k}: MC {mc} vs exact {exact}");
        }
    }

    #[test]
    fn strict_systems_always_intersect() {
        let systems: Vec<Box<dyn QuorumSystem>> = vec![
            Box::new(Majority::new(7)),
            Box::new(Grid::new(4)),
            Box::new(TreeQuorum::new(4, 0.25)),
            Box::new(RandomFixed::new(5, 3, 3)),
        ];
        for sys in &systems {
            let p = intersection_probability(sys.as_ref(), 20_000, 3);
            assert_eq!(p, 1.0, "{}", sys.name());
        }
    }

    #[test]
    fn grid_load_is_near_two_over_sqrt_n() {
        // Row∪column quorums of size 2√N−1 under uniform choice give each
        // node access probability ≈ (2√N−1)/N ≈ 2/√N.
        let sys = Grid::new(5);
        let load = measure_load(&sys, 100_000, 1);
        let expected = (2.0 * 5.0 - 1.0) / 25.0;
        assert!((load - expected).abs() < 0.01, "load {load} vs {expected}");
    }

    #[test]
    fn majority_load_is_about_half() {
        let sys = Majority::new(9);
        let load = measure_load(&sys, 100_000, 2);
        assert!((load - 5.0 / 9.0).abs() < 0.01, "load {load}");
    }

    #[test]
    fn partial_quorum_load_beats_strict_bound() {
        // §3.3's point: a partial system's busiest node can fall below the
        // strict 1/√N floor.
        let n = 16u32;
        let partial = RandomFixed::new(n, 1, 1);
        let load = measure_load(&partial, 100_000, 5);
        let strict_floor = pbs_core::load::strict_load_lower_bound(n);
        assert!(
            load < strict_floor,
            "partial load {load} should beat strict floor {strict_floor}"
        );
    }

    #[test]
    fn tree_quorum_root_is_the_bottleneck() {
        // Root-path tree quorums are small (O(log N)) but concentrate load
        // on the root: with skip=0 every quorum contains it → load 1.
        let tree = TreeQuorum::new(4, 0.0);
        let tl = measure_load(&tree, 20_000, 8);
        assert!((tl - 1.0).abs() < 1e-12, "root load {tl}");
        // Routing around the root with some probability spreads the load.
        let spread = TreeQuorum::new(4, 0.4);
        let sl = measure_load(&spread, 50_000, 8);
        assert!(sl < 0.9, "skip=0.4 load {sl} should fall below root-always");
    }
}
