//! Deterministic k-quorums (Aiyer, Alvisi, Bazzi — §2.1 of the paper).
//!
//! In the single-writer setting, sending each write to `⌈N/k⌉` replicas in
//! round-robin order guarantees every replica is at most `k` versions
//! out of date, so *any* nonempty read quorum returns a value within `k`
//! versions — a deterministic counterpart to PBS k-staleness. The paper
//! contrasts this guarantee with the probabilistic behaviour of
//! Dynamo-style stores; this module provides the construction as a baseline
//! and verifies its bound.

use crate::nodeset::NodeSet;

/// Single-writer round-robin k-quorum scheduler.
#[derive(Debug, Clone)]
pub struct RoundRobinWriter {
    n: u32,
    group_size: u32,
    cursor: u32,
    /// Version currently stored at each replica (0 = never written).
    replica_versions: Vec<u64>,
    /// Last committed version number.
    version: u64,
}

impl RoundRobinWriter {
    /// Build over `n ≤ 64` replicas with staleness tolerance `k ≥ 1`.
    ///
    /// Each write lands on `⌈n/k⌉` consecutive replicas (mod `n`).
    pub fn new(n: u32, k: u32) -> Self {
        assert!((1..=64).contains(&n));
        assert!(k >= 1);
        let group_size = n.div_ceil(k);
        Self { n, group_size, cursor: 0, replica_versions: vec![0; n as usize], version: 0 }
    }

    /// Replicas in the universe.
    pub fn n(&self) -> u32 {
        self.n
    }

    /// The write-set size `⌈n/k⌉`.
    pub fn group_size(&self) -> u32 {
        self.group_size
    }

    /// Perform the next write; returns the replica set it covered.
    pub fn write(&mut self) -> NodeSet {
        self.version += 1;
        let mut set = NodeSet::EMPTY;
        for i in 0..self.group_size {
            let node = (self.cursor + i) % self.n;
            set.insert(node);
            self.replica_versions[node as usize] = self.version;
        }
        self.cursor = (self.cursor + self.group_size) % self.n;
        set
    }

    /// The newest committed version.
    pub fn latest_version(&self) -> u64 {
        self.version
    }

    /// Read from an arbitrary replica set, returning the newest version any
    /// member holds (0 if the set members were never written).
    pub fn read(&self, quorum: NodeSet) -> u64 {
        quorum
            .iter()
            .map(|i| self.replica_versions[i as usize])
            .max()
            .unwrap_or(0)
    }

    /// Staleness (in versions) a read of `quorum` observes right now.
    pub fn staleness(&self, quorum: NodeSet) -> u64 {
        self.version - self.read(quorum)
    }

    /// The k-quorum guarantee for this configuration: once every replica has
    /// been written at least once, any single replica is at most
    /// `ceil(n / group_size) − 1` versions behind — which is `< k` whenever
    /// `k` divides the schedule evenly and `≤ k − 1` in general.
    pub fn worst_case_staleness_bound(&self) -> u64 {
        (self.n.div_ceil(self.group_size) - 1) as u64
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::{Rng, SeedableRng};

    #[test]
    fn group_size_is_ceil_n_over_k() {
        assert_eq!(RoundRobinWriter::new(9, 3).group_size(), 3);
        assert_eq!(RoundRobinWriter::new(10, 3).group_size(), 4);
        assert_eq!(RoundRobinWriter::new(5, 1).group_size(), 5);
        assert_eq!(RoundRobinWriter::new(5, 5).group_size(), 1);
    }

    #[test]
    fn staleness_never_exceeds_bound() {
        for (n, k) in [(9u32, 3u32), (10, 3), (12, 4), (7, 2), (5, 5)] {
            let mut writer = RoundRobinWriter::new(n, k);
            // Warm up: cover every replica at least once.
            for _ in 0..(k * 4) {
                writer.write();
            }
            let bound = writer.worst_case_staleness_bound();
            assert!(bound < k as u64 || writer.group_size() * k < n);
            let mut rng = StdRng::seed_from_u64(13);
            for _ in 0..500 {
                writer.write();
                // Any single-replica read.
                let node = rng.gen_range(0..n);
                let staleness = writer.staleness(NodeSet::singleton(node));
                assert!(
                    staleness <= bound,
                    "n={n} k={k}: replica {node} is {staleness} behind (bound {bound})"
                );
            }
        }
    }

    #[test]
    fn k1_writes_everywhere() {
        let mut writer = RoundRobinWriter::new(6, 1);
        let set = writer.write();
        assert_eq!(set.len(), 6);
        assert_eq!(writer.staleness(NodeSet::singleton(3)), 0);
    }

    #[test]
    fn reads_return_newest_in_quorum() {
        let mut writer = RoundRobinWriter::new(6, 3);
        let first = writer.write(); // version 1 → replicas 0,1
        assert_eq!(first.iter().collect::<Vec<_>>(), vec![0, 1]);
        writer.write(); // version 2 → replicas 2,3
        let q: NodeSet = [0u32, 2].into_iter().collect();
        assert_eq!(writer.read(q), 2);
        let q0: NodeSet = [0u32, 1].into_iter().collect();
        assert_eq!(writer.read(q0), 1);
        let unwritten: NodeSet = [4u32, 5].into_iter().collect();
        assert_eq!(writer.read(unwritten), 0);
    }

    #[test]
    fn cursor_wraps_evenly() {
        let mut writer = RoundRobinWriter::new(4, 2);
        let a = writer.write();
        let b = writer.write();
        let c = writer.write();
        assert_eq!(a.iter().collect::<Vec<_>>(), vec![0, 1]);
        assert_eq!(b.iter().collect::<Vec<_>>(), vec![2, 3]);
        assert_eq!(c.iter().collect::<Vec<_>>(), vec![0, 1]);
    }
}
