//! # pbs-quorum — quorum-system constructions and probabilistic analysis
//!
//! §2.1 of the PBS paper surveys the quorum-system design space this crate
//! implements:
//!
//! * **strict** systems, where any two quorums intersect — [`Majority`],
//!   [`Grid`] (Naor–Wool row∪column), [`TreeQuorum`] (Agrawal–El Abbadi),
//!   and [`WeightedVoting`] (Gifford);
//! * **probabilistic / partial** systems — [`RandomFixed`], the
//!   `W`-of-`N` / `R`-of-`N` random-quorum model behind every PBS closed
//!   form;
//! * **deterministic k-quorums** — [`kquorum::RoundRobinWriter`], the
//!   single-writer construction whose reads are never more than `k`
//!   versions stale (Aiyer et al., §2.1).
//!
//! [`analysis`] provides Monte-Carlo intersection probability, k-staleness,
//! and load measurements for any [`QuorumSystem`], cross-validated against
//! the `pbs-core` closed forms where those exist.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod analysis;
pub mod kquorum;
pub mod nodeset;
pub mod systems;
pub mod weighted;

pub use analysis::{intersection_probability, k_staleness_mc, measure_load};
pub use nodeset::NodeSet;
pub use systems::{Grid, Majority, QuorumSystem, RandomFixed, TreeQuorum};
pub use weighted::WeightedVoting;
