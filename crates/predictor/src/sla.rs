//! SLA-driven configuration search (§6 "Latency/Staleness SLAs").
//!
//! The paper notes the configuration space is small (`O(N²)` for fixed `N`),
//! so exhaustive evaluation is tractable: run the WARS Monte Carlo for every
//! `(R, W)` pair, discard configurations violating the SLA, and return the
//! cheapest survivor. This also "disentangles replication for durability
//! from replication for low latency": `N` can grow for durability while the
//! optimizer keeps `R`/`W` small.

use crate::predictor::Predictor;
use pbs_core::ReplicaConfig;
use pbs_wars::LatencyModel;

/// A latency/staleness service-level agreement.
#[derive(Debug, Clone, Copy)]
pub struct SlaSpec {
    /// Required probability of consistent reads (e.g. `0.999`).
    pub consistency_probability: f64,
    /// The window after commit within which that probability must hold
    /// (ms). `0.0` demands it immediately at commit.
    pub within_ms: f64,
    /// Percentile at which latency constraints/objective are evaluated
    /// (e.g. `99.9`).
    pub latency_percentile: f64,
    /// Optional cap on read latency at that percentile (ms).
    pub max_read_latency_ms: Option<f64>,
    /// Optional cap on write latency at that percentile (ms).
    pub max_write_latency_ms: Option<f64>,
    /// Durability floor: minimum synchronous write quorum `W`.
    pub min_write_quorum: u32,
}

impl SlaSpec {
    /// A typical "99.9% consistent within `t` ms" SLA with a durability
    /// floor of 1.
    pub fn consistency(p: f64, within_ms: f64) -> Self {
        Self {
            consistency_probability: p,
            within_ms,
            latency_percentile: 99.9,
            max_read_latency_ms: None,
            max_write_latency_ms: None,
            min_write_quorum: 1,
        }
    }
}

/// The evaluation of one candidate configuration.
#[derive(Debug, Clone, Copy)]
pub struct ConfigEvaluation {
    /// The candidate.
    pub cfg: ReplicaConfig,
    /// Read latency at the SLA percentile (ms).
    pub read_latency: f64,
    /// Write latency at the SLA percentile (ms).
    pub write_latency: f64,
    /// `P(consistent)` at the SLA window.
    pub consistency: f64,
    /// t-visibility at the SLA probability (None = unresolved).
    pub t_visibility: Option<f64>,
    /// Whether every SLA constraint is met.
    pub meets_sla: bool,
}

impl ConfigEvaluation {
    /// The optimizer's objective: combined read + write latency at the SLA
    /// percentile (the quantity Table 4 trades off against t-visibility).
    pub fn combined_latency(&self) -> f64 {
        self.read_latency + self.write_latency
    }
}

/// Result of an SLA search.
#[derive(Debug, Clone)]
pub struct SlaReport {
    /// Every configuration evaluated, in search order.
    pub evaluations: Vec<ConfigEvaluation>,
    /// Index of the best SLA-satisfying configuration, if any.
    pub best: Option<usize>,
}

impl SlaReport {
    /// The winning evaluation, if any configuration met the SLA.
    pub fn best_config(&self) -> Option<&ConfigEvaluation> {
        self.best.map(|i| &self.evaluations[i])
    }
}

/// Evaluate one configuration against an SLA, sharding the Monte Carlo
/// over the host's cores.
pub fn evaluate_config<M: LatencyModel + Sync + ?Sized>(
    model: &M,
    spec: &SlaSpec,
    trials: usize,
    seed: u64,
) -> ConfigEvaluation {
    evaluate_config_threads(model, spec, trials, seed, crate::default_threads())
}

/// [`evaluate_config`] with an explicit shard count — host-independent
/// results for a fixed `(trials, seed, threads)` triple.
pub fn evaluate_config_threads<M: LatencyModel + Sync + ?Sized>(
    model: &M,
    spec: &SlaSpec,
    trials: usize,
    seed: u64,
    threads: usize,
) -> ConfigEvaluation {
    let p = Predictor::from_model_threads(model, trials, seed, threads);
    let cfg = p.config();
    let consistency = p.prob_consistent(spec.within_ms);
    let read_latency = p.read_latency(spec.latency_percentile);
    let write_latency = p.write_latency(spec.latency_percentile);
    let mut meets = consistency >= spec.consistency_probability
        && cfg.w() >= spec.min_write_quorum;
    if let Some(cap) = spec.max_read_latency_ms {
        meets &= read_latency <= cap;
    }
    if let Some(cap) = spec.max_write_latency_ms {
        meets &= write_latency <= cap;
    }
    ConfigEvaluation {
        cfg,
        read_latency,
        write_latency,
        consistency,
        t_visibility: p.t_visibility(spec.consistency_probability),
        meets_sla: meets,
    }
}

/// Exhaustively search every `(R, W)` pair for each `N` in `ns`, returning
/// all evaluations and the lowest-combined-latency configuration meeting
/// the SLA.
pub fn optimize(
    factory: &dyn Fn(ReplicaConfig) -> Box<dyn LatencyModel>,
    ns: &[u32],
    spec: &SlaSpec,
    trials: usize,
    seed: u64,
) -> SlaReport {
    optimize_threads(factory, ns, spec, trials, seed, crate::default_threads())
}

/// [`optimize`] with an explicit per-evaluation shard count. Closed-loop
/// drivers that embed the optimizer inside their own parallel shards pass
/// `threads = 1` for full determinism and no thread oversubscription.
pub fn optimize_threads(
    factory: &dyn Fn(ReplicaConfig) -> Box<dyn LatencyModel>,
    ns: &[u32],
    spec: &SlaSpec,
    trials: usize,
    seed: u64,
    threads: usize,
) -> SlaReport {
    let mut evaluations = Vec::new();
    for &n in ns {
        for cfg in ReplicaConfig::all_for_n(n) {
            let model = factory(cfg);
            evaluations.push(evaluate_config_threads(model.as_ref(), spec, trials, seed, threads));
        }
    }
    let best = evaluations
        .iter()
        .enumerate()
        .filter(|(_, e)| e.meets_sla)
        .min_by(|(_, a), (_, b)| {
            a.combined_latency()
                .partial_cmp(&b.combined_latency())
                .expect("latencies are not NaN")
        })
        .map(|(i, _)| i);
    SlaReport { evaluations, best }
}

#[cfg(test)]
mod tests {
    use super::*;
    use pbs_wars::production::{exponential_model, lnkd_disk_model};

    fn factory_exp(w_rate: f64, ars_rate: f64) -> impl Fn(ReplicaConfig) -> Box<dyn LatencyModel> {
        move |cfg| Box::new(exponential_model(cfg, w_rate, ars_rate))
    }

    #[test]
    fn strict_quorums_always_meet_pure_consistency_slas() {
        let spec = SlaSpec::consistency(0.999999, 0.0);
        let report = optimize(&factory_exp(0.1, 0.5), &[3], &spec, 5_000, 1);
        assert_eq!(report.evaluations.len(), 9);
        let best = report.best_config().expect("strict configs qualify");
        assert!(best.cfg.is_strict(), "only strict quorums hit 1.0 at t=0: {}", best.cfg);
        // The winner should be the *cheapest* strict quorum.
        for e in &report.evaluations {
            if e.meets_sla {
                assert!(best.combined_latency() <= e.combined_latency() + 1e-9);
            }
        }
    }

    #[test]
    fn relaxed_sla_picks_partial_quorum() {
        // With a generous window, partial quorums qualify and win on
        // latency (the paper's core message).
        let spec = SlaSpec::consistency(0.999, 200.0);
        let report = optimize(&factory_exp(0.1, 0.5), &[3], &spec, 20_000, 2);
        let best = report.best_config().expect("some config qualifies");
        assert!(
            best.cfg.is_partial(),
            "a partial quorum should win under a 200ms window, got {}",
            best.cfg
        );
        assert!(best.cfg.r() == 1 && best.cfg.w() == 1, "R=W=1 is cheapest: {}", best.cfg);
    }

    #[test]
    fn durability_floor_respected() {
        let mut spec = SlaSpec::consistency(0.9, 100.0);
        spec.min_write_quorum = 2;
        let report = optimize(&factory_exp(0.2, 0.5), &[3], &spec, 10_000, 3);
        let best = report.best_config().expect("qualifies");
        assert!(best.cfg.w() >= 2, "{}", best.cfg);
        for e in &report.evaluations {
            if e.cfg.w() < 2 {
                assert!(!e.meets_sla);
            }
        }
    }

    #[test]
    fn latency_caps_filter_configs() {
        let mut spec = SlaSpec::consistency(0.5, 1000.0);
        // LNKD-DISK writes at p99.9 for W=3 exceed 50ms; cap below that.
        spec.max_write_latency_ms = Some(15.0);
        let report = optimize(&|c| Box::new(lnkd_disk_model(c)), &[3], &spec, 20_000, 4);
        for e in &report.evaluations {
            if e.meets_sla {
                assert!(e.write_latency <= 15.0, "{}: {}", e.cfg, e.write_latency);
            }
        }
        let best = report.best_config().expect("some config fits");
        assert!(best.cfg.w() < 3);
    }

    #[test]
    fn search_covers_multiple_n() {
        let spec = SlaSpec::consistency(0.9, 50.0);
        let report = optimize(&factory_exp(0.5, 0.5), &[2, 3], &spec, 4_000, 5);
        assert_eq!(report.evaluations.len(), 4 + 9);
    }
}
