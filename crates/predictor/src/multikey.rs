//! Multi-key read staleness (§6 "Multi-key operations").
//!
//! For read-only multi-key operations over randomly distributed keys with
//! independent quorums, the probability that *every* key returns fresh data
//! is the product of the per-key probabilities; the violation probability
//! compounds quickly with the key count — the quantitative reason
//! multi-key transactions "require considerable care" on partial quorums.

use crate::predictor::Predictor;

/// Probability that a multi-key read over independent keys is fully fresh,
/// given each key's individual `P(consistent)`.
pub fn all_fresh_probability(per_key_consistency: &[f64]) -> f64 {
    assert!(!per_key_consistency.is_empty());
    per_key_consistency
        .iter()
        .inspect(|p| assert!((0.0..=1.0).contains(*p), "probability out of range"))
        .product()
}

/// Violation probability of a `keys`-way read when every key shares the
/// same per-key consistency `p`.
pub fn uniform_multikey_violation(p_consistent: f64, keys: u32) -> f64 {
    assert!((0.0..=1.0).contains(&p_consistent));
    assert!(keys >= 1);
    1.0 - p_consistent.powi(keys as i32)
}

/// Largest key-set size whose all-fresh probability still meets `target`,
/// given uniform per-key consistency `p` (`None` when even one key fails).
pub fn max_keys_for_target(p_consistent: f64, target: f64) -> Option<u32> {
    assert!((0.0..1.0).contains(&target) && target > 0.0);
    assert!((0.0..=1.0).contains(&p_consistent));
    if p_consistent < target {
        return None;
    }
    if p_consistent >= 1.0 {
        return Some(u32::MAX);
    }
    // p^k ≥ target ⇔ k ≤ ln(target)/ln(p).
    Some((target.ln() / p_consistent.ln()).floor() as u32)
}

/// Multi-key consistency for a batch read `t_ms` after the last write to
/// each key, using a single-key [`Predictor`] for the shared configuration.
pub fn multikey_consistency_at(predictor: &Predictor, t_ms: f64, keys: u32) -> f64 {
    assert!(keys >= 1);
    predictor.prob_consistent(t_ms).powi(keys as i32)
}

#[cfg(test)]
mod tests {
    use super::*;
    use pbs_core::ReplicaConfig;
    use pbs_wars::production::exponential_model;

    #[test]
    fn product_rule() {
        let p = all_fresh_probability(&[0.9, 0.8, 1.0]);
        assert!((p - 0.72).abs() < 1e-12);
        assert_eq!(all_fresh_probability(&[1.0; 8]), 1.0);
    }

    #[test]
    fn violation_compounds_with_keys() {
        let single = uniform_multikey_violation(0.99, 1);
        let hundred = uniform_multikey_violation(0.99, 100);
        assert!((single - 0.01).abs() < 1e-12);
        assert!(hundred > 0.63, "100 keys at 99% each → ~63% violation, got {hundred}");
    }

    #[test]
    fn max_keys_inverts_power() {
        assert_eq!(max_keys_for_target(0.999, 0.99), Some(10));
        assert_eq!(max_keys_for_target(0.5, 0.9), None);
        assert_eq!(max_keys_for_target(1.0, 0.9), Some(u32::MAX));
        // Round trip: k keys at p each still meets target, k+1 does not.
        let p = 0.995f64;
        let target = 0.95f64;
        let k = max_keys_for_target(p, target).unwrap();
        assert!(p.powi(k as i32) >= target);
        assert!(p.powi(k as i32 + 1) < target);
    }

    #[test]
    fn predictor_based_multikey() {
        let cfg = ReplicaConfig::new(3, 1, 1).unwrap();
        let pred =
            crate::predictor::Predictor::from_model(&exponential_model(cfg, 0.1, 0.5), 20_000, 7);
        let one = multikey_consistency_at(&pred, 10.0, 1);
        let ten = multikey_consistency_at(&pred, 10.0, 10);
        assert!(ten < one);
        assert!((ten - one.powi(10)).abs() < 1e-12);
    }
}
