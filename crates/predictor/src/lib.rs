//! # pbs-predictor — SLA-driven replication tuning on top of PBS
//!
//! §6 of the paper sketches what PBS predictions enable: *"we can
//! automatically configure replication parameters by optimizing operation
//! latency given constraints on staleness and minimum durability…
//! operators can subsequently provide service level agreements to
//! applications"*. This crate builds that layer:
//!
//! * [`Predictor`] — a one-stop PBS oracle for a configuration: closed-form
//!   k-staleness/monotonic-reads plus Monte-Carlo t-visibility and latency
//!   percentiles, constructible either from analytic models or from
//!   **measured** latency samples (e.g. drained out of a `pbs-kvs` run —
//!   the online-profiling loop of §5.5/§6).
//! * [`sla`] — exhaustive `O(N²)` search over `(R, W)` (optionally over
//!   `N`) for the lowest-latency configuration meeting staleness,
//!   durability, and latency constraints.
//! * [`adaptive`] — a sliding-window controller that refits empirical
//!   distributions as conditions drift and re-runs the optimizer (§6
//!   "Variable configurations").
//! * [`multikey`] — staleness of multi-key read-only operations under
//!   independence (§6 "Multi-key operations").

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod adaptive;
pub mod multikey;
pub mod predictor;
pub mod sla;

pub use adaptive::{AdaptiveController, AdaptiveError};
pub use predictor::Predictor;
pub use sla::{ConfigEvaluation, SlaReport, SlaSpec};

/// This crate's default Monte-Carlo shard count: the host's cores, capped
/// at 8 (per-evaluation trial budgets rarely amortise more shards).
pub(crate) fn default_threads() -> usize {
    pbs_mc::Runner::available_threads().min(8)
}
