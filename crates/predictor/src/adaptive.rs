//! Adaptive reconfiguration (§6 "Variable configurations"): keep a sliding
//! window of measured one-way latencies, refit empirical distributions, and
//! re-run the SLA optimizer when conditions drift.

use crate::sla::{optimize, SlaReport, SlaSpec};
use pbs_core::ReplicaConfig;
use pbs_dist::Empirical;
use pbs_wars::{IidModel, LatencyModel};
use std::collections::VecDeque;
use std::sync::Arc;

/// A bounded sliding window of latency samples for one WARS leg.
#[derive(Debug, Clone)]
pub struct SampleWindow {
    samples: VecDeque<f64>,
    capacity: usize,
}

impl SampleWindow {
    /// Window holding at most `capacity` samples.
    pub fn new(capacity: usize) -> Self {
        assert!(capacity > 0);
        Self { samples: VecDeque::with_capacity(capacity), capacity }
    }

    /// Record one observation, evicting the oldest if full.
    pub fn push(&mut self, value_ms: f64) {
        assert!(value_ms >= 0.0 && value_ms.is_finite());
        if self.samples.len() == self.capacity {
            self.samples.pop_front();
        }
        self.samples.push_back(value_ms);
    }

    /// Number of samples held.
    pub fn len(&self) -> usize {
        self.samples.len()
    }

    /// Whether the window is empty.
    pub fn is_empty(&self) -> bool {
        self.samples.is_empty()
    }

    fn to_empirical(&self) -> Empirical {
        Empirical::from_samples(self.samples.iter().copied().collect())
    }
}

/// The online controller: observes per-leg latencies, periodically refits
/// and re-optimizes the replication configuration.
#[derive(Debug)]
pub struct AdaptiveController {
    w: SampleWindow,
    a: SampleWindow,
    r: SampleWindow,
    s: SampleWindow,
    spec: SlaSpec,
    /// Candidate replication factors.
    ns: Vec<u32>,
    /// Monte-Carlo budget per candidate evaluation.
    trials: usize,
    seed: u64,
}

impl AdaptiveController {
    /// Build a controller with the given SLA, candidate `N`s, window size,
    /// and per-evaluation trial budget.
    pub fn new(spec: SlaSpec, ns: Vec<u32>, window: usize, trials: usize, seed: u64) -> Self {
        assert!(!ns.is_empty());
        Self {
            w: SampleWindow::new(window),
            a: SampleWindow::new(window),
            r: SampleWindow::new(window),
            s: SampleWindow::new(window),
            spec,
            ns,
            trials,
            seed,
        }
    }

    /// Record one WARS observation (one message per leg).
    pub fn observe(&mut self, w: f64, a: f64, r: f64, s: f64) {
        self.w.push(w);
        self.a.push(a);
        self.r.push(r);
        self.s.push(s);
    }

    /// Total observations currently windowed (per leg).
    pub fn window_len(&self) -> usize {
        self.w.len()
    }

    /// Refit empirical distributions from the current window and run the
    /// SLA optimizer. Requires a nonempty window.
    pub fn reoptimize(&self) -> SlaReport {
        assert!(!self.w.is_empty(), "observe() some samples first");
        let (we, ae, re, se) = (
            Arc::new(self.w.to_empirical()),
            Arc::new(self.a.to_empirical()),
            Arc::new(self.r.to_empirical()),
            Arc::new(self.s.to_empirical()),
        );
        let factory = move |cfg: ReplicaConfig| -> Box<dyn LatencyModel> {
            Box::new(IidModel::new(
                cfg,
                "windowed",
                we.clone(),
                ae.clone(),
                re.clone(),
                se.clone(),
            ))
        };
        optimize(&factory, &self.ns, &self.spec, self.trials, self.seed)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use pbs_dist::{Exponential, LatencyDistribution};
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn window_evicts_oldest() {
        let mut w = SampleWindow::new(3);
        for v in [1.0, 2.0, 3.0, 4.0] {
            w.push(v);
        }
        assert_eq!(w.len(), 3);
        let emp = w.to_empirical();
        assert_eq!(emp.samples().min(), 2.0);
        assert_eq!(emp.samples().max(), 4.0);
    }

    /// The §6 story: fast disks → partial quorum qualifies; disks degrade →
    /// the same SLA now requires waiting (a strict quorum or bust).
    #[test]
    fn controller_reacts_to_latency_drift() {
        let spec = SlaSpec::consistency(0.99, 5.0);
        let mut ctl = AdaptiveController::new(spec, vec![3], 4_000, 8_000, 1);
        let mut rng = StdRng::seed_from_u64(2);

        // Phase 1: fast, low-variance writes (SSD-like).
        let fast = Exponential::from_mean(0.3);
        let ars = Exponential::from_mean(0.5);
        for _ in 0..4_000 {
            ctl.observe(fast.sample(&mut rng), ars.sample(&mut rng), ars.sample(&mut rng), ars.sample(&mut rng));
        }
        let report = ctl.reoptimize();
        let best = report.best_config().expect("fast phase qualifies");
        assert!(best.cfg.is_partial(), "fast writes → partial quorum wins: {}", best.cfg);

        // Phase 2: disks degrade badly (mean 30ms writes) — the window
        // rolls over entirely.
        let slow = Exponential::from_mean(30.0);
        for _ in 0..4_000 {
            ctl.observe(slow.sample(&mut rng), ars.sample(&mut rng), ars.sample(&mut rng), ars.sample(&mut rng));
        }
        let report = ctl.reoptimize();
        match report.best_config() {
            Some(best) => assert!(
                best.cfg.is_strict(),
                "slow writes → only strict quorums meet a 5ms/99% SLA: {}",
                best.cfg
            ),
            None => { /* no config qualifies — also a valid drift outcome */ }
        }
    }
}
