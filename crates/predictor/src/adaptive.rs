//! Adaptive reconfiguration (§6 "Variable configurations"): keep a sliding
//! window of measured one-way latencies, refit empirical distributions, and
//! re-run the SLA optimizer when conditions drift.
//!
//! The controller is built for **in-loop** use by a scenario driver: feed
//! it drained leg samples with [`AdaptiveController::observe_many`] on a
//! cadence, then either [`predict`](AdaptiveController::predict) the
//! current configuration's behaviour or
//! [`reoptimize`](AdaptiveController::reoptimize) the whole `(R, W)` space.
//! Both are fallible (`Err` on an empty window) rather than panicking, and
//! both recycle internal scratch buffers so steady-state refits perform no
//! per-call sample-vector reallocation.

use crate::predictor::Predictor;
use crate::sla::{optimize_threads, SlaReport, SlaSpec};
use pbs_core::ReplicaConfig;
use pbs_dist::Empirical;
use pbs_wars::{IidModel, LatencyModel};
use std::collections::VecDeque;
use std::sync::Arc;

/// Why a refit could not run.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum AdaptiveError {
    /// No samples have been observed yet — call
    /// [`AdaptiveController::observe`] /
    /// [`observe_many`](AdaptiveController::observe_many) first.
    EmptyWindow,
}

impl std::fmt::Display for AdaptiveError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            AdaptiveError::EmptyWindow => {
                write!(f, "sample window is empty; observe latencies before refitting")
            }
        }
    }
}

impl std::error::Error for AdaptiveError {}

/// A bounded sliding window of latency samples for one WARS leg.
#[derive(Debug, Clone)]
pub struct SampleWindow {
    samples: VecDeque<f64>,
    capacity: usize,
}

impl SampleWindow {
    /// Window holding at most `capacity` samples.
    pub fn new(capacity: usize) -> Self {
        assert!(capacity > 0);
        Self { samples: VecDeque::with_capacity(capacity), capacity }
    }

    /// Record one observation, evicting the oldest if full.
    pub fn push(&mut self, value_ms: f64) {
        assert!(value_ms >= 0.0 && value_ms.is_finite());
        if self.samples.len() == self.capacity {
            self.samples.pop_front();
        }
        self.samples.push_back(value_ms);
    }

    /// Number of samples held.
    pub fn len(&self) -> usize {
        self.samples.len()
    }

    /// Whether the window is empty.
    pub fn is_empty(&self) -> bool {
        self.samples.is_empty()
    }

    /// Copy the windowed samples into `out` (cleared first), reusing its
    /// allocation.
    pub fn write_into(&self, out: &mut Vec<f64>) {
        out.clear();
        out.extend(self.samples.iter().copied());
    }

    #[cfg(test)]
    fn to_empirical(&self) -> Empirical {
        Empirical::from_samples(self.samples.iter().copied().collect())
    }
}

/// The online controller: observes per-leg latencies, periodically refits
/// and re-optimizes the replication configuration.
///
/// ```
/// use pbs_predictor::adaptive::AdaptiveController;
/// use pbs_predictor::SlaSpec;
/// use pbs_core::ReplicaConfig;
/// use pbs_dist::{Exponential, LatencyDistribution};
/// use rand::rngs::StdRng;
/// use rand::SeedableRng;
///
/// let spec = SlaSpec::consistency(0.99, 10.0);
/// let mut ctl = AdaptiveController::new(spec, vec![3], 2_000, 4_000, 1).with_threads(1);
///
/// // An empty window is an error, not a panic.
/// assert!(ctl.reoptimize().is_err());
///
/// // Observe measured one-way latencies (e.g. drained from a live store)…
/// let (w, ars) = (Exponential::from_mean(2.0), Exponential::from_mean(0.5));
/// let mut rng = StdRng::seed_from_u64(7);
/// for _ in 0..2_000 {
///     ctl.observe(w.sample(&mut rng), ars.sample(&mut rng),
///                 ars.sample(&mut rng), ars.sample(&mut rng));
/// }
///
/// // …then predict the current config or re-optimize the whole space.
/// let cfg = ReplicaConfig::new(3, 1, 1).unwrap();
/// let p = ctl.predict(cfg).unwrap();
/// assert!(p.prob_consistent(10.0) > 0.9);
/// let report = ctl.reoptimize().unwrap();
/// assert!(report.best_config().is_some());
/// ```
#[derive(Debug)]
pub struct AdaptiveController {
    w: SampleWindow,
    a: SampleWindow,
    r: SampleWindow,
    s: SampleWindow,
    spec: SlaSpec,
    /// Candidate replication factors.
    ns: Vec<u32>,
    /// Monte-Carlo budget per candidate evaluation.
    trials: usize,
    seed: u64,
    /// Shards per Monte-Carlo evaluation.
    threads: usize,
    /// Recycled per-leg sample buffers (W, A, R, S): refits take them,
    /// hand them to `Empirical`, and reclaim them afterwards, so the
    /// steady state allocates nothing per call.
    scratch: [Vec<f64>; 4],
}

impl AdaptiveController {
    /// Build a controller with the given SLA, candidate `N`s, window size,
    /// and per-evaluation trial budget. Monte-Carlo evaluations shard over
    /// the host's cores by default; see
    /// [`with_threads`](Self::with_threads).
    pub fn new(spec: SlaSpec, ns: Vec<u32>, window: usize, trials: usize, seed: u64) -> Self {
        assert!(!ns.is_empty());
        Self {
            w: SampleWindow::new(window),
            a: SampleWindow::new(window),
            r: SampleWindow::new(window),
            s: SampleWindow::new(window),
            spec,
            ns,
            trials,
            seed,
            threads: crate::default_threads(),
            scratch: Default::default(),
        }
    }

    /// Fix the Monte-Carlo shard count (default: the host's cores, capped
    /// at 8). Drivers that already parallelise at a coarser grain pass 1,
    /// which also makes refits host-independent.
    pub fn with_threads(mut self, threads: usize) -> Self {
        assert!(threads > 0);
        self.threads = threads;
        self
    }

    /// The SLA the optimizer targets.
    pub fn spec(&self) -> &SlaSpec {
        &self.spec
    }

    /// Record one WARS observation (one message per leg).
    pub fn observe(&mut self, w: f64, a: f64, r: f64, s: f64) {
        self.w.push(w);
        self.a.push(a);
        self.r.push(r);
        self.s.push(s);
    }

    /// Bulk-ingest drained per-leg samples (the shape
    /// `pbs_kvs::Cluster::drain_leg_samples` produces). Legs may have
    /// different lengths — each feeds its own window.
    pub fn observe_many(&mut self, w: &[f64], a: &[f64], r: &[f64], s: &[f64]) {
        for &v in w {
            self.w.push(v);
        }
        for &v in a {
            self.a.push(v);
        }
        for &v in r {
            self.r.push(v);
        }
        for &v in s {
            self.s.push(v);
        }
    }

    /// Smallest per-leg window fill — refit quality is bounded by the
    /// least-observed leg.
    pub fn window_len(&self) -> usize {
        self.w.len().min(self.a.len()).min(self.r.len()).min(self.s.len())
    }

    /// Refit the windowed per-leg empirical distributions, taking the
    /// scratch buffers. Callers must pass the result to
    /// [`reclaim`](Self::reclaim) once the models built on it are dropped.
    fn windowed_legs(&mut self) -> Result<[Arc<Empirical>; 4], AdaptiveError> {
        if self.w.is_empty() || self.a.is_empty() || self.r.is_empty() || self.s.is_empty() {
            return Err(AdaptiveError::EmptyWindow);
        }
        let [sw, sa, sr, ss] = &mut self.scratch;
        self.w.write_into(sw);
        self.a.write_into(sa);
        self.r.write_into(sr);
        self.s.write_into(ss);
        Ok([
            Arc::new(Empirical::from_samples(std::mem::take(sw))),
            Arc::new(Empirical::from_samples(std::mem::take(sa))),
            Arc::new(Empirical::from_samples(std::mem::take(sr))),
            Arc::new(Empirical::from_samples(std::mem::take(ss))),
        ])
    }

    /// Recover the scratch buffers from refit legs whose models are gone
    /// (no-op for any leg still shared).
    fn reclaim(&mut self, legs: [Arc<Empirical>; 4]) {
        for (slot, leg) in self.scratch.iter_mut().zip(legs) {
            if let Ok(emp) = Arc::try_unwrap(leg) {
                *slot = emp.into_samples();
            }
        }
    }

    /// Refit from the current window and predict the behaviour of **one**
    /// configuration — the cheap in-loop query a closed-loop driver issues
    /// every control interval (vs. the full `O(N²)` sweep of
    /// [`reoptimize`](Self::reoptimize)).
    ///
    /// # Errors
    ///
    /// [`AdaptiveError::EmptyWindow`] when any leg has no samples yet.
    pub fn predict(&mut self, cfg: ReplicaConfig) -> Result<Predictor, AdaptiveError> {
        let legs = self.windowed_legs()?;
        let [we, ae, re, se] = &legs;
        let model =
            IidModel::new(cfg, "windowed", we.clone(), ae.clone(), re.clone(), se.clone());
        let p = Predictor::from_model_threads(&model, self.trials, self.seed, self.threads);
        drop(model);
        self.reclaim(legs);
        Ok(p)
    }

    /// Refit empirical distributions from the current window and run the
    /// SLA optimizer over every candidate `(N, R, W)`.
    ///
    /// # Errors
    ///
    /// [`AdaptiveError::EmptyWindow`] when any leg has no samples yet.
    pub fn reoptimize(&mut self) -> Result<SlaReport, AdaptiveError> {
        let legs = self.windowed_legs()?;
        let report = {
            let [we, ae, re, se] = &legs;
            let (we, ae, re, se) = (we.clone(), ae.clone(), re.clone(), se.clone());
            let factory = move |cfg: ReplicaConfig| -> Box<dyn LatencyModel> {
                Box::new(IidModel::new(
                    cfg,
                    "windowed",
                    we.clone(),
                    ae.clone(),
                    re.clone(),
                    se.clone(),
                ))
            };
            optimize_threads(&factory, &self.ns, &self.spec, self.trials, self.seed, self.threads)
        };
        self.reclaim(legs);
        Ok(report)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use pbs_dist::{Exponential, LatencyDistribution};
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn window_evicts_oldest() {
        let mut w = SampleWindow::new(3);
        for v in [1.0, 2.0, 3.0, 4.0] {
            w.push(v);
        }
        assert_eq!(w.len(), 3);
        let emp = w.to_empirical();
        assert_eq!(emp.samples().min(), 2.0);
        assert_eq!(emp.samples().max(), 4.0);
    }

    #[test]
    fn empty_window_is_an_error_not_a_panic() {
        let spec = SlaSpec::consistency(0.9, 5.0);
        let mut ctl = AdaptiveController::new(spec, vec![3], 100, 100, 1).with_threads(1);
        assert_eq!(ctl.reoptimize().unwrap_err(), AdaptiveError::EmptyWindow);
        let cfg = pbs_core::ReplicaConfig::new(3, 1, 1).unwrap();
        assert_eq!(ctl.predict(cfg).unwrap_err(), AdaptiveError::EmptyWindow);
        // A partially fed window (legs uneven) is still an error.
        ctl.observe_many(&[1.0, 2.0], &[1.0], &[], &[]);
        assert_eq!(ctl.reoptimize().unwrap_err(), AdaptiveError::EmptyWindow);
        assert_eq!(ctl.window_len(), 0);
    }

    #[test]
    fn scratch_buffers_are_recycled() {
        let spec = SlaSpec::consistency(0.5, 50.0);
        let mut ctl = AdaptiveController::new(spec, vec![3], 1_000, 500, 1).with_threads(1);
        let d = Exponential::from_mean(1.0);
        let mut rng = StdRng::seed_from_u64(1);
        for _ in 0..1_000 {
            ctl.observe(d.sample(&mut rng), d.sample(&mut rng), d.sample(&mut rng), d.sample(&mut rng));
        }
        ctl.reoptimize().unwrap();
        let caps: Vec<usize> = ctl.scratch.iter().map(|s| s.capacity()).collect();
        assert!(caps.iter().all(|&c| c >= 1_000), "buffers reclaimed: {caps:?}");
        // A second refit reuses them (capacity unchanged ⇒ no realloc).
        ctl.reoptimize().unwrap();
        let caps2: Vec<usize> = ctl.scratch.iter().map(|s| s.capacity()).collect();
        assert_eq!(caps, caps2);
    }

    #[test]
    fn predict_matches_reoptimize_evaluation() {
        let spec = SlaSpec::consistency(0.9, 5.0);
        let mut ctl = AdaptiveController::new(spec, vec![3], 2_000, 4_000, 3).with_threads(1);
        let w = Exponential::from_mean(5.0);
        let ars = Exponential::from_mean(0.8);
        let mut rng = StdRng::seed_from_u64(4);
        for _ in 0..2_000 {
            ctl.observe(w.sample(&mut rng), ars.sample(&mut rng), ars.sample(&mut rng), ars.sample(&mut rng));
        }
        let cfg = pbs_core::ReplicaConfig::new(3, 1, 1).unwrap();
        let p = ctl.predict(cfg).unwrap();
        let report = ctl.reoptimize().unwrap();
        let eval = report.evaluations.iter().find(|e| e.cfg == cfg).unwrap();
        // Same window, same trials, same seed, same thread count → the
        // sweep's evaluation of this config matches the direct prediction.
        assert_eq!(p.prob_consistent(5.0), eval.consistency);
    }

    /// The §6 story: fast disks → partial quorum qualifies; disks degrade →
    /// the same SLA now requires waiting (a strict quorum or bust).
    #[test]
    fn controller_reacts_to_latency_drift() {
        let spec = SlaSpec::consistency(0.99, 5.0);
        let mut ctl = AdaptiveController::new(spec, vec![3], 4_000, 8_000, 1);
        let mut rng = StdRng::seed_from_u64(2);

        // Phase 1: fast, low-variance writes (SSD-like).
        let fast = Exponential::from_mean(0.3);
        let ars = Exponential::from_mean(0.5);
        for _ in 0..4_000 {
            ctl.observe(fast.sample(&mut rng), ars.sample(&mut rng), ars.sample(&mut rng), ars.sample(&mut rng));
        }
        let report = ctl.reoptimize().expect("window is full");
        let best = report.best_config().expect("fast phase qualifies");
        assert!(best.cfg.is_partial(), "fast writes → partial quorum wins: {}", best.cfg);

        // Phase 2: disks degrade badly (mean 30ms writes) — the window
        // rolls over entirely.
        let slow = Exponential::from_mean(30.0);
        for _ in 0..4_000 {
            ctl.observe(slow.sample(&mut rng), ars.sample(&mut rng), ars.sample(&mut rng), ars.sample(&mut rng));
        }
        let report = ctl.reoptimize().expect("window is full");
        match report.best_config() {
            Some(best) => assert!(
                best.cfg.is_strict(),
                "slow writes → only strict quorums meet a 5ms/99% SLA: {}",
                best.cfg
            ),
            None => { /* no config qualifies — also a valid drift outcome */ }
        }
    }
}
