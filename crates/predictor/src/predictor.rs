//! The PBS oracle: every paper metric for one configuration behind one
//! handle.

use pbs_core::{staleness, ReplicaConfig};
use pbs_dist::Empirical;
use pbs_wars::{IidModel, LatencyModel, TVisibility};
use std::sync::Arc;

/// A PBS predictor for a single `(N, R, W)` configuration and latency
/// model.
///
/// Construction runs the WARS Monte Carlo once; every query afterwards is
/// O(log trials) or closed-form.
pub struct Predictor {
    cfg: ReplicaConfig,
    tvis: TVisibility,
}

impl std::fmt::Debug for Predictor {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Predictor")
            .field("cfg", &self.cfg)
            .field("trials", &self.tvis.trials())
            .finish()
    }
}

impl Predictor {
    /// Build from any WARS latency model, sharding over the host's cores.
    ///
    /// Deterministic per `(seed, threads)` pair; because the thread count
    /// is taken from the host, use
    /// [`from_model_threads`](Self::from_model_threads) when
    /// cross-machine bit-reproducibility matters.
    pub fn from_model<M: LatencyModel + Sync + ?Sized>(
        model: &M,
        trials: usize,
        seed: u64,
    ) -> Self {
        Self::from_model_threads(model, trials, seed, crate::default_threads())
    }

    /// Build from any WARS latency model with an explicit shard count.
    pub fn from_model_threads<M: LatencyModel + Sync + ?Sized>(
        model: &M,
        trials: usize,
        seed: u64,
        threads: usize,
    ) -> Self {
        Self {
            cfg: model.config(),
            tvis: TVisibility::simulate_parallel(model, trials, seed, threads),
        }
    }

    /// Fold another predictor's Monte-Carlo run (same configuration) into
    /// this one — the streaming summaries merge, so trial budgets can be
    /// accumulated across batches, processes, or machines without ever
    /// materialising raw sample vectors.
    pub fn merge(&mut self, other: Predictor) {
        self.tvis.merge(other.tvis);
    }

    /// Build from **measured one-way latency samples** — the online
    /// profiling path of §5.5/§6 (e.g. WARS timestamps exported by a real
    /// store, or `pbs-kvs` instrumentation).
    pub fn from_samples(
        cfg: ReplicaConfig,
        w: Vec<f64>,
        a: Vec<f64>,
        r: Vec<f64>,
        s: Vec<f64>,
        trials: usize,
        seed: u64,
    ) -> Self {
        let model = IidModel::new(
            cfg,
            "measured",
            Arc::new(Empirical::from_samples(w)),
            Arc::new(Empirical::from_samples(a)),
            Arc::new(Empirical::from_samples(r)),
            Arc::new(Empirical::from_samples(s)),
        );
        Self::from_model(&model, trials, seed)
    }

    /// The configuration under analysis.
    pub fn config(&self) -> ReplicaConfig {
        self.cfg
    }

    /// `P(consistent)` for reads starting `t` ms after commit.
    pub fn prob_consistent(&self, t_ms: f64) -> f64 {
        self.tvis.prob_consistent(t_ms)
    }

    /// Smallest `t` with `P(consistent) ≥ p`, if resolvable at the trial
    /// count.
    pub fn t_visibility(&self, p: f64) -> Option<f64> {
        self.tvis.t_at_probability(p)
    }

    /// Closed-form probability of reading a version within `k` versions of
    /// the latest committed write (Eq. 2).
    pub fn prob_within_k_versions(&self, k: u32) -> f64 {
        staleness::prob_within_k_versions(self.cfg, k)
    }

    /// Expected consistency of a read arriving at a *random* time into a
    /// key written by a stationary Poisson process committing at
    /// `commit_rate_per_ms` — the open-loop traffic regime (cf. Zhong et
    /// al.'s staleness-under-arrival-traffic model, and the comparison
    /// target for `pbs-kvs`'s `throughput` sweep).
    ///
    /// By PASTA, the age of the newest commit at the read's start is
    /// `T ~ Exp(γ)`; treating staleness with respect to that newest write
    /// (exact when at most one write is in flight per key — the low-load
    /// regime) gives `E[P_c(T)] = ∫₀¹ P_c(−ln u / γ) du`, evaluated by a
    /// 512-point midpoint rule on the substituted integrand.
    pub fn expected_consistency_under_poisson(&self, commit_rate_per_ms: f64) -> f64 {
        assert!(
            commit_rate_per_ms > 0.0 && commit_rate_per_ms.is_finite(),
            "commit rate must be positive"
        );
        const POINTS: usize = 512;
        let mut total = 0.0;
        for i in 0..POINTS {
            let u = (i as f64 + 0.5) / POINTS as f64;
            let t = -u.ln() / commit_rate_per_ms;
            total += self.prob_consistent(t);
        }
        total / POINTS as f64
    }

    /// Closed-form monotonic-reads violation probability (Eq. 3).
    pub fn monotonic_reads_violation(&self, gamma_gw: f64, gamma_cr: f64) -> f64 {
        staleness::monotonic_reads_violation(self.cfg, gamma_gw, gamma_cr)
    }

    /// ⟨k,t⟩-staleness violation (Eq. 5's conservative bound over the
    /// simulated t-visibility).
    pub fn kt_violation(&self, t_ms: f64, k: u32) -> f64 {
        self.tvis.kt_violation(t_ms, k)
    }

    /// Read operation latency at `pct ∈ [0, 100]`.
    pub fn read_latency(&self, pct: f64) -> f64 {
        self.tvis.read_latency_percentile(pct)
    }

    /// Write operation latency at `pct ∈ [0, 100]`.
    pub fn write_latency(&self, pct: f64) -> f64 {
        self.tvis.write_latency_percentile(pct)
    }

    /// The underlying Monte-Carlo run.
    pub fn tvisibility(&self) -> &TVisibility {
        &self.tvis
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use pbs_dist::{Exponential, LatencyDistribution};
    use pbs_wars::production::exponential_model;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn cfg(n: u32, r: u32, w: u32) -> ReplicaConfig {
        ReplicaConfig::new(n, r, w).unwrap()
    }

    #[test]
    fn from_model_exposes_all_metrics() {
        let p = Predictor::from_model(&exponential_model(cfg(3, 1, 1), 0.1, 0.5), 20_000, 1);
        assert!(p.prob_consistent(0.0) < 1.0);
        assert!(p.prob_consistent(100.0) > 0.99);
        assert!(p.t_visibility(0.9).is_some());
        assert!((p.prob_within_k_versions(1) - 1.0 / 3.0).abs() < 1e-12);
        assert!(p.read_latency(99.0) > p.read_latency(50.0));
        assert!(p.kt_violation(5.0, 2) <= p.kt_violation(5.0, 1));
        assert!(p.monotonic_reads_violation(1.0, 1.0) < 1.0);
    }

    #[test]
    fn from_samples_matches_analytic_model() {
        // Sampling from the analytic distributions and feeding the samples
        // back as empirical models should reproduce the analytic results.
        let c = cfg(3, 1, 1);
        let analytic = Predictor::from_model(&exponential_model(c, 0.1, 0.5), 40_000, 2);
        let mut rng = StdRng::seed_from_u64(3);
        let wdist = Exponential::from_rate(0.1);
        let adist = Exponential::from_rate(0.5);
        let sample = |d: &Exponential, rng: &mut StdRng| -> Vec<f64> {
            (0..50_000).map(|_| d.sample(rng)).collect()
        };
        let empirical = Predictor::from_samples(
            c,
            sample(&wdist, &mut rng),
            sample(&adist, &mut rng),
            sample(&adist, &mut rng),
            sample(&adist, &mut rng),
            40_000,
            4,
        );
        for t in [0.0, 5.0, 20.0, 60.0] {
            let a = analytic.prob_consistent(t);
            let b = empirical.prob_consistent(t);
            assert!((a - b).abs() < 0.02, "t={t}: analytic {a} vs empirical {b}");
        }
    }

    #[test]
    fn expected_consistency_under_poisson_bounds_and_monotonicity() {
        let p = Predictor::from_model(&exponential_model(cfg(3, 1, 1), 0.1, 0.5), 40_000, 7);
        let at0 = p.prob_consistent(0.0);
        // Slow writes (rare commits) → reads land long after the last
        // commit → near the asymptote; fast writes → near P_c(0).
        let slow = p.expected_consistency_under_poisson(1e-4);
        let fast = p.expected_consistency_under_poisson(10.0);
        assert!(slow > 0.99, "rare commits should look consistent: {slow}");
        assert!(fast < at0 + 0.05, "hot keys should look like t≈0: {fast} vs {at0}");
        let mut last = 1.0 + 1e-9;
        for rate in [1e-4, 1e-3, 1e-2, 1e-1, 1.0] {
            let e = p.expected_consistency_under_poisson(rate);
            assert!(e <= last, "expected consistency must fall with write rate");
            last = e;
        }
        // Strict quorums are immune to load.
        let strict = Predictor::from_model(&exponential_model(cfg(3, 2, 2), 0.1, 0.5), 5_000, 8);
        assert_eq!(strict.expected_consistency_under_poisson(1.0), 1.0);
    }

    #[test]
    fn strict_config_trivially_consistent() {
        let p = Predictor::from_model(&exponential_model(cfg(3, 2, 2), 0.1, 0.5), 5_000, 5);
        assert_eq!(p.prob_consistent(0.0), 1.0);
        assert_eq!(p.t_visibility(0.9999), Some(0.0));
        assert_eq!(p.prob_within_k_versions(1), 1.0);
    }

    #[test]
    fn merged_predictors_accumulate_trials() {
        let model = exponential_model(cfg(3, 1, 1), 0.1, 0.5);
        let mut a = Predictor::from_model_threads(&model, 15_000, 1, 2);
        let b = Predictor::from_model_threads(&model, 15_000, 2, 2);
        let before = a.prob_consistent(5.0);
        a.merge(b);
        assert_eq!(a.tvisibility().trials(), 30_000);
        assert!((a.prob_consistent(5.0) - before).abs() < 0.02);
    }
}
