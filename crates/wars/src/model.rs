//! Latency models: how one trial's worth of W/A/R/S delays is sampled.

use pbs_core::ReplicaConfig;
use pbs_dist::DynDistribution;
use rand::Rng;
use rand::RngCore;

/// One trial's worth of per-replica one-way delays (all in milliseconds).
///
/// Index `i` refers to the same replica across all four vectors — the WAN
/// model depends on this (a remote replica is remote for both its request
/// and its response legs).
#[derive(Debug, Clone, Default)]
pub struct WarsSample {
    /// Write propagation delays (`W`), one per replica.
    pub w: Vec<f64>,
    /// Write acknowledgment delays (`A`).
    pub a: Vec<f64>,
    /// Read request delays (`R`).
    pub r: Vec<f64>,
    /// Read response delays (`S`).
    pub s: Vec<f64>,
}

impl WarsSample {
    /// Clear and ensure capacity for `n` replicas.
    ///
    /// Reserves only when capacity is actually short: after the first trial
    /// warms the vectors this is four clears and four comparisons — the
    /// Monte-Carlo hot loop performs no per-trial allocation.
    pub fn reset(&mut self, n: usize) {
        self.w.clear();
        self.a.clear();
        self.r.clear();
        self.s.clear();
        if self.w.capacity() < n {
            self.w.reserve(n);
            self.a.reserve(n);
            self.r.reserve(n);
            self.s.reserve(n);
        }
    }
}

/// A full WARS latency model: a replication configuration plus a sampling
/// rule for per-replica delays.
///
/// Implementations must fill all four vectors with exactly `config().n()`
/// nonnegative entries per trial.
pub trait LatencyModel: Send + Sync {
    /// The `(N, R, W)` configuration this model simulates.
    fn config(&self) -> ReplicaConfig;

    /// Sample one trial into `out` (pre-`reset` by the caller).
    fn sample_trial(&self, rng: &mut dyn RngCore, out: &mut WarsSample);

    /// Human-readable description for bench output.
    fn describe(&self) -> String;
}

/// The i.i.d. model of §5.5: every replica's delays are drawn independently
/// from four shared distributions. This covers LNKD-SSD, LNKD-DISK, YMMR,
/// and all synthetic experiments.
pub struct IidModel {
    cfg: ReplicaConfig,
    w: DynDistribution,
    a: DynDistribution,
    r: DynDistribution,
    s: DynDistribution,
    name: String,
}

impl IidModel {
    /// Build from four independent one-way distributions.
    pub fn new(
        cfg: ReplicaConfig,
        name: impl Into<String>,
        w: DynDistribution,
        a: DynDistribution,
        r: DynDistribution,
        s: DynDistribution,
    ) -> Self {
        Self { cfg, w, a, r, s, name: name.into() }
    }

    /// Common shorthand: one distribution for `W`, one shared by `A=R=S`
    /// (the shape of every production fit in Table 3).
    pub fn w_ars(cfg: ReplicaConfig, name: impl Into<String>, w: DynDistribution, ars: DynDistribution) -> Self {
        Self::new(cfg, name, w, ars.clone(), ars.clone(), ars)
    }

    /// Replace the replication configuration (used by N/R/W sweeps).
    pub fn with_config(&self, cfg: ReplicaConfig) -> Self {
        Self {
            cfg,
            w: self.w.clone(),
            a: self.a.clone(),
            r: self.r.clone(),
            s: self.s.clone(),
            name: self.name.clone(),
        }
    }
}

impl LatencyModel for IidModel {
    fn config(&self) -> ReplicaConfig {
        self.cfg
    }

    fn sample_trial(&self, rng: &mut dyn RngCore, out: &mut WarsSample) {
        let n = self.cfg.n() as usize;
        out.reset(n);
        for _ in 0..n {
            out.w.push(self.w.sample(rng));
            out.a.push(self.a.sample(rng));
            out.r.push(self.r.sample(rng));
            out.s.push(self.s.sample(rng));
        }
    }

    fn describe(&self) -> String {
        format!("{} ({})", self.name, self.cfg)
    }
}

impl std::fmt::Debug for IidModel {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "IidModel({})", self.describe())
    }
}

/// The multi-datacenter model of §5.5: each operation originates in a random
/// datacenter holding exactly one replica; messages to/from the other
/// `N − 1` replicas pay a fixed one-way WAN penalty on top of the base
/// distribution.
///
/// The write's local replica and the read's local replica are drawn
/// *independently* — a later reader usually sits in a different datacenter
/// than the writer, which is why WAN consistency immediately after commit is
/// ≈ `1/N` (Figure 6).
pub struct WanModel {
    cfg: ReplicaConfig,
    w: DynDistribution,
    a: DynDistribution,
    r: DynDistribution,
    s: DynDistribution,
    one_way_penalty_ms: f64,
    name: String,
}

impl WanModel {
    /// Build from base (intra-datacenter) distributions and a one-way WAN
    /// penalty in milliseconds.
    pub fn new(
        cfg: ReplicaConfig,
        name: impl Into<String>,
        w: DynDistribution,
        a: DynDistribution,
        r: DynDistribution,
        s: DynDistribution,
        one_way_penalty_ms: f64,
    ) -> Self {
        assert!(one_way_penalty_ms >= 0.0 && one_way_penalty_ms.is_finite());
        Self { cfg, w, a, r, s, one_way_penalty_ms, name: name.into() }
    }

    /// Replace the replication configuration (used by N sweeps).
    pub fn with_config(&self, cfg: ReplicaConfig) -> Self {
        Self {
            cfg,
            w: self.w.clone(),
            a: self.a.clone(),
            r: self.r.clone(),
            s: self.s.clone(),
            one_way_penalty_ms: self.one_way_penalty_ms,
            name: self.name.clone(),
        }
    }
}

impl LatencyModel for WanModel {
    fn config(&self) -> ReplicaConfig {
        self.cfg
    }

    fn sample_trial(&self, rng: &mut dyn RngCore, out: &mut WarsSample) {
        let n = self.cfg.n() as usize;
        out.reset(n);
        let write_local = rng.gen_range(0..n);
        let read_local = rng.gen_range(0..n);
        for i in 0..n {
            let wp = if i == write_local { 0.0 } else { self.one_way_penalty_ms };
            let rp = if i == read_local { 0.0 } else { self.one_way_penalty_ms };
            out.w.push(wp + self.w.sample(rng));
            out.a.push(wp + self.a.sample(rng));
            out.r.push(rp + self.r.sample(rng));
            out.s.push(rp + self.s.sample(rng));
        }
    }

    fn describe(&self) -> String {
        format!("{} ({}, +{}ms one-way WAN)", self.name, self.cfg, self.one_way_penalty_ms)
    }
}

impl std::fmt::Debug for WanModel {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "WanModel({})", self.describe())
    }
}

/// §5.3's alternative to growing quorums: *delay reads*. Wraps any model
/// and adds a fixed delay to every read-request (`R`) leg, giving writes
/// extra time to propagate at the cost of read latency — "potentially
/// detrimental to performance for read-dominated workloads".
pub struct WithReadDelay<M> {
    inner: M,
    delay_ms: f64,
}

impl<M: LatencyModel> WithReadDelay<M> {
    /// Delay every read request by `delay_ms ≥ 0`.
    pub fn new(inner: M, delay_ms: f64) -> Self {
        assert!(delay_ms >= 0.0 && delay_ms.is_finite());
        Self { inner, delay_ms }
    }
}

impl<M: LatencyModel> LatencyModel for WithReadDelay<M> {
    fn config(&self) -> ReplicaConfig {
        self.inner.config()
    }

    fn sample_trial(&self, rng: &mut dyn RngCore, out: &mut WarsSample) {
        self.inner.sample_trial(rng, out);
        for r in &mut out.r {
            *r += self.delay_ms;
        }
    }

    fn describe(&self) -> String {
        format!("{} + {}ms read delay", self.inner.describe(), self.delay_ms)
    }
}

impl<M: LatencyModel> std::fmt::Debug for WithReadDelay<M> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "WithReadDelay({})", self.describe())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use pbs_dist::Constant;
    use rand::rngs::StdRng;
    use rand::SeedableRng;
    use std::sync::Arc;

    fn cfg(n: u32, r: u32, w: u32) -> ReplicaConfig {
        ReplicaConfig::new(n, r, w).unwrap()
    }

    #[test]
    fn iid_model_fills_all_vectors() {
        let m = IidModel::w_ars(
            cfg(5, 2, 1),
            "test",
            Arc::new(Constant::new(2.0)),
            Arc::new(Constant::new(1.0)),
        );
        let mut rng = StdRng::seed_from_u64(1);
        let mut s = WarsSample::default();
        m.sample_trial(&mut rng, &mut s);
        assert_eq!(s.w, vec![2.0; 5]);
        assert_eq!(s.a, vec![1.0; 5]);
        assert_eq!(s.r, vec![1.0; 5]);
        assert_eq!(s.s, vec![1.0; 5]);
    }

    #[test]
    fn wan_model_has_exactly_one_local_per_leg() {
        let m = WanModel::new(
            cfg(3, 1, 1),
            "wan-test",
            Arc::new(Constant::new(1.0)),
            Arc::new(Constant::new(1.0)),
            Arc::new(Constant::new(1.0)),
            Arc::new(Constant::new(1.0)),
            75.0,
        );
        let mut rng = StdRng::seed_from_u64(3);
        let mut s = WarsSample::default();
        for _ in 0..100 {
            m.sample_trial(&mut rng, &mut s);
            let local_writes = s.w.iter().filter(|&&x| x < 75.0).count();
            let local_reads = s.r.iter().filter(|&&x| x < 75.0).count();
            assert_eq!(local_writes, 1, "exactly one write-local replica");
            assert_eq!(local_reads, 1, "exactly one read-local replica");
            // W and A share locality per replica.
            for i in 0..3 {
                assert_eq!(s.w[i] >= 75.0, s.a[i] >= 75.0);
                assert_eq!(s.r[i] >= 75.0, s.s[i] >= 75.0);
            }
        }
    }

    #[test]
    fn wan_read_write_localities_independent() {
        let m = WanModel::new(
            cfg(3, 1, 1),
            "wan-test",
            Arc::new(Constant::new(1.0)),
            Arc::new(Constant::new(1.0)),
            Arc::new(Constant::new(1.0)),
            Arc::new(Constant::new(1.0)),
            75.0,
        );
        let mut rng = StdRng::seed_from_u64(9);
        let mut s = WarsSample::default();
        let mut same = 0usize;
        let trials = 30_000;
        for _ in 0..trials {
            m.sample_trial(&mut rng, &mut s);
            let wl = s.w.iter().position(|&x| x < 75.0).unwrap();
            let rl = s.r.iter().position(|&x| x < 75.0).unwrap();
            if wl == rl {
                same += 1;
            }
        }
        let frac = same as f64 / trials as f64;
        assert!((frac - 1.0 / 3.0).abs() < 0.02, "co-location fraction {frac} ≈ 1/N");
    }

    #[test]
    fn with_config_changes_only_n_r_w() {
        let m = IidModel::w_ars(
            cfg(3, 1, 1),
            "x",
            Arc::new(Constant::new(2.0)),
            Arc::new(Constant::new(1.0)),
        );
        let m10 = m.with_config(cfg(10, 1, 1));
        assert_eq!(m10.config().n(), 10);
        let mut rng = StdRng::seed_from_u64(0);
        let mut s = WarsSample::default();
        m10.sample_trial(&mut rng, &mut s);
        assert_eq!(s.w.len(), 10);
    }
}
