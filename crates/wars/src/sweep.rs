//! Parameter sweeps producing the series behind the paper's figures and
//! tables.

use crate::model::LatencyModel;
use crate::tvisibility::TVisibility;
use pbs_core::ReplicaConfig;

/// A `(t, P(consistent))` series — one curve of Figures 4, 6 or 7.
pub fn tvisibility_series(tv: &TVisibility, ts: &[f64]) -> Vec<(f64, f64)> {
    ts.iter().map(|&t| (t, tv.prob_consistent(t))).collect()
}

/// Log-spaced sample points from `lo` to `hi` (inclusive), matching the
/// paper's log-x-axis figures.
pub fn log_spaced(lo: f64, hi: f64, points: usize) -> Vec<f64> {
    assert!(lo > 0.0 && hi > lo && points >= 2);
    let (llo, lhi) = (lo.ln(), hi.ln());
    (0..points)
        .map(|i| (llo + (lhi - llo) * i as f64 / (points - 1) as f64).exp())
        .collect()
}

/// Linearly spaced sample points from `lo` to `hi` inclusive.
pub fn lin_spaced(lo: f64, hi: f64, points: usize) -> Vec<f64> {
    assert!(hi >= lo && points >= 2);
    (0..points)
        .map(|i| lo + (hi - lo) * i as f64 / (points - 1) as f64)
        .collect()
}

/// One row of Table 4: a configuration's 99.9th-percentile operation
/// latencies and its t-visibility at 99.9% probability of consistency.
#[derive(Debug, Clone, Copy)]
pub struct LatencyStalenessRow {
    /// The replication configuration.
    pub cfg: ReplicaConfig,
    /// Read latency at `pct` (ms).
    pub read_latency: f64,
    /// Write latency at `pct` (ms).
    pub write_latency: f64,
    /// Smallest `t` with `P(consistent) ≥ target`, or `None` if more trials
    /// are needed to resolve it.
    pub t_visibility: Option<f64>,
}

/// Compute a Table-4-style row for one model.
pub fn latency_staleness_row<M: LatencyModel + Sync + ?Sized>(
    model: &M,
    trials: usize,
    seed: u64,
    pct: f64,
    target_consistency: f64,
    threads: usize,
) -> LatencyStalenessRow {
    let tv = TVisibility::simulate_parallel(model, trials, seed, threads);
    LatencyStalenessRow {
        cfg: model.config(),
        read_latency: tv.read_latency_percentile(pct),
        write_latency: tv.write_latency_percentile(pct),
        t_visibility: tv.t_at_probability(target_consistency),
    }
}

/// Sweep `(R, W)` pairs for a fixed `N`, producing Table 4's rows in the
/// paper's order. `factory` builds the model for each configuration (e.g.
/// `|cfg| ProductionProfile::Ymmr.model(cfg)`).
pub fn table4_sweep(
    factory: &dyn Fn(ReplicaConfig) -> Box<dyn LatencyModel>,
    n: u32,
    pairs: &[(u32, u32)],
    trials: usize,
    seed: u64,
    threads: usize,
) -> Vec<LatencyStalenessRow> {
    pairs
        .iter()
        .map(|&(r, w)| {
            let cfg = ReplicaConfig::new(n, r, w).expect("valid sweep configuration");
            let model = factory(cfg);
            latency_staleness_row(model.as_ref(), trials, seed, 99.9, 0.999, threads)
        })
        .collect()
}

/// The `(R, W)` pairs of Table 4, in row order.
pub const TABLE4_PAIRS: [(u32, u32); 6] = [(1, 1), (1, 2), (2, 1), (2, 2), (3, 1), (1, 3)];

/// Sweep the replication factor `N` with `R = W = 1` (Figure 7), each
/// point sharded over `threads` on the deterministic runner.
pub fn replication_factor_sweep(
    factory: &dyn Fn(ReplicaConfig) -> Box<dyn LatencyModel>,
    ns: &[u32],
    trials: usize,
    seed: u64,
    threads: usize,
) -> Vec<(u32, TVisibility)> {
    ns.iter()
        .map(|&n| {
            let cfg = ReplicaConfig::new(n, 1, 1).expect("valid N");
            (n, TVisibility::simulate_parallel(factory(cfg).as_ref(), trials, seed, threads))
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::production::{exponential_model, lnkd_disk_model};

    fn cfg(n: u32, r: u32, w: u32) -> ReplicaConfig {
        ReplicaConfig::new(n, r, w).unwrap()
    }

    #[test]
    fn log_spacing_endpoints_and_monotonicity() {
        let pts = log_spaced(0.1, 1000.0, 9);
        assert_eq!(pts.len(), 9);
        assert!((pts[0] - 0.1).abs() < 1e-9);
        assert!((pts[8] - 1000.0).abs() < 1e-6);
        for w in pts.windows(2) {
            assert!(w[1] > w[0]);
        }
    }

    #[test]
    fn lin_spacing_endpoints() {
        let pts = lin_spaced(0.0, 10.0, 11);
        assert_eq!(pts[3], 3.0);
    }

    #[test]
    fn series_is_monotone() {
        let m = exponential_model(cfg(3, 1, 1), 0.1, 0.5);
        let tv = TVisibility::simulate(&m, 20_000, 1);
        let series = tvisibility_series(&tv, &lin_spaced(0.0, 100.0, 21));
        for w in series.windows(2) {
            assert!(w[1].1 >= w[0].1);
        }
    }

    #[test]
    fn table4_sweep_strict_rows_have_zero_tvisibility() {
        let rows = table4_sweep(
            &|c| Box::new(exponential_model(c, 0.2, 0.5)),
            3,
            &TABLE4_PAIRS,
            20_000,
            3,
            1,
        );
        assert_eq!(rows.len(), 6);
        for row in &rows {
            if row.cfg.is_strict() {
                assert_eq!(row.t_visibility, Some(0.0), "{}", row.cfg);
            } else {
                assert!(row.t_visibility.unwrap() >= 0.0);
            }
            // Bigger R ⇒ slower reads; bigger W ⇒ slower writes.
        }
        // R=3 reads slower than R=1 reads at the same percentile.
        let r1 = rows.iter().find(|r| r.cfg.r() == 1 && r.cfg.w() == 1).unwrap();
        let r3 = rows.iter().find(|r| r.cfg.r() == 3).unwrap();
        assert!(r3.read_latency > r1.read_latency);
    }

    #[test]
    fn replication_sweep_more_replicas_lower_immediate_consistency() {
        // Figure 7's effect: with R=W=1, growing N lowers the probability of
        // consistency immediately after commit.
        let runs = replication_factor_sweep(
            &|c| Box::new(lnkd_disk_model(c)),
            &[2, 3, 5, 10],
            30_000,
            5,
            2,
        );
        let p0: Vec<f64> = runs.iter().map(|(_, tv)| tv.prob_consistent(0.0)).collect();
        for w in p0.windows(2) {
            assert!(w[1] < w[0] + 0.02, "immediate consistency should fall with N: {p0:?}");
        }
    }
}
