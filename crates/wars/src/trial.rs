//! Single-trial WARS computation (§5.1): commit time, operation latencies,
//! and the per-trial staleness threshold.

use crate::model::WarsSample;
use pbs_core::ReplicaConfig;

/// Outcome of one WARS trial.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct TrialResult {
    /// Write operation latency: the time at which the coordinator received
    /// the `W`-th acknowledgment (the commit time `w_t`).
    pub write_latency: f64,
    /// Read operation latency: the time at which the coordinator received
    /// the `R`-th read response.
    pub read_latency: f64,
    /// The *staleness threshold* `T`: the smallest read offset `t` (relative
    /// to commit) at which this trial's read observes the write.
    ///
    /// `T = min over the first R responders i of (W[i] − w_t − R[i])`.
    /// `T ≤ 0` means the read is consistent even if issued immediately at
    /// commit; `T ≤ t` means consistent when issued `t` after commit. For
    /// strict quorums `T ≤ 0` always.
    pub staleness_threshold: f64,
}

/// Reusable scratch buffers so the hot Monte-Carlo loop never allocates.
#[derive(Debug, Default)]
pub struct TrialScratch {
    wa: Vec<f64>,
    order: Vec<usize>,
}

/// Evaluate one WARS trial.
///
/// Semantics follow §5.1 exactly, with one tie convention: a read request
/// arriving at a replica at the *same instant* as the write observes the
/// write (consistency favoured on ties; measure-zero for continuous
/// distributions, relevant only for degenerate test distributions).
pub fn run_trial(cfg: ReplicaConfig, sample: &WarsSample, scratch: &mut TrialScratch) -> TrialResult {
    let n = cfg.n() as usize;
    let r_quorum = cfg.r() as usize;
    let w_quorum = cfg.w() as usize;
    assert_eq!(sample.w.len(), n, "sample/config mismatch");
    assert_eq!(sample.a.len(), n);
    assert_eq!(sample.r.len(), n);
    assert_eq!(sample.s.len(), n);

    // Commit time: W-th smallest W[i] + A[i].
    scratch.wa.clear();
    scratch.wa.extend(sample.w.iter().zip(&sample.a).map(|(w, a)| w + a));
    scratch.wa.sort_unstable_by(|x, y| x.partial_cmp(y).expect("latencies are not NaN"));
    let commit_time = scratch.wa[w_quorum - 1];

    // Read responders ordered by response arrival R[i] + S[i].
    scratch.order.clear();
    scratch.order.extend(0..n);
    let (r, s) = (&sample.r, &sample.s);
    // `sort_unstable_by`: the stable sort allocates a merge buffer on every
    // call, which would be the hot loop's only per-trial allocation.
    scratch.order.sort_unstable_by(|&i, &j| {
        (r[i] + s[i]).partial_cmp(&(r[j] + s[j])).expect("latencies are not NaN")
    });
    let last_responder = scratch.order[r_quorum - 1];
    let read_latency = r[last_responder] + s[last_responder];

    // Replica i (among the first R responders) holds the write at read
    // arrival iff W[i] ≤ w_t + t + R[i]  ⇔  t ≥ W[i] − w_t − R[i].
    let staleness_threshold = scratch.order[..r_quorum]
        .iter()
        .map(|&i| sample.w[i] - commit_time - sample.r[i])
        .fold(f64::INFINITY, f64::min);

    TrialResult { write_latency: commit_time, read_latency, staleness_threshold }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn cfg(n: u32, r: u32, w: u32) -> ReplicaConfig {
        ReplicaConfig::new(n, r, w).unwrap()
    }

    fn sample(w: &[f64], a: &[f64], r: &[f64], s: &[f64]) -> WarsSample {
        WarsSample { w: w.to_vec(), a: a.to_vec(), r: r.to_vec(), s: s.to_vec() }
    }

    #[test]
    fn commit_time_is_wth_order_statistic() {
        // W delays: 5, 1, 3. A delays: 1 each → W+A = 6, 2, 4.
        let smp = sample(&[5.0, 1.0, 3.0], &[1.0; 3], &[1.0; 3], &[1.0; 3]);
        let mut scratch = TrialScratch::default();
        let r1 = run_trial(cfg(3, 1, 1), &smp, &mut scratch);
        assert_eq!(r1.write_latency, 2.0);
        let r2 = run_trial(cfg(3, 1, 2), &smp, &mut scratch);
        assert_eq!(r2.write_latency, 4.0);
        let r3 = run_trial(cfg(3, 1, 3), &smp, &mut scratch);
        assert_eq!(r3.write_latency, 6.0);
    }

    #[test]
    fn read_latency_is_rth_response() {
        let smp = sample(&[0.0; 3], &[0.0; 3], &[3.0, 1.0, 2.0], &[0.5, 0.5, 0.5]);
        let mut scratch = TrialScratch::default();
        assert_eq!(run_trial(cfg(3, 1, 1), &smp, &mut scratch).read_latency, 1.5);
        assert_eq!(run_trial(cfg(3, 2, 1), &smp, &mut scratch).read_latency, 2.5);
        assert_eq!(run_trial(cfg(3, 3, 1), &smp, &mut scratch).read_latency, 3.5);
    }

    #[test]
    fn stale_when_fast_reader_beats_slow_write() {
        // Replica 0 acks instantly (commit at 1.0), replica 1 receives the
        // write very late (at 10.0). The read's first responder is replica 1
        // (r+s = 1), so at t=0 the read arrives at replica 1 at time
        // 1.0 + 0.5 = 1.5 < 10.0 → stale until t = 10 − 1 − 0.5 = 8.5.
        let smp = sample(
            &[1.0, 10.0],
            &[0.0, 50.0],
            &[9.0, 0.5],
            &[9.0, 0.5],
        );
        let mut scratch = TrialScratch::default();
        let res = run_trial(cfg(2, 1, 1), &smp, &mut scratch);
        assert_eq!(res.write_latency, 1.0);
        assert_eq!(res.read_latency, 1.0);
        assert!((res.staleness_threshold - 8.5).abs() < 1e-12);
    }

    #[test]
    fn consistent_when_responder_has_the_write() {
        // First responder is replica 0, which received the write before
        // commit → threshold ≤ 0.
        let smp = sample(&[0.5, 9.0], &[0.5, 9.0], &[0.1, 5.0], &[0.1, 5.0], );
        let mut scratch = TrialScratch::default();
        let res = run_trial(cfg(2, 1, 1), &smp, &mut scratch);
        assert!(res.staleness_threshold <= 0.0);
    }

    #[test]
    fn strict_quorum_threshold_never_positive() {
        // R+W > N: some responder must hold the committed write at t=0.
        // Exhaustive micro-check over a few adversarial samples.
        let samples = [
            sample(&[9.0, 1.0, 5.0], &[0.1, 0.1, 0.1], &[0.1, 9.0, 4.0], &[0.1, 0.1, 0.1]),
            sample(&[3.0, 3.0, 3.0], &[1.0, 2.0, 3.0], &[1.0, 1.0, 1.0], &[2.0, 1.0, 0.5]),
            sample(&[10.0, 0.1, 0.2], &[5.0, 0.1, 0.1], &[0.5, 8.0, 7.0], &[0.5, 0.5, 0.5]),
        ];
        let mut scratch = TrialScratch::default();
        for smp in &samples {
            for (r, w) in [(2u32, 2u32), (1, 3), (3, 1)] {
                let res = run_trial(cfg(3, r, w), smp, &mut scratch);
                assert!(
                    res.staleness_threshold <= 1e-12,
                    "strict quorum R={r} W={w} produced positive threshold {}",
                    res.staleness_threshold
                );
            }
        }
    }

    #[test]
    fn tie_read_at_write_arrival_is_consistent() {
        // Write arrives at replica exactly when the read does: W = w_t + R.
        // Replica 0: W+A = 1.0 → commit at 1.0. Read to replica 1 arrives at
        // 1.0 + r[1]; its write arrives at w[1] = 1.0 + r[1] → threshold 0.
        let smp = sample(&[1.0, 3.0], &[0.0, 0.0], &[5.0, 2.0], &[5.0, 0.0]);
        let mut scratch = TrialScratch::default();
        let res = run_trial(cfg(2, 1, 1), &smp, &mut scratch);
        assert_eq!(res.staleness_threshold, 0.0);
        // Consistency at t = 0 uses t ≥ threshold.
        assert!(res.staleness_threshold <= 0.0 || res.staleness_threshold == 0.0);
    }

    #[test]
    #[should_panic(expected = "sample/config mismatch")]
    fn mismatched_sample_panics() {
        let smp = sample(&[1.0], &[1.0], &[1.0], &[1.0]);
        let mut scratch = TrialScratch::default();
        let _ = run_trial(cfg(3, 1, 1), &smp, &mut scratch);
    }
}
