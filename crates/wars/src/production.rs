//! Ready-made WARS models for the paper's four production latency profiles
//! (Table 3) and the synthetic exponential models of §5.2–5.3.

use crate::model::{IidModel, LatencyModel, WanModel};
use pbs_core::ReplicaConfig;
use pbs_dist::production as fits;
use pbs_dist::Exponential;
use std::sync::Arc;

/// LNKD-SSD: LinkedIn Voldemort on SSDs — `W = A = R = S`, all fast and
/// short-tailed.
pub fn lnkd_ssd_model(cfg: ReplicaConfig) -> IidModel {
    let d = Arc::new(fits::lnkd_ssd());
    IidModel::new(cfg, "LNKD-SSD", d.clone(), d.clone(), d.clone(), d)
}

/// LNKD-DISK: LinkedIn Voldemort on 15k RPM disks — heavy-tailed `W`,
/// SSD-like `A = R = S`.
pub fn lnkd_disk_model(cfg: ReplicaConfig) -> IidModel {
    IidModel::w_ars(
        cfg,
        "LNKD-DISK",
        Arc::new(fits::lnkd_disk_write()),
        Arc::new(fits::lnkd_disk_ars()),
    )
}

/// YMMR: Yammer Riak — fsync-bound writes with a seconds-scale exponential
/// tail.
pub fn ymmr_model(cfg: ReplicaConfig) -> IidModel {
    IidModel::w_ars(cfg, "YMMR", Arc::new(fits::ymmr_write()), Arc::new(fits::ymmr_ars()))
}

/// WAN: multi-datacenter replication — one local replica per operation,
/// 75 ms one-way penalty to the rest, LNKD-DISK base latencies (§5.5).
pub fn wan_model(cfg: ReplicaConfig) -> WanModel {
    WanModel::new(
        cfg,
        "WAN",
        Arc::new(fits::lnkd_disk_write()),
        Arc::new(fits::lnkd_disk_ars()),
        Arc::new(fits::lnkd_disk_ars()),
        Arc::new(fits::lnkd_disk_ars()),
        fits::WAN_ONE_WAY_DELAY_MS,
    )
}

/// Synthetic model of §5.2/§5.3: exponential `W` with rate `w_rate` and
/// exponential `A = R = S` with rate `ars_rate`.
pub fn exponential_model(cfg: ReplicaConfig, w_rate: f64, ars_rate: f64) -> IidModel {
    IidModel::w_ars(
        cfg,
        format!("Exp W λ={w_rate}, ARS λ={ars_rate}"),
        Arc::new(Exponential::from_rate(w_rate)),
        Arc::new(Exponential::from_rate(ars_rate)),
    )
}

/// The four named production profiles of §5.4–5.8, for iteration in bench
/// harnesses.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ProductionProfile {
    /// LinkedIn Voldemort, SSD-backed.
    LnkdSsd,
    /// LinkedIn Voldemort, spinning disks.
    LnkdDisk,
    /// Yammer Riak.
    Ymmr,
    /// Multi-datacenter WAN.
    Wan,
}

impl ProductionProfile {
    /// All four profiles in the paper's presentation order.
    pub const ALL: [ProductionProfile; 4] = [
        ProductionProfile::LnkdSsd,
        ProductionProfile::LnkdDisk,
        ProductionProfile::Ymmr,
        ProductionProfile::Wan,
    ];

    /// The paper's name for this profile.
    pub fn name(&self) -> &'static str {
        match self {
            ProductionProfile::LnkdSsd => "LNKD-SSD",
            ProductionProfile::LnkdDisk => "LNKD-DISK",
            ProductionProfile::Ymmr => "YMMR",
            ProductionProfile::Wan => "WAN",
        }
    }

    /// Build the WARS model for a configuration.
    pub fn model(&self, cfg: ReplicaConfig) -> Box<dyn LatencyModel> {
        match self {
            ProductionProfile::LnkdSsd => Box::new(lnkd_ssd_model(cfg)),
            ProductionProfile::LnkdDisk => Box::new(lnkd_disk_model(cfg)),
            ProductionProfile::Ymmr => Box::new(ymmr_model(cfg)),
            ProductionProfile::Wan => Box::new(wan_model(cfg)),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::tvisibility::TVisibility;

    fn cfg(n: u32, r: u32, w: u32) -> ReplicaConfig {
        ReplicaConfig::new(n, r, w).unwrap()
    }

    /// §5.6: LNKD-SSD has ≈97.4% immediate consistency and ≥99.999% at 5 ms.
    #[test]
    fn lnkd_ssd_immediate_consistency_matches_paper() {
        let tv = TVisibility::simulate(&lnkd_ssd_model(cfg(3, 1, 1)), 100_000, 42);
        let p0 = tv.prob_consistent(0.0);
        assert!((p0 - 0.974).abs() < 0.02, "paper: 97.4%, got {p0}");
        assert!(tv.prob_consistent(5.0) > 0.9995, "paper: ~five nines at 5ms");
    }

    /// §5.6: LNKD-DISK has only ≈43.9% immediate consistency and ≈92.5% at
    /// 10 ms.
    #[test]
    fn lnkd_disk_immediate_consistency_matches_paper() {
        let tv = TVisibility::simulate(&lnkd_disk_model(cfg(3, 1, 1)), 100_000, 42);
        let p0 = tv.prob_consistent(0.0);
        assert!((p0 - 0.439).abs() < 0.03, "paper: 43.9%, got {p0}");
        let p10 = tv.prob_consistent(10.0);
        assert!((p10 - 0.925).abs() < 0.03, "paper: 92.5%, got {p10}");
    }

    /// §5.6: YMMR has ≈89.3% immediate consistency; its heavy tail delays
    /// 99.9% consistency to ≈1.4 s.
    #[test]
    fn ymmr_matches_paper() {
        let tv = TVisibility::simulate(&ymmr_model(cfg(3, 1, 1)), 200_000, 42);
        let p0 = tv.prob_consistent(0.0);
        assert!((p0 - 0.893).abs() < 0.03, "paper: 89.3%, got {p0}");
        let t999 = tv.t_at_probability(0.999).unwrap();
        assert!(
            (500.0..2500.0).contains(&t999),
            "paper: 1364ms for 99.9%, got {t999}"
        );
    }

    /// §5.6: WAN has ≈33% immediate consistency (reads co-located with the
    /// write's datacenter), recovering after ≈75 ms.
    #[test]
    fn wan_matches_paper() {
        let tv = TVisibility::simulate(&wan_model(cfg(3, 1, 1)), 100_000, 42);
        let p0 = tv.prob_consistent(0.0);
        assert!((p0 - 0.33).abs() < 0.05, "paper: ~33%, got {p0}");
        // After the 75ms one-way penalty has elapsed, consistency recovers
        // rapidly.
        assert!(tv.prob_consistent(95.0) > 0.9);
    }

    /// §5.6: LNKD-SSD operation latency — "median .489 ms" combined
    /// read/write, p99.9 ≈ .657 ms for R=W=1.
    #[test]
    fn lnkd_ssd_operation_latencies_match_paper() {
        let tv = TVisibility::simulate(&lnkd_ssd_model(cfg(3, 1, 1)), 200_000, 7);
        let med_r = tv.read_latency_percentile(50.0);
        let med_w = tv.write_latency_percentile(50.0);
        assert!((med_r - 0.489).abs() < 0.05, "read median {med_r}");
        assert!((med_w - 0.489).abs() < 0.05, "write median {med_w}");
        let p999 = tv.write_latency_percentile(99.9);
        assert!((p999 - 0.657).abs() < 0.1, "p99.9 {p999}");
    }

    /// §5.6: LNKD-DISK W=1 write operation latency — median 1.50 ms,
    /// p99.9 ≈ 10.47 ms.
    #[test]
    fn lnkd_disk_operation_latencies_match_paper() {
        let tv = TVisibility::simulate(&lnkd_disk_model(cfg(3, 1, 1)), 200_000, 7);
        let med = tv.write_latency_percentile(50.0);
        assert!((med - 1.5).abs() < 0.2, "write median {med}");
        let p999 = tv.write_latency_percentile(99.9);
        assert!((p999 - 10.47).abs() < 1.5, "write p99.9 {p999}");
    }

    #[test]
    fn all_profiles_build_and_run() {
        for p in ProductionProfile::ALL {
            let tv = TVisibility::simulate(p.model(cfg(3, 2, 1)).as_ref(), 2_000, 1);
            assert!(tv.prob_consistent(10_000.0) > 0.99, "{}", p.name());
        }
    }
}
