//! # pbs-wars — the WARS latency model, Monte Carlo engine
//!
//! §4.1 of the PBS paper models a Dynamo-style write-then-read as four
//! one-way message delays per replica:
//!
//! * **W** — coordinator → replica write propagation,
//! * **A** — replica → coordinator write acknowledgment,
//! * **R** — coordinator → replica read request,
//! * **S** — replica → coordinator read response.
//!
//! A write *commits* when the coordinator has `W` acknowledgments (at the
//! `W`-th smallest `W[i] + A[i]`, time `w_t`). A read issued `t` after
//! commit returns stale data iff **every** one of the first `R` read
//! responses left its replica before that replica received the write:
//! `w_t + R[i] + t < W[i]` for all `i` among the first `R` responders
//! (ordered by `R[i] + S[i]`).
//!
//! The analytical form is a gnarly pair of dependent order statistics
//! (§4.1), so the paper — and this crate — evaluates it by Monte Carlo
//! (§5.1). The key implementation observation (see [`trial`]) is that each
//! trial yields a single *staleness threshold* `T`, the smallest `t` at
//! which that trial's read would have been consistent; the distribution of
//! thresholds therefore answers *every* `t`-query and inverts to
//! "t at 99.9% consistency" directly.
//!
//! Execution runs on the deterministic sharded runner and streaming
//! summaries of `pbs-mc`: trials shard as `seed ^ shard_index`, per-shard
//! quantile sketches merge in shard order, so results are bit-reproducible
//! for a fixed `(seed, threads)` pair and peak memory is independent of
//! the trial count.
//!
//! Entry points: [`TVisibility::simulate`] (single-threaded, deterministic)
//! and [`TVisibility::simulate_parallel`]; production latency models from
//! Table 3 live in [`production`]; figure/table sweeps in [`sweep`].

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod kt;
pub mod model;
pub mod production;
pub mod sweep;
pub mod trial;
pub mod tvisibility;

pub use model::{IidModel, LatencyModel, WanModel, WarsSample};
pub use trial::TrialResult;
pub use tvisibility::TVisibility;
