//! Monte-Carlo t-visibility curves and operation-latency percentiles.

use crate::model::{LatencyModel, WarsSample};
use crate::trial::{run_trial, TrialScratch};
use pbs_core::ReplicaConfig;
use pbs_dist::stats::SortedSamples;
use rand::rngs::StdRng;
use rand::SeedableRng;

/// The result of a batch of WARS trials: the full t-visibility curve (as a
/// sorted sample of per-trial staleness thresholds) plus read/write
/// operation-latency distributions.
///
/// Sorting the thresholds once makes every query O(log n):
/// `P(consistent at t) = ECDF_T(t)` and the inverse
/// ["t-visibility at probability p"](Self::t_at_probability) is an order
/// statistic.
#[derive(Debug, Clone)]
pub struct TVisibility {
    cfg: ReplicaConfig,
    thresholds: SortedSamples,
    read_latency: SortedSamples,
    write_latency: SortedSamples,
}

impl TVisibility {
    /// Run `trials` WARS trials with a fresh deterministic RNG.
    ///
    /// Panics if `trials == 0`. 10⁴ trials resolve probabilities to ~1%;
    /// the paper's headline numbers use 5×10⁴–10⁶ (see
    /// [`simulate_parallel`](Self::simulate_parallel) for the larger runs).
    pub fn simulate<M: LatencyModel + ?Sized>(model: &M, trials: usize, seed: u64) -> Self {
        assert!(trials > 0, "need at least one trial");
        let cfg = model.config();
        let mut rng = StdRng::seed_from_u64(seed);
        let mut sample = WarsSample::default();
        let mut scratch = TrialScratch::default();
        let mut thresholds = Vec::with_capacity(trials);
        let mut reads = Vec::with_capacity(trials);
        let mut writes = Vec::with_capacity(trials);
        for _ in 0..trials {
            model.sample_trial(&mut rng, &mut sample);
            let res = run_trial(cfg, &sample, &mut scratch);
            thresholds.push(res.staleness_threshold);
            reads.push(res.read_latency);
            writes.push(res.write_latency);
        }
        Self {
            cfg,
            thresholds: SortedSamples::new(thresholds),
            read_latency: SortedSamples::new(reads),
            write_latency: SortedSamples::new(writes),
        }
    }

    /// Like [`simulate`](Self::simulate) but sharded across `threads` OS
    /// threads. Deterministic for a fixed `(seed, threads)` pair: shard `i`
    /// uses seed `seed + i` and shard results are merged by sorting.
    pub fn simulate_parallel<M: LatencyModel + Sync + ?Sized>(
        model: &M,
        trials: usize,
        seed: u64,
        threads: usize,
    ) -> Self {
        assert!(trials > 0 && threads > 0);
        if threads == 1 {
            return Self::simulate(model, trials, seed);
        }
        let per = trials.div_ceil(threads);
        let mut shards: Vec<TVisibility> = Vec::with_capacity(threads);
        std::thread::scope(|scope| {
            let handles: Vec<_> = (0..threads)
                .map(|i| {
                    let count = per.min(trials - (per * i).min(trials));
                    scope.spawn(move || {
                        if count == 0 {
                            None
                        } else {
                            Some(Self::simulate(model, count, seed + i as u64))
                        }
                    })
                })
                .collect();
            for h in handles {
                if let Some(shard) = h.join().expect("WARS shard panicked") {
                    shards.push(shard);
                }
            }
        });
        let cfg = model.config();
        let mut thresholds = Vec::with_capacity(trials);
        let mut reads = Vec::with_capacity(trials);
        let mut writes = Vec::with_capacity(trials);
        for s in shards {
            thresholds.extend_from_slice(s.thresholds.as_slice());
            reads.extend_from_slice(s.read_latency.as_slice());
            writes.extend_from_slice(s.write_latency.as_slice());
        }
        Self {
            cfg,
            thresholds: SortedSamples::new(thresholds),
            read_latency: SortedSamples::new(reads),
            write_latency: SortedSamples::new(writes),
        }
    }

    /// The simulated configuration.
    pub fn config(&self) -> ReplicaConfig {
        self.cfg
    }

    /// Number of trials aggregated.
    pub fn trials(&self) -> usize {
        self.thresholds.len()
    }

    /// `P(consistent)` for a read starting `t` ms after commit
    /// (t-visibility, Definition 3).
    pub fn prob_consistent(&self, t: f64) -> f64 {
        self.thresholds.ecdf(t)
    }

    /// Probability of *violating* t-visibility at offset `t` (`p_st`).
    pub fn violation(&self, t: f64) -> f64 {
        1.0 - self.prob_consistent(t)
    }

    /// One-sigma standard error of [`prob_consistent`](Self::prob_consistent)
    /// at `t` (binomial normal approximation) — used to report Monte-Carlo
    /// uncertainty in EXPERIMENTS.md.
    pub fn std_error(&self, t: f64) -> f64 {
        let p = self.prob_consistent(t);
        (p * (1.0 - p) / self.trials() as f64).sqrt()
    }

    /// Smallest `t ≥ 0` such that `P(consistent at t) ≥ p` — e.g.
    /// `t_at_probability(0.999)` is Table 4's "t-visibility for
    /// `p_st = .001`". Returns `None` when even the largest observed
    /// threshold cannot reach `p` (needs more trials).
    pub fn t_at_probability(&self, p: f64) -> Option<f64> {
        assert!((0.0..=1.0).contains(&p), "probability out of range: {p}");
        let n = self.thresholds.len();
        let needed = (p * n as f64).ceil() as usize;
        if needed == 0 {
            return Some(0.0);
        }
        if needed > n {
            return None;
        }
        let t = self.thresholds.as_slice()[needed - 1];
        Some(t.max(0.0))
    }

    /// ⟨k,t⟩-staleness violation probability under the paper's conservative
    /// Eq.-5 assumption (all `k` writes committed simultaneously):
    /// `violation(t)^k`. For the direct multi-write Monte Carlo see
    /// [`crate::kt`].
    pub fn kt_violation(&self, t: f64, k: u32) -> f64 {
        self.violation(t).powi(k as i32)
    }

    /// Read-latency percentile (`pct ∈ [0, 100]`).
    pub fn read_latency_percentile(&self, pct: f64) -> f64 {
        self.read_latency.percentile(pct)
    }

    /// Write-latency percentile (`pct ∈ [0, 100]`).
    pub fn write_latency_percentile(&self, pct: f64) -> f64 {
        self.write_latency.percentile(pct)
    }

    /// The underlying sorted staleness thresholds (for cross-validation and
    /// plotting).
    pub fn thresholds(&self) -> &SortedSamples {
        &self.thresholds
    }

    /// The underlying read-latency samples.
    pub fn read_latencies(&self) -> &SortedSamples {
        &self.read_latency
    }

    /// The underlying write-latency samples.
    pub fn write_latencies(&self) -> &SortedSamples {
        &self.write_latency
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::model::IidModel;
    use pbs_dist::{Constant, Exponential};
    use std::sync::Arc;

    fn cfg(n: u32, r: u32, w: u32) -> ReplicaConfig {
        ReplicaConfig::new(n, r, w).unwrap()
    }

    fn exp_model(c: ReplicaConfig, w_rate: f64, ars_rate: f64) -> IidModel {
        IidModel::w_ars(
            c,
            format!("Exp(w={w_rate},ars={ars_rate})"),
            Arc::new(Exponential::from_rate(w_rate)),
            Arc::new(Exponential::from_rate(ars_rate)),
        )
    }

    #[test]
    fn strict_quorum_always_consistent() {
        for (r, w) in [(2, 2), (1, 3), (3, 1)] {
            let m = exp_model(cfg(3, r, w), 0.1, 0.5);
            let tv = TVisibility::simulate(&m, 5_000, 7);
            assert_eq!(tv.prob_consistent(0.0), 1.0, "R={r} W={w}");
            assert_eq!(tv.t_at_probability(1.0), Some(0.0));
        }
    }

    #[test]
    fn partial_quorum_eventually_consistent() {
        let m = exp_model(cfg(3, 1, 1), 0.1, 0.5);
        let tv = TVisibility::simulate(&m, 20_000, 11);
        let p0 = tv.prob_consistent(0.0);
        assert!(p0 < 1.0 && p0 > 0.2, "immediate consistency {p0}");
        // Monotone nondecreasing in t and → 1.
        let mut prev = 0.0;
        for i in 0..40 {
            let p = tv.prob_consistent(i as f64 * 5.0);
            assert!(p >= prev);
            prev = p;
        }
        assert!(tv.prob_consistent(200.0) > 0.999);
    }

    #[test]
    fn t_at_probability_inverts_curve() {
        let m = exp_model(cfg(3, 1, 1), 0.1, 0.5);
        let tv = TVisibility::simulate(&m, 50_000, 13);
        for &p in &[0.5, 0.9, 0.99, 0.999] {
            let t = tv.t_at_probability(p).unwrap();
            assert!(tv.prob_consistent(t) >= p, "p={p}: curve({t}) too low");
            if t > 0.0 {
                // Just below t the probability drops under p (minimality).
                assert!(tv.prob_consistent(t - 1e-9) < p + 1e-9);
            }
        }
    }

    #[test]
    fn deterministic_given_seed() {
        let m = exp_model(cfg(3, 1, 2), 0.2, 0.2);
        let a = TVisibility::simulate(&m, 2_000, 99);
        let b = TVisibility::simulate(&m, 2_000, 99);
        assert_eq!(a.thresholds.as_slice(), b.thresholds.as_slice());
        assert_eq!(a.read_latency.as_slice(), b.read_latency.as_slice());
    }

    #[test]
    fn parallel_matches_distribution() {
        let m = exp_model(cfg(3, 1, 1), 0.1, 0.5);
        let serial = TVisibility::simulate(&m, 40_000, 5);
        let par = TVisibility::simulate_parallel(&m, 40_000, 5, 4);
        assert_eq!(par.trials(), 40_000);
        // Same distribution statistically (not identical samples).
        for &p in &[0.5, 0.9, 0.99] {
            let a = serial.t_at_probability(p).unwrap();
            let b = par.t_at_probability(p).unwrap();
            assert!((a - b).abs() < 2.0 + 0.1 * a.max(b), "p={p}: {a} vs {b}");
        }
    }

    #[test]
    fn constant_latency_threshold_exact() {
        // Deterministic delays: w=4, a=0 → commit at 4 for W=1 (all equal).
        // Reads reach replicas at commit + t + r. With w=4, r=1: replica has
        // the write at 4; read arrives at 4 + t + 1 ≥ 4 always → consistent.
        let m = IidModel::w_ars(
            cfg(3, 1, 1),
            "const",
            Arc::new(Constant::new(4.0)),
            Arc::new(Constant::new(1.0)),
        );
        let tv = TVisibility::simulate(&m, 100, 0);
        assert_eq!(tv.prob_consistent(0.0), 1.0);
        assert_eq!(tv.write_latency_percentile(50.0), 5.0);
        assert_eq!(tv.read_latency_percentile(99.0), 2.0);
    }

    #[test]
    fn faster_writes_improve_tvisibility() {
        // §5.3's headline effect: holding A=R=S fixed, slower/longer-tailed
        // writes worsen t-visibility.
        let fast = TVisibility::simulate(&exp_model(cfg(3, 1, 1), 4.0, 1.0), 30_000, 3);
        let slow = TVisibility::simulate(&exp_model(cfg(3, 1, 1), 0.1, 1.0), 30_000, 3);
        assert!(fast.prob_consistent(0.0) > slow.prob_consistent(0.0));
        assert!(
            fast.t_at_probability(0.999).unwrap() < slow.t_at_probability(0.999).unwrap()
        );
    }

    #[test]
    fn kt_violation_exponentiates() {
        let m = exp_model(cfg(3, 1, 1), 0.1, 0.5);
        let tv = TVisibility::simulate(&m, 10_000, 21);
        let v = tv.violation(1.0);
        assert!((tv.kt_violation(1.0, 3) - v.powi(3)).abs() < 1e-12);
    }
}
