//! Monte-Carlo t-visibility curves and operation-latency percentiles.

use crate::model::{LatencyModel, WarsSample};
use crate::trial::{run_trial, TrialScratch};
use pbs_core::ReplicaConfig;
use pbs_mc::{Mergeable, Runner, Summary};

/// The result of a batch of WARS trials: the t-visibility curve (a
/// streaming summary of per-trial staleness thresholds) plus read/write
/// operation-latency distributions.
///
/// All three channels are [`Summary`] accumulators — O(1) memory
/// regardless of the trial count, with exact count/mean/extrema and
/// sketch-approximated quantiles/CDF:
/// `P(consistent at t) = CDF_T(t)` and the inverse
/// ["t-visibility at probability p"](Self::t_at_probability) is a quantile
/// query.
#[derive(Debug, Clone)]
pub struct TVisibility {
    cfg: ReplicaConfig,
    thresholds: Summary,
    read_latency: Summary,
    write_latency: Summary,
    /// Exact count of trials with `threshold ≤ 0`. The threshold
    /// distribution is *mixed* — an atom of immediately-consistent mass
    /// (ties, strict quorums, instantaneous reads) plus a continuous
    /// tail — and quantile sketches smear atoms, so the paper's headline
    /// "P(consistent at t = 0)" is kept exact on the side.
    consistent_at_zero: u64,
}

/// Per-shard accumulator: the three summaries plus reusable trial scratch
/// (dropped on merge).
#[derive(Default)]
struct TvShard {
    thresholds: Summary,
    read: Summary,
    write: Summary,
    consistent_at_zero: u64,
    sample: WarsSample,
    scratch: TrialScratch,
}

impl Mergeable for TvShard {
    fn merge(&mut self, other: Self) {
        self.thresholds.merge(other.thresholds);
        self.read.merge(other.read);
        self.write.merge(other.write);
        self.consistent_at_zero += other.consistent_at_zero;
    }
}

impl TVisibility {
    /// Run `trials` WARS trials single-threaded — equivalent to
    /// [`simulate_parallel`](Self::simulate_parallel) with `threads = 1`
    /// (shard 0 replays the plain `seed` stream).
    ///
    /// Panics if `trials == 0`. 10⁴ trials resolve probabilities to ~1%;
    /// the paper's headline numbers use 5×10⁴–10⁶.
    ///
    /// ```
    /// use pbs_core::ReplicaConfig;
    /// use pbs_wars::{production, TVisibility};
    ///
    /// // Figure 6's LNKD-SSD curve at Cassandra's default N=3, R=W=1.
    /// let cfg = ReplicaConfig::new(3, 1, 1).unwrap();
    /// let tv = TVisibility::simulate(&production::lnkd_ssd_model(cfg), 20_000, 42);
    /// assert!((tv.prob_consistent(0.0) - 0.974).abs() < 0.01); // ≈97.4% at t=0
    /// assert_eq!(tv.t_at_probability(0.999).map(|t| t < 5.0), Some(true));
    /// assert!(tv.read_latency_percentile(99.9) < 2.0);
    /// ```
    pub fn simulate<M: LatencyModel + ?Sized>(model: &M, trials: usize, seed: u64) -> Self {
        Self::simulate_parallel(model, trials, seed, 1)
    }

    /// Run `trials` WARS trials sharded across `threads` threads on the
    /// [`pbs_mc::Runner`]. Deterministic for a fixed `(seed, threads)`
    /// pair: shard `i` uses seed `seed ^ i` and shard summaries merge in
    /// shard order, so repeated runs are bit-identical regardless of
    /// scheduling. Peak memory is O(threads · sketch compression) —
    /// independent of `trials`.
    pub fn simulate_parallel<M: LatencyModel + Sync + ?Sized>(
        model: &M,
        trials: usize,
        seed: u64,
        threads: usize,
    ) -> Self {
        assert!(trials > 0, "need at least one trial");
        assert!(threads > 0, "need at least one thread");
        let cfg = model.config();
        let shard = Runner::new(trials, seed, threads).run(|rng, info| {
            let mut acc = TvShard::default();
            for _ in 0..info.trials {
                model.sample_trial(rng, &mut acc.sample);
                let res = run_trial(cfg, &acc.sample, &mut acc.scratch);
                acc.thresholds.record(res.staleness_threshold);
                acc.read.record(res.read_latency);
                acc.write.record(res.write_latency);
                if res.staleness_threshold <= 0.0 {
                    acc.consistent_at_zero += 1;
                }
            }
            acc.thresholds.seal();
            acc.read.seal();
            acc.write.seal();
            acc
        });
        Self {
            cfg,
            thresholds: shard.thresholds,
            read_latency: shard.read,
            write_latency: shard.write,
            consistent_at_zero: shard.consistent_at_zero,
        }
    }

    /// Fold another run (same configuration) into this one — the
    /// mergeable-accumulator surface for callers that scale trials across
    /// batches, processes, or machines.
    pub fn merge(&mut self, other: TVisibility) {
        assert_eq!(self.cfg, other.cfg, "cannot merge different configurations");
        self.thresholds.merge(other.thresholds);
        self.read_latency.merge(other.read_latency);
        self.write_latency.merge(other.write_latency);
        self.consistent_at_zero += other.consistent_at_zero;
    }

    /// The simulated configuration.
    pub fn config(&self) -> ReplicaConfig {
        self.cfg
    }

    /// Number of trials aggregated.
    pub fn trials(&self) -> usize {
        self.thresholds.count() as usize
    }

    /// `P(consistent)` for a read starting `t` ms after commit
    /// (t-visibility, Definition 3).
    ///
    /// `t = 0` (the paper's "immediate consistency") is **exact** — the
    /// `threshold ≤ 0` atom is counted outside the sketch — and for
    /// `t > 0` the exact atom lower-bounds the sketch CDF, so the curve
    /// stays monotone through the origin.
    pub fn prob_consistent(&self, t: f64) -> f64 {
        let atom = self.consistent_at_zero as f64 / self.trials() as f64;
        if t == 0.0 {
            atom
        } else if t > 0.0 {
            self.thresholds.cdf(t).max(atom)
        } else {
            self.thresholds.cdf(t).min(atom)
        }
    }

    /// Probability of *violating* t-visibility at offset `t` (`p_st`).
    pub fn violation(&self, t: f64) -> f64 {
        1.0 - self.prob_consistent(t)
    }

    /// One-sigma standard error of [`prob_consistent`](Self::prob_consistent)
    /// at `t` (binomial normal approximation) — used to report Monte-Carlo
    /// uncertainty in EXPERIMENTS.md.
    pub fn std_error(&self, t: f64) -> f64 {
        let p = self.prob_consistent(t);
        (p * (1.0 - p) / self.trials() as f64).sqrt()
    }

    /// Smallest `t ≥ 0` such that `P(consistent at t) ≥ p` — e.g.
    /// `t_at_probability(0.999)` is Table 4's "t-visibility for
    /// `p_st = .001`" — as a sketch quantile query (exact at `p = 1`,
    /// rank error ∝ 1/compression elsewhere, tightest at the tails).
    ///
    /// Always `Some` for in-range `p`; the `Option` is kept so call sites
    /// can stay agnostic about future resolution limits.
    pub fn t_at_probability(&self, p: f64) -> Option<f64> {
        assert!((0.0..=1.0).contains(&p), "probability out of range: {p}");
        Some(self.thresholds.quantile(p).max(0.0))
    }

    /// ⟨k,t⟩-staleness violation probability under the paper's conservative
    /// Eq.-5 assumption (all `k` writes committed simultaneously):
    /// `violation(t)^k`. For the direct multi-write Monte Carlo see
    /// [`crate::kt`].
    pub fn kt_violation(&self, t: f64, k: u32) -> f64 {
        self.violation(t).powi(k as i32)
    }

    /// Read-latency percentile (`pct ∈ [0, 100]`).
    pub fn read_latency_percentile(&self, pct: f64) -> f64 {
        self.read_latency.percentile(pct)
    }

    /// Write-latency percentile (`pct ∈ [0, 100]`).
    pub fn write_latency_percentile(&self, pct: f64) -> f64 {
        self.write_latency.percentile(pct)
    }

    /// The streaming summary of per-trial staleness thresholds (for
    /// cross-validation and plotting).
    pub fn thresholds(&self) -> &Summary {
        &self.thresholds
    }

    /// The streaming summary of read operation latencies.
    pub fn read_latencies(&self) -> &Summary {
        &self.read_latency
    }

    /// The streaming summary of write operation latencies.
    pub fn write_latencies(&self) -> &Summary {
        &self.write_latency
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::model::IidModel;
    use pbs_dist::{Constant, Exponential};
    use std::sync::Arc;

    fn cfg(n: u32, r: u32, w: u32) -> ReplicaConfig {
        ReplicaConfig::new(n, r, w).unwrap()
    }

    fn exp_model(c: ReplicaConfig, w_rate: f64, ars_rate: f64) -> IidModel {
        IidModel::w_ars(
            c,
            format!("Exp(w={w_rate},ars={ars_rate})"),
            Arc::new(Exponential::from_rate(w_rate)),
            Arc::new(Exponential::from_rate(ars_rate)),
        )
    }

    #[test]
    fn strict_quorum_always_consistent() {
        for (r, w) in [(2, 2), (1, 3), (3, 1)] {
            let m = exp_model(cfg(3, r, w), 0.1, 0.5);
            let tv = TVisibility::simulate(&m, 5_000, 7);
            assert_eq!(tv.prob_consistent(0.0), 1.0, "R={r} W={w}");
            assert_eq!(tv.t_at_probability(1.0), Some(0.0));
            assert!(tv.thresholds().max() <= 0.0);
        }
    }

    #[test]
    fn partial_quorum_eventually_consistent() {
        let m = exp_model(cfg(3, 1, 1), 0.1, 0.5);
        let tv = TVisibility::simulate(&m, 20_000, 11);
        let p0 = tv.prob_consistent(0.0);
        assert!(p0 < 1.0 && p0 > 0.2, "immediate consistency {p0}");
        // Monotone nondecreasing in t and → 1.
        let mut prev = 0.0;
        for i in 0..40 {
            let p = tv.prob_consistent(i as f64 * 5.0);
            assert!(p >= prev);
            prev = p;
        }
        assert!(tv.prob_consistent(200.0) > 0.999);
    }

    #[test]
    fn t_at_probability_inverts_curve() {
        let m = exp_model(cfg(3, 1, 1), 0.1, 0.5);
        let tv = TVisibility::simulate(&m, 50_000, 13);
        for &p in &[0.5, 0.9, 0.99, 0.999] {
            let t = tv.t_at_probability(p).unwrap();
            // The sketch contract is rank error, tightening toward the
            // tails: the curve at the returned t must sit within half a
            // percentage point of p.
            assert!(
                (tv.prob_consistent(t) - p).abs() < 0.005,
                "p={p}: curve({t}) = {}",
                tv.prob_consistent(t)
            );
        }
    }

    #[test]
    fn deterministic_given_seed() {
        let m = exp_model(cfg(3, 1, 2), 0.2, 0.2);
        let a = TVisibility::simulate(&m, 2_000, 99);
        let b = TVisibility::simulate(&m, 2_000, 99);
        assert_eq!(a.thresholds(), b.thresholds());
        assert_eq!(a.read_latencies(), b.read_latencies());
        for i in 0..=100 {
            let q = i as f64 / 100.0;
            assert_eq!(
                a.thresholds.quantile(q).to_bits(),
                b.thresholds.quantile(q).to_bits(),
                "q={q}"
            );
        }
    }

    #[test]
    fn parallel_matches_distribution() {
        let m = exp_model(cfg(3, 1, 1), 0.1, 0.5);
        let serial = TVisibility::simulate(&m, 40_000, 5);
        let par = TVisibility::simulate_parallel(&m, 40_000, 5, 4);
        assert_eq!(par.trials(), 40_000);
        // Same distribution statistically (not identical samples).
        for &p in &[0.5, 0.9, 0.99] {
            let a = serial.t_at_probability(p).unwrap();
            let b = par.t_at_probability(p).unwrap();
            assert!((a - b).abs() < 2.0 + 0.1 * a.max(b), "p={p}: {a} vs {b}");
        }
    }

    #[test]
    fn merge_combines_runs() {
        let m = exp_model(cfg(3, 1, 1), 0.1, 0.5);
        let mut a = TVisibility::simulate(&m, 20_000, 1);
        let b = TVisibility::simulate(&m, 20_000, 2);
        let p_a = a.prob_consistent(5.0);
        a.merge(b);
        assert_eq!(a.trials(), 40_000);
        assert!((a.prob_consistent(5.0) - p_a).abs() < 0.02);
    }

    #[test]
    fn constant_latency_threshold_exact() {
        // Deterministic delays: w=4, a=0 → commit at 4 for W=1 (all equal).
        // Reads reach replicas at commit + t + r. With w=4, r=1: replica has
        // the write at 4; read arrives at 4 + t + 1 ≥ 4 always → consistent.
        let m = IidModel::w_ars(
            cfg(3, 1, 1),
            "const",
            Arc::new(Constant::new(4.0)),
            Arc::new(Constant::new(1.0)),
        );
        let tv = TVisibility::simulate(&m, 100, 0);
        assert_eq!(tv.prob_consistent(0.0), 1.0);
        assert_eq!(tv.write_latency_percentile(50.0), 5.0);
        assert_eq!(tv.read_latency_percentile(99.0), 2.0);
    }

    #[test]
    fn faster_writes_improve_tvisibility() {
        // §5.3's headline effect: holding A=R=S fixed, slower/longer-tailed
        // writes worsen t-visibility.
        let fast = TVisibility::simulate(&exp_model(cfg(3, 1, 1), 4.0, 1.0), 30_000, 3);
        let slow = TVisibility::simulate(&exp_model(cfg(3, 1, 1), 0.1, 1.0), 30_000, 3);
        assert!(fast.prob_consistent(0.0) > slow.prob_consistent(0.0));
        assert!(
            fast.t_at_probability(0.999).unwrap() < slow.t_at_probability(0.999).unwrap()
        );
    }

    #[test]
    fn kt_violation_exponentiates() {
        let m = exp_model(cfg(3, 1, 1), 0.1, 0.5);
        let tv = TVisibility::simulate(&m, 10_000, 21);
        let v = tv.violation(1.0);
        assert!((tv.kt_violation(1.0, 3) - v.powi(3)).abs() < 1e-12);
    }
}
