//! Direct multi-write ⟨k,t⟩-staleness Monte Carlo (§3.5 / §5.1).
//!
//! Equation 5 bounds ⟨k,t⟩-staleness by pessimistically assuming the last
//! `k` writes all committed simultaneously. This module simulates the write
//! arrival process instead ("extending this formulation to analyze
//! ⟨k,t⟩-staleness given a distribution of write arrival times", §5.1),
//! yielding both the violation probability and the full distribution of
//! version staleness observed by reads.

use crate::model::{LatencyModel, WarsSample};
use crate::trial::TrialScratch;
use rand::rngs::StdRng;
use rand::{Rng, RngCore, SeedableRng};

/// How consecutive writes to the key are spaced.
#[derive(Debug, Clone, Copy)]
pub enum WriteSpacing {
    /// Deterministic inter-write gap in milliseconds.
    Fixed(f64),
    /// Exponential (Poisson-process) gaps with the given mean in ms.
    ExponentialMean(f64),
}

impl WriteSpacing {
    fn sample(&self, rng: &mut dyn RngCore) -> f64 {
        match *self {
            WriteSpacing::Fixed(gap) => {
                assert!(gap >= 0.0);
                gap
            }
            WriteSpacing::ExponentialMean(mean) => {
                assert!(mean > 0.0);
                let u: f64 = rng.gen::<f64>().max(f64::MIN_POSITIVE);
                -u.ln() * mean
            }
        }
    }
}

/// Parameters for a ⟨k,t⟩ Monte Carlo run.
#[derive(Debug, Clone, Copy)]
pub struct KtOptions {
    /// Staleness tolerance in versions (`k ≥ 1`).
    pub k: u32,
    /// Read offset after the newest write's commit, in ms.
    pub t_ms: f64,
    /// Write arrival process.
    pub spacing: WriteSpacing,
    /// Monte-Carlo trials.
    pub trials: usize,
    /// RNG seed.
    pub seed: u64,
}

/// Result of a ⟨k,t⟩ Monte Carlo run.
#[derive(Debug, Clone)]
pub struct KtResult {
    /// Probability that a read misses *all* of the last `k` versions —
    /// the ⟨k,t⟩-staleness violation probability.
    pub violation: f64,
    /// `versions_behind[j]` = fraction of reads returning a value exactly
    /// `j` versions behind the newest committed write, for `j < k`;
    /// `versions_behind[k]` aggregates "`k` or more versions behind".
    pub versions_behind: Vec<f64>,
    /// Trials run.
    pub trials: usize,
}

impl KtResult {
    /// Expected versions-behind, counting the `≥ k` bucket at `k` (a lower
    /// bound on the true expectation).
    pub fn mean_versions_behind(&self) -> f64 {
        self.versions_behind.iter().enumerate().map(|(j, p)| j as f64 * p).sum()
    }
}

/// Run the direct ⟨k,t⟩ Monte Carlo.
///
/// Per trial: `k` writes are issued with gaps drawn from `spacing`; each
/// write's per-replica `W`/`A` delays come from a fresh model trial. A read
/// is issued `t` after the *newest* write commits, using the read legs
/// (`R`/`S`) of the newest sample so any per-operation structure (e.g. WAN
/// locality) is preserved. The read returns the newest version visible on
/// any of its first `R` responders.
pub fn kt_violation_direct<M: LatencyModel + ?Sized>(model: &M, opts: KtOptions) -> KtResult {
    assert!(opts.k >= 1, "k must be at least 1");
    assert!(opts.trials > 0);
    assert!(opts.t_ms >= 0.0);
    let cfg = model.config();
    let n = cfg.n() as usize;
    let r_quorum = cfg.r() as usize;
    let w_quorum = cfg.w() as usize;
    let k = opts.k as usize;

    let mut rng = StdRng::seed_from_u64(opts.seed);
    let mut scratch = TrialScratch::default();
    let _ = &mut scratch; // reserved for future shared-trial reuse
    let mut samples: Vec<WarsSample> = (0..k).map(|_| WarsSample::default()).collect();
    let mut wa: Vec<f64> = Vec::with_capacity(n);
    let mut order: Vec<usize> = Vec::with_capacity(n);
    let mut behind_counts = vec![0usize; k + 1];

    for _ in 0..opts.trials {
        // Write start times, oldest (= index 0) to newest (= index k−1).
        let mut starts = vec![0.0f64; k];
        for j in 1..k {
            starts[j] = starts[j - 1] + opts.spacing.sample(&mut rng);
        }
        for s in samples.iter_mut() {
            model.sample_trial(&mut rng, s);
        }
        // Commit time of the newest write.
        let newest = k - 1;
        wa.clear();
        wa.extend(samples[newest].w.iter().zip(&samples[newest].a).map(|(w, a)| w + a));
        wa.sort_by(|x, y| x.partial_cmp(y).expect("no NaN"));
        let newest_commit = starts[newest] + wa[w_quorum - 1];
        let read_issue = newest_commit + opts.t_ms;

        // Read responders ordered by response arrival (legs from the newest
        // sample).
        let (r, s) = (&samples[newest].r, &samples[newest].s);
        order.clear();
        order.extend(0..n);
        order.sort_by(|&i, &j| {
            (r[i] + s[i]).partial_cmp(&(r[j] + s[j])).expect("no NaN")
        });

        // Newest version visible on any of the first R responders.
        let mut best: Option<usize> = None; // index into writes; larger = newer
        for &i in &order[..r_quorum] {
            let read_arrival = read_issue + r[i];
            for j in (0..k).rev() {
                if best.is_some_and(|b| j <= b) {
                    break;
                }
                if starts[j] + samples[j].w[i] <= read_arrival {
                    best = Some(j);
                    break;
                }
            }
        }
        let behind = match best {
            Some(j) => newest - j,
            None => k, // missed all k sampled versions
        };
        behind_counts[behind] += 1;
    }

    let trials = opts.trials as f64;
    KtResult {
        violation: behind_counts[k] as f64 / trials,
        versions_behind: behind_counts.iter().map(|&c| c as f64 / trials).collect(),
        trials: opts.trials,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::model::IidModel;
    use crate::tvisibility::TVisibility;
    use pbs_core::ReplicaConfig;
    use pbs_dist::Exponential;
    use std::sync::Arc;

    fn model(n: u32, r: u32, w: u32) -> IidModel {
        IidModel::w_ars(
            ReplicaConfig::new(n, r, w).unwrap(),
            "exp",
            Arc::new(Exponential::from_rate(0.1)),
            Arc::new(Exponential::from_rate(0.5)),
        )
    }

    #[test]
    fn k1_matches_single_write_tvisibility() {
        // With k=1 the direct simulation reduces to ordinary t-visibility.
        let m = model(3, 1, 1);
        let t = 5.0;
        let direct = kt_violation_direct(
            &m,
            KtOptions {
                k: 1,
                t_ms: t,
                spacing: WriteSpacing::Fixed(0.0),
                trials: 60_000,
                seed: 4,
            },
        );
        let tv = TVisibility::simulate(&m, 60_000, 4);
        let reference = tv.violation(t);
        assert!(
            (direct.violation - reference).abs() < 0.01,
            "direct {} vs tvisibility {}",
            direct.violation,
            reference
        );
    }

    #[test]
    fn violation_decreases_with_k() {
        let m = model(3, 1, 1);
        let mut prev = 1.0;
        for k in [1u32, 2, 4] {
            let res = kt_violation_direct(
                &m,
                KtOptions {
                    k,
                    t_ms: 0.0,
                    spacing: WriteSpacing::Fixed(20.0),
                    trials: 30_000,
                    seed: 9,
                },
            );
            assert!(res.violation <= prev + 0.01, "k={k}");
            prev = res.violation;
        }
    }

    #[test]
    fn wide_spacing_beats_eq5_bound() {
        // With widely spaced writes the older versions have had time to
        // propagate, so the direct violation is at most the conservative
        // Eq.-5 bound (violation(t)^k with simultaneous commits).
        let m = model(3, 1, 1);
        let t = 1.0;
        let k = 3u32;
        let tv = TVisibility::simulate(&m, 60_000, 10);
        let bound = tv.kt_violation(t, k);
        let direct = kt_violation_direct(
            &m,
            KtOptions {
                k,
                t_ms: t,
                spacing: WriteSpacing::Fixed(50.0),
                trials: 60_000,
                seed: 10,
            },
        );
        assert!(
            direct.violation <= bound + 0.01,
            "direct {} should not exceed bound {}",
            direct.violation,
            bound
        );
    }

    #[test]
    fn versions_behind_is_distribution() {
        let m = model(3, 1, 1);
        let res = kt_violation_direct(
            &m,
            KtOptions {
                k: 4,
                t_ms: 0.0,
                spacing: WriteSpacing::ExponentialMean(10.0),
                trials: 20_000,
                seed: 2,
            },
        );
        let sum: f64 = res.versions_behind.iter().sum();
        assert!((sum - 1.0).abs() < 1e-9);
        assert_eq!(res.versions_behind.len(), 5);
        assert!(res.mean_versions_behind() >= 0.0);
        assert!((res.versions_behind[4] - res.violation).abs() < 1e-12);
    }

    #[test]
    fn strict_quorum_never_violates() {
        let m = model(3, 2, 2);
        let res = kt_violation_direct(
            &m,
            KtOptions {
                k: 1,
                t_ms: 0.0,
                spacing: WriteSpacing::Fixed(1.0),
                trials: 5_000,
                seed: 0,
            },
        );
        assert_eq!(res.violation, 0.0);
        assert_eq!(res.versions_behind[0], 1.0);
    }
}
