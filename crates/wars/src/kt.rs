//! Direct multi-write ⟨k,t⟩-staleness Monte Carlo (§3.5 / §5.1).
//!
//! Equation 5 bounds ⟨k,t⟩-staleness by pessimistically assuming the last
//! `k` writes all committed simultaneously. This module simulates the write
//! arrival process instead ("extending this formulation to analyze
//! ⟨k,t⟩-staleness given a distribution of write arrival times", §5.1),
//! yielding both the violation probability and the full distribution of
//! version staleness observed by reads. Trials run on the deterministic
//! sharded [`pbs_mc::Runner`].

use crate::model::{LatencyModel, WarsSample};
use pbs_mc::Runner;
use rand::{Rng, RngCore};

/// How consecutive writes to the key are spaced.
#[derive(Debug, Clone, Copy)]
pub enum WriteSpacing {
    /// Deterministic inter-write gap in milliseconds.
    Fixed(f64),
    /// Exponential (Poisson-process) gaps with the given mean in ms.
    ExponentialMean(f64),
}

impl WriteSpacing {
    fn sample(&self, rng: &mut dyn RngCore) -> f64 {
        match *self {
            WriteSpacing::Fixed(gap) => {
                assert!(gap >= 0.0);
                gap
            }
            WriteSpacing::ExponentialMean(mean) => {
                assert!(mean > 0.0);
                let u: f64 = rng.gen::<f64>().max(f64::MIN_POSITIVE);
                -u.ln() * mean
            }
        }
    }
}

/// Parameters for a ⟨k,t⟩ Monte Carlo run.
#[derive(Debug, Clone, Copy)]
pub struct KtOptions {
    /// Staleness tolerance in versions (`k ≥ 1`).
    pub k: u32,
    /// Read offset after the newest write's commit, in ms.
    pub t_ms: f64,
    /// Write arrival process.
    pub spacing: WriteSpacing,
    /// Monte-Carlo trials.
    pub trials: usize,
    /// RNG seed.
    pub seed: u64,
    /// Shards for the deterministic runner (1 = single-threaded; results
    /// are bit-reproducible for a fixed `(seed, threads)` pair).
    pub threads: usize,
}

/// Result of a ⟨k,t⟩ Monte Carlo run.
#[derive(Debug, Clone)]
pub struct KtResult {
    /// Probability that a read misses *all* of the last `k` versions —
    /// the ⟨k,t⟩-staleness violation probability.
    pub violation: f64,
    /// `versions_behind[j]` = fraction of reads returning a value exactly
    /// `j` versions behind the newest committed write, for `j < k`;
    /// `versions_behind[k]` aggregates "`k` or more versions behind".
    pub versions_behind: Vec<f64>,
    /// Trials run.
    pub trials: usize,
}

impl KtResult {
    /// Expected versions-behind, counting the `≥ k` bucket at `k` (a lower
    /// bound on the true expectation).
    pub fn mean_versions_behind(&self) -> f64 {
        self.versions_behind.iter().enumerate().map(|(j, p)| j as f64 * p).sum()
    }
}

/// Per-shard reusable state for the ⟨k,t⟩ hot loop — allocated once per
/// shard, never per trial.
struct KtScratch {
    samples: Vec<WarsSample>,
    starts: Vec<f64>,
    wa: Vec<f64>,
    order: Vec<usize>,
}

impl KtScratch {
    fn new(k: usize, n: usize) -> Self {
        Self {
            samples: (0..k).map(|_| WarsSample::default()).collect(),
            starts: vec![0.0; k],
            wa: Vec::with_capacity(n),
            order: Vec::with_capacity(n),
        }
    }
}

/// Run the direct ⟨k,t⟩ Monte Carlo.
///
/// Per trial: `k` writes are issued with gaps drawn from `spacing`; each
/// write's per-replica `W`/`A` delays come from a fresh model trial. A read
/// is issued `t` after the *newest* write commits, using the read legs
/// (`R`/`S`) of the newest sample so any per-operation structure (e.g. WAN
/// locality) is preserved. The read returns the newest version visible on
/// any of its first `R` responders.
pub fn kt_violation_direct<M: LatencyModel + ?Sized>(model: &M, opts: KtOptions) -> KtResult {
    assert!(opts.k >= 1, "k must be at least 1");
    assert!(opts.trials > 0);
    assert!(opts.threads > 0);
    assert!(opts.t_ms >= 0.0);
    let cfg = model.config();
    let n = cfg.n() as usize;
    let r_quorum = cfg.r() as usize;
    let w_quorum = cfg.w() as usize;
    let k = opts.k as usize;

    let behind_counts: Vec<u64> =
        Runner::new(opts.trials, opts.seed, opts.threads).run(|rng, info| {
            let mut counts = vec![0u64; k + 1];
            let mut scratch = KtScratch::new(k, n);
            for _ in 0..info.trials {
                // Write start times, oldest (= index 0) to newest (= k−1).
                scratch.starts[0] = 0.0;
                for j in 1..k {
                    scratch.starts[j] = scratch.starts[j - 1] + opts.spacing.sample(rng);
                }
                for s in scratch.samples.iter_mut() {
                    model.sample_trial(rng, s);
                }
                // Commit time of the newest write.
                let newest = k - 1;
                scratch.wa.clear();
                scratch.wa.extend(
                    scratch.samples[newest].w.iter().zip(&scratch.samples[newest].a).map(|(w, a)| w + a),
                );
                scratch.wa.sort_unstable_by(|x, y| x.partial_cmp(y).expect("no NaN"));
                let newest_commit = scratch.starts[newest] + scratch.wa[w_quorum - 1];
                let read_issue = newest_commit + opts.t_ms;

                // Read responders ordered by response arrival (legs from
                // the newest sample).
                let (r, s) = (&scratch.samples[newest].r, &scratch.samples[newest].s);
                scratch.order.clear();
                scratch.order.extend(0..n);
                scratch.order.sort_unstable_by(|&i, &j| {
                    (r[i] + s[i]).partial_cmp(&(r[j] + s[j])).expect("no NaN")
                });

                // Newest version visible on any of the first R responders.
                let mut best: Option<usize> = None; // write index; larger = newer
                for &i in &scratch.order[..r_quorum] {
                    let read_arrival = read_issue + r[i];
                    for j in (0..k).rev() {
                        if best.is_some_and(|b| j <= b) {
                            break;
                        }
                        if scratch.starts[j] + scratch.samples[j].w[i] <= read_arrival {
                            best = Some(j);
                            break;
                        }
                    }
                }
                let behind = match best {
                    Some(j) => newest - j,
                    None => k, // missed all k sampled versions
                };
                counts[behind] += 1;
            }
            counts
        });

    let trials = opts.trials as f64;
    KtResult {
        violation: behind_counts[k] as f64 / trials,
        versions_behind: behind_counts.iter().map(|&c| c as f64 / trials).collect(),
        trials: opts.trials,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::model::IidModel;
    use crate::tvisibility::TVisibility;
    use pbs_core::ReplicaConfig;
    use pbs_dist::Exponential;
    use std::sync::Arc;

    fn model(n: u32, r: u32, w: u32) -> IidModel {
        IidModel::w_ars(
            ReplicaConfig::new(n, r, w).unwrap(),
            "exp",
            Arc::new(Exponential::from_rate(0.1)),
            Arc::new(Exponential::from_rate(0.5)),
        )
    }

    fn opts(k: u32, t_ms: f64, spacing: WriteSpacing, trials: usize, seed: u64) -> KtOptions {
        KtOptions { k, t_ms, spacing, trials, seed, threads: 1 }
    }

    #[test]
    fn k1_matches_single_write_tvisibility() {
        // With k=1 the direct simulation reduces to ordinary t-visibility.
        let m = model(3, 1, 1);
        let t = 5.0;
        let direct =
            kt_violation_direct(&m, opts(1, t, WriteSpacing::Fixed(0.0), 60_000, 4));
        let tv = TVisibility::simulate(&m, 60_000, 4);
        let reference = tv.violation(t);
        assert!(
            (direct.violation - reference).abs() < 0.01,
            "direct {} vs tvisibility {}",
            direct.violation,
            reference
        );
    }

    #[test]
    fn violation_decreases_with_k() {
        let m = model(3, 1, 1);
        let mut prev = 1.0;
        for k in [1u32, 2, 4] {
            let res =
                kt_violation_direct(&m, opts(k, 0.0, WriteSpacing::Fixed(20.0), 30_000, 9));
            assert!(res.violation <= prev + 0.01, "k={k}");
            prev = res.violation;
        }
    }

    #[test]
    fn wide_spacing_beats_eq5_bound() {
        // With widely spaced writes the older versions have had time to
        // propagate, so the direct violation is at most the conservative
        // Eq.-5 bound (violation(t)^k with simultaneous commits).
        let m = model(3, 1, 1);
        let t = 1.0;
        let k = 3u32;
        let tv = TVisibility::simulate(&m, 60_000, 10);
        let bound = tv.kt_violation(t, k);
        let direct =
            kt_violation_direct(&m, opts(k, t, WriteSpacing::Fixed(50.0), 60_000, 10));
        assert!(
            direct.violation <= bound + 0.01,
            "direct {} should not exceed bound {}",
            direct.violation,
            bound
        );
    }

    #[test]
    fn versions_behind_is_distribution() {
        let m = model(3, 1, 1);
        let res = kt_violation_direct(
            &m,
            opts(4, 0.0, WriteSpacing::ExponentialMean(10.0), 20_000, 2),
        );
        let sum: f64 = res.versions_behind.iter().sum();
        assert!((sum - 1.0).abs() < 1e-9);
        assert_eq!(res.versions_behind.len(), 5);
        assert!(res.mean_versions_behind() >= 0.0);
        assert!((res.versions_behind[4] - res.violation).abs() < 1e-12);
    }

    #[test]
    fn strict_quorum_never_violates() {
        let m = model(3, 2, 2);
        let res = kt_violation_direct(&m, opts(1, 0.0, WriteSpacing::Fixed(1.0), 5_000, 0));
        assert_eq!(res.violation, 0.0);
        assert_eq!(res.versions_behind[0], 1.0);
    }

    #[test]
    fn sharded_run_is_deterministic_and_statistically_equivalent() {
        let m = model(3, 1, 1);
        let mk = |threads| {
            kt_violation_direct(
                &m,
                KtOptions {
                    k: 2,
                    t_ms: 1.0,
                    spacing: WriteSpacing::Fixed(15.0),
                    trials: 40_000,
                    seed: 6,
                    threads,
                },
            )
        };
        let (a, b) = (mk(4), mk(4));
        assert_eq!(a.versions_behind, b.versions_behind, "bit-reproducible");
        let single = mk(1);
        assert!(
            (a.violation - single.violation).abs() < 0.01,
            "threads=4 {} vs threads=1 {}",
            a.violation,
            single.violation
        );
    }
}
