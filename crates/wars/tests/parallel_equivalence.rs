//! Cross-thread-count equivalence of the deterministic runner (the
//! `pbs-mc` contract, exercised through the WARS engine):
//!
//! 1. identical `(seed, threads)` pairs are **bit-reproducible**;
//! 2. different thread counts at the same total trial budget agree within
//!    Monte-Carlo tolerance (different shard RNG streams, same
//!    distribution).

use pbs_core::ReplicaConfig;
use pbs_wars::production::{exponential_model, lnkd_disk_model};
use pbs_wars::TVisibility;

fn cfg(n: u32, r: u32, w: u32) -> ReplicaConfig {
    ReplicaConfig::new(n, r, w).unwrap()
}

#[test]
fn identical_seed_threads_is_bit_reproducible() {
    let model = exponential_model(cfg(3, 1, 1), 0.1, 0.5);
    for threads in [1usize, 2, 4] {
        let a = TVisibility::simulate_parallel(&model, 30_000, 17, threads);
        let b = TVisibility::simulate_parallel(&model, 30_000, 17, threads);
        assert_eq!(a.trials(), 30_000);
        assert_eq!(a.thresholds(), b.thresholds(), "threads={threads}");
        assert_eq!(a.read_latencies(), b.read_latencies(), "threads={threads}");
        assert_eq!(a.write_latencies(), b.write_latencies(), "threads={threads}");
        // Query-level bit-equality over the full quantile and CDF grids.
        for i in 0..=1000 {
            let q = i as f64 / 1000.0;
            assert_eq!(
                a.t_at_probability(q).unwrap().to_bits(),
                b.t_at_probability(q).unwrap().to_bits(),
                "threads={threads}, q={q}"
            );
        }
        for t in 0..200 {
            let t = t as f64 * 0.5;
            assert_eq!(
                a.prob_consistent(t).to_bits(),
                b.prob_consistent(t).to_bits(),
                "threads={threads}, t={t}"
            );
        }
    }
}

#[test]
fn thread_counts_statistically_equivalent() {
    // Same total trials, threads=1 vs threads=4: estimates must agree
    // within Monte-Carlo tolerance. 3σ on p ≈ 0.5 at 200k trials is
    // ~0.0034; allow 0.01 across the full curve.
    let trials = 200_000;
    for model in [
        exponential_model(cfg(3, 1, 1), 0.1, 0.5),
        exponential_model(cfg(3, 1, 2), 0.05, 1.0),
    ] {
        let single = TVisibility::simulate_parallel(&model, trials, 23, 1);
        let sharded = TVisibility::simulate_parallel(&model, trials, 23, 4);
        assert_eq!(single.trials(), sharded.trials());
        for t in [0.0, 1.0, 2.0, 5.0, 10.0, 20.0, 50.0] {
            let (a, b) = (single.prob_consistent(t), sharded.prob_consistent(t));
            assert!((a - b).abs() < 0.01, "t={t}: threads=1 {a} vs threads=4 {b}");
        }
        // Inverse queries: mid-quantiles within value tolerance.
        for p in [0.5, 0.9, 0.99] {
            let a = single.t_at_probability(p).unwrap();
            let b = sharded.t_at_probability(p).unwrap();
            assert!(
                (a - b).abs() < 0.5 + 0.05 * a.max(b),
                "p={p}: threads=1 {a}ms vs threads=4 {b}ms"
            );
        }
        // Latency channels too.
        for pct in [50.0, 99.0] {
            let a = single.read_latency_percentile(pct);
            let b = sharded.read_latency_percentile(pct);
            assert!((a - b).abs() < 0.05 * a.max(1.0), "read p{pct}: {a} vs {b}");
        }
    }
}

#[test]
fn production_fit_parallel_equivalence() {
    // The heavy-tailed LNKD-DISK write mixture is the adversarial case for
    // sharded sketches (tail mass split across shards).
    let model = lnkd_disk_model(cfg(3, 1, 1));
    let single = TVisibility::simulate_parallel(&model, 150_000, 31, 1);
    let sharded = TVisibility::simulate_parallel(&model, 150_000, 31, 4);
    for t in [0.0, 5.0, 20.0, 60.0] {
        let (a, b) = (single.prob_consistent(t), sharded.prob_consistent(t));
        assert!((a - b).abs() < 0.01, "t={t}: {a} vs {b}");
    }
    let a = single.t_at_probability(0.999).unwrap();
    let b = sharded.t_at_probability(0.999).unwrap();
    assert!((a - b).abs() < 0.15 * a.max(b) + 1.0, "t@99.9%: {a} vs {b}");
}
