//! Property tests for the WARS Monte-Carlo engine.

use pbs_core::{staleness, ReplicaConfig};
use pbs_dist::Exponential;
use pbs_wars::model::WithReadDelay;
use pbs_wars::production::exponential_model;
use pbs_wars::{IidModel, LatencyModel, TVisibility, WarsSample};
use proptest::prelude::*;
use rand::rngs::StdRng;
use rand::SeedableRng;
use std::sync::Arc;

fn any_config() -> impl Strategy<Value = ReplicaConfig> {
    (1u32..=8).prop_flat_map(|n| {
        (Just(n), 1u32..=n, 1u32..=n)
            .prop_map(|(n, r, w)| ReplicaConfig::new(n, r, w).expect("valid"))
    })
}

proptest! {
    #![proptest_config(ProptestConfig { cases: 24, ..ProptestConfig::default() })]

    /// Thresholds are finite; strict quorums never produce positive ones.
    #[test]
    fn thresholds_well_formed(cfg in any_config(), w_rate in 0.02f64..4.0, ars_rate in 0.05f64..4.0) {
        let model = exponential_model(cfg, w_rate, ars_rate);
        let tv = TVisibility::simulate(&model, 2_000, 3);
        let t = tv.thresholds();
        prop_assert!(t.min().is_finite() && t.max().is_finite());
        prop_assert_eq!(t.count(), 2_000);
        if cfg.is_strict() {
            prop_assert!(t.max() <= 1e-12, "strict quorum threshold {} > 0", t.max());
            prop_assert_eq!(tv.prob_consistent(0.0), 1.0);
        }
    }

    /// Read/write latency percentiles are monotone in the percentile and in
    /// the quorum size.
    #[test]
    fn latency_percentiles_monotone(seed in 0u64..500) {
        let n = 5u32;
        let mut prev_read = 0.0;
        for r in 1..=n {
            let cfg = ReplicaConfig::new(n, r, 1).unwrap();
            let tv = TVisibility::simulate(&exponential_model(cfg, 0.2, 0.5), 4_000, seed);
            let p50 = tv.read_latency_percentile(50.0);
            let p99 = tv.read_latency_percentile(99.0);
            prop_assert!(p99 >= p50);
            prop_assert!(p50 >= prev_read - 1e-9, "R={r}: bigger quorums wait longer");
            prev_read = p50;
        }
    }

    /// Violation at t is nonincreasing in t and bounded by the frozen
    /// closed form.
    #[test]
    fn violation_bounded_and_monotone(cfg in any_config(), seed in 0u64..500) {
        let model = exponential_model(cfg, 0.1, 0.5);
        let tv = TVisibility::simulate(&model, 4_000, seed);
        let frozen = staleness::non_intersection_probability(cfg);
        let mut prev = 1.0;
        for i in 0..10 {
            let v = tv.violation(i as f64 * 5.0);
            prop_assert!(v <= prev + 1e-12);
            prop_assert!(v <= frozen + 0.05, "v={v} frozen={frozen}");
            prev = v;
        }
    }

    /// Delaying reads (§5.3) only improves consistency, never hurts, and
    /// shifts read latency by exactly the delay.
    #[test]
    fn read_delay_trades_latency_for_consistency(delay in 0.0f64..20.0, seed in 0u64..200) {
        let cfg = ReplicaConfig::new(3, 1, 1).unwrap();
        let base = exponential_model(cfg, 0.1, 0.5);
        let tv_base = TVisibility::simulate(&base, 20_000, seed);
        let delayed = WithReadDelay::new(exponential_model(cfg, 0.1, 0.5), delay);
        let tv_delayed = TVisibility::simulate(&delayed, 20_000, seed);
        // Same seed → same underlying randomness → exact comparison of the
        // threshold distribution is possible statistically.
        prop_assert!(
            tv_delayed.prob_consistent(0.0) >= tv_base.prob_consistent(0.0) - 0.02,
            "delaying reads must not reduce consistency"
        );
        let shift = tv_delayed.read_latency_percentile(50.0) - tv_base.read_latency_percentile(50.0);
        prop_assert!((shift - delay).abs() < 0.5, "median read shifted by {shift}, expected {delay}");
    }

    /// Samples honour the configured replica count for every model shape.
    #[test]
    fn sample_vectors_sized_to_n(cfg in any_config(), seed in 0u64..200) {
        let d = Arc::new(Exponential::from_rate(1.0));
        let model = IidModel::new(cfg, "x", d.clone(), d.clone(), d.clone(), d);
        let mut rng = StdRng::seed_from_u64(seed);
        let mut s = WarsSample::default();
        model.sample_trial(&mut rng, &mut s);
        let n = cfg.n() as usize;
        prop_assert_eq!(s.w.len(), n);
        prop_assert_eq!(s.a.len(), n);
        prop_assert_eq!(s.r.len(), n);
        prop_assert_eq!(s.s.len(), n);
        prop_assert!(s.w.iter().all(|&x| x >= 0.0));
    }
}

/// The read-delay knob reproduces §5.3's suggestion quantitatively: a
/// modest delay recovers most of the consistency gap of a heavy write tail.
#[test]
fn read_delay_closes_the_gap() {
    let cfg = ReplicaConfig::new(3, 1, 1).unwrap();
    let base = exponential_model(cfg, 0.05, 1.0); // 20ms mean writes
    let tv = TVisibility::simulate(&base, 60_000, 9);
    let delayed = WithReadDelay::new(exponential_model(cfg, 0.05, 1.0), 40.0);
    let tv_delayed = TVisibility::simulate(&delayed, 60_000, 9);
    assert!(tv.prob_consistent(0.0) < 0.6);
    assert!(tv_delayed.prob_consistent(0.0) > 0.85);
    assert_eq!(tv_delayed.trials(), 60_000);
}
