//! Criterion: latency-distribution sampling and quantile throughput.

use criterion::{black_box, criterion_group, criterion_main, Criterion, Throughput};
use pbs_dist::production;
use pbs_dist::{Empirical, Exponential, LatencyDistribution, Pareto};
use rand::rngs::StdRng;
use rand::SeedableRng;

fn bench_dists(c: &mut Criterion) {
    const SAMPLES: usize = 100_000;
    let mut group = c.benchmark_group("dist_sampling");
    group.throughput(Throughput::Elements(SAMPLES as u64));

    let exp = Exponential::from_rate(0.1);
    group.bench_function("exponential", |b| {
        let mut rng = StdRng::seed_from_u64(1);
        b.iter(|| {
            let mut acc = 0.0;
            for _ in 0..SAMPLES {
                acc += exp.sample(&mut rng);
            }
            acc
        })
    });

    let pareto = Pareto::new(1.05, 1.51);
    group.bench_function("pareto", |b| {
        let mut rng = StdRng::seed_from_u64(2);
        b.iter(|| {
            let mut acc = 0.0;
            for _ in 0..SAMPLES {
                acc += pareto.sample(&mut rng);
            }
            acc
        })
    });

    let mixture = production::lnkd_disk_write();
    group.bench_function("lnkd_disk_mixture", |b| {
        let mut rng = StdRng::seed_from_u64(3);
        b.iter(|| {
            let mut acc = 0.0;
            for _ in 0..SAMPLES {
                acc += mixture.sample(&mut rng);
            }
            acc
        })
    });

    let empirical = {
        let mut rng = StdRng::seed_from_u64(4);
        Empirical::from_samples((0..100_000).map(|_| mixture.sample(&mut rng)).collect())
    };
    group.bench_function("empirical_bootstrap", |b| {
        let mut rng = StdRng::seed_from_u64(5);
        b.iter(|| {
            let mut acc = 0.0;
            for _ in 0..SAMPLES {
                acc += empirical.sample(&mut rng);
            }
            acc
        })
    });
    group.finish();

    let mut q = c.benchmark_group("dist_quantile");
    q.bench_function("mixture_numeric_quantile", |b| {
        b.iter(|| mixture.quantile(black_box(0.999)))
    });
    q.bench_function("pareto_analytic_quantile", |b| {
        b.iter(|| pareto.quantile(black_box(0.999)))
    });
    q.finish();
}

criterion_group!(benches, bench_dists);
criterion_main!(benches);
