//! Criterion: the open-loop concurrency engine — sustained ops/sec with
//! thousands of in-sim client actors, plus a memory-boundedness probe.
//!
//! CI pipes this through the criterion shim's `BENCH_JSON` hook into
//! `BENCH_5.json`. The peak event-queue and in-flight figures from a
//! 10k-client run (the peak-RSS story: memory is O(clients + in-flight),
//! never O(workload length)) are published as dedicated `metrics` entries
//! via [`criterion::record_metric`] — they are facts, not timings.

use criterion::{criterion_group, criterion_main, Criterion, Throughput};
use pbs_core::ReplicaConfig;
use pbs_dist::Exponential;
use pbs_kvs::{
    run_open_loop, ClientOptions, ClusterOptions, NetworkModel, OpenLoopOptions, OpenLoopReport,
};
use pbs_workload::{OpMix, OpSource, OpStream, Poisson, UniformKeys};
use std::sync::Arc;

fn net() -> NetworkModel {
    NetworkModel::w_ars(
        Arc::new(Exponential::from_rate(0.1)),
        Arc::new(Exponential::from_rate(0.5)),
    )
}

fn run(clients: usize, total_rate_per_sec: f64, duration_ms: f64, seed: u64) -> OpenLoopReport {
    let cfg = ReplicaConfig::new(3, 1, 1).unwrap();
    let mut opts = ClusterOptions::validation(cfg, seed);
    opts.op_timeout_ms = 2_000.0;
    let engine = OpenLoopOptions::new(duration_ms, 500.0, opts.op_timeout_ms);
    let per_client = total_rate_per_sec / clients as f64;
    run_open_loop(
        opts,
        &net(),
        &engine,
        clients,
        ClientOptions { op_timeout_ms: 2_000.0, ..ClientOptions::default() },
        |_| -> Box<dyn OpSource> {
            Box::new(OpStream::new(
                Poisson::per_second(per_client),
                UniformKeys::new(64),
                OpMix::linkedin(),
                1,
            ))
        },
        |_| {},
    )
}

fn bench_open_loop(c: &mut Criterion) {
    let mut group = c.benchmark_group("open_loop");

    // Sustained simulated throughput: 5k ops/s over 64 clients for 2
    // simulated seconds = 10k ops per iteration.
    const OPS: u64 = 10_000;
    group.throughput(Throughput::Elements(OPS));
    group.bench_function("64_clients_10k_ops", |b| {
        b.iter(|| run(64, 5_000.0, 2_000.0, 7))
    });
    group.finish();

    // Memory-boundedness witness at 10k concurrent clients (run once; the
    // figures land in BENCH_5.json's `metrics` array).
    let wide = run(10_000, 10_000.0, 1_000.0, 11);
    assert!(wide.issued > 5_000, "10k clients should issue ~10k ops");
    criterion::record_metric("open_loop_10k_clients_issued", wide.issued as f64);
    criterion::record_metric(
        "open_loop_10k_clients_peak_event_queue",
        wide.peak_pending_events as f64,
    );
    criterion::record_metric("open_loop_10k_clients_peak_in_flight", wide.peak_in_flight as f64);
    println!(
        "open_loop 10k-client probe: issued {}, peak event queue {}, peak in-flight {}",
        wide.issued, wide.peak_pending_events, wide.peak_in_flight
    );
}

criterion_group!(benches, bench_open_loop);
criterion_main!(benches);
