//! Criterion: the open-loop concurrency engine — sustained ops/sec with
//! thousands of in-sim client actors, plus a memory-boundedness probe.
//!
//! CI pipes this through the criterion shim's `BENCH_JSON` hook into
//! `BENCH_4.json`. The `heap_note` label encodes the peak event-heap and
//! in-flight figures from a 10k-client run (the peak-RSS story: memory is
//! O(clients + in-flight), never O(workload length) — the old `run_trace`
//! path pre-injected the whole trace).

use criterion::{criterion_group, criterion_main, Criterion, Throughput};
use pbs_core::ReplicaConfig;
use pbs_dist::Exponential;
use pbs_kvs::{
    run_open_loop, ClientOptions, ClusterOptions, NetworkModel, OpenLoopOptions, OpenLoopReport,
};
use pbs_workload::{OpMix, OpSource, OpStream, Poisson, UniformKeys};
use std::sync::Arc;

fn net() -> NetworkModel {
    NetworkModel::w_ars(
        Arc::new(Exponential::from_rate(0.1)),
        Arc::new(Exponential::from_rate(0.5)),
    )
}

fn run(clients: usize, total_rate_per_sec: f64, duration_ms: f64, seed: u64) -> OpenLoopReport {
    let cfg = ReplicaConfig::new(3, 1, 1).unwrap();
    let mut opts = ClusterOptions::validation(cfg, seed);
    opts.op_timeout_ms = 2_000.0;
    let engine = OpenLoopOptions::new(duration_ms, 500.0, opts.op_timeout_ms);
    let per_client = total_rate_per_sec / clients as f64;
    run_open_loop(
        opts,
        &net(),
        &engine,
        clients,
        ClientOptions { op_timeout_ms: 2_000.0, ..ClientOptions::default() },
        |_| -> Box<dyn OpSource> {
            Box::new(OpStream::new(
                Poisson::per_second(per_client),
                UniformKeys::new(64),
                OpMix::linkedin(),
                1,
            ))
        },
        |_| {},
    )
}

fn bench_open_loop(c: &mut Criterion) {
    let mut group = c.benchmark_group("open_loop");

    // Sustained simulated throughput: 5k ops/s over 64 clients for 2
    // simulated seconds = 10k ops per iteration.
    const OPS: u64 = 10_000;
    group.throughput(Throughput::Elements(OPS));
    group.bench_function("64_clients_10k_ops", |b| {
        b.iter(|| run(64, 5_000.0, 2_000.0, 7))
    });
    group.finish();

    // Memory-boundedness witness at 10k concurrent clients (run once; the
    // figures ride the label into BENCH_4.json).
    let wide = run(10_000, 10_000.0, 1_000.0, 11);
    assert!(wide.issued > 5_000, "10k clients should issue ~10k ops");
    let label = format!(
        "heap_note_10k_clients_issued_{}_peak_heap_{}_peak_inflight_{}",
        wide.issued, wide.peak_pending_events, wide.peak_in_flight
    );
    let mut group = c.benchmark_group("open_loop");
    group.throughput(Throughput::Elements(wide.issued));
    group.bench_function(label, |b| b.iter(|| criterion::black_box(wide.issued)));
    group.finish();
}

criterion_group!(benches, bench_open_loop);
criterion_main!(benches);
