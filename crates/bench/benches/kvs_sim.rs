//! Criterion: simulated Dynamo-style store throughput (operations per
//! second through the discrete-event kernel).

use criterion::{criterion_group, criterion_main, Criterion, Throughput};
use pbs_core::ReplicaConfig;
use pbs_dist::Exponential;
use pbs_kvs::cluster::{Cluster, ClusterOptions, TraceOp};
use pbs_kvs::NetworkModel;
use std::sync::Arc;

fn net() -> NetworkModel {
    NetworkModel::w_ars(
        Arc::new(Exponential::from_rate(0.1)),
        Arc::new(Exponential::from_rate(0.5)),
    )
}

fn bench_kvs(c: &mut Criterion) {
    let cfg = ReplicaConfig::new(3, 1, 1).unwrap();

    let mut group = c.benchmark_group("kvs");
    const OPS: usize = 1_000;
    group.throughput(Throughput::Elements(OPS as u64));

    group.bench_function("sequential_write_read_pairs", |b| {
        b.iter(|| {
            let mut cluster = Cluster::new(ClusterOptions::validation(cfg, 1), net());
            for i in 0..OPS / 2 {
                let w = cluster.write(i as u64 % 16);
                let commit = w.commit.unwrap();
                let _ = cluster.read_at(i as u64 % 16, commit);
            }
        })
    });

    group.bench_function("trace_mixed_workload", |b| {
        let trace: Vec<TraceOp> = (0..OPS)
            .map(|i| TraceOp { at_ms: i as f64 * 2.0, is_read: i % 3 != 0, key: (i % 16) as u64 })
            .collect();
        b.iter(|| {
            let mut cluster = Cluster::new(ClusterOptions::validation(cfg, 2), net());
            cluster.run_trace(&trace)
        })
    });

    group.bench_function("trace_with_read_repair", |b| {
        let mut opts = ClusterOptions::validation(cfg, 3);
        opts.read_repair = true;
        let trace: Vec<TraceOp> = (0..OPS)
            .map(|i| TraceOp { at_ms: i as f64 * 2.0, is_read: i % 3 != 0, key: (i % 16) as u64 })
            .collect();
        b.iter(|| {
            let mut cluster = Cluster::new(opts, net());
            cluster.run_trace(&trace)
        })
    });

    group.finish();
}

criterion_group!(benches, bench_kvs);
criterion_main!(benches);
