//! Criterion: simulated Dynamo-style store throughput (operations per
//! second through the discrete-event kernel), for both the blocking probe
//! path and the open-loop client-actor engine.

use criterion::{criterion_group, criterion_main, Criterion, Throughput};
use pbs_core::ReplicaConfig;
use pbs_dist::Exponential;
use pbs_kvs::cluster::{Cluster, ClusterOptions};
use pbs_kvs::{run_open_loop, ClientOptions, NetworkModel, OpenLoopOptions};
use pbs_workload::{OpMix, OpSource, OpStream, Poisson, UniformKeys};
use std::sync::Arc;

fn net() -> NetworkModel {
    NetworkModel::w_ars(
        Arc::new(Exponential::from_rate(0.1)),
        Arc::new(Exponential::from_rate(0.5)),
    )
}

const OPS: usize = 1_000;

fn open_loop_opts(seed: u64, read_repair: bool) -> ClusterOptions {
    let cfg = ReplicaConfig::new(3, 1, 1).unwrap();
    let mut opts = ClusterOptions::validation(cfg, seed);
    opts.read_repair = read_repair;
    opts.op_timeout_ms = 2_000.0;
    opts
}

/// 16 clients × ~31 ops/s each ≈ 500 ops/s for 2 simulated seconds ≈ OPS.
fn run_open_loop_workload(seed: u64, read_repair: bool) -> pbs_kvs::OpenLoopReport {
    let engine = OpenLoopOptions::new(2_000.0, 500.0, 2_000.0);
    run_open_loop(
        open_loop_opts(seed, read_repair),
        &net(),
        &engine,
        16,
        ClientOptions { op_timeout_ms: 2_000.0, ..ClientOptions::default() },
        |_| -> Box<dyn OpSource> {
            Box::new(OpStream::new(
                Poisson::per_second(OPS as f64 / 2.0 / 16.0),
                UniformKeys::new(16),
                OpMix::new(2.0 / 3.0),
                1,
            ))
        },
        |_| {},
    )
}

fn bench_kvs(c: &mut Criterion) {
    let cfg = ReplicaConfig::new(3, 1, 1).unwrap();

    let mut group = c.benchmark_group("kvs");
    group.throughput(Throughput::Elements(OPS as u64));

    group.bench_function("sequential_write_read_pairs", |b| {
        b.iter(|| {
            let mut cluster = Cluster::new(ClusterOptions::validation(cfg, 1), net());
            for i in 0..OPS / 2 {
                let w = cluster.write(i as u64 % 16);
                let commit = w.commit.unwrap();
                let _ = cluster.read_at(i as u64 % 16, commit);
            }
        })
    });

    group.bench_function("open_loop_mixed_workload", |b| {
        b.iter(|| run_open_loop_workload(2, false))
    });

    group.bench_function("open_loop_with_read_repair", |b| {
        b.iter(|| run_open_loop_workload(3, true))
    });

    group.finish();
}

criterion_group!(benches, bench_kvs);
criterion_main!(benches);
