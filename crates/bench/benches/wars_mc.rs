//! Criterion: WARS Monte-Carlo trial throughput (the engine behind every
//! figure).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use pbs_core::ReplicaConfig;
use pbs_wars::production::{exponential_model, lnkd_disk_model, wan_model};
use pbs_wars::TVisibility;

fn bench_wars(c: &mut Criterion) {
    let cfg = ReplicaConfig::new(3, 1, 1).unwrap();
    let mut group = c.benchmark_group("wars_trials");
    const TRIALS: usize = 10_000;
    group.throughput(Throughput::Elements(TRIALS as u64));

    group.bench_function(BenchmarkId::new("exponential", "n3"), |b| {
        let model = exponential_model(cfg, 0.1, 0.5);
        b.iter(|| TVisibility::simulate(&model, TRIALS, 7))
    });
    group.bench_function(BenchmarkId::new("lnkd_disk_mixture", "n3"), |b| {
        let model = lnkd_disk_model(cfg);
        b.iter(|| TVisibility::simulate(&model, TRIALS, 7))
    });
    group.bench_function(BenchmarkId::new("wan", "n3"), |b| {
        let model = wan_model(cfg);
        b.iter(|| TVisibility::simulate(&model, TRIALS, 7))
    });
    group.bench_function(BenchmarkId::new("exponential", "n10"), |b| {
        let model = exponential_model(ReplicaConfig::new(10, 1, 1).unwrap(), 0.1, 0.5);
        b.iter(|| TVisibility::simulate(&model, TRIALS, 7))
    });
    group.finish();
}

criterion_group!(benches, bench_wars);
criterion_main!(benches);
