//! Criterion: closed-form PBS math (Eqs. 1–5) evaluation throughput.

use criterion::{black_box, criterion_group, criterion_main, Criterion};
use pbs_core::tvisibility::{t_visibility_violation, ExponentialDiffusion};
use pbs_core::{staleness, ReplicaConfig};

fn bench_closed_form(c: &mut Criterion) {
    let small = ReplicaConfig::new(3, 1, 1).unwrap();
    let large = ReplicaConfig::new(100, 30, 30).unwrap();

    c.bench_function("eq1_non_intersection_n3", |b| {
        b.iter(|| staleness::non_intersection_probability(black_box(small)))
    });
    c.bench_function("eq1_non_intersection_n100", |b| {
        b.iter(|| staleness::non_intersection_probability(black_box(large)))
    });
    c.bench_function("eq2_k_staleness_k10", |b| {
        b.iter(|| staleness::k_staleness_violation(black_box(small), black_box(10)))
    });
    c.bench_function("eq3_monotonic_reads", |b| {
        b.iter(|| staleness::monotonic_reads_violation(black_box(small), 4.0, 1.0))
    });

    let diffusion = ExponentialDiffusion::new(small, 0.5);
    c.bench_function("eq4_t_visibility_exponential", |b| {
        b.iter(|| t_visibility_violation(black_box(small), &diffusion, black_box(3.0)))
    });

    let big = ReplicaConfig::new(50, 5, 5).unwrap();
    let big_diffusion = ExponentialDiffusion::new(big, 0.5);
    c.bench_function("eq4_t_visibility_n50", |b| {
        b.iter(|| t_visibility_violation(black_box(big), &big_diffusion, black_box(3.0)))
    });
}

criterion_group!(benches, bench_closed_form);
criterion_main!(benches);
