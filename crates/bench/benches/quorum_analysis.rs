//! Criterion: quorum-system Monte-Carlo analysis throughput.

use criterion::{criterion_group, criterion_main, Criterion, Throughput};
use pbs_quorum::{analysis, Grid, Majority, RandomFixed, TreeQuorum};

fn bench_quorum(c: &mut Criterion) {
    const TRIALS: usize = 100_000;
    let mut group = c.benchmark_group("quorum_intersection_mc");
    group.throughput(Throughput::Elements(TRIALS as u64));

    group.bench_function("random_fixed_n10", |b| {
        let sys = RandomFixed::new(10, 3, 3);
        b.iter(|| analysis::intersection_probability(&sys, TRIALS, 1))
    });
    group.bench_function("majority_n25", |b| {
        let sys = Majority::new(25);
        b.iter(|| analysis::intersection_probability(&sys, TRIALS, 1))
    });
    group.bench_function("grid_5x5", |b| {
        let sys = Grid::new(5);
        b.iter(|| analysis::intersection_probability(&sys, TRIALS, 1))
    });
    group.bench_function("tree_depth5", |b| {
        let sys = TreeQuorum::new(5, 0.25);
        b.iter(|| analysis::intersection_probability(&sys, TRIALS, 1))
    });
    group.bench_function("k_staleness_k5_random_n10", |b| {
        let sys = RandomFixed::new(10, 2, 2);
        b.iter(|| analysis::k_staleness_mc(&sys, 5, TRIALS, 1))
    });
    group.finish();
}

criterion_group!(benches, bench_quorum);
criterion_main!(benches);
