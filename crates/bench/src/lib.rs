//! # pbs-bench — harnesses regenerating every table and figure of the paper
//!
//! Each binary regenerates one artifact from the evaluation (see
//! `DESIGN.md` for the experiment index and `EXPERIMENTS.md` for recorded
//! results):
//!
//! | Binary | Paper artifact |
//! |--------|----------------|
//! | `kstaleness` | §3.1 k-staleness closed form (+ MC cross-checks) |
//! | `monotonic` | §3.2 monotonic reads (Eq. 3 vs. session simulation) |
//! | `load_bounds` | §3.3 load/capacity bounds |
//! | `table1_2_3` | Tables 1–3: production percentiles & mixture fits |
//! | `fig4` | Figure 4: t-visibility under exponential latencies |
//! | `fig5` | Figure 5: operation-latency CDFs for production fits |
//! | `fig6` | Figure 6: t-visibility for production fits |
//! | `fig7` | Figure 7: t-visibility vs. replication factor |
//! | `table4` | Table 4: latency vs. t-visibility across (R, W) |
//! | `validation` | §5.2: WARS vs. the simulated Dynamo-style store |
//! | `quorum_systems` | §2.1 context: classic quorum constructions |
//! | `failures` | §6: staleness under crashes & hinted handoff |
//! | `sla` | §6: SLA-driven configuration search |
//! | `detector` | §4.3: asynchronous staleness detector quality |
//! | `read_delay` | §5.3 ablation: delaying reads vs. raising R |
//!
//! Run all of them with `scripts/run_all.sh` or individually:
//! `cargo run -p pbs-bench --release --bin fig6`. Every binary accepts
//! `--quick` (reduced trial counts for smoke runs), `--trials=N`,
//! `--seed=N`, and `--threads=N` (shards for the deterministic `pbs-mc`
//! runner; output is bit-reproducible for a fixed `(seed, threads)`
//! pair and defaults to all available cores).

#![forbid(unsafe_code)]
#![warn(missing_docs)]

/// Simple fixed-width table printer shared by all harness binaries.
pub mod report {
    /// Print a section header.
    pub fn header(title: &str) {
        println!();
        println!("== {title} ==");
    }

    /// Print a table: `cols` are right-aligned headers; each row must match.
    pub fn table(cols: &[&str], rows: &[Vec<String>]) {
        let mut widths: Vec<usize> = cols.iter().map(|c| c.len()).collect();
        for row in rows {
            assert_eq!(row.len(), cols.len(), "row arity mismatch");
            for (i, cell) in row.iter().enumerate() {
                widths[i] = widths[i].max(cell.len());
            }
        }
        let fmt_row = |cells: Vec<String>| {
            let padded: Vec<String> = cells
                .iter()
                .zip(&widths)
                .map(|(c, w)| format!("{c:>w$}", w = w))
                .collect();
            padded.join("  ")
        };
        println!("{}", fmt_row(cols.iter().map(|s| s.to_string()).collect()));
        println!("{}", widths.iter().map(|w| "-".repeat(*w)).collect::<Vec<_>>().join("  "));
        for row in rows {
            println!("{}", fmt_row(row.clone()));
        }
    }

    /// Format a probability as a percentage with 2–4 significant decimals.
    pub fn pct(p: f64) -> String {
        if p >= 0.9999 {
            format!("{:.4}%", p * 100.0)
        } else {
            format!("{:.2}%", p * 100.0)
        }
    }

    /// Format milliseconds compactly.
    pub fn ms(v: f64) -> String {
        if v >= 100.0 {
            format!("{v:.1}")
        } else {
            format!("{v:.3}")
        }
    }

    /// Format an optional millisecond value (`None` → `"unresolved"`) —
    /// the shape of every `t_at_probability` table cell.
    pub fn opt_ms(v: Option<f64>) -> String {
        match v {
            Some(t) => ms(t),
            None => "unresolved".into(),
        }
    }

    /// Build a header row from a fixed first column plus per-series
    /// labels — the `vec!["t"]; cols.extend(labels…)` pattern previously
    /// duplicated across the figure binaries. Accepts `&[String]` and
    /// `&[&str]` alike.
    pub fn labeled_cols<'a, S: AsRef<str>>(first: &'a str, labels: &'a [S]) -> Vec<&'a str> {
        let mut cols = vec![first];
        cols.extend(labels.iter().map(|s| s.as_ref()));
        cols
    }
}

/// Harness CLI options, parsed from `std::env::args`.
#[derive(Debug, Clone, Copy)]
pub struct HarnessOptions {
    /// Monte-Carlo trials per data point.
    pub trials: usize,
    /// Seed for all RNGs.
    pub seed: u64,
    /// Shards for the deterministic `pbs-mc` runner. Defaults to the
    /// host's available parallelism; results are bit-reproducible for a
    /// fixed `(seed, threads)` pair.
    pub threads: usize,
}

impl HarnessOptions {
    /// Parse `--quick`, `--trials=N`, `--seed=N`, and `--threads=N` with a
    /// default trial budget (chosen per binary to balance fidelity and
    /// runtime).
    pub fn parse(default_trials: usize) -> Self {
        let mut trials = default_trials;
        let mut seed = 42u64;
        let mut threads = pbs_mc::Runner::available_threads();
        for arg in std::env::args().skip(1) {
            if arg == "--quick" {
                trials = (default_trials / 20).max(1_000);
            } else if let Some(v) = arg.strip_prefix("--trials=") {
                trials = v.parse().expect("--trials=N requires an integer");
            } else if let Some(v) = arg.strip_prefix("--seed=") {
                seed = v.parse().expect("--seed=N requires an integer");
            } else if let Some(v) = arg.strip_prefix("--threads=") {
                threads = v.parse().expect("--threads=N requires an integer");
                assert!(threads > 0, "--threads must be at least 1");
            } else {
                eprintln!(
                    "unknown argument: {arg} (supported: --quick --trials=N --seed=N --threads=N)"
                );
                std::process::exit(2);
            }
        }
        Self { trials, seed, threads }
    }
}

#[cfg(test)]
mod tests {
    use super::report;

    #[test]
    fn pct_formatting() {
        assert_eq!(report::pct(0.5), "50.00%");
        assert_eq!(report::pct(0.99999), "99.9990%");
    }

    #[test]
    fn ms_formatting() {
        assert_eq!(report::ms(1.2345), "1.234");
        assert_eq!(report::ms(1234.5), "1234.5");
        assert_eq!(report::opt_ms(Some(2.0)), "2.000");
        assert_eq!(report::opt_ms(None), "unresolved");
    }

    #[test]
    fn labeled_cols_prepends_first() {
        let labels = vec!["a".to_string(), "b".to_string()];
        assert_eq!(report::labeled_cols("t", &labels), vec!["t", "a", "b"]);
    }
}
