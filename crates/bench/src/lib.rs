//! # pbs-bench — harnesses regenerating every table and figure of the paper
//!
//! Each binary regenerates one artifact from the evaluation (see
//! `DESIGN.md` for the experiment index and `EXPERIMENTS.md` for recorded
//! results):
//!
//! | Binary | Paper artifact |
//! |--------|----------------|
//! | `kstaleness` | §3.1 k-staleness closed form (+ MC cross-checks) |
//! | `monotonic` | §3.2 monotonic reads (Eq. 3 vs. session simulation) |
//! | `load_bounds` | §3.3 load/capacity bounds |
//! | `table1_2_3` | Tables 1–3: production percentiles & mixture fits |
//! | `fig4` | Figure 4: t-visibility under exponential latencies |
//! | `fig5` | Figure 5: operation-latency CDFs for production fits |
//! | `fig6` | Figure 6: t-visibility for production fits |
//! | `fig7` | Figure 7: t-visibility vs. replication factor |
//! | `table4` | Table 4: latency vs. t-visibility across (R, W) |
//! | `validation` | §5.2: WARS vs. the simulated Dynamo-style store |
//! | `quorum_systems` | §2.1 context: classic quorum constructions |
//! | `failures` | §6: staleness under crashes & hinted handoff |
//! | `sla` | §6: SLA-driven configuration search |
//! | `detector` | §4.3: asynchronous staleness detector quality |
//! | `read_delay` | §5.3 ablation: delaying reads vs. raising R |
//! | `scenarios` | §6 closed loop: chaos timelines + adaptive reconfiguration (`pbs-scenario`) |
//! | `throughput` | open-loop arrival-rate × (N,R,W) sweep: ops/sec, latency quantiles, consistency vs. load |
//! | `profile` | hot-path profiler: events/sec, allocs/op (`--features alloc-profile`), scheduler occupancy (see `docs/performance.md`) |
//! | `bench_guard` | CI bench-regression gate over `BENCH_*.json` summaries |
//!
//! Run all of them with `scripts/run_all.sh` or individually:
//! `cargo run -p pbs-bench --release --bin fig6`. Every binary accepts
//! `--quick` (reduced trial counts for smoke runs), `--trials N`,
//! `--seed N`, and `--threads N` (shards for the deterministic `pbs-mc`
//! runner; output is bit-reproducible for a fixed `(seed, threads)`
//! pair and defaults to all available cores); both `--key value` and
//! `--key=value` spellings are accepted (see [`cli`]).

#![forbid(unsafe_code)]
#![warn(missing_docs)]

/// Simple fixed-width table printer shared by all harness binaries.
pub mod report {
    /// Print a section header.
    pub fn header(title: &str) {
        println!();
        println!("== {title} ==");
    }

    /// Print a table: `cols` are right-aligned headers; each row must match.
    pub fn table(cols: &[&str], rows: &[Vec<String>]) {
        let mut widths: Vec<usize> = cols.iter().map(|c| c.len()).collect();
        for row in rows {
            assert_eq!(row.len(), cols.len(), "row arity mismatch");
            for (i, cell) in row.iter().enumerate() {
                widths[i] = widths[i].max(cell.len());
            }
        }
        let fmt_row = |cells: Vec<String>| {
            let padded: Vec<String> = cells
                .iter()
                .zip(&widths)
                .map(|(c, w)| format!("{c:>w$}", w = w))
                .collect();
            padded.join("  ")
        };
        println!("{}", fmt_row(cols.iter().map(|s| s.to_string()).collect()));
        println!("{}", widths.iter().map(|w| "-".repeat(*w)).collect::<Vec<_>>().join("  "));
        for row in rows {
            println!("{}", fmt_row(row.clone()));
        }
    }

    /// Format a probability as a percentage with 2–4 significant decimals.
    pub fn pct(p: f64) -> String {
        if p >= 0.9999 {
            format!("{:.4}%", p * 100.0)
        } else {
            format!("{:.2}%", p * 100.0)
        }
    }

    /// Format milliseconds compactly.
    pub fn ms(v: f64) -> String {
        if v >= 100.0 {
            format!("{v:.1}")
        } else {
            format!("{v:.3}")
        }
    }

    /// Format an optional millisecond value (`None` → `"unresolved"`) —
    /// the shape of every `t_at_probability` table cell.
    pub fn opt_ms(v: Option<f64>) -> String {
        match v {
            Some(t) => ms(t),
            None => "unresolved".into(),
        }
    }

    /// Build a header row from a fixed first column plus per-series
    /// labels — the `vec!["t"]; cols.extend(labels…)` pattern previously
    /// duplicated across the figure binaries. Accepts `&[String]` and
    /// `&[&str]` alike.
    pub fn labeled_cols<'a, S: AsRef<str>>(first: &'a str, labels: &'a [S]) -> Vec<&'a str> {
        let mut cols = vec![first];
        cols.extend(labels.iter().map(|s| s.as_ref()));
        cols
    }
}

/// Minimal argv parsing shared by the harness binaries: `--key value`,
/// `--key=value`, and bare `--flag` spellings are all accepted.
pub mod cli {
    /// Parsed command-line flags, in order of appearance.
    #[derive(Debug, Clone, Default)]
    pub struct Args {
        pairs: Vec<(String, Option<String>)>,
    }

    impl Args {
        /// Parse the process's arguments (skipping `argv[0]`). Exits with
        /// status 2 on a token that is not a `--flag`.
        pub fn parse() -> Self {
            Self::from_tokens(std::env::args().skip(1))
        }

        /// Parse from an explicit token stream.
        pub fn from_tokens<I: IntoIterator<Item = String>>(tokens: I) -> Self {
            let mut pairs: Vec<(String, Option<String>)> = Vec::new();
            for token in tokens {
                if let Some(flag) = token.strip_prefix("--") {
                    match flag.split_once('=') {
                        Some((k, v)) => pairs.push((k.to_string(), Some(v.to_string()))),
                        None => pairs.push((flag.to_string(), None)),
                    }
                } else if let Some((_, slot @ None)) = pairs.last_mut() {
                    // A bare token becomes the value of the preceding flag.
                    *slot = Some(token);
                } else {
                    eprintln!("unexpected argument: {token} (flags look like --key value)");
                    std::process::exit(2);
                }
            }
            Self { pairs }
        }

        /// The value of `--key` (last occurrence wins), if present.
        pub fn value_of(&self, key: &str) -> Option<&str> {
            self.pairs
                .iter()
                .rev()
                .find(|(k, _)| k == key)
                .and_then(|(_, v)| v.as_deref())
        }

        /// Whether `--key` appeared at all (with or without a value).
        pub fn has(&self, key: &str) -> bool {
            self.pairs.iter().any(|(k, _)| k == key)
        }

        /// Whether the boolean flag `--key` is set. Exits with status 2 if
        /// it was given a value (e.g. a stray positional token after it:
        /// `--quick 3000` is a forgotten `--trials`, not a quick run).
        pub fn flag(&self, key: &str) -> bool {
            match self.pairs.iter().rev().find(|(k, _)| k == key) {
                None => false,
                Some((_, None)) => true,
                Some((_, Some(v))) => {
                    eprintln!("--{key} takes no value (got {v:?})");
                    std::process::exit(2);
                }
            }
        }

        /// Parse `--key`'s value, exiting with status 2 on a missing or
        /// malformed value. `None` when the flag is absent.
        pub fn parsed<T: std::str::FromStr>(&self, key: &str) -> Option<T> {
            if !self.has(key) {
                return None;
            }
            match self.value_of(key).and_then(|v| v.parse().ok()) {
                Some(v) => Some(v),
                None => {
                    eprintln!("--{key} requires a value of type {}", std::any::type_name::<T>());
                    std::process::exit(2);
                }
            }
        }

        /// Exit with status 2 if any flag is not in `known`.
        pub fn reject_unknown(&self, known: &[&str]) {
            for (k, _) in &self.pairs {
                if !known.contains(&k.as_str()) {
                    eprintln!(
                        "unknown argument: --{k} (supported: {})",
                        known.iter().map(|k| format!("--{k}")).collect::<Vec<_>>().join(" ")
                    );
                    std::process::exit(2);
                }
            }
        }
    }
}

/// Harness CLI options, parsed from `std::env::args`.
#[derive(Debug, Clone, Copy)]
pub struct HarnessOptions {
    /// Monte-Carlo trials per data point.
    pub trials: usize,
    /// Seed for all RNGs.
    pub seed: u64,
    /// Shards for the deterministic `pbs-mc` runner. Defaults to the
    /// host's available parallelism; results are bit-reproducible for a
    /// fixed `(seed, threads)` pair.
    pub threads: usize,
}

impl HarnessOptions {
    /// Parse `--quick`, `--trials N`, `--seed N`, and `--threads N`
    /// (`--key=value` works too) with a default trial budget (chosen per
    /// binary to balance fidelity and runtime).
    pub fn parse(default_trials: usize) -> Self {
        let args = cli::Args::parse();
        args.reject_unknown(&["quick", "trials", "seed", "threads"]);
        Self::from_args(&args, default_trials)
    }

    /// Extract the shared options from pre-parsed [`cli::Args`] — for
    /// binaries with extra flags of their own.
    pub fn from_args(args: &cli::Args, default_trials: usize) -> Self {
        let mut trials = default_trials;
        if args.flag("quick") {
            trials = (default_trials / 20).max(1_000);
        }
        if let Some(t) = args.parsed::<usize>("trials") {
            trials = t;
        }
        let seed = args.parsed::<u64>("seed").unwrap_or(42);
        let threads = args
            .parsed::<usize>("threads")
            .unwrap_or_else(pbs_mc::Runner::available_threads);
        assert!(threads > 0, "--threads must be at least 1");
        Self { trials, seed, threads }
    }
}

#[cfg(test)]
mod tests {
    use super::cli::Args;
    use super::report;

    fn args(tokens: &[&str]) -> Args {
        Args::from_tokens(tokens.iter().map(|s| s.to_string()))
    }

    #[test]
    fn cli_accepts_both_spellings() {
        let a = args(&["--trials=30", "--seed", "7", "--quick"]);
        assert_eq!(a.parsed::<usize>("trials"), Some(30));
        assert_eq!(a.parsed::<u64>("seed"), Some(7));
        assert!(a.has("quick"));
        assert!(a.flag("quick"), "bare flag is set");
        assert!(!a.has("threads"));
        assert_eq!(a.value_of("threads"), None);
    }

    #[test]
    fn cli_last_occurrence_wins() {
        let a = args(&["--seed", "1", "--seed=9"]);
        assert_eq!(a.parsed::<u64>("seed"), Some(9));
    }

    #[test]
    fn harness_options_from_args() {
        let a = args(&["--trials", "64", "--seed", "7", "--threads", "2"]);
        let o = super::HarnessOptions::from_args(&a, 1_000);
        assert_eq!((o.trials, o.seed, o.threads), (64, 7, 2));
        // --quick scales the default; an explicit --trials overrides it.
        let a = args(&["--quick"]);
        assert_eq!(super::HarnessOptions::from_args(&a, 100_000).trials, 5_000);
        let a = args(&["--quick", "--trials", "12"]);
        assert_eq!(super::HarnessOptions::from_args(&a, 100_000).trials, 12);
    }

    #[test]
    fn pct_formatting() {
        assert_eq!(report::pct(0.5), "50.00%");
        assert_eq!(report::pct(0.99999), "99.9990%");
    }

    #[test]
    fn ms_formatting() {
        assert_eq!(report::ms(1.2345), "1.234");
        assert_eq!(report::ms(1234.5), "1234.5");
        assert_eq!(report::opt_ms(Some(2.0)), "2.000");
        assert_eq!(report::opt_ms(None), "unresolved");
    }

    #[test]
    fn labeled_cols_prepends_first() {
        let labels = vec!["a".to_string(), "b".to_string()];
        assert_eq!(report::labeled_cols("t", &labels), vec!["t", "a", "b"]);
    }
}
