//! §6 "Latency/Staleness SLAs" — the automatic replication-parameter
//! optimizer: for each production profile and SLA, exhaustively evaluate
//! the (R, W) grid and report the cheapest qualifying configuration.

use pbs_bench::{report, HarnessOptions};
use pbs_predictor::sla::{optimize, SlaSpec};
use pbs_wars::production::ProductionProfile;

fn main() {
    let opts = HarnessOptions::parse(100_000);
    println!("SLA-driven configuration search (paper §6), N=3 grid");

    let slas = [
        ("99.9% consistent immediately (t=0)", SlaSpec::consistency(0.999, 0.0)),
        ("99.9% consistent within 10ms", SlaSpec::consistency(0.999, 10.0)),
        ("99.9% consistent within 100ms", SlaSpec::consistency(0.999, 100.0)),
        ("99% consistent within 1ms", SlaSpec::consistency(0.99, 1.0)),
    ];

    for profile in ProductionProfile::ALL {
        report::header(profile.name());
        let mut rows = Vec::new();
        for (label, spec) in &slas {
            let result =
                optimize(&|cfg| profile.model(cfg), &[3], spec, opts.trials, opts.seed);
            match result.best_config() {
                Some(best) => rows.push(vec![
                    label.to_string(),
                    format!("R={}, W={}", best.cfg.r(), best.cfg.w()),
                    report::ms(best.read_latency),
                    report::ms(best.write_latency),
                    report::pct(best.consistency),
                ]),
                None => rows.push(vec![
                    label.to_string(),
                    "none".into(),
                    "-".into(),
                    "-".into(),
                    "-".into(),
                ]),
            }
        }
        report::table(
            &["SLA", "chosen config", "Lr p99.9", "Lw p99.9", "P(consistent)"],
            &rows,
        );
    }

    report::header("Durability disentangled from latency (LNKD-DISK, min W=2)");
    let mut spec = SlaSpec::consistency(0.999, 100.0);
    spec.min_write_quorum = 2;
    let mut rows = Vec::new();
    for n in [3u32, 5] {
        let result = optimize(
            &|cfg| ProductionProfile::LnkdDisk.model(cfg),
            &[n],
            &spec,
            opts.trials,
            opts.seed,
        );
        if let Some(best) = result.best_config() {
            rows.push(vec![
                format!("N={n}"),
                format!("R={}, W={}", best.cfg.r(), best.cfg.w()),
                report::ms(best.combined_latency()),
            ]);
        }
    }
    report::table(&["replication", "chosen config", "Lr+Lw p99.9 (ms)"], &rows);
    println!("(§6: 'operators can specify a minimum replication factor for durability…");
    println!(" but also automatically increase N, decreasing tail latency for fixed R, W')");
}
