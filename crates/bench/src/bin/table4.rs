//! Table 4 — the latency/staleness trade-off (§5.8): t-visibility for
//! `p_st = .001` plus 99.9th-percentile read/write latencies across `(R,W)`
//! with `N = 3`, for all four production fits.

use pbs_bench::{report, HarnessOptions};
use pbs_wars::production::ProductionProfile;
use pbs_wars::sweep::{table4_sweep, TABLE4_PAIRS};

fn main() {
    // The paper used 50k writes for t-visibility and 1M for latency; one
    // million trials serves both here.
    let opts = HarnessOptions::parse(1_000_000);
    println!("Table 4: t-visibility @99.9% and p99.9 operation latencies (§5.8), N=3");
    println!("({} trials per cell, {} threads)", opts.trials, opts.threads);

    for profile in ProductionProfile::ALL {
        report::header(profile.name());
        let rows_data = table4_sweep(
            &|cfg| profile.model(cfg),
            3,
            &TABLE4_PAIRS,
            opts.trials,
            opts.seed,
            opts.threads,
        );
        let mut rows = Vec::new();
        for row in rows_data {
            rows.push(vec![
                format!("R={}, W={}", row.cfg.r(), row.cfg.w()),
                report::ms(row.read_latency),
                report::ms(row.write_latency),
                report::opt_ms(row.t_visibility),
            ]);
        }
        report::table(&["config", "Lr p99.9 (ms)", "Lw p99.9 (ms)", "t @ 99.9% (ms)"], &rows);
    }

    println!();
    println!("Paper reference rows (Lr / Lw / t):");
    println!("  LNKD-SSD  R=1,W=1: 0.66 / 0.66 / 1.85     LNKD-DISK R=1,W=1: 0.66 / 10.99 / 45.5");
    println!("  YMMR      R=1,W=1: 5.58 / 10.83 / 1364.0  WAN       R=1,W=1: 3.4  / 55.12 / 113.0");
    println!("  YMMR      R=2,W=1: 32.6 / 10.73 / 202.0   (81.1% latency win vs R=3,W=1 strict)");
}
