//! §6 closed loop — run a named chaos scenario (`pbs-scenario`): a
//! declarative fault/load timeline drives a live cluster while the
//! in-loop adaptive controller refits measured WARS latencies and
//! (optionally) retunes `(R, W)`. Emits a windowed time-series of
//! predicted vs. measured consistency and latency as a table, CSV, or
//! JSON.
//!
//! ```text
//! cargo run --release --bin scenarios -- --scenario latency-spike --trials 64 --seed 7
//! cargo run --release --bin scenarios -- --list
//! cargo run --release --bin scenarios -- --scenario diurnal-load --format csv
//! cargo run --release --bin scenarios -- --scenario buggify-storm --chaos --seed 7
//! ```
//!
//! `--trials` is the number of **whole-scenario replica runs** (sharded
//! deterministically over `--threads`; bit-reproducible per
//! `(seed, threads)`), not per-point Monte-Carlo trials.
//!
//! `--chaos` turns the run into a checked chaos run: a seeded buggify
//! storm is installed (unless the scenario carries its own profile), the
//! full op history is recorded, and the offline checker replays it
//! against the streaming session counters and online staleness labels.
//! The process exits nonzero if any cross-check fails — the CI smoke
//! gate.

use pbs_bench::{cli, report};
use pbs_scenario::{run_scenario_sharded, Scenario, ScenarioRun, WindowRecord};

const KNOWN: &[&str] = &[
    "scenario", "trials", "seed", "threads", "format", "adaptive", "list", "quick", "chaos",
];

fn fmt_opt(v: Option<f64>, digits: usize) -> String {
    match v {
        Some(x) => format!("{x:.digits$}"),
        None => "-".into(),
    }
}

fn print_table(scenario: &Scenario, run: &ScenarioRun) {
    report::header(&format!("{} — predicted vs. measured, {} runs", run.name, run.runs));
    let rows: Vec<Vec<String>> = run
        .windows
        .iter()
        .map(|w| {
            vec![
                format!("{:.0}", w.start_ms),
                w.probes.to_string(),
                fmt_opt(w.measured(), 4),
                fmt_opt(w.predicted(), 4),
                fmt_opt(w.tracking_error(), 4),
                fmt_opt((w.probes > 0).then(|| w.read_latency.percentile(50.0)), 3),
                fmt_opt((w.probes > 0).then(|| w.write_latency.percentile(99.0)), 3),
                w.failed_writes.to_string(),
                w.reconfigs.to_string(),
            ]
        })
        .collect();
    report::table(
        &[
            "t (ms)",
            "probes",
            "measured",
            "predicted",
            "|err|",
            "read p50",
            "write p99",
            "failed",
            "reconfigs",
        ],
        &rows,
    );
    if !run.reconfigs.is_empty() {
        report::header(&format!(
            "Reconfigurations applied by the in-loop controller ({} total)",
            run.reconfigs.len()
        ));
        const SHOWN: usize = 24;
        for r in run.reconfigs.iter().take(SHOWN) {
            println!("  t={:6.0}ms  run seed {:>20}  {} → {}", r.at_ms, r.run_seed, r.from, r.to);
        }
        if run.reconfigs.len() > SHOWN {
            println!("  … and {} more (see --format json)", run.reconfigs.len() - SHOWN);
        }
    }
    match run.stationary_tracking_error(scenario) {
        Some(err) => {
            println!();
            println!(
                "max |predicted − measured| on stationary segments: {err:.4} (target ≤ 0.05)"
            );
        }
        None => println!("\n(no stationary window had both series)"),
    }
}

fn print_csv(run: &ScenarioRun) {
    println!(
        "window_start_ms,window_end_ms,probes,consistent,measured,predicted,abs_error,\
         read_p50_ms,read_p99_ms,write_p50_ms,write_p99_ms,failed_writes,incomplete_reads,reconfigs"
    );
    for w in &run.windows {
        let lat = |s: &pbs_mc::Summary, pct: f64| {
            if s.is_empty() { String::new() } else { format!("{:.4}", s.percentile(pct)) }
        };
        println!(
            "{},{},{},{},{},{},{},{},{},{},{},{},{},{}",
            w.start_ms,
            w.end_ms,
            w.probes,
            w.consistent,
            fmt_opt(w.measured(), 6).replace('-', ""),
            fmt_opt(w.predicted(), 6).replace('-', ""),
            fmt_opt(w.tracking_error(), 6).replace('-', ""),
            lat(&w.read_latency, 50.0),
            lat(&w.read_latency, 99.0),
            lat(&w.write_latency, 50.0),
            lat(&w.write_latency, 99.0),
            w.failed_writes,
            w.incomplete_reads,
            w.reconfigs,
        );
    }
}

fn json_f64(v: Option<f64>) -> String {
    match v {
        Some(x) if x.is_finite() => format!("{x}"),
        _ => "null".into(),
    }
}

fn print_json(scenario: &Scenario, run: &ScenarioRun) {
    let windows: Vec<String> = run
        .windows
        .iter()
        .map(|w: &WindowRecord| {
            format!(
                "{{\"start_ms\":{},\"end_ms\":{},\"probes\":{},\"consistent\":{},\
                 \"measured\":{},\"predicted\":{},\"failed_writes\":{},\
                 \"incomplete_reads\":{},\"reconfigs\":{},\"read_p50_ms\":{},\
                 \"write_p99_ms\":{}}}",
                w.start_ms,
                w.end_ms,
                w.probes,
                w.consistent,
                json_f64(w.measured()),
                json_f64(w.predicted()),
                w.failed_writes,
                w.incomplete_reads,
                w.reconfigs,
                json_f64((w.probes > 0).then(|| w.read_latency.percentile(50.0))),
                json_f64((w.probes > 0).then(|| w.write_latency.percentile(99.0))),
            )
        })
        .collect();
    let reconfigs: Vec<String> = run
        .reconfigs
        .iter()
        .map(|r| {
            format!(
                "{{\"at_ms\":{},\"run_seed\":{},\"from\":\"{}\",\"to\":\"{}\"}}",
                r.at_ms, r.run_seed, r.from, r.to
            )
        })
        .collect();
    let check = match &run.check {
        Some(c) => format!(
            "{{\"clean\":{},\"reads_checked\":{},\"monotonic\":{},\"ryw\":{},\
             \"labelled_reads\":{},\"stale_reads\":{},\"mismatches\":{},\
             \"lost_updates\":{},\"non_monotone\":{},\"phantoms\":{},\
             \"lin_keys_checked\":{},\"lin_violated_keys\":{},\"lin_violations\":{},\
             \"lin_exhausted_keys\":{},\"lin_window_p50_ms\":{},\"lin_window_p90_ms\":{}}}",
            c.is_clean(),
            c.sessions.reads_checked,
            c.sessions.monotonic_violations,
            c.sessions.ryw_violations,
            c.labels.labelled_reads,
            c.labels.stale_reads,
            c.labels.mismatches,
            c.order.lost_updates,
            c.order.non_monotone,
            c.order.phantoms,
            c.lin.keys_checked,
            c.lin.violated_keys,
            c.lin.violation_count(),
            c.lin.exhausted_keys,
            json_f64(c.lin.window_percentile_ms(50.0)),
            json_f64(c.lin.window_percentile_ms(90.0)),
        ),
        None => "null".into(),
    };
    println!(
        "{{\"scenario\":\"{}\",\"runs\":{},\"stationary_tracking_error\":{},\
         \"windows\":[{}],\"reconfigs\":[{}],\"check\":{},\"event_errors\":{}}}",
        run.name,
        run.runs,
        json_f64(run.stationary_tracking_error(scenario)),
        windows.join(","),
        reconfigs.join(","),
        check,
        run.event_errors,
    );
}

fn main() {
    let args = cli::Args::parse();
    args.reject_unknown(KNOWN);

    if args.flag("list") {
        println!("built-in scenarios:");
        for name in Scenario::builtin_names() {
            let s = Scenario::by_name(name, 0).expect("builtin");
            println!("  {:<18} {}", s.name, s.description);
        }
        return;
    }

    let seed = args.parsed::<u64>("seed").unwrap_or(42);
    let mut trials = if args.flag("quick") { 4 } else { 16 };
    if let Some(t) = args.parsed::<usize>("trials") {
        trials = t;
    }
    let threads = args
        .parsed::<usize>("threads")
        .unwrap_or_else(pbs_mc::Runner::available_threads);
    let name = args.value_of("scenario").unwrap_or_else(|| {
        eprintln!("--scenario NAME is required (see --list)");
        std::process::exit(2);
    });
    let Some(mut scenario) = Scenario::by_name(name, seed) else {
        eprintln!(
            "unknown scenario {name:?}; built-ins: {}",
            Scenario::builtin_names().join(", ")
        );
        std::process::exit(2);
    };
    if let Some(adaptive) = args.parsed::<bool>("adaptive") {
        scenario.control.adaptive = adaptive;
    }
    let chaos = args.flag("chaos");
    if chaos {
        if scenario.fault_profile.is_none() && scenario.fault_schedule.is_none() {
            scenario.fault_profile = Some(pbs_kvs::FaultProfile::storm(seed));
        }
        scenario.check_history = true;
    }
    let format = args.value_of("format").unwrap_or("table");

    if format == "table" {
        println!("Scenario {:?}: {}", scenario.name, scenario.description);
        println!(
            "cluster N={} start config {}, {} replica runs over {} threads, seed {}, \
             adaptive {}",
            scenario.cluster.nodes,
            scenario.cluster.replication,
            trials,
            threads,
            seed,
            if scenario.control.adaptive { "on" } else { "off" },
        );
        report::header("Timeline");
        println!("  {:>8}  probe load (piecewise{})", "", match scenario.load_period_ms {
            Some(p) => format!(", period {p}ms"),
            None => String::new(),
        });
        for &(at, rate) in &scenario.load {
            println!("  {at:>7.0}ms  {rate} probes/s");
        }
        for ev in &scenario.events {
            println!("  {:>7.0}ms  {}", ev.at_ms, ev.event.describe());
        }
    }

    let run = run_scenario_sharded(&scenario, trials, seed, threads);

    match format {
        "table" => print_table(&scenario, &run),
        "csv" => print_csv(&run),
        "json" => print_json(&scenario, &run),
        other => {
            eprintln!("unknown --format {other:?} (supported: table csv json)");
            std::process::exit(2);
        }
    }

    if let Some(check) = run.check {
        if format == "table" {
            report::header("History checker (offline oracle vs. streaming machinery)");
            let s = check.sessions;
            println!(
                "  session replay : {} reads, {} monotonic / {} RYW violations \
                 (streaming: {} reads, {} / {}) — {}",
                s.reads_checked,
                s.monotonic_violations,
                s.ryw_violations,
                s.streaming_reads_checked,
                s.streaming_monotonic,
                s.streaming_ryw,
                if s.agrees() { "AGREE" } else { "DISAGREE" },
            );
            let l = check.labels;
            println!(
                "  label recount  : {} labelled reads, {} stale, {} mismatches",
                l.labelled_reads, l.stale_reads, l.mismatches
            );
            let o = &check.order;
            println!(
                "  order oracle   : {} reads vs {} writes — {} lost updates, \
                 {} non-monotone, {} phantoms",
                o.reads_checked, o.writes_tracked, o.lost_updates, o.non_monotone, o.phantoms
            );
            let lin = &check.lin;
            println!(
                "  linearizability: {} keys / {} ops — {} ok, {} violated \
                 ({} windows, p90 {}), {} exhausted",
                lin.keys_checked,
                lin.ops_checked,
                lin.linearizable_keys,
                lin.violated_keys,
                lin.violation_count(),
                match lin.window_percentile_ms(90.0) {
                    Some(ms) => format!("{ms:.2}ms"),
                    None => "-".into(),
                },
                lin.exhausted_keys,
            );
            if let Some(c) = check.convergence {
                println!(
                    "  convergence    : {} keys, {} divergent, {} stale replicas — {}",
                    c.keys_checked,
                    c.divergent_keys,
                    c.stale_replicas,
                    if c.converged() { "CONVERGED" } else { "DIVERGED" },
                );
            }
            println!("  event errors   : {}", run.event_errors);
        }
        if !check.is_clean() || run.event_errors > 0 {
            eprintln!(
                "history checker FAILED: {check:?} (event errors: {})",
                run.event_errors
            );
            std::process::exit(1);
        }
    }
}
