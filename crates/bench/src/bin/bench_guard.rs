//! `bench_guard` — the CI bench-regression gate.
//!
//! Reads a `BENCH_JSON` summary (the criterion shim's format), finds one
//! benchmark by label, and fails (exit 1) when its `elements_per_sec`
//! falls below a floor — CI uses it to keep the open-loop hot path from
//! silently regressing past 0.9× the previous PR's baseline:
//!
//! ```text
//! cargo run -p pbs-bench --release --bin bench_guard -- \
//!     --file BENCH_5.json --bench open_loop/64_clients_10k_ops --min 271591
//! ```
//!
//! `--metric <name>` gates an entry of the summary's `metrics` array (the
//! `{"name": ..., "value": ...}` objects emitted via `record_metric`)
//! instead of a benchmark's `elements_per_sec` — CI uses it to floor the
//! parallel-engine profile figures:
//!
//! ```text
//! cargo run -p pbs-bench --release --bin bench_guard -- \
//!     --file BENCH_7.json --metric profile_w2_best_ops_per_sec --min 100000
//! ```
//!
//! `--max <ceiling>` gates from above instead of (or as well as) below —
//! CI uses it to cap memory metrics like the client tables'
//! bytes-per-client budget:
//!
//! ```text
//! cargo run -p pbs-bench --release --bin bench_guard -- \
//!     --file BENCH_9.json --metric mem_c100000_table_bytes_per_client --max 128
//! ```
//!
//! The parser is deliberately narrow: it understands exactly the
//! line-oriented JSON the shim writes (one object per line), which keeps
//! the gate dependency-free.

use pbs_bench::cli::Args;

/// Extract `"field": <number>` from a single-line JSON object.
fn field_f64(line: &str, field: &str) -> Option<f64> {
    let needle = format!("\"{field}\": ");
    let start = line.find(&needle)? + needle.len();
    let rest = &line[start..];
    let end = rest.find([',', '}']).unwrap_or(rest.len());
    rest[..end].trim().parse().ok()
}

fn main() {
    let args = Args::parse();
    args.reject_unknown(&["file", "bench", "metric", "min", "max"]);
    let file = args.value_of("file").unwrap_or("BENCH_5.json").to_string();
    let metric = args.value_of("metric").map(str::to_string);
    let bench = args
        .value_of("bench")
        .unwrap_or("open_loop/64_clients_10k_ops")
        .to_string();
    let min: Option<f64> = args.parsed("min");
    let max: Option<f64> = args.parsed("max");
    if min.is_none() && max.is_none() {
        eprintln!("--min <floor> and/or --max <ceiling> is required");
        std::process::exit(2);
    }

    let content = match std::fs::read_to_string(&file) {
        Ok(c) => c,
        Err(e) => {
            eprintln!("bench_guard: cannot read {file}: {e}");
            std::process::exit(1);
        }
    };
    // `--metric` gates a named scalar from the `metrics` array; the
    // default gates a benchmark's `elements_per_sec`.
    let (what, needle, field) = match &metric {
        Some(name) => (name.clone(), format!("\"name\": \"{name}\""), "value"),
        None => (bench.clone(), format!("\"label\": \"{bench}\""), "elements_per_sec"),
    };
    let Some(line) = content.lines().find(|l| l.contains(&needle)) else {
        eprintln!("bench_guard: no entry matching {what:?} in {file}");
        std::process::exit(1);
    };
    let Some(actual) = field_f64(line, field) else {
        eprintln!("bench_guard: {what:?} has no {field} field: {line}");
        std::process::exit(1);
    };
    match check(&what, actual, min, max) {
        Ok(lines) => {
            for l in lines {
                println!("{l}");
            }
        }
        Err(msg) => {
            eprintln!("{msg}");
            std::process::exit(1);
        }
    }
}

/// Check `actual` against an optional floor and ceiling; returns the OK
/// report lines, or the regression message for the first violated bound.
fn check(what: &str, actual: f64, min: Option<f64>, max: Option<f64>) -> Result<Vec<String>, String> {
    let mut lines = Vec::new();
    if let Some(min) = min {
        if actual < min {
            return Err(format!(
                "bench_guard: REGRESSION — {what} ran at {actual:.1}, below the floor of {min:.1}"
            ));
        }
        lines.push(format!(
            "bench_guard: OK — {what} at {actual:.1} (floor {min:.1}, {:.2}× headroom)",
            actual / min
        ));
    }
    if let Some(max) = max {
        if actual > max {
            return Err(format!(
                "bench_guard: REGRESSION — {what} ran at {actual:.1}, above the ceiling of {max:.1}"
            ));
        }
        lines.push(format!(
            "bench_guard: OK — {what} at {actual:.1} (ceiling {max:.1}, {:.2}× headroom)",
            max / actual.max(f64::MIN_POSITIVE)
        ));
    }
    Ok(lines)
}

#[cfg(test)]
mod tests {
    use super::field_f64;

    #[test]
    fn extracts_fields_from_shim_lines() {
        let line = r#"    {"label": "open_loop/64_clients_10k_ops", "mean_ns_per_iter": 15259062.4, "iters": 20, "elements_per_iter": 10000, "elements_per_sec": 655348.3},"#;
        assert_eq!(field_f64(line, "elements_per_sec"), Some(655348.3));
        assert_eq!(field_f64(line, "iters"), Some(20.0));
        assert_eq!(field_f64(line, "missing"), None);
    }

    #[test]
    fn extracts_metric_values() {
        let line = r#"    {"name": "profile_w2_best_ops_per_sec", "value": 123456.7},"#;
        assert_eq!(field_f64(line, "value"), Some(123456.7));
    }

    #[test]
    fn floor_and_ceiling_bounds() {
        use super::check;
        // Floor only: pass above, fail below.
        assert!(check("m", 100.0, Some(90.0), None).is_ok());
        assert!(check("m", 80.0, Some(90.0), None).is_err());
        // Ceiling only: the memory-budget shape.
        assert!(check("m", 106.0, None, Some(128.0)).is_ok());
        assert!(check("m", 140.0, None, Some(128.0)).is_err());
        // Band: both bounds at once, exact bounds inclusive.
        assert_eq!(check("m", 128.0, Some(128.0), Some(128.0)).map(|l| l.len()), Ok(2));
        assert!(check("m", 127.9, Some(128.0), Some(128.0)).is_err());
    }
}
