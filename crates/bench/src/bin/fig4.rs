//! Figure 4 — t-visibility with exponential latency distributions for `W`
//! and fixed `A=R=S` (§5.3). `N=3, R=W=1`; the W:ARS rate ratio sweeps
//! {1:4, 1:2, 1:1, 1:0.5, 1:0.2, 1:0.1} with ARS λ=1 (mean 1 ms).

use pbs_bench::{report, HarnessOptions};
use pbs_core::ReplicaConfig;
use pbs_wars::production::exponential_model;
use pbs_wars::sweep::lin_spaced;
use pbs_wars::TVisibility;

fn main() {
    let opts = HarnessOptions::parse(200_000);
    println!("Figure 4: t-visibility under exponential W, A=R=S λ=1 (§5.3); N=3, R=W=1");

    let cfg = ReplicaConfig::new(3, 1, 1).unwrap();
    let ratios: [(f64, &str); 6] =
        [(4.0, "1:4"), (2.0, "1:2"), (1.0, "1:1"), (0.5, "1:0.50"), (0.2, "1:0.20"), (0.1, "1:0.10")];
    let ts = lin_spaced(0.0, 10.0, 21);

    let runs: Vec<(&str, TVisibility)> = ratios
        .iter()
        .map(|&(w_rate, label)| {
            let model = exponential_model(cfg, w_rate, 1.0);
            (label, TVisibility::simulate_parallel(&model, opts.trials, opts.seed, opts.threads))
        })
        .collect();

    report::header("P(consistency) vs t (ms), one column per ARSλ:Wλ ratio");
    let mut rows = Vec::new();
    for &t in &ts {
        let mut row = vec![format!("{t:.1}")];
        for (_, tv) in &runs {
            row.push(format!("{:.4}", tv.prob_consistent(t)));
        }
        rows.push(row);
    }
    let labels: Vec<&str> = ratios.iter().map(|(_, l)| *l).collect();
    report::table(&report::labeled_cols("t", &labels), &rows);

    report::header("Key points (paper §5.3)");
    let mut rows = Vec::new();
    for (label, tv) in &runs {
        rows.push(vec![
            label.to_string(),
            report::pct(tv.prob_consistent(0.0)),
            report::opt_ms(tv.t_at_probability(0.999)),
        ]);
    }
    report::table(&["ARSλ:Wλ", "P(consistent) at t=0", "t @ 99.9%"], &rows);
    println!("(paper: λ=4 → 94% at t=0, 99.9% at ~1ms; λ=0.1 → 41% at t=0, 99.9% at ~65ms)");
}
