//! Open-loop throughput sweep: arrival rate × `(N, R, W)` on the in-sim
//! client-actor engine.
//!
//! For each configuration the harness runs thousands of concurrent
//! open-loop clients (arrivals never wait for completions), reports
//! achieved ops/sec and latency quantiles from the streaming
//! `QuantileSketch` summaries, and compares *measured* consistency against
//! the `pbs-predictor` expectation for Poisson write traffic
//! (`Predictor::expected_consistency_under_poisson`).
//!
//! Headline behaviour: consistency degrades as the arrival rate drives
//! per-key write inter-arrivals toward the write-propagation tail (the
//! store's service capacity for fresh reads, ≈ `keys / E[W-leg]` writes
//! per second here). At low rates measured and predicted agree within a
//! few percent; at saturation reads race propagation and staleness
//! climbs.
//!
//! ```text
//! cargo run -p pbs-bench --release --bin throughput
//! cargo run -p pbs-bench --release --bin throughput -- --quick --trials 2
//! ```
//!
//! `--trials` is the number of whole-workload replica runs (sharded
//! deterministically; bit-reproducible per `(seed, threads)`).

use pbs_bench::{cli, report};
use pbs_core::ReplicaConfig;
use pbs_dist::DynDistribution;
use pbs_dist::Exponential;
use pbs_kvs::{
    run_open_loop_sharded, ClientOptions, ClusterOptions, NetworkModel, OpenLoopOptions,
    OpenLoopReport,
};
use pbs_predictor::Predictor;
use pbs_wars::IidModel;
use pbs_workload::{OpMix, OpSource, OpStream, Poisson, UniformKeys};
use std::sync::Arc;

/// Write-propagation mean (disk-like, LNKD-DISK-ish).
const W_MEAN_MS: f64 = 10.0;
/// Ack/read/response mean.
const ARS_MEAN_MS: f64 = 2.0;
/// LinkedIn-style read fraction (§5.4).
const READ_FRACTION: f64 = 0.6;

fn dists() -> (DynDistribution, DynDistribution) {
    (
        Arc::new(Exponential::from_mean(W_MEAN_MS)),
        Arc::new(Exponential::from_mean(ARS_MEAN_MS)),
    )
}

#[allow(clippy::too_many_arguments)]
fn run_point(
    cfg: ReplicaConfig,
    rate_per_sec: f64,
    clients: usize,
    keys: u64,
    duration_ms: f64,
    trials: usize,
    seed: u64,
    threads: usize,
) -> OpenLoopReport {
    let mut opts = ClusterOptions::validation(cfg, seed);
    opts.op_timeout_ms = 2_000.0;
    let (w, ars) = dists();
    let network = NetworkModel::w_ars(w, ars);
    let engine = OpenLoopOptions::new(duration_ms, 500.0, opts.op_timeout_ms);
    let per_client = rate_per_sec / clients as f64;
    run_open_loop_sharded(
        opts,
        &network,
        &engine,
        clients,
        ClientOptions { op_timeout_ms: opts.op_timeout_ms, ..ClientOptions::default() },
        trials,
        threads,
        move |_client, _run_seed| -> Box<dyn OpSource> {
            Box::new(OpStream::new(
                Poisson::per_second(per_client),
                UniformKeys::new(keys),
                OpMix::new(READ_FRACTION),
                1,
            ))
        },
        |_| {},
    )
}

fn main() {
    let args = cli::Args::parse();
    args.reject_unknown(&[
        "quick", "trials", "seed", "threads", "clients", "keys", "duration-ms",
    ]);
    let quick = args.flag("quick");
    let trials = args.parsed::<usize>("trials").unwrap_or(if quick { 2 } else { 4 });
    let seed = args.parsed::<u64>("seed").unwrap_or(42);
    let threads = args
        .parsed::<usize>("threads")
        .unwrap_or_else(pbs_mc::Runner::available_threads);
    let clients = args.parsed::<usize>("clients").unwrap_or(256);
    let keys = args.parsed::<u64>("keys").unwrap_or(64);
    let duration_ms =
        args.parsed::<f64>("duration-ms").unwrap_or(if quick { 2_000.0 } else { 8_000.0 });
    let pred_trials = if quick { 20_000 } else { 100_000 };

    let rates: &[f64] = if quick { &[200.0, 5_000.0, 20_000.0] } else { &[200.0, 1_000.0, 5_000.0, 20_000.0] };
    let configs = [(3u32, 1u32, 1u32), (3, 1, 2), (3, 2, 2)];

    println!("Open-loop throughput sweep: {clients} in-sim client actors, {keys} keys,");
    println!(
        "{duration_ms} ms per run × {trials} replica runs, exp writes E[W]={W_MEAN_MS}ms, \
         E[A]=E[R]=E[S]={ARS_MEAN_MS}ms, {}% reads",
        READ_FRACTION * 100.0
    );
    println!(
        "Fresh-read capacity ≈ keys/E[W] = {:.0} writes/s: per-key write inter-arrivals",
        keys as f64 * 1000.0 / W_MEAN_MS
    );
    println!("approach the propagation tail there and partial-quorum consistency degrades.");

    let mut peak_heap = 0u64;
    for &(n, r, w) in &configs {
        let cfg = ReplicaConfig::new(n, r, w).unwrap();
        let (wd, ars) = dists();
        let model = IidModel::w_ars(cfg, format!("sweep N={n} R={r} W={w}"), wd, ars);
        let predictor = Predictor::from_model_threads(&model, pred_trials, seed, threads);

        report::header(&format!("N={n}, R={r}, W={w}"));
        let mut rows = Vec::new();
        for &rate in rates {
            let rep = run_point(cfg, rate, clients, keys, duration_ms, trials, seed, threads);
            peak_heap = peak_heap.max(rep.peak_pending_events);
            let measured = rep.consistency_rate();
            // Predict from the *measured* committed-write rate per key —
            // the paper's "easily collected" operational metric.
            let commit_rate_per_ms =
                rep.commits as f64 / rep.runs as f64 / duration_ms / keys as f64;
            let predicted = if commit_rate_per_ms > 0.0 {
                Some(predictor.expected_consistency_under_poisson(commit_rate_per_ms))
            } else {
                None
            };
            rows.push(vec![
                format!("{rate:.0}"),
                format!("{:.0}", rep.achieved_ops_per_sec()),
                report::pct(measured),
                predicted.map(report::pct).unwrap_or_else(|| "-".into()),
                predicted
                    .map(|p| format!("{:.3}", (p - measured).abs()))
                    .unwrap_or_else(|| "-".into()),
                report::ms(rep.read_latency.percentile(50.0)),
                report::ms(rep.read_latency.percentile(99.0)),
                report::ms(rep.write_latency.percentile(50.0)),
                report::ms(rep.write_latency.percentile(99.0)),
                format!("{:.4}", rep.monotonic_violation_rate()),
                rep.shed.to_string(),
            ]);
        }
        report::table(
            &[
                "offered/s", "achieved/s", "P(consistent)", "predicted", "|err|",
                "read p50", "read p99", "write p50", "write p99", "mono viol", "shed",
            ],
            &rows,
        );
    }

    println!();
    println!(
        "Memory note: peak event-heap across every run was {peak_heap} entries — bounded by"
    );
    println!(
        "clients + in-flight ops, not workload length (the old run_trace path pre-injected"
    );
    println!("the entire trace).");
    println!();
    println!("Expected shape: at low offered rates measured ≈ predicted (within ±0.05 on");
    println!("stationary segments); as the rate approaches fresh-read capacity, reads race");
    println!("write propagation and partial-quorum (R+W≤N) consistency falls while strict");
    println!("quorums stay at 100% and pay the straggler tail in latency.");
}
