//! §3.3 — load and capacity under staleness tolerance: the k-staleness
//! load lower bound `(1 − p^{1/(2k)})/√N` versus the strict and
//! ε-intersecting bounds, plus measured loads of real constructions.

use pbs_bench::{report, HarnessOptions};
use pbs_core::load;
use pbs_quorum::{analysis, Grid, Majority, QuorumSystem, RandomFixed, TreeQuorum};

fn main() {
    let opts = HarnessOptions::parse(100_000);
    println!("Quorum-system load under staleness tolerance (paper §3.3)");

    report::header("Load lower bounds vs. staleness tolerance k (N=9)");
    let n = 9u32;
    let ps = [0.1f64, 0.01, 0.001];
    let mut rows = Vec::new();
    rows.push(vec![
        "strict (1/√N)".to_string(),
        String::new(),
        format!("{:.4}", load::strict_load_lower_bound(n)),
        format!("{:.2}", load::capacity_from_load(load::strict_load_lower_bound(n))),
    ]);
    for &p in &ps {
        for k in [1u32, 2, 5, 10] {
            let bound = load::k_staleness_load_lower_bound(n, p, k);
            rows.push(vec![
                format!("k-staleness, p={p}"),
                format!("k={k}"),
                format!("{bound:.4}"),
                format!("{:.2}", load::capacity_from_load(bound)),
            ]);
        }
    }
    report::table(&["system", "k", "load ≥", "capacity ≤ 1/load"], &rows);
    println!("(staleness tolerance exponentially lowers the load floor → higher capacity)");

    report::header("Monotonic-reads load bound (N=9, p=0.01)");
    let mut rows = Vec::new();
    for &(gw, cr) in &[(0.1f64, 1.0f64), (1.0, 1.0), (4.0, 1.0)] {
        let bound = load::monotonic_reads_load_lower_bound(n, 0.01, gw, cr);
        rows.push(vec![
            format!("{gw}"),
            format!("{cr}"),
            format!("{:.2}", 1.0 + gw / cr),
            format!("{bound:.4}"),
        ]);
    }
    report::table(&["γgw", "γcr", "effective k", "load ≥"], &rows);

    report::header("Measured load of classic constructions (uniform strategy)");
    let systems: Vec<Box<dyn QuorumSystem>> = vec![
        Box::new(Majority::new(9)),
        Box::new(Grid::new(3)),
        Box::new(TreeQuorum::new(3, 0.0)),
        Box::new(TreeQuorum::new(3, 0.3)),
        Box::new(RandomFixed::new(9, 3, 3)),
        Box::new(RandomFixed::new(9, 1, 1)),
    ];
    let mut rows = Vec::new();
    for sys in &systems {
        let l = analysis::measure_load(sys.as_ref(), opts.trials, opts.seed);
        let p_int = analysis::intersection_probability(sys.as_ref(), opts.trials, opts.seed + 1);
        rows.push(vec![
            sys.name(),
            format!("{l:.4}"),
            format!("{:.4}", 1.0 / l),
            report::pct(p_int),
        ]);
    }
    report::table(&["system", "load", "capacity", "P(intersect)"], &rows);
}
