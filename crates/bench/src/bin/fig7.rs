//! Figure 7 — t-visibility vs. replication factor `N ∈ {2,3,5,10}` with
//! `R=W=1` (§5.7), for LNKD-DISK, LNKD-SSD, and WAN.

use pbs_bench::{report, HarnessOptions};
use pbs_wars::production::ProductionProfile;
use pbs_wars::sweep::{lin_spaced, replication_factor_sweep};

fn main() {
    let opts = HarnessOptions::parse(150_000);
    println!("Figure 7: t-visibility vs replication factor (§5.7), R=W=1");

    let ns = [2u32, 3, 5, 10];
    for profile in
        [ProductionProfile::LnkdDisk, ProductionProfile::LnkdSsd, ProductionProfile::Wan]
    {
        let ts: Vec<f64> = match profile {
            ProductionProfile::LnkdSsd => lin_spaced(0.0, 2.0, 9),
            ProductionProfile::LnkdDisk => lin_spaced(0.0, 20.0, 11),
            _ => lin_spaced(0.0, 90.0, 10),
        };
        let runs = replication_factor_sweep(
            &|cfg| profile.model(cfg),
            &ns,
            opts.trials,
            opts.seed,
            opts.threads,
        );

        report::header(&format!("{} — P(consistency) vs t (ms)", profile.name()));
        let mut rows = Vec::new();
        for &t in &ts {
            let mut row = vec![format!("{t:.1}")];
            for (_, tv) in &runs {
                row.push(format!("{:.4}", tv.prob_consistent(t)));
            }
            rows.push(row);
        }
        let labels: Vec<String> = ns.iter().map(|n| format!("N={n}")).collect();
        report::table(&report::labeled_cols("t", &labels), &rows);

        let mut rows = Vec::new();
        for (n, tv) in &runs {
            rows.push(vec![
                format!("N={n}"),
                report::pct(tv.prob_consistent(0.0)),
                report::opt_ms(tv.t_at_probability(0.999)),
            ]);
        }
        report::table(&["config", "P(consistent) at t=0", "t @ 99.9% (ms)"], &rows);
    }
    println!();
    println!("(paper, LNKD-DISK: t=0 consistency 57.5% at N=2 → 21.1% at N=10,");
    println!(" while t @ 99.9% only grows 45.3ms → 53.7ms)");
}
