//! Tables 1–3 — production latency percentiles and the Pareto+Exponential
//! mixture fits (§5.4–5.5).
//!
//! Table 1/2 are *inputs* (published summary statistics). This harness
//! (a) shows the paper's Table 3 fits and the operation-level percentiles
//! they imply, and (b) re-runs the fitting procedure from the published
//! percentile targets with our Nelder–Mead quantile matcher, reporting
//! parameters and N-RMSE side by side.

use pbs_bench::{report, HarnessOptions};
use pbs_core::ReplicaConfig;
use pbs_dist::fit::{fit_mixture_to_percentiles, PercentileTarget};
use pbs_dist::production as fits;
use pbs_dist::LatencyDistribution;
use pbs_wars::production::{lnkd_disk_model, lnkd_ssd_model, ymmr_model};
use pbs_wars::TVisibility;

fn show_fit_percentiles(name: &str, dist: &dyn LatencyDistribution, rows: &mut Vec<Vec<String>>) {
    for &pct in &[50.0, 95.0, 99.0, 99.9] {
        rows.push(vec![
            name.to_string(),
            format!("{pct}"),
            report::ms(dist.quantile(pct / 100.0)),
        ]);
    }
}

fn main() {
    let opts = HarnessOptions::parse(200_000);

    println!("Tables 1–3: production latency distributions and mixture fits (§5.4–5.5)");

    // ---- Table 3 as published ------------------------------------------------
    report::header("Table 3 — published one-way fits (this library's presets)");
    let rows = vec![
        vec!["LNKD-SSD W=A=R=S".into(), fits::lnkd_ssd().describe()],
        vec!["LNKD-DISK W".into(), fits::lnkd_disk_write().describe()],
        vec!["LNKD-DISK A=R=S".into(), "same as LNKD-SSD".into()],
        vec!["YMMR W".into(), fits::ymmr_write().describe()],
        vec!["YMMR A=R=S".into(), fits::ymmr_ars().describe()],
    ];
    report::table(&["component", "mixture"], &rows);

    report::header("One-way quantiles of the published fits");
    let mut rows = Vec::new();
    show_fit_percentiles("LNKD-SSD", &fits::lnkd_ssd(), &mut rows);
    show_fit_percentiles("LNKD-DISK W", &fits::lnkd_disk_write(), &mut rows);
    show_fit_percentiles("YMMR W", &fits::ymmr_write(), &mut rows);
    show_fit_percentiles("YMMR A=R=S", &fits::ymmr_ars(), &mut rows);
    report::table(&["fit", "pct", "one-way ms"], &rows);

    // ---- Operation-level comparison vs. Table 1/2 -----------------------------
    report::header("Implied operation latencies vs. published Tables 1–2");
    println!("Single-node op ≈ one round trip; Voldemort (Table 1) is per-node,");
    println!("Yammer (Table 2) ran N=3, R=W=2 — we simulate those exact shapes.");
    let mut rows = Vec::new();

    // Table 1: single-node Voldemort (N=1, R=W=1 → op = W + A one-way pair).
    for (name, model, published) in [
        (
            "LNKD-DISK (Table 1 disk)",
            lnkd_disk_model(ReplicaConfig::new(1, 1, 1).unwrap()),
            fits::table1_disk_targets(),
        ),
        (
            "LNKD-SSD (Table 1 SSD)",
            lnkd_ssd_model(ReplicaConfig::new(1, 1, 1).unwrap()),
            fits::table1_ssd_targets(),
        ),
    ] {
        let tv = TVisibility::simulate_parallel(&model, opts.trials, opts.seed, opts.threads);
        let (targets, avg) = published;
        for t in &targets {
            rows.push(vec![
                name.to_string(),
                format!("p{}", t.pct),
                report::ms(tv.write_latency_percentile(t.pct)),
                report::ms(t.value_ms),
            ]);
        }
        let mean: f64 = tv.write_latencies().mean();
        rows.push(vec![name.to_string(), "mean".into(), report::ms(mean), report::ms(avg)]);
    }

    // Table 2: Yammer Riak, N=3, R=W=2.
    let ymmr = ymmr_model(ReplicaConfig::new(3, 2, 2).unwrap());
    let tv = TVisibility::simulate_parallel(&ymmr, opts.trials, opts.seed, opts.threads);
    for t in fits::table2_read_targets() {
        rows.push(vec![
            "YMMR reads (Table 2)".into(),
            format!("p{}", t.pct),
            report::ms(tv.read_latency_percentile(t.pct)),
            report::ms(t.value_ms),
        ]);
    }
    for t in fits::table2_write_targets() {
        rows.push(vec![
            "YMMR writes (Table 2)".into(),
            format!("p{}", t.pct),
            report::ms(tv.write_latency_percentile(t.pct)),
            report::ms(t.value_ms),
        ]);
    }
    report::table(&["workload", "pct", "simulated ms", "published ms"], &rows);

    // ---- Refit from the published targets ------------------------------------
    report::header("Refitting mixtures from published percentiles (our Nelder–Mead)");
    let mut rows = Vec::new();
    // YMMR reads/writes have rich percentile tables → fit directly.
    for (name, targets, published_nrmse) in [
        ("YMMR write ops", fits::table2_write_targets(), fits::published_nrmse::YMMR_W),
        ("YMMR read ops", fits::table2_read_targets(), fits::published_nrmse::YMMR_ARS),
    ] {
        // Drop the min (p0) target: a two-component mixture's support starts
        // at min(xm, 0), making p0 uninformative.
        let t: Vec<PercentileTarget> = targets.into_iter().filter(|t| t.pct > 0.0).collect();
        let fit = fit_mixture_to_percentiles(&t);
        rows.push(vec![
            name.to_string(),
            format!(
                "{:.1}%: Pareto(xm={:.3}, α={:.3}) + {:.1}%: Exp(λ={:.5})",
                fit.pareto_weight * 100.0,
                fit.xm,
                fit.alpha,
                (1.0 - fit.pareto_weight) * 100.0,
                fit.lambda
            ),
            format!("{:.3}%", fit.n_rmse * 100.0),
            format!("{published_nrmse:.2}% (paper, one-way)"),
        ]);
    }
    report::table(&["series", "refit mixture", "our N-RMSE", "paper N-RMSE"], &rows);
    println!("(The paper fit one-way latencies under IID assumptions; we refit the published");
    println!(" operation-level percentiles, so parameters differ while N-RMSE is comparable.)");
}
