//! Figure 6 — t-visibility for production operation latencies (§5.6):
//! LNKD-SSD, LNKD-DISK, WAN, YMMR with N=3 and (R,W) ∈ {(1,1),(1,2),(2,1)}.

use pbs_bench::{report, HarnessOptions};
use pbs_core::ReplicaConfig;
use pbs_wars::production::ProductionProfile;
use pbs_wars::sweep::log_spaced;
use pbs_wars::TVisibility;

fn main() {
    let opts = HarnessOptions::parse(200_000);
    println!("Figure 6: t-visibility for production fits (§5.6), N=3");

    let quorums = [(1u32, 1u32), (1, 2), (2, 1)];

    for profile in ProductionProfile::ALL {
        // Match each panel's x-range to the paper's.
        let ts: Vec<f64> = match profile {
            ProductionProfile::LnkdSsd => log_spaced(0.1, 2.0, 10),
            ProductionProfile::LnkdDisk => log_spaced(1.0, 300.0, 12),
            ProductionProfile::Wan => log_spaced(1.0, 300.0, 12),
            ProductionProfile::Ymmr => log_spaced(1.0, 3000.0, 12),
        };
        let runs: Vec<((u32, u32), TVisibility)> = quorums
            .iter()
            .map(|&(r, w)| {
                let cfg = ReplicaConfig::new(3, r, w).unwrap();
                ((r, w), TVisibility::simulate_parallel(profile.model(cfg).as_ref(), opts.trials, opts.seed, opts.threads))
            })
            .collect();

        report::header(&format!("{} — P(consistency) vs t (ms)", profile.name()));
        let mut rows = Vec::new();
        // t = 0 row first, then the log-spaced grid.
        let mut all_ts = vec![0.0];
        all_ts.extend(ts.iter().copied());
        for &t in &all_ts {
            let mut row = vec![format!("{t:.2}")];
            for (_, tv) in &runs {
                row.push(format!("{:.5}", tv.prob_consistent(t)));
            }
            rows.push(row);
        }
        let labels: Vec<String> =
            quorums.iter().map(|(r, w)| format!("R={r} W={w}")).collect();
        report::table(&report::labeled_cols("t", &labels), &rows);
    }

    report::header("Immediate consistency, P(consistent at t=0), R=W=1 (paper §5.6)");
    let mut rows = Vec::new();
    for profile in ProductionProfile::ALL {
        let cfg = ReplicaConfig::new(3, 1, 1).unwrap();
        let tv = TVisibility::simulate_parallel(profile.model(cfg).as_ref(), opts.trials, opts.seed, opts.threads);
        let paper = match profile {
            ProductionProfile::LnkdSsd => "97.4%",
            ProductionProfile::LnkdDisk => "43.9%",
            ProductionProfile::Ymmr => "89.3%",
            ProductionProfile::Wan => "~33%",
        };
        rows.push(vec![
            profile.name().to_string(),
            report::pct(tv.prob_consistent(0.0)),
            paper.to_string(),
        ]);
    }
    report::table(&["profile", "measured", "paper"], &rows);
}
