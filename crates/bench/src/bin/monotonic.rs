//! §3.2 — PBS monotonic reads: Eq. 3 closed form, with the session-model
//! simulation validating the `k = 1 + γgw/γcr` exponent.

use pbs_bench::{report, HarnessOptions};
use pbs_core::{staleness, ReplicaConfig};
use pbs_workload::SessionModel;
use rand::rngs::StdRng;
use rand::SeedableRng;

fn main() {
    let opts = HarnessOptions::parse(100_000);
    println!("PBS monotonic reads (paper §3.2, Equation 3)");
    println!("p_sMR = p_s^(1 + γgw/γcr)");

    report::header("Violation probability vs. write/read rate ratio");
    let ratios = [0.1f64, 0.5, 1.0, 2.0, 5.0, 10.0];
    let configs = [(3u32, 1u32, 1u32), (3, 1, 2), (3, 2, 1), (2, 1, 1)];
    let mut rows = Vec::new();
    for (n, r, w) in configs {
        let cfg = ReplicaConfig::new(n, r, w).unwrap();
        let mut row = vec![cfg.to_string()];
        for &ratio in &ratios {
            // γgw = ratio, γcr = 1.
            row.push(format!("{:.4}", staleness::monotonic_reads_violation(cfg, ratio, 1.0)));
        }
        rows.push(row);
    }
    let ratio_labels: Vec<String> = ratios.iter().map(|r| format!("γgw/γcr={r}")).collect();
    report::table(&report::labeled_cols("config", &ratio_labels), &rows);

    report::header("Session simulation: empirical k vs. 1 + γgw/γcr");
    let mut rows = Vec::new();
    let mut rng = StdRng::seed_from_u64(opts.seed);
    for &(gw, cr) in &[(0.5f64, 1.0f64), (1.0, 1.0), (4.0, 1.0), (0.2, 2.0)] {
        let session = SessionModel::new(gw, cr);
        let emp = session.empirical_k(&mut rng, opts.trials);
        rows.push(vec![
            format!("{gw}"),
            format!("{cr}"),
            format!("{:.4}", session.k()),
            format!("{emp:.4}"),
            format!("{:+.4}", emp - session.k()),
        ]);
    }
    report::table(&["γgw", "γcr", "k (Eq. 3)", "k (simulated)", "error"], &rows);

    report::header("Strict vs. plain monotonic reads (N=3, R=W=1)");
    let cfg = ReplicaConfig::new(3, 1, 1).unwrap();
    let mut rows = Vec::new();
    for &ratio in &ratios {
        rows.push(vec![
            format!("{ratio}"),
            format!("{:.4}", staleness::monotonic_reads_violation(cfg, ratio, 1.0)),
            format!("{:.4}", staleness::strict_monotonic_reads_violation(cfg, ratio, 1.0)),
        ]);
    }
    report::table(&["γgw/γcr", "monotonic", "strict monotonic"], &rows);
}
