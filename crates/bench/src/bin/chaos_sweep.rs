//! CI seed-sweep chaos gate: many seeded adversarial runs — scheduled
//! fault storms plus per-seed crash timelines, on the serial **and** the
//! parallel engine — each audited by the full offline checker (session
//! replay, label recount, per-key order oracle). Any unclean report, or
//! any serial/parallel divergence, dumps the offending op history as an
//! artifact and fails the process.
//!
//! ```text
//! chaos_sweep [--seeds N] [--seed BASE] [--workers W] [--out DIR] [--quick]
//! ```
//!
//! Defaults: 32 seeds from base 1, 2 PDES workers, artifacts under
//! `target/chaos-artifacts`. `--quick` trims to 8 seeds for local smoke.

use pbs_bench::cli;
use pbs_dist::Pareto;
use pbs_kvs::checker::{check_run, CheckReport, OpHistory, OrderViolation};
use pbs_kvs::cluster::EngineKind;
use pbs_kvs::{
    run_open_loop_on, ClientOptions, ClusterOptions, FaultProfile, FaultSchedule, NetworkModel,
    OpenLoopOptions,
};
use pbs_core::ReplicaConfig;
use pbs_sim::SimTime;
use pbs_workload::{OpMix, OpSource, OpStream, Poisson, UniformKeys};
use std::io::Write as _;
use std::path::{Path, PathBuf};
use std::sync::Arc;

const KNOWN: &[&str] = &["seeds", "seed", "workers", "out", "quick"];

const NODES: u32 = 8;

fn pareto_net() -> NetworkModel {
    NetworkModel::w_ars(Arc::new(Pareto::new(1.5, 1.2)), Arc::new(Pareto::new(0.8, 2.0)))
}

fn opts(seed: u64) -> ClusterOptions {
    let mut o = ClusterOptions::validation(ReplicaConfig::new(3, 1, 1).unwrap(), seed);
    o.nodes = NODES;
    o.op_timeout_ms = 2_000.0;
    o
}

fn source() -> Box<dyn OpSource> {
    Box::new(OpStream::new(Poisson::per_second(30.0), UniformKeys::new(8), OpMix::new(0.5), 1))
}

/// Per-seed crash timeline: which node goes down, when, for how long, and
/// whether mid-storm or mid-calm — so the sweep covers crash-during-storm
/// and crash-after-storm interleavings without per-seed hand-tuning.
fn crash_plan(seed: u64) -> (usize, f64, f64) {
    let node = (seed % NODES as u64) as usize;
    let at = 300.0 + (seed % 5) as f64 * 150.0; // 300..900: inside or after the storm
    let down = 200.0 + (seed % 3) as f64 * 100.0;
    (node, at, down)
}

/// One audited run. The storm schedule ramps in at 300 ms and clears at
/// 900 ms; the crash comes from [`crash_plan`].
fn run(kind: EngineKind, seed: u64) -> (OpHistory, CheckReport) {
    let engine = OpenLoopOptions::new(1_200.0, 300.0, 1_500.0);
    let (node, at, down) = crash_plan(seed);
    let mut history = OpHistory::new();
    let mut check = CheckReport::default();
    run_open_loop_on(
        kind,
        opts(seed),
        &pareto_net(),
        &engine,
        6,
        ClientOptions { op_timeout_ms: 2_000.0, ..ClientOptions::default() },
        |_| source(),
        |cluster| {
            cluster.enable_history();
            cluster
                .network()
                .set_fault_schedule(FaultSchedule::calm_storm_calm(
                    FaultProfile::storm(seed),
                    300.0,
                    900.0,
                ))
                .unwrap();
            cluster.crash_node_at(node, SimTime::from_ms(at), down);
        },
        |cluster| {
            history = cluster.take_history();
            check = check_run(&history, cluster, false);
        },
    )
    .expect("positive-minimum model partitions cleanly");
    (history, check)
}

fn violation_key(v: &OrderViolation) -> u64 {
    match v {
        OrderViolation::LostUpdate { key, .. }
        | OrderViolation::NonMonotoneExposure { key, .. }
        | OrderViolation::PhantomVersion { key, .. } => *key,
    }
}

/// Dump the history for offline replay — minimized to the keys named by
/// the order-oracle violations when there are any, full otherwise (a
/// session/label disagreement has no single offending key).
fn dump_history(
    dir: &Path,
    tag: &str,
    seed: u64,
    history: &OpHistory,
    check: &CheckReport,
) -> PathBuf {
    std::fs::create_dir_all(dir).expect("create artifact dir");
    let path = dir.join(format!("seed-{seed}-{tag}.history.txt"));
    let mut f = std::fs::File::create(&path).expect("create artifact");
    writeln!(f, "# chaos_sweep failing run: seed={seed} engine={tag}").unwrap();
    writeln!(f, "# verdict: {check:?}").unwrap();
    for c in history.crashes() {
        writeln!(
            f,
            "crash node={} at_ms={} down_ms={} wipe={}",
            c.node,
            c.at.as_ms(),
            c.down_ms,
            c.wipe
        )
        .unwrap();
    }
    let bad_keys: Vec<u64> = [
        check.order.first_lost_update,
        check.order.first_non_monotone,
        check.order.first_phantom,
    ]
    .iter()
    .flatten()
    .map(violation_key)
    .collect();
    let mut dumped = 0usize;
    for hop in history.ops() {
        let op = &hop.op;
        if !bad_keys.is_empty() && !bad_keys.contains(&op.key) {
            continue;
        }
        dumped += 1;
        writeln!(
            f,
            "op id={} client={} kind={:?} key={} start_ms={:.6} finish_ms={:?} seq={:?} \
             writer={:?} source={:?} mask={:#x} commit_ms={:?} label={:?}",
            op.op_id,
            op.client,
            op.kind,
            op.key,
            op.start.as_ms(),
            op.finish.map(|t| t.as_ms()),
            op.seq,
            op.writer,
            op.source,
            op.quorum_mask,
            op.commit.map(|t| t.as_ms()),
            hop.label,
        )
        .unwrap();
    }
    writeln!(f, "# {} ops dumped ({} total in run)", dumped, history.ops().len()).unwrap();
    path
}

fn main() {
    let args = cli::Args::parse();
    args.reject_unknown(KNOWN);

    let seeds: u64 = args.parsed("seeds").unwrap_or(if args.flag("quick") { 8 } else { 32 });
    let base: u64 = args.parsed("seed").unwrap_or(1);
    let workers: usize = args.parsed("workers").unwrap_or(2);
    let out = PathBuf::from(args.value_of("out").unwrap_or("target/chaos-artifacts"));

    println!(
        "chaos sweep: {seeds} seeds from {base}, scheduled storm 300-900ms + per-seed crash, \
         serial vs {workers}-worker PDES, full checker audit per run"
    );

    let mut failures = 0usize;
    let mut reads_audited = 0u64;
    for i in 0..seeds {
        let seed = base + i;
        let (node, at, down) = crash_plan(seed);
        let (serial_hist, serial_check) =
            run(EngineKind::SerialPartitioned { workers }, seed);
        let (par_hist, par_check) = run(EngineKind::Parallel { workers }, seed);
        reads_audited += serial_check.order.reads_checked;

        let mut bad = false;
        if !serial_check.is_clean() {
            eprintln!("FAIL seed {seed}: serial checker unclean: {serial_check:?}");
            let p = dump_history(&out, "serial", seed, &serial_hist, &serial_check);
            eprintln!("  history dumped to {}", p.display());
            bad = true;
        }
        if !par_check.is_clean() {
            eprintln!("FAIL seed {seed}: parallel checker unclean: {par_check:?}");
            let p = dump_history(&out, "parallel", seed, &par_hist, &par_check);
            eprintln!("  history dumped to {}", p.display());
            bad = true;
        }
        if serial_hist != par_hist || serial_check != par_check {
            eprintln!("FAIL seed {seed}: serial vs parallel divergence");
            let p = dump_history(&out, "serial", seed, &serial_hist, &serial_check);
            let q = dump_history(&out, "parallel", seed, &par_hist, &par_check);
            eprintln!("  histories dumped to {} and {}", p.display(), q.display());
            bad = true;
        }
        if bad {
            failures += 1;
        } else {
            println!(
                "  seed {seed:>4}: clean ({} reads, {} writes audited; crash node {node} \
                 at {at}ms for {down}ms)",
                serial_check.order.reads_checked, serial_check.order.writes_tracked
            );
        }
    }

    println!(
        "sweep done: {}/{} seeds clean, {} reads order-audited",
        seeds as usize - failures,
        seeds,
        reads_audited
    );
    if failures > 0 {
        eprintln!("{failures} seed(s) FAILED — artifacts in {}", out.display());
        std::process::exit(1);
    }
}
