//! CI seed-sweep chaos gate: many seeded adversarial runs — scheduled
//! fault storms plus per-seed crash timelines, on the serial **and** the
//! parallel engine — each audited by the full offline checker (session
//! replay, label recount, per-key order oracle). Any unclean report, or
//! any serial/parallel divergence, dumps the offending op history as an
//! artifact and fails the process.
//!
//! ```text
//! chaos_sweep [--seeds N] [--seed BASE] [--workers W] [--out DIR] [--quick] [--lin]
//! ```
//!
//! Defaults: 32 seeds from base 1, 2 PDES workers, artifacts under
//! `target/chaos-artifacts`. `--quick` trims to 8 seeds for local smoke.
//!
//! `--lin` adds the WGL linearizability gate: each seed also runs a
//! **fault-free** strict-quorum (N=3, R=W=2) pair, which must verify
//! `Linearizable` on every key on both engines (`Exhausted` keys are
//! reported but never fail the gate — an exhausted search is an unproven
//! key, not a violation); and the base R=W=1 chaos runs' violation
//! windows are aggregated across the sweep, asserted nonzero (the checker
//! must have teeth under partial quorums), summarized as p50/p90, and
//! exported as bench metrics for `bench_guard`.
//!
//! The strict runs are deliberately *not* run under the storm: a write
//! that times out or loses its coordinator mid-flight is applied on some
//! replicas but never reaches a full `W` quorum, and its version can
//! legally appear to one read and vanish from the next — Dynamo-style
//! quorums are regular, not linearizable, the moment writes go partial.
//! The checker flagging that is correct behaviour, not a regression, so
//! gating it would only teach people to ignore the gate.

use pbs_bench::cli;
use pbs_dist::Pareto;
use pbs_kvs::checker::{check_run, CheckReport, OpHistory, OrderViolation};
use pbs_kvs::cluster::EngineKind;
use pbs_kvs::{
    run_open_loop_on, ClientOptions, ClusterOptions, FaultProfile, FaultSchedule, NetworkModel,
    OpenLoopOptions,
};
use pbs_core::ReplicaConfig;
use pbs_sim::SimTime;
use pbs_workload::{OpMix, OpSource, OpStream, Poisson, UniformKeys};
use std::io::Write as _;
use std::path::{Path, PathBuf};
use std::sync::Arc;

const KNOWN: &[&str] = &["seeds", "seed", "workers", "out", "quick", "lin"];

const NODES: u32 = 8;

fn pareto_net() -> NetworkModel {
    NetworkModel::w_ars(Arc::new(Pareto::new(1.5, 1.2)), Arc::new(Pareto::new(0.8, 2.0)))
}

fn opts(cfg: ReplicaConfig, seed: u64) -> ClusterOptions {
    let mut o = ClusterOptions::validation(cfg, seed);
    o.nodes = NODES;
    o.op_timeout_ms = 2_000.0;
    o
}

fn source() -> Box<dyn OpSource> {
    Box::new(OpStream::new(Poisson::per_second(30.0), UniformKeys::new(8), OpMix::new(0.5), 1))
}

/// Per-seed crash timeline: which node goes down, when, for how long, and
/// whether mid-storm or mid-calm — so the sweep covers crash-during-storm
/// and crash-after-storm interleavings without per-seed hand-tuning.
fn crash_plan(seed: u64) -> (usize, f64, f64) {
    let node = (seed % NODES as u64) as usize;
    let at = 300.0 + (seed % 5) as f64 * 150.0; // 300..900: inside or after the storm
    let down = 200.0 + (seed % 3) as f64 * 100.0;
    (node, at, down)
}

/// One audited run. With `faults` on, the storm schedule ramps in at
/// 300 ms and clears at 900 ms and the crash comes from [`crash_plan`];
/// with it off (the strict-quorum WGL gate) the workload runs unfaulted.
fn run(kind: EngineKind, cfg: ReplicaConfig, seed: u64, faults: bool) -> (OpHistory, CheckReport) {
    let engine = OpenLoopOptions::new(1_200.0, 300.0, 1_500.0);
    let (node, at, down) = crash_plan(seed);
    let mut history = OpHistory::new();
    let mut check = CheckReport::default();
    run_open_loop_on(
        kind,
        opts(cfg, seed),
        &pareto_net(),
        &engine,
        6,
        ClientOptions { op_timeout_ms: 2_000.0, ..ClientOptions::default() },
        |_| source(),
        |cluster| {
            cluster.enable_history();
            if faults {
                cluster
                    .network()
                    .set_fault_schedule(FaultSchedule::calm_storm_calm(
                        FaultProfile::storm(seed),
                        300.0,
                        900.0,
                    ))
                    .unwrap();
                cluster.crash_node_at(node, SimTime::from_ms(at), down);
            }
        },
        |cluster| {
            history = cluster.take_history();
            check = check_run(&history, cluster, false);
        },
    )
    .expect("positive-minimum model partitions cleanly");
    (history, check)
}

fn violation_key(v: &OrderViolation) -> u64 {
    match v {
        OrderViolation::LostUpdate { key, .. }
        | OrderViolation::NonMonotoneExposure { key, .. }
        | OrderViolation::PhantomVersion { key, .. } => *key,
    }
}

/// Dump the history for offline replay — minimized to the keys named by
/// the order-oracle violations (plus, when `lin_keys` is set, the keys of
/// the WGL violations) when there are any, full otherwise (a
/// session/label disagreement has no single offending key). `lin_keys`
/// stays off for base partial-quorum dumps, where WGL violations are
/// expected behaviour and would minimize away the real offender.
fn dump_history(
    dir: &Path,
    tag: &str,
    seed: u64,
    history: &OpHistory,
    check: &CheckReport,
    lin_keys: bool,
) -> PathBuf {
    std::fs::create_dir_all(dir).expect("create artifact dir");
    let path = dir.join(format!("seed-{seed}-{tag}.history.txt"));
    let mut f = std::fs::File::create(&path).expect("create artifact");
    writeln!(f, "# chaos_sweep failing run: seed={seed} engine={tag}").unwrap();
    writeln!(f, "# verdict: {check:?}").unwrap();
    for c in history.crashes() {
        writeln!(
            f,
            "crash node={} at_ms={} down_ms={} wipe={}",
            c.node,
            c.at.as_ms(),
            c.down_ms,
            c.wipe
        )
        .unwrap();
    }
    let mut bad_keys: Vec<u64> = [
        check.order.first_lost_update,
        check.order.first_non_monotone,
        check.order.first_phantom,
    ]
    .iter()
    .flatten()
    .map(violation_key)
    .collect();
    if lin_keys {
        bad_keys.extend(check.lin.violations.iter().map(|v| v.key));
        bad_keys.sort_unstable();
        bad_keys.dedup();
    }
    let mut dumped = 0usize;
    for hop in history.ops() {
        let op = &hop.op;
        if !bad_keys.is_empty() && !bad_keys.contains(&op.key) {
            continue;
        }
        dumped += 1;
        writeln!(
            f,
            "op id={} client={} kind={:?} key={} start_ms={:.6} finish_ms={:?} seq={:?} \
             writer={:?} source={:?} mask={:#x} commit_ms={:?} label={:?}",
            op.op_id,
            op.client,
            op.kind,
            op.key,
            op.start.as_ms(),
            op.finish.map(|t| t.as_ms()),
            op.seq,
            op.writer,
            op.source,
            op.quorum_mask,
            op.commit.map(|t| t.as_ms()),
            hop.label,
        )
        .unwrap();
    }
    writeln!(f, "# {} ops dumped ({} total in run)", dumped, history.ops().len()).unwrap();
    path
}

fn main() {
    let args = cli::Args::parse();
    args.reject_unknown(KNOWN);

    let seeds: u64 = args.parsed("seeds").unwrap_or(if args.flag("quick") { 8 } else { 32 });
    let base: u64 = args.parsed("seed").unwrap_or(1);
    let workers: usize = args.parsed("workers").unwrap_or(2);
    let lin_gate = args.flag("lin");
    let out = PathBuf::from(args.value_of("out").unwrap_or("target/chaos-artifacts"));

    println!(
        "chaos sweep: {seeds} seeds from {base}, scheduled storm 300-900ms + per-seed crash, \
         serial vs {workers}-worker PDES, full checker audit per run{}",
        if lin_gate { ", strict-quorum WGL gate on" } else { "" }
    );

    let partial = ReplicaConfig::new(3, 1, 1).unwrap();
    let strict = ReplicaConfig::new(3, 2, 2).unwrap();
    let mut failures = 0usize;
    let mut reads_audited = 0u64;
    let mut windows_ns: Vec<u64> = Vec::new();
    let mut exhausted_keys = 0u64;
    for i in 0..seeds {
        let seed = base + i;
        let (node, at, down) = crash_plan(seed);
        let (serial_hist, serial_check) =
            run(EngineKind::SerialPartitioned { workers }, partial, seed, true);
        let (par_hist, par_check) = run(EngineKind::Parallel { workers }, partial, seed, true);
        reads_audited += serial_check.order.reads_checked;
        windows_ns.extend(serial_check.lin.violations.iter().map(|v| v.window_ns()));

        let mut bad = false;
        if !serial_check.is_clean() {
            eprintln!("FAIL seed {seed}: serial checker unclean: {serial_check:?}");
            let p = dump_history(&out, "serial", seed, &serial_hist, &serial_check, false);
            eprintln!("  history dumped to {}", p.display());
            bad = true;
        }
        if !par_check.is_clean() {
            eprintln!("FAIL seed {seed}: parallel checker unclean: {par_check:?}");
            let p = dump_history(&out, "parallel", seed, &par_hist, &par_check, false);
            eprintln!("  history dumped to {}", p.display());
            bad = true;
        }
        if serial_hist != par_hist || serial_check != par_check {
            eprintln!("FAIL seed {seed}: serial vs parallel divergence");
            let p = dump_history(&out, "serial", seed, &serial_hist, &serial_check, false);
            let q = dump_history(&out, "parallel", seed, &par_hist, &par_check, false);
            eprintln!("  histories dumped to {} and {}", p.display(), q.display());
            bad = true;
        }
        let mut lin_note = String::new();
        if lin_gate {
            // Fault-free strict R+W>N quorums: every key must verify
            // Linearizable on both engines (see the module docs for why
            // the storm stays off here).
            for (tag, kind) in [
                ("serial-lin", EngineKind::SerialPartitioned { workers }),
                ("parallel-lin", EngineKind::Parallel { workers }),
            ] {
                let (hist, check) = run(kind, strict, seed, false);
                exhausted_keys += check.lin.exhausted_keys;
                if check.lin.violated_keys > 0 {
                    eprintln!(
                        "FAIL seed {seed}: strict-quorum {tag} not linearizable: {:?} \
                         (first violation key {:?})",
                        check.lin,
                        check.lin.first_violation().map(|v| v.key),
                    );
                    let p = dump_history(&out, tag, seed, &hist, &check, true);
                    eprintln!("  history dumped to {}", p.display());
                    bad = true;
                }
            }
            lin_note = format!(
                "; {} partial-quorum windows so far",
                windows_ns.len()
            );
        }
        if bad {
            failures += 1;
        } else {
            println!(
                "  seed {seed:>4}: clean ({} reads, {} writes audited; crash node {node} \
                 at {at}ms for {down}ms{lin_note})",
                serial_check.order.reads_checked, serial_check.order.writes_tracked
            );
        }
    }

    println!(
        "sweep done: {}/{} seeds clean, {} reads order-audited",
        seeds as usize - failures,
        seeds,
        reads_audited
    );
    if lin_gate {
        if exhausted_keys > 0 {
            println!(
                "note: {exhausted_keys} strict-quorum key(s) exhausted the WGL budget \
                 (unproven, not failing)"
            );
        }
        // The base R=W=1 runs must surface violation windows — a sweep
        // with zero windows means the checker lost its teeth, not that
        // partial quorums became linearizable.
        if windows_ns.is_empty() {
            eprintln!("FAIL: no WGL violation windows across {seeds} partial-quorum seeds");
            std::process::exit(1);
        }
        windows_ns.sort_unstable();
        let pct = |p: f64| {
            let rank = ((p / 100.0) * windows_ns.len() as f64).ceil() as usize;
            windows_ns[rank.clamp(1, windows_ns.len()) - 1] as f64 / 1e6
        };
        let (p50, p90) = (pct(50.0), pct(90.0));
        println!(
            "partial-quorum WGL windows: {} total, p50 {p50:.2}ms, p90 {p90:.2}ms",
            windows_ns.len()
        );
        criterion::record_metric("chaos_lin_windows", windows_ns.len() as f64);
        criterion::record_metric("chaos_lin_window_p50_ms", p50);
        criterion::record_metric("chaos_lin_window_p90_ms", p90);
    }
    if failures > 0 {
        eprintln!("{failures} seed(s) FAILED — artifacts in {}", out.display());
        std::process::exit(1);
    }
}
