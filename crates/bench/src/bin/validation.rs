//! §5.2 — experimental validation: WARS Monte-Carlo predictions vs. the
//! live Dynamo-style store (`pbs-kvs`), reproducing the paper's methodology:
//! exponential `W ∈ {20, 10, 5}ms` × `A=R=S ∈ {10, 5, 2}ms` means, N=3,
//! R=W=1, read repair disabled, first-R-responses-only.
//!
//! The paper reported t-visibility RMSE 0.28% (max 0.53%) over
//! t ∈ {1..199}ms and latency N-RMSE 0.48% (max 0.90%) over the
//! 1..99.9th percentiles. We report the same statistics.

use pbs_bench::{report, HarnessOptions};
use pbs_core::ReplicaConfig;
use pbs_dist::stats::{n_rmse, rmse};
use pbs_dist::Exponential;
use pbs_kvs::cluster::ClusterOptions;
use pbs_kvs::experiments::measure_t_visibility_sharded;
use pbs_kvs::NetworkModel;
use pbs_wars::production::exponential_model;
use pbs_wars::TVisibility;
use std::sync::Arc;

fn main() {
    // Paper: 50,000 writes per combination. Offsets 1..199 step 2 → 100
    // points × 500 trials = 50k probes (use --quick for a fast pass).
    let opts = HarnessOptions::parse(500);
    let trials_per_offset = opts.trials;
    let offsets: Vec<f64> = (0..100).map(|i| 1.0 + 2.0 * i as f64).collect();

    println!("§5.2 validation: WARS prediction vs simulated Dynamo-style store");
    println!(
        "N=3, R=W=1; {} offsets × {} probes each per combination",
        offsets.len(),
        trials_per_offset
    );

    let w_rates = [0.05f64, 0.1, 0.2]; // means 20, 10, 5 ms
    let ars_rates = [0.1f64, 0.2, 0.5]; // means 10, 5, 2 ms
    let cfg = ReplicaConfig::new(3, 1, 1).unwrap();

    let mut rows = Vec::new();
    let mut all_tvis_rmse = Vec::new();
    let mut all_lat_nrmse = Vec::new();
    for &wl in &w_rates {
        for &al in &ars_rates {
            // --- live store measurement: independent clusters per shard ---
            let network = NetworkModel::w_ars(
                Arc::new(Exponential::from_rate(wl)),
                Arc::new(Exponential::from_rate(al)),
            );
            let measured = measure_t_visibility_sharded(
                ClusterOptions::validation(cfg, opts.seed),
                &network,
                1,
                &offsets,
                trials_per_offset,
                0.0,
                opts.threads,
            );

            // --- WARS prediction ---
            // Base seed far from the measurement's: shard seeds derive as
            // `seed ^ i`, so adjacent base seeds could share shard RNG
            // streams between the two runs being compared.
            let model = exponential_model(cfg, wl, al);
            let predicted = TVisibility::simulate_parallel(
                &model,
                400_000,
                opts.seed + 0x10_000,
                opts.threads,
            );

            // t-visibility RMSE across the offset grid (in probability).
            let measured_p: Vec<f64> =
                measured.points.iter().map(|p| p.probability()).collect();
            let predicted_p: Vec<f64> =
                measured.points.iter().map(|p| predicted.prob_consistent(p.t_ms)).collect();
            let tvis_rmse = rmse(&predicted_p, &measured_p);

            // Latency N-RMSE across the 1..99.9th percentiles, straight off
            // the streaming summaries (no sample buffers on either side).
            let pcts: Vec<f64> = (1..=99)
                .map(|p| p as f64)
                .chain([99.9])
                .collect();
            let mut meas = Vec::new();
            let mut pred = Vec::new();
            for &p in &pcts {
                meas.push(measured.read_latency.percentile(p));
                pred.push(predicted.read_latency_percentile(p));
                meas.push(measured.write_latency.percentile(p));
                pred.push(predicted.write_latency_percentile(p));
            }
            let lat_nrmse = n_rmse(&pred, &meas);

            all_tvis_rmse.push(tvis_rmse);
            all_lat_nrmse.push(lat_nrmse);
            rows.push(vec![
                format!("{:.0}ms", 1.0 / wl),
                format!("{:.0}ms", 1.0 / al),
                format!("{:.3}%", tvis_rmse * 100.0),
                format!("{:.3}%", lat_nrmse * 100.0),
            ]);
        }
    }
    report::header("Per-combination agreement");
    report::table(&["mean W", "mean A=R=S", "t-vis RMSE", "latency N-RMSE"], &rows);

    let mean = |v: &[f64]| v.iter().sum::<f64>() / v.len() as f64;
    let max = |v: &[f64]| v.iter().cloned().fold(0.0f64, f64::max);
    report::header("Summary (paper: t-vis RMSE avg 0.28% max 0.53%; latency N-RMSE avg 0.48% max 0.90%)");
    report::table(
        &["metric", "average", "max"],
        &[
            vec![
                "t-visibility RMSE".into(),
                format!("{:.3}%", mean(&all_tvis_rmse) * 100.0),
                format!("{:.3}%", max(&all_tvis_rmse) * 100.0),
            ],
            vec![
                "latency N-RMSE".into(),
                format!("{:.3}%", mean(&all_lat_nrmse) * 100.0),
                format!("{:.3}%", max(&all_lat_nrmse) * 100.0),
            ],
        ],
    );
}
