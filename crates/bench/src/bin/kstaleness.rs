//! §3.1 — PBS k-staleness: closed form (Eq. 2), Monte-Carlo cross-check,
//! and the expanding-quorum comparison (Eq. 2 as an upper bound on a live
//! Dynamo-style system).

use pbs_bench::{report, HarnessOptions};
use pbs_core::{staleness, ReplicaConfig};
use pbs_quorum::{analysis, RandomFixed};
use pbs_wars::kt::{kt_violation_direct, KtOptions, WriteSpacing};
use pbs_wars::production::exponential_model;

fn main() {
    let opts = HarnessOptions::parse(200_000);
    println!("PBS k-staleness (paper §3.1, Equation 2)");
    println!("p_sk = (C(N-W,R)/C(N,R))^k — probability a read misses the last k versions");

    // ---- The paper's headline numbers -------------------------------------
    report::header("P(within k versions), closed form — §3.1 configurations");
    let ks = [1u32, 2, 3, 5, 10];
    let configs =
        [(3u32, 1u32, 1u32), (3, 1, 2), (3, 2, 1), (2, 1, 1), (3, 2, 2), (5, 1, 1), (5, 2, 2)];
    let mut rows = Vec::new();
    for (n, r, w) in configs {
        let cfg = ReplicaConfig::new(n, r, w).unwrap();
        let mut row = vec![cfg.to_string()];
        for &k in &ks {
            row.push(report::pct(staleness::prob_within_k_versions(cfg, k)));
        }
        row.push(format!("{:.3}", staleness::expected_staleness_versions(cfg)));
        rows.push(row);
    }
    let k_labels: Vec<String> = ks.iter().map(|k| format!("k={k}")).collect();
    let mut cols = report::labeled_cols("config", &k_labels);
    cols.push("E[stale]");
    report::table(&cols, &rows);
    println!("(paper: N=3,R=W=1 → k=3: 0.703, k=5: >0.868, k=10: >0.98;");
    println!(" N=3,R=1,W=2 → k=1: 2/3, k=2: 8/9, k=5: >0.995)");

    // ---- Monte-Carlo cross-check on random quorum draws --------------------
    report::header("Closed form vs. frozen-quorum Monte Carlo");
    let mc_trials = opts.trials;
    let mut rows = Vec::new();
    for (n, r, w) in [(3u32, 1u32, 1u32), (3, 1, 2), (5, 2, 1)] {
        let cfg = ReplicaConfig::new(n, r, w).unwrap();
        let sys = RandomFixed::new(n, r, w);
        for k in [1u32, 2, 5] {
            let exact = staleness::k_staleness_violation(cfg, k);
            let mc = analysis::k_staleness_mc(&sys, k, mc_trials, opts.seed);
            rows.push(vec![
                cfg.to_string(),
                k.to_string(),
                format!("{exact:.6}"),
                format!("{mc:.6}"),
                format!("{:+.4}", mc - exact),
            ]);
        }
    }
    report::table(&["config", "k", "closed form", "Monte Carlo", "error"], &rows);

    // ---- Expanding quorums: Eq. 2 is an upper bound -------------------------
    report::header("Eq. 2 (frozen) vs. live expanding quorums (WARS ⟨k,0⟩ direct MC)");
    println!("Writes spaced 10ms apart; anti-entropy = quorum expansion only.");
    let cfg = ReplicaConfig::new(3, 1, 1).unwrap();
    let model = exponential_model(cfg, 0.1, 0.5);
    let mut rows = Vec::new();
    for k in [1u32, 2, 3, 5] {
        let frozen = staleness::k_staleness_violation(cfg, k);
        let live = kt_violation_direct(
            &model,
            KtOptions {
                k,
                t_ms: 0.0,
                spacing: WriteSpacing::Fixed(10.0),
                trials: opts.trials / 4,
                seed: opts.seed,
                threads: opts.threads,
            },
        );
        rows.push(vec![
            k.to_string(),
            format!("{frozen:.4}"),
            format!("{:.4}", live.violation),
            if live.violation <= frozen { "yes".into() } else { "VIOLATED".into() },
        ]);
    }
    report::table(&["k", "Eq.2 bound", "expanding (live)", "bound holds"], &rows);
}
