//! Figure 5 — read and write operation latency CDFs for the production
//! fits, N=3, R/W ∈ {1, 2, 3} (§5.5).

use pbs_bench::{report, HarnessOptions};
use pbs_core::ReplicaConfig;
use pbs_wars::production::ProductionProfile;
use pbs_wars::TVisibility;

fn main() {
    let opts = HarnessOptions::parse(100_000);
    println!("Figure 5: operation latency CDFs for production fits (§5.5), N=3");

    let pcts = [1.0, 10.0, 25.0, 50.0, 75.0, 90.0, 99.0, 99.9];

    for profile in ProductionProfile::ALL {
        report::header(&format!("{} — read latency (ms) by percentile", profile.name()));
        let mut rows = Vec::new();
        for r in 1..=3u32 {
            let cfg = ReplicaConfig::new(3, r, 1).unwrap();
            let tv = TVisibility::simulate_parallel(profile.model(cfg).as_ref(), opts.trials, opts.seed, opts.threads);
            let mut row = vec![format!("R={r}")];
            for &p in &pcts {
                row.push(report::ms(tv.read_latency_percentile(p)));
            }
            rows.push(row);
        }
        let pct_labels: Vec<String> = pcts.iter().map(|p| format!("p{p}")).collect();
        let cols = report::labeled_cols("quorum", &pct_labels);
        report::table(&cols, &rows);

        report::header(&format!("{} — write latency (ms) by percentile", profile.name()));
        let mut rows = Vec::new();
        for w in 1..=3u32 {
            let cfg = ReplicaConfig::new(3, 1, w).unwrap();
            let tv = TVisibility::simulate_parallel(profile.model(cfg).as_ref(), opts.trials, opts.seed, opts.threads);
            let mut row = vec![format!("W={w}")];
            for &p in &pcts {
                row.push(report::ms(tv.write_latency_percentile(p)));
            }
            rows.push(row);
        }
        report::table(&cols, &rows);
    }
    println!();
    println!("(paper: for reads, LNKD-SSD ≈ LNKD-DISK — A=R=S share the same fit;");
    println!(" WAN R=1 is fast (one local replica) while R≥2 pays the 150ms round trip)");
}
