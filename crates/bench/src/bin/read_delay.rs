//! Ablation — §5.3's alternative knob: *"operators could chose to lower
//! (relative) W latencies through hardware configuration or by delaying
//! reads"*. This harness quantifies the delay-reads option on LNKD-DISK:
//! consistency gained per millisecond of read latency spent, compared
//! against simply raising R.

use pbs_bench::{report, HarnessOptions};
use pbs_core::ReplicaConfig;
use pbs_wars::model::WithReadDelay;
use pbs_wars::production::lnkd_disk_model;
use pbs_wars::TVisibility;

fn main() {
    let opts = HarnessOptions::parse(200_000);
    println!("Read-delay ablation (§5.3), LNKD-DISK, N=3");

    report::header("Delaying reads at R=W=1");
    let cfg = ReplicaConfig::new(3, 1, 1).unwrap();
    let mut rows = Vec::new();
    for delay in [0.0f64, 1.0, 2.0, 5.0, 10.0, 20.0, 40.0] {
        let model = WithReadDelay::new(lnkd_disk_model(cfg), delay);
        let tv = TVisibility::simulate_parallel(&model, opts.trials, opts.seed, opts.threads);
        rows.push(vec![
            format!("{delay}"),
            report::pct(tv.prob_consistent(0.0)),
            report::opt_ms(tv.t_at_probability(0.999)),
            report::ms(tv.read_latency_percentile(99.9)),
        ]);
    }
    report::table(
        &["read delay (ms)", "P(consistent t=0)", "t @ 99.9%", "Lr p99.9 (ms)"],
        &rows,
    );

    report::header("Versus raising R (no artificial delay)");
    let mut rows = Vec::new();
    for r in [1u32, 2, 3] {
        let c = ReplicaConfig::new(3, r, 1).unwrap();
        let tv = TVisibility::simulate_parallel(&lnkd_disk_model(c), opts.trials, opts.seed, opts.threads);
        rows.push(vec![
            format!("R={r}"),
            report::pct(tv.prob_consistent(0.0)),
            report::ms(tv.read_latency_percentile(99.9)),
        ]);
    }
    report::table(&["config", "P(consistent t=0)", "Lr p99.9 (ms)"], &rows);
    println!();
    println!("Trade-off: a ~10–20ms read delay buys most of the consistency R=2 offers,");
    println!("but adds that delay to *every* read — §5.3 calls this 'potentially");
    println!("detrimental to performance for read-dominated workloads'. Raising R only");
    println!("pays on the quorum tail.");
}
