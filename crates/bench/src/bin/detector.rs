//! §4.3 — asynchronous staleness detection: the coordinator compares the
//! `N − R` late read responses against the returned value. The paper
//! predicts false positives from in-flight (newer-but-uncommitted) writes;
//! online ground truth (the open-loop engine's commit watermark) lets us
//! measure precision and recall exactly while thousands of probes overlap.

use pbs_bench::{report, HarnessOptions};
use pbs_core::ReplicaConfig;
use pbs_dist::Exponential;
use pbs_kvs::{
    run_open_loop, ClientOptions, ClusterOptions, NetworkModel, OpenLoopOptions,
};
use pbs_workload::{FixedRate, OpMix, OpSource, OpStream, UniformKeys};
use std::sync::Arc;

fn run(n: u32, r: u32, w: u32, write_mean_ms: f64, ops: usize, seed: u64) -> Vec<String> {
    let cfg = ReplicaConfig::new(n, r, w).unwrap();
    let mut opts = ClusterOptions::validation(cfg, seed);
    opts.op_timeout_ms = 5_000.0;
    let network = NetworkModel::w_ars(
        Arc::new(Exponential::from_mean(write_mean_ms)),
        Arc::new(Exponential::from_mean(2.0)),
    );
    // Dense single-key traffic maximises in-flight overlap — the paper's
    // false-positive regime: one write every 6 ms, each probed by a read
    // 3 ms later.
    let pairs = ops / 2;
    let engine = OpenLoopOptions::new(pairs as f64 * 6.0, 1_000.0, opts.op_timeout_ms);
    let rep = run_open_loop(
        opts,
        &network,
        &engine,
        1,
        ClientOptions {
            op_timeout_ms: opts.op_timeout_ms,
            probe_read_offset_ms: Some(3.0),
            ..ClientOptions::default()
        },
        |_| -> Box<dyn OpSource> {
            Box::new(OpStream::new(
                FixedRate::new(6.0),
                UniformKeys::new(1),
                OpMix::writes_only(),
                1,
            ))
        },
        |_| {},
    );
    let d = rep.detector;
    vec![
        format!("N={n}, R={r}, W={w}, E[W]={write_mean_ms}ms"),
        report::pct(rep.consistency_rate()),
        d.flagged.to_string(),
        d.false_positives.to_string(),
        d.missed_stale.to_string(),
        format!("{:.3}", d.precision()),
        format!("{:.3}", d.recall()),
    ]
}

fn main() {
    let opts = HarnessOptions::parse(20_000);
    println!("Asynchronous staleness detection (paper §4.3)");
    println!("Detector: any of the N−R late responses newer than the returned value.");
    println!("({} open-loop ops per configuration, single hot key)", opts.trials);

    report::header("Detector quality vs. configuration");
    let rows = vec![
        run(3, 1, 1, 10.0, opts.trials, opts.seed),
        run(3, 1, 1, 2.0, opts.trials, opts.seed),
        run(3, 1, 2, 10.0, opts.trials, opts.seed),
        run(3, 2, 1, 10.0, opts.trials, opts.seed),
        run(5, 1, 1, 10.0, opts.trials, opts.seed),
    ];
    report::table(
        &["config", "P(consistent)", "flagged", "false pos", "missed", "precision", "recall"],
        &rows,
    );
    println!();
    println!("False positives arise exactly as §4.3 predicts: late responses carrying");
    println!("in-flight (newer-but-uncommitted) versions. Misses occur when every fresher");
    println!("replica landed inside the first R responses of *another* read, never");
    println!("responded, or responded later than the detector-matching grace window.");
}
