//! §4.3 — asynchronous staleness detection: the coordinator compares the
//! `N − R` late read responses against the returned value. The paper
//! predicts false positives from in-flight (newer-but-uncommitted) writes;
//! ground truth lets us measure precision and recall exactly.

use pbs_bench::{report, HarnessOptions};
use pbs_core::ReplicaConfig;
use pbs_dist::Exponential;
use pbs_kvs::cluster::{Cluster, ClusterOptions, TraceOp};
use pbs_kvs::NetworkModel;
use std::sync::Arc;

fn run(n: u32, r: u32, w: u32, write_mean_ms: f64, ops: usize, seed: u64) -> Vec<String> {
    let cfg = ReplicaConfig::new(n, r, w).unwrap();
    let mut cluster = Cluster::new(
        ClusterOptions::validation(cfg, seed),
        NetworkModel::w_ars(
            Arc::new(Exponential::from_mean(write_mean_ms)),
            Arc::new(Exponential::from_mean(2.0)),
        ),
    );
    // Dense single-key traffic maximises in-flight overlap — the paper's
    // false-positive regime.
    let trace: Vec<TraceOp> = (0..ops)
        .map(|i| TraceOp { at_ms: i as f64 * 3.0, is_read: i % 2 == 1, key: 1 })
        .collect();
    let rep = cluster.run_trace(&trace);
    let d = rep.detector;
    let stale = d.true_positives + d.missed_stale;
    let precision = if d.flagged > 0 {
        d.true_positives as f64 / d.flagged as f64
    } else {
        1.0
    };
    let recall = if stale > 0 { d.true_positives as f64 / stale as f64 } else { 1.0 };
    vec![
        format!("N={n}, R={r}, W={w}, E[W]={write_mean_ms}ms"),
        pbs_bench::report::pct(rep.consistency_rate()),
        d.flagged.to_string(),
        d.false_positives.to_string(),
        d.missed_stale.to_string(),
        format!("{precision:.3}"),
        format!("{recall:.3}"),
    ]
}

fn main() {
    let opts = HarnessOptions::parse(20_000);
    println!("Asynchronous staleness detection (paper §4.3)");
    println!("Detector: any of the N−R late responses newer than the returned value.");
    println!("({} ops per configuration, single hot key)", opts.trials);

    report::header("Detector quality vs. configuration");
    let rows = vec![
        run(3, 1, 1, 10.0, opts.trials, opts.seed),
        run(3, 1, 1, 2.0, opts.trials, opts.seed),
        run(3, 1, 2, 10.0, opts.trials, opts.seed),
        run(3, 2, 1, 10.0, opts.trials, opts.seed),
        run(5, 1, 1, 10.0, opts.trials, opts.seed),
    ];
    report::table(
        &["config", "P(consistent)", "flagged", "false pos", "missed", "precision", "recall"],
        &rows,
    );
    println!();
    println!("False positives arise exactly as §4.3 predicts: late responses carrying");
    println!("in-flight (newer-but-uncommitted) versions. Misses occur when every fresher");
    println!("replica landed inside the first R responses of *another* read or never");
    println!("responded before trace settle.");
}
