//! `profile` — the hot-path performance harness.
//!
//! Runs the open-loop engine on the same `64_clients_10k_ops` shape as the
//! criterion benchmark and reports the numbers that matter for scheduler
//! and allocation work:
//!
//! * **events/sec** — raw simulator dispatch rate (every message, timer,
//!   and arrival), the scheduler's own throughput;
//! * **ops/sec** — completed client operations per wall second;
//! * **allocs/op, bytes/op** — from a counting global allocator, only
//!   when built with `--features alloc-profile` (`n/a` otherwise);
//! * **scheduler occupancy** — peak pending events, cascade count, slot
//!   occupancy and ready-batch length at the end of the run, from
//!   [`pbs_sim::SchedulerStats`].
//!
//! When `BENCH_JSON` names a file, the headline figures are appended to
//! its `metrics` array (same hook the criterion benches use), so CI can
//! fold a profile run into `BENCH_5.json`.
//!
//! ```text
//! cargo run -p pbs-bench --release --bin profile
//! cargo run -p pbs-bench --release --features alloc-profile --bin profile
//! cargo run -p pbs-bench --release --bin profile -- --clients 1024 --rate 20000
//! cargo run -p pbs-bench --release --bin profile -- --workers 4
//! cargo run -p pbs-bench --release --features alloc-profile --bin profile -- \
//!     --mem --clients 100000 --keys 1000000 --rate 20000
//! ```
//!
//! `--mem` runs the memory-scaling profile instead (see `mem_profile`):
//! shared-source clients over a `--keys`-wide Zipf universe, live-byte
//! deltas from the counting allocator reported as bytes-per-client and
//! bytes-per-key `mem_c{N}_*` metrics. Requires `alloc-profile`.
//!
//! To A/B the scheduler implementations, add
//! `--features pbs-sim/heap-scheduler` to either invocation: the workload
//! is bit-identical under both, so any delta is pure scheduler cost.
//!
//! `--workers N` (N ≥ 1) profiles the **conservative parallel engine**
//! instead: the cluster grows to `max(8, N)` nodes, the network swaps to
//! Pareto legs (the engine needs a positive per-leg support minimum for
//! its lookahead), and after each iteration the harness prints a
//! per-worker table — events and events/sec per worker, synchronous
//! windows, cross-partition traffic, barrier stalls, and the mean
//! time-window (horizon) width. Metrics land in `BENCH_JSON` under
//! `pdes_w{N}_*` names so CI can build the scaling table and gate it.

use pbs_bench::cli::Args;
use pbs_bench::report;
use pbs_core::ReplicaConfig;
use pbs_dist::{Exponential, Pareto};
use pbs_kvs::{
    run_open_loop_on, ClientOptions, Cluster, ClusterOptions, EngineKind, NetworkModel,
    OpenLoopOptions, WindowDrain,
};
use pbs_sim::{PdesStats, SimTime};
use pbs_workload::{OpMix, OpSource, OpStream, Poisson, SharedStream, UniformKeys, Zipf};
use std::sync::Arc;
use std::time::Instant;

/// Counting global allocator, installed only with `--features
/// alloc-profile`. Lives in the binary (not the library, which forbids
/// `unsafe`): delegates to the system allocator and counts calls/bytes.
#[cfg(feature = "alloc-profile")]
mod alloc_counter {
    use std::alloc::{GlobalAlloc, Layout, System};
    use std::sync::atomic::{AtomicU64, Ordering};

    pub static ALLOCS: AtomicU64 = AtomicU64::new(0);
    pub static BYTES: AtomicU64 = AtomicU64::new(0);
    pub static LIVE: AtomicU64 = AtomicU64::new(0);
    pub static PEAK: AtomicU64 = AtomicU64::new(0);

    struct Counting;

    fn count(size: usize) {
        ALLOCS.fetch_add(1, Ordering::Relaxed);
        BYTES.fetch_add(size as u64, Ordering::Relaxed);
        let live = LIVE.fetch_add(size as u64, Ordering::Relaxed) + size as u64;
        PEAK.fetch_max(live, Ordering::Relaxed);
    }

    // SAFETY: pure delegation to `System`; the counters are relaxed
    // atomics with no effect on allocation behaviour.
    unsafe impl GlobalAlloc for Counting {
        unsafe fn alloc(&self, layout: Layout) -> *mut u8 {
            let p = unsafe { System.alloc(layout) };
            if !p.is_null() {
                count(layout.size());
            }
            p
        }

        unsafe fn dealloc(&self, ptr: *mut u8, layout: Layout) {
            LIVE.fetch_sub(layout.size() as u64, Ordering::Relaxed);
            unsafe { System.dealloc(ptr, layout) }
        }

        unsafe fn realloc(&self, ptr: *mut u8, layout: Layout, new_size: usize) -> *mut u8 {
            let p = unsafe { System.realloc(ptr, layout, new_size) };
            if !p.is_null() {
                LIVE.fetch_sub(layout.size() as u64, Ordering::Relaxed);
                count(new_size);
            }
            p
        }

        unsafe fn alloc_zeroed(&self, layout: Layout) -> *mut u8 {
            let p = unsafe { System.alloc_zeroed(layout) };
            if !p.is_null() {
                count(layout.size());
            }
            p
        }
    }

    #[global_allocator]
    static COUNTING: Counting = Counting;

    pub fn snapshot() -> (u64, u64) {
        (ALLOCS.load(Ordering::Relaxed), BYTES.load(Ordering::Relaxed))
    }

    /// Live (allocated − freed) bytes right now.
    pub fn live() -> u64 {
        LIVE.load(Ordering::Relaxed)
    }

    /// High-water mark of live bytes since process start.
    pub fn peak() -> u64 {
        PEAK.load(Ordering::Relaxed)
    }
}

#[cfg(not(feature = "alloc-profile"))]
mod alloc_counter {
    pub fn snapshot() -> (u64, u64) {
        (0, 0)
    }

    pub fn live() -> u64 {
        0
    }

    pub fn peak() -> u64 {
        0
    }
}

/// `--mem` mode: the memory-scaling profile. Stands up `clients`
/// shared-source clients over a `keys`-wide Zipf(0.99) universe on the
/// serial engine, then reports live-byte deltas from the counting
/// allocator at three quiescent points:
///
/// * **table bytes/client** — cost of the client tables themselves
///   (struct-of-arrays rows + one armed arrival per client), measured
///   right after `start_clients` and before any op is issued;
/// * **steady bytes/client** — everything the run accretes per client
///   after draining `duration_ms` of simulated load (session entries,
///   watermark-GC'd ground truth, reusable drain buffers);
/// * **bytes/key touched** — the steady-state growth beyond the tables,
///   divided over the keys the ground truth actually tracks.
///
/// Metrics land in `BENCH_JSON` as `mem_c{clients}_*` so one summary can
/// hold several scales and `bench_guard --max` can gate the budget.
fn mem_profile(clients: u32, keys: u64, per_client: f64, duration_ms: f64, seed: u64) {
    let cfg = ReplicaConfig::new(3, 1, 1).unwrap();
    let mut opts = ClusterOptions::validation(cfg, seed);
    opts.nodes = 8;
    opts.op_timeout_ms = 2_000.0;
    let net = NetworkModel::w_ars(
        Arc::new(Exponential::from_rate(0.1)),
        Arc::new(Exponential::from_rate(0.5)),
    );
    report::header(&format!(
        "profile --mem: {clients} clients × {per_client:.2} ops/s over {keys} Zipf keys, {duration_ms} ms (seed {seed})"
    ));
    if !cfg!(feature = "alloc-profile") {
        println!("live-byte counters need `--features alloc-profile`; nothing measured");
        return;
    }

    let copts = ClientOptions { op_timeout_ms: 2_000.0, ..ClientOptions::default() };
    let mut cluster = Cluster::new(opts, net);
    let base = alloc_counter::live();
    cluster.add_clients_shared(
        clients,
        Arc::new(SharedStream::new(
            Poisson::per_second(per_client),
            Zipf::new(keys, 0.99),
            OpMix::linkedin(),
        )),
        copts,
    );
    cluster.start_clients();
    // Process the StartClient events — each client's first arrival lands
    // in its table and the scheduler — without issuing any operation yet.
    cluster.drain_window(SimTime::from_ms(1e-3));
    let after_tables = alloc_counter::live();

    let window_ms = 500.0;
    let windows = (duration_ms / window_ms).ceil().max(1.0) as u32;
    let mut drain = WindowDrain::default();
    let mut ops = 0u64;
    let start = Instant::now();
    for w in 1..=windows {
        cluster.drain_window_into(SimTime::from_ms(1e-3 + w as f64 * window_ms), &mut drain);
        ops += (drain.writes.len() + drain.reads.len()) as u64;
    }
    let wall = start.elapsed().as_secs_f64();
    let steady = alloc_counter::live();
    let peak = alloc_counter::peak();
    drop(drain);
    let tracked = cluster.ground_truth().tracked_keys().len().max(1) as u64;

    let table_bpc = after_tables.saturating_sub(base) as f64 / clients as f64;
    let steady_bpc = steady.saturating_sub(base) as f64 / clients as f64;
    let bytes_per_key = steady.saturating_sub(after_tables) as f64 / tracked as f64;
    report::table(
        &["ops", "ops/sec", "table B/client", "steady B/client", "B/key", "keys", "peak MiB"],
        &[vec![
            format!("{ops}"),
            format!("{:.0}", ops as f64 / wall),
            format!("{table_bpc:.1}"),
            format!("{steady_bpc:.1}"),
            format!("{bytes_per_key:.1}"),
            format!("{tracked}"),
            format!("{:.1}", peak as f64 / (1 << 20) as f64),
        ]],
    );
    criterion::record_metric(format!("mem_c{clients}_table_bytes_per_client"), table_bpc);
    criterion::record_metric(format!("mem_c{clients}_steady_bytes_per_client"), steady_bpc);
    criterion::record_metric(format!("mem_c{clients}_bytes_per_key"), bytes_per_key);
    criterion::record_metric(
        format!("mem_c{clients}_peak_live_mb"),
        peak as f64 / (1 << 20) as f64,
    );
    criterion::write_json_summary();
}

fn main() {
    let args = Args::parse();
    args.reject_unknown(&[
        "clients",
        "rate",
        "duration-ms",
        "seed",
        "iters",
        "quick",
        "workers",
        "mem",
        "keys",
    ]);
    let clients: usize = args.parsed("clients").unwrap_or(64);
    let rate: f64 = args.parsed("rate").unwrap_or(5_000.0);
    let duration_ms: f64 = args.parsed("duration-ms").unwrap_or(2_000.0);
    let seed: u64 = args.parsed("seed").unwrap_or(7);
    let iters: usize = args.parsed("iters").unwrap_or(if args.flag("quick") { 1 } else { 5 });
    let workers: usize = args.parsed("workers").unwrap_or(0);
    if args.flag("mem") {
        let keys: u64 = args.parsed("keys").unwrap_or(1_000_000);
        mem_profile(clients as u32, keys, rate / clients as f64, duration_ms, seed);
        return;
    }

    let cfg = ReplicaConfig::new(3, 1, 1).unwrap();
    let mut opts = ClusterOptions::validation(cfg, seed);
    opts.op_timeout_ms = 2_000.0;
    let engine = OpenLoopOptions::new(duration_ms, 500.0, opts.op_timeout_ms);
    // The parallel engine derives its lookahead from the per-leg support
    // minimum, so its profile swaps the exponential legs (minimum zero)
    // for heavy-tailed Pareto legs with comparable means.
    let (kind, net) = if workers == 0 {
        let net = NetworkModel::w_ars(
            Arc::new(Exponential::from_rate(0.1)),
            Arc::new(Exponential::from_rate(0.5)),
        );
        (EngineKind::Serial, net)
    } else {
        opts.nodes = (workers as u32).max(8);
        let net = NetworkModel::w_ars(
            Arc::new(Pareto::new(1.5, 1.2)),
            Arc::new(Pareto::new(0.8, 2.0)),
        );
        (EngineKind::Parallel { workers }, net)
    };
    let per_client = rate / clients as f64;

    let mode = match kind {
        EngineKind::Serial => "serial".to_string(),
        _ => format!("parallel ×{workers} ({} nodes)", opts.nodes),
    };
    report::header(&format!(
        "profile: open loop [{mode}], {clients} clients × {per_client:.1} ops/s × {duration_ms} ms (seed {seed}, {iters} iters)"
    ));

    let mut best_ops_per_sec = 0.0f64;
    let mut best_events_per_sec = 0.0f64;
    let mut best_wall = f64::INFINITY;
    let mut last_pdes: Option<PdesStats> = None;
    let mut rows = Vec::new();
    for iter in 0..iters {
        let (allocs0, bytes0) = alloc_counter::snapshot();
        let start = Instant::now();
        let mut events = 0u64;
        let mut sched = pbs_sim::SchedulerStats::default();
        let mut pdes = None;
        let report = run_open_loop_on(
            kind,
            opts,
            &net,
            &engine,
            clients,
            ClientOptions { op_timeout_ms: 2_000.0, ..ClientOptions::default() },
            |_| -> Box<dyn OpSource> {
                Box::new(OpStream::new(
                    Poisson::per_second(per_client),
                    UniformKeys::new(64),
                    OpMix::linkedin(),
                    1,
                ))
            },
            |_| {},
            |cluster| {
                events = cluster.events_processed();
                sched = cluster.scheduler_stats();
                pdes = cluster.pdes_stats();
            },
        )
        .expect("profile network models have a positive support minimum");
        let wall = start.elapsed().as_secs_f64();
        best_wall = best_wall.min(wall);
        if pdes.is_some() {
            last_pdes = pdes;
        }
        let (allocs1, bytes1) = alloc_counter::snapshot();
        let ops = report.commits + report.reads;
        let ops_per_sec = ops as f64 / wall;
        best_ops_per_sec = best_ops_per_sec.max(ops_per_sec);
        best_events_per_sec = best_events_per_sec.max(events as f64 / wall);
        let (allocs_per_op, bytes_per_op) = if cfg!(feature = "alloc-profile") {
            (
                format!("{:.1}", (allocs1 - allocs0) as f64 / ops as f64),
                format!("{:.0}", (bytes1 - bytes0) as f64 / ops as f64),
            )
        } else {
            ("n/a".into(), "n/a".into())
        };
        rows.push(vec![
            format!("{iter}"),
            format!("{ops}"),
            format!("{:.0}", ops_per_sec),
            format!("{:.2}M", events as f64 / wall / 1e6),
            allocs_per_op,
            bytes_per_op,
            format!("{}", sched.peak_pending),
            format!("{}", sched.cascaded),
            format!("{}", sched.occupied_slots),
        ]);
    }
    report::table(
        &[
            "iter",
            "ops",
            "ops/sec",
            "events/sec",
            "allocs/op",
            "bytes/op",
            "peak_pending",
            "cascaded",
            "slots",
        ],
        &rows,
    );
    println!();
    println!("best: {best_ops_per_sec:.0} ops/sec");

    // Per-worker breakdown of the parallel engine's last iteration:
    // dispatch share, synchronous windows, cross-partition traffic, and
    // barrier stalls, plus the mean conservative window (horizon) width.
    if let Some(stats) = &last_pdes {
        println!();
        report::header(&format!(
            "pdes: {} workers, lookahead {:.3} ms, {} windows, mean horizon {:.3} ms",
            stats.workers.len(),
            stats.lookahead_ms,
            stats.windows(),
            stats.mean_horizon_ms().unwrap_or(0.0),
        ));
        let wrows: Vec<Vec<String>> = stats
            .workers
            .iter()
            .enumerate()
            .map(|(w, s)| {
                vec![
                    format!("{w}"),
                    format!("{}", s.events),
                    format!("{:.2}M", s.events as f64 / best_wall / 1e6),
                    format!("{}", s.merged_remote),
                    format!("{}", s.sent_remote),
                    format!("{}", s.barrier_yields),
                ]
            })
            .collect();
        report::table(
            &["worker", "events", "events/sec", "merged_in", "sent_out", "barrier_yields"],
            &wrows,
        );
    }

    // Fold the headline figures into the BENCH_JSON summary (no-op when
    // the env var is unset). Parallel runs get worker-tagged names so one
    // summary file can hold the whole scaling table.
    let tag = if workers == 0 { String::new() } else { format!("_w{workers}") };
    criterion::record_metric(format!("profile{tag}_best_ops_per_sec"), best_ops_per_sec);
    criterion::record_metric(format!("profile{tag}_best_events_per_sec"), best_events_per_sec);
    if let Some(stats) = &last_pdes {
        criterion::record_metric(format!("pdes{tag}_lookahead_ms"), stats.lookahead_ms);
        criterion::record_metric(format!("pdes{tag}_windows"), stats.windows() as f64);
        criterion::record_metric(
            format!("pdes{tag}_mean_horizon_ms"),
            stats.mean_horizon_ms().unwrap_or(0.0),
        );
        let sent: u64 = stats.workers.iter().map(|w| w.sent_remote).sum();
        let yields: u64 = stats.workers.iter().map(|w| w.barrier_yields).sum();
        criterion::record_metric(format!("pdes{tag}_sent_remote"), sent as f64);
        criterion::record_metric(format!("pdes{tag}_barrier_yields"), yields as f64);
    }
    if cfg!(feature = "alloc-profile") {
        if let Some(last) = rows.last() {
            if let Ok(allocs) = last[4].parse::<f64>() {
                criterion::record_metric(format!("profile{tag}_allocs_per_op"), allocs);
            }
        }
    }
    criterion::write_json_summary();
}
