//! §2.1 context — classic quorum constructions: intersection probability,
//! quorum sizes, and load, including the paper's probabilistic-quorum
//! asymptotics example (`N=100, R=W=30 → p_s ≈ 1.88e-6` vs. `N=3, R=W=1 →
//! p_s = 2/3`).

use pbs_bench::{report, HarnessOptions};
use pbs_core::{staleness, ReplicaConfig};
use pbs_quorum::kquorum::RoundRobinWriter;
use pbs_quorum::{analysis, Grid, Majority, NodeSet, QuorumSystem, RandomFixed, TreeQuorum};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

fn main() {
    let opts = HarnessOptions::parse(200_000);
    println!("Quorum-system constructions and analysis (paper §2.1)");

    report::header("Probabilistic quorums: non-intersection probability (Eq. 1)");
    let mut rows = Vec::new();
    for (n, r, w) in [(3u32, 1u32, 1u32), (3, 1, 2), (3, 2, 2), (10, 3, 3), (100, 30, 30)] {
        let cfg = ReplicaConfig::new(n, r, w).unwrap();
        let exact = staleness::non_intersection_probability(cfg);
        let mc = if n <= 64 {
            let sys = RandomFixed::new(n, r, w);
            format!(
                "{:.2e}",
                1.0 - analysis::intersection_probability(&sys, opts.trials, opts.seed)
            )
        } else {
            "n/a (closed form only)".into()
        };
        rows.push(vec![cfg.to_string(), format!("{exact:.3e}"), mc]);
    }
    report::table(&["config", "p_s exact", "p_s Monte Carlo"], &rows);
    println!("(paper: N=100,R=W=30 → 1.88e-6 — 'excellent, but only asymptotically';");
    println!(" N=3,R=W=1 → 0.667)");

    report::header("Strict constructions: size and load");
    let systems: Vec<(Box<dyn QuorumSystem>, &str)> = vec![
        (Box::new(Majority::new(25)), "⌊N/2⌋+1 = 13"),
        (Box::new(Grid::new(5)), "2√N−1 = 9"),
        (Box::new(TreeQuorum::new(4, 0.0)), "path = log N = 4"),
        (Box::new(TreeQuorum::new(4, 0.3)), "mixed"),
    ];
    let mut rows = Vec::new();
    let mut rng = StdRng::seed_from_u64(opts.seed);
    for (sys, size_note) in &systems {
        let p = analysis::intersection_probability(sys.as_ref(), opts.trials / 4, opts.seed);
        let load = analysis::measure_load(sys.as_ref(), opts.trials / 4, opts.seed + 1);
        let mut sizes = 0u64;
        let samples = 10_000;
        for _ in 0..samples {
            sizes += sys.sample_read(&mut rng).len() as u64;
        }
        rows.push(vec![
            sys.name(),
            size_note.to_string(),
            format!("{:.2}", sizes as f64 / samples as f64),
            report::pct(p),
            format!("{load:.4}"),
        ]);
    }
    report::table(&["system", "min quorum", "mean size", "P(intersect)", "load"], &rows);

    report::header("Deterministic k-quorums (single writer, round robin)");
    let mut rows = Vec::new();
    let mut rng = StdRng::seed_from_u64(opts.seed + 2);
    for (n, k) in [(9u32, 3u32), (10, 3), (12, 4)] {
        let mut writer = RoundRobinWriter::new(n, k);
        for _ in 0..(4 * k) {
            writer.write();
        }
        let mut worst = 0u64;
        for _ in 0..2_000 {
            writer.write();
            let node = rng.gen_range(0..n);
            worst = worst.max(writer.staleness(NodeSet::singleton(node)));
        }
        rows.push(vec![
            format!("N={n}, k={k}"),
            writer.group_size().to_string(),
            writer.worst_case_staleness_bound().to_string(),
            worst.to_string(),
        ]);
    }
    report::table(&["config", "⌈N/k⌉ per write", "bound", "worst observed"], &rows);
}
