//! §6 "Failure modes" — staleness and availability under crashes, with and
//! without hinted handoff and anti-entropy. A failed replica set of N nodes
//! behaves like an N−F set; hints and Merkle sync bound the damage.

use pbs_bench::{report, HarnessOptions};
use pbs_core::ReplicaConfig;
use pbs_dist::Exponential;
use pbs_kvs::cluster::{Cluster, ClusterOptions, TraceOp};
use pbs_kvs::NetworkModel;
use pbs_sim::SimTime;
use std::sync::Arc;

fn net() -> NetworkModel {
    NetworkModel::w_ars(
        Arc::new(Exponential::from_rate(0.1)), // mean 10ms writes (LNKD-DISK-ish)
        Arc::new(Exponential::from_rate(0.5)), // mean 2ms A=R=S
    )
}

/// Run a read/write trace while one replica crash-loops; report
/// consistency, failure counts, and detector stats.
fn scenario(
    name: &str,
    hinted: bool,
    sync_ms: Option<f64>,
    wipe: bool,
    ops: usize,
    seed: u64,
) -> Vec<String> {
    let cfg = ReplicaConfig::new(3, 1, 2).unwrap(); // W=2: crashes hurt commits
    let mut opts = ClusterOptions::validation(cfg, seed);
    opts.hinted_handoff = hinted;
    opts.hint_timeout_ms = 100.0;
    opts.hint_flush_interval_ms = 200.0;
    opts.sync_interval_ms = sync_ms;
    opts.wipe_on_crash = wipe;
    opts.op_timeout_ms = 5_000.0;
    let mut cluster = Cluster::new(opts, net());

    // Crash-loop node 1: down 500ms out of every 2s.
    for cycle in 0..((ops as f64 * 5.0 / 2000.0).ceil() as usize + 1) {
        cluster.crash_node_at(1, SimTime::from_ms(250.0 + 2000.0 * cycle as f64), 500.0);
    }

    // Write/read pairs per key: op 2j writes key (j mod 8), op 2j+1 reads
    // the same key 5 ms later, racing the write's propagation tail.
    let trace: Vec<TraceOp> = (0..ops)
        .map(|i| TraceOp {
            at_ms: 300.0 + i as f64 * 5.0,
            is_read: i % 2 == 1,
            key: ((i / 2) % 8) as u64,
        })
        .collect();
    let report = cluster.run_trace(&trace);
    let hints: u64 = (0..3).map(|i| cluster.node(i).hints_delivered).sum();
    let syncs: u64 = (0..3).map(|i| cluster.node(i).sync_rounds).sum();
    vec![
        name.to_string(),
        pbs_bench::report::pct(report.consistency_rate()),
        report.failed_writes.to_string(),
        report.incomplete_reads.to_string(),
        hints.to_string(),
        syncs.to_string(),
    ]
}

fn main() {
    let opts = HarnessOptions::parse(4_000);
    println!("Failure modes (paper §6): crash-looping replica, N=3, R=1, W=2");
    println!("({} ops per scenario; node 1 down 500ms of every 2s)", opts.trials);

    report::header("Scenario comparison");
    let rows = vec![
        scenario("baseline (no healing)", false, None, false, opts.trials, opts.seed),
        scenario("hinted handoff", true, None, false, opts.trials, opts.seed),
        scenario("anti-entropy (200ms)", false, Some(200.0), false, opts.trials, opts.seed),
        scenario("hints + anti-entropy", true, Some(200.0), false, opts.trials, opts.seed),
        scenario("crash wipes state + hints", true, Some(200.0), true, opts.trials, opts.seed),
    ];
    report::table(
        &["scenario", "P(consistent)", "failed writes", "lost reads", "hints", "syncs"],
        &rows,
    );
    println!();
    println!("Expected shape: writes fail only when the crashed node was coordinating (the");
    println!("two healthy replicas still form the W=2 quorum — §6's 'an N replica set with");
    println!("F failures behaves like an N−F set'). The crashed replica accumulates");
    println!("staleness during downtime; hinted handoff repairs it after recovery and");
    println!("anti-entropy converges wiped state, lifting P(consistent).");
}
