//! §6 "Failure modes" — staleness and availability under crashes, with and
//! without hinted handoff and anti-entropy, measured under **open-loop**
//! probe load (write→read pairs from an in-sim client actor). A failed
//! replica set of N nodes behaves like an N−F set; hints and Merkle sync
//! bound the damage.

use pbs_bench::{report, HarnessOptions};
use pbs_core::ReplicaConfig;
use pbs_dist::Exponential;
use pbs_kvs::{
    run_open_loop_with, ClientOptions, ClusterOptions, NetworkModel, OpenLoopOptions,
};
use pbs_sim::SimTime;
use pbs_workload::{FixedRate, OpMix, OpSource, OpStream, UniformKeys};
use std::cell::Cell;
use std::sync::Arc;

fn net() -> NetworkModel {
    NetworkModel::w_ars(
        Arc::new(Exponential::from_rate(0.1)), // mean 10ms writes (LNKD-DISK-ish)
        Arc::new(Exponential::from_rate(0.5)), // mean 2ms A=R=S
    )
}

/// Run open-loop write→read probes while one replica crash-loops; report
/// consistency, failure counts, and healing-mechanism activity.
fn scenario(
    name: &str,
    hinted: bool,
    sync_ms: Option<f64>,
    wipe: bool,
    ops: usize,
    seed: u64,
) -> Vec<String> {
    let cfg = ReplicaConfig::new(3, 1, 2).unwrap(); // W=2: crashes hurt commits
    let mut opts = ClusterOptions::validation(cfg, seed);
    opts.hinted_handoff = hinted;
    opts.hint_timeout_ms = 100.0;
    opts.hint_flush_interval_ms = 200.0;
    opts.sync_interval_ms = sync_ms;
    opts.wipe_on_crash = wipe;
    opts.op_timeout_ms = 5_000.0;

    // One probe pair per 10 ms: a write, then a read of the same key 5 ms
    // later (racing the write's propagation tail) — the same shape as the
    // old pre-built trace, generated lazily.
    let pairs = ops / 2;
    let duration_ms = pairs as f64 * 10.0;
    let engine = OpenLoopOptions::new(duration_ms, 1_000.0, opts.op_timeout_ms);
    let hints = Cell::new(0u64);
    let syncs = Cell::new(0u64);
    let rep = run_open_loop_with(
        opts,
        &net(),
        &engine,
        1,
        ClientOptions {
            op_timeout_ms: opts.op_timeout_ms,
            probe_read_offset_ms: Some(5.0),
            ..ClientOptions::default()
        },
        |_| -> Box<dyn OpSource> {
            Box::new(OpStream::new(
                FixedRate::new(10.0),
                UniformKeys::new(8),
                OpMix::writes_only(),
                1,
            ))
        },
        // Crash-loop node 1: down 500ms out of every 2s.
        |cluster| {
            for cycle in 0..((duration_ms / 2000.0).ceil() as usize + 1) {
                cluster.crash_node_at(1, SimTime::from_ms(250.0 + 2000.0 * cycle as f64), 500.0);
            }
        },
        |cluster| {
            hints.set((0..3).map(|i| cluster.node(i).hints_delivered).sum());
            syncs.set((0..3).map(|i| cluster.node(i).sync_rounds).sum());
        },
    );

    vec![
        name.to_string(),
        report::pct(rep.consistency_rate()),
        rep.failed_writes.to_string(),
        rep.incomplete_reads.to_string(),
        hints.get().to_string(),
        syncs.get().to_string(),
    ]
}

fn main() {
    let opts = HarnessOptions::parse(4_000);
    println!("Failure modes (paper §6): crash-looping replica, N=3, R=1, W=2");
    println!(
        "({} open-loop probe ops per scenario; node 1 down 500ms of every 2s)",
        opts.trials
    );

    report::header("Scenario comparison");
    let rows = vec![
        scenario("baseline (no healing)", false, None, false, opts.trials, opts.seed),
        scenario("hinted handoff", true, None, false, opts.trials, opts.seed),
        scenario("anti-entropy (200ms)", false, Some(200.0), false, opts.trials, opts.seed),
        scenario("hints + anti-entropy", true, Some(200.0), false, opts.trials, opts.seed),
        scenario("crash wipes state + hints", true, Some(200.0), true, opts.trials, opts.seed),
    ];
    report::table(
        &["scenario", "P(consistent)", "failed writes", "lost reads", "hints", "syncs"],
        &rows,
    );
    println!();
    println!("Expected shape: coordinator selection skips the crashed node, so writes fail");
    println!("only when the two healthy replicas cannot form the W=2 quorum (§6's 'an N");
    println!("replica set with F failures behaves like an N−F set'). The crashed replica");
    println!("accumulates staleness during downtime; hinted handoff repairs it after");
    println!("recovery and anti-entropy converges wiped state, lifting P(consistent).");
}
