//! Property tests for the distribution families: CDF shape, closed-form
//! moments vs. sampling, quantile/CDF inversion, and `Empirical`
//! round-tripping.

use pbs_dist::{Constant, Empirical, Exponential, LatencyDistribution, Mixture, Pareto};
use proptest::prelude::*;
use rand::rngs::StdRng;
use rand::SeedableRng;

fn sample_n(d: &dyn LatencyDistribution, n: usize, seed: u64) -> Vec<f64> {
    let mut rng = StdRng::seed_from_u64(seed);
    (0..n).map(|_| d.sample(&mut rng)).collect()
}

fn assert_cdf_well_formed(d: &dyn LatencyDistribution, xs: &[f64]) {
    let mut prev = 0.0;
    for &x in xs {
        let c = d.cdf(x);
        assert!((0.0..=1.0).contains(&c), "cdf({x}) = {c} out of [0, 1]");
        assert!(c >= prev - 1e-12, "cdf not monotone at {x}: {c} < {prev}");
        prev = c;
    }
    assert_eq!(d.cdf(-1.0), 0.0, "latencies are nonnegative");
}

proptest! {
    #![proptest_config(ProptestConfig { cases: 40, ..ProptestConfig::default() })]

    /// CDFs are monotone nondecreasing into [0, 1] for every family.
    #[test]
    fn cdfs_monotone(rate in 0.01f64..5.0, xm in 0.05f64..5.0, alpha in 0.2f64..12.0, w in 0.0f64..=1.0) {
        let grid: Vec<f64> = (0..200).map(|i| i as f64 * 0.25).collect();
        assert_cdf_well_formed(&Exponential::from_rate(rate), &grid);
        assert_cdf_well_formed(&Pareto::new(xm, alpha), &grid);
        assert_cdf_well_formed(
            &Mixture::new(w, Pareto::new(xm, alpha), Exponential::from_rate(rate)),
            &grid,
        );
        assert_cdf_well_formed(&Constant::new(xm), &grid);
    }

    /// `quantile` inverts `cdf` wherever the CDF is continuous and strictly
    /// increasing (everywhere on the support, for these families).
    #[test]
    fn quantile_inverts_cdf(rate in 0.01f64..5.0, xm in 0.05f64..5.0, alpha in 0.2f64..12.0, w in 0.05f64..0.95, p in 0.001f64..0.999) {
        let exp = Exponential::from_rate(rate);
        prop_assert!((exp.cdf(exp.quantile(p)) - p).abs() < 1e-9);
        let pareto = Pareto::new(xm, alpha);
        prop_assert!((pareto.cdf(pareto.quantile(p)) - p).abs() < 1e-9);
        let mix = Mixture::new(w, pareto, exp);
        prop_assert!((mix.cdf(mix.quantile(p)) - p).abs() < 1e-7, "mixture at p={}", p);
    }

    /// Sample means match the closed-form means within Monte-Carlo
    /// tolerance (CLT bound scaled generously).
    #[test]
    fn sample_means_match_closed_form(rate in 0.05f64..2.0, xm in 0.1f64..3.0, seed in 0u64..1_000) {
        let n = 40_000;
        let exp = Exponential::from_rate(rate);
        let mean = sample_n(&exp, n, seed).iter().sum::<f64>() / n as f64;
        // Exponential: σ = mean; 6σ/√n tolerance.
        prop_assert!(
            (mean - exp.mean()).abs() < 6.0 * exp.mean() / (n as f64).sqrt(),
            "Exp(λ={}) sample mean {} vs {}", rate, mean, exp.mean()
        );

        // Pareto with α > 2 so the variance exists and the CLT bound holds:
        // σ² = xm²·α / ((α−1)²(α−2)).
        let alpha = 4.0;
        let pareto = Pareto::new(xm, alpha);
        let mean = sample_n(&pareto, n, seed ^ 0xABCD).iter().sum::<f64>() / n as f64;
        let sigma = xm * (alpha / (alpha - 2.0)).sqrt() / (alpha - 1.0);
        prop_assert!(
            (mean - pareto.mean()).abs() < 6.0 * sigma / (n as f64).sqrt(),
            "Pareto(xm={}) sample mean {} vs {}", xm, mean, pareto.mean()
        );
    }

    /// Pareto samples never fall below the scale parameter; exponential
    /// samples are nonnegative and finite.
    #[test]
    fn sample_supports(rate in 0.05f64..5.0, xm in 0.05f64..5.0, alpha in 0.3f64..10.0, seed in 0u64..1_000) {
        for v in sample_n(&Pareto::new(xm, alpha), 2_000, seed) {
            prop_assert!(v >= xm && v.is_finite());
        }
        for v in sample_n(&Exponential::from_rate(rate), 2_000, seed) {
            prop_assert!(v >= 0.0 && v.is_finite());
        }
    }

    /// `Empirical` round-trips its input quantiles: the quantile at each
    /// input sample's rank is the sample itself, and bootstrap sampling
    /// only ever returns input values.
    #[test]
    fn empirical_round_trips_quantiles(raw in prop::collection::vec(0.0f64..100.0, 1..200), seed in 0u64..1_000) {
        let emp = Empirical::from_samples(raw.clone());
        let n = raw.len();
        let mut sorted = raw.clone();
        sorted.sort_by(|a, b| a.partial_cmp(b).unwrap());

        // Nearest-rank round trip: the k-th order statistic comes back for
        // any percentile strictly inside (k/n, (k+1)/n]; k + 0.5 avoids the
        // floating-point boundary of the exact rank.
        for (k, &x) in sorted.iter().enumerate() {
            let pct = 100.0 * (k as f64 + 0.5) / n as f64;
            prop_assert_eq!(emp.samples().percentile(pct), x, "rank {}", k);
        }
        prop_assert_eq!(emp.samples().min(), sorted[0]);
        prop_assert_eq!(emp.samples().max(), sorted[n - 1]);

        for v in sample_n(&emp, 500, seed) {
            prop_assert!(raw.contains(&v), "bootstrap returned unseen value {}", v);
        }
    }

    /// The empirical CDF evaluated at a quantile recovers at least the
    /// requested probability (ECDF/quantile Galois connection).
    #[test]
    fn empirical_cdf_quantile_consistent(raw in prop::collection::vec(0.0f64..50.0, 1..100), p in 0.01f64..0.99) {
        let emp = Empirical::from_samples(raw);
        prop_assert!(emp.cdf(emp.quantile(p)) >= p - 1e-12);
    }
}
