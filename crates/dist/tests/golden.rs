//! Golden tests pinning the `production` fits.
//!
//! The reproduced Table 2/3 numbers — one-way quantiles of the fitted
//! distributions and the §5.6 headline percentiles they imply — must not
//! drift when `pbs-dist` is refactored. Values here were computed from the
//! closed-form CDFs of the shipped parameters (independently, via
//! bisection); tolerances are numerical, not statistical.
//!
//! The *operation-level* §5.6 numbers (97.4% immediate consistency for
//! LNKD-SSD, write p99.9 ≈ 10.47 ms for LNKD-DISK, …) are pinned by the
//! Monte-Carlo tests in `pbs-wars::production`; these goldens protect the
//! one-way inputs those simulations consume.

use pbs_dist::production as fits;
use pbs_dist::LatencyDistribution;

#[track_caller]
fn assert_quantiles(d: &dyn LatencyDistribution, golden: [(f64, f64); 4], mean: f64) {
    for (p, want) in golden {
        let got = d.quantile(p);
        assert!(
            (got - want).abs() <= 1e-4 * want.max(1.0),
            "quantile({p}) drifted: got {got}, golden {want}"
        );
    }
    assert!(
        (d.mean() - mean).abs() <= 1e-4 * mean,
        "mean drifted: got {}, golden {mean}",
        d.mean()
    );
}

/// LNKD-SSD one-way leg (`W = A = R = S`): sub-ms body, p99.9 just under
/// 4 ms from the calibrated straggler tail.
#[test]
fn lnkd_ssd_one_way_quantiles() {
    assert_quantiles(
        &fits::lnkd_ssd(),
        [(0.5, 0.252661), (0.95, 0.360699), (0.99, 1.667707), (0.999, 3.970292)],
        0.300272,
    );
}

/// LNKD-DISK write leg: seek-time body, exponential queueing tail
/// reaching ~55 ms at p99.9 (Table 3's heavy disk tail).
#[test]
fn lnkd_disk_write_one_way_quantiles() {
    assert_quantiles(
        &fits::lnkd_disk_write(),
        [(0.5, 2.462381), (0.95, 14.599727), (0.99, 24.684371), (0.999, 54.678425)],
        4.569331,
    );
    // A=R=S reuse the SSD fit exactly (the paper's structure).
    assert_eq!(fits::lnkd_disk_ars(), fits::lnkd_ssd());
}

/// YMMR write leg: the seconds-scale fsync tail that pushes 99.9%
/// consistency to ≈1.4 s (§5.6 / Table 4).
#[test]
fn ymmr_write_one_way_quantiles() {
    assert_quantiles(
        &fits::ymmr_write(),
        [(0.5, 3.762704), (0.95, 71.183937), (0.99, 645.817931), (0.999, 1468.169565)],
        25.801438,
    );
}

/// YMMR ack/read/response legs: a pure short-tailed Pareto.
#[test]
fn ymmr_ars_one_way_quantiles() {
    assert_quantiles(
        &fits::ymmr_ars(),
        [(0.5, 1.800154), (0.95, 3.299648), (0.99, 5.039727), (0.999, 9.237723)],
        2.035714,
    );
}

/// The WAN penalty of §5.5 is exactly 75 ms one way.
#[test]
fn wan_constant_pinned() {
    assert_eq!(fits::WAN_ONE_WAY_DELAY_MS, 75.0);
}

/// Table 2's published Yammer operation percentiles (refit inputs) are
/// transcribed correctly: medians and tails in the right bands, reads
/// faster than writes at every percentile.
#[test]
fn table2_targets_pinned() {
    let reads = fits::table2_read_targets();
    let writes = fits::table2_write_targets();
    assert_eq!(reads.len(), 4);
    assert_eq!(writes.len(), 4);
    for (r, w) in reads.iter().zip(&writes) {
        assert_eq!(r.pct, w.pct);
        assert!(r.value_ms < w.value_ms, "Riak reads are faster than writes");
    }
    assert_eq!(reads[1].value_ms, 3.75, "published read median");
    assert_eq!(writes[1].value_ms, 18.34, "published write median");
    assert_eq!(writes[3].value_ms, 903.9, "published write p99");
}

/// Table 1 reconstructions stay deterministic (fixed convolution seed):
/// single-node disk writes are slower than SSD writes at every percentile.
#[test]
fn table1_targets_deterministic_and_ordered() {
    let (disk_a, mean_a) = fits::table1_disk_targets();
    let (disk_b, mean_b) = fits::table1_disk_targets();
    assert_eq!(disk_a, disk_b, "reconstruction must be deterministic");
    assert_eq!(mean_a, mean_b);

    let (ssd, _) = fits::table1_ssd_targets();
    for (d, s) in disk_a.iter().zip(&ssd) {
        assert!(d.value_ms > s.value_ms, "disk p{} must exceed SSD", d.pct);
    }
    // Sanity bands for the medians (one W+A round trip).
    assert!((0.4..0.7).contains(&ssd[0].value_ms), "SSD median {}", ssd[0].value_ms);
    assert!((2.0..3.5).contains(&disk_a[0].value_ms), "disk median {}", disk_a[0].value_ms);
}
