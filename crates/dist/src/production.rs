//! The paper's production one-way latency fits (Tables 2–3, §5.4) and the
//! WAN constants of §5.5.
//!
//! LinkedIn (Voldemort; `LNKD-SSD`, `LNKD-DISK`) and Yammer (Riak;
//! `YMMR`) published per-percentile latency tables rather than raw traces;
//! the paper fitted each one-way WARS leg with a Pareto body plus (where
//! the tail demanded it) an exponential straggler component. These
//! presets reproduce the paper's headline numbers — §5.6's immediate
//! consistency probabilities and operation-latency percentiles are pinned
//! by tests in `pbs-wars` — and the golden tests in
//! `crates/dist/tests/golden.rs` pin the one-way quantiles so refactors
//! cannot silently drift.

use crate::dist::{Exponential, Mixture, Pareto};
use crate::fit::PercentileTarget;
use crate::LatencyDistribution;

/// One-way WAN delay between datacenters (§5.5): 75 ms.
pub const WAN_ONE_WAY_DELAY_MS: f64 = 75.0;

/// LNKD-SSD — LinkedIn Voldemort on SSDs. One fit serves all four legs
/// (`W = A = R = S`): the paper's short-tailed `Pareto(xm=0.235, α=10)`
/// body, plus a ~5% millisecond-scale exponential straggler component
/// calibrated so the model reproduces §5.6's headline numbers (97.4%
/// immediately consistent, >99.95% at 5 ms, write p99.9 ≈ 0.657 ms) — a
/// pure Pareto with α=10 is so concentrated that no read would ever beat a
/// write to a replica, giving 100% immediate consistency instead of 97.4%.
pub fn lnkd_ssd() -> Mixture {
    Mixture::new(0.947, Pareto::new(0.235, 10.0), Exponential::from_rate(1.0))
}

/// LNKD-DISK write leg — LinkedIn Voldemort on 15k-RPM spinning disks.
/// A Pareto seek-time body mixed with an exponential queueing tail.
pub fn lnkd_disk_write() -> Mixture {
    Mixture::new(0.38, Pareto::new(1.05, 1.51), Exponential::from_rate(0.183))
}

/// LNKD-DISK ack/read/response legs: network-bound, identical to the SSD
/// fit (the paper reuses it — disks only slow the write path).
pub fn lnkd_disk_ars() -> Mixture {
    lnkd_ssd()
}

/// YMMR write leg — Yammer Riak. An fsync-bound Pareto body with a
/// seconds-scale exponential straggler tail (§5.6 traces 99.9%
/// consistency to ≈1.4 s because of it).
pub fn ymmr_write() -> Mixture {
    Mixture::new(0.939, Pareto::new(3.0, 3.35), Exponential::from_rate(0.0028))
}

/// YMMR ack/read/response legs.
pub fn ymmr_ars() -> Mixture {
    Mixture::pure_pareto(Pareto::new(1.5, 3.8))
}

/// Table 1 (spinning-disk column): per-node Voldemort **write** operation
/// latencies, reconstructed as quantiles of one `W + A` round trip of the
/// published fits (the raw table is an input we don't have in machine
/// form). Returns `(percentile targets, mean)`.
pub fn table1_disk_targets() -> (Vec<PercentileTarget>, f64) {
    let write = lnkd_disk_write();
    let ack = lnkd_disk_ars();
    one_way_pair_targets(&write, &ack)
}

/// Table 1 (SSD column): per-node Voldemort write latencies,
/// reconstructed like [`table1_disk_targets`].
pub fn table1_ssd_targets() -> (Vec<PercentileTarget>, f64) {
    let write = lnkd_ssd();
    let ack = lnkd_ssd();
    one_way_pair_targets(&write, &ack)
}

/// Quantiles of `X + Y` for independent one-way legs, via a fixed-seed
/// convolution sample (deterministic; 200k points resolve p99.9 to ~2%).
fn one_way_pair_targets(
    x: &dyn LatencyDistribution,
    y: &dyn LatencyDistribution,
) -> (Vec<PercentileTarget>, f64) {
    use rand::rngs::StdRng;
    use rand::SeedableRng;
    let mut rng = StdRng::seed_from_u64(0x7AB1E1);
    let n = 200_000;
    let samples: Vec<f64> = (0..n).map(|_| x.sample(&mut rng) + y.sample(&mut rng)).collect();
    let sorted = crate::stats::SortedSamples::new(samples);
    let targets = [50.0, 95.0, 99.0, 99.9]
        .iter()
        .map(|&pct| PercentileTarget::new(pct, sorted.percentile(pct)))
        .collect();
    (targets, sorted.mean())
}

/// Table 2: Yammer Riak **read** operation latencies (N=3, R=2),
/// percentiles as published.
pub fn table2_read_targets() -> Vec<PercentileTarget> {
    vec![
        PercentileTarget::new(5.0, 1.55),
        PercentileTarget::new(50.0, 3.75),
        PercentileTarget::new(95.0, 36.08),
        PercentileTarget::new(99.0, 113.2),
    ]
}

/// Table 2: Yammer Riak **write** operation latencies (N=3, W=2),
/// percentiles as published.
pub fn table2_write_targets() -> Vec<PercentileTarget> {
    vec![
        PercentileTarget::new(5.0, 5.73),
        PercentileTarget::new(50.0, 18.34),
        PercentileTarget::new(95.0, 387.6),
        PercentileTarget::new(99.0, 903.9),
    ]
}

/// N-RMSE values the paper reports for its Table 3 one-way fits, for
/// side-by-side display against our refits.
pub mod published_nrmse {
    /// YMMR write-leg fit quality.
    pub const YMMR_W: f64 = 1.28;
    /// YMMR ack/read/response-leg fit quality.
    pub const YMMR_ARS: f64 = 0.44;
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fits_have_the_documented_shapes() {
        let ssd = lnkd_ssd();
        assert!(ssd.pareto_weight() > 0.9, "SSD is Pareto-dominated");
        assert!(
            ssd.pareto_weight() < 1.0 && ssd.exponential().mean() >= 1.0,
            "SSD carries the calibrated straggler tail (97.4% immediate consistency)"
        );
        assert_eq!(lnkd_disk_ars(), lnkd_ssd());
        let disk_w = lnkd_disk_write();
        assert!(disk_w.pareto_weight() < 1.0, "disk writes carry an exponential tail");
        assert!(
            ymmr_write().exponential().mean() > 100.0,
            "YMMR's straggler tail is seconds-scale"
        );
    }

    #[test]
    fn table_targets_are_monotone_in_percentile() {
        let (disk, disk_mean) = table1_disk_targets();
        let (ssd, ssd_mean) = table1_ssd_targets();
        for targets in [&disk, &ssd, &table2_read_targets(), &table2_write_targets()] {
            for pair in targets.windows(2) {
                assert!(pair[0].pct < pair[1].pct);
                assert!(pair[0].value_ms <= pair[1].value_ms);
            }
        }
        assert!(disk_mean > ssd_mean, "disks are slower than SSDs on average");
    }
}
