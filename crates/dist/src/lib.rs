//! # pbs-dist — latency distributions, mixture fitting, sample statistics
//!
//! Every latency in the PBS reproduction — the four WARS legs, the
//! simulated store's per-message delays, measured operation latencies —
//! flows through this crate:
//!
//! * [`LatencyDistribution`] — the object-safe sampling/query trait, with
//!   [`DynDistribution`] as the shared-ownership form the rest of the
//!   workspace passes around.
//! * [`Constant`], [`Exponential`], [`Pareto`], [`Empirical`], and
//!   [`Mixture`] — the concrete families. The paper's production fits
//!   (Table 3) are Pareto/exponential mixtures; `Empirical` backs the
//!   online-profiling path (§5.5/§6).
//! * [`stats`] — sorted-sample queries ([`stats::SortedSamples`]),
//!   percentiles, ECDFs, and the RMSE / N-RMSE error metrics the paper
//!   reports.
//! * [`fit`] — refitting mixtures to published percentile tables with a
//!   Nelder–Mead quantile matcher (§5.4's methodology).
//! * [`production`] — the fitted LNKD-SSD / LNKD-DISK / YMMR one-way
//!   models and WAN constants of Tables 2–3.
//!
//! All latencies are in **milliseconds** throughout the workspace.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod fit;
pub mod production;
pub mod stats;

mod dist;

pub use dist::{Constant, Empirical, Exponential, Mixture, Pareto};

use rand::RngCore;
use std::sync::Arc;

/// A nonnegative latency distribution (milliseconds).
///
/// Object-safe: models hold `dyn LatencyDistribution` trait objects (via
/// [`DynDistribution`]) so one simulation can mix analytic and empirical
/// legs freely.
pub trait LatencyDistribution: Send + Sync {
    /// Draw one latency.
    fn sample(&self, rng: &mut dyn RngCore) -> f64;

    /// `P(X ≤ x)`.
    fn cdf(&self, x: f64) -> f64;

    /// Smallest `x` with `P(X ≤ x) ≥ p`, for `p ∈ [0, 1)`.
    ///
    /// The default implementation inverts [`cdf`](Self::cdf) by bisection;
    /// families with closed-form inverses override it.
    fn quantile(&self, p: f64) -> f64 {
        assert!((0.0..1.0).contains(&p), "quantile needs p in [0, 1): {p}");
        // Bracket the quantile: grow the upper bound geometrically.
        let mut lo = 0.0f64;
        let mut hi = 1.0f64;
        let mut guard = 0;
        while self.cdf(hi) < p {
            hi *= 2.0;
            guard += 1;
            assert!(guard < 2_000, "quantile bracket diverged at p={p}");
        }
        // 120 bisection steps ≈ full f64 resolution for any bracket.
        for _ in 0..120 {
            let mid = 0.5 * (lo + hi);
            if self.cdf(mid) < p {
                lo = mid;
            } else {
                hi = mid;
            }
        }
        0.5 * (lo + hi)
    }

    /// The infimum of the support: the largest `x` such that no sample
    /// can fall below `x`.
    ///
    /// This is **not** `quantile(0.0)` through the bisection default —
    /// for a cdf that is identically zero on `[0, xm]` (Pareto), the
    /// bisection bracket collapses to 0 rather than `xm`. Conservative
    /// consumers (the parallel engine's lookahead computation) need the
    /// true support minimum, so every family overrides this; the default
    /// of 0 is always sound but pessimal.
    fn lower_bound(&self) -> f64 {
        0.0
    }

    /// The distribution mean (may be `f64::INFINITY`, e.g. Pareto α ≤ 1).
    fn mean(&self) -> f64;

    /// Human-readable parameterisation, e.g. `"Exp(λ=0.18300)"`.
    fn describe(&self) -> String;
}

/// Shared-ownership, clonable form of [`LatencyDistribution`] — what
/// models store per WARS leg.
pub type DynDistribution = Arc<dyn LatencyDistribution>;
