//! The concrete distribution families.

use crate::stats::SortedSamples;
use crate::LatencyDistribution;
use rand::{Rng, RngCore};

/// Draw `u ∈ [0, 1)` so that `1 - u ∈ (0, 1]` is safe under `ln`.
fn unit(rng: &mut dyn RngCore) -> f64 {
    rng.gen::<f64>()
}

/// A degenerate point mass: every sample is exactly `value`.
///
/// Used by unit tests and as the "no delay" leg in analytic cross-checks.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Constant {
    value: f64,
}

impl Constant {
    /// Point mass at `value ≥ 0`.
    pub fn new(value: f64) -> Self {
        assert!(value >= 0.0 && value.is_finite(), "constant latency must be finite and ≥ 0");
        Constant { value }
    }

    /// The point's location.
    pub fn value(&self) -> f64 {
        self.value
    }
}

impl LatencyDistribution for Constant {
    fn sample(&self, _rng: &mut dyn RngCore) -> f64 {
        self.value
    }

    fn cdf(&self, x: f64) -> f64 {
        if x >= self.value {
            1.0
        } else {
            0.0
        }
    }

    fn quantile(&self, p: f64) -> f64 {
        assert!((0.0..1.0).contains(&p), "quantile needs p in [0, 1): {p}");
        self.value
    }

    fn lower_bound(&self) -> f64 {
        self.value
    }

    fn mean(&self) -> f64 {
        self.value
    }

    fn describe(&self) -> String {
        format!("Const({})", self.value)
    }
}

/// The exponential distribution with rate `λ` (mean `1/λ` ms).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Exponential {
    rate: f64,
}

impl Exponential {
    /// From the rate parameter `λ > 0` (events per ms).
    pub fn from_rate(rate: f64) -> Self {
        assert!(rate > 0.0 && rate.is_finite(), "exponential rate must be finite and > 0");
        Exponential { rate }
    }

    /// From the mean `1/λ > 0` (ms).
    pub fn from_mean(mean: f64) -> Self {
        assert!(mean > 0.0 && mean.is_finite(), "exponential mean must be finite and > 0");
        Exponential { rate: 1.0 / mean }
    }

    /// The rate `λ`.
    pub fn rate(&self) -> f64 {
        self.rate
    }
}

impl LatencyDistribution for Exponential {
    fn sample(&self, rng: &mut dyn RngCore) -> f64 {
        // Inverse transform; 1 - u ∈ (0, 1] keeps ln finite.
        -(1.0 - unit(rng)).ln() / self.rate
    }

    fn cdf(&self, x: f64) -> f64 {
        if x <= 0.0 {
            0.0
        } else {
            1.0 - (-self.rate * x).exp()
        }
    }

    fn quantile(&self, p: f64) -> f64 {
        assert!((0.0..1.0).contains(&p), "quantile needs p in [0, 1): {p}");
        -(1.0 - p).ln() / self.rate
    }

    fn lower_bound(&self) -> f64 {
        0.0
    }

    fn mean(&self) -> f64 {
        1.0 / self.rate
    }

    fn describe(&self) -> String {
        format!("Exp(λ={:.5})", self.rate)
    }
}

/// The Pareto distribution with scale `xm` (minimum value) and shape `α`.
///
/// The paper's short-tailed production fits (e.g. LNKD-SSD's
/// `Pareto(xm=0.235, α=10)`) and the heavy-tailed components of the disk
/// fits both come from this family.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Pareto {
    xm: f64,
    alpha: f64,
}

impl Pareto {
    /// Scale `xm > 0`, shape `α > 0`.
    pub fn new(xm: f64, alpha: f64) -> Self {
        assert!(xm > 0.0 && xm.is_finite(), "pareto scale must be finite and > 0");
        assert!(alpha > 0.0 && alpha.is_finite(), "pareto shape must be finite and > 0");
        Pareto { xm, alpha }
    }

    /// The scale (support minimum) `xm`.
    pub fn xm(&self) -> f64 {
        self.xm
    }

    /// The shape `α`.
    pub fn alpha(&self) -> f64 {
        self.alpha
    }
}

impl LatencyDistribution for Pareto {
    fn sample(&self, rng: &mut dyn RngCore) -> f64 {
        self.xm * (1.0 - unit(rng)).powf(-1.0 / self.alpha)
    }

    fn cdf(&self, x: f64) -> f64 {
        if x <= self.xm {
            0.0
        } else {
            1.0 - (self.xm / x).powf(self.alpha)
        }
    }

    fn quantile(&self, p: f64) -> f64 {
        assert!((0.0..1.0).contains(&p), "quantile needs p in [0, 1): {p}");
        self.xm * (1.0 - p).powf(-1.0 / self.alpha)
    }

    fn lower_bound(&self) -> f64 {
        self.xm
    }

    fn mean(&self) -> f64 {
        if self.alpha <= 1.0 {
            f64::INFINITY
        } else {
            self.alpha * self.xm / (self.alpha - 1.0)
        }
    }

    fn describe(&self) -> String {
        format!("Pareto(xm={:.3}, α={:.3})", self.xm, self.alpha)
    }
}

/// A two-component Pareto + exponential mixture — the shape of every
/// production fit in Table 3 (§5.4): a short-tailed Pareto body for the
/// common case plus an exponential tail for fsync/GC/queueing stragglers.
///
/// With probability `pareto_weight` a sample comes from the Pareto
/// component, otherwise from the exponential.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Mixture {
    pareto_weight: f64,
    pareto: Pareto,
    exponential: Exponential,
}

impl Mixture {
    /// Mix `pareto` (probability `pareto_weight ∈ [0, 1]`) with
    /// `exponential` (probability `1 - pareto_weight`).
    pub fn new(pareto_weight: f64, pareto: Pareto, exponential: Exponential) -> Self {
        assert!(
            (0.0..=1.0).contains(&pareto_weight),
            "mixture weight must lie in [0, 1]: {pareto_weight}"
        );
        Mixture { pareto_weight, pareto, exponential }
    }

    /// A pure Pareto in mixture clothing (weight 1) — used by fits whose
    /// exponential component vanished.
    pub fn pure_pareto(pareto: Pareto) -> Self {
        // The exponential component is unreachable at weight 1; any valid
        // parameter will do.
        Mixture { pareto_weight: 1.0, pareto, exponential: Exponential::from_rate(1.0) }
    }

    /// Probability of the Pareto component.
    pub fn pareto_weight(&self) -> f64 {
        self.pareto_weight
    }

    /// The Pareto component.
    pub fn pareto(&self) -> Pareto {
        self.pareto
    }

    /// The exponential component.
    pub fn exponential(&self) -> Exponential {
        self.exponential
    }
}

impl LatencyDistribution for Mixture {
    fn sample(&self, rng: &mut dyn RngCore) -> f64 {
        if unit(rng) < self.pareto_weight {
            self.pareto.sample(rng)
        } else {
            self.exponential.sample(rng)
        }
    }

    fn cdf(&self, x: f64) -> f64 {
        self.pareto_weight * self.pareto.cdf(x)
            + (1.0 - self.pareto_weight) * self.exponential.cdf(x)
    }

    fn lower_bound(&self) -> f64 {
        // Only components that can actually be drawn count: a weight-1
        // mixture (pure_pareto) keeps the Pareto's xm rather than the
        // unreachable exponential's 0.
        if self.pareto_weight >= 1.0 {
            self.pareto.lower_bound()
        } else if self.pareto_weight <= 0.0 {
            self.exponential.lower_bound()
        } else {
            self.pareto.lower_bound().min(self.exponential.lower_bound())
        }
    }

    fn mean(&self) -> f64 {
        // Skip zero-weight components: 0 × ∞ (an α ≤ 1 Pareto) is NaN.
        if self.pareto_weight <= 0.0 {
            self.exponential.mean()
        } else if self.pareto_weight >= 1.0 {
            self.pareto.mean()
        } else {
            self.pareto_weight * self.pareto.mean()
                + (1.0 - self.pareto_weight) * self.exponential.mean()
        }
    }

    fn describe(&self) -> String {
        if self.pareto_weight >= 1.0 {
            self.pareto.describe()
        } else if self.pareto_weight <= 0.0 {
            self.exponential.describe()
        } else {
            format!(
                "{:.1}%: {} + {:.1}%: {}",
                self.pareto_weight * 100.0,
                self.pareto.describe(),
                (1.0 - self.pareto_weight) * 100.0,
                self.exponential.describe()
            )
        }
    }
}

/// The empirical distribution of a batch of measured latencies:
/// bootstrap resampling for [`sample`](LatencyDistribution::sample), ECDF
/// and order statistics for queries.
///
/// Backs the online-profiling path (§5.5/§6): drain WARS leg timestamps
/// out of a live store, wrap them here, and predict.
#[derive(Debug, Clone)]
pub struct Empirical {
    samples: SortedSamples,
}

impl Empirical {
    /// From raw (unsorted) measurements; must be nonempty, finite, ≥ 0.
    pub fn from_samples(samples: Vec<f64>) -> Self {
        assert!(!samples.is_empty(), "empirical distribution needs at least one sample");
        assert!(
            samples.iter().all(|x| x.is_finite() && *x >= 0.0),
            "latency samples must be finite and ≥ 0"
        );
        Empirical { samples: SortedSamples::new(samples) }
    }

    /// The sorted backing samples.
    pub fn samples(&self) -> &SortedSamples {
        &self.samples
    }

    /// Take back the (sorted) sample vector, e.g. to reuse its allocation
    /// for the next refit window.
    pub fn into_samples(self) -> Vec<f64> {
        self.samples.into_vec()
    }
}

impl LatencyDistribution for Empirical {
    fn sample(&self, rng: &mut dyn RngCore) -> f64 {
        let data = self.samples.as_slice();
        data[rng.gen_range(0..data.len())]
    }

    fn cdf(&self, x: f64) -> f64 {
        self.samples.ecdf(x)
    }

    fn quantile(&self, p: f64) -> f64 {
        assert!((0.0..1.0).contains(&p), "quantile needs p in [0, 1): {p}");
        self.samples.percentile(p * 100.0)
    }

    fn lower_bound(&self) -> f64 {
        self.samples.min()
    }

    fn mean(&self) -> f64 {
        self.samples.mean()
    }

    fn describe(&self) -> String {
        format!(
            "Empirical(n={}, p50={:.3}, p99={:.3})",
            self.samples.len(),
            self.samples.percentile(50.0),
            self.samples.percentile(99.0)
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn draws(d: &dyn LatencyDistribution, n: usize, seed: u64) -> Vec<f64> {
        let mut rng = StdRng::seed_from_u64(seed);
        (0..n).map(|_| d.sample(&mut rng)).collect()
    }

    #[test]
    fn constant_is_degenerate() {
        let c = Constant::new(3.5);
        assert_eq!(draws(&c, 10, 0), vec![3.5; 10]);
        assert_eq!(c.cdf(3.4999), 0.0);
        assert_eq!(c.cdf(3.5), 1.0);
        assert_eq!(c.quantile(0.99), 3.5);
        assert_eq!(c.mean(), 3.5);
    }

    #[test]
    fn exponential_closed_forms_agree() {
        let e = Exponential::from_mean(4.0);
        assert_eq!(e, Exponential::from_rate(0.25));
        assert!((e.cdf(e.quantile(0.9)) - 0.9).abs() < 1e-12);
        assert!((e.quantile(0.5) - 4.0 * std::f64::consts::LN_2).abs() < 1e-12);
        let mean = draws(&e, 200_000, 1).iter().sum::<f64>() / 200_000.0;
        assert!((mean - 4.0).abs() < 0.05, "sample mean {mean}");
    }

    #[test]
    fn pareto_closed_forms_agree() {
        let p = Pareto::new(1.05, 1.51);
        assert!((p.quantile(0.0) - 1.05).abs() < 1e-12);
        assert!((p.cdf(p.quantile(0.999)) - 0.999).abs() < 1e-12);
        assert!((p.mean() - 1.51 * 1.05 / 0.51).abs() < 1e-12);
        assert_eq!(Pareto::new(2.0, 0.9).mean(), f64::INFINITY);
        assert!(draws(&p, 10_000, 2).iter().all(|&x| x >= 1.05));
    }

    #[test]
    fn mixture_cdf_is_weighted_sum() {
        let m = Mixture::new(0.38, Pareto::new(1.05, 1.51), Exponential::from_rate(0.183));
        for x in [0.5, 1.0, 2.0, 10.0, 50.0] {
            let want = 0.38 * m.pareto().cdf(x) + 0.62 * m.exponential().cdf(x);
            assert!((m.cdf(x) - want).abs() < 1e-12);
        }
        // Numeric quantile inverts the cdf.
        for p in [0.1, 0.5, 0.9, 0.999] {
            assert!((m.cdf(m.quantile(p)) - p).abs() < 1e-9, "p={p}");
        }
    }

    #[test]
    fn degenerate_mixture_weights_keep_mean_finite() {
        // 0 × ∞ must not poison the mean when the zero-weight Pareto has
        // α ≤ 1 (infinite mean).
        let heavy = Pareto::new(1.0, 0.9);
        let exp = Exponential::from_rate(1.0);
        assert_eq!(Mixture::new(0.0, heavy, exp).mean(), 1.0);
        assert_eq!(Mixture::new(1.0, heavy, exp).mean(), f64::INFINITY);
    }

    #[test]
    fn lower_bounds_report_true_support_minimum() {
        assert_eq!(Constant::new(3.5).lower_bound(), 3.5);
        assert_eq!(Exponential::from_rate(0.25).lower_bound(), 0.0);
        assert_eq!(Pareto::new(1.05, 1.51).lower_bound(), 1.05);
        // A weight-1 mixture must NOT report the unreachable exponential's
        // 0 — this is the case where `quantile(0.0)` via bisection would
        // also wrongly collapse to 0 (the cdf is flat on [0, xm]).
        let pure = Mixture::pure_pareto(Pareto::new(0.235, 10.0));
        assert_eq!(pure.lower_bound(), 0.235);
        let mixed =
            Mixture::new(0.38, Pareto::new(1.05, 1.51), Exponential::from_rate(0.183));
        assert_eq!(mixed.lower_bound(), 0.0);
        let emp = Empirical::from_samples(vec![5.0, 1.5, 3.0]);
        assert_eq!(emp.lower_bound(), 1.5);
        // Samples can never land below the reported bound.
        let mut rng = StdRng::seed_from_u64(7);
        for _ in 0..5_000 {
            assert!(pure.sample(&mut rng) >= pure.lower_bound());
        }
    }

    #[test]
    fn empirical_round_trips_order_statistics() {
        let e = Empirical::from_samples(vec![5.0, 1.0, 3.0, 2.0, 4.0]);
        assert_eq!(e.samples().min(), 1.0);
        assert_eq!(e.samples().max(), 5.0);
        assert_eq!(e.quantile(0.5), 3.0);
        assert_eq!(e.mean(), 3.0);
        // Bootstrap only ever returns observed values.
        for v in draws(&e, 1_000, 3) {
            assert!([1.0, 2.0, 3.0, 4.0, 5.0].contains(&v));
        }
    }
}
