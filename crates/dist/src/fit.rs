//! Refitting Pareto + exponential mixtures to published percentile tables
//! — the paper's §5.4 methodology, driven by a Nelder–Mead quantile
//! matcher instead of raw traces (we only have the published summary
//! statistics, Tables 1–2).

use crate::dist::{Exponential, Mixture, Pareto};
use crate::stats;
use crate::LatencyDistribution;

pub use crate::stats::{n_rmse, rmse};

/// One published percentile: "`pct`% of operations completed within
/// `value_ms` ms".
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct PercentileTarget {
    /// Percentile in `[0, 100]`.
    pub pct: f64,
    /// Latency at that percentile, in ms.
    pub value_ms: f64,
}

impl PercentileTarget {
    /// Convenience constructor.
    pub fn new(pct: f64, value_ms: f64) -> Self {
        assert!((0.0..=100.0).contains(&pct), "percentile out of range: {pct}");
        assert!(value_ms >= 0.0 && value_ms.is_finite(), "target must be finite and ≥ 0");
        PercentileTarget { pct, value_ms }
    }
}

/// The result of [`fit_mixture_to_percentiles`]: mixture parameters plus
/// the achieved N-RMSE over the targets.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct MixtureFit {
    /// Probability of the Pareto component.
    pub pareto_weight: f64,
    /// Pareto scale.
    pub xm: f64,
    /// Pareto shape.
    pub alpha: f64,
    /// Exponential rate.
    pub lambda: f64,
    /// N-RMSE of the fitted quantiles against the targets.
    pub n_rmse: f64,
}

impl MixtureFit {
    /// Materialise the fitted distribution.
    pub fn mixture(&self) -> Mixture {
        Mixture::new(
            self.pareto_weight,
            Pareto::new(self.xm, self.alpha),
            Exponential::from_rate(self.lambda),
        )
    }
}

/// Unconstrained parameter vector → valid mixture parameters.
///
/// `weight` goes through a logistic, the positive parameters through
/// `exp`, so Nelder–Mead can roam all of `R⁴` without constraint
/// handling.
fn decode(theta: &[f64; 4]) -> (f64, f64, f64, f64) {
    let weight = 1.0 / (1.0 + (-theta[0]).exp());
    let xm = theta[1].exp().clamp(1e-6, 1e9);
    let alpha = theta[2].exp().clamp(0.05, 1e4);
    let lambda = theta[3].exp().clamp(1e-9, 1e6);
    (weight, xm, alpha, lambda)
}

fn objective(theta: &[f64; 4], targets: &[PercentileTarget]) -> f64 {
    let (weight, xm, alpha, lambda) = decode(theta);
    let mixture =
        Mixture::new(weight, Pareto::new(xm, alpha), Exponential::from_rate(lambda));
    let fitted: Vec<f64> =
        targets.iter().map(|t| mixture.quantile((t.pct / 100.0).min(1.0 - 1e-9))).collect();
    let published: Vec<f64> = targets.iter().map(|t| t.value_ms).collect();
    let err = stats::n_rmse(&fitted, &published);
    if err.is_finite() {
        err
    } else {
        f64::MAX
    }
}

/// Standard Nelder–Mead over `R⁴` (reflection 1, expansion 2, contraction
/// ½, shrink ½), deterministic for a fixed start.
fn nelder_mead(start: [f64; 4], targets: &[PercentileTarget], iters: usize) -> ([f64; 4], f64) {
    const DIM: usize = 4;
    let mut simplex: Vec<([f64; 4], f64)> = Vec::with_capacity(DIM + 1);
    simplex.push((start, objective(&start, targets)));
    for i in 0..DIM {
        let mut v = start;
        v[i] += 0.5;
        simplex.push((v, objective(&v, targets)));
    }

    for _ in 0..iters {
        simplex.sort_by(|a, b| a.1.partial_cmp(&b.1).expect("objective is never NaN"));
        let best = simplex[0].1;
        let worst = simplex[DIM].1;
        if (worst - best).abs() < 1e-12 {
            break;
        }

        // Centroid of all but the worst vertex.
        let mut centroid = [0.0; DIM];
        for (v, _) in &simplex[..DIM] {
            for (c, x) in centroid.iter_mut().zip(v) {
                *c += x / DIM as f64;
            }
        }
        let worst_v = simplex[DIM].0;
        let at = |scale: f64| {
            let mut p = [0.0; DIM];
            for i in 0..DIM {
                p[i] = centroid[i] + scale * (centroid[i] - worst_v[i]);
            }
            p
        };

        let reflected = at(1.0);
        let fr = objective(&reflected, targets);
        if fr < simplex[0].1 {
            let expanded = at(2.0);
            let fe = objective(&expanded, targets);
            simplex[DIM] = if fe < fr { (expanded, fe) } else { (reflected, fr) };
        } else if fr < simplex[DIM - 1].1 {
            simplex[DIM] = (reflected, fr);
        } else {
            let contracted = at(-0.5);
            let fc = objective(&contracted, targets);
            if fc < simplex[DIM].1 {
                simplex[DIM] = (contracted, fc);
            } else {
                // Shrink towards the best vertex.
                let best_v = simplex[0].0;
                for entry in simplex.iter_mut().skip(1) {
                    for (x, b) in entry.0.iter_mut().zip(&best_v) {
                        *x = b + 0.5 * (*x - b);
                    }
                    entry.1 = objective(&entry.0, targets);
                }
            }
        }
    }
    simplex.sort_by(|a, b| a.1.partial_cmp(&b.1).expect("objective is never NaN"));
    simplex[0]
}

/// Fit a [`Mixture`] to published percentiles by minimising the N-RMSE of
/// its quantiles against the targets (multi-start Nelder–Mead;
/// deterministic).
///
/// Needs at least two targets with distinct percentiles in `(0, 100)`;
/// a `pct = 0` "minimum" target is uninformative for a mixture whose
/// support starts at 0 and should be filtered out by the caller.
pub fn fit_mixture_to_percentiles(targets: &[PercentileTarget]) -> MixtureFit {
    assert!(targets.len() >= 2, "need ≥ 2 percentile targets to fit 4 parameters");
    assert!(
        targets.iter().all(|t| t.pct > 0.0 && t.pct < 100.0),
        "targets must have percentiles strictly inside (0, 100)"
    );

    // Scale cues from the targets: a mid percentile for the body, the tail
    // value for the exponential's mean.
    let mid = targets[targets.len() / 2].value_ms.max(1e-6);
    let tail =
        targets.iter().map(|t| t.value_ms).fold(f64::NEG_INFINITY, f64::max).max(1e-6);

    let starts = [
        // Balanced mixture, body at the median, tail mean ≈ a third of max.
        [0.0, (mid * 0.5).ln(), 1.5f64.ln(), (3.0 / tail).ln()],
        // Pareto-dominated, short tail.
        [2.0, (mid * 0.8).ln(), 3.0f64.ln(), (1.0 / mid).ln()],
        // Exponential-dominated, heavy tail.
        [-2.0, (mid * 0.25).ln(), 1.2f64.ln(), (1.0 / tail).ln()],
    ];

    let mut best: Option<([f64; 4], f64)> = None;
    for start in starts {
        let candidate = nelder_mead(start, targets, 600);
        if best.as_ref().is_none_or(|b| candidate.1 < b.1) {
            best = Some(candidate);
        }
    }
    let (theta, err) = best.expect("at least one start");
    let (pareto_weight, xm, alpha, lambda) = decode(&theta);
    MixtureFit { pareto_weight, xm, alpha, lambda, n_rmse: err }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn recovers_a_known_mixture_to_low_error() {
        let truth =
            Mixture::new(0.38, Pareto::new(1.05, 1.51), Exponential::from_rate(0.183));
        let targets: Vec<PercentileTarget> = [50.0, 75.0, 90.0, 95.0, 99.0, 99.9]
            .iter()
            .map(|&pct| PercentileTarget::new(pct, truth.quantile(pct / 100.0)))
            .collect();
        let fit = fit_mixture_to_percentiles(&targets);
        assert!(fit.n_rmse < 0.01, "self-fit N-RMSE {}", fit.n_rmse);
        // The refit curve matches the truth curve at the targets.
        let refit = fit.mixture();
        for t in &targets {
            let q = refit.quantile(t.pct / 100.0);
            assert!(
                (q - t.value_ms).abs() / t.value_ms < 0.25,
                "p{}: {} vs {}",
                t.pct,
                q,
                t.value_ms
            );
        }
    }

    #[test]
    fn fits_a_pure_exponential_table() {
        let truth = Exponential::from_mean(10.0);
        let targets: Vec<PercentileTarget> = [25.0, 50.0, 90.0, 99.0]
            .iter()
            .map(|&pct| PercentileTarget::new(pct, truth.quantile(pct / 100.0)))
            .collect();
        let fit = fit_mixture_to_percentiles(&targets);
        assert!(fit.n_rmse < 0.02, "exp-fit N-RMSE {}", fit.n_rmse);
    }
}
