//! Sorted-sample statistics: percentiles, ECDFs, and the error metrics the
//! paper reports (RMSE, N-RMSE).

/// A batch of samples sorted once at construction, making every
/// subsequent query — percentile, ECDF, min/max — `O(log n)` or `O(1)`.
///
/// This is the backbone of the Monte-Carlo engine: a sorted vector of
/// per-trial staleness thresholds *is* the t-visibility curve.
#[derive(Debug, Clone, PartialEq)]
pub struct SortedSamples {
    data: Vec<f64>,
}

impl SortedSamples {
    /// Sort `data` (ascending). Must be nonempty and NaN-free; values may
    /// be negative (staleness thresholds are).
    pub fn new(mut data: Vec<f64>) -> Self {
        assert!(!data.is_empty(), "SortedSamples needs at least one sample");
        assert!(data.iter().all(|x| !x.is_nan()), "samples must not be NaN");
        data.sort_unstable_by(|a, b| a.partial_cmp(b).expect("NaN excluded above"));
        SortedSamples { data }
    }

    /// Number of samples.
    pub fn len(&self) -> usize {
        self.data.len()
    }

    /// Always `false` (construction rejects empty batches); provided for
    /// API completeness.
    pub fn is_empty(&self) -> bool {
        self.data.is_empty()
    }

    /// The sorted samples.
    pub fn as_slice(&self) -> &[f64] {
        &self.data
    }

    /// Take back the (sorted) sample vector — lets callers that rebuild
    /// distributions on a cadence recycle one allocation instead of
    /// reallocating per refit.
    pub fn into_vec(self) -> Vec<f64> {
        self.data
    }

    /// Smallest sample.
    pub fn min(&self) -> f64 {
        self.data[0]
    }

    /// Largest sample.
    pub fn max(&self) -> f64 {
        *self.data.last().expect("nonempty")
    }

    /// Arithmetic mean.
    pub fn mean(&self) -> f64 {
        self.data.iter().sum::<f64>() / self.data.len() as f64
    }

    /// Nearest-rank percentile, `pct ∈ [0, 100]`: the smallest sample `x`
    /// such that at least `pct`% of samples are ≤ `x`.
    pub fn percentile(&self, pct: f64) -> f64 {
        assert!((0.0..=100.0).contains(&pct), "percentile out of range: {pct}");
        let n = self.data.len();
        let rank = (pct / 100.0 * n as f64).ceil() as usize;
        self.data[rank.clamp(1, n) - 1]
    }

    /// Empirical CDF: the fraction of samples ≤ `x`.
    pub fn ecdf(&self, x: f64) -> f64 {
        self.data.partition_point(|&v| v <= x) as f64 / self.data.len() as f64
    }
}

/// Root-mean-square error between two equal-length series.
pub fn rmse(a: &[f64], b: &[f64]) -> f64 {
    assert_eq!(a.len(), b.len(), "series length mismatch");
    assert!(!a.is_empty(), "rmse of empty series");
    let sum_sq: f64 = a.iter().zip(b).map(|(x, y)| (x - y) * (x - y)).sum();
    (sum_sq / a.len() as f64).sqrt()
}

/// RMSE normalised by the range of the reference series `b` — the paper's
/// N-RMSE metric (§5.4). Falls back to the raw RMSE when `b` has zero
/// range.
pub fn n_rmse(a: &[f64], b: &[f64]) -> f64 {
    let e = rmse(a, b);
    let (mut lo, mut hi) = (f64::INFINITY, f64::NEG_INFINITY);
    for &y in b {
        lo = lo.min(y);
        hi = hi.max(y);
    }
    let range = hi - lo;
    if range > 0.0 {
        e / range
    } else {
        e
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn percentile_nearest_rank() {
        let s = SortedSamples::new(vec![4.0, 1.0, 3.0, 2.0]);
        assert_eq!(s.as_slice(), &[1.0, 2.0, 3.0, 4.0]);
        assert_eq!(s.percentile(0.0), 1.0);
        assert_eq!(s.percentile(25.0), 1.0);
        assert_eq!(s.percentile(50.0), 2.0);
        assert_eq!(s.percentile(75.0), 3.0);
        assert_eq!(s.percentile(75.1), 4.0);
        assert_eq!(s.percentile(100.0), 4.0);
    }

    #[test]
    fn ecdf_counts_ties_inclusively() {
        let s = SortedSamples::new(vec![0.0, 0.0, 1.0, 2.0]);
        assert_eq!(s.ecdf(-0.5), 0.0);
        assert_eq!(s.ecdf(0.0), 0.5);
        assert_eq!(s.ecdf(1.5), 0.75);
        assert_eq!(s.ecdf(2.0), 1.0);
    }

    #[test]
    fn negative_samples_supported() {
        let s = SortedSamples::new(vec![-3.0, 5.0, -1.0]);
        assert_eq!(s.min(), -3.0);
        assert_eq!(s.max(), 5.0);
        assert!((s.mean() - 1.0 / 3.0).abs() < 1e-12);
        assert_eq!(s.ecdf(0.0), 2.0 / 3.0);
    }

    #[test]
    fn error_metrics() {
        let a = [1.0, 2.0, 3.0];
        let b = [1.0, 2.0, 5.0];
        assert!((rmse(&a, &b) - (4.0f64 / 3.0).sqrt()).abs() < 1e-12);
        // Range of b is 4 → N-RMSE is a quarter of that.
        assert!((n_rmse(&a, &b) - (4.0f64 / 3.0).sqrt() / 4.0).abs() < 1e-12);
        assert_eq!(rmse(&a, &a), 0.0);
    }
}
