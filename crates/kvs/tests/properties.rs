//! Property tests for the store's structural components: ring placement,
//! ground-truth labelling, and Merkle digests.

use pbs_kvs::merkle;
use pbs_kvs::staleness::GroundTruth;
use pbs_kvs::{Ring, Version};
use pbs_sim::SimTime;
use proptest::prelude::*;

proptest! {
    #![proptest_config(ProptestConfig { cases: 64, ..ProptestConfig::default() })]

    /// Preference lists always contain exactly N distinct live nodes,
    /// stable across queries.
    #[test]
    fn ring_preference_lists(
        nodes in 1u32..20,
        vnodes in 1u32..32,
        key in any::<u64>(),
    ) {
        let replication = 1 + key as u32 % nodes;
        let ring = Ring::new(nodes, vnodes, replication);
        let reps = ring.replicas(key);
        prop_assert_eq!(reps.len(), replication as usize);
        let mut sorted = reps.clone();
        sorted.sort_unstable();
        sorted.dedup();
        prop_assert_eq!(sorted.len(), replication as usize, "duplicate replicas");
        prop_assert!(reps.iter().all(|&n| n < nodes));
        prop_assert_eq!(ring.replicas(key), reps, "stable");
    }

    /// Ground-truth labelling agrees with a brute-force reference on random
    /// commit histories and probes.
    #[test]
    fn ground_truth_matches_bruteforce(
        commit_times in prop::collection::vec(0u64..10_000, 1..60),
        probe_ms in 0u64..12_000,
        returned in prop::option::of(0u64..70),
    ) {
        // Build a history: commit i (seq shuffled deterministically) at the
        // sorted times.
        let mut times = commit_times;
        times.sort_unstable();
        let n = times.len() as u64;
        let mut gt = GroundTruth::new();
        let mut history: Vec<(u64, u64)> = Vec::new(); // (time, seq)
        for (i, &t) in times.iter().enumerate() {
            // Permuted-but-deterministic seq assignment exercises
            // out-of-order commits.
            let seq = 1 + ((i as u64 * 7 + 3) % n);
            gt.record_commit(1, seq, SimTime::from_ms(t as f64));
            history.push((t, seq));
        }
        let returned = returned.filter(|r| *r >= 1);
        let label = gt.label_read(1, SimTime::from_ms(probe_ms as f64), returned);

        // Brute force.
        let ret = returned.unwrap_or(0);
        let committed: Vec<u64> = history
            .iter()
            .filter(|(t, _)| *t <= probe_ms)
            .map(|(_, s)| *s)
            .collect();
        let newest = committed.iter().copied().max().unwrap_or(0);
        let expect_consistent = ret >= newest;
        let expect_behind =
            committed.iter().filter(|&&s| s > ret).count().min(64) as u64;
        prop_assert_eq!(label.consistent, expect_consistent);
        if !label.consistent {
            prop_assert_eq!(label.versions_behind, expect_behind);
        }
    }

    /// Merkle digests: identical stores always match; single-entry edits
    /// always produce a nonempty diff confined to the edited key's bucket.
    #[test]
    fn merkle_digest_detects_edits(
        entries in prop::collection::btree_map(any::<u64>(), 1u64..1000, 1..50),
        edit_idx in any::<prop::sample::Index>(),
    ) {
        let store: Vec<(u64, Version)> =
            entries.iter().map(|(&k, &s)| (k, Version::new(s, 0))).collect();
        let a = merkle::digest(store.clone());
        let b = merkle::digest(store.clone());
        prop_assert!(merkle::differing_buckets(&a, &b).is_empty());

        let mut edited = store.clone();
        let i = edit_idx.index(edited.len());
        edited[i].1 = Version::new(edited[i].1.seq + 1, 0);
        let c = merkle::digest(edited);
        let diff = merkle::differing_buckets(&a, &c);
        prop_assert_eq!(diff, vec![merkle::bucket_of(store[i].0)]);
    }

    /// Versions order by (seq, writer) — the store's max-merge never
    /// regresses.
    #[test]
    fn version_merge_is_monotone(
        seq_a in 0u64..100, wr_a in 0u32..8,
        seq_b in 0u64..100, wr_b in 0u32..8,
    ) {
        let a = Version::new(seq_a, wr_a);
        let b = Version::new(seq_b, wr_b);
        let m = a.max(b);
        prop_assert!(m >= a && m >= b);
        prop_assert!(m == a || m == b);
    }
}
