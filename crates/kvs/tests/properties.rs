//! Property tests for the store's structural components: ring placement,
//! ground-truth labelling, Merkle digests, and vector-clock causality.

use pbs_kvs::merkle;
use pbs_kvs::staleness::GroundTruth;
use pbs_kvs::{CausalOrder, Ring, VectorClock, Version};
use pbs_sim::SimTime;
use proptest::prelude::*;

/// Build a vector clock by replaying per-node increment counts in order.
fn clock_of(ops: &[(u32, u32)]) -> VectorClock {
    let mut clock = VectorClock::new();
    for &(node, n) in ops {
        for _ in 0..n {
            clock.increment(node);
        }
    }
    clock
}

/// Swap the direction of a causal verdict; `Equal`/`Concurrent` are
/// symmetric and stay put.
fn dual(order: CausalOrder) -> CausalOrder {
    match order {
        CausalOrder::Before => CausalOrder::After,
        CausalOrder::After => CausalOrder::Before,
        other => other,
    }
}

proptest! {
    #![proptest_config(ProptestConfig { cases: 64, ..ProptestConfig::default() })]

    /// Preference lists always contain exactly N distinct live nodes,
    /// stable across queries.
    #[test]
    fn ring_preference_lists(
        nodes in 1u32..20,
        vnodes in 1u32..32,
        key in any::<u64>(),
    ) {
        let replication = 1 + key as u32 % nodes;
        let ring = Ring::new(nodes, vnodes, replication);
        let reps = ring.replicas(key).to_vec();
        prop_assert_eq!(reps.len(), replication as usize);
        let mut sorted = reps.clone();
        sorted.sort_unstable();
        sorted.dedup();
        prop_assert_eq!(sorted.len(), replication as usize, "duplicate replicas");
        prop_assert!(reps.iter().all(|&n| n < nodes));
        prop_assert_eq!(ring.replicas(key), reps, "stable");
    }

    /// Online (incremental watermark) labelling agrees **exactly** with the
    /// settle-then-label batch path on randomized interleaved traces —
    /// including timed-out writes (sequence numbers that never commit) and
    /// staleness deeper than the `versions_behind` cap.
    #[test]
    fn online_watermark_labelling_matches_batch(
        writes in prop::collection::vec(
            // (key, commit_time_ms, commit_roll) — seq is assigned densely
            // per key in vector order; rolls ≥ 8 model timed-out writes
            // whose seq never commits. Out-of-order commit times and
            // uncommitted seqs both occur.
            (0u64..3, 1u64..20_000, 0u32..10),
            1..120,
        ),
        reads in prop::collection::vec(
            (0u64..3, 0u64..22_000, prop::option::of(1u64..100)),
            1..40,
        ),
        chunks in 2usize..6,
    ) {
        // Assign dense per-key seqs in issue order; keep only committed
        // writes as ground-truth commits.
        let mut next_seq = [0u64; 3];
        let mut commits: Vec<(u64, u64, u64)> = Vec::new(); // (key, seq, time)
        for &(key, time, roll) in &writes {
            next_seq[key as usize] += 1;
            if roll < 8 {
                commits.push((key, next_seq[key as usize], time));
            }
        }

        // Batch path: settle, sort by commit time, record in order.
        let mut sorted = commits.clone();
        sorted.sort_by_key(|&(_, _, t)| t);
        let mut batch = GroundTruth::new();
        for &(key, seq, t) in &sorted {
            batch.record_commit(key, seq, SimTime::from_ms(t as f64));
        }
        let expected: Vec<_> = reads
            .iter()
            .map(|&(key, start, ret)| batch.label_read(key, SimTime::from_ms(start as f64), ret))
            .collect();

        // Online path: ingest commits in *reverse* issue order (maximally
        // out of time order) in `chunks` watermark steps; label each read
        // as soon as the watermark passes its start.
        let horizon = 25_000u64;
        let mut online = GroundTruth::new();
        let mut pending_commits: Vec<(u64, u64, u64)> = commits.clone();
        pending_commits.reverse();
        let mut labelled: Vec<Option<pbs_kvs::staleness::ReadLabel>> = vec![None; reads.len()];
        let mut watermark = 0u64;
        for step in 1..=chunks {
            let to = if step == chunks { horizon } else { horizon * step as u64 / chunks as u64 };
            // Everything committing in (watermark, to] must be ingested
            // before the watermark passes it — order is free.
            pending_commits.retain(|&(key, seq, t)| {
                if t > watermark && t <= to {
                    online.ingest_commit(key, seq, SimTime::from_ms(t as f64));
                    false
                } else {
                    true
                }
            });
            online.advance_watermark(SimTime::from_ms(to as f64));
            for (i, &(key, start, ret)) in reads.iter().enumerate() {
                if labelled[i].is_none() && start <= to {
                    labelled[i] =
                        Some(online.label_read(key, SimTime::from_ms(start as f64), ret));
                }
            }
            watermark = to;
        }
        prop_assert!(pending_commits.is_empty());
        prop_assert_eq!(online.pending_commits(), 0);
        for (i, exp) in expected.iter().enumerate() {
            prop_assert_eq!(labelled[i].expect("all reads labelled"), *exp, "read {}", i);
        }
    }

    /// Ground-truth labelling agrees with a brute-force reference on random
    /// commit histories and probes.
    #[test]
    fn ground_truth_matches_bruteforce(
        commit_times in prop::collection::vec(0u64..10_000, 1..60),
        probe_ms in 0u64..12_000,
        returned in prop::option::of(0u64..70),
    ) {
        // Build a history: commit i (seq shuffled deterministically) at the
        // sorted times.
        let mut times = commit_times;
        times.sort_unstable();
        let n = times.len() as u64;
        let mut gt = GroundTruth::new();
        let mut history: Vec<(u64, u64)> = Vec::new(); // (time, seq)
        for (i, &t) in times.iter().enumerate() {
            // Permuted-but-deterministic seq assignment exercises
            // out-of-order commits.
            let seq = 1 + ((i as u64 * 7 + 3) % n);
            gt.record_commit(1, seq, SimTime::from_ms(t as f64));
            history.push((t, seq));
        }
        let returned = returned.filter(|r| *r >= 1);
        let label = gt.label_read(1, SimTime::from_ms(probe_ms as f64), returned);

        // Brute force.
        let ret = returned.unwrap_or(0);
        let committed: Vec<u64> = history
            .iter()
            .filter(|(t, _)| *t <= probe_ms)
            .map(|(_, s)| *s)
            .collect();
        let newest = committed.iter().copied().max().unwrap_or(0);
        let expect_consistent = ret >= newest;
        let expect_behind =
            committed.iter().filter(|&&s| s > ret).count().min(64) as u64;
        prop_assert_eq!(label.consistent, expect_consistent);
        if !label.consistent {
            prop_assert_eq!(label.versions_behind, expect_behind);
        }
    }

    /// Merkle digests: identical stores always match; single-entry edits
    /// always produce a nonempty diff confined to the edited key's bucket.
    #[test]
    fn merkle_digest_detects_edits(
        entries in prop::collection::btree_map(any::<u64>(), 1u64..1000, 1..50),
        edit_idx in any::<prop::sample::Index>(),
    ) {
        let store: Vec<(u64, Version)> =
            entries.iter().map(|(&k, &s)| (k, Version::new(s, 0))).collect();
        let a = merkle::digest(store.clone());
        let b = merkle::digest(store.clone());
        prop_assert!(merkle::differing_buckets(&a, &b).is_empty());

        let mut edited = store.clone();
        let i = edit_idx.index(edited.len());
        edited[i].1 = Version::new(edited[i].1.seq + 1, 0);
        let c = merkle::digest(edited);
        let diff = merkle::differing_buckets(&a, &c);
        prop_assert_eq!(diff, vec![merkle::bucket_of(store[i].0)]);
    }

    /// Versions order by (seq, writer) — the store's max-merge never
    /// regresses.
    #[test]
    fn version_merge_is_monotone(
        seq_a in 0u64..100, wr_a in 0u32..8,
        seq_b in 0u64..100, wr_b in 0u32..8,
    ) {
        let a = Version::new(seq_a, wr_a);
        let b = Version::new(seq_b, wr_b);
        let m = a.max(b);
        prop_assert!(m >= a && m >= b);
        prop_assert!(m == a || m == b);
    }

    /// Bucketed digests are a group homomorphism under XOR: the digest of
    /// a disjoint union is the pointwise XOR of the parts' digests, and a
    /// doubled store cancels to the empty digest.
    #[test]
    fn merkle_digest_xor_composition_and_cancellation(
        entries in prop::collection::btree_map(any::<u64>(), 1u64..1000, 1..60),
    ) {
        let store: Vec<(u64, Version)> =
            entries.iter().map(|(&k, &s)| (k, Version::new(s, 0))).collect();
        let (left, right): (Vec<_>, Vec<_>) =
            store.iter().enumerate().partition(|(i, _)| i % 2 == 0);
        let left: Vec<(u64, Version)> = left.into_iter().map(|(_, &e)| e).collect();
        let right: Vec<(u64, Version)> = right.into_iter().map(|(_, &e)| e).collect();
        let whole = merkle::digest(store.clone());
        let xored: Vec<u64> = merkle::digest(left)
            .iter()
            .zip(&merkle::digest(right))
            .map(|(x, y)| x ^ y)
            .collect();
        prop_assert_eq!(whole, xored, "digest must compose over disjoint key sets");
        // Pair cancellation: every entry hashed twice XORs itself away.
        let doubled: Vec<(u64, Version)> =
            store.iter().chain(store.iter()).copied().collect();
        prop_assert_eq!(merkle::digest(doubled), merkle::digest(std::iter::empty()));
    }

    /// Removing keys perturbs only the removed keys' buckets, so an
    /// anti-entropy exchange never fetches an untouched bucket.
    #[test]
    fn merkle_diff_confined_to_touched_buckets(
        entries in prop::collection::btree_map(any::<u64>(), 1u64..1000, 2..60),
        removed in 1usize..8,
    ) {
        let store: Vec<(u64, Version)> =
            entries.iter().map(|(&k, &s)| (k, Version::new(s, 0))).collect();
        let removed = removed.min(store.len());
        let partial: Vec<(u64, Version)> = store[removed..].to_vec();
        let diff =
            merkle::differing_buckets(&merkle::digest(store.clone()), &merkle::digest(partial));
        let touched: Vec<u32> = store[..removed].iter().map(|&(k, _)| merkle::bucket_of(k)).collect();
        prop_assert!(
            diff.iter().all(|b| touched.contains(b)),
            "diff {:?} must stay within the removed keys' buckets {:?}", diff, touched
        );
    }

    /// `compare` behaves like a partial order: reflexive equality, duality
    /// under argument swap, and agreement with `dominates`.
    #[test]
    fn vector_clock_compare_is_a_partial_order(
        a_ops in prop::collection::vec((0u32..6, 1u32..4), 0..16),
        b_ops in prop::collection::vec((0u32..6, 1u32..4), 0..16),
        node in 0u32..6,
    ) {
        let a = clock_of(&a_ops);
        let b = clock_of(&b_ops);
        prop_assert_eq!(a.compare(&a), CausalOrder::Equal);
        prop_assert_eq!(a.compare(&b), dual(b.compare(&a)), "swap duality");
        prop_assert_eq!(
            a.dominates(&b),
            matches!(a.compare(&b), CausalOrder::After | CausalOrder::Equal)
        );
        // An increment is a strict causal step: the bumped clock is After
        // everything the old clock was at-or-after.
        let mut bumped = a.clone();
        bumped.increment(node);
        prop_assert_eq!(bumped.compare(&a), CausalOrder::After);
        prop_assert_eq!(a.compare(&bumped), CausalOrder::Before);
    }

    /// `merge` is the least upper bound: commutative, associative,
    /// idempotent, pointwise max, and dominating both inputs — the laws
    /// that make anti-entropy order-insensitive.
    #[test]
    fn vector_clock_merge_is_a_join(
        a_ops in prop::collection::vec((0u32..6, 1u32..4), 0..16),
        b_ops in prop::collection::vec((0u32..6, 1u32..4), 0..16),
        c_ops in prop::collection::vec((0u32..6, 1u32..4), 0..16),
    ) {
        let a = clock_of(&a_ops);
        let b = clock_of(&b_ops);
        let c = clock_of(&c_ops);
        let mut ab = a.clone();
        ab.merge(&b);
        let mut ba = b.clone();
        ba.merge(&a);
        prop_assert_eq!(&ab, &ba, "commutative");
        let mut ab_c = ab.clone();
        ab_c.merge(&c);
        let mut bc = b.clone();
        bc.merge(&c);
        let mut a_bc = a.clone();
        a_bc.merge(&bc);
        prop_assert_eq!(&ab_c, &a_bc, "associative");
        let mut aa = a.clone();
        aa.merge(&a);
        prop_assert_eq!(&aa, &a, "idempotent");
        prop_assert!(ab.dominates(&a) && ab.dominates(&b), "upper bound");
        for node in 0..6 {
            prop_assert_eq!(ab.get(node), a.get(node).max(b.get(node)), "pointwise max");
        }
    }
}
