//! Version metadata: totally ordered versions plus vector clocks.
//!
//! The paper assumes a total order over versions (§2.1, footnote 2:
//! globally synchronized clocks *or* a causal order with commutative
//! merge). The experiments use write-start timestamps as sequence numbers
//! (the simulator's global clock is exact, so this *is* the paper's
//! "globally synchronized clocks" assumption), with the coordinator id
//! breaking ties between simultaneous writes — the equivalent of the
//! paper's "insert increasing versions of a key" methodology (§5.2) and of
//! Cassandra's last-writer-wins timestamps. A timestamp needs no shared
//! allocator, so coordinators on different partitions of the parallel
//! engine assign identical versions to identical schedules. [`VectorClock`]
//! provides the causal alternative for applications embedding the store.

use std::collections::BTreeMap;

/// A totally ordered version of a key: `(seq, writer)` with lexicographic
/// order. `seq` is the write's start instant in nanoseconds + 1; `writer`
/// breaks ties between simultaneous coordinators (mirroring
/// last-writer-wins timestamps in Cassandra).
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct Version {
    /// Write-start timestamp in nanoseconds + 1 (0 is reserved for
    /// "absent"), monotone in write-start order per key.
    pub seq: u64,
    /// Coordinator that assigned the version (tiebreak).
    pub writer: u32,
}

impl Version {
    /// Construct a version.
    pub fn new(seq: u64, writer: u32) -> Self {
        Self { seq, writer }
    }
}

/// Result of comparing two vector clocks.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum CausalOrder {
    /// `a` happened strictly before `b`.
    Before,
    /// `a` happened strictly after `b`.
    After,
    /// Identical clocks.
    Equal,
    /// Concurrent — neither dominates; Dynamo would keep both siblings.
    Concurrent,
}

/// A classic vector clock keyed by node id.
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct VectorClock {
    counters: BTreeMap<u32, u64>,
}

impl VectorClock {
    /// The empty (initial) clock.
    pub fn new() -> Self {
        Self::default()
    }

    /// Record an event at `node`.
    pub fn increment(&mut self, node: u32) {
        *self.counters.entry(node).or_insert(0) += 1;
    }

    /// The counter for `node` (0 if absent).
    pub fn get(&self, node: u32) -> u64 {
        self.counters.get(&node).copied().unwrap_or(0)
    }

    /// Compare two clocks.
    pub fn compare(&self, other: &VectorClock) -> CausalOrder {
        let mut less = false;
        let mut greater = false;
        let keys = self.counters.keys().chain(other.counters.keys());
        for &k in keys {
            let a = self.get(k);
            let b = other.get(k);
            if a < b {
                less = true;
            }
            if a > b {
                greater = true;
            }
        }
        match (less, greater) {
            (false, false) => CausalOrder::Equal,
            (true, false) => CausalOrder::Before,
            (false, true) => CausalOrder::After,
            (true, true) => CausalOrder::Concurrent,
        }
    }

    /// Pointwise-maximum merge (the commutative merge of §2.1 footnote 2).
    pub fn merge(&mut self, other: &VectorClock) {
        for (&k, &v) in &other.counters {
            let e = self.counters.entry(k).or_insert(0);
            *e = (*e).max(v);
        }
    }

    /// Whether this clock causally dominates or equals `other`.
    pub fn dominates(&self, other: &VectorClock) -> bool {
        matches!(self.compare(other), CausalOrder::After | CausalOrder::Equal)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn version_total_order() {
        let a = Version::new(1, 0);
        let b = Version::new(2, 0);
        let c = Version::new(2, 1);
        assert!(a < b);
        assert!(b < c, "writer breaks ties");
        assert_eq!(b.max(c), c);
    }

    #[test]
    fn vector_clock_basic_order() {
        let mut a = VectorClock::new();
        a.increment(0);
        let mut b = a.clone();
        b.increment(1);
        assert_eq!(a.compare(&b), CausalOrder::Before);
        assert_eq!(b.compare(&a), CausalOrder::After);
        assert_eq!(a.compare(&a), CausalOrder::Equal);
        assert!(b.dominates(&a));
    }

    #[test]
    fn vector_clock_concurrency() {
        let mut a = VectorClock::new();
        a.increment(0);
        let mut b = VectorClock::new();
        b.increment(1);
        assert_eq!(a.compare(&b), CausalOrder::Concurrent);
        assert!(!a.dominates(&b) && !b.dominates(&a));
    }

    #[test]
    fn merge_is_pointwise_max_and_commutative() {
        let mut a = VectorClock::new();
        a.increment(0);
        a.increment(0);
        a.increment(1);
        let mut b = VectorClock::new();
        b.increment(1);
        b.increment(1);
        b.increment(2);

        let mut ab = a.clone();
        ab.merge(&b);
        let mut ba = b.clone();
        ba.merge(&a);
        assert_eq!(ab, ba);
        assert_eq!(ab.get(0), 2);
        assert_eq!(ab.get(1), 2);
        assert_eq!(ab.get(2), 1);
        assert!(ab.dominates(&a) && ab.dominates(&b));
    }

    #[test]
    fn merge_resolves_concurrency() {
        let mut a = VectorClock::new();
        a.increment(0);
        let mut b = VectorClock::new();
        b.increment(1);
        let mut m = a.clone();
        m.merge(&b);
        assert_eq!(m.compare(&a), CausalOrder::After);
        assert_eq!(m.compare(&b), CausalOrder::After);
    }
}
