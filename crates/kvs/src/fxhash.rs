//! A fast, non-cryptographic hasher for the simulator's hot-path maps.
//!
//! `std::collections::HashMap` defaults to SipHash-1-3, whose
//! HashDoS resistance costs ~1–2 ns per `u64` key — measurable when every
//! simulated operation touches half a dozen maps (pending-op tables,
//! per-key stores, session state). The keys here are internal op ids and
//! opaque key identifiers chosen by the harness itself, so DoS hardening
//! buys nothing; an FxHash-style multiply-xor hash (the scheme rustc uses
//! for its interners) is ~5× cheaper and mixes well enough for these
//! integer keys.
//!
//! No new dependencies: the hasher is ~20 lines and lives here.

use std::collections::HashMap;
use std::hash::{BuildHasherDefault, Hasher};

/// 64-bit multiplicative mixing constant (π's fractional bits, the same
/// constant family rustc's FxHash uses).
const SEED: u64 = 0x51_7c_c1_b7_27_22_0a_95;

/// An FxHash-style multiply-xor hasher: each 8-byte chunk is rotated,
/// xored into the state, and multiplied by the mixing constant.
#[derive(Debug, Clone, Copy, Default)]
pub struct FxHasher {
    hash: u64,
}

impl FxHasher {
    #[inline]
    fn mix(&mut self, word: u64) {
        self.hash = (self.hash.rotate_left(5) ^ word).wrapping_mul(SEED);
    }
}

impl Hasher for FxHasher {
    #[inline]
    fn finish(&self) -> u64 {
        self.hash
    }

    #[inline]
    fn write(&mut self, bytes: &[u8]) {
        let mut chunks = bytes.chunks_exact(8);
        for chunk in &mut chunks {
            self.mix(u64::from_le_bytes(chunk.try_into().expect("8-byte chunk")));
        }
        let rest = chunks.remainder();
        if !rest.is_empty() {
            let mut buf = [0u8; 8];
            buf[..rest.len()].copy_from_slice(rest);
            self.mix(u64::from_le_bytes(buf));
        }
    }

    #[inline]
    fn write_u64(&mut self, v: u64) {
        self.mix(v);
    }

    #[inline]
    fn write_u32(&mut self, v: u32) {
        self.mix(v as u64);
    }

    #[inline]
    fn write_usize(&mut self, v: usize) {
        self.mix(v as u64);
    }

    #[inline]
    fn write_u8(&mut self, v: u8) {
        self.mix(v as u64);
    }
}

/// `BuildHasher` for [`FxHasher`].
pub type FxBuildHasher = BuildHasherDefault<FxHasher>;

/// A `HashMap` keyed through [`FxHasher`] — drop-in for the default map
/// on hot paths with internal (non-adversarial) keys.
pub type FxHashMap<K, V> = HashMap<K, V, FxBuildHasher>;

/// A `HashSet` keyed through [`FxHasher`] (the linearizability checker's
/// memo cache and version sets).
pub type FxHashSet<T> = std::collections::HashSet<T, FxBuildHasher>;

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn map_round_trips() {
        let mut m: FxHashMap<u64, u64> = FxHashMap::default();
        for k in 0..1_000u64 {
            m.insert(k, k * 3);
        }
        assert_eq!(m.len(), 1_000);
        for k in 0..1_000u64 {
            assert_eq!(m.get(&k), Some(&(k * 3)));
        }
    }

    #[test]
    fn deterministic_across_instances() {
        use std::hash::BuildHasher;
        let a = FxBuildHasher::default().hash_one(42u64);
        let b = FxBuildHasher::default().hash_one(42u64);
        assert_eq!(a, b, "no per-instance randomness (determinism contract)");
    }

    #[test]
    fn sequential_keys_spread() {
        // Low-entropy keys (sequential op ids) must not collide in the low
        // bits HashMap uses for bucketing.
        use std::hash::BuildHasher;
        let h = FxBuildHasher::default();
        let mut low_bits: Vec<u64> = (0..64u64).map(|k| h.hash_one(k) & 0x3f).collect();
        low_bits.sort_unstable();
        low_bits.dedup();
        assert!(low_bits.len() > 32, "low bits collapse: {} distinct", low_bits.len());
    }
}
