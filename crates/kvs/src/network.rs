//! The network latency model: per-leg WARS distributions, optional
//! datacenter topology, and **dynamic conditions** (partitions, per-link
//! faults, latency-regime changes, and buggify [`FaultProfile`]s) that can
//! be altered while a cluster is running — the substrate for
//! `pbs-scenario`'s fault/load timelines.

use crate::buggify::{Delivery, FaultConfigError, FaultProfile, FaultSchedule};
use pbs_dist::DynDistribution;
use pbs_sim::SkewedClock;
use rand::RngCore;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::{Arc, RwLock};

/// Uniform draw in `[0, 1)` matching the `rand` shim's `Standard` f64
/// layout, usable through `dyn RngCore`.
fn unit(rng: &mut dyn RngCore) -> f64 {
    (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
}

/// Which WARS leg a message travels.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Leg {
    /// Coordinator → replica write propagation.
    W,
    /// Replica → coordinator write acknowledgment.
    A,
    /// Coordinator → replica read request.
    R,
    /// Replica → coordinator read response.
    S,
}

impl Leg {
    fn index(self) -> usize {
        match self {
            Leg::W => 0,
            Leg::A => 1,
            Leg::R => 2,
            Leg::S => 3,
        }
    }
}

/// A directed per-link latency fault: messages from `from` to `to` have
/// their sampled delay multiplied by `scale` and then increased by
/// `extra_ms` (a degraded NIC, an overloaded switch port, a slow WAN hop).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct LinkFault {
    /// Sending node.
    pub from: usize,
    /// Receiving node.
    pub to: usize,
    /// Additive one-way penalty (ms, ≥ 0).
    pub extra_ms: f64,
    /// Multiplicative slowdown (≥ 0; 1.0 = no scaling).
    pub scale: f64,
}

/// Mutable network conditions, shared (behind a lock) between every node of
/// one cluster and the driver steering the run.
#[derive(Clone, Default)]
struct Conditions {
    /// Replacement per-leg distributions (a latency *regime swap*);
    /// `None` = the base legs.
    legs: Option<[DynDistribution; 4]>,
    /// Per-leg multiplicative scaling on top of whichever legs are active.
    /// `None` = all ones.
    leg_scale: Option<[f64; 4]>,
    /// Partition group of each node; messages crossing groups are dropped.
    /// Empty = no partition.
    partition: Vec<u32>,
    /// Active per-link faults (checked in order; all matches apply).
    link_faults: Vec<LinkFault>,
    /// Installed buggify fault schedule (a plain profile installs as a
    /// single-segment constant schedule); `None` = no injected faults.
    faults: Option<FaultSchedule>,
}

/// One-way message delays for the simulated cluster.
///
/// Base per-leg distributions are sampled i.i.d. per message (matching the
/// WARS assumptions); an optional datacenter map adds a fixed penalty to
/// messages crossing datacenter boundaries, reproducing §5.5's WAN model
/// inside the full store.
///
/// On top of the immutable base model sits a set of **dynamic conditions**
/// that may change mid-run through `&self` (interior mutability):
/// [`swap_legs`](Self::swap_legs) replaces the active distributions (a
/// latency-regime shift), [`set_leg_scale`](Self::set_leg_scale) scales
/// them, [`partition`](Self::partition) drops messages across group
/// boundaries until [`heal_partition`](Self::heal_partition), and
/// [`add_link_fault`](Self::add_link_fault) degrades individual links.
/// Messages already in flight keep the delay they were sampled with —
/// condition changes affect subsequent sends, exactly like a real network.
///
/// `Clone` **forks** the model: the clone shares the (immutable) base legs
/// cheaply via `Arc` but receives an independent copy of the dynamic
/// conditions, so sharded experiment drivers can steer one cluster per
/// shard without cross-talk.
pub struct NetworkModel {
    base: [DynDistribution; 4],
    /// `dc_of[node]` — datacenter of each node; empty = single DC.
    dc_of: Vec<u32>,
    inter_dc_penalty_ms: f64,
    dynamic: Arc<RwLock<Conditions>>,
    /// Whether any dynamic condition is currently active. The per-message
    /// hot path checks this one relaxed load and, in the common
    /// no-conditions case, samples the base legs without touching the
    /// conditions lock at all.
    dynamic_active: Arc<AtomicBool>,
}

impl Clone for NetworkModel {
    fn clone(&self) -> Self {
        Self {
            base: self.base.clone(),
            dc_of: self.dc_of.clone(),
            inter_dc_penalty_ms: self.inter_dc_penalty_ms,
            // Deep-fork the dynamic state: clones steer independently.
            dynamic: Arc::new(RwLock::new(self.conditions().clone())),
            dynamic_active: Arc::new(AtomicBool::new(self.dynamic_active.load(Ordering::Relaxed))),
        }
    }
}

impl NetworkModel {
    /// Single-datacenter model with independent per-leg distributions.
    pub fn new(
        w: DynDistribution,
        a: DynDistribution,
        r: DynDistribution,
        s: DynDistribution,
    ) -> Self {
        Self {
            base: [w, a, r, s],
            dc_of: Vec::new(),
            inter_dc_penalty_ms: 0.0,
            dynamic: Arc::new(RwLock::new(Conditions::default())),
            dynamic_active: Arc::new(AtomicBool::new(false)),
        }
    }

    /// Common shorthand: one distribution for `W`, one shared by `A=R=S`.
    pub fn w_ars(w: DynDistribution, ars: DynDistribution) -> Self {
        Self::new(w, ars.clone(), ars.clone(), ars)
    }

    /// Attach a datacenter topology: `dc_of[node]` is each node's DC and
    /// `penalty_ms` is added per one-way message crossing DCs.
    pub fn with_datacenters(mut self, dc_of: Vec<u32>, penalty_ms: f64) -> Self {
        assert!(penalty_ms >= 0.0 && penalty_ms.is_finite());
        self.dc_of = dc_of;
        self.inter_dc_penalty_ms = penalty_ms;
        self
    }

    fn conditions(&self) -> std::sync::RwLockReadGuard<'_, Conditions> {
        self.dynamic.read().expect("network conditions lock poisoned")
    }

    /// Mutate the dynamic conditions and refresh the hot-path activity
    /// flag. All condition setters funnel through here.
    fn update_conditions(&self, f: impl FnOnce(&mut Conditions)) {
        let mut c = self.dynamic.write().expect("network conditions lock poisoned");
        f(&mut c);
        let active = c.legs.is_some()
            || c.leg_scale.is_some()
            || !c.partition.is_empty()
            || !c.link_faults.is_empty()
            || c.faults.is_some();
        self.dynamic_active.store(active, Ordering::Relaxed);
    }

    // ----- dynamic conditions (mid-run steering) -----

    /// Replace the active per-leg distributions — a latency *regime swap*
    /// (e.g. SSDs degrade to disk-like write tails). Takes effect for every
    /// message sent after the call; in-flight messages are unaffected.
    pub fn swap_legs(
        &self,
        w: DynDistribution,
        a: DynDistribution,
        r: DynDistribution,
        s: DynDistribution,
    ) {
        self.update_conditions(|c| c.legs = Some([w, a, r, s]));
    }

    /// Scale whichever legs are active by per-leg factors (≥ 0). Factors
    /// are absolute, not cumulative: calling twice with `2.0` scales by
    /// 2×, not 4×.
    pub fn set_leg_scale(&self, w: f64, a: f64, r: f64, s: f64) {
        for f in [w, a, r, s] {
            assert!(f >= 0.0 && f.is_finite(), "leg scale must be finite and ≥ 0: {f}");
        }
        self.update_conditions(|c| c.leg_scale = Some([w, a, r, s]));
    }

    /// Drop any regime swap and leg scaling, returning to the base legs.
    /// Partitions and link faults are left in place.
    pub fn restore_base_legs(&self) {
        self.update_conditions(|c| {
            c.legs = None;
            c.leg_scale = None;
        });
    }

    /// Install a network partition: `groups[node]` assigns each node to a
    /// partition group, and every message between nodes in *different*
    /// groups is silently dropped. Replaces any existing partition.
    ///
    /// **Saturating contract**: nodes beyond `groups.len()` are treated as
    /// members of group 0 — a short vector therefore *connects* the tail
    /// of the cluster to whichever nodes were explicitly assigned group 0,
    /// which is rarely what a scenario intends. Prefer
    /// [`try_partition`](Self::try_partition), which rejects a grouping
    /// that does not cover every node; this method is kept for callers
    /// that deliberately want "everyone else in group 0" shorthand.
    pub fn partition(&self, groups: Vec<u32>) {
        self.update_conditions(|c| c.partition = groups);
    }

    /// Install a network partition, rejecting a grouping that does not
    /// assign exactly one group to each of the cluster's `nodes` nodes
    /// (see [`partition`](Self::partition) for the saturating fallback).
    pub fn try_partition(&self, groups: Vec<u32>, nodes: usize) -> Result<(), FaultConfigError> {
        if groups.len() != nodes {
            return Err(FaultConfigError::GroupCountMismatch { groups: groups.len(), nodes });
        }
        self.update_conditions(|c| c.partition = groups);
        Ok(())
    }

    /// Heal the partition: full pairwise delivery resumes for messages sent
    /// after the call.
    pub fn heal_partition(&self) {
        self.update_conditions(|c| c.partition.clear());
    }

    /// Whether a partition currently blocks `from → to`.
    pub fn is_partitioned(&self, from: usize, to: usize) -> bool {
        let c = self.conditions();
        if c.partition.is_empty() {
            return false;
        }
        let a = c.partition.get(from).copied().unwrap_or(0);
        let b = c.partition.get(to).copied().unwrap_or(0);
        a != b
    }

    /// Whether a message from `from` to `to` would currently be delivered.
    pub fn deliverable(&self, from: usize, to: usize) -> bool {
        !self.is_partitioned(from, to)
    }

    /// Add a directed per-link fault (see [`LinkFault`]). Faults stack:
    /// every matching fault applies, in insertion order. Non-finite or
    /// negative parameters are rejected with an error (not a panic), so
    /// a bad scenario timeline cannot abort a run mid-flight.
    pub fn add_link_fault(&self, fault: LinkFault) -> Result<(), FaultConfigError> {
        if !(fault.extra_ms.is_finite() && fault.extra_ms >= 0.0) {
            return Err(FaultConfigError::BadMagnitude {
                field: "link_fault.extra_ms",
                value: fault.extra_ms,
            });
        }
        if !(fault.scale.is_finite() && fault.scale >= 0.0) {
            return Err(FaultConfigError::BadMagnitude {
                field: "link_fault.scale",
                value: fault.scale,
            });
        }
        self.update_conditions(|c| c.link_faults.push(fault));
        Ok(())
    }

    /// Remove every per-link fault.
    pub fn clear_link_faults(&self) {
        self.update_conditions(|c| c.link_faults.clear());
    }

    /// Install a buggify [`FaultProfile`], validating it first. Takes
    /// effect for messages sent (and replica applies performed) after the
    /// call; replaces any previously installed profile or schedule.
    /// Internally this installs a single-segment constant
    /// [`FaultSchedule`].
    pub fn set_fault_profile(&self, profile: FaultProfile) -> Result<(), FaultConfigError> {
        profile.validate()?;
        self.update_conditions(|c| c.faults = Some(FaultSchedule::constant(profile)));
        Ok(())
    }

    /// Install a piecewise time-varying [`FaultSchedule`], validating it
    /// first. The profile consulted for each message (and replica apply,
    /// and protocol timer) is the segment active at the sender's current
    /// simulated time, so storms ramp, burst, and clear on the schedule's
    /// clock. Replaces any previously installed profile or schedule.
    pub fn set_fault_schedule(&self, schedule: FaultSchedule) -> Result<(), FaultConfigError> {
        schedule.validate()?;
        self.update_conditions(|c| c.faults = Some(schedule));
        Ok(())
    }

    /// Remove the installed fault profile or schedule (subsequent sends
    /// are clean).
    pub fn clear_fault_profile(&self) {
        self.update_conditions(|c| c.faults = None);
    }

    /// The currently installed *constant* fault profile, if any. A
    /// multi-segment schedule returns `None` here — use
    /// [`fault_schedule`](Self::fault_schedule) for the full timeline.
    pub fn fault_profile(&self) -> Option<FaultProfile> {
        if !self.dynamic_active.load(Ordering::Relaxed) {
            return None;
        }
        self.conditions().faults.as_ref().and_then(FaultSchedule::as_constant)
    }

    /// The currently installed fault schedule, if any (a plain profile
    /// reads back as a single-segment constant schedule).
    pub fn fault_schedule(&self) -> Option<FaultSchedule> {
        if !self.dynamic_active.load(Ordering::Relaxed) {
            return None;
        }
        self.conditions().faults.clone()
    }

    // ----- sampling -----

    /// Attempt to transmit one message on `leg` from `from` to `to` under
    /// the current dynamic conditions: `None` when a partition blocks the
    /// link, otherwise the sampled one-way delay (regime, scaling, DC
    /// penalty, link faults applied). This is the hot-path entry point —
    /// one conditions-lock acquisition per message, with no window between
    /// the deliverability check and the sample.
    pub fn transmit(&self, leg: Leg, from: usize, to: usize, rng: &mut dyn RngCore) -> Option<f64> {
        if !self.dynamic_active.load(Ordering::Relaxed) {
            // Hot path: no partitions, regimes, scaling, or link faults —
            // sample the base leg without acquiring the conditions lock.
            // Consumes exactly the same RNG draws as the general path.
            return Some(self.base[leg.index()].sample(rng) + self.penalty(from, to));
        }
        let c = self.conditions();
        if !c.partition.is_empty() {
            let a = c.partition.get(from).copied().unwrap_or(0);
            let b = c.partition.get(to).copied().unwrap_or(0);
            if a != b {
                return None;
            }
        }
        Some(self.delay_under(&c, leg, from, to, rng))
    }

    /// [`transmit`](Self::transmit) with the installed buggify
    /// [`FaultSchedule`] applied: the message may be dropped, duplicated,
    /// reordered (bounded extra jitter), or slowed (slow-node multiplier)
    /// on top of the usual dynamic conditions. The profile consulted is
    /// the schedule segment active at `now_ms`, the sender's current
    /// simulated time. With no schedule installed — or when the active
    /// segment's probabilities are all zero — this consumes **exactly**
    /// the RNG draws of `transmit` and returns `Once`/`Dropped`
    /// accordingly: the fault layer is invisible to fault-free seeded
    /// runs and to calm segments of a scheduled storm. All rolls come
    /// from the *sender's* RNG and `now_ms` is sender-local state, so
    /// sharded chaos runs stay bit-reproducible per `(seed, threads)`.
    pub fn transmit_buggified(
        &self,
        leg: Leg,
        from: usize,
        to: usize,
        now_ms: f64,
        rng: &mut dyn RngCore,
    ) -> Delivery {
        if !self.dynamic_active.load(Ordering::Relaxed) {
            return Delivery::Once(self.base[leg.index()].sample(rng) + self.penalty(from, to));
        }
        let c = self.conditions();
        if !c.partition.is_empty() {
            let a = c.partition.get(from).copied().unwrap_or(0);
            let b = c.partition.get(to).copied().unwrap_or(0);
            if a != b {
                return Delivery::Dropped;
            }
        }
        let Some(p) = c.faults.as_ref().map(|s| *s.active_at(now_ms)) else {
            return Delivery::Once(self.delay_under(&c, leg, from, to, rng));
        };
        if p.drop_prob > 0.0 && unit(rng) < p.drop_prob {
            return Delivery::Dropped;
        }
        let first = self.faulty_delay(&c, &p, leg, from, to, rng);
        if p.duplicate_prob > 0.0 && unit(rng) < p.duplicate_prob {
            // Independent delay for the duplicate: the two copies race.
            let second = self.faulty_delay(&c, &p, leg, from, to, rng);
            Delivery::Twice(first, second)
        } else {
            Delivery::Once(first)
        }
    }

    /// One delivery's delay under dynamic conditions *plus* the profile's
    /// reorder jitter and slow-node multiplier. Zero-probability faults
    /// consume no RNG draws, so a profile with only (say) drops enabled
    /// perturbs the stream minimally and deterministically.
    fn faulty_delay(
        &self,
        c: &Conditions,
        p: &FaultProfile,
        leg: Leg,
        from: usize,
        to: usize,
        rng: &mut dyn RngCore,
    ) -> f64 {
        let mut delay = self.delay_under(c, leg, from, to, rng);
        if p.reorder_prob > 0.0 && unit(rng) < p.reorder_prob {
            delay += unit(rng) * p.reorder_max_ms;
        }
        delay * p.slow_factor(from as u32).max(p.slow_factor(to as u32))
    }

    /// Disk lag (ms) to impose on a replica apply at `node` under the
    /// schedule segment active at `now_ms`; 0.0 with no schedule, a
    /// zero-probability segment (no RNG draws), or a missed roll. Rolls
    /// come from the replica's own RNG; slow nodes (whose disks are slow
    /// too) scale the lag by their latency factor.
    pub fn disk_lag_ms(&self, node: usize, now_ms: f64, rng: &mut dyn RngCore) -> f64 {
        if !self.dynamic_active.load(Ordering::Relaxed) {
            return 0.0;
        }
        let Some(p) = self.conditions().faults.as_ref().map(|s| *s.active_at(now_ms)) else {
            return 0.0;
        };
        if p.disk_lag_prob > 0.0 && unit(rng) < p.disk_lag_prob {
            unit(rng) * p.disk_lag_max_ms * p.slow_factor(node as u32)
        } else {
            0.0
        }
    }

    /// The protocol-timer clock for `node` under the schedule segment
    /// active at `now_ms` ([`SkewedClock::IDENTITY`] with no schedule).
    /// Pure per-(node, segment) trait — no RNG draws.
    pub fn clock_of(&self, node: usize, now_ms: f64) -> SkewedClock {
        if !self.dynamic_active.load(Ordering::Relaxed) {
            return SkewedClock::IDENTITY;
        }
        match self.conditions().faults.as_ref() {
            Some(s) => s.active_at(now_ms).clock_of(node as u32),
            None => SkewedClock::IDENTITY,
        }
    }

    /// Sample the one-way delay for a message on `leg` from node `from` to
    /// node `to`, under the current dynamic conditions (regime, scaling,
    /// link faults — but **not** partitions; callers gate delivery on
    /// [`deliverable`](Self::deliverable), or use
    /// [`transmit`](Self::transmit), which does both under one lock).
    pub fn delay(&self, leg: Leg, from: usize, to: usize, rng: &mut dyn RngCore) -> f64 {
        if !self.dynamic_active.load(Ordering::Relaxed) {
            return self.base[leg.index()].sample(rng) + self.penalty(from, to);
        }
        let c = self.conditions();
        self.delay_under(&c, leg, from, to, rng)
    }

    fn delay_under(
        &self,
        c: &Conditions,
        leg: Leg,
        from: usize,
        to: usize,
        rng: &mut dyn RngCore,
    ) -> f64 {
        let i = leg.index();
        let dist = match &c.legs {
            Some(legs) => &legs[i],
            None => &self.base[i],
        };
        let mut delay = dist.sample(rng);
        if let Some(scale) = c.leg_scale {
            delay *= scale[i];
        }
        delay += self.penalty(from, to);
        for f in &c.link_faults {
            if f.from == from && f.to == to {
                delay = delay * f.scale + f.extra_ms;
            }
        }
        delay
    }

    fn penalty(&self, from: usize, to: usize) -> f64 {
        if self.dc_of.is_empty() {
            return 0.0;
        }
        let a = self.dc_of.get(from).copied().unwrap_or(0);
        let b = self.dc_of.get(to).copied().unwrap_or(0);
        if a == b {
            0.0
        } else {
            self.inter_dc_penalty_ms
        }
    }

    /// The datacenter of `node` (0 when no topology is attached).
    pub fn datacenter_of(&self, node: usize) -> u32 {
        self.dc_of.get(node).copied().unwrap_or(0)
    }

    /// A conservative lower bound (ms) on the one-way delay of **any**
    /// node-to-node message under the *current* dynamic conditions — the
    /// lookahead the conservative parallel engine
    /// ([`pbs_sim::ParallelSimulation`]) synchronises on.
    ///
    /// Soundness over tightness: every term that can only *increase* a
    /// delay (the inter-DC penalty, link-fault `extra_ms`, buggify reorder
    /// jitter, slow-node factors ≥ 1) is ignored, while every term that
    /// can *shrink* one is folded in — per-leg scaling and link-fault
    /// scales below 1 multiply the bound down. The result is 0 whenever
    /// any active leg has unbounded-below support (e.g. an exponential
    /// component), which the parallel engine rejects as degenerate
    /// lookahead.
    ///
    /// Conditions only change at run-driver boundaries, so callers
    /// re-query this once per `run_until` window, not per message.
    pub fn min_cross_delay_ms(&self) -> f64 {
        let c = self.conditions();
        let legs = match &c.legs {
            Some(legs) => legs,
            None => &self.base,
        };
        let scale = c.leg_scale.unwrap_or([1.0; 4]);
        let mut lb = f64::INFINITY;
        for i in 0..4 {
            lb = lb.min(legs[i].lower_bound() * scale[i]);
        }
        // Link faults rescale a sampled delay (`d * scale + extra`);
        // `extra ≥ 0` only adds, so dropping it keeps the bound sound,
        // while a scale below 1 genuinely shrinks delays on that link.
        for f in &c.link_faults {
            lb *= f.scale.min(1.0);
        }
        lb
    }
}

impl std::fmt::Debug for NetworkModel {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        let c = self.conditions();
        let active = |i: usize| -> String {
            match &c.legs {
                Some(legs) => legs[i].describe(),
                None => self.base[i].describe(),
            }
        };
        f.debug_struct("NetworkModel")
            .field("w", &active(0))
            .field("a", &active(1))
            .field("r", &active(2))
            .field("s", &active(3))
            .field("leg_scale", &c.leg_scale)
            .field("partition", &c.partition)
            .field("link_faults", &c.link_faults)
            .field("faults", &c.faults)
            .field("datacenters", &self.dc_of)
            .field("inter_dc_penalty_ms", &self.inter_dc_penalty_ms)
            .finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use pbs_dist::Constant;
    use rand::rngs::StdRng;
    use rand::SeedableRng;
    use std::sync::Arc;

    fn constant_net() -> NetworkModel {
        NetworkModel::new(
            Arc::new(Constant::new(4.0)),
            Arc::new(Constant::new(3.0)),
            Arc::new(Constant::new(2.0)),
            Arc::new(Constant::new(1.0)),
        )
    }

    #[test]
    fn per_leg_distributions() {
        let net = constant_net();
        let mut rng = StdRng::seed_from_u64(0);
        assert_eq!(net.delay(Leg::W, 0, 1, &mut rng), 4.0);
        assert_eq!(net.delay(Leg::A, 1, 0, &mut rng), 3.0);
        assert_eq!(net.delay(Leg::R, 0, 1, &mut rng), 2.0);
        assert_eq!(net.delay(Leg::S, 1, 0, &mut rng), 1.0);
    }

    #[test]
    fn dc_penalty_applies_only_across_dcs() {
        let net = constant_net().with_datacenters(vec![0, 0, 1], 75.0);
        let mut rng = StdRng::seed_from_u64(0);
        assert_eq!(net.delay(Leg::W, 0, 1, &mut rng), 4.0, "same DC");
        assert_eq!(net.delay(Leg::W, 0, 2, &mut rng), 79.0, "cross DC");
        assert_eq!(net.delay(Leg::S, 2, 0, &mut rng), 76.0);
        assert_eq!(net.datacenter_of(2), 1);
    }

    #[test]
    fn regime_swap_and_restore() {
        let net = constant_net();
        let mut rng = StdRng::seed_from_u64(0);
        net.swap_legs(
            Arc::new(Constant::new(40.0)),
            Arc::new(Constant::new(30.0)),
            Arc::new(Constant::new(20.0)),
            Arc::new(Constant::new(10.0)),
        );
        assert_eq!(net.delay(Leg::W, 0, 1, &mut rng), 40.0);
        assert_eq!(net.delay(Leg::S, 1, 0, &mut rng), 10.0);
        net.restore_base_legs();
        assert_eq!(net.delay(Leg::W, 0, 1, &mut rng), 4.0);
    }

    #[test]
    fn leg_scale_is_absolute_not_cumulative() {
        let net = constant_net();
        let mut rng = StdRng::seed_from_u64(0);
        net.set_leg_scale(2.0, 1.0, 1.0, 1.0);
        net.set_leg_scale(2.0, 1.0, 1.0, 1.0);
        assert_eq!(net.delay(Leg::W, 0, 1, &mut rng), 8.0, "2× once, not 4×");
        assert_eq!(net.delay(Leg::A, 1, 0, &mut rng), 3.0, "other legs untouched");
    }

    #[test]
    fn partition_blocks_cross_group_only() {
        let net = constant_net();
        net.partition(vec![0, 0, 1]);
        assert!(net.deliverable(0, 1));
        assert!(!net.deliverable(0, 2));
        assert!(!net.deliverable(2, 1));
        assert!(net.deliverable(2, 2), "self-delivery always works");
        net.heal_partition();
        assert!(net.deliverable(0, 2));
    }

    #[test]
    fn link_faults_scale_then_add() {
        let net = constant_net();
        let mut rng = StdRng::seed_from_u64(0);
        net.add_link_fault(LinkFault { from: 0, to: 1, extra_ms: 5.0, scale: 3.0 }).unwrap();
        assert_eq!(net.delay(Leg::W, 0, 1, &mut rng), 4.0 * 3.0 + 5.0);
        assert_eq!(net.delay(Leg::W, 1, 0, &mut rng), 4.0, "directed: reverse unaffected");
        net.clear_link_faults();
        assert_eq!(net.delay(Leg::W, 0, 1, &mut rng), 4.0);
    }

    #[test]
    fn transmit_gates_on_partition_and_samples_otherwise() {
        let net = constant_net();
        let mut rng = StdRng::seed_from_u64(0);
        assert_eq!(net.transmit(Leg::W, 0, 2, &mut rng), Some(4.0));
        net.partition(vec![0, 0, 1]);
        assert_eq!(net.transmit(Leg::W, 0, 2, &mut rng), None, "cross-group blocked");
        assert_eq!(net.transmit(Leg::W, 0, 1, &mut rng), Some(4.0), "same group flows");
        net.heal_partition();
        assert_eq!(net.transmit(Leg::W, 0, 2, &mut rng), Some(4.0));
    }

    #[test]
    fn try_partition_rejects_short_and_long_groupings() {
        // Regression: `partition` used to be the only entry point, and it
        // silently folds unassigned nodes into group 0 — a short vector
        // reconnects the tail of the cluster. `try_partition` makes the
        // mismatch an error.
        let net = constant_net();
        assert_eq!(
            net.try_partition(vec![0, 1], 3),
            Err(FaultConfigError::GroupCountMismatch { groups: 2, nodes: 3 })
        );
        assert_eq!(
            net.try_partition(vec![0, 1, 0, 1], 3),
            Err(FaultConfigError::GroupCountMismatch { groups: 4, nodes: 3 })
        );
        assert!(net.deliverable(0, 1), "rejected grouping is not installed");
        net.try_partition(vec![0, 1, 0], 3).unwrap();
        assert!(!net.deliverable(0, 1));
        // The saturating legacy entry point still documents its contract:
        // node 2 (beyond the grouping) joins group 0.
        net.partition(vec![0, 1]);
        assert!(net.deliverable(0, 2), "unassigned node saturates into group 0");
        assert!(!net.deliverable(1, 2));
    }

    #[test]
    fn add_link_fault_rejects_bad_magnitudes_without_panicking() {
        let net = constant_net();
        for bad in [
            LinkFault { from: 0, to: 1, extra_ms: -1.0, scale: 1.0 },
            LinkFault { from: 0, to: 1, extra_ms: f64::NAN, scale: 1.0 },
            LinkFault { from: 0, to: 1, extra_ms: 0.0, scale: -2.0 },
            LinkFault { from: 0, to: 1, extra_ms: 0.0, scale: f64::INFINITY },
        ] {
            assert!(matches!(
                net.add_link_fault(bad),
                Err(FaultConfigError::BadMagnitude { .. })
            ));
        }
        let mut rng = StdRng::seed_from_u64(0);
        assert_eq!(net.delay(Leg::W, 0, 1, &mut rng), 4.0, "rejected faults not installed");
    }

    #[test]
    fn buggified_transmit_without_profile_matches_transmit() {
        let net = constant_net();
        let mut a = StdRng::seed_from_u64(9);
        let mut b = StdRng::seed_from_u64(9);
        for _ in 0..32 {
            let plain = net.transmit(Leg::W, 0, 1, &mut a);
            let buggy = net.transmit_buggified(Leg::W, 0, 1, 0.0, &mut b);
            assert_eq!(buggy, Delivery::Once(plain.unwrap()));
        }
        // Same with a non-fault dynamic condition active (lock path).
        net.set_leg_scale(2.0, 1.0, 1.0, 1.0);
        let plain = net.transmit(Leg::W, 0, 1, &mut a).unwrap();
        assert_eq!(net.transmit_buggified(Leg::W, 0, 1, 0.0, &mut b), Delivery::Once(plain));
        // RNG streams consumed identically throughout.
        assert_eq!(a.next_u64(), b.next_u64());
    }

    #[test]
    fn certain_drop_and_certain_duplicate() {
        let net = constant_net();
        let mut rng = StdRng::seed_from_u64(1);
        net.set_fault_profile(FaultProfile::new(0).with_drop(1.0)).unwrap();
        assert_eq!(net.transmit_buggified(Leg::W, 0, 1, 0.0, &mut rng), Delivery::Dropped);
        net.set_fault_profile(FaultProfile::new(0).with_duplicate(1.0)).unwrap();
        assert_eq!(
            net.transmit_buggified(Leg::W, 0, 1, 0.0, &mut rng),
            Delivery::Twice(4.0, 4.0),
            "constant legs, certain duplication"
        );
        net.clear_fault_profile();
        assert_eq!(net.fault_profile(), None);
        assert_eq!(net.transmit_buggified(Leg::W, 0, 1, 0.0, &mut rng), Delivery::Once(4.0));
    }

    #[test]
    fn reorder_jitter_is_bounded_and_slow_nodes_multiply() {
        let net = constant_net();
        let mut rng = StdRng::seed_from_u64(2);
        net.set_fault_profile(FaultProfile::new(0).with_reorder(1.0, 6.0)).unwrap();
        for _ in 0..64 {
            let Delivery::Once(d) = net.transmit_buggified(Leg::W, 0, 1, 0.0, &mut rng) else {
                panic!("no drops configured");
            };
            assert!((4.0..4.0 + 6.0).contains(&d), "jitter within bound: {d}");
        }
        // Every node slow at 2×: constant 4ms leg becomes exactly 8ms.
        net.set_fault_profile(FaultProfile::new(0).with_slow_nodes(1.0, 2.0)).unwrap();
        assert_eq!(net.transmit_buggified(Leg::W, 0, 1, 0.0, &mut rng), Delivery::Once(8.0));
    }

    #[test]
    fn disk_lag_and_clocks_follow_the_profile() {
        let net = constant_net();
        let mut rng = StdRng::seed_from_u64(3);
        assert_eq!(net.disk_lag_ms(0, 0.0, &mut rng), 0.0, "no profile, no lag, no draws");
        assert!(net.clock_of(0, 0.0).is_identity());
        net.set_fault_profile(FaultProfile::new(5).with_disk_lag(1.0, 2.5)).unwrap();
        for _ in 0..32 {
            let lag = net.disk_lag_ms(0, 0.0, &mut rng);
            assert!((0.0..2.5).contains(&lag));
        }
        net.set_fault_profile(FaultProfile::new(5).with_clock_drift(0.05)).unwrap();
        let rates: Vec<f64> = (0..8).map(|n| net.clock_of(n, 0.0).rate()).collect();
        assert!(rates.iter().all(|r| (0.95..=1.05).contains(r)));
        assert!(rates.iter().any(|r| *r != 1.0), "drift actually assigned");
    }

    #[test]
    fn invalid_profile_rejected_and_not_installed() {
        let net = constant_net();
        assert!(net.set_fault_profile(FaultProfile::new(0).with_drop(2.0)).is_err());
        assert_eq!(net.fault_profile(), None);
        let mut rng = StdRng::seed_from_u64(0);
        assert_eq!(net.transmit_buggified(Leg::W, 0, 1, 0.0, &mut rng), Delivery::Once(4.0));
    }

    #[test]
    fn schedule_switches_profiles_at_segment_boundaries() {
        use crate::buggify::{FaultSchedule, ScheduleSegment};
        let net = constant_net();
        let mut rng = StdRng::seed_from_u64(4);
        net.set_fault_schedule(FaultSchedule::piecewise(vec![
            ScheduleSegment::new(0.0, FaultProfile::new(7)),
            ScheduleSegment::new(10.0, FaultProfile::new(7).with_drop(1.0)),
            ScheduleSegment::new(20.0, FaultProfile::new(7)),
        ]))
        .unwrap();
        // Multi-segment schedules read back as a schedule, not a profile.
        assert_eq!(net.fault_profile(), None);
        assert_eq!(net.fault_schedule().unwrap().segments().len(), 3);
        // Calm before, certain drop inside [10, 20), calm again after —
        // and the boundary itself belongs to the new segment.
        assert_eq!(net.transmit_buggified(Leg::W, 0, 1, 9.999, &mut rng), Delivery::Once(4.0));
        assert_eq!(net.transmit_buggified(Leg::W, 0, 1, 10.0, &mut rng), Delivery::Dropped);
        assert_eq!(net.transmit_buggified(Leg::W, 0, 1, 19.999, &mut rng), Delivery::Dropped);
        assert_eq!(net.transmit_buggified(Leg::W, 0, 1, 20.0, &mut rng), Delivery::Once(4.0));
        assert_eq!(net.transmit_buggified(Leg::W, 0, 1, 1e9, &mut rng), Delivery::Once(4.0));
    }

    #[test]
    fn calm_schedule_segment_draws_exactly_like_plain_transmit() {
        use crate::buggify::FaultSchedule;
        // A scheduled storm whose active segment is inert must consume
        // exactly the RNG draws of an unfaulted transmit — zero-probability
        // segments are invisible to the stream.
        let net = constant_net();
        net.set_fault_schedule(FaultSchedule::calm_storm_calm(
            FaultProfile::storm(7),
            50.0,
            100.0,
        ))
        .unwrap();
        let plain = constant_net();
        let mut a = StdRng::seed_from_u64(11);
        let mut b = StdRng::seed_from_u64(11);
        for now in [0.0, 10.0, 49.999, 100.0, 5000.0] {
            let expect = plain.transmit(Leg::W, 0, 1, &mut a).unwrap();
            assert_eq!(net.transmit_buggified(Leg::W, 0, 1, now, &mut b), Delivery::Once(expect));
            assert_eq!(net.disk_lag_ms(0, now, &mut b), 0.0, "calm segment: no disk draws");
            assert!(net.clock_of(0, now).is_identity());
        }
        assert_eq!(a.next_u64(), b.next_u64(), "RNG streams stayed in lockstep");
        // Inside the storm window the drift trait switches on.
        assert!((0..8).any(|n| !net.clock_of(n, 75.0).is_identity()));
    }

    #[test]
    fn invalid_schedule_rejected_and_not_installed() {
        use crate::buggify::{FaultSchedule, ScheduleSegment};
        let net = constant_net();
        let bad = FaultSchedule::piecewise(vec![ScheduleSegment::new(
            5.0,
            FaultProfile::new(0),
        )]);
        assert!(net.set_fault_schedule(bad).is_err());
        assert_eq!(net.fault_schedule(), None);
        let mut rng = StdRng::seed_from_u64(0);
        assert_eq!(net.transmit_buggified(Leg::W, 0, 1, 0.0, &mut rng), Delivery::Once(4.0));
    }

    #[test]
    fn min_cross_delay_tracks_shrinking_conditions_only() {
        use pbs_dist::{Exponential, Mixture, Pareto};
        let net = constant_net();
        // Base: min over the four constant legs (S = 1 ms).
        assert_eq!(net.min_cross_delay_ms(), 1.0);
        // DC penalties only add — the bound must not grow.
        let net = constant_net().with_datacenters(vec![0, 1], 75.0);
        assert_eq!(net.min_cross_delay_ms(), 1.0);
        // Leg scaling shrinks the bound through the cheapest leg.
        net.set_leg_scale(1.0, 1.0, 1.0, 0.5);
        assert_eq!(net.min_cross_delay_ms(), 0.5);
        net.set_leg_scale(1.0, 1.0, 1.0, 4.0);
        assert_eq!(net.min_cross_delay_ms(), 2.0, "all legs scaled up: R leg now floors");
        net.restore_base_legs();
        // A link fault with scale < 1 shrinks; extra_ms alone does not.
        net.add_link_fault(LinkFault { from: 0, to: 1, extra_ms: 9.0, scale: 1.0 }).unwrap();
        assert_eq!(net.min_cross_delay_ms(), 1.0, "additive fault cannot raise the floor");
        net.add_link_fault(LinkFault { from: 1, to: 0, extra_ms: 0.0, scale: 0.25 }).unwrap();
        assert_eq!(net.min_cross_delay_ms(), 0.25);
        net.clear_link_faults();
        // Regime swap to a Pareto-bodied mixture: floor = w · nothing, it's
        // the true support minimum xm, not quantile(0).
        let pareto = Arc::new(Mixture::pure_pareto(Pareto::new(0.235, 10.0)));
        net.swap_legs(pareto.clone(), pareto.clone(), pareto.clone(), pareto.clone());
        assert_eq!(net.min_cross_delay_ms(), 0.235);
        // An exponential component drives the bound to zero — the
        // degenerate-lookahead case the parallel engine rejects.
        let exp = Arc::new(Exponential::from_mean(2.0));
        net.swap_legs(exp.clone(), exp.clone(), exp.clone(), exp.clone());
        assert_eq!(net.min_cross_delay_ms(), 0.0);
    }

    #[test]
    fn clone_forks_dynamic_conditions() {
        let net = constant_net();
        net.partition(vec![0, 1]);
        let fork = net.clone();
        assert!(!fork.deliverable(0, 1), "clone inherits current conditions");
        net.heal_partition();
        assert!(!fork.deliverable(0, 1), "healing the original leaves the fork alone");
        fork.heal_partition();
        let mut rng = StdRng::seed_from_u64(0);
        fork.swap_legs(
            Arc::new(Constant::new(9.0)),
            Arc::new(Constant::new(9.0)),
            Arc::new(Constant::new(9.0)),
            Arc::new(Constant::new(9.0)),
        );
        assert_eq!(net.delay(Leg::W, 0, 1, &mut rng), 4.0, "fork's swap is private");
    }
}
