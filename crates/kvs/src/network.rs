//! The network latency model: per-leg WARS distributions plus optional
//! datacenter topology.

use pbs_dist::DynDistribution;
use rand::RngCore;

/// Which WARS leg a message travels.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Leg {
    /// Coordinator → replica write propagation.
    W,
    /// Replica → coordinator write acknowledgment.
    A,
    /// Coordinator → replica read request.
    R,
    /// Replica → coordinator read response.
    S,
}

/// One-way message delays for the simulated cluster.
///
/// Base per-leg distributions are sampled i.i.d. per message (matching the
/// WARS assumptions); an optional datacenter map adds a fixed penalty to
/// messages crossing datacenter boundaries, reproducing §5.5's WAN model
/// inside the full store.
///
/// `Clone` is cheap (per-leg distributions are shared `Arc`s) — sharded
/// experiment drivers clone one model per independent cluster.
#[derive(Clone)]
pub struct NetworkModel {
    w: DynDistribution,
    a: DynDistribution,
    r: DynDistribution,
    s: DynDistribution,
    /// `dc_of[node]` — datacenter of each node; empty = single DC.
    dc_of: Vec<u32>,
    inter_dc_penalty_ms: f64,
}

impl NetworkModel {
    /// Single-datacenter model with independent per-leg distributions.
    pub fn new(
        w: DynDistribution,
        a: DynDistribution,
        r: DynDistribution,
        s: DynDistribution,
    ) -> Self {
        Self { w, a, r, s, dc_of: Vec::new(), inter_dc_penalty_ms: 0.0 }
    }

    /// Common shorthand: one distribution for `W`, one shared by `A=R=S`.
    pub fn w_ars(w: DynDistribution, ars: DynDistribution) -> Self {
        Self::new(w, ars.clone(), ars.clone(), ars)
    }

    /// Attach a datacenter topology: `dc_of[node]` is each node's DC and
    /// `penalty_ms` is added per one-way message crossing DCs.
    pub fn with_datacenters(mut self, dc_of: Vec<u32>, penalty_ms: f64) -> Self {
        assert!(penalty_ms >= 0.0 && penalty_ms.is_finite());
        self.dc_of = dc_of;
        self.inter_dc_penalty_ms = penalty_ms;
        self
    }

    /// Sample the one-way delay for a message on `leg` from node `from` to
    /// node `to`.
    pub fn delay(&self, leg: Leg, from: usize, to: usize, rng: &mut dyn RngCore) -> f64 {
        let base = match leg {
            Leg::W => self.w.sample(rng),
            Leg::A => self.a.sample(rng),
            Leg::R => self.r.sample(rng),
            Leg::S => self.s.sample(rng),
        };
        base + self.penalty(from, to)
    }

    fn penalty(&self, from: usize, to: usize) -> f64 {
        if self.dc_of.is_empty() {
            return 0.0;
        }
        let a = self.dc_of.get(from).copied().unwrap_or(0);
        let b = self.dc_of.get(to).copied().unwrap_or(0);
        if a == b {
            0.0
        } else {
            self.inter_dc_penalty_ms
        }
    }

    /// The datacenter of `node` (0 when no topology is attached).
    pub fn datacenter_of(&self, node: usize) -> u32 {
        self.dc_of.get(node).copied().unwrap_or(0)
    }
}

impl std::fmt::Debug for NetworkModel {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("NetworkModel")
            .field("w", &self.w.describe())
            .field("a", &self.a.describe())
            .field("r", &self.r.describe())
            .field("s", &self.s.describe())
            .field("datacenters", &self.dc_of)
            .field("inter_dc_penalty_ms", &self.inter_dc_penalty_ms)
            .finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use pbs_dist::Constant;
    use rand::rngs::StdRng;
    use rand::SeedableRng;
    use std::sync::Arc;

    fn constant_net() -> NetworkModel {
        NetworkModel::new(
            Arc::new(Constant::new(4.0)),
            Arc::new(Constant::new(3.0)),
            Arc::new(Constant::new(2.0)),
            Arc::new(Constant::new(1.0)),
        )
    }

    #[test]
    fn per_leg_distributions() {
        let net = constant_net();
        let mut rng = StdRng::seed_from_u64(0);
        assert_eq!(net.delay(Leg::W, 0, 1, &mut rng), 4.0);
        assert_eq!(net.delay(Leg::A, 1, 0, &mut rng), 3.0);
        assert_eq!(net.delay(Leg::R, 0, 1, &mut rng), 2.0);
        assert_eq!(net.delay(Leg::S, 1, 0, &mut rng), 1.0);
    }

    #[test]
    fn dc_penalty_applies_only_across_dcs() {
        let net = constant_net().with_datacenters(vec![0, 0, 1], 75.0);
        let mut rng = StdRng::seed_from_u64(0);
        assert_eq!(net.delay(Leg::W, 0, 1, &mut rng), 4.0, "same DC");
        assert_eq!(net.delay(Leg::W, 0, 2, &mut rng), 79.0, "cross DC");
        assert_eq!(net.delay(Leg::S, 2, 0, &mut rng), 76.0);
        assert_eq!(net.datacenter_of(2), 1);
    }
}
