//! The Dynamo-style node: every node can coordinate client operations and
//! store replicas (§2.2, Figure 1).

use crate::buggify::{Delivery, ProtocolMutations};
use crate::fxhash::FxHashMap;
use crate::merkle;
use crate::messages::Msg;
use crate::network::{Leg, NetworkModel};
use crate::ring::Ring;
use crate::version::Version;
use pbs_sim::{Actor, ActorId, Context, Event, SimDuration, SimTime};
use rand::rngs::StdRng;
use rand::{Rng, RngCore, SeedableRng};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;

// ---------------------------------------------------------------------------
// Timer tags: the top byte selects the timer kind, the rest carries an op id.
// ---------------------------------------------------------------------------
const TAG_KIND_SHIFT: u64 = 56;
const KIND_RECOVER: u64 = 1;
const KIND_SYNC: u64 = 2;
const KIND_HINT_FLUSH: u64 = 3;
const KIND_WRITE_TIMEOUT: u64 = 4;
const KIND_GC: u64 = 5;

/// Shared liveness map: nodes mark themselves down/up on crash/recovery,
/// and operation issuers (the blocking harness and in-sim client actors
/// alike) consult it to avoid handing an operation to a crashed
/// coordinator — which would silently become an op timeout.
#[derive(Debug)]
pub struct DownTracker {
    down: Vec<AtomicBool>,
}

impl DownTracker {
    /// All-up tracker over `nodes` nodes.
    pub fn new(nodes: usize) -> Self {
        Self { down: (0..nodes).map(|_| AtomicBool::new(false)).collect() }
    }

    /// Mark `node` down or up.
    pub fn set_down(&self, node: usize, down: bool) {
        self.down[node].store(down, Ordering::Relaxed);
    }

    /// Whether `node` is currently marked down.
    pub fn is_down(&self, node: usize) -> bool {
        self.down[node].load(Ordering::Relaxed)
    }

    /// Pick a coordinator uniformly at random among **up** nodes, falling
    /// back to the raw draw when every node is down (the op will then time
    /// out, as it must). Consumes exactly one RNG draw regardless of crash
    /// state, so healthy-cluster RNG streams are unchanged by this check.
    pub fn pick_up_node(&self, rng: &mut dyn RngCore, nodes: usize) -> usize {
        self.pick_up_node_in(rng, 0, nodes)
    }

    /// [`pick_up_node`](Self::pick_up_node) restricted to the `count`
    /// nodes starting at `base` — the coordinator-affinity pick of the
    /// parallel engine, where a client may only address nodes of its own
    /// partition. Same RNG discipline (one draw, then a linear probe), so
    /// with `base = 0, count = nodes` it is bit-identical to the
    /// unrestricted pick.
    pub fn pick_up_node_in(&self, rng: &mut dyn RngCore, base: usize, count: usize) -> usize {
        let start = rng.gen_range(0..count);
        for probe in 0..count {
            let candidate = base + (start + probe) % count;
            if !self.is_down(candidate) {
                return candidate;
            }
        }
        base + start
    }
}

fn tag(kind: u64, op: u64) -> u64 {
    debug_assert!(op < (1 << TAG_KIND_SHIFT));
    (kind << TAG_KIND_SHIFT) | op
}

fn tag_kind(t: u64) -> u64 {
    t >> TAG_KIND_SHIFT
}

fn tag_op(t: u64) -> u64 {
    t & ((1 << TAG_KIND_SHIFT) - 1)
}

/// Per-node protocol options (shared across the cluster in practice).
#[derive(Debug, Clone, Copy)]
pub struct NodeOptions {
    /// Read quorum size `R`.
    pub r: u32,
    /// Write quorum size `W`.
    pub w: u32,
    /// Repair out-of-date replicas after reads (§4.2). The paper disables
    /// this for WARS validation; it is an ablation knob here.
    pub read_repair: bool,
    /// Stash hints for replicas that miss the write deadline and redeliver
    /// them later (Dynamo §4.6).
    pub hinted_handoff: bool,
    /// How long a write coordinator waits for stragglers before hinting.
    pub hint_timeout_ms: f64,
    /// Hint redelivery period.
    pub hint_flush_interval_ms: f64,
    /// Probability that any data-plane message is lost in transit.
    pub drop_prob: f64,
    /// Record every sampled one-way W/A/R/S delay (the WARS profiling the
    /// paper added to Cassandra, §5.2/§5.5). Off by default — it allocates.
    pub record_leg_samples: bool,
    /// Test-only protocol mutations (see [`ProtocolMutations`]); each flag
    /// breaks one convergence mechanism so the order oracle can be shown
    /// to catch it. All off by default.
    pub mutations: ProtocolMutations,
}

impl Default for NodeOptions {
    fn default() -> Self {
        Self {
            r: 1,
            w: 1,
            read_repair: false,
            hinted_handoff: false,
            hint_timeout_ms: 250.0,
            hint_flush_interval_ms: 500.0,
            drop_prob: 0.0,
            record_leg_samples: false,
            mutations: ProtocolMutations::default(),
        }
    }
}

/// Recorded one-way delays per WARS leg.
#[derive(Debug, Clone, Default)]
pub struct LegSamples {
    /// Write-propagation delays (`W`).
    pub w: Vec<f64>,
    /// Write-ack delays (`A`).
    pub a: Vec<f64>,
    /// Read-request delays (`R`).
    pub r: Vec<f64>,
    /// Read-response delays (`S`).
    pub s: Vec<f64>,
}

impl LegSamples {
    /// Merge another node's samples into this one.
    pub fn merge(&mut self, other: &mut LegSamples) {
        self.w.append(&mut other.w);
        self.a.append(&mut other.a);
        self.r.append(&mut other.r);
        self.s.append(&mut other.s);
    }

    /// Total samples across the four legs.
    pub fn len(&self) -> usize {
        self.w.len() + self.a.len() + self.r.len() + self.s.len()
    }

    /// True when nothing has been recorded.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }
}

/// Bitmask over replica node ids (`1 << id` for ids below 64). Nodes at
/// or above 64 are silently omitted — the order oracle treats a missing
/// bit as "no evidence", which only weakens (never falsifies) a check.
fn replica_mask(ids: &[ActorId]) -> u64 {
    ids.iter().filter(|&&id| id < 64).fold(0u64, |m, &id| m | (1u64 << id))
}

/// A completed client operation, drained by the harness.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum ClientResult {
    /// A write: `commit` is `None` when the write failed to reach `W` acks
    /// before the hint timeout.
    Write {
        /// Operation id.
        op_id: u64,
        /// Key written.
        key: u64,
        /// Version installed.
        version: Version,
        /// Issue time.
        start: SimTime,
        /// Commit time (W-th ack), or None on failure.
        commit: Option<SimTime>,
        /// Replicas that had acked when the result was produced (at commit
        /// for committed writes, at the hint timeout for failed ones), as
        /// a bitmask over node ids below 64. Acks arrive *after* the
        /// replica applied the version, so a set bit certifies durability
        /// on that replica at the commit instant.
        acked: u64,
    },
    /// A read: `version` is the newest version among the first `R`
    /// responses (None when no responder had the key).
    Read {
        /// Operation id.
        op_id: u64,
        /// Key read.
        key: u64,
        /// Issue time.
        start: SimTime,
        /// Completion time (R-th response).
        finish: SimTime,
        /// Returned version.
        version: Option<Version>,
        /// The replica whose response supplied the returned version
        /// (`None` for an empty read).
        source: Option<u32>,
        /// The first `R` responders, as a bitmask over node ids below 64.
        responders: u64,
    },
}

impl ClientResult {
    /// The operation id.
    pub fn op_id(&self) -> u64 {
        match self {
            ClientResult::Write { op_id, .. } | ClientResult::Read { op_id, .. } => *op_id,
        }
    }
}

/// One asynchronous staleness-detector observation (§4.3): a read response
/// arriving after the client reply carried a newer version than was
/// returned.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct DetectorEvent {
    /// The flagged read.
    pub op_id: u64,
    /// Key involved.
    pub key: u64,
    /// What the read returned.
    pub returned: Option<Version>,
    /// The newer version observed afterwards.
    pub newer: Version,
    /// When the detector fired.
    pub at: SimTime,
}

#[derive(Debug)]
struct WriteState {
    key: u64,
    version: Version,
    replicas: Vec<ActorId>,
    acked: Vec<ActorId>,
    committed: Option<SimTime>,
    start: SimTime,
    /// The in-sim client actor awaiting the result (`None` = issued by the
    /// blocking harness, which polls `client_results` instead).
    reply_to: Option<ActorId>,
}

impl Default for WriteState {
    fn default() -> Self {
        Self {
            key: 0,
            version: Version::new(0, 0),
            replicas: Vec::new(),
            acked: Vec::new(),
            committed: None,
            start: SimTime::ZERO,
            reply_to: None,
        }
    }
}

#[derive(Debug, Default)]
struct ReadState {
    key: u64,
    replicas: Vec<ActorId>,
    responses: Vec<(ActorId, Option<Version>)>,
    /// Set once `R` responses arrived (the value returned to the client).
    returned: Option<Option<Version>>,
    /// Per replica, the freshest version a read-repair write has already
    /// been sent for during this read (a later response may reveal an even
    /// fresher version, warranting a second repair).
    repaired: Vec<(ActorId, Version)>,
    start: SimTime,
    reply_to: Option<ActorId>,
}

#[derive(Debug, Clone, Copy, PartialEq)]
struct Hint {
    target: ActorId,
    key: u64,
    version: Version,
    /// When this hint was created or last refreshed; the GC sweep expires
    /// hints whose target has stayed unreachable past the op-timeout
    /// horizon (anti-entropy takes over from there).
    since: SimTime,
}

/// The node actor.
pub struct Node {
    id: ActorId,
    opts: NodeOptions,
    net: Arc<NetworkModel>,
    ring: Arc<Ring>,
    down_map: Arc<DownTracker>,
    rng: StdRng,
    down: bool,
    gc_interval_ms: Option<f64>,
    store: FxHashMap<u64, Version>,
    pending_writes: FxHashMap<u64, WriteState>,
    pending_reads: FxHashMap<u64, ReadState>,
    /// Retired pending-op states, recycled slab-style so the per-op
    /// replica/ack/response vectors are allocated once and reused for the
    /// life of the node.
    write_pool: Vec<WriteState>,
    read_pool: Vec<ReadState>,
    hints: Vec<Hint>,
    hint_flush_scheduled: bool,
    sync_interval_ms: Option<f64>,
    /// Completed client operations awaiting harness pickup.
    pub client_results: FxHashMap<u64, ClientResult>,
    /// Accumulated staleness-detector observations.
    pub detector_log: Vec<DetectorEvent>,
    /// Per-leg one-way latency samples (WARS instrumentation, §5.5's
    /// "easily collected" measurements). Populated when
    /// [`NodeOptions::record_leg_samples`] is set.
    pub leg_samples: LegSamples,
    /// Stats: read-repair messages sent.
    pub repairs_sent: u64,
    /// Stats: hints successfully delivered.
    pub hints_delivered: u64,
    /// Stats: hints expired by the GC sweep (target unreachable past the
    /// op-timeout horizon; anti-entropy is then the only healing path).
    pub hints_expired: u64,
    /// Stats: anti-entropy rounds initiated.
    pub sync_rounds: u64,
}

impl std::fmt::Debug for Node {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Node")
            .field("id", &self.id)
            .field("down", &self.down)
            .field("keys", &self.store.len())
            .field("pending_writes", &self.pending_writes.len())
            .field("pending_reads", &self.pending_reads.len())
            .field("hints", &self.hints.len())
            .finish()
    }
}

impl Node {
    /// Build node `id` with its own deterministic RNG stream. The
    /// down-tracker is shared cluster-wide.
    pub fn new(
        id: ActorId,
        opts: NodeOptions,
        net: Arc<NetworkModel>,
        ring: Arc<Ring>,
        down_map: Arc<DownTracker>,
        seed: u64,
    ) -> Self {
        Self {
            id,
            opts,
            net,
            ring,
            down_map,
            rng: StdRng::seed_from_u64(seed ^ (id as u64).wrapping_mul(0x9e37_79b9_7f4a_7c15)),
            down: false,
            gc_interval_ms: None,
            store: FxHashMap::default(),
            pending_writes: FxHashMap::default(),
            pending_reads: FxHashMap::default(),
            write_pool: Vec::new(),
            read_pool: Vec::new(),
            hints: Vec::new(),
            hint_flush_scheduled: false,
            sync_interval_ms: None,
            client_results: FxHashMap::default(),
            detector_log: Vec::new(),
            leg_samples: LegSamples::default(),
            repairs_sent: 0,
            hints_delivered: 0,
            hints_expired: 0,
            sync_rounds: 0,
        }
    }

    /// Whether the node is currently crashed.
    pub fn is_down(&self) -> bool {
        self.down
    }

    /// The node's stored version of `key`, if any.
    pub fn stored_version(&self, key: u64) -> Option<Version> {
        self.store.get(&key).copied()
    }

    /// Number of keys stored.
    pub fn key_count(&self) -> usize {
        self.store.len()
    }

    /// Change the quorum sizes this node uses when coordinating (live
    /// reconfiguration, §6 "Variable configurations"). Operations already
    /// in flight complete under whichever threshold is in force when their
    /// responses arrive — the coordinator checks `≥`, so shrinking a
    /// quorum lets pending operations commit on their next response.
    pub fn set_quorums(&mut self, r: u32, w: u32) {
        assert!(r >= 1 && w >= 1);
        self.opts.r = r;
        self.opts.w = w;
    }

    /// Swap the placement ring (live replication-factor change). Existing
    /// stored data stays put; anti-entropy and read repair migrate it to
    /// the new replica sets over time.
    pub fn set_ring(&mut self, ring: Arc<Ring>) {
        self.ring = ring;
    }

    fn apply_version(&mut self, key: u64, version: Version) {
        if self.opts.mutations.drop_version_merge {
            // Mutation: blind last-writer-in overwrite — a stale repair or
            // hint can roll an already-applied version back.
            self.store.insert(key, version);
            return;
        }
        let entry = self.store.entry(key).or_insert(version);
        if version > *entry {
            *entry = version;
        }
    }

    /// Send with sampled per-leg latency, subject to message loss, any
    /// active network partition, and the buggify fault-schedule segment
    /// active at the sender's current time (drop/duplicate/reorder/
    /// slow-node). With no schedule — or a calm segment — this consumes
    /// exactly the same RNG draws as the pre-buggify path.
    fn send(&mut self, ctx: &mut Context<'_, Msg>, leg: Leg, to: ActorId, msg: Msg) {
        if self.opts.drop_prob > 0.0 && self.rng.gen::<f64>() < self.opts.drop_prob {
            return; // lost in transit
        }
        let now_ms = ctx.now().as_ms();
        match self.net.transmit_buggified(leg, self.id, to, now_ms, &mut self.rng) {
            Delivery::Dropped => {} // partitioned away or buggify drop
            Delivery::Once(delay) => {
                self.record_leg(leg, delay);
                ctx.send(to, delay, msg);
            }
            Delivery::Twice(first, second) => {
                // An at-least-once network delivered the message twice;
                // both copies are real deliveries with real delays.
                self.record_leg(leg, first);
                self.record_leg(leg, second);
                ctx.send(to, first, msg.clone());
                ctx.send(to, second, msg);
            }
        }
    }

    fn record_leg(&mut self, leg: Leg, delay: f64) {
        if self.opts.record_leg_samples {
            match leg {
                Leg::W => self.leg_samples.w.push(delay),
                Leg::A => self.leg_samples.a.push(delay),
                Leg::R => self.leg_samples.r.push(delay),
                Leg::S => self.leg_samples.s.push(delay),
            }
        }
    }

    /// Convert a node-local protocol interval to the global delay the
    /// simulator should wait, under the node's buggify clock skew
    /// (identity without a fault profile). Applied to *protocol* timers —
    /// hint timeout, hint flush, anti-entropy cadence — but not to the
    /// recovery and GC timers, which are harness bookkeeping rather than
    /// clock-driven node behaviour.
    fn timer_ms(&self, now_ms: f64, local_ms: f64) -> f64 {
        self.net.clock_of(self.id, now_ms).global_delay_ms(local_ms)
    }

    fn schedule_hint_flush(&mut self, ctx: &mut Context<'_, Msg>) {
        if !self.hint_flush_scheduled && !self.hints.is_empty() {
            self.hint_flush_scheduled = true;
            let delay = self.timer_ms(ctx.now().as_ms(), self.opts.hint_flush_interval_ms);
            ctx.set_timer(delay, tag(KIND_HINT_FLUSH, 0));
        }
    }

    /// Stash (or refresh) the hint for `(target, key)`: one hint per
    /// missed replica per key, carrying the newest missed version. The
    /// old behaviour pushed a fresh hint per timed-out write, so a
    /// permanently crashed replica accumulated unbounded hints that the
    /// flush rebroadcast forever.
    fn push_hint(&mut self, target: ActorId, key: u64, version: Version, now: SimTime) {
        match self.hints.iter_mut().find(|h| h.target == target && h.key == key) {
            Some(h) => {
                if version > h.version {
                    h.version = version;
                }
                h.since = now;
            }
            None => self.hints.push(Hint { target, key, version, since: now }),
        }
    }

    /// Number of pending (undelivered, unexpired) hints.
    pub fn hint_count(&self) -> usize {
        self.hints.len()
    }

    /// Route a completed operation to its issuer: in-sim client actors get
    /// an [`Msg::OpResult`] message (zero delay — clients are co-located
    /// with their coordinator); blocking-harness operations land in
    /// [`client_results`](Self::client_results).
    fn deliver(&mut self, ctx: &mut Context<'_, Msg>, reply_to: Option<ActorId>, result: ClientResult) {
        match reply_to {
            Some(client) => ctx.send(client, 0.0, Msg::OpResult { result }),
            None => {
                self.client_results.insert(result.op_id(), result);
            }
        }
    }

    // ----- coordinator: writes -----

    fn on_client_write(&mut self, ctx: &mut Context<'_, Msg>, op_id: u64, key: u64, from: ActorId) {
        // The sequence number is the write's start instant (+1 so 0 stays
        // the "absent" sentinel): version order matches write-start order
        // with no cluster-wide shared allocator, so coordinators on
        // different parallel-engine partitions assign identical versions
        // to identical schedules. Simultaneous starts at different
        // coordinators tie on `seq` and resolve by writer id.
        let seq = ctx.now().as_nanos() + 1;
        let version = Version::new(seq, self.id as u32);
        let reply_to = (from != self.id).then_some(from);
        let mut state = self.write_pool.pop().unwrap_or_default();
        state.key = key;
        state.version = version;
        state.replicas.clear();
        state.replicas.extend(self.ring.replicas(key).iter().map(|&n| n as usize));
        state.acked.clear();
        state.committed = None;
        state.start = ctx.now();
        state.reply_to = reply_to;
        debug_assert!(state.replicas.len() >= self.opts.w as usize);
        for &replica in &state.replicas {
            self.send(
                ctx,
                Leg::W,
                replica,
                Msg::ReplicaWrite { op_id, key, version, coordinator: self.id },
            );
        }
        self.pending_writes.insert(op_id, state);
        if self.opts.hinted_handoff {
            let delay = self.timer_ms(ctx.now().as_ms(), self.opts.hint_timeout_ms);
            ctx.set_timer(delay, tag(KIND_WRITE_TIMEOUT, op_id));
        }
    }

    fn on_write_ack(&mut self, ctx: &mut Context<'_, Msg>, op_id: u64, replica: ActorId) {
        let Some(state) = self.pending_writes.get_mut(&op_id) else {
            return; // late ack after hint timeout cleanup
        };
        if state.acked.contains(&replica) {
            return; // duplicate (e.g. hint + original both landed)
        }
        state.acked.push(replica);
        let mut completed: Option<(Option<ActorId>, ClientResult)> = None;
        if state.committed.is_none() && state.acked.len() >= self.opts.w as usize {
            state.committed = Some(ctx.now());
            completed = Some((
                state.reply_to,
                ClientResult::Write {
                    op_id,
                    key: state.key,
                    version: state.version,
                    start: state.start,
                    commit: Some(ctx.now()),
                    acked: replica_mask(&state.acked),
                },
            ));
        }
        if state.acked.len() == state.replicas.len() {
            if let Some(state) = self.pending_writes.remove(&op_id) {
                self.write_pool.push(state); // fully replicated; recycle
            }
        }
        if let Some((reply_to, result)) = completed {
            self.deliver(ctx, reply_to, result);
        }
    }

    fn on_write_timeout(&mut self, ctx: &mut Context<'_, Msg>, op_id: u64) {
        let Some(state) = self.pending_writes.remove(&op_id) else {
            return; // completed before the timeout
        };
        if state.committed.is_none() {
            // The write failed to reach its quorum in time.
            self.deliver(
                ctx,
                state.reply_to,
                ClientResult::Write {
                    op_id,
                    key: state.key,
                    version: state.version,
                    start: state.start,
                    commit: None,
                    acked: replica_mask(&state.acked),
                },
            );
        }
        // Hint every replica that never acked (coalesced per target/key).
        let now = ctx.now();
        for &replica in &state.replicas {
            if !state.acked.contains(&replica) {
                self.push_hint(replica, state.key, state.version, now);
            }
        }
        self.write_pool.push(state);
        self.schedule_hint_flush(ctx);
    }

    fn on_hint_flush(&mut self, ctx: &mut Context<'_, Msg>) {
        self.hint_flush_scheduled = false;
        if self.opts.mutations.swallow_hints {
            // Mutation: hints are stashed but never redelivered.
            self.schedule_hint_flush(ctx);
            return;
        }
        let hints = self.hints.clone();
        for h in hints {
            self.send(
                ctx,
                Leg::W,
                h.target,
                Msg::HintedWrite { key: h.key, version: h.version, coordinator: self.id },
            );
        }
        self.schedule_hint_flush(ctx);
    }

    // ----- coordinator: reads -----

    fn on_client_read(&mut self, ctx: &mut Context<'_, Msg>, op_id: u64, key: u64, from: ActorId) {
        let reply_to = (from != self.id).then_some(from);
        let mut state = self.read_pool.pop().unwrap_or_default();
        state.key = key;
        state.replicas.clear();
        state.replicas.extend(self.ring.replicas(key).iter().map(|&n| n as usize));
        state.responses.clear();
        state.returned = None;
        state.repaired.clear();
        state.start = ctx.now();
        state.reply_to = reply_to;
        debug_assert!(state.replicas.len() >= self.opts.r as usize);
        for &replica in &state.replicas {
            self.send(ctx, Leg::R, replica, Msg::ReplicaRead { op_id, key, coordinator: self.id });
        }
        self.pending_reads.insert(op_id, state);
    }

    fn on_read_resp(
        &mut self,
        ctx: &mut Context<'_, Msg>,
        op_id: u64,
        replica: ActorId,
        version: Option<Version>,
    ) {
        let now = ctx.now();
        let Some(state) = self.pending_reads.get_mut(&op_id) else {
            return;
        };
        state.responses.push((replica, version));
        let mut completed: Option<(Option<ActorId>, ClientResult)> = None;
        if state.returned.is_none() && state.responses.len() >= self.opts.r as usize {
            // Return the newest of the first R responses (None < Some).
            let best = state.responses.iter().map(|(_, v)| *v).max().flatten();
            state.returned = Some(best);
            // Provenance for the order oracle: which replica supplied the
            // returned version (first responder holding it, in arrival
            // order), and the full first-R responder set.
            let source = best.and_then(|b| {
                state
                    .responses
                    .iter()
                    .find(|(_, v)| *v == Some(b))
                    .map(|(replica, _)| *replica as u32)
            });
            let responders = state
                .responses
                .iter()
                .filter(|(r, _)| *r < 64)
                .fold(0u64, |m, (r, _)| m | (1u64 << *r));
            completed = Some((
                state.reply_to,
                ClientResult::Read {
                    op_id,
                    key: state.key,
                    start: state.start,
                    finish: now,
                    version: best,
                    source,
                    responders,
                },
            ));
        } else if let Some(returned) = state.returned {
            // A late (N − R) response: the asynchronous staleness detector
            // (§4.3) compares it against what the client saw.
            if version > returned {
                self.detector_log.push(DetectorEvent {
                    op_id,
                    key: state.key,
                    returned,
                    newer: version.expect("version > returned implies Some"),
                    at: now,
                });
            }
        }
        // Repair eagerly: as soon as the quorum has answered, any responder
        // observed behind the freshest version seen so far gets an
        // asynchronous repair write. Waiting for all N responses (as a
        // digest-comparison implementation might) starves repair entirely
        // under message loss — a dropped `S` leg would gate every repair on
        // this key forever.
        let mut repairs: Option<(u64, Version, Vec<ActorId>)> = None;
        if self.opts.read_repair
            && !self.opts.mutations.skip_read_repair
            && state.responses.len() >= self.opts.r as usize
        {
            if let Some(freshest) = state.responses.iter().map(|(_, v)| *v).max().flatten() {
                let repaired = &state.repaired;
                let stale: Vec<ActorId> = state
                    .responses
                    .iter()
                    .filter(|(replica, v)| {
                        v.is_none_or(|v| v < freshest)
                            && !repaired.iter().any(|(r, to)| r == replica && *to >= freshest)
                    })
                    .map(|(replica, _)| *replica)
                    .collect();
                for &replica in &stale {
                    // Record (or upgrade) the version this replica was
                    // repaired to, so only a yet-fresher discovery repeats.
                    match state.repaired.iter_mut().find(|(r, _)| *r == replica) {
                        Some(entry) => entry.1 = freshest,
                        None => state.repaired.push((replica, freshest)),
                    }
                }
                repairs = Some((state.key, freshest, stale));
            }
        }
        if state.responses.len() == state.replicas.len() {
            if let Some(state) = self.pending_reads.remove(&op_id) {
                self.read_pool.push(state); // fully answered; recycle
            }
        }
        if let Some((reply_to, result)) = completed {
            self.deliver(ctx, reply_to, result);
        }
        if let Some((key, freshest, stale)) = repairs {
            // Mutation: repair with a fabricated version no client ever
            // wrote — ~70k seconds ahead of any real write-start seq.
            let version = if self.opts.mutations.corrupt_read_repair {
                Version::new(freshest.seq + (1 << 46), freshest.writer)
            } else {
                freshest
            };
            for replica in stale {
                self.repairs_sent += 1;
                self.send(ctx, Leg::W, replica, Msg::RepairWrite { key, version });
            }
        }
    }

    // ----- pending-op garbage collection -----

    /// Periodic sweep: drop pending-op state older than the retention
    /// horizon. Issuers detect their own timeouts (the blocking harness by
    /// deadline, client actors by their per-op timer), so a swept entry
    /// has already been reported; sweeping merely bounds coordinator
    /// memory by *in-flight* operations under message loss or partitions,
    /// where the N-th ack/response may never arrive.
    fn on_gc(&mut self, ctx: &mut Context<'_, Msg>) {
        let Some(interval) = self.gc_interval_ms else {
            return;
        };
        ctx.set_timer(interval, tag(KIND_GC, 0));
        let horizon = SimDuration::from_ms(interval);
        let now = ctx.now();
        let cutoff = if now.as_nanos() > horizon.as_nanos() {
            SimTime::from_ms(now.as_ms() - interval)
        } else {
            return; // nothing can be old enough yet
        };
        self.pending_writes.retain(|_, s| s.start > cutoff);
        self.pending_reads.retain(|_, s| s.start > cutoff);
        // Hints share the retention horizon: if the target has stayed
        // unreachable past the op timeout, stop rebroadcasting and let
        // anti-entropy heal the replica instead. Without this sweep a
        // permanently crashed replica pinned its hints (and their flush
        // traffic) forever.
        let before = self.hints.len();
        self.hints.retain(|h| h.since > cutoff);
        self.hints_expired += (before - self.hints.len()) as u64;
    }

    // ----- anti-entropy -----

    fn my_digest_for(&self, peer: ActorId) -> Vec<u64> {
        merkle::digest(
            self.store
                .iter()
                .filter(|(k, _)| self.ring.is_replica(**k, peer as u32))
                .map(|(k, v)| (*k, *v)),
        )
    }

    fn entries_in_buckets(&self, peer: ActorId, buckets: &[u32]) -> Vec<(u64, Version)> {
        self.store
            .iter()
            .filter(|(k, _)| {
                self.ring.is_replica(**k, peer as u32)
                    && buckets.contains(&merkle::bucket_of(**k))
            })
            .map(|(k, v)| (*k, *v))
            .collect()
    }

    fn on_sync_timer(&mut self, ctx: &mut Context<'_, Msg>) {
        if let Some(interval) = self.sync_interval_ms {
            ctx.set_timer(self.timer_ms(ctx.now().as_ms(), interval), tag(KIND_SYNC, 0));
            let n = self.ring.nodes() as usize;
            if n > 1 {
                let mut peer = self.rng.gen_range(0..n - 1);
                if peer >= self.id {
                    peer += 1;
                }
                self.sync_rounds += 1;
                let buckets = self.my_digest_for(peer);
                self.send(ctx, Leg::A, peer, Msg::SyncDigest { from: self.id, buckets });
            }
        }
    }

    fn on_sync_digest(&mut self, ctx: &mut Context<'_, Msg>, from: ActorId, theirs: Vec<u64>) {
        let mine = self.my_digest_for(from);
        let differing = merkle::differing_buckets(&mine, &theirs);
        if !differing.is_empty() {
            let entries = self.entries_in_buckets(from, &differing);
            self.send(ctx, Leg::A, from, Msg::SyncDiff { from: self.id, entries, differing });
        }
    }

    fn on_sync_diff(
        &mut self,
        ctx: &mut Context<'_, Msg>,
        from: ActorId,
        entries: Vec<(u64, Version)>,
        differing: Vec<u32>,
    ) {
        for (key, version) in entries {
            if self.ring.is_replica(key, self.id as u32) {
                self.apply_version(key, version);
            }
        }
        let reply = self.entries_in_buckets(from, &differing);
        if !reply.is_empty() {
            self.send(ctx, Leg::A, from, Msg::SyncDiffReply { entries: reply });
        }
    }

    // ----- failure handling -----

    fn on_crash(&mut self, ctx: &mut Context<'_, Msg>, down_ms: f64, wipe: bool) {
        self.down = true;
        self.down_map.set_down(self.id, true);
        if wipe {
            self.store.clear();
        }
        // In-flight coordinated operations die with the coordinator.
        self.pending_writes.clear();
        self.pending_reads.clear();
        ctx.set_timer(down_ms, tag(KIND_RECOVER, 0));
    }

    fn on_recover(&mut self, ctx: &mut Context<'_, Msg>) {
        self.down = false;
        self.down_map.set_down(self.id, false);
        if self.sync_interval_ms.is_some() {
            ctx.set_timer(0.0, tag(KIND_SYNC, 0));
        }
        self.hint_flush_scheduled = false;
        self.schedule_hint_flush(ctx);
    }
}

impl Actor for Node {
    type Msg = Msg;

    fn on_event(&mut self, ctx: &mut Context<'_, Msg>, event: Event<Msg>) {
        // A crashed node processes nothing except its own recovery timer
        // and the GC sweep (pure bookkeeping, kept alive through crashes).
        if self.down {
            if let Event::Timer { tag: t } = event {
                match tag_kind(t) {
                    KIND_RECOVER => self.on_recover(ctx),
                    KIND_GC => self.on_gc(ctx),
                    _ => {}
                }
            }
            return;
        }
        match event {
            Event::Message { from, msg } => match msg {
                Msg::ClientWrite { op_id, key } => {
                    self.on_client_write(ctx, op_id, key, from);
                }
                Msg::ClientRead { op_id, key } => {
                    self.on_client_read(ctx, op_id, key, from);
                }
                Msg::ReplicaWrite { op_id, key, version, coordinator } => {
                    let lag = self.net.disk_lag_ms(self.id, ctx.now().as_ms(), &mut self.rng);
                    if lag > 0.0 {
                        // Buggify disk lag: defer the apply *and* the ack.
                        // If this node crashes before the lag elapses, the
                        // write is lost — like an fsync that never landed.
                        ctx.send(self.id, lag, Msg::DiskApply { op_id, key, version, coordinator });
                    } else {
                        self.apply_version(key, version);
                        self.send(
                            ctx,
                            Leg::A,
                            coordinator,
                            Msg::WriteAck { op_id, replica: self.id },
                        );
                    }
                }
                Msg::DiskApply { op_id, key, version, coordinator } => {
                    self.apply_version(key, version);
                    self.send(ctx, Leg::A, coordinator, Msg::WriteAck { op_id, replica: self.id });
                }
                Msg::ReplicaRead { op_id, key, coordinator } => {
                    let version = self.store.get(&key).copied();
                    self.send(
                        ctx,
                        Leg::S,
                        coordinator,
                        Msg::ReadResp { op_id, replica: self.id, version },
                    );
                }
                Msg::WriteAck { op_id, replica } => self.on_write_ack(ctx, op_id, replica),
                Msg::ReadResp { op_id, replica, version } => {
                    self.on_read_resp(ctx, op_id, replica, version);
                }
                Msg::RepairWrite { key, version } => self.apply_version(key, version),
                Msg::HintedWrite { key, version, coordinator } => {
                    self.apply_version(key, version);
                    self.send(
                        ctx,
                        Leg::A,
                        coordinator,
                        Msg::HintAck { key, version, replica: self.id },
                    );
                }
                Msg::HintAck { key, version, replica } => {
                    // An ack for version v clears any hint at v *or older*
                    // for that target/key: replicas keep the max, so an
                    // acked delivery subsumes every older missed version.
                    let before = self.hints.len();
                    self.hints.retain(|h| {
                        !(h.target == replica && h.key == key && h.version <= version)
                    });
                    self.hints_delivered += (before - self.hints.len()) as u64;
                }
                Msg::SyncDigest { from, buckets } => self.on_sync_digest(ctx, from, buckets),
                Msg::SyncDiff { from, entries, differing } => {
                    self.on_sync_diff(ctx, from, entries, differing);
                }
                Msg::SyncDiffReply { entries } => {
                    for (key, version) in entries {
                        if self.ring.is_replica(key, self.id as u32) {
                            self.apply_version(key, version);
                        }
                    }
                }
                Msg::Crash { down_ms, wipe } => self.on_crash(ctx, down_ms, wipe),
                Msg::StartSync { interval_ms } => {
                    self.sync_interval_ms = Some(interval_ms);
                    // Stagger the first round by the node id to avoid
                    // thundering herds.
                    let stagger = interval_ms * (self.id as f64 + 1.0)
                        / (self.ring.nodes() as f64 + 1.0);
                    ctx.set_timer(self.timer_ms(ctx.now().as_ms(), stagger), tag(KIND_SYNC, 0));
                }
                Msg::StartGc { interval_ms } => {
                    self.gc_interval_ms = Some(interval_ms);
                    ctx.set_timer(interval_ms, tag(KIND_GC, 0));
                }
                Msg::OpResult { result } => {
                    unreachable!("nodes never receive op results: {result:?}")
                }
                Msg::StartClient | Msg::StopClient => {
                    unreachable!("client lifecycle messages target client actors")
                }
            },
            Event::Timer { tag: t } => match tag_kind(t) {
                KIND_RECOVER => self.on_recover(ctx),
                KIND_SYNC => self.on_sync_timer(ctx),
                KIND_HINT_FLUSH => self.on_hint_flush(ctx),
                KIND_WRITE_TIMEOUT => self.on_write_timeout(ctx, tag_op(t)),
                KIND_GC => self.on_gc(ctx),
                other => unreachable!("unknown timer kind {other}"),
            },
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn timer_tags_round_trip() {
        let t = tag(KIND_WRITE_TIMEOUT, 123_456);
        assert_eq!(tag_kind(t), KIND_WRITE_TIMEOUT);
        assert_eq!(tag_op(t), 123_456);
        assert_eq!(tag_kind(tag(KIND_SYNC, 0)), KIND_SYNC);
    }

    #[test]
    fn apply_version_keeps_max() {
        let net = Arc::new(NetworkModel::w_ars(
            Arc::new(pbs_dist::Constant::new(1.0)),
            Arc::new(pbs_dist::Constant::new(1.0)),
        ));
        let ring = Arc::new(Ring::new(3, 8, 3));
        let mut node = Node::new(
            0,
            NodeOptions::default(),
            net,
            ring,
            Arc::new(DownTracker::new(3)),
            7,
        );
        node.apply_version(5, Version::new(2, 0));
        node.apply_version(5, Version::new(1, 0));
        assert_eq!(node.stored_version(5), Some(Version::new(2, 0)));
        node.apply_version(5, Version::new(3, 1));
        assert_eq!(node.stored_version(5), Some(Version::new(3, 1)));
        assert_eq!(node.key_count(), 1);
    }
}
