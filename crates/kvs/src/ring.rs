//! Consistent-hashing ring with virtual nodes (§2.2: "Dynamo-style quorum
//! systems employ one quorum system per key, typically maintaining the
//! mapping of keys to quorum systems using a consistent-hashing scheme").

/// FNV-1a 64-bit hash — small, deterministic, dependency-free. Quality is
/// ample for ring placement (keys are already opaque identifiers).
pub fn fnv1a64(bytes: &[u8]) -> u64 {
    const OFFSET: u64 = 0xcbf2_9ce4_8422_2325;
    const PRIME: u64 = 0x0000_0100_0000_01b3;
    let mut h = OFFSET;
    for &b in bytes {
        h ^= b as u64;
        h = h.wrapping_mul(PRIME);
    }
    h
}

/// A consistent-hashing ring mapping keys to ordered replica lists
/// ("preference lists" in Dynamo terms).
///
/// Preference lists are **precomputed per ring segment** at construction:
/// a key's list depends only on which inter-vnode segment its hash lands
/// in, so [`replicas`](Self::replicas) is a binary search plus a slice
/// borrow — no allocation and no clockwise walk on the per-operation
/// path.
#[derive(Debug, Clone)]
pub struct Ring {
    /// `(position, node)` pairs sorted by position.
    positions: Vec<(u64, u32)>,
    /// Flattened preference lists, `replication` entries per vnode
    /// position: `pref[i * replication ..][.. replication]` is the
    /// ordered replica list for keys landing on segment `i`.
    pref: Vec<u32>,
    nodes: u32,
    replication: u32,
}

impl Ring {
    /// Build a ring over `nodes` physical nodes, each owning `vnodes`
    /// virtual positions, with `replication ≤ nodes` replicas per key.
    pub fn new(nodes: u32, vnodes: u32, replication: u32) -> Self {
        assert!(nodes >= 1, "need at least one node");
        assert!(vnodes >= 1, "need at least one virtual node");
        assert!(
            (1..=nodes).contains(&replication),
            "replication factor {replication} must be in 1..={nodes}"
        );
        let mut positions = Vec::with_capacity((nodes * vnodes) as usize);
        for node in 0..nodes {
            for v in 0..vnodes {
                let mut buf = [0u8; 12];
                buf[..4].copy_from_slice(&node.to_le_bytes());
                buf[4..8].copy_from_slice(&v.to_le_bytes());
                buf[8..].copy_from_slice(b"ring");
                positions.push((fnv1a64(&buf), node));
            }
        }
        positions.sort_unstable();
        // Precompute the preference list of every segment: the first
        // `replication` distinct physical nodes clockwise from each vnode.
        let mut pref = Vec::with_capacity(positions.len() * replication as usize);
        for start in 0..positions.len() {
            let base = pref.len();
            for i in 0..positions.len() {
                let (_, node) = positions[(start + i) % positions.len()];
                if !pref[base..].contains(&node) {
                    pref.push(node);
                    if pref.len() - base == replication as usize {
                        break;
                    }
                }
            }
            debug_assert_eq!(pref.len() - base, replication as usize);
        }
        Self { positions, pref, nodes, replication }
    }

    /// Number of physical nodes.
    pub fn nodes(&self) -> u32 {
        self.nodes
    }

    /// Replication factor `N`.
    pub fn replication(&self) -> u32 {
        self.replication
    }

    /// The ordered preference list for `key`: the first `N` *distinct*
    /// physical nodes clockwise from the key's position. Borrowed from the
    /// precomputed per-segment table — allocation-free.
    pub fn replicas(&self, key: u64) -> &[u32] {
        let pos = fnv1a64(&key.to_le_bytes());
        let start = self.positions.partition_point(|&(p, _)| p < pos) % self.positions.len();
        &self.pref[start * self.replication as usize..][..self.replication as usize]
    }

    /// Whether `node` replicates `key`.
    pub fn is_replica(&self, key: u64, node: u32) -> bool {
        self.replicas(key).contains(&node)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn replicas_are_distinct_and_sized_n() {
        let ring = Ring::new(10, 16, 3);
        for key in 0..500u64 {
            let reps = ring.replicas(key);
            assert_eq!(reps.len(), 3);
            let mut sorted = reps.to_vec();
            sorted.sort_unstable();
            sorted.dedup();
            assert_eq!(sorted.len(), 3, "distinct physical nodes");
            assert!(reps.iter().all(|&n| n < 10));
        }
    }

    #[test]
    fn deterministic_across_constructions() {
        let a = Ring::new(8, 32, 3);
        let b = Ring::new(8, 32, 3);
        for key in 0..100u64 {
            assert_eq!(a.replicas(key), b.replicas(key));
        }
    }

    #[test]
    fn full_replication_covers_all_nodes() {
        let ring = Ring::new(4, 8, 4);
        for key in 0..50u64 {
            let mut reps = ring.replicas(key).to_vec();
            reps.sort_unstable();
            assert_eq!(reps, vec![0, 1, 2, 3]);
        }
    }

    #[test]
    fn placement_is_reasonably_balanced() {
        let ring = Ring::new(5, 64, 1);
        let mut counts = [0usize; 5];
        for key in 0..20_000u64 {
            counts[ring.replicas(key)[0] as usize] += 1;
        }
        for (node, &c) in counts.iter().enumerate() {
            let share = c as f64 / 20_000.0;
            assert!(
                (share - 0.2).abs() < 0.08,
                "node {node} owns {share:.3} of keys (expect ~0.2)"
            );
        }
    }

    #[test]
    fn is_replica_consistent_with_replicas() {
        let ring = Ring::new(6, 16, 2);
        for key in 0..100u64 {
            let reps = ring.replicas(key);
            for n in 0..6 {
                assert_eq!(ring.is_replica(key, n), reps.contains(&n));
            }
        }
    }

    #[test]
    fn fnv_known_vectors() {
        // FNV-1a 64 reference values.
        assert_eq!(fnv1a64(b""), 0xcbf2_9ce4_8422_2325);
        assert_eq!(fnv1a64(b"a"), 0xaf63_dc4c_8601_ec8c);
        assert_eq!(fnv1a64(b"foobar"), 0x85944171f73967e8);
    }

    #[test]
    #[should_panic(expected = "replication factor")]
    fn oversized_replication_panics() {
        let _ = Ring::new(3, 8, 4);
    }
}
