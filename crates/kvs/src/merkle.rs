//! Bucketed digests for Merkle-style anti-entropy (§4.2).
//!
//! Dynamo summarises key ranges with Merkle trees so replicas exchange only
//! what differs. We implement the two-level variant Cassandra-style tools
//! use in practice: keys hash into `B` buckets, each bucket's digest is the
//! XOR of its entries' hashes (order-independent and incrementally
//! updatable), and replicas exchange full entries only for buckets whose
//! digests differ.

use crate::ring::fnv1a64;
use crate::version::Version;

/// Number of digest buckets. Power of two so the bucket index is a mask.
pub const BUCKETS: usize = 64;

/// Bucket index for a key.
pub fn bucket_of(key: u64) -> u32 {
    (fnv1a64(&key.to_le_bytes()) as usize & (BUCKETS - 1)) as u32
}

/// Hash of one `(key, version)` entry.
fn entry_hash(key: u64, version: Version) -> u64 {
    let mut buf = [0u8; 20];
    buf[..8].copy_from_slice(&key.to_le_bytes());
    buf[8..16].copy_from_slice(&version.seq.to_le_bytes());
    buf[16..].copy_from_slice(&version.writer.to_le_bytes());
    fnv1a64(&buf)
}

/// Compute the bucketed digest of an iterator of `(key, version)` pairs.
pub fn digest<I: IntoIterator<Item = (u64, Version)>>(entries: I) -> Vec<u64> {
    let mut buckets = vec![0u64; BUCKETS];
    for (key, version) in entries {
        buckets[bucket_of(key) as usize] ^= entry_hash(key, version);
    }
    buckets
}

/// Bucket ids whose digests differ between two digest vectors.
pub fn differing_buckets(a: &[u64], b: &[u64]) -> Vec<u32> {
    assert_eq!(a.len(), b.len(), "digests must use the same bucket count");
    a.iter()
        .zip(b)
        .enumerate()
        .filter(|(_, (x, y))| x != y)
        .map(|(i, _)| i as u32)
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    fn v(seq: u64) -> Version {
        Version::new(seq, 0)
    }

    #[test]
    fn identical_stores_have_identical_digests() {
        let entries = vec![(1u64, v(3)), (2, v(1)), (99, v(7))];
        let a = digest(entries.clone());
        let b = digest(entries.into_iter().rev().collect::<Vec<_>>());
        assert_eq!(a, b, "order-independent");
        assert!(differing_buckets(&a, &b).is_empty());
    }

    #[test]
    fn single_divergence_localised_to_one_bucket() {
        let base = vec![(1u64, v(3)), (2, v(1)), (99, v(7))];
        let mut changed = base.clone();
        changed[1].1 = v(2); // bump key 2's version
        let a = digest(base);
        let b = digest(changed);
        let diff = differing_buckets(&a, &b);
        assert_eq!(diff, vec![bucket_of(2)]);
    }

    #[test]
    fn missing_key_detected() {
        let full = vec![(10u64, v(1)), (20, v(2))];
        let partial = vec![(10u64, v(1))];
        let diff = differing_buckets(&digest(full), &digest(partial));
        assert_eq!(diff, vec![bucket_of(20)]);
    }

    #[test]
    fn bucket_of_in_range() {
        for key in 0..10_000u64 {
            assert!((bucket_of(key) as usize) < BUCKETS);
        }
    }

    #[test]
    fn digest_spreads_across_buckets() {
        let entries: Vec<(u64, Version)> = (0..1000u64).map(|k| (k, v(1))).collect();
        let d = digest(entries);
        let nonzero = d.iter().filter(|&&x| x != 0).count();
        assert!(nonzero > BUCKETS / 2, "only {nonzero} buckets used");
    }
}
