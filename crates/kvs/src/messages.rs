//! The message vocabulary of the Dynamo-style protocol.

use crate::node::ClientResult;
use crate::version::Version;
use pbs_sim::ActorId;

/// Everything that travels between actors in the simulated cluster.
#[derive(Debug, Clone, PartialEq)]
pub enum Msg {
    // ----- client → coordinator -----
    // Issued either by an in-sim client actor (open loop) or injected by
    // the blocking harness. The coordinator computes the preference list
    // from its ring and assigns the write's sequence number when the
    // operation actually starts.
    /// Begin a quorum write of `key`.
    ClientWrite {
        /// Globally unique operation id (allocated by the issuer).
        op_id: u64,
        /// Target key.
        key: u64,
    },
    /// Begin a quorum read of `key`.
    ClientRead {
        /// Globally unique operation id.
        op_id: u64,
        /// Target key.
        key: u64,
    },

    // ----- coordinator → client actor -----
    /// A completed operation, routed back to the in-sim client actor that
    /// issued it (operations injected by the blocking harness instead land
    /// in the coordinator's `client_results`).
    OpResult {
        /// The completed operation.
        result: ClientResult,
    },

    // ----- coordinator → replica -----
    /// Replica-level write.
    ReplicaWrite {
        /// Operation id.
        op_id: u64,
        /// Target key.
        key: u64,
        /// Version being installed.
        version: Version,
        /// Where to send the ack.
        coordinator: ActorId,
    },
    // ----- replica → itself (fault injection) -----
    /// A [`Msg::ReplicaWrite`] apply deferred by buggify disk lag: the
    /// replica re-delivers the write to itself after the lag and only then
    /// applies it and acks the coordinator. Lost if the replica crashes
    /// before the lag elapses — exactly like an fsync that never happened.
    DiskApply {
        /// Operation id.
        op_id: u64,
        /// Target key.
        key: u64,
        /// Version being installed.
        version: Version,
        /// Where to send the ack.
        coordinator: ActorId,
    },
    /// Replica-level read.
    ReplicaRead {
        /// Operation id.
        op_id: u64,
        /// Target key.
        key: u64,
        /// Where to send the response.
        coordinator: ActorId,
    },

    // ----- replica → coordinator -----
    /// Acknowledgment of a [`Msg::ReplicaWrite`].
    WriteAck {
        /// Operation id.
        op_id: u64,
        /// Acknowledging replica.
        replica: ActorId,
    },
    /// Response to a [`Msg::ReplicaRead`].
    ReadResp {
        /// Operation id.
        op_id: u64,
        /// Responding replica.
        replica: ActorId,
        /// The replica's stored version (None if it has never seen the key).
        version: Option<Version>,
    },

    // ----- anti-entropy -----
    /// Asynchronous repair write (read repair §4.2, hinted handoff §6); not
    /// acknowledged toward any quorum.
    RepairWrite {
        /// Target key.
        key: u64,
        /// Version to merge (replicas keep the max).
        version: Version,
    },
    /// Hinted write delivered after a failure; acknowledged so the hint can
    /// be discarded.
    HintedWrite {
        /// Target key.
        key: u64,
        /// Version to merge.
        version: Version,
        /// Where to send the [`Msg::HintAck`].
        coordinator: ActorId,
    },
    /// Acknowledgment of a [`Msg::HintedWrite`].
    HintAck {
        /// Target key.
        key: u64,
        /// Version that was delivered.
        version: Version,
        /// Acknowledging replica.
        replica: ActorId,
    },
    /// Merkle-style digest of the sender's keys (bucketed hashes).
    SyncDigest {
        /// Requesting node (receives the diff).
        from: ActorId,
        /// Per-bucket XOR hashes of the sender's (key, version) pairs.
        buckets: Vec<u64>,
    },
    /// Entries for buckets that differed, flowing responder → requester.
    SyncDiff {
        /// Responding node (receives the reverse diff).
        from: ActorId,
        /// The responder's `(key, version)` pairs in differing buckets.
        entries: Vec<(u64, Version)>,
        /// Ids of the differing buckets (so the requester can push back its
        /// own entries for those buckets).
        differing: Vec<u32>,
    },
    /// Reverse direction of a sync: the original requester's entries for the
    /// differing buckets.
    SyncDiffReply {
        /// `(key, version)` pairs to merge.
        entries: Vec<(u64, Version)>,
    },

    // ----- control (failure injection & lifecycle) -----
    /// Crash the receiving node for the given duration.
    Crash {
        /// Downtime in milliseconds.
        down_ms: f64,
        /// Whether the node loses its store contents (cold restart).
        wipe: bool,
    },
    /// Start the periodic anti-entropy timer on the receiving node.
    StartSync {
        /// Sync period in milliseconds.
        interval_ms: f64,
    },
    /// Start the periodic pending-op sweep on the receiving node: entries
    /// older than `interval_ms` (the op timeout) are garbage-collected so
    /// coordinator memory stays bounded by in-flight operations.
    StartGc {
        /// Sweep period = retention horizon in milliseconds.
        interval_ms: f64,
    },
    /// Begin generating load (client actors only): schedules the actor's
    /// first arrival.
    StartClient,
    /// Stop generating load (client actors only): no further arrivals are
    /// issued; operations already in flight complete or time out normally.
    StopClient,
}
