//! The message vocabulary of the Dynamo-style protocol.

use crate::version::Version;
use pbs_sim::ActorId;

/// Everything that travels between actors in the simulated cluster.
#[derive(Debug, Clone, PartialEq)]
pub enum Msg {
    // ----- client → coordinator (injected by the harness) -----
    /// Begin a quorum write of `key` with the pre-assigned version.
    ClientWrite {
        /// Harness-assigned operation id.
        op_id: u64,
        /// Target key.
        key: u64,
        /// The version to install (dense per-key sequence).
        version: Version,
        /// The key's preference list (computed from the ring by the
        /// harness, as the coordinator would).
        replicas: Vec<ActorId>,
    },
    /// Begin a quorum read of `key`.
    ClientRead {
        /// Harness-assigned operation id.
        op_id: u64,
        /// Target key.
        key: u64,
        /// The key's preference list.
        replicas: Vec<ActorId>,
    },

    // ----- coordinator → replica -----
    /// Replica-level write.
    ReplicaWrite {
        /// Operation id.
        op_id: u64,
        /// Target key.
        key: u64,
        /// Version being installed.
        version: Version,
        /// Where to send the ack.
        coordinator: ActorId,
    },
    /// Replica-level read.
    ReplicaRead {
        /// Operation id.
        op_id: u64,
        /// Target key.
        key: u64,
        /// Where to send the response.
        coordinator: ActorId,
    },

    // ----- replica → coordinator -----
    /// Acknowledgment of a [`Msg::ReplicaWrite`].
    WriteAck {
        /// Operation id.
        op_id: u64,
        /// Acknowledging replica.
        replica: ActorId,
    },
    /// Response to a [`Msg::ReplicaRead`].
    ReadResp {
        /// Operation id.
        op_id: u64,
        /// Responding replica.
        replica: ActorId,
        /// The replica's stored version (None if it has never seen the key).
        version: Option<Version>,
    },

    // ----- anti-entropy -----
    /// Asynchronous repair write (read repair §4.2, hinted handoff §6); not
    /// acknowledged toward any quorum.
    RepairWrite {
        /// Target key.
        key: u64,
        /// Version to merge (replicas keep the max).
        version: Version,
    },
    /// Hinted write delivered after a failure; acknowledged so the hint can
    /// be discarded.
    HintedWrite {
        /// Target key.
        key: u64,
        /// Version to merge.
        version: Version,
        /// Where to send the [`Msg::HintAck`].
        coordinator: ActorId,
    },
    /// Acknowledgment of a [`Msg::HintedWrite`].
    HintAck {
        /// Target key.
        key: u64,
        /// Version that was delivered.
        version: Version,
        /// Acknowledging replica.
        replica: ActorId,
    },
    /// Merkle-style digest of the sender's keys (bucketed hashes).
    SyncDigest {
        /// Requesting node (receives the diff).
        from: ActorId,
        /// Per-bucket XOR hashes of the sender's (key, version) pairs.
        buckets: Vec<u64>,
    },
    /// Entries for buckets that differed, flowing responder → requester.
    SyncDiff {
        /// Responding node (receives the reverse diff).
        from: ActorId,
        /// The responder's `(key, version)` pairs in differing buckets.
        entries: Vec<(u64, Version)>,
        /// Ids of the differing buckets (so the requester can push back its
        /// own entries for those buckets).
        differing: Vec<u32>,
    },
    /// Reverse direction of a sync: the original requester's entries for the
    /// differing buckets.
    SyncDiffReply {
        /// `(key, version)` pairs to merge.
        entries: Vec<(u64, Version)>,
    },

    // ----- control (failure injection & lifecycle) -----
    /// Crash the receiving node for the given duration.
    Crash {
        /// Downtime in milliseconds.
        down_ms: f64,
        /// Whether the node loses its store contents (cold restart).
        wipe: bool,
    },
    /// Start the periodic anti-entropy timer on the receiving node.
    StartSync {
        /// Sync period in milliseconds.
        interval_ms: f64,
    },
}
