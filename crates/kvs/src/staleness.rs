//! Ground-truth staleness labelling — batch and online.
//!
//! The simulator records every commit `(key, seq, commit time)`; a read that
//! started at `t` and returned `seq_r` is **consistent** (Definition 3) iff
//! `seq_r ≥ max{seq committed at or before t}`. Returning a newer,
//! not-yet-committed (in-flight) version also counts as consistent, matching
//! §3.1's k-regular semantics — such versions always have larger `seq`.
//!
//! Two ingestion paths feed the same history:
//!
//! * **Batch** — [`GroundTruth::record_commit`] requires nondecreasing
//!   commit times per key (the blocking harness serialises operations, so
//!   this holds trivially).
//! * **Online** — the open-loop engine completes thousands of overlapping
//!   writes whose results drain window by window, out of per-key time
//!   order. [`GroundTruth::ingest_commit`] buffers them, and
//!   [`GroundTruth::advance_watermark`] folds everything at or before the
//!   watermark into the history once the caller can guarantee no earlier
//!   commit is still outstanding (in the simulator: after `run_until(t)`,
//!   every commit ≤ `t` has been drained). Reads with `start ≤ watermark`
//!   then label identically to the batch path — labels depend only on the
//!   committed history at or before the read's start.
//!
//! # Watermark GC
//!
//! Without garbage collection a per-key history grows one entry per
//! committed write forever — O(workload length), the one unbounded
//! structure in the open-loop engine. [`GroundTruth::enable_gc`] bounds it
//! **without changing a single label**. The insight: once the watermark
//! has passed `t`, the only reads still awaiting labels started *after*
//! `t − lag` (with `lag` = the client op-timeout, a read completing in a
//! later window cannot have started earlier than that). For such reads,
//! every commit at or before the horizon `t − lag` contributes only
//! through two order statistics:
//!
//! * the **maximum** sequence below the horizon (drives the consistent /
//!   stale verdict), and
//! * whether at least [`MAX_TRACKED_STALENESS`] below-horizon commits
//!   exceed the returned sequence (the `versions_behind` count is capped
//!   there anyway).
//!
//! So each advance drops all but the `MAX_TRACKED_STALENESS` largest-seq
//! commits at or below the horizon, remembering per key how many were
//! dropped and their maximum sequence. Because every retained
//! below-horizon sequence is ≥ every dropped one, a read that any dropped
//! commit could have made stale already finds `MAX_TRACKED_STALENESS`
//! retained commits newer than its returned version — the capped count is
//! bit-identical to the un-GC'd label, and the prefix maxima are rebuilt
//! on the dropped maximum so the verdict is too. Per-key memory becomes
//! O(commits within one op-timeout + the cap), independent of run length.

use crate::fxhash::FxHashMap;
use pbs_sim::{SimDuration, SimTime};

/// Cap on the reported versions-behind count; deeper staleness is reported
/// as this value. Keeps labelling O(staleness) per read instead of
/// O(history).
pub const MAX_TRACKED_STALENESS: u64 = 64;

#[derive(Debug, Default)]
struct KeyHistory {
    /// `(commit_time, seq)` in commit order.
    commits: Vec<(SimTime, u64)>,
    /// Running maximum of `seq` along `commits` — seeded with
    /// `dropped_max_seq`, so it is the true all-time maximum (monotone,
    /// enabling binary search by time + O(1) max lookup).
    prefix_max_seq: Vec<u64>,
    /// Commits garbage-collected below the horizon.
    dropped: u64,
    /// Maximum sequence among dropped commits. Invariant: ≤ every retained
    /// below-horizon sequence (top-`MAX_TRACKED_STALENESS` retention).
    dropped_max_seq: u64,
}

impl KeyHistory {
    fn push(&mut self, commit: SimTime, seq: u64) {
        debug_assert!(self.commits.last().is_none_or(|&(last, _)| commit >= last));
        let max = self.prefix_max_seq.last().copied().unwrap_or(self.dropped_max_seq).max(seq);
        self.commits.push((commit, seq));
        self.prefix_max_seq.push(max);
    }

    /// Drop all but the `MAX_TRACKED_STALENESS` largest-seq commits at or
    /// below the horizon (`time + lag ≤ anchor`), preserving time order
    /// and rebuilding the prefix maxima on the new dropped maximum.
    fn trim(&mut self, anchor: SimTime, lag: SimDuration) {
        let cap = MAX_TRACKED_STALENESS as usize;
        let below = self.commits.partition_point(|&(t, _)| t + lag <= anchor);
        if below <= cap {
            return;
        }
        // Threshold = the cap-th largest sequence below the horizon; keep
        // everything at or above it (sequence ties keep a few extra, which
        // is harmless — the invariant only needs dropped ≤ kept).
        let mut seqs: Vec<u64> = self.commits[..below].iter().map(|&(_, s)| s).collect();
        let (_, &mut threshold, _) = seqs.select_nth_unstable_by(cap - 1, |a, b| b.cmp(a));
        let mut kept = Vec::with_capacity(self.commits.len() - below + cap);
        for (i, &(t, s)) in self.commits.iter().enumerate() {
            if i >= below || s >= threshold {
                kept.push((t, s));
            } else {
                self.dropped += 1;
                self.dropped_max_seq = self.dropped_max_seq.max(s);
            }
        }
        self.commits = kept;
        self.prefix_max_seq.clear();
        let mut max = self.dropped_max_seq;
        for &(_, s) in &self.commits {
            max = max.max(s);
            self.prefix_max_seq.push(max);
        }
    }
}

/// The verdict for one read.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ReadLabel {
    /// Whether the read satisfied t-visibility (saw the newest committed
    /// version as of its start, or newer).
    pub consistent: bool,
    /// How many committed versions newer than the returned one existed at
    /// read start (0 when consistent; capped at
    /// [`MAX_TRACKED_STALENESS`]).
    pub versions_behind: u64,
}

/// Ground-truth commit history across all keys.
#[derive(Debug, Default)]
pub struct GroundTruth {
    keys: FxHashMap<u64, KeyHistory>,
    /// Commits seen by [`ingest_commit`](Self::ingest_commit) but not yet
    /// folded into the per-key histories: `(commit, key, seq)`.
    pending: Vec<(SimTime, u64, u64)>,
    /// Everything at or before this instant is final (folded into the
    /// histories); labels for reads starting at or before it are exact.
    watermark: SimTime,
    /// Watermark GC (see the module docs): commits older than `watermark −
    /// gc_lag` are compacted to order statistics. `None` = keep everything.
    gc_lag: Option<SimDuration>,
    /// Scratch: keys touched by the current watermark advance (only they
    /// can have grown, so only they are trim candidates).
    touched: Vec<u64>,
}

impl GroundTruth {
    /// Empty history.
    pub fn new() -> Self {
        Self::default()
    }

    /// Enable watermark GC: on every
    /// [`advance_watermark`](Self::advance_watermark), per-key histories
    /// are compacted below the horizon `previous watermark − lag_ms`.
    /// Labels for reads starting after the horizon — every read the
    /// open-loop engine can still deliver, when `lag_ms` is the client
    /// op-timeout — are **bit-identical** to the un-GC'd history's.
    /// Queries below the horizon ([`label_read`](Self::label_read) with an
    /// old `start`) become approximate;
    /// [`latest_committed_at`](Self::latest_committed_at) stays exact at
    /// or above the horizon.
    pub fn enable_gc(&mut self, lag_ms: f64) {
        assert!(lag_ms > 0.0, "GC lag must be positive");
        self.gc_lag = Some(SimDuration::from_ms(lag_ms));
    }

    /// Whether watermark GC is enabled.
    pub fn gc_enabled(&self) -> bool {
        self.gc_lag.is_some()
    }

    /// Finalised commits currently retained across all keys (the GC'd
    /// memory footprint).
    pub fn retained_commits(&self) -> usize {
        self.keys.values().map(|h| h.commits.len()).sum()
    }

    /// Commits garbage-collected so far across all keys.
    pub fn dropped_commits(&self) -> u64 {
        self.keys.values().map(|h| h.dropped).sum()
    }

    /// The commit watermark: reads starting at or before it can be
    /// labelled exactly (every commit that can affect them is in the
    /// history).
    pub fn watermark(&self) -> SimTime {
        self.watermark
    }

    /// Buffer a commit observed out of per-key time order (the open-loop
    /// path). It becomes visible to labelling when
    /// [`advance_watermark`](Self::advance_watermark) passes its commit
    /// time. The commit must lie beyond the current watermark — older ones
    /// would have been finalised already.
    pub fn ingest_commit(&mut self, key: u64, seq: u64, commit: SimTime) {
        assert!(
            commit > self.watermark,
            "commit at {commit} arrived at or below the watermark {}",
            self.watermark
        );
        self.pending.push((commit, key, seq));
    }

    /// Declare that every commit at or before `to` has been ingested:
    /// fold the buffered commits ≤ `to` into the per-key histories (in
    /// commit-time order — ties resolve in ingestion order, which in the
    /// deterministic simulator is event order) and advance the watermark.
    pub fn advance_watermark(&mut self, to: SimTime) {
        if to <= self.watermark {
            return;
        }
        // GC horizon: anchored at the watermark *before* this advance —
        // reads labelled after it started within `lag` of the previous
        // drain, never below this horizon.
        let anchor = self.watermark;
        self.watermark = to;
        if self.pending.is_empty() {
            return;
        }
        // Stable sort keeps ingestion order for equal commit times.
        self.pending.sort_by_key(|&(t, _, _)| t);
        let split = self.pending.partition_point(|&(t, _, _)| t <= to);
        for (commit, key, seq) in self.pending.drain(..split) {
            self.keys.entry(key).or_default().push(commit, seq);
            if self.gc_lag.is_some() {
                self.touched.push(key);
            }
        }
        // Only keys that just grew can newly exceed the retention cap.
        if let Some(lag) = self.gc_lag {
            self.touched.sort_unstable();
            self.touched.dedup();
            for key in self.touched.drain(..) {
                self.keys.get_mut(&key).expect("pushed above").trim(anchor, lag);
            }
        }
    }

    /// Commits ingested but not yet finalised by the watermark.
    pub fn pending_commits(&self) -> usize {
        self.pending.len()
    }

    /// Record a committed write directly into the history (the batch
    /// path). Calls must be in nondecreasing commit-time order per key
    /// (the blocking harness serialises operations; the method asserts
    /// this). Advances the watermark to the commit time.
    pub fn record_commit(&mut self, key: u64, seq: u64, commit: SimTime) {
        let h = self.keys.entry(key).or_default();
        if let Some(&(last, _)) = h.commits.last() {
            assert!(commit >= last, "commits must be recorded in time order");
        }
        h.push(commit, seq);
        self.watermark = self.watermark.max(commit);
    }

    /// Number of commits currently retained for `key` (with GC enabled,
    /// compacted history below the horizon is excluded — see
    /// [`dropped_commits`](Self::dropped_commits)).
    pub fn commits_for(&self, key: u64) -> usize {
        self.keys.get(&key).map_or(0, |h| h.commits.len())
    }

    /// Every key with at least one finalised commit, in ascending order
    /// (sorted so downstream iteration — e.g. the convergence checker —
    /// is deterministic despite the hash-map storage).
    pub fn tracked_keys(&self) -> Vec<u64> {
        let mut keys: Vec<u64> = self.keys.keys().copied().collect();
        keys.sort_unstable();
        keys
    }

    /// The newest committed `seq` at or before `t` (None when nothing had
    /// committed yet). Exact for `t` at or above the GC horizon; below it,
    /// compacted commits are summarised by their maximum.
    pub fn latest_committed_at(&self, key: u64, t: SimTime) -> Option<u64> {
        let h = self.keys.get(&key)?;
        let idx = h.commits.partition_point(|&(ct, _)| ct <= t);
        if idx == 0 {
            (h.dropped > 0).then_some(h.dropped_max_seq)
        } else {
            Some(h.prefix_max_seq[idx - 1])
        }
    }

    /// Label a read that started at `start` on `key` and returned
    /// `returned_seq` (`None` = key absent / empty read).
    pub fn label_read(&self, key: u64, start: SimTime, returned_seq: Option<u64>) -> ReadLabel {
        let returned = returned_seq.unwrap_or(0);
        let Some(h) = self.keys.get(&key) else {
            return ReadLabel { consistent: true, versions_behind: 0 };
        };
        let prefix = h.commits.partition_point(|&(ct, _)| ct <= start);
        let newest = if prefix == 0 { h.dropped_max_seq } else { h.prefix_max_seq[prefix - 1] };
        if newest <= returned {
            return ReadLabel { consistent: true, versions_behind: 0 };
        }
        // Count committed versions newer than the returned one, scanning
        // backwards (staleness is almost always small; the scan is bounded).
        let mut behind = 0u64;
        for &(_, seq) in h.commits[..prefix].iter().rev() {
            if seq > returned {
                behind += 1;
                if behind >= MAX_TRACKED_STALENESS {
                    break;
                }
            }
        }
        // Reads starting below the GC horizon only (the open-loop engine
        // never produces one): compacted commits are invisible to the scan
        // above; account for them up to the cap. At or above the horizon
        // this never fires — `dropped_max_seq > returned` implies the
        // retained below-horizon commits alone already reach the cap.
        if behind < MAX_TRACKED_STALENESS && h.dropped_max_seq > returned {
            behind = (behind + h.dropped).min(MAX_TRACKED_STALENESS);
        }
        ReadLabel { consistent: false, versions_behind: behind }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn t(ms: f64) -> SimTime {
        SimTime::from_ms(ms)
    }

    #[test]
    fn fresh_read_is_consistent() {
        let mut gt = GroundTruth::new();
        gt.record_commit(1, 1, t(10.0));
        gt.record_commit(1, 2, t(20.0));
        let label = gt.label_read(1, t(25.0), Some(2));
        assert!(label.consistent);
        assert_eq!(label.versions_behind, 0);
    }

    #[test]
    fn stale_read_counts_versions() {
        let mut gt = GroundTruth::new();
        for seq in 1..=5 {
            gt.record_commit(1, seq, t(seq as f64 * 10.0));
        }
        // Read at t=45 (versions 1–4 committed) returning version 2 is two
        // versions behind (3 and 4).
        let label = gt.label_read(1, t(45.0), Some(2));
        assert!(!label.consistent);
        assert_eq!(label.versions_behind, 2);
    }

    #[test]
    fn in_flight_newer_read_is_consistent() {
        let mut gt = GroundTruth::new();
        gt.record_commit(1, 1, t(10.0));
        // Version 2 is in flight (not yet committed); a read returning it is
        // non-stale per §3.1.
        let label = gt.label_read(1, t(15.0), Some(2));
        assert!(label.consistent);
    }

    #[test]
    fn read_before_any_commit_is_consistent() {
        let mut gt = GroundTruth::new();
        gt.record_commit(1, 1, t(10.0));
        assert!(gt.label_read(1, t(5.0), None).consistent);
        assert!(gt.label_read(99, t(5.0), None).consistent, "unknown key");
    }

    #[test]
    fn empty_read_after_commit_is_stale() {
        let mut gt = GroundTruth::new();
        gt.record_commit(1, 1, t(10.0));
        let label = gt.label_read(1, t(15.0), None);
        assert!(!label.consistent);
        assert_eq!(label.versions_behind, 1);
    }

    #[test]
    fn out_of_order_commits_handled() {
        // Concurrent writes can commit out of seq order: seq 3 commits
        // before seq 2.
        let mut gt = GroundTruth::new();
        gt.record_commit(1, 1, t(10.0));
        gt.record_commit(1, 3, t(20.0));
        gt.record_commit(1, 2, t(30.0));
        // At t=25, the newest committed is 3 → returning 2 is stale by one.
        let label = gt.label_read(1, t(25.0), Some(2));
        assert!(!label.consistent);
        assert_eq!(label.versions_behind, 1);
        // Returning 3 is consistent even though 2 commits later.
        assert!(gt.label_read(1, t(35.0), Some(3)).consistent);
    }

    #[test]
    fn latest_committed_at_boundary_inclusive() {
        let mut gt = GroundTruth::new();
        gt.record_commit(7, 4, t(10.0));
        assert_eq!(gt.latest_committed_at(7, t(10.0)), Some(4));
        assert_eq!(gt.latest_committed_at(7, t(9.999)), None);
    }

    #[test]
    #[should_panic(expected = "time order")]
    fn out_of_order_recording_panics() {
        let mut gt = GroundTruth::new();
        gt.record_commit(1, 1, t(10.0));
        gt.record_commit(1, 2, t(5.0));
    }

    #[test]
    fn online_ingestion_matches_batch() {
        // Commits ingested out of time order, watermark advanced in two
        // steps — labels must match the batch path exactly.
        let mut online = GroundTruth::new();
        online.ingest_commit(1, 2, t(20.0));
        online.ingest_commit(1, 1, t(10.0));
        online.ingest_commit(1, 3, t(45.0));
        online.advance_watermark(t(30.0));
        assert_eq!(online.pending_commits(), 1, "commit at 45 still pending");
        assert_eq!(online.watermark(), t(30.0));

        let mut batch = GroundTruth::new();
        batch.record_commit(1, 1, t(10.0));
        batch.record_commit(1, 2, t(20.0));
        for (start, ret) in [(5.0, None), (15.0, Some(1)), (25.0, Some(1)), (25.0, Some(2))] {
            assert_eq!(
                online.label_read(1, t(start), ret),
                batch.label_read(1, t(start), ret),
                "start {start}, returned {ret:?}"
            );
        }

        // Passing the third commit's time folds it in.
        online.advance_watermark(t(50.0));
        assert_eq!(online.pending_commits(), 0);
        assert!(!online.label_read(1, t(46.0), Some(2)).consistent);
    }

    #[test]
    fn equal_time_commits_fold_in_ingestion_order() {
        let mut gt = GroundTruth::new();
        gt.ingest_commit(7, 5, t(10.0));
        gt.ingest_commit(7, 4, t(10.0));
        gt.advance_watermark(t(10.0));
        assert_eq!(gt.commits_for(7), 2);
        assert_eq!(gt.latest_committed_at(7, t(10.0)), Some(5));
    }

    #[test]
    #[should_panic(expected = "watermark")]
    fn ingest_below_watermark_panics() {
        let mut gt = GroundTruth::new();
        gt.advance_watermark(t(100.0));
        gt.ingest_commit(1, 1, t(99.0));
    }

    #[test]
    fn gc_labels_are_bit_identical_to_the_unbounded_history() {
        use rand::{Rng, SeedableRng};
        // Feed two histories the same long out-of-order commit stream —
        // one GC'd at a 50 ms lag, one unbounded — and label the reads the
        // open-loop engine can actually produce (start after the previous
        // watermark minus the lag). Every label must match exactly, even
        // though the GC'd history drops almost everything.
        let lag_ms = 50.0;
        let window_ms = 20.0;
        let mut rng = rand::rngs::StdRng::seed_from_u64(0xB1A5);
        let mut gc = GroundTruth::new();
        gc.enable_gc(lag_ms);
        let mut full = GroundTruth::new();
        let mut seq = 1u64;
        let mut prev_until = 0.0f64;
        for w in 1..=400usize {
            let until = w as f64 * window_ms;
            // A hot key (0) plus a handful of cool ones, commits scattered
            // through the window out of order.
            for _ in 0..40 {
                let key = if rng.gen::<f64>() < 0.8 { 0 } else { rng.gen_range(1..5u64) };
                let commit = prev_until + rng.gen::<f64>() * window_ms;
                // Sequences are write-start times: commit-lagged, shuffled.
                let s = seq + rng.gen_range(0..7u64);
                seq += 3;
                gc.ingest_commit(key, s, t(commit));
                full.ingest_commit(key, s, t(commit));
            }
            gc.advance_watermark(t(until));
            full.advance_watermark(t(until));
            // Label reads across the whole reachable zone, with returned
            // sequences old enough to probe deep staleness (the cap path).
            for _ in 0..30 {
                let key = if rng.gen::<f64>() < 0.8 { 0 } else { rng.gen_range(1..5u64) };
                let lo = (prev_until - lag_ms * 0.999).max(0.0);
                let start = lo + rng.gen::<f64>() * (until - lo);
                let returned = match rng.gen_range(0..4u32) {
                    0 => None,
                    1 => Some(seq),
                    2 => Some(seq.saturating_sub(rng.gen_range(0..40u64))),
                    _ => Some(rng.gen_range(0..seq)),
                };
                assert_eq!(
                    gc.label_read(key, t(start), returned),
                    full.label_read(key, t(start), returned),
                    "window {w}, key {key}, start {start}, returned {returned:?}"
                );
            }
            prev_until = until;
        }
        assert!(
            gc.dropped_commits() > 10_000,
            "GC must actually compact ({} dropped)",
            gc.dropped_commits()
        );
        assert_eq!(gc.dropped_commits() + gc.retained_commits() as u64, 400 * 40);
        // The convergence oracle's query stays exact too.
        for key in full.tracked_keys() {
            assert_eq!(
                gc.latest_committed_at(key, SimTime::MAX),
                full.latest_committed_at(key, SimTime::MAX),
            );
        }
    }

    #[test]
    fn gc_keeps_hot_key_memory_flat() {
        // One key written every ms forever: the un-GC'd history grows one
        // entry per write; the GC'd one stays bounded by the lag window
        // plus the staleness cap.
        let lag_ms = 100.0;
        let mut gc = GroundTruth::new();
        gc.enable_gc(lag_ms);
        let mut peak = 0usize;
        for i in 0..50_000u64 {
            let commit = (i + 1) as f64;
            gc.ingest_commit(7, i + 1, t(commit));
            if (i + 1) % 20 == 0 {
                gc.advance_watermark(t(commit));
                peak = peak.max(gc.retained_commits());
            }
        }
        // Bound: one commit/ms × (lag + one 20 ms fold granule) + the cap,
        // with slack for the trim threshold.
        assert!(
            peak <= (lag_ms as usize + 20 + MAX_TRACKED_STALENESS as usize) * 2,
            "retained history should stay flat, peaked at {peak}"
        );
        assert_eq!(gc.latest_committed_at(7, SimTime::MAX), Some(50_000));
    }
}
