//! Ground-truth staleness labelling — batch and online.
//!
//! The simulator records every commit `(key, seq, commit time)`; a read that
//! started at `t` and returned `seq_r` is **consistent** (Definition 3) iff
//! `seq_r ≥ max{seq committed at or before t}`. Returning a newer,
//! not-yet-committed (in-flight) version also counts as consistent, matching
//! §3.1's k-regular semantics — such versions always have larger `seq`.
//!
//! Two ingestion paths feed the same history:
//!
//! * **Batch** — [`GroundTruth::record_commit`] requires nondecreasing
//!   commit times per key (the blocking harness serialises operations, so
//!   this holds trivially).
//! * **Online** — the open-loop engine completes thousands of overlapping
//!   writes whose results drain window by window, out of per-key time
//!   order. [`GroundTruth::ingest_commit`] buffers them, and
//!   [`GroundTruth::advance_watermark`] folds everything at or before the
//!   watermark into the history once the caller can guarantee no earlier
//!   commit is still outstanding (in the simulator: after `run_until(t)`,
//!   every commit ≤ `t` has been drained). Reads with `start ≤ watermark`
//!   then label identically to the batch path — labels depend only on the
//!   committed history at or before the read's start.

use crate::fxhash::FxHashMap;
use pbs_sim::SimTime;

/// Cap on the reported versions-behind count; deeper staleness is reported
/// as this value. Keeps labelling O(staleness) per read instead of
/// O(history).
pub const MAX_TRACKED_STALENESS: u64 = 64;

#[derive(Debug, Default)]
struct KeyHistory {
    /// `(commit_time, seq)` in commit order.
    commits: Vec<(SimTime, u64)>,
    /// Running maximum of `seq` along `commits` (monotone, enabling binary
    /// search by time + O(1) max lookup).
    prefix_max_seq: Vec<u64>,
}

/// The verdict for one read.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ReadLabel {
    /// Whether the read satisfied t-visibility (saw the newest committed
    /// version as of its start, or newer).
    pub consistent: bool,
    /// How many committed versions newer than the returned one existed at
    /// read start (0 when consistent; capped at
    /// [`MAX_TRACKED_STALENESS`]).
    pub versions_behind: u64,
}

/// Ground-truth commit history across all keys.
#[derive(Debug, Default)]
pub struct GroundTruth {
    keys: FxHashMap<u64, KeyHistory>,
    /// Commits seen by [`ingest_commit`](Self::ingest_commit) but not yet
    /// folded into the per-key histories: `(commit, key, seq)`.
    pending: Vec<(SimTime, u64, u64)>,
    /// Everything at or before this instant is final (folded into the
    /// histories); labels for reads starting at or before it are exact.
    watermark: SimTime,
}

impl GroundTruth {
    /// Empty history.
    pub fn new() -> Self {
        Self::default()
    }

    /// The commit watermark: reads starting at or before it can be
    /// labelled exactly (every commit that can affect them is in the
    /// history).
    pub fn watermark(&self) -> SimTime {
        self.watermark
    }

    /// Buffer a commit observed out of per-key time order (the open-loop
    /// path). It becomes visible to labelling when
    /// [`advance_watermark`](Self::advance_watermark) passes its commit
    /// time. The commit must lie beyond the current watermark — older ones
    /// would have been finalised already.
    pub fn ingest_commit(&mut self, key: u64, seq: u64, commit: SimTime) {
        assert!(
            commit > self.watermark,
            "commit at {commit} arrived at or below the watermark {}",
            self.watermark
        );
        self.pending.push((commit, key, seq));
    }

    /// Declare that every commit at or before `to` has been ingested:
    /// fold the buffered commits ≤ `to` into the per-key histories (in
    /// commit-time order — ties resolve in ingestion order, which in the
    /// deterministic simulator is event order) and advance the watermark.
    pub fn advance_watermark(&mut self, to: SimTime) {
        if to <= self.watermark {
            return;
        }
        self.watermark = to;
        if self.pending.is_empty() {
            return;
        }
        // Stable sort keeps ingestion order for equal commit times.
        self.pending.sort_by_key(|&(t, _, _)| t);
        let split = self.pending.partition_point(|&(t, _, _)| t <= to);
        for (commit, key, seq) in self.pending.drain(..split) {
            let h = self.keys.entry(key).or_default();
            debug_assert!(h.commits.last().is_none_or(|&(last, _)| commit >= last));
            let max = h.prefix_max_seq.last().copied().unwrap_or(0).max(seq);
            h.commits.push((commit, seq));
            h.prefix_max_seq.push(max);
        }
    }

    /// Commits ingested but not yet finalised by the watermark.
    pub fn pending_commits(&self) -> usize {
        self.pending.len()
    }

    /// Record a committed write directly into the history (the batch
    /// path). Calls must be in nondecreasing commit-time order per key
    /// (the blocking harness serialises operations; the method asserts
    /// this). Advances the watermark to the commit time.
    pub fn record_commit(&mut self, key: u64, seq: u64, commit: SimTime) {
        let h = self.keys.entry(key).or_default();
        if let Some(&(last, _)) = h.commits.last() {
            assert!(commit >= last, "commits must be recorded in time order");
        }
        let max = h.prefix_max_seq.last().copied().unwrap_or(0).max(seq);
        h.commits.push((commit, seq));
        h.prefix_max_seq.push(max);
        self.watermark = self.watermark.max(commit);
    }

    /// Number of commits recorded for `key`.
    pub fn commits_for(&self, key: u64) -> usize {
        self.keys.get(&key).map_or(0, |h| h.commits.len())
    }

    /// Every key with at least one finalised commit, in ascending order
    /// (sorted so downstream iteration — e.g. the convergence checker —
    /// is deterministic despite the hash-map storage).
    pub fn tracked_keys(&self) -> Vec<u64> {
        let mut keys: Vec<u64> = self.keys.keys().copied().collect();
        keys.sort_unstable();
        keys
    }

    /// The newest committed `seq` at or before `t` (None when nothing had
    /// committed yet).
    pub fn latest_committed_at(&self, key: u64, t: SimTime) -> Option<u64> {
        let h = self.keys.get(&key)?;
        let idx = h.commits.partition_point(|&(ct, _)| ct <= t);
        if idx == 0 {
            None
        } else {
            Some(h.prefix_max_seq[idx - 1])
        }
    }

    /// Label a read that started at `start` on `key` and returned
    /// `returned_seq` (`None` = key absent / empty read).
    pub fn label_read(&self, key: u64, start: SimTime, returned_seq: Option<u64>) -> ReadLabel {
        let returned = returned_seq.unwrap_or(0);
        let Some(h) = self.keys.get(&key) else {
            return ReadLabel { consistent: true, versions_behind: 0 };
        };
        let prefix = h.commits.partition_point(|&(ct, _)| ct <= start);
        if prefix == 0 || h.prefix_max_seq[prefix - 1] <= returned {
            return ReadLabel { consistent: true, versions_behind: 0 };
        }
        // Count committed versions newer than the returned one, scanning
        // backwards (staleness is almost always small; the scan is bounded).
        let mut behind = 0u64;
        for &(_, seq) in h.commits[..prefix].iter().rev() {
            if seq > returned {
                behind += 1;
                if behind >= MAX_TRACKED_STALENESS {
                    break;
                }
            }
        }
        ReadLabel { consistent: false, versions_behind: behind }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn t(ms: f64) -> SimTime {
        SimTime::from_ms(ms)
    }

    #[test]
    fn fresh_read_is_consistent() {
        let mut gt = GroundTruth::new();
        gt.record_commit(1, 1, t(10.0));
        gt.record_commit(1, 2, t(20.0));
        let label = gt.label_read(1, t(25.0), Some(2));
        assert!(label.consistent);
        assert_eq!(label.versions_behind, 0);
    }

    #[test]
    fn stale_read_counts_versions() {
        let mut gt = GroundTruth::new();
        for seq in 1..=5 {
            gt.record_commit(1, seq, t(seq as f64 * 10.0));
        }
        // Read at t=45 (versions 1–4 committed) returning version 2 is two
        // versions behind (3 and 4).
        let label = gt.label_read(1, t(45.0), Some(2));
        assert!(!label.consistent);
        assert_eq!(label.versions_behind, 2);
    }

    #[test]
    fn in_flight_newer_read_is_consistent() {
        let mut gt = GroundTruth::new();
        gt.record_commit(1, 1, t(10.0));
        // Version 2 is in flight (not yet committed); a read returning it is
        // non-stale per §3.1.
        let label = gt.label_read(1, t(15.0), Some(2));
        assert!(label.consistent);
    }

    #[test]
    fn read_before_any_commit_is_consistent() {
        let mut gt = GroundTruth::new();
        gt.record_commit(1, 1, t(10.0));
        assert!(gt.label_read(1, t(5.0), None).consistent);
        assert!(gt.label_read(99, t(5.0), None).consistent, "unknown key");
    }

    #[test]
    fn empty_read_after_commit_is_stale() {
        let mut gt = GroundTruth::new();
        gt.record_commit(1, 1, t(10.0));
        let label = gt.label_read(1, t(15.0), None);
        assert!(!label.consistent);
        assert_eq!(label.versions_behind, 1);
    }

    #[test]
    fn out_of_order_commits_handled() {
        // Concurrent writes can commit out of seq order: seq 3 commits
        // before seq 2.
        let mut gt = GroundTruth::new();
        gt.record_commit(1, 1, t(10.0));
        gt.record_commit(1, 3, t(20.0));
        gt.record_commit(1, 2, t(30.0));
        // At t=25, the newest committed is 3 → returning 2 is stale by one.
        let label = gt.label_read(1, t(25.0), Some(2));
        assert!(!label.consistent);
        assert_eq!(label.versions_behind, 1);
        // Returning 3 is consistent even though 2 commits later.
        assert!(gt.label_read(1, t(35.0), Some(3)).consistent);
    }

    #[test]
    fn latest_committed_at_boundary_inclusive() {
        let mut gt = GroundTruth::new();
        gt.record_commit(7, 4, t(10.0));
        assert_eq!(gt.latest_committed_at(7, t(10.0)), Some(4));
        assert_eq!(gt.latest_committed_at(7, t(9.999)), None);
    }

    #[test]
    #[should_panic(expected = "time order")]
    fn out_of_order_recording_panics() {
        let mut gt = GroundTruth::new();
        gt.record_commit(1, 1, t(10.0));
        gt.record_commit(1, 2, t(5.0));
    }

    #[test]
    fn online_ingestion_matches_batch() {
        // Commits ingested out of time order, watermark advanced in two
        // steps — labels must match the batch path exactly.
        let mut online = GroundTruth::new();
        online.ingest_commit(1, 2, t(20.0));
        online.ingest_commit(1, 1, t(10.0));
        online.ingest_commit(1, 3, t(45.0));
        online.advance_watermark(t(30.0));
        assert_eq!(online.pending_commits(), 1, "commit at 45 still pending");
        assert_eq!(online.watermark(), t(30.0));

        let mut batch = GroundTruth::new();
        batch.record_commit(1, 1, t(10.0));
        batch.record_commit(1, 2, t(20.0));
        for (start, ret) in [(5.0, None), (15.0, Some(1)), (25.0, Some(1)), (25.0, Some(2))] {
            assert_eq!(
                online.label_read(1, t(start), ret),
                batch.label_read(1, t(start), ret),
                "start {start}, returned {ret:?}"
            );
        }

        // Passing the third commit's time folds it in.
        online.advance_watermark(t(50.0));
        assert_eq!(online.pending_commits(), 0);
        assert!(!online.label_read(1, t(46.0), Some(2)).consistent);
    }

    #[test]
    fn equal_time_commits_fold_in_ingestion_order() {
        let mut gt = GroundTruth::new();
        gt.ingest_commit(7, 5, t(10.0));
        gt.ingest_commit(7, 4, t(10.0));
        gt.advance_watermark(t(10.0));
        assert_eq!(gt.commits_for(7), 2);
        assert_eq!(gt.latest_committed_at(7, t(10.0)), Some(5));
    }

    #[test]
    #[should_panic(expected = "watermark")]
    fn ingest_below_watermark_panics() {
        let mut gt = GroundTruth::new();
        gt.advance_watermark(t(100.0));
        gt.ingest_commit(1, 1, t(99.0));
    }
}
