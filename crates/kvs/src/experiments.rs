//! The §5.2 experiment drivers: measure t-visibility and operation
//! latencies on the simulated store, in the exact shape the paper used to
//! validate WARS against Cassandra ("we inserted increasing versions of a
//! key while concurrently issuing read requests").
//!
//! Latencies stream into `pbs-mc` [`Summary`] sketches (O(1) memory) and
//! measurements are [`Mergeable`], so probe budgets can shard across
//! threads as independent clusters — see
//! [`measure_t_visibility_sharded`].

use crate::cluster::{Cluster, ClusterOptions};
use crate::network::NetworkModel;
use pbs_mc::{Mergeable, Runner, Summary};
use pbs_sim::SimDuration;

/// Empirical consistency at one read offset.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct OffsetPoint {
    /// Read offset after commit (ms).
    pub t_ms: f64,
    /// Trials performed at this offset.
    pub trials: usize,
    /// Trials whose read was consistent.
    pub consistent: usize,
}

impl OffsetPoint {
    /// Empirical `P(consistent)` at this offset.
    pub fn probability(&self) -> f64 {
        self.consistent as f64 / self.trials as f64
    }
}

/// Results of a t-visibility measurement on the live (simulated) store.
#[derive(Debug, Clone, Default)]
pub struct TVisibilityMeasurement {
    /// Per-offset consistency counts.
    pub points: Vec<OffsetPoint>,
    /// Streaming summary of commit latencies of every successful write (ms).
    pub write_latency: Summary,
    /// Streaming summary of latencies of every completed read (ms).
    pub read_latency: Summary,
}

impl TVisibilityMeasurement {
    /// The `(t, P(consistent))` series.
    pub fn series(&self) -> Vec<(f64, f64)> {
        self.points.iter().map(|p| (p.t_ms, p.probability())).collect()
    }
}

impl Mergeable for TVisibilityMeasurement {
    /// Fold another measurement over the **same offset grid** into this
    /// one: per-offset counts add, latency summaries merge.
    fn merge(&mut self, other: Self) {
        if other.points.is_empty() {
            return;
        }
        if self.points.is_empty() {
            *self = other;
            return;
        }
        assert_eq!(self.points.len(), other.points.len(), "offset grids differ");
        for (a, b) in self.points.iter_mut().zip(other.points) {
            assert_eq!(a.t_ms, b.t_ms, "offset grids differ");
            a.trials += b.trials;
            a.consistent += b.consistent;
        }
        self.write_latency.merge(other.write_latency);
        self.read_latency.merge(other.read_latency);
    }
}

/// Measure t-visibility on a cluster: for each offset `t`, run
/// `trials_per_offset` write→read probes where the read starts exactly `t`
/// ms after the write's commit, and label each read against ground truth.
///
/// `spacing_ms` inserts idle time between trials (0 is safe: later writes
/// have strictly newer versions, so stragglers from earlier trials are
/// merged away by the replicas' max-version rule).
pub fn measure_t_visibility(
    cluster: &mut Cluster,
    key: u64,
    offsets: &[f64],
    trials_per_offset: usize,
    spacing_ms: f64,
) -> TVisibilityMeasurement {
    assert!(!offsets.is_empty() && trials_per_offset > 0);
    assert!(spacing_ms >= 0.0);
    let mut out = TVisibilityMeasurement::default();
    for &t in offsets {
        assert!(t >= 0.0, "offsets must be nonnegative");
        let mut point = OffsetPoint { t_ms: t, trials: 0, consistent: 0 };
        for _ in 0..trials_per_offset {
            let w = cluster.write(key);
            let Some(commit) = w.commit else {
                continue; // failed write: no probe
            };
            out.write_latency.record(w.latency_ms().expect("committed"));
            let read_at = commit + SimDuration::from_ms(t);
            let r = cluster.read_at(key, read_at);
            let Some(label) = r.label else {
                continue; // read timed out (possible under failures)
            };
            out.read_latency.record(r.latency_ms().expect("completed"));
            point.trials += 1;
            if label.consistent {
                point.consistent += 1;
            }
            if spacing_ms > 0.0 {
                let next = cluster.now() + SimDuration::from_ms(spacing_ms);
                cluster.advance_to(next);
            }
        }
        out.points.push(point);
    }
    out.write_latency.seal();
    out.read_latency.seal();
    out
}

/// Sharded [`measure_t_visibility`]: the probe budget splits across
/// `threads` **independent clusters** (shard `i` gets cluster seed
/// `opts.seed ^ i` via the deterministic runner), so cluster simulation
/// saturates every core. Results merge per offset and are bit-reproducible
/// for a fixed `(opts.seed, threads)` pair.
pub fn measure_t_visibility_sharded(
    opts: ClusterOptions,
    network: &NetworkModel,
    key: u64,
    offsets: &[f64],
    trials_per_offset: usize,
    spacing_ms: f64,
    threads: usize,
) -> TVisibilityMeasurement {
    assert!(!offsets.is_empty() && trials_per_offset > 0 && threads > 0);
    Runner::new(trials_per_offset, opts.seed, threads).run(|_rng, info| {
        if info.trials == 0 {
            return TVisibilityMeasurement::default();
        }
        let mut shard_opts = opts;
        shard_opts.seed = info.seed;
        let mut cluster = Cluster::new(shard_opts, network.clone());
        measure_t_visibility(&mut cluster, key, offsets, info.trials, spacing_ms)
    })
}

/// Measure the distribution of *versions behind* at a fixed offset — the
/// live-store counterpart of PBS k-staleness. Returns
/// `hist[j] = fraction of reads exactly j versions behind` (last bucket
/// aggregates deeper staleness).
pub fn measure_version_staleness(
    cluster: &mut Cluster,
    key: u64,
    t_ms: f64,
    trials: usize,
    max_k: usize,
) -> Vec<f64> {
    assert!(trials > 0 && max_k >= 1);
    let mut hist = vec![0usize; max_k + 1];
    let mut labelled = 0usize;
    for _ in 0..trials {
        let w = cluster.write(key);
        let Some(commit) = w.commit else { continue };
        let r = cluster.read_at(key, commit + SimDuration::from_ms(t_ms));
        let Some(label) = r.label else { continue };
        labelled += 1;
        let behind = (label.versions_behind as usize).min(max_k);
        hist[behind] += 1;
    }
    assert!(labelled > 0, "no probe completed");
    hist.into_iter().map(|c| c as f64 / labelled as f64).collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::cluster::ClusterOptions;
    use crate::network::NetworkModel;
    use pbs_core::ReplicaConfig;
    use pbs_dist::Exponential;
    use std::sync::Arc;

    fn net(w_rate: f64, ars_rate: f64) -> NetworkModel {
        NetworkModel::w_ars(
            Arc::new(Exponential::from_rate(w_rate)),
            Arc::new(Exponential::from_rate(ars_rate)),
        )
    }

    fn make_cluster(n: u32, r: u32, w: u32, w_rate: f64, ars_rate: f64, seed: u64) -> Cluster {
        Cluster::new(
            ClusterOptions::validation(ReplicaConfig::new(n, r, w).unwrap(), seed),
            net(w_rate, ars_rate),
        )
    }

    #[test]
    fn curve_is_roughly_monotone_and_reaches_one() {
        let mut cluster = make_cluster(3, 1, 1, 0.1, 0.5, 1);
        let m = measure_t_visibility(&mut cluster, 5, &[0.0, 10.0, 40.0, 120.0], 300, 0.0);
        let series = m.series();
        assert!(series[0].1 < series[3].1, "staleness should vanish with t: {series:?}");
        assert!(series[3].1 > 0.97, "t=120ms should be nearly always consistent");
        assert_eq!(m.write_latency.count(), 1200);
        assert_eq!(m.read_latency.count(), 1200);
        assert!(m.read_latency.percentile(99.0) > m.read_latency.percentile(50.0));
    }

    #[test]
    fn strict_quorum_fully_consistent_at_zero() {
        let mut cluster = make_cluster(3, 2, 2, 0.1, 0.5, 2);
        let m = measure_t_visibility(&mut cluster, 5, &[0.0], 300, 0.0);
        assert_eq!(m.points[0].probability(), 1.0);
    }

    #[test]
    fn version_staleness_histogram_sums_to_one() {
        let mut cluster = make_cluster(3, 1, 1, 0.05, 2.0, 3);
        let hist = measure_version_staleness(&mut cluster, 9, 0.0, 500, 4);
        let sum: f64 = hist.iter().sum();
        assert!((sum - 1.0).abs() < 1e-9);
        assert_eq!(hist.len(), 5);
        // Most reads are 0 or 1 versions behind even when stale.
        assert!(hist[0] > 0.1);
    }

    #[test]
    fn sharded_measurement_matches_single_cluster() {
        let cfg = ReplicaConfig::new(3, 1, 1).unwrap();
        let opts = ClusterOptions::validation(cfg, 11);
        let network = net(0.1, 0.5);
        let offsets = [0.0, 20.0, 80.0];
        let sharded =
            measure_t_visibility_sharded(opts, &network, 5, &offsets, 600, 0.0, 3);
        assert_eq!(sharded.points.len(), 3);
        for p in &sharded.points {
            assert_eq!(p.trials, 600, "shards must cover the full budget");
        }
        assert_eq!(sharded.write_latency.count(), 1800);
        // Statistically equivalent to one big cluster run.
        let mut cluster = Cluster::new(opts, network.clone());
        let single = measure_t_visibility(&mut cluster, 5, &offsets, 600, 0.0);
        for (a, b) in sharded.points.iter().zip(&single.points) {
            assert!(
                (a.probability() - b.probability()).abs() < 0.08,
                "t={}: sharded {} vs single {}",
                a.t_ms,
                a.probability(),
                b.probability()
            );
        }
    }

    #[test]
    fn sharded_measurement_is_deterministic() {
        let cfg = ReplicaConfig::new(3, 1, 1).unwrap();
        let opts = ClusterOptions::validation(cfg, 4);
        let network = net(0.2, 0.5);
        let run = || measure_t_visibility_sharded(opts, &network, 2, &[0.0, 10.0], 200, 0.0, 4);
        let (a, b) = (run(), run());
        assert_eq!(a.points, b.points);
        assert_eq!(a.write_latency, b.write_latency);
        assert_eq!(a.read_latency, b.read_latency);
    }
}
