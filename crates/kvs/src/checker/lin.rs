//! Per-key linearizability checking (Wing–Gong / WGL, Porcupine-style).
//!
//! The order oracle ([`check_order`](super::check_order)) audits
//! *per-replica exposure order* — sound under faults, but blind to global
//! real-time anomalies that never involve the same replica twice. This
//! module closes ROADMAP item 5's remaining gap with a true real-time
//! checker: partition the [`OpHistory`] by key, model
//! each key as a register of `(seq, writer)` versions, and search for a
//! linearization — a total order of the completed operations that
//! respects real time (an op whose response precedes another's invocation
//! must order before it) and register semantics (every read returns the
//! version of the latest write ordered before it; `(0, 0)` is the empty
//! register).
//!
//! # Interval model
//!
//! Intervals come from the recorded [`CompletedOp`](crate::client::CompletedOp) fields:
//!
//! * **Committed write** (`commit: Some`) — required, interval
//!   `[start, commit]`. The commit instant is when the `W`-th ack landed;
//!   the write's linearization point lies somewhere in between. Using
//!   `commit` (not the client-side `finish`) keeps WGL verdicts on the
//!   same clock as the staleness labels and the paper's t-visibility.
//! * **Failed or timed-out write** (`commit: None`) — *possibly
//!   committed*: replicas may have applied (or may yet apply) its version
//!   even though the client saw a failure or nothing at all. Such writes
//!   are optional (a linearization may drop them) with an **open
//!   interval** `[start, ∞)`. This mirrors `relabel_reads`, which never
//!   feeds uncommitted writes into the ground truth: neither checker
//!   treats a timed-out write as having definitely happened — and neither
//!   treats it as having definitely *not* happened.
//! * **Completed read** (`finish: Some`) — required, `[start, finish]`,
//!   observed value from `(seq, writer)` (empty read = `(0, 0)`).
//! * **Timed-out read** (`finish: None`) — dropped: the client observed
//!   nothing, so an aborted read constrains nothing.
//!
//! A timed-out write on the open-loop path also loses its *version*
//! (`seq: None`). Any read that later returns a version no recorded write
//! produced is matched against such unknown writes: if the key has any,
//! each orphan version becomes a synthetic optional open-interval write
//! starting at the earliest unknown write's start (the same stand-down
//! the order oracle's `incomplete` flag performs). With no unknown write
//! to attribute it to, the orphan is a genuine phantom and the search
//! will convict the read.
//!
//! # Search
//!
//! Memoized DFS over the linearized-set frontier. A candidate op may be
//! linearized next iff every un-linearized op whose response precedes its
//! invocation is already linearized; reads whose value matches the
//! current register are linearized eagerly (they never change state, so
//! taking them early never loses solutions); branching happens only on
//! writes, and optional writes are tried only while some pending read
//! still needs their version. Visited `(linearized-set, register)`
//! configurations are cached — full keys, never hashes, so a collision
//! can't prune a real solution. The search is budget-bounded: crossing
//! [`LinOptions::max_nodes_per_key`] yields the distinct, non-failing
//! [`KeyLinVerdict::Exhausted`] instead of a verdict.
//!
//! # Violation windows
//!
//! When a key is not linearizable the checker localises each anomaly to a
//! **minimal infeasible prefix**: response events are replayed in order
//! (ties broken by op id), where the prefix at event `k` contains events
//! `0..=k` as completed ops and every op already started as an optional
//! open write (pending reads are dropped). Prefix feasibility is monotone
//! in `k` — dropping later responses only removes constraints — so the
//! first infeasible `k` (found by binary search) names the op whose
//! response made the history un-linearizable. For a stale read the
//! reported window spans from the newest committed write it missed to the
//! read's own start: exactly the paper's `t` in t-visibility, which is
//! what the headline experiment compares against the predictor. The
//! offending op is then removed (reads dropped, writes demoted to
//! optional) and the scan continues, so one key can contribute many
//! windows.

use super::OpHistory;
use crate::fxhash::{FxHashMap, FxHashSet};
use pbs_mc::Mergeable;
use pbs_workload::OpKind;

/// Budgets for the per-key WGL search.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct LinOptions {
    /// Keys with more participating ops than this are reported
    /// [`Exhausted`](KeyLinVerdict::Exhausted) without searching.
    pub max_ops_per_key: usize,
    /// Total DFS nodes (write-linearization attempts) allowed per key,
    /// shared across every prefix check the key needs.
    pub max_nodes_per_key: u64,
}

impl Default for LinOptions {
    fn default() -> Self {
        Self { max_ops_per_key: 4096, max_nodes_per_key: 100_000 }
    }
}

/// One localized linearizability violation: the op whose response closed
/// the first infeasible prefix, plus the staleness window it implies.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct LinViolation {
    /// Key involved.
    pub key: u64,
    /// The offending operation (usually a stale read).
    pub op_id: u64,
    /// Window start in sim-nanoseconds: the commit of the newest write
    /// the op missed (falling back to the op's own start when the
    /// violation is not a missed-write staleness).
    pub window_start_ns: u64,
    /// Window end in sim-nanoseconds: the offending op's start (fallback:
    /// its response).
    pub window_end_ns: u64,
}

impl LinViolation {
    /// Window duration in sim-nanoseconds (the paper's `t` for a stale
    /// read: how long after the missed write's commit the read began).
    pub fn window_ns(&self) -> u64 {
        self.window_end_ns.saturating_sub(self.window_start_ns)
    }
}

/// Per-key search verdict.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum KeyLinVerdict {
    /// A linearization exists for the whole per-key history.
    Linearizable,
    /// No linearization exists; see the violations list.
    Violation,
    /// The node budget ran out before a verdict — explicitly *not* a
    /// failure: the gate treats it as "unknown", never "violated".
    Exhausted,
}

/// One key's full result, for tests and minimized artifact dumps.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct KeyLinResult {
    /// The key.
    pub key: u64,
    /// Participating ops (closed + possibly-committed; synthetic orphan
    /// writes excluded).
    pub ops: u64,
    /// The verdict.
    pub verdict: KeyLinVerdict,
    /// Every localized violation, in response order.
    pub violations: Vec<LinViolation>,
    /// DFS nodes spent on this key.
    pub nodes: u64,
}

/// Aggregated linearizability verdict over a run (mergeable across
/// shards). Lives in [`CheckReport`](super::CheckReport) next to
/// [`OrderCheck`](super::OrderCheck).
///
/// Deliberately **not** part of
/// [`CheckReport::is_clean`](super::CheckReport::is_clean): partial
/// quorums (R+W ≤ N) violate linearizability by design — quantifying
/// that is the paper's whole point — so violations here are a
/// measurement, not automatically a bug. Gate strict-quorum runs with
/// [`all_linearizable`](LinCheck::all_linearizable) instead.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct LinCheck {
    /// Keys examined.
    pub keys_checked: u64,
    /// Participating ops across all keys.
    pub ops_checked: u64,
    /// Keys with a full linearization.
    pub linearizable_keys: u64,
    /// Keys with at least one violation.
    pub violated_keys: u64,
    /// Keys whose search ran out of budget (unknown, not failed).
    pub exhausted_keys: u64,
    /// DFS nodes spent across all keys.
    pub nodes_explored: u64,
    /// Every localized violation, keys in first-appearance order.
    pub violations: Vec<LinViolation>,
}

impl LinCheck {
    /// Strict-quorum gate: every key searched to completion and found
    /// linearizable (`Exhausted` keys fail this — use it only where the
    /// budget is known to suffice).
    pub fn all_linearizable(&self) -> bool {
        self.violated_keys == 0 && self.exhausted_keys == 0
    }

    /// Total violations found.
    pub fn violation_count(&self) -> u64 {
        self.violations.len() as u64
    }

    /// First violation found (deterministic: keys in first-appearance
    /// order, violations in response order).
    pub fn first_violation(&self) -> Option<&LinViolation> {
        self.violations.first()
    }

    /// The `pct`-th percentile (0–100, nearest-rank) of the violation
    /// window durations, in milliseconds. `None` when there are none.
    pub fn window_percentile_ms(&self, pct: f64) -> Option<f64> {
        if self.violations.is_empty() {
            return None;
        }
        let mut windows: Vec<u64> = self.violations.iter().map(|v| v.window_ns()).collect();
        windows.sort_unstable();
        let rank = ((pct / 100.0) * windows.len() as f64).ceil() as usize;
        let idx = rank.clamp(1, windows.len()) - 1;
        Some(windows[idx] as f64 / 1e6)
    }
}

impl Mergeable for LinCheck {
    fn merge(&mut self, other: Self) {
        self.keys_checked += other.keys_checked;
        self.ops_checked += other.ops_checked;
        self.linearizable_keys += other.linearizable_keys;
        self.violated_keys += other.violated_keys;
        self.exhausted_keys += other.exhausted_keys;
        self.nodes_explored += other.nodes_explored;
        self.violations.extend(other.violations);
    }
}

/// One op as the per-key search sees it.
#[derive(Debug, Clone, Copy)]
struct LinOp {
    op_id: u64,
    is_write: bool,
    /// Write: version written. Read: version observed (`(0, 0)` empty).
    version: (u64, u32),
    start_ns: u64,
    /// Response instant; `u64::MAX` = open (possibly committed).
    resp_ns: u64,
    /// Closed committed write or completed read (participates in prefix
    /// events). Open writes are never required.
    closed: bool,
    /// Synthetic orphan-version write (excluded from op counts).
    synthetic: bool,
}

/// Prefix-check feasibility outcome.
enum Feasibility {
    Feasible,
    Infeasible,
    Exhausted,
}

/// Check every key of the history. Equivalent to [`check_lin`] but keeps
/// the per-key results (tests, artifact minimization).
pub fn check_lin_keys(history: &OpHistory, opts: &LinOptions) -> Vec<KeyLinResult> {
    let mut keys: FxHashMap<u64, Vec<LinOp>> = FxHashMap::default();
    let mut unknown_starts: FxHashMap<u64, u64> = FxHashMap::default();
    let mut order: Vec<u64> = Vec::new();
    for h in history.ops() {
        let op = &h.op;
        let ops = keys.entry(op.key).or_insert_with(|| {
            order.push(op.key);
            Vec::new()
        });
        match op.kind {
            OpKind::Write => match (op.seq, op.commit) {
                (Some(seq), commit) => {
                    let writer = op.writer.expect("writes with a sequence carry their writer");
                    ops.push(LinOp {
                        op_id: op.op_id,
                        is_write: true,
                        version: (seq, writer),
                        start_ns: op.start.as_nanos(),
                        resp_ns: commit.map_or(u64::MAX, |c| c.as_nanos()),
                        closed: commit.is_some(),
                        synthetic: false,
                    });
                }
                (None, _) => {
                    // Version unknown (open-loop client timeout): the
                    // write is possibly committed with an unattributable
                    // version — remembered so orphan versions on this key
                    // get a synthetic carrier instead of a conviction.
                    let e = unknown_starts.entry(op.key).or_insert(u64::MAX);
                    *e = (*e).min(op.start.as_nanos());
                }
            },
            OpKind::Read => {
                let Some(finish) = op.finish else {
                    continue; // timed out: the client observed nothing
                };
                ops.push(LinOp {
                    op_id: op.op_id,
                    is_write: false,
                    version: (op.seq.unwrap_or(0), op.writer.unwrap_or(0)),
                    start_ns: op.start.as_nanos(),
                    resp_ns: finish.as_nanos(),
                    closed: true,
                    synthetic: false,
                });
            }
        }
    }

    let mut results = Vec::with_capacity(order.len());
    for key in order {
        let mut ops = keys.remove(&key).expect("key was inserted above");
        if let Some(&unknown_start) = unknown_starts.get(&key) {
            synthesize_orphans(&mut ops, unknown_start);
        }
        results.push(check_key(key, ops, opts));
    }
    results
}

/// Check every key and aggregate into a [`LinCheck`].
pub fn check_lin(history: &OpHistory, opts: &LinOptions) -> LinCheck {
    let mut check = LinCheck::default();
    for kr in check_lin_keys(history, opts) {
        check.keys_checked += 1;
        check.ops_checked += kr.ops;
        check.nodes_explored += kr.nodes;
        match kr.verdict {
            KeyLinVerdict::Linearizable => check.linearizable_keys += 1,
            KeyLinVerdict::Violation => check.violated_keys += 1,
            KeyLinVerdict::Exhausted => check.exhausted_keys += 1,
        }
        check.violations.extend(kr.violations);
    }
    check
}

/// Add a synthetic optional open write for every version some read
/// observed but no recorded write produced, anchored at the earliest
/// unknown-version write's start.
fn synthesize_orphans(ops: &mut Vec<LinOp>, unknown_start_ns: u64) {
    let known: FxHashSet<(u64, u32)> =
        ops.iter().filter(|o| o.is_write).map(|o| o.version).collect();
    let mut orphans: Vec<(u64, u32)> = ops
        .iter()
        .filter(|o| !o.is_write && o.version != (0, 0) && !known.contains(&o.version))
        .map(|o| o.version)
        .collect();
    orphans.sort_unstable();
    orphans.dedup();
    for (i, version) in orphans.into_iter().enumerate() {
        ops.push(LinOp {
            op_id: u64::MAX - i as u64,
            is_write: true,
            version,
            start_ns: unknown_start_ns,
            resp_ns: u64::MAX,
            closed: false,
            synthetic: true,
        });
    }
}

/// Search one key: full check first (the common clean case costs one
/// pass), then minimal-prefix localization for every violation.
fn check_key(key: u64, mut ops: Vec<LinOp>, opts: &LinOptions) -> KeyLinResult {
    let op_count = ops.iter().filter(|o| !o.synthetic).count() as u64;
    let mut result = KeyLinResult {
        key,
        ops: op_count,
        verdict: KeyLinVerdict::Linearizable,
        violations: Vec::new(),
        nodes: 0,
    };
    if ops.len() > opts.max_ops_per_key {
        result.verdict = KeyLinVerdict::Exhausted;
        return result;
    }
    // Invocation order is the search's canonical op order (ties broken by
    // op id, so serial and parallel runs of one schedule agree).
    ops.sort_by_key(|o| (o.start_ns, o.op_id));
    // Response events in time order: the prefix at event k closes events
    // 0..=k (index-based, so equal response instants stay deterministic).
    let mut events: Vec<usize> = (0..ops.len()).filter(|&i| ops[i].closed).collect();
    events.sort_by_key(|&i| (ops[i].resp_ns, ops[i].op_id));

    // Committed `(version, commit)` pairs anchor the staleness windows.
    let committed_versions: Vec<((u64, u32), u64)> = ops
        .iter()
        .filter(|o| o.is_write && o.closed)
        .map(|o| (o.version, o.resp_ns))
        .collect();

    let mut budget = opts.max_nodes_per_key;
    let mut removed: FxHashSet<usize> = FxHashSet::default();
    // `known_feasible`: every prefix up to and including this event index
    // is linearizable given the removals so far.
    let mut known_feasible: Option<usize> = None;
    loop {
        if events.is_empty() {
            break;
        }
        let full = events.len() - 1;
        match check_prefix(&ops, &events, full, &removed, &mut budget, &mut result.nodes) {
            Feasibility::Feasible => break,
            Feasibility::Exhausted => {
                result.verdict = KeyLinVerdict::Exhausted;
                return result;
            }
            Feasibility::Infeasible => {}
        }
        // Binary search the minimal infeasible prefix in
        // (known_feasible, full]; `full` is already known infeasible.
        let mut lo = known_feasible.map_or(0, |k| k + 1);
        let mut hi = full;
        while lo < hi {
            let mid = lo + (hi - lo) / 2;
            match check_prefix(&ops, &events, mid, &removed, &mut budget, &mut result.nodes) {
                Feasibility::Feasible => lo = mid + 1,
                Feasibility::Infeasible => hi = mid,
                Feasibility::Exhausted => {
                    result.verdict = KeyLinVerdict::Exhausted;
                    return result;
                }
            }
        }
        let culprit = events[lo];
        result.violations.push(violation_for(key, &ops[culprit], &committed_versions));
        removed.insert(culprit);
        // With the culprit gone the prefix at `lo` equals the (feasible)
        // prefix at `lo - 1` plus one more open op: still feasible.
        known_feasible = Some(lo);
    }
    if !result.violations.is_empty() {
        result.verdict = KeyLinVerdict::Violation;
    }
    result
}

/// Localize one violation to its staleness window. For a read that saw
/// `seen`, the window runs from the newest committed write it missed
/// (version above `seen`, committed before the read began) to the read's
/// start — the paper's `t`. Ops without a missed write span their own
/// interval.
fn violation_for(
    key: u64,
    op: &LinOp,
    committed_versions: &[((u64, u32), u64)],
) -> LinViolation {
    let mut window_start = op.start_ns;
    let mut window_end = if op.resp_ns == u64::MAX { op.start_ns } else { op.resp_ns };
    if !op.is_write {
        let missed = committed_versions
            .iter()
            .filter(|&&(v, commit)| v > op.version && commit <= op.start_ns)
            .map(|&(_, commit)| commit)
            .max();
        if let Some(commit) = missed {
            window_start = commit;
            window_end = op.start_ns;
        }
    }
    LinViolation { key, op_id: op.op_id, window_start_ns: window_start, window_end_ns: window_end }
}

/// WGL feasibility of the prefix closing events `0..=upto` (minus the
/// removed set): required ops are the closed ones; every other op that
/// has started is an optional open write (pending reads are dropped).
fn check_prefix(
    ops: &[LinOp],
    events: &[usize],
    upto: usize,
    removed: &FxHashSet<usize>,
    budget: &mut u64,
    nodes: &mut u64,
) -> Feasibility {
    let horizon = ops[events[upto]].resp_ns;
    let mut required = vec![false; ops.len()];
    let mut active = vec![false; ops.len()];
    for &i in &events[..=upto] {
        if !removed.contains(&i) {
            required[i] = true;
            active[i] = true;
        }
    }
    for (i, op) in ops.iter().enumerate() {
        // Writes not yet closed (or removed) participate as optional open
        // ops; pending/removed reads observe nothing.
        if !active[i] && op.is_write && op.start_ns <= horizon {
            active[i] = true;
        }
    }
    // Compact to the active subset, preserving invocation order.
    let idx: Vec<usize> = (0..ops.len()).filter(|&i| active[i]).collect();
    let sub: Vec<Sop> = idx
        .iter()
        .map(|&i| Sop {
            is_write: ops[i].is_write,
            version: ops[i].version,
            start_ns: ops[i].start_ns,
            resp_ns: if required[i] { ops[i].resp_ns } else { u64::MAX },
            required: required[i],
        })
        .collect();
    wgl_search(&sub, budget, nodes)
}

/// One op in a compacted prefix, in invocation order.
#[derive(Debug, Clone, Copy)]
struct Sop {
    is_write: bool,
    version: (u64, u32),
    start_ns: u64,
    resp_ns: u64,
    required: bool,
}

/// One DFS choice point: the write candidates available when the frame
/// was entered, the ops linearized to enter it, and the register value to
/// restore on backtrack.
struct Frame {
    candidates: Vec<u32>,
    next: usize,
    undo: Vec<u32>,
    prev_version: (u64, u32),
}

/// The memoized WGL search proper over a compacted prefix.
fn wgl_search(ops: &[Sop], budget: &mut u64, nodes: &mut u64) -> Feasibility {
    let n = ops.len();
    let mut required_left = ops.iter().filter(|o| o.required).count();
    if required_left == 0 {
        return Feasibility::Feasible;
    }
    // Which reads could still need each optional write's version: the
    // usefulness prune consults this instead of rescanning.
    let mut readers_of: FxHashMap<(u64, u32), Vec<u32>> = FxHashMap::default();
    for (i, op) in ops.iter().enumerate() {
        if !op.is_write && op.version != (0, 0) {
            readers_of.entry(op.version).or_default().push(i as u32);
        }
    }
    let words = n.div_ceil(64);
    let mut linearized = vec![0u64; words];
    let is_lin = |bits: &[u64], i: usize| bits[i / 64] & (1u64 << (i % 64)) != 0;
    let mut cur: (u64, u32) = (0, 0);
    let mut cache: FxHashSet<(Vec<u64>, (u64, u32))> = FxHashSet::default();

    // Eagerly linearize available required reads matching the register;
    // returns the indices taken. Availability only depends on earlier
    // (by invocation) un-linearized ops' responses, so one forward scan
    // with a running minimum finds the whole frontier.
    let eager = |bits: &mut [u64], cur: (u64, u32), required_left: &mut usize| -> Vec<u32> {
        let mut taken = Vec::new();
        loop {
            let mut min_resp = u64::MAX;
            let mut hit = None;
            for (i, op) in ops.iter().enumerate() {
                if is_lin(bits, i) {
                    continue;
                }
                if op.start_ns > min_resp {
                    break; // invocation order: nothing later is available
                }
                if !op.is_write && op.required && op.version == cur {
                    hit = Some(i);
                    break;
                }
                min_resp = min_resp.min(op.resp_ns);
            }
            match hit {
                Some(i) => {
                    bits[i / 64] |= 1u64 << (i % 64);
                    *required_left -= 1;
                    taken.push(i as u32);
                }
                None => return taken,
            }
        }
    };
    // Available un-linearized writes worth trying, in invocation order.
    let candidates = |bits: &[u64]| -> Vec<u32> {
        let mut found = Vec::new();
        let mut min_resp = u64::MAX;
        for (i, op) in ops.iter().enumerate() {
            if is_lin(bits, i) {
                continue;
            }
            if op.start_ns > min_resp {
                break;
            }
            if op.is_write {
                let useful = op.required
                    || readers_of.get(&op.version).is_some_and(|rs| {
                        rs.iter().any(|&r| !is_lin(bits, r as usize))
                    });
                if useful {
                    found.push(i as u32);
                }
            }
            min_resp = min_resp.min(op.resp_ns);
        }
        found
    };

    let root_undo = eager(&mut linearized, cur, &mut required_left);
    if required_left == 0 {
        return Feasibility::Feasible;
    }
    let mut stack = vec![Frame {
        candidates: candidates(&linearized),
        next: 0,
        undo: root_undo,
        prev_version: (0, 0),
    }];
    loop {
        let Some(frame) = stack.last_mut() else {
            return Feasibility::Infeasible;
        };
        if frame.next >= frame.candidates.len() {
            // Every choice failed from here: memoize and backtrack.
            cache.insert((linearized.clone(), cur));
            let frame = stack.pop().expect("frame was just inspected");
            for &i in &frame.undo {
                linearized[i as usize / 64] &= !(1u64 << (i as usize % 64));
                if ops[i as usize].required {
                    required_left += 1;
                }
            }
            cur = frame.prev_version;
            continue;
        }
        let w = frame.candidates[frame.next] as usize;
        frame.next += 1;
        if *budget == 0 {
            return Feasibility::Exhausted;
        }
        *budget -= 1;
        *nodes += 1;
        let prev_version = cur;
        let mut undo = vec![w as u32];
        linearized[w / 64] |= 1u64 << (w % 64);
        if ops[w].required {
            required_left -= 1;
        }
        cur = ops[w].version;
        undo.extend(eager(&mut linearized, cur, &mut required_left));
        if required_left == 0 {
            return Feasibility::Feasible;
        }
        if cache.contains(&(linearized.clone(), cur)) {
            for &i in &undo {
                linearized[i as usize / 64] &= !(1u64 << (i as usize % 64));
                if ops[i as usize].required {
                    required_left += 1;
                }
            }
            cur = prev_version;
            continue;
        }
        let next_candidates = candidates(&linearized);
        stack.push(Frame { candidates: next_candidates, next: 0, undo, prev_version });
    }
}
