//! Jepsen-style offline history checking: an independent oracle for the
//! streaming consistency machinery.
//!
//! The open-loop engine labels staleness *online* (watermark-fed
//! [`GroundTruth`]) and counts session-guarantee violations *streaming*
//! (per-client state updated in completion order). Both are clever enough
//! to be wrong. This module re-derives every verdict from first
//! principles over a recorded [`OpHistory`]:
//!
//! * [`replay_sessions`] — rebuild each client's per-key session state
//!   from the history alone and recount monotonic-reads / read-your-writes
//!   violations (§3.2); the counts must equal the streaming counters
//!   exactly.
//! * [`relabel_reads`] — rebuild the commit history from the recorded
//!   writes (batch path, no watermark), relabel every read, and compare
//!   against the online labels; any mismatch is a bug in the watermark
//!   plumbing.
//! * [`check_convergence`] — after quiescence, every live replica of every
//!   written key must hold the same version, at least as new as the
//!   newest committed one (read repair + hinted handoff + anti-entropy
//!   actually converged).
//!
//! The checker is a test/diagnostic harness: recording a history is
//! O(operations) memory, deliberately trading the engine's O(in-flight)
//! discipline for auditability. Enable it with
//! [`Cluster::enable_history`](crate::Cluster::enable_history) (done for
//! you by [`run_open_loop_checked`](crate::run_open_loop_checked) and the
//! `scenarios --chaos` bench mode).
//!
//! The [`lin`] submodule adds the top of the checker hierarchy: a
//! per-key Wing–Gong linearizability checker with violation-window
//! metrics ([`lin::check_lin`], aggregated here as [`CheckReport::lin`]).

pub mod lin;

pub use lin::{KeyLinResult, KeyLinVerdict, LinCheck, LinOptions, LinViolation};

use crate::client::{ClientStats, CompletedOp};
use crate::cluster::Cluster;
use crate::fxhash::FxHashMap;
use crate::staleness::{GroundTruth, ReadLabel};
use pbs_mc::Mergeable;
use pbs_sim::SimTime;
use pbs_workload::OpKind;

/// One operation as recorded for offline checking.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct HistoryOp {
    /// The completed operation (timed-out ops appear with `finish: None`).
    pub op: CompletedOp,
    /// The online staleness label (labelled reads only).
    pub label: Option<ReadLabel>,
}

/// One crash scheduled on the cluster during the recorded run. The order
/// oracle uses these to discount evidence from wiped replicas: a wiped
/// store legitimately forgets acknowledged writes, so nothing read from
/// (or acked by) such a node can anchor a violation.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct CrashRecord {
    /// The crashed node.
    pub node: u32,
    /// When the crash fired.
    pub at: SimTime,
    /// How long the node stayed down.
    pub down_ms: f64,
    /// Whether the crash wiped the node's store.
    pub wipe: bool,
}

/// The full recorded op history of a run, in drain order (which preserves
/// each client's completion order — the order session guarantees are
/// defined over).
#[derive(Debug, Clone, Default, PartialEq)]
pub struct OpHistory {
    ops: Vec<HistoryOp>,
    crashes: Vec<CrashRecord>,
}

impl OpHistory {
    /// Empty history.
    pub fn new() -> Self {
        Self::default()
    }

    /// Append one recorded operation.
    pub fn push(&mut self, op: CompletedOp, label: Option<ReadLabel>) {
        self.ops.push(HistoryOp { op, label });
    }

    /// The recorded operations, in drain order.
    pub fn ops(&self) -> &[HistoryOp] {
        &self.ops
    }

    /// Attach the run's crash timeline (done by
    /// [`Cluster::take_history`](crate::Cluster::take_history)).
    pub fn set_crashes(&mut self, crashes: Vec<CrashRecord>) {
        self.crashes = crashes;
    }

    /// Every crash scheduled during the recorded run.
    pub fn crashes(&self) -> &[CrashRecord] {
        &self.crashes
    }

    /// Number of recorded operations.
    pub fn len(&self) -> usize {
        self.ops.len()
    }

    /// Whether nothing was recorded.
    pub fn is_empty(&self) -> bool {
        self.ops.is_empty()
    }
}

/// Offline session-guarantee recount vs. the streaming counters.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct SessionCheck {
    /// Reads the offline replay checked (completed reads only).
    pub reads_checked: u64,
    /// Monotonic-reads violations found by the offline replay.
    pub monotonic_violations: u64,
    /// Read-your-writes violations found by the offline replay.
    pub ryw_violations: u64,
    /// Streaming counterpart of `reads_checked`.
    pub streaming_reads_checked: u64,
    /// Streaming counterpart of `monotonic_violations`.
    pub streaming_monotonic: u64,
    /// Streaming counterpart of `ryw_violations`.
    pub streaming_ryw: u64,
}

impl SessionCheck {
    /// Whether the offline replay and the streaming counters agree on all
    /// three counts.
    pub fn agrees(&self) -> bool {
        self.reads_checked == self.streaming_reads_checked
            && self.monotonic_violations == self.streaming_monotonic
            && self.ryw_violations == self.streaming_ryw
    }
}

/// Offline relabelling vs. the online staleness labels.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct LabelCheck {
    /// Reads that carried an online label and were relabelled.
    pub labelled_reads: u64,
    /// Reads whose offline label disagreed with the online one.
    pub mismatches: u64,
    /// Reads the offline relabelling found inconsistent (stale).
    pub stale_reads: u64,
}

/// Post-quiescence replica agreement per written key.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct ConvergenceCheck {
    /// Keys with at least one committed write.
    pub keys_checked: u64,
    /// Keys whose live replicas disagree with each other.
    pub divergent_keys: u64,
    /// Live replicas holding something older than the newest committed
    /// version of their key.
    pub stale_replicas: u64,
}

impl ConvergenceCheck {
    /// Whether every live replica of every written key agreed and was
    /// at least as new as the newest committed version.
    pub fn converged(&self) -> bool {
        self.divergent_keys == 0 && self.stale_replicas == 0
    }
}

/// One per-key ordering violation found by the order oracle, identifying
/// the offending operation and the evidence that convicts it. Sequence
/// numbers use 0 for "empty" (no version).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum OrderViolation {
    /// An acknowledged (or committed-and-settled) write disappeared: a
    /// later read overlapping the write's ack set — or, after quiescence,
    /// a live replica — returned something older.
    LostUpdate {
        /// Key involved.
        key: u64,
        /// The offending read (or, for the final-state rule, the newest
        /// committed write the replica should hold).
        op_id: u64,
        /// The replica whose evidence convicts the violation.
        replica: u32,
        /// Sequence observed (0 = empty).
        seen_seq: u64,
        /// The acknowledged sequence that should have been visible.
        expected_seq: u64,
    },
    /// A replica's exposed version went backwards: two non-overlapping
    /// reads served by the same replica returned a newer then an older
    /// version, impossible for a store that only merges forward.
    NonMonotoneExposure {
        /// Key involved.
        key: u64,
        /// The offending (second) read.
        op_id: u64,
        /// The replica that served both reads.
        replica: u32,
        /// Sequence the second read observed (0 = empty).
        seen_seq: u64,
        /// Sequence the first read had already exposed from that replica.
        expected_seq: u64,
    },
    /// A read returned a version no recorded write ever produced — an
    /// invalid writer id, a sequence from the future, or (when the key's
    /// write set is fully known) a `(seq, writer)` pair matching no write.
    PhantomVersion {
        /// Key involved.
        key: u64,
        /// The offending read.
        op_id: u64,
        /// The sequence the read returned.
        seen_seq: u64,
        /// The writer id the read returned.
        writer: u32,
    },
}

/// Per-key order-oracle verdict: counts per violation class plus the
/// first example of each (deterministic given a deterministic history, so
/// serial and parallel runs of the same schedule produce identical
/// reports).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct OrderCheck {
    /// Completed reads the oracle examined.
    pub reads_checked: u64,
    /// Committed writes anchoring visibility floors.
    pub writes_tracked: u64,
    /// Acknowledged writes that later vanished from view.
    pub lost_updates: u64,
    /// Replica exposures that went backwards.
    pub non_monotone: u64,
    /// Versions no recorded write produced.
    pub phantoms: u64,
    /// First [`OrderViolation::LostUpdate`] found, if any.
    pub first_lost_update: Option<OrderViolation>,
    /// First [`OrderViolation::NonMonotoneExposure`] found, if any.
    pub first_non_monotone: Option<OrderViolation>,
    /// First [`OrderViolation::PhantomVersion`] found, if any.
    pub first_phantom: Option<OrderViolation>,
}

impl OrderCheck {
    /// Total violations across the three classes.
    pub fn violations(&self) -> u64 {
        self.lost_updates + self.non_monotone + self.phantoms
    }
}

/// The combined verdict of one checked run (mergeable across shards).
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct CheckReport {
    /// Session-guarantee recount.
    pub sessions: SessionCheck,
    /// Staleness-label recount.
    pub labels: LabelCheck,
    /// Per-key order-oracle verdict.
    pub order: OrderCheck,
    /// Per-key linearizability verdict with violation windows.
    pub lin: LinCheck,
    /// Replica convergence (when requested — only meaningful after the
    /// run has quiesced with faults cleared).
    pub convergence: Option<ConvergenceCheck>,
    /// Runs merged into this report.
    pub runs: u32,
}

impl CheckReport {
    /// Whether every cross-check passed: streaming and offline session
    /// counts agree, no label mismatches, zero order violations, and
    /// (when checked) replicas converged. Session violations themselves
    /// do **not** make a report unclean — under injected faults staleness
    /// is expected; the checker's job is that both derivations agree on
    /// it. Order violations are different: an acknowledged write must
    /// survive drops, duplicates, reorders, and non-wiping crashes, so
    /// any [`OrderCheck`] violation is a real safety bug (or an injected
    /// protocol mutation doing its job).
    ///
    /// [`LinCheck`] violations are deliberately **excluded** for the same
    /// reason session violations are: partial quorums (R+W ≤ N) violate
    /// linearizability by design — measuring those windows is the point,
    /// not a failure. Strict-quorum runs should additionally gate on
    /// [`LinCheck::all_linearizable`] via [`CheckReport::lin`].
    pub fn is_clean(&self) -> bool {
        self.sessions.agrees()
            && self.labels.mismatches == 0
            && self.order.violations() == 0
            && self.convergence.is_none_or(|c| c.converged())
    }
}

impl Mergeable for CheckReport {
    fn merge(&mut self, other: Self) {
        let s = &mut self.sessions;
        s.reads_checked += other.sessions.reads_checked;
        s.monotonic_violations += other.sessions.monotonic_violations;
        s.ryw_violations += other.sessions.ryw_violations;
        s.streaming_reads_checked += other.sessions.streaming_reads_checked;
        s.streaming_monotonic += other.sessions.streaming_monotonic;
        s.streaming_ryw += other.sessions.streaming_ryw;
        self.labels.labelled_reads += other.labels.labelled_reads;
        self.labels.mismatches += other.labels.mismatches;
        self.labels.stale_reads += other.labels.stale_reads;
        let o = &mut self.order;
        o.reads_checked += other.order.reads_checked;
        o.writes_tracked += other.order.writes_tracked;
        o.lost_updates += other.order.lost_updates;
        o.non_monotone += other.order.non_monotone;
        o.phantoms += other.order.phantoms;
        o.first_lost_update = o.first_lost_update.or(other.order.first_lost_update);
        o.first_non_monotone = o.first_non_monotone.or(other.order.first_non_monotone);
        o.first_phantom = o.first_phantom.or(other.order.first_phantom);
        self.lin.merge(other.lin);
        self.convergence = match (self.convergence, other.convergence) {
            (Some(mut a), Some(b)) => {
                a.keys_checked += b.keys_checked;
                a.divergent_keys += b.divergent_keys;
                a.stale_replicas += b.stale_replicas;
                Some(a)
            }
            (a, b) => a.or(b),
        };
        self.runs += other.runs;
    }
}

/// Recount session-guarantee violations from the history alone and
/// compare against the streaming totals (`streaming` should be the
/// cluster-wide [`ClientStats`] sum).
///
/// The replay mirrors the streaming rules exactly: per `(client, key)`,
/// in completion order; timed-out operations don't touch session state;
/// a write advances the read-your-writes floor only once committed; an
/// empty read counts as sequence 0.
pub fn replay_sessions(history: &OpHistory, streaming: &ClientStats) -> SessionCheck {
    let mut last_read: FxHashMap<(u32, u64), u64> = FxHashMap::default();
    let mut last_write: FxHashMap<(u32, u64), u64> = FxHashMap::default();
    let mut check = SessionCheck {
        streaming_reads_checked: streaming.reads_checked,
        streaming_monotonic: streaming.monotonic_violations,
        streaming_ryw: streaming.ryw_violations,
        ..SessionCheck::default()
    };
    for h in history.ops() {
        let op = &h.op;
        if op.finish.is_none() {
            continue; // timed out: the client never saw a result
        }
        if op.client == u32::MAX {
            // Blocking-harness ops: recorded for the order oracle and the
            // relabelling pass, but not part of any client session (the
            // streaming counters never saw them).
            continue;
        }
        let session = (op.client, op.key);
        match op.kind {
            OpKind::Write => {
                if op.commit.is_some() {
                    let seq = op.seq.expect("completed writes carry their sequence");
                    let floor = last_write.entry(session).or_insert(0);
                    *floor = (*floor).max(seq);
                }
            }
            OpKind::Read => {
                let seen = op.seq.unwrap_or(0);
                check.reads_checked += 1;
                if seen < last_read.get(&session).copied().unwrap_or(0) {
                    check.monotonic_violations += 1;
                }
                if seen < last_write.get(&session).copied().unwrap_or(0) {
                    check.ryw_violations += 1;
                }
                let floor = last_read.entry(session).or_insert(0);
                *floor = (*floor).max(seen);
            }
        }
    }
    check
}

/// Rebuild the commit history from the recorded writes and relabel every
/// online-labelled read through the batch [`GroundTruth`] path — no
/// watermark, no windowing. Any disagreement with the online label is a
/// mismatch (a bug in the online machinery, never an artefact of faults:
/// both derivations see the same committed writes).
pub fn relabel_reads(history: &OpHistory) -> LabelCheck {
    let mut commits: Vec<(SimTime, u64, u64)> = history
        .ops()
        .iter()
        .filter_map(|h| {
            let op = &h.op;
            match (op.kind, op.commit) {
                (OpKind::Write, Some(ct)) => {
                    Some((ct, op.key, op.seq.expect("committed writes carry their sequence")))
                }
                _ => None,
            }
        })
        .collect();
    // Stable sort: equal commit times keep recorded (event) order, the
    // same tie-break the online ingestion path uses.
    commits.sort_by_key(|&(t, _, _)| t);
    let mut gt = GroundTruth::new();
    for (commit, key, seq) in commits {
        gt.record_commit(key, seq, commit);
    }
    let mut check = LabelCheck::default();
    for h in history.ops() {
        let (op, Some(online)) = (&h.op, h.label) else {
            continue;
        };
        debug_assert_eq!(op.kind, OpKind::Read, "only reads carry labels");
        check.labelled_reads += 1;
        let offline = gt.label_read(op.key, op.start, op.seq);
        if !offline.consistent {
            check.stale_reads += 1;
        }
        if offline != online {
            check.mismatches += 1;
        }
    }
    check
}

/// Verify that, after quiescence, all live replicas of every written key
/// agree — and agree on something at least as new as the newest committed
/// version. Only meaningful once in-flight traffic has drained and any
/// fault profile has been cleared long enough for anti-entropy to run;
/// with active message drops, divergence is expected, not a bug.
pub fn check_convergence(cluster: &Cluster) -> ConvergenceCheck {
    let gt = cluster.ground_truth();
    let mut check = ConvergenceCheck::default();
    for key in gt.tracked_keys() {
        let latest = gt.latest_committed_at(key, SimTime::MAX).unwrap_or(0);
        let stored: Vec<u64> = cluster
            .replicas_of(key)
            .into_iter()
            .filter(|&n| !cluster.node(n).is_down())
            .map(|n| cluster.node(n).stored_version(key).map_or(0, |v| v.seq))
            .collect();
        let Some(&first) = stored.first() else {
            continue; // every replica down: nothing to compare
        };
        check.keys_checked += 1;
        if stored.iter().any(|&s| s != first) {
            check.divergent_keys += 1;
        }
        check.stale_replicas += stored.iter().filter(|&&s| s < latest).count() as u64;
    }
    check
}

/// One committed write, as the order oracle tracks it.
#[derive(Debug, Clone, Copy)]
struct TrackedWrite {
    op_id: u64,
    seq: u64,
    writer: u32,
    commit_nanos: u64,
    acked: u64,
}

/// One completed read, as the order oracle examines it.
#[derive(Debug, Clone, Copy)]
struct TrackedRead {
    op_id: u64,
    start_nanos: u64,
    finish_nanos: u64,
    /// Returned version as `(seq, writer)`; `(0, 0)` = empty read, which
    /// orders below every real version (seqs start at 1).
    seen: (u64, u32),
    source: Option<u32>,
    responders: u64,
}

#[derive(Debug, Default)]
struct KeyAudit {
    /// `(seq, writer)` of every write whose version the history knows.
    known: Vec<(u64, u32)>,
    /// A write on this key timed out client-side, so its version is
    /// unknown — the phantom set-membership rule must stand down.
    incomplete: bool,
    committed: Vec<TrackedWrite>,
    reads: Vec<TrackedRead>,
}

/// The per-key order oracle (tentpole of the adversarial audit): rebuild
/// each key's committed version order from the recorded history and
/// verify every read is consistent with a register that never loses or
/// reorders acknowledged writes.
///
/// Three rules, each sound under arbitrary drops, duplicates, reorders,
/// slow nodes, disk lag, clock drift, and non-wiping crashes — a
/// violation is a protocol bug, never a fault artefact:
///
/// * **Acked visibility** (`LostUpdate`): a committed write's ack mask
///   certifies which replicas applied its version before the commit
///   instant (acks are sent only after the apply). A read issued after
///   the commit whose first-`R` responder set intersects that mask must
///   return at least that version — replica stores only merge forward.
/// * **Monotone exposure** (`NonMonotoneExposure`): once a read sources a
///   version from replica `X`, any later (non-overlapping) read whose
///   responder set includes `X` must return at least that version.
/// * **Version provenance** (`PhantomVersion`): a returned version must
///   carry a valid writer id, a sequence no later than the read's finish
///   (sequences are write-start instants), and — when every write on the
///   key completed client-side — match some recorded write exactly.
///
/// Evidence from wiped replicas is discounted wholesale: a wiped store
/// legitimately forgets acknowledged writes. Reads from nodes at id ≥ 64
/// carry no mask bits and simply contribute no evidence.
pub fn check_order(history: &OpHistory, nodes: u32) -> OrderCheck {
    let wiped: u64 = history
        .crashes()
        .iter()
        .filter(|c| c.wipe && c.node < 64)
        .fold(0, |m, c| m | (1u64 << c.node));
    let mut keys: FxHashMap<u64, KeyAudit> = FxHashMap::default();
    let mut order: Vec<u64> = Vec::new(); // deterministic key iteration
    let mut check = OrderCheck::default();
    for h in history.ops() {
        let op = &h.op;
        if !keys.contains_key(&op.key) {
            order.push(op.key);
        }
        let audit = keys.entry(op.key).or_default();
        match op.kind {
            OpKind::Write => match op.seq {
                None => audit.incomplete = true,
                Some(seq) => {
                    let writer = op.writer.expect("writes with a sequence carry their writer");
                    audit.known.push((seq, writer));
                    if let Some(ct) = op.commit {
                        check.writes_tracked += 1;
                        audit.committed.push(TrackedWrite {
                            op_id: op.op_id,
                            seq,
                            writer,
                            commit_nanos: ct.as_nanos(),
                            acked: op.quorum_mask & !wiped,
                        });
                    }
                }
            },
            OpKind::Read => {
                let Some(finish) = op.finish else {
                    continue; // timed out: nothing was exposed
                };
                check.reads_checked += 1;
                audit.reads.push(TrackedRead {
                    op_id: op.op_id,
                    start_nanos: op.start.as_nanos(),
                    finish_nanos: finish.as_nanos(),
                    seen: match op.seq {
                        Some(seq) => (seq, op.writer.expect("non-empty reads carry a writer")),
                        None => (0, 0),
                    },
                    source: op.source,
                    responders: op.quorum_mask & !wiped,
                });
            }
        }
    }

    for key in order {
        let audit = keys.get_mut(&key).expect("key was just inserted");
        // Examine reads in issue order (deterministic tie-break by op id):
        // exposures accumulate forward in time, so each read is checked
        // against every exposure that provably precedes it.
        audit.reads.sort_by_key(|r| (r.start_nanos, r.op_id));
        // Exposures: (replica, version, finish-of-exposing-read).
        let mut exposures: Vec<(u32, (u64, u32), u64)> = Vec::new();
        for r in &audit.reads {
            let (seen_seq, seen_writer) = r.seen;
            if seen_seq > 0 {
                // Phantom rules first: a corrupt version must not poison
                // the visibility floors below.
                let impossible_writer = seen_writer >= nodes;
                let from_the_future = seen_seq > r.finish_nanos + 1;
                let unknown_version =
                    !audit.incomplete && !audit.known.contains(&(seen_seq, seen_writer));
                if impossible_writer || from_the_future || unknown_version {
                    check.phantoms += 1;
                    check.first_phantom = check.first_phantom.or(Some(
                        OrderViolation::PhantomVersion {
                            key,
                            op_id: r.op_id,
                            seen_seq,
                            writer: seen_writer,
                        },
                    ));
                    continue;
                }
            }
            // Acked visibility: the strongest committed write whose ack
            // set intersects this read's responders and whose commit
            // precedes the read's start.
            let mut lu_floor: Option<(u64, u32, u32, u64)> = None; // (seq, writer, replica, op)
            for w in &audit.committed {
                if w.commit_nanos < r.start_nanos
                    && w.acked & r.responders != 0
                    && lu_floor.is_none_or(|(s, wr, _, _)| (w.seq, w.writer) > (s, wr))
                {
                    let replica = (w.acked & r.responders).trailing_zeros();
                    lu_floor = Some((w.seq, w.writer, replica, w.op_id));
                }
            }
            if let Some((floor_seq, floor_writer, replica, _)) = lu_floor {
                if r.seen < (floor_seq, floor_writer) {
                    check.lost_updates += 1;
                    check.first_lost_update =
                        check.first_lost_update.or(Some(OrderViolation::LostUpdate {
                            key,
                            op_id: r.op_id,
                            replica,
                            seen_seq,
                            expected_seq: floor_seq,
                        }));
                    continue; // one violation per read, strongest class
                }
            }
            // Monotone exposure: the strongest version any of this read's
            // responders is known (via an earlier read) to have held.
            let mut nm_floor: Option<((u64, u32), u32)> = None;
            for &(replica, version, exposed_finish) in &exposures {
                if exposed_finish <= r.start_nanos
                    && r.responders & (1u64 << replica) != 0
                    && nm_floor.is_none_or(|(v, _)| version > v)
                {
                    nm_floor = Some((version, replica));
                }
            }
            if let Some((floor, replica)) = nm_floor {
                if r.seen < floor {
                    check.non_monotone += 1;
                    check.first_non_monotone =
                        check.first_non_monotone.or(Some(OrderViolation::NonMonotoneExposure {
                            key,
                            op_id: r.op_id,
                            replica,
                            seen_seq,
                            expected_seq: floor.0,
                        }));
                    continue;
                }
            }
            // This read becomes evidence: its source replica held `seen`
            // at some instant before the read finished.
            if let Some(source) = r.source {
                if seen_seq > 0 && source < 64 && wiped & (1u64 << source) == 0 {
                    exposures.push((source, r.seen, r.finish_nanos));
                }
            }
        }
    }
    check
}

/// The order oracle's final-state rule, gated like [`check_convergence`]
/// (quiesced run, faults cleared, healing mechanisms enabled): every
/// live, never-wiped current replica of a key must store at least the
/// newest committed version — anything older is an acknowledged write
/// that the healing paths (read repair, hint replay, anti-entropy) lost.
fn check_final_state(history: &OpHistory, cluster: &Cluster, check: &mut OrderCheck) {
    let wiped: u64 = history
        .crashes()
        .iter()
        .filter(|c| c.wipe && c.node < 64)
        .fold(0, |m, c| m | (1u64 << c.node));
    let mut latest: FxHashMap<u64, (u64, u32, u64)> = FxHashMap::default(); // key → (seq, writer, op)
    let mut order: Vec<u64> = Vec::new();
    for h in history.ops() {
        let op = &h.op;
        if !matches!(op.kind, OpKind::Write) || op.commit.is_none() {
            continue;
        }
        let seq = op.seq.expect("committed writes carry their sequence");
        let writer = op.writer.expect("committed writes carry their writer");
        match latest.entry(op.key) {
            std::collections::hash_map::Entry::Vacant(e) => {
                order.push(op.key);
                e.insert((seq, writer, op.op_id));
            }
            std::collections::hash_map::Entry::Occupied(mut e) => {
                if (seq, writer) > (e.get().0, e.get().1) {
                    e.insert((seq, writer, op.op_id));
                }
            }
        }
    }
    for key in order {
        let (seq, writer, op_id) = latest[&key];
        for replica in cluster.replicas_of(key) {
            if cluster.node(replica).is_down()
                || (replica < 64 && wiped & (1u64 << replica) != 0)
            {
                continue;
            }
            let stored = cluster
                .node(replica)
                .stored_version(key)
                .map_or((0, 0), |v| (v.seq, v.writer));
            if stored < (seq, writer) {
                check.lost_updates += 1;
                check.first_lost_update =
                    check.first_lost_update.or(Some(OrderViolation::LostUpdate {
                        key,
                        op_id,
                        replica: replica as u32,
                        seen_seq: stored.0,
                        expected_seq: seq,
                    }));
            }
        }
    }
}

/// Run every offline check against a finished cluster: session replay vs.
/// the streaming counters, label recount, the per-key order oracle, the
/// per-key linearizability checker (default budgets — use
/// [`check_run_with`] to tune them), and (optionally) convergence plus
/// the oracle's final-state rule.
pub fn check_run(history: &OpHistory, cluster: &Cluster, convergence: bool) -> CheckReport {
    check_run_with(history, cluster, convergence, &LinOptions::default())
}

/// [`check_run`] with explicit linearizability-search budgets.
pub fn check_run_with(
    history: &OpHistory,
    cluster: &Cluster,
    convergence: bool,
    lin_opts: &LinOptions,
) -> CheckReport {
    let streaming = cluster.client_stats();
    let mut order = check_order(history, cluster.node_count() as u32);
    if convergence {
        check_final_state(history, cluster, &mut order);
    }
    CheckReport {
        sessions: replay_sessions(history, &streaming),
        labels: relabel_reads(history),
        order,
        lin: lin::check_lin(history, lin_opts),
        convergence: convergence.then(|| check_convergence(cluster)),
        runs: 1,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn t(ms: f64) -> SimTime {
        SimTime::from_ms(ms)
    }

    fn write(client: u32, key: u64, seq: u64, start: f64, commit: Option<f64>) -> CompletedOp {
        CompletedOp {
            op_id: seq,
            client,
            kind: OpKind::Write,
            key,
            start: t(start),
            finish: commit.map(t),
            seq: Some(seq),
            commit: commit.map(t),
            writer: Some(0),
            source: None,
            quorum_mask: 0,
        }
    }

    fn read(client: u32, key: u64, seq: Option<u64>, start: f64, finish: f64) -> CompletedOp {
        CompletedOp {
            op_id: 1_000 + start as u64,
            client,
            kind: OpKind::Read,
            key,
            start: t(start),
            finish: Some(t(finish)),
            seq,
            commit: None,
            writer: seq.map(|_| 0),
            source: None,
            quorum_mask: 0,
        }
    }

    /// A committed write with explicit provenance: `writer` assigned the
    /// version, the replicas in `acked` applied it before the commit.
    fn write_acked(
        key: u64,
        seq: u64,
        writer: u32,
        start: f64,
        commit: f64,
        acked: u64,
    ) -> CompletedOp {
        let mut op = write(0, key, seq, start, Some(commit));
        op.writer = Some(writer);
        op.quorum_mask = acked;
        op
    }

    /// A completed read with explicit provenance: served the version
    /// `(seq, writer)` sourced at `source`, with `responders` answering.
    fn read_from(
        key: u64,
        seq: Option<u64>,
        writer: u32,
        start: f64,
        finish: f64,
        source: Option<u32>,
        responders: u64,
    ) -> CompletedOp {
        let mut op = read(0, key, seq, start, finish);
        op.writer = seq.map(|_| writer);
        op.source = source;
        op.quorum_mask = responders;
        op
    }

    #[test]
    fn session_replay_counts_violations_per_client() {
        let mut h = OpHistory::new();
        h.push(write(0, 1, 1, 0.0, Some(1.0)), None);
        h.push(read(0, 1, Some(1), 2.0, 3.0), None); // fine
        h.push(read(0, 1, None, 4.0, 5.0), None); // MR + RYW violation
        h.push(read(1, 1, None, 4.0, 5.0), None); // other client: no state, fine
        let streaming = ClientStats {
            reads_checked: 3,
            monotonic_violations: 1,
            ryw_violations: 1,
            ..ClientStats::default()
        };
        let check = replay_sessions(&h, &streaming);
        assert_eq!(check.reads_checked, 3);
        assert_eq!(check.monotonic_violations, 1);
        assert_eq!(check.ryw_violations, 1);
        assert!(check.agrees());
        let off = replay_sessions(&h, &ClientStats::default());
        assert!(!off.agrees(), "disagreement with zeroed streaming counters is detected");
    }

    #[test]
    fn session_replay_skips_timeouts_and_uncommitted_writes() {
        let mut h = OpHistory::new();
        h.push(write(0, 1, 5, 0.0, None), None); // failed write: no RYW floor
        let mut timed_out = read(0, 1, None, 1.0, 0.0);
        timed_out.finish = None;
        timed_out.seq = None;
        h.push(timed_out, None); // timed out: not checked
        h.push(read(0, 1, None, 2.0, 3.0), None); // empty read, no floor: fine
        let check = replay_sessions(&h, &ClientStats::default());
        assert_eq!(check.reads_checked, 1);
        assert_eq!(check.monotonic_violations, 0);
        assert_eq!(check.ryw_violations, 0);
    }

    #[test]
    fn relabel_matches_correct_online_labels_and_flags_wrong_ones() {
        let consistent = ReadLabel { consistent: true, versions_behind: 0 };
        let stale1 = ReadLabel { consistent: false, versions_behind: 1 };
        let mut h = OpHistory::new();
        h.push(write(0, 7, 1, 0.0, Some(10.0)), None);
        h.push(write(0, 7, 2, 11.0, Some(20.0)), None);
        h.push(read(1, 7, Some(2), 25.0, 26.0), Some(consistent));
        h.push(read(1, 7, Some(1), 25.0, 26.0), Some(stale1));
        let check = relabel_reads(&h);
        assert_eq!(check.labelled_reads, 2);
        assert_eq!(check.stale_reads, 1);
        assert_eq!(check.mismatches, 0);

        // Corrupt an online label: the offline pass must catch it.
        let mut bad = OpHistory::new();
        bad.push(write(0, 7, 1, 0.0, Some(10.0)), None);
        bad.push(read(1, 7, None, 15.0, 16.0), Some(consistent));
        let check = relabel_reads(&bad);
        assert_eq!(check.mismatches, 1);
    }

    #[test]
    fn merged_reports_sum() {
        let mut a = CheckReport {
            sessions: SessionCheck { reads_checked: 2, streaming_reads_checked: 2, ..Default::default() },
            labels: LabelCheck { labelled_reads: 2, ..Default::default() },
            order: OrderCheck { reads_checked: 2, writes_tracked: 1, ..Default::default() },
            lin: LinCheck { keys_checked: 1, linearizable_keys: 1, ..Default::default() },
            convergence: Some(ConvergenceCheck { keys_checked: 3, ..Default::default() }),
            runs: 1,
        };
        let b = a.clone();
        a.merge(b);
        assert_eq!(a.runs, 2);
        assert_eq!(a.sessions.reads_checked, 4);
        assert_eq!(a.labels.labelled_reads, 4);
        assert_eq!(a.order.reads_checked, 4);
        assert_eq!(a.order.writes_tracked, 2);
        assert_eq!(a.lin.keys_checked, 2);
        assert_eq!(a.lin.linearizable_keys, 2);
        assert_eq!(a.convergence.unwrap().keys_checked, 6);
        assert!(a.is_clean());
    }

    #[test]
    fn session_replay_skips_blocking_harness_ops() {
        let mut h = OpHistory::new();
        h.push(write(u32::MAX, 1, 1, 0.0, Some(1.0)), None);
        h.push(read(u32::MAX, 1, None, 2.0, 3.0), None); // would be MR+RYW if counted
        let check = replay_sessions(&h, &ClientStats::default());
        assert_eq!(check.reads_checked, 0);
        assert!(check.agrees(), "sentinel-client ops never touch session state");
    }

    // ----- the order oracle -----

    #[test]
    fn order_oracle_accepts_a_clean_register_history() {
        let mut h = OpHistory::new();
        h.push(write_acked(1, 10, 0, 0.0, 1.0, 0b011), None);
        h.push(read_from(1, Some(10), 0, 2.0, 3.0, Some(1), 0b010), None);
        h.push(write_acked(1, 20, 2, 4.0, 5.0, 0b110), None);
        h.push(read_from(1, Some(20), 2, 6.0, 7.0, Some(2), 0b100), None);
        // A read overlapping nothing acked may be empty (different key).
        h.push(read_from(2, None, 0, 6.0, 7.0, None, 0b001), None);
        let check = check_order(&h, 3);
        assert_eq!(check.violations(), 0);
        assert_eq!(check.reads_checked, 3);
        assert_eq!(check.writes_tracked, 2);
    }

    #[test]
    fn order_oracle_flags_a_lost_update() {
        let mut h = OpHistory::new();
        // Write acked by replicas {0, 1}, committed at 5 ms.
        h.push(write_acked(1, 10, 0, 0.0, 5.0, 0b011), None);
        // A later read answered by replica 1 returns empty: the
        // acknowledged write vanished.
        h.push(read_from(1, None, 0, 6.0, 7.0, None, 0b010), None);
        let check = check_order(&h, 3);
        assert_eq!(check.lost_updates, 1);
        assert_eq!(check.non_monotone, 0);
        assert_eq!(check.phantoms, 0);
        match check.first_lost_update {
            Some(OrderViolation::LostUpdate { key: 1, replica: 1, seen_seq: 0, expected_seq: 10, .. }) => {}
            other => panic!("wrong violation: {other:?}"),
        }
        // The same read answered by the non-acking replica 2 is fine.
        let mut h = OpHistory::new();
        h.push(write_acked(1, 10, 0, 0.0, 5.0, 0b011), None);
        h.push(read_from(1, None, 0, 6.0, 7.0, None, 0b100), None);
        assert_eq!(check_order(&h, 3).violations(), 0);
        // And a read that *started* before the commit is unconstrained.
        let mut h = OpHistory::new();
        h.push(write_acked(1, 10, 0, 0.0, 5.0, 0b011), None);
        h.push(read_from(1, None, 0, 4.0, 7.0, None, 0b010), None);
        assert_eq!(check_order(&h, 3).violations(), 0);
    }

    #[test]
    fn order_oracle_flags_non_monotone_exposure() {
        let mut h = OpHistory::new();
        h.push(write_acked(1, 10, 0, 0.0, 1.0, 0b001), None);
        // Replica 2 exposed seq 10 (uncommitted elsewhere — say repair
        // landed it there), then a later read from replica 2 sees empty.
        h.push(read_from(1, Some(10), 0, 2.0, 3.0, Some(2), 0b100), None);
        h.push(read_from(1, None, 0, 4.0, 5.0, None, 0b100), None);
        let check = check_order(&h, 3);
        assert_eq!(check.non_monotone, 1);
        assert_eq!(check.lost_updates, 0);
        match check.first_non_monotone {
            Some(OrderViolation::NonMonotoneExposure { replica: 2, seen_seq: 0, expected_seq: 10, .. }) => {}
            other => panic!("wrong violation: {other:?}"),
        }
        // Overlapping reads constrain nothing.
        let mut h = OpHistory::new();
        h.push(write_acked(1, 10, 0, 0.0, 1.0, 0b001), None);
        h.push(read_from(1, Some(10), 0, 2.0, 6.0, Some(2), 0b100), None);
        h.push(read_from(1, None, 0, 4.0, 5.0, None, 0b100), None);
        assert_eq!(check_order(&h, 3).violations(), 0);
    }

    #[test]
    fn order_oracle_flags_phantom_versions() {
        // Invalid writer id.
        let mut h = OpHistory::new();
        h.push(write_acked(1, 10, 0, 0.0, 1.0, 0b001), None);
        h.push(read_from(1, Some(10), 7, 2.0, 3.0, Some(0), 0b001), None);
        let check = check_order(&h, 3);
        assert_eq!(check.phantoms, 1, "writer 7 in a 3-node cluster");
        // Sequence from the future (far beyond the read's finish).
        let mut h = OpHistory::new();
        h.push(write_acked(1, 10, 0, 0.0, 1.0, 0b001), None);
        h.push(read_from(1, Some(1 << 46), 0, 2.0, 3.0, Some(0), 0b001), None);
        assert_eq!(check_order(&h, 3).phantoms, 1);
        // A version matching no known write, on a complete key.
        let mut h = OpHistory::new();
        h.push(write_acked(1, 10, 0, 0.0, 1.0, 0b001), None);
        h.push(read_from(1, Some(12), 0, 2.0, 3.0, Some(0), 0b001), None);
        let check = check_order(&h, 3);
        assert_eq!(check.phantoms, 1);
        match check.first_phantom {
            Some(OrderViolation::PhantomVersion { key: 1, seen_seq: 12, writer: 0, .. }) => {}
            other => panic!("wrong violation: {other:?}"),
        }
        // The same unknown version is tolerated once a write on the key
        // timed out (its version may be exactly this one).
        let mut h = OpHistory::new();
        h.push(write_acked(1, 10, 0, 0.0, 1.0, 0b001), None);
        let mut timed_out = write(0, 1, 0, 1.5, None);
        timed_out.seq = None;
        timed_out.writer = None;
        timed_out.finish = None;
        h.push(timed_out, None);
        h.push(read_from(1, Some(12), 0, 2.0, 3.0, Some(0), 0b001), None);
        assert_eq!(check_order(&h, 3).phantoms, 0);
    }

    #[test]
    fn order_oracle_discounts_wiped_replicas() {
        let mut h = OpHistory::new();
        h.push(write_acked(1, 10, 0, 0.0, 5.0, 0b011), None);
        h.push(read_from(1, None, 0, 20.0, 21.0, None, 0b010), None);
        // Without the crash this is a lost update (previous test); a wipe
        // of replica 1 between commit and read legitimises it.
        h.set_crashes(vec![CrashRecord { node: 1, at: t(10.0), down_ms: 1.0, wipe: true }]);
        assert_eq!(check_order(&h, 3).violations(), 0);
        // A non-wiping crash keeps the store, so the claim stands.
        h.set_crashes(vec![CrashRecord { node: 1, at: t(10.0), down_ms: 1.0, wipe: false }]);
        assert_eq!(check_order(&h, 3).lost_updates, 1);
    }
}
