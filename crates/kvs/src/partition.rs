//! Partitioning a cluster's actors across parallel-engine workers.
//!
//! The conservative parallel engine (`pbs_sim::pdes`) requires every
//! cross-partition message to respect the lookahead: client↔coordinator
//! traffic is zero-delay, so a client **must** live on the same worker as
//! every coordinator it can pick. A [`PartitionPlan`] therefore assigns
//! each worker a contiguous range of node ids plus the clients affined to
//! it (round-robin by client index), and clients restrict their
//! coordinator picks to their partition's node range.
//!
//! Replica *sets* are free to span partitions — replica traffic flows
//! through the network model, whose per-leg support minimum
//! ([`NetworkModel::min_cross_delay_ms`](crate::NetworkModel::min_cross_delay_ms))
//! is exactly the engine's lookahead.
//!
//! The plan is a pure function of `(nodes, workers)`, so a serial run
//! handed the same plan (see
//! [`EngineKind::SerialPartitioned`](crate::cluster::EngineKind)) issues
//! bit-identical operations — the reference for equivalence checks.

use std::ops::Range;

/// A static assignment of node ids (and, by affinity, client indices) to
/// parallel-engine workers: worker `w` owns the contiguous node range
/// `[w·N/W, (w+1)·N/W)` and every client whose index ≡ `w (mod W)`.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct PartitionPlan {
    /// Partition boundaries: worker `w` owns nodes
    /// `bounds[w] .. bounds[w + 1]`. `bounds.len() == workers + 1`,
    /// `bounds[0] == 0`, `bounds[workers] == nodes`.
    bounds: Vec<u32>,
}

impl PartitionPlan {
    /// Split `nodes` node ids into `workers` contiguous, near-equal,
    /// nonempty ranges. Every worker must own at least one node (a
    /// nodeless worker could host no clients), so `workers ≤ nodes`.
    pub fn contiguous(nodes: u32, workers: usize) -> Self {
        assert!(workers >= 1, "a plan needs at least one worker");
        assert!(
            workers as u32 <= nodes,
            "cannot split {nodes} nodes across {workers} workers: every worker needs \
             at least one node to host clients"
        );
        let bounds = (0..=workers as u64)
            .map(|w| (w * nodes as u64 / workers as u64) as u32)
            .collect();
        Self { bounds }
    }

    /// Number of workers.
    pub fn workers(&self) -> usize {
        self.bounds.len() - 1
    }

    /// Total nodes covered.
    pub fn nodes(&self) -> u32 {
        *self.bounds.last().expect("bounds nonempty")
    }

    /// The contiguous node-id range owned by `worker`.
    pub fn node_range(&self, worker: usize) -> Range<usize> {
        self.bounds[worker] as usize..self.bounds[worker + 1] as usize
    }

    /// The worker owning `node`.
    pub fn worker_of_node(&self, node: u32) -> usize {
        debug_assert!(node < self.nodes(), "node {node} outside the plan");
        // bounds is sorted; the owner is the last boundary ≤ node.
        self.bounds.partition_point(|&b| b <= node) - 1
    }

    /// The worker hosting client `index` (round-robin, so client load
    /// spreads evenly regardless of the client count).
    pub fn worker_of_client(&self, index: u32) -> usize {
        index as usize % self.workers()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Every node belongs to exactly one partition, ranges are contiguous
    /// and nonempty, and `worker_of_node` agrees with the ranges.
    #[test]
    fn plan_covers_every_node_exactly_once() {
        for nodes in 1..=12u32 {
            for workers in 1..=nodes as usize {
                let plan = PartitionPlan::contiguous(nodes, workers);
                assert_eq!(plan.workers(), workers);
                assert_eq!(plan.nodes(), nodes);
                let mut seen = vec![0u32; nodes as usize];
                for w in 0..workers {
                    let range = plan.node_range(w);
                    assert!(!range.is_empty(), "{nodes} nodes / {workers} workers: empty worker {w}");
                    for node in range {
                        seen[node] += 1;
                        assert_eq!(plan.worker_of_node(node as u32), w);
                    }
                }
                assert!(seen.iter().all(|&c| c == 1), "{nodes}/{workers}: {seen:?}");
            }
        }
    }

    #[test]
    fn split_is_near_equal() {
        let plan = PartitionPlan::contiguous(10, 4);
        let sizes: Vec<usize> = (0..4).map(|w| plan.node_range(w).len()).collect();
        assert_eq!(sizes.iter().sum::<usize>(), 10);
        assert!(sizes.iter().all(|&s| s == 2 || s == 3), "near-equal split: {sizes:?}");
    }

    #[test]
    fn one_worker_owns_everything() {
        let plan = PartitionPlan::contiguous(5, 1);
        assert_eq!(plan.node_range(0), 0..5);
        assert_eq!(plan.worker_of_client(7), 0);
    }

    #[test]
    fn clients_round_robin_across_workers() {
        let plan = PartitionPlan::contiguous(8, 3);
        let owners: Vec<usize> = (0..7).map(|i| plan.worker_of_client(i)).collect();
        assert_eq!(owners, vec![0, 1, 2, 0, 1, 2, 0]);
    }

    #[test]
    #[should_panic(expected = "at least one node")]
    fn more_workers_than_nodes_is_rejected() {
        let _ = PartitionPlan::contiguous(3, 4);
    }
}
