//! In-sim open-loop clients: a struct-of-arrays table, one actor per worker.
//!
//! Earlier revisions gave every client its own actor with four boxed hash
//! maps; at a million clients that is hundreds of bytes of map headers and
//! one pending timer event *each* before any work happens. This module
//! replaces that with a [`ClientTable`]: **one actor per PDES worker** that
//! owns all of that worker's clients as parallel column vectors, so the
//! marginal cost of a client is roughly one cache line:
//!
//! | column                               | bytes/client |
//! |--------------------------------------|--------------|
//! | RNG state (xoshiro256++)             | 32           |
//! | stream clock + restart offset        | 16           |
//! | pre-pulled arrival (key + flags)     | 9            |
//! | local op counter + arrival gen       | 5            |
//! | in-flight count + peak               | 8            |
//! | inline in-flight slot (id/key/start) | 20           |
//! | arrival-heap entry                   | 16           |
//!
//! ≈ 106 bytes/client of table state. Everything else is shared per table:
//! an in-flight **overflow** map for the rare client holding more than one
//! concurrent op, a single open-addressing session arena for
//! `last_read_seq`/`last_write_seq` (two map headers per client before),
//! one bounded completed-op buffer the driver drains each window, and one
//! arrival heap so the whole table keeps **one armed timer** in the event
//! queue instead of one per client.
//!
//! Determinism rules (the PDES equivalence tests pin these):
//!
//! * Per-client RNG streams are seeded from `(cluster_seed, client index)`
//!   exactly as before — draw sequences per client are unchanged.
//! * Per client, draws happen in the fixed order *coordinator pick* (on
//!   issue), then *gap, kind, key* (on the next stream pull) — identical
//!   for boxed and shared sources.
//! * The arrival heap pops by `(time, row, generation)`, so simultaneous
//!   arrivals within a table fire in client-index order; cross-table order
//!   at equal instants follows actor-lane order like any other actor pair.
//! * Clients are pinned to their partition's node range, so client↔node
//!   traffic never crosses a PDES worker boundary.

use crate::fxhash::FxHashMap;
use crate::messages::Msg;
use crate::node::{ClientResult, DownTracker};
use pbs_sim::{Actor, Context, Event, SimDuration, SimTime};
use pbs_workload::{OpKind, OpSource, SharedOpSource};
use rand::rngs::StdRng;
use rand::SeedableRng;
use std::cmp::Reverse;
use std::collections::BinaryHeap;
use std::sync::Arc;

// Client-side timer tags (same top-byte scheme as the node's).
const TAG_KIND_SHIFT: u64 = 56;
const CKIND_ARRIVAL: u64 = 1;
const CKIND_OP_TIMEOUT: u64 = 2;
const CKIND_PROBE_READ: u64 = 3;

fn ctag(kind: u64, op: u64) -> u64 {
    debug_assert!(op < (1 << TAG_KIND_SHIFT));
    (kind << TAG_KIND_SHIFT) | op
}

fn ctag_kind(t: u64) -> u64 {
    t >> TAG_KIND_SHIFT
}

fn ctag_op(t: u64) -> u64 {
    t & ((1 << TAG_KIND_SHIFT) - 1)
}

/// Bits reserved for a client's local operation counter; the client index
/// occupies the bits above, keeping op ids globally unique across clients
/// *and* disjoint from the blocking harness's low id space.
const CLIENT_OP_SHIFT: u64 = 32;

/// Maximum number of clients per cluster: op ids must fit the 56-bit
/// timer-tag op space, leaving 24 bits of client index above the 32-bit
/// local counter — ~16.7M clients.
pub const MAX_CLIENTS: u32 = (1 << (TAG_KIND_SHIFT - CLIENT_OP_SHIFT)) as u32 - 1;

/// Pack a `(client index, local counter)` pair into a global op id.
fn pack_op(index: u32, local: u32) -> u64 {
    ((index as u64 + 1) << CLIENT_OP_SHIFT) | local as u64
}

/// The client index encoded in an op id (or probe token).
fn client_of(op_id: u64) -> u32 {
    (op_id >> CLIENT_OP_SHIFT) as u32 - 1
}

/// The low local counter of an op id.
fn local_of(op_id: u64) -> u32 {
    (op_id & ((1 << CLIENT_OP_SHIFT) - 1)) as u32
}

/// Per-client knobs.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ClientOptions {
    /// Client-side operation timeout: an op with no result by then is
    /// recorded as timed out (late results are ignored).
    pub op_timeout_ms: f64,
    /// In-flight cap: arrivals while the table is full are shed (counted
    /// in [`ClientStats::shed`]). Bounds client memory under overload.
    pub max_in_flight: usize,
    /// Probe mode: every *committed* write schedules a read of the same
    /// key this many ms after its commit (the §5.2 write→read probe pair),
    /// in addition to any reads the op source emits.
    pub probe_read_offset_ms: Option<f64>,
    /// Capacity of the completed-op buffer the driver drains each window
    /// (per worker table); overflow is counted in
    /// [`ClientStats::dropped_results`].
    pub result_capacity: usize,
}

impl Default for ClientOptions {
    fn default() -> Self {
        Self {
            op_timeout_ms: 10_000.0,
            max_in_flight: 1_024,
            probe_read_offset_ms: None,
            result_capacity: 1 << 16,
        }
    }
}

/// Cumulative client counters (summed over a table's clients).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct ClientStats {
    /// Operations issued to a coordinator.
    pub issued: u64,
    /// Arrivals shed because the in-flight table was full.
    pub shed: u64,
    /// Completed ops dropped because the result buffer was full (the
    /// driver drained too rarely).
    pub dropped_results: u64,
    /// Reads that returned an older version than a previous read of the
    /// same key by this client (monotonic-reads violation, §3.2).
    pub monotonic_violations: u64,
    /// Reads that returned an older version than this client's own last
    /// committed write of the key (read-your-writes violation).
    pub ryw_violations: u64,
    /// Completed reads checked against the session state.
    pub reads_checked: u64,
    /// Sum of per-client in-flight high-water marks.
    pub peak_in_flight: u64,
}

/// One finished operation, drained by the engine each window.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct CompletedOp {
    /// Operation id.
    pub op_id: u64,
    /// Issuing client index.
    pub client: u32,
    /// Read or write.
    pub kind: OpKind,
    /// Target key.
    pub key: u64,
    /// Issue time.
    pub start: SimTime,
    /// Completion time (`None` = client-side timeout).
    pub finish: Option<SimTime>,
    /// Write: the coordinator-assigned sequence; read: the returned
    /// sequence (`None` = empty read or timeout).
    pub seq: Option<u64>,
    /// Commit time (writes only; `None` = failed or timed out).
    pub commit: Option<SimTime>,
    /// The writer id of the version involved: the coordinator that
    /// assigned a write's version, or the writer component of a read's
    /// returned version (`None` = empty read or timeout). Together with
    /// `seq` this identifies the exact [`crate::version::Version`], which
    /// the order oracle matches reads against known writes.
    pub writer: Option<u32>,
    /// Reads: the replica whose response supplied the returned version
    /// (`None` for empty reads, timeouts, and all writes).
    pub source: Option<u32>,
    /// Quorum provenance as a bitmask over node ids below 64. Writes: the
    /// replicas that had acked (and therefore applied) the version when
    /// the result was produced. Reads: the first `R` responders. Zero for
    /// timeouts; bits for nodes ≥ 64 are omitted (the oracle treats a
    /// missing bit as absence of evidence, never as a violation).
    pub quorum_mask: u64,
}

#[derive(Debug, Clone, Copy)]
struct Pending {
    key: u64,
    kind: OpKind,
    start: SimTime,
}

// Per-row flag bits.
const F_STOPPED: u8 = 1;
const F_HAS_NEXT: u8 = 2;
const F_NEXT_READ: u8 = 4;
const F_SLOT_READ: u8 = 8;

/// Inline in-flight slot sentinel: no op occupies the slot.
const SLOT_EMPTY: u32 = u32::MAX;

/// Arena slot sentinel: `u32::MAX` never collides with a table client
/// (indices are bounded by [`MAX_CLIENTS`] < 2²⁴).
const ARENA_EMPTY: u32 = u32::MAX;

/// One `(client, key)` session record.
#[derive(Clone, Copy)]
struct SessionSlot {
    key: u64,
    client: u32,
    /// Highest sequence seen by this client's reads of the key.
    last_read_seq: u64,
    /// Highest sequence committed by this client's writes of the key.
    last_write_seq: u64,
}

const EMPTY_SESSION: SessionSlot =
    SessionSlot { key: 0, client: ARENA_EMPTY, last_read_seq: 0, last_write_seq: 0 };

/// Open-addressing arena for per-`(client, key)` session state, shared by
/// every client of a worker table: 32 bytes per *touched* pair at ≤ 75%
/// load, versus two heap maps per client before.
struct SessionArena {
    slots: Vec<SessionSlot>,
    len: usize,
}

impl SessionArena {
    fn new() -> Self {
        Self { slots: Vec::new(), len: 0 }
    }

    fn hash(client: u32, key: u64) -> u64 {
        // splitmix-style finalizer over the packed pair.
        let mut h = key ^ (client as u64).wrapping_mul(0x9e37_79b9_7f4a_7c15);
        h ^= h >> 30;
        h = h.wrapping_mul(0xbf58_476d_1ce4_e5b9);
        h ^= h >> 27;
        h = h.wrapping_mul(0x94d0_49bb_1331_11eb);
        h ^ (h >> 31)
    }

    fn grow(&mut self) {
        let new_cap = (self.slots.len() * 2).max(16);
        let old = std::mem::replace(&mut self.slots, vec![EMPTY_SESSION; new_cap]);
        for slot in old {
            if slot.client != ARENA_EMPTY {
                let mask = new_cap - 1;
                let mut i = Self::hash(slot.client, slot.key) as usize & mask;
                while self.slots[i].client != ARENA_EMPTY {
                    i = (i + 1) & mask;
                }
                self.slots[i] = slot;
            }
        }
    }

    /// Find or insert the slot for `(client, key)`; new slots start zeroed.
    fn entry(&mut self, client: u32, key: u64) -> &mut SessionSlot {
        debug_assert!(client != ARENA_EMPTY);
        if self.len * 4 >= self.slots.len() * 3 {
            self.grow();
        }
        let mask = self.slots.len() - 1;
        let mut i = Self::hash(client, key) as usize & mask;
        loop {
            let s = &self.slots[i];
            if s.client == ARENA_EMPTY {
                self.slots[i] = SessionSlot { key, client, ..EMPTY_SESSION };
                self.len += 1;
                return &mut self.slots[i];
            }
            if s.client == client && s.key == key {
                return &mut self.slots[i];
            }
            i = (i + 1) & mask;
        }
    }

    /// Touched `(client, key)` pairs.
    fn len(&self) -> usize {
        self.len
    }
}

/// Pack an arrival-heap payload: row index above, generation below, so
/// equal-time arrivals pop in client-index order.
fn pack_arrival(row: usize, gen: u8) -> u64 {
    ((row as u64) << 8) | gen as u64
}

/// The open-loop client table: every client of one PDES worker, as
/// struct-of-arrays columns inside a single actor. See the module docs for
/// the layout and the determinism rules.
pub struct ClientTable {
    /// This table's worker index (clients with `index % stride == worker`).
    worker: usize,
    /// Client-affinity stride: the partition plan's worker count.
    stride: usize,
    /// First node this table's clients may coordinate through.
    coord_base: usize,
    /// Number of eligible coordinators starting at `coord_base`. Under the
    /// parallel engine clients are pinned to their partition's node range
    /// (client↔coordinator traffic is zero-delay and must stay on one
    /// worker); a serial cluster passes the whole node range.
    coord_count: usize,
    opts: ClientOptions,
    down: Arc<DownTracker>,
    cluster_seed: u64,
    /// Stream epoch: the simulated instant of the (most recent)
    /// `StartClient`.
    base: SimTime,

    // --- per-client columns (indexed by row) ---
    rng: Vec<StdRng>,
    /// Stream-clock value of the last op pulled from the source.
    consumed_ms: Vec<f64>,
    /// Stream-clock offset at the epoch: `at_ms` values already consumed
    /// before the (re)start, so a stop→start cycle resumes immediately.
    offset_ms: Vec<f64>,
    /// Key of the pre-pulled next arrival (valid when `F_HAS_NEXT`).
    next_key: Vec<u64>,
    /// Local op-id counter (also consumed by probe tokens).
    next_local: Vec<u32>,
    flags: Vec<u8>,
    /// Arrival generation: bumped on start/stop so stale heap entries from
    /// before the transition are skipped instead of double-firing.
    arrival_gen: Vec<u8>,
    in_flight_count: Vec<u32>,
    peak_in_flight: Vec<u32>,
    /// Inline in-flight slot: local op id (`SLOT_EMPTY` = vacant), key,
    /// start. Open-loop clients hold ≤ 1 op almost always; more spills to
    /// the shared `overflow` map.
    slot_local: Vec<u32>,
    slot_key: Vec<u64>,
    slot_start: Vec<SimTime>,

    // --- shared per table ---
    /// Boxed mode: one streaming source per row.
    sources: Vec<Box<dyn OpSource>>,
    /// Shared mode: one immutable source for every row (million-client
    /// scale); per-row state is just `consumed_ms`.
    shared: Option<Arc<dyn SharedOpSource>>,
    /// Pending arrivals as `(time, row·gen)`; the table arms **one** timer
    /// for the earliest entry instead of one event per client.
    arrivals: BinaryHeap<Reverse<(SimTime, u64)>>,
    /// Earliest outstanding armed arrival timer (`SimTime::MAX` = none).
    next_armed: SimTime,
    /// In-flight ops beyond a client's inline slot.
    overflow: FxHashMap<u64, Pending>,
    /// Probe tokens → key, for reads scheduled at commit + offset.
    probe_pending: FxHashMap<u64, u64>,
    /// Session state per touched `(client, key)`.
    sessions: SessionArena,
    /// Completed ops awaiting the driver's window drain (bounded by
    /// `opts.result_capacity`).
    completed: Vec<CompletedOp>,
    /// Live in-flight ops across all rows.
    in_flight_live: u64,
    /// Aggregate counters (`peak_in_flight` is computed from the per-row
    /// column on read).
    stats: ClientStats,
}

impl std::fmt::Debug for ClientTable {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("ClientTable")
            .field("worker", &self.worker)
            .field("rows", &self.rows())
            .field("in_flight", &self.in_flight_live)
            .field("completed", &self.completed.len())
            .finish_non_exhaustive()
    }
}

impl ClientTable {
    /// Build the (empty) client table for `worker` of a `stride`-worker
    /// plan, coordinating through the nodes in `coords` (a contiguous
    /// node-id range).
    pub fn new(
        worker: usize,
        stride: usize,
        coords: std::ops::Range<usize>,
        opts: ClientOptions,
        down: Arc<DownTracker>,
        cluster_seed: u64,
    ) -> Self {
        assert!(stride >= 1 && worker < stride);
        assert!(!coords.is_empty(), "clients need at least one coordinator");
        assert!(opts.max_in_flight >= 1 && opts.result_capacity >= 1);
        assert!(opts.op_timeout_ms > 0.0);
        Self {
            worker,
            stride,
            coord_base: coords.start,
            coord_count: coords.len(),
            opts,
            down,
            cluster_seed,
            base: SimTime::ZERO,
            rng: Vec::new(),
            consumed_ms: Vec::new(),
            offset_ms: Vec::new(),
            next_key: Vec::new(),
            next_local: Vec::new(),
            flags: Vec::new(),
            arrival_gen: Vec::new(),
            in_flight_count: Vec::new(),
            peak_in_flight: Vec::new(),
            slot_local: Vec::new(),
            slot_key: Vec::new(),
            slot_start: Vec::new(),
            sources: Vec::new(),
            shared: None,
            arrivals: BinaryHeap::new(),
            next_armed: SimTime::MAX,
            overflow: FxHashMap::default(),
            probe_pending: FxHashMap::default(),
            sessions: SessionArena::new(),
            completed: Vec::new(),
            in_flight_live: 0,
            stats: ClientStats::default(),
        }
    }

    /// The per-client knobs every row of this table shares.
    pub fn options(&self) -> &ClientOptions {
        &self.opts
    }

    /// Number of clients in this table.
    pub fn rows(&self) -> usize {
        self.rng.len()
    }

    /// Reserve exact capacity for `n` *additional* clients (keeps the
    /// bytes-per-client accounting free of doubling slack).
    pub fn reserve_rows(&mut self, n: usize) {
        self.rng.reserve_exact(n);
        self.consumed_ms.reserve_exact(n);
        self.offset_ms.reserve_exact(n);
        self.next_key.reserve_exact(n);
        self.next_local.reserve_exact(n);
        self.flags.reserve_exact(n);
        self.arrival_gen.reserve_exact(n);
        self.in_flight_count.reserve_exact(n);
        self.peak_in_flight.reserve_exact(n);
        self.slot_local.reserve_exact(n);
        self.slot_key.reserve_exact(n);
        self.slot_start.reserve_exact(n);
        self.arrivals.reserve(n);
        if self.shared.is_none() {
            self.sources.reserve_exact(n);
        }
    }

    /// Install the table's shared operation source (million-client mode).
    /// Must precede any row; mutually exclusive with boxed rows.
    pub fn set_shared_source(&mut self, source: Arc<dyn SharedOpSource>) {
        assert!(self.rows() == 0, "install the shared source before adding clients");
        assert!(self.shared.is_none(), "shared source already installed");
        self.shared = Some(source);
    }

    fn push_row(&mut self, index: u32) {
        assert!(index < MAX_CLIENTS, "at most {MAX_CLIENTS} clients per cluster");
        assert_eq!(
            index as usize % self.stride,
            self.worker,
            "client {index} routed to the wrong worker table"
        );
        assert_eq!(
            index as usize / self.stride,
            self.rows(),
            "clients must be added in index order"
        );
        // The per-client RNG stream: unchanged from the per-actor layout,
        // so seeds reproduce histories across the refactor boundary.
        let seed = self.cluster_seed
            ^ (index as u64 + 1).wrapping_mul(0xa076_1d64_78bd_642f)
            ^ 0x2545_f491_4f6c_dd1d;
        self.rng.push(StdRng::seed_from_u64(seed));
        self.consumed_ms.push(0.0);
        self.offset_ms.push(0.0);
        self.next_key.push(0);
        self.next_local.push(0);
        self.flags.push(0);
        self.arrival_gen.push(0);
        self.in_flight_count.push(0);
        self.peak_in_flight.push(0);
        self.slot_local.push(SLOT_EMPTY);
        self.slot_key.push(0);
        self.slot_start.push(SimTime::ZERO);
    }

    /// Add client `index` with its own boxed streaming source.
    pub fn push_client(&mut self, index: u32, source: Box<dyn OpSource>) {
        assert!(self.shared.is_none(), "cannot mix boxed and shared clients in one table");
        self.push_row(index);
        self.sources.push(source);
    }

    /// Add client `index` drawing from the table's shared source.
    pub fn push_shared_client(&mut self, index: u32) {
        assert!(self.shared.is_some(), "install a shared source first");
        self.push_row(index);
    }

    /// The global client index of a row.
    fn index_of(&self, row: usize) -> u32 {
        (row * self.stride + self.worker) as u32
    }

    /// The row of a global client index (must belong to this table).
    fn row_of(&self, index: u32) -> usize {
        debug_assert_eq!(index as usize % self.stride, self.worker);
        index as usize / self.stride
    }

    /// Operations currently awaiting a result or timeout, table-wide.
    pub fn in_flight(&self) -> u64 {
        self.in_flight_live
    }

    /// Touched `(client, key)` session pairs (memory observability).
    pub fn session_entries(&self) -> usize {
        self.sessions.len()
    }

    /// Aggregate counters over every client of this table.
    pub fn stats(&self) -> ClientStats {
        let mut s = self.stats;
        s.peak_in_flight = self.peak_in_flight.iter().map(|&p| p as u64).sum();
        s
    }

    /// Drain the completed-op buffer into `out` (driver-side, between
    /// events). Appends; the table's buffer keeps its capacity, so the
    /// window-by-window plumbing allocates nothing in steady state.
    pub fn drain_completed_into(&mut self, out: &mut Vec<CompletedOp>) {
        out.append(&mut self.completed);
    }

    /// Remove every still-in-flight operation and return it as an open
    /// (no-response) record — `finish`, `seq`, and `commit` all `None`,
    /// the same shape as a client timeout. The harness calls this when a
    /// run's recorded history is closed: an op pending at shutdown never
    /// produced a result, but a pending *write* may still have applied on
    /// replicas (e.g. its coordinator crashed holding the op), so the
    /// linearizability checker needs its invocation on record to attribute
    /// the version as possibly committed instead of convicting the reads
    /// that see it. Sorted by op id for engine-independent determinism.
    pub fn take_in_flight(&mut self) -> Vec<CompletedOp> {
        let open = |op_id: u64, kind: OpKind, key: u64, start: SimTime| CompletedOp {
            op_id,
            client: client_of(op_id),
            kind,
            key,
            start,
            finish: None,
            seq: None,
            commit: None,
            writer: None,
            source: None,
            quorum_mask: 0,
        };
        let mut out = Vec::new();
        for row in 0..self.rows() {
            if self.slot_local[row] != SLOT_EMPTY {
                let op_id = pack_op(self.index_of(row), self.slot_local[row]);
                let kind =
                    if self.flags[row] & F_SLOT_READ != 0 { OpKind::Read } else { OpKind::Write };
                out.push(open(op_id, kind, self.slot_key[row], self.slot_start[row]));
                self.slot_local[row] = SLOT_EMPTY;
                self.in_flight_count[row] -= 1;
                self.in_flight_live -= 1;
            }
        }
        for (op_id, p) in self.overflow.drain() {
            let row = (client_of(op_id) as usize) / self.stride;
            self.in_flight_count[row] -= 1;
            self.in_flight_live -= 1;
            out.push(open(op_id, p.kind, p.key, p.start));
        }
        out.sort_unstable_by_key(|op| op.op_id);
        out
    }

    fn push_completed(&mut self, op: CompletedOp) {
        if self.completed.len() >= self.opts.result_capacity {
            self.stats.dropped_results += 1;
        } else {
            self.completed.push(op);
        }
    }

    /// Pull the next op for `row` from its source (boxed or shared); the
    /// RNG draw order is identical in both modes.
    fn pull_next(&mut self, row: usize) -> pbs_workload::Op {
        match &self.shared {
            Some(src) => src.next_op_after(self.consumed_ms[row], &mut self.rng[row]),
            None => self.sources[row].next_op(&mut self.rng[row]),
        }
    }

    /// Pre-pull `row`'s next arrival and queue it on the table heap. The
    /// caller is responsible for re-arming the table timer afterwards
    /// (`ensure_armed`), so batch starts arm once, not per client.
    fn schedule_next_arrival(&mut self, row: usize) {
        if self.flags[row] & F_STOPPED != 0 {
            return;
        }
        let op = self.pull_next(row);
        self.consumed_ms[row] = op.at_ms;
        let at = self.base + SimDuration::from_ms((op.at_ms - self.offset_ms[row]).max(0.0));
        self.next_key[row] = op.key;
        let mut f = self.flags[row] | F_HAS_NEXT;
        if op.kind == OpKind::Read {
            f |= F_NEXT_READ;
        } else {
            f &= !F_NEXT_READ;
        }
        self.flags[row] = f;
        self.arrivals.push(Reverse((at, pack_arrival(row, self.arrival_gen[row]))));
    }

    /// Arm the table's arrival timer for the heap minimum if no earlier
    /// timer is already outstanding.
    fn ensure_armed(&mut self, ctx: &mut Context<'_, Msg>) {
        if let Some(&Reverse((at, _))) = self.arrivals.peek() {
            if at < self.next_armed {
                self.next_armed = at;
                let delay = at.duration_since(ctx.now()).as_ms();
                ctx.set_timer(delay, ctag(CKIND_ARRIVAL, 0));
            }
        }
    }

    fn issue(&mut self, ctx: &mut Context<'_, Msg>, row: usize, kind: OpKind, key: u64) {
        if self.in_flight_count[row] as usize >= self.opts.max_in_flight {
            self.stats.shed += 1;
            return;
        }
        let local = self.next_local[row];
        self.next_local[row] += 1;
        let op_id = pack_op(self.index_of(row), local);
        if self.slot_local[row] == SLOT_EMPTY {
            self.slot_local[row] = local;
            self.slot_key[row] = key;
            self.slot_start[row] = ctx.now();
            if kind == OpKind::Read {
                self.flags[row] |= F_SLOT_READ;
            } else {
                self.flags[row] &= !F_SLOT_READ;
            }
        } else {
            self.overflow.insert(op_id, Pending { key, kind, start: ctx.now() });
        }
        self.in_flight_count[row] += 1;
        self.in_flight_live += 1;
        self.stats.issued += 1;
        self.peak_in_flight[row] = self.peak_in_flight[row].max(self.in_flight_count[row]);
        let coord =
            self.down.pick_up_node_in(&mut self.rng[row], self.coord_base, self.coord_count);
        let msg = match kind {
            OpKind::Write => Msg::ClientWrite { op_id, key },
            OpKind::Read => Msg::ClientRead { op_id, key },
        };
        ctx.send(coord, 0.0, msg);
        ctx.set_timer(self.opts.op_timeout_ms, ctag(CKIND_OP_TIMEOUT, op_id));
    }

    /// Remove `op_id` from the in-flight structures (inline slot first,
    /// then the overflow map). `None` = already completed or timed out.
    fn remove_in_flight(&mut self, op_id: u64) -> Option<Pending> {
        let row = self.row_of(client_of(op_id));
        if self.slot_local[row] == local_of(op_id) {
            self.slot_local[row] = SLOT_EMPTY;
            self.in_flight_count[row] -= 1;
            self.in_flight_live -= 1;
            let kind =
                if self.flags[row] & F_SLOT_READ != 0 { OpKind::Read } else { OpKind::Write };
            return Some(Pending { key: self.slot_key[row], kind, start: self.slot_start[row] });
        }
        let p = self.overflow.remove(&op_id)?;
        self.in_flight_count[row] -= 1;
        self.in_flight_live -= 1;
        Some(p)
    }

    /// Fire every due arrival (heap entries at or before `now`), in
    /// `(time, row)` order, then re-arm for the new minimum.
    fn on_arrival_timer(&mut self, ctx: &mut Context<'_, Msg>) {
        self.next_armed = SimTime::MAX;
        while let Some(&Reverse((at, packed))) = self.arrivals.peek() {
            if at > ctx.now() {
                break;
            }
            self.arrivals.pop();
            let row = (packed >> 8) as usize;
            if (packed & 0xff) as u8 != self.arrival_gen[row] {
                continue; // stale: the row stopped/restarted since this was queued
            }
            self.on_arrival_row(ctx, row);
        }
        self.ensure_armed(ctx);
    }

    fn on_arrival_row(&mut self, ctx: &mut Context<'_, Msg>, row: usize) {
        if self.flags[row] & F_STOPPED != 0 {
            return;
        }
        if self.flags[row] & F_HAS_NEXT != 0 {
            self.flags[row] &= !F_HAS_NEXT;
            let kind =
                if self.flags[row] & F_NEXT_READ != 0 { OpKind::Read } else { OpKind::Write };
            let key = self.next_key[row];
            self.issue(ctx, row, kind, key);
        }
        self.schedule_next_arrival(row);
    }

    fn start_all(&mut self, ctx: &mut Context<'_, Msg>) {
        self.base = ctx.now();
        for row in 0..self.rows() {
            // Re-base onto the stream time already consumed, so a restarted
            // client resumes generating immediately.
            self.offset_ms[row] = self.consumed_ms[row];
            self.flags[row] &= !F_STOPPED;
            self.arrival_gen[row] = self.arrival_gen[row].wrapping_add(1);
            self.schedule_next_arrival(row);
        }
        self.ensure_armed(ctx);
    }

    fn stop_all(&mut self) {
        for row in 0..self.rows() {
            self.flags[row] = (self.flags[row] | F_STOPPED) & !F_HAS_NEXT;
            self.arrival_gen[row] = self.arrival_gen[row].wrapping_add(1);
        }
    }

    fn on_result(&mut self, ctx: &mut Context<'_, Msg>, result: ClientResult) {
        match result {
            ClientResult::Write { op_id, key, version, start, commit, acked } => {
                if self.remove_in_flight(op_id).is_none() {
                    return; // already timed out client-side
                }
                let index = client_of(op_id);
                if let Some(ct) = commit {
                    let slot = self.sessions.entry(index, key);
                    slot.last_write_seq = slot.last_write_seq.max(version.seq);
                    if let Some(offset) = self.opts.probe_read_offset_ms {
                        // The commit result arrives at the commit instant
                        // (zero-delay delivery), so the probe read fires at
                        // commit + offset.
                        debug_assert_eq!(ctx.now(), ct);
                        let row = self.row_of(index);
                        let token = pack_op(index, self.next_local[row]);
                        self.next_local[row] += 1;
                        self.probe_pending.insert(token, key);
                        ctx.set_timer(offset, ctag(CKIND_PROBE_READ, token));
                    }
                }
                self.push_completed(CompletedOp {
                    op_id,
                    client: index,
                    kind: OpKind::Write,
                    key,
                    start,
                    finish: Some(ctx.now()),
                    seq: Some(version.seq),
                    commit,
                    writer: Some(version.writer),
                    source: None,
                    quorum_mask: acked,
                });
            }
            ClientResult::Read { op_id, key, start, finish, version, source, responders } => {
                if self.remove_in_flight(op_id).is_none() {
                    return;
                }
                let index = client_of(op_id);
                let returned = version.map(|v| v.seq);
                let seen = returned.unwrap_or(0);
                self.stats.reads_checked += 1;
                let slot = self.sessions.entry(index, key);
                if seen < slot.last_read_seq {
                    self.stats.monotonic_violations += 1;
                }
                if seen < slot.last_write_seq {
                    self.stats.ryw_violations += 1;
                }
                slot.last_read_seq = slot.last_read_seq.max(seen);
                self.push_completed(CompletedOp {
                    op_id,
                    client: index,
                    kind: OpKind::Read,
                    key,
                    start,
                    finish: Some(finish),
                    seq: returned,
                    commit: None,
                    writer: version.map(|v| v.writer),
                    source,
                    quorum_mask: responders,
                });
            }
        }
    }

    fn on_op_timeout(&mut self, op_id: u64) {
        let Some(p) = self.remove_in_flight(op_id) else {
            return; // completed in time
        };
        self.push_completed(CompletedOp {
            op_id,
            client: client_of(op_id),
            kind: p.kind,
            key: p.key,
            start: p.start,
            finish: None,
            seq: None,
            commit: None,
            writer: None,
            source: None,
            quorum_mask: 0,
        });
    }

    fn on_probe_read(&mut self, ctx: &mut Context<'_, Msg>, token: u64) {
        if let Some(key) = self.probe_pending.remove(&token) {
            let row = self.row_of(client_of(token));
            self.issue(ctx, row, OpKind::Read, key);
        }
    }
}

impl Actor for ClientTable {
    type Msg = Msg;

    fn on_event(&mut self, ctx: &mut Context<'_, Msg>, event: Event<Msg>) {
        match event {
            Event::Message { msg, .. } => match msg {
                Msg::StartClient => self.start_all(ctx),
                Msg::StopClient => self.stop_all(),
                Msg::OpResult { result } => self.on_result(ctx, result),
                other => unreachable!("client table received {other:?}"),
            },
            Event::Timer { tag } => match ctag_kind(tag) {
                CKIND_ARRIVAL => self.on_arrival_timer(ctx),
                CKIND_OP_TIMEOUT => self.on_op_timeout(ctag_op(tag)),
                CKIND_PROBE_READ => self.on_probe_read(ctx, ctag_op(tag)),
                other => unreachable!("unknown client timer kind {other}"),
            },
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn table(worker: usize, stride: usize) -> ClientTable {
        ClientTable::new(
            worker,
            stride,
            0..3,
            ClientOptions::default(),
            Arc::new(DownTracker::new(3)),
            9,
        )
    }

    #[test]
    fn op_ids_are_disjoint_across_clients_and_harness() {
        let ida = pack_op(0, 0);
        let idb = pack_op(1, 0);
        assert_ne!(ida, idb);
        assert!(ida >= (1 << CLIENT_OP_SHIFT), "client ids sit above harness ids");
        assert_eq!(ctag_op(ctag(CKIND_OP_TIMEOUT, ida)), ida, "ids survive timer tags");
        // The largest admissible id still fits the 56-bit timer-tag space.
        let top = pack_op(MAX_CLIENTS - 1, u32::MAX);
        assert!(top < (1 << TAG_KIND_SHIFT));
        assert_eq!(client_of(top), MAX_CLIENTS - 1);
        assert_eq!(local_of(top), u32::MAX);
    }

    #[test]
    fn client_tag_round_trip() {
        let t = ctag(CKIND_PROBE_READ, 0xDEAD_BEEF);
        assert_eq!(ctag_kind(t), CKIND_PROBE_READ);
        assert_eq!(ctag_op(t), 0xDEAD_BEEF);
    }

    #[test]
    fn rows_map_to_strided_client_indices() {
        let mut t = table(1, 4);
        let src = || {
            Box::new(pbs_workload::OpStream::new(
                pbs_workload::FixedRate::new(1.0),
                pbs_workload::UniformKeys::new(4),
                pbs_workload::OpMix::linkedin(),
                1,
            ))
        };
        t.push_client(1, src());
        t.push_client(5, src());
        t.push_client(9, src());
        assert_eq!(t.rows(), 3);
        assert_eq!(t.index_of(2), 9);
        assert_eq!(t.row_of(5), 1);
    }

    #[test]
    #[should_panic(expected = "wrong worker table")]
    fn misrouted_client_is_rejected() {
        let mut t = table(1, 4);
        t.push_client(
            2,
            Box::new(pbs_workload::OpStream::new(
                pbs_workload::FixedRate::new(1.0),
                pbs_workload::UniformKeys::new(4),
                pbs_workload::OpMix::linkedin(),
                1,
            )),
        );
    }

    #[test]
    fn session_arena_isolates_clients_and_keys() {
        let mut a = SessionArena::new();
        a.entry(3, 7).last_read_seq = 10;
        a.entry(3, 8).last_write_seq = 20;
        a.entry(4, 7).last_read_seq = 30;
        assert_eq!(a.entry(3, 7).last_read_seq, 10);
        assert_eq!(a.entry(3, 7).last_write_seq, 0);
        assert_eq!(a.entry(3, 8).last_write_seq, 20);
        assert_eq!(a.entry(4, 7).last_read_seq, 30);
        assert_eq!(a.len(), 3);
        // Survives growth: insert enough pairs to force several rehashes.
        for k in 0..1000u64 {
            a.entry(9, k).last_read_seq = k;
        }
        for k in 0..1000u64 {
            assert_eq!(a.entry(9, k).last_read_seq, k);
        }
        assert_eq!(a.entry(3, 7).last_read_seq, 10, "old entries survive rehash");
    }
}
