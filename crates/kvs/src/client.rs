//! In-sim client actors: the open-loop traffic source.
//!
//! A [`ClientActor`] lives *inside* the simulation alongside the nodes. It
//! pulls operations lazily from a streaming [`OpSource`] (arrival process ×
//! key popularity × read/write mix from `pbs-workload`), issues them to
//! coordinator nodes without waiting for completion, and keeps per-session
//! state so monotonic-reads and read-your-writes violations (§3.2) are
//! measured *empirically* on the live cluster rather than only modelled
//! analytically.
//!
//! Memory discipline: a client holds one pre-pulled arrival, its in-flight
//! operation table (capped — arrivals beyond the cap are shed, as an
//! overloaded open-loop system must), and a bounded buffer of completed
//! operations that the driver drains every window. Nothing scales with the
//! length of the workload.

use crate::fxhash::FxHashMap;
use crate::messages::Msg;
use crate::node::{ClientResult, DownTracker};
use pbs_sim::{Actor, Context, Event, SimDuration, SimTime};
use pbs_workload::{OpKind, OpSource};
use rand::rngs::StdRng;
use rand::SeedableRng;
use std::sync::Arc;

// Client-side timer tags (same top-byte scheme as the node's).
const TAG_KIND_SHIFT: u64 = 56;
const CKIND_ARRIVAL: u64 = 1;
const CKIND_OP_TIMEOUT: u64 = 2;
const CKIND_PROBE_READ: u64 = 3;

fn ctag(kind: u64, op: u64) -> u64 {
    debug_assert!(op < (1 << TAG_KIND_SHIFT));
    (kind << TAG_KIND_SHIFT) | op
}

fn ctag_kind(t: u64) -> u64 {
    t >> TAG_KIND_SHIFT
}

fn ctag_op(t: u64) -> u64 {
    t & ((1 << TAG_KIND_SHIFT) - 1)
}

/// Bits reserved for a client's local operation counter; the client index
/// occupies the bits above, keeping op ids globally unique across clients
/// *and* disjoint from the blocking harness's low id space.
const CLIENT_OP_SHIFT: u64 = 40;

/// Maximum number of client actors per cluster (op ids must fit in the
/// 56-bit timer-tag op space alongside the counter).
pub const MAX_CLIENTS: u32 = (1 << (TAG_KIND_SHIFT - CLIENT_OP_SHIFT)) as u32 - 1;

/// Per-client knobs.
#[derive(Debug, Clone, Copy)]
pub struct ClientOptions {
    /// Client-side operation timeout: an op with no result by then is
    /// recorded as timed out (late results are ignored).
    pub op_timeout_ms: f64,
    /// In-flight cap: arrivals while the table is full are shed (counted
    /// in [`ClientStats::shed`]). Bounds client memory under overload.
    pub max_in_flight: usize,
    /// Probe mode: every *committed* write schedules a read of the same
    /// key this many ms after its commit (the §5.2 write→read probe pair),
    /// in addition to any reads the op source emits.
    pub probe_read_offset_ms: Option<f64>,
    /// Capacity of the completed-op buffer the driver drains each window;
    /// overflow is counted in [`ClientStats::dropped_results`].
    pub result_capacity: usize,
}

impl Default for ClientOptions {
    fn default() -> Self {
        Self {
            op_timeout_ms: 10_000.0,
            max_in_flight: 1_024,
            probe_read_offset_ms: None,
            result_capacity: 1 << 16,
        }
    }
}

/// Cumulative per-client counters.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct ClientStats {
    /// Operations issued to a coordinator.
    pub issued: u64,
    /// Arrivals shed because the in-flight table was full.
    pub shed: u64,
    /// Completed ops dropped because the result buffer was full (the
    /// driver drained too rarely).
    pub dropped_results: u64,
    /// Reads that returned an older version than a previous read of the
    /// same key by this client (monotonic-reads violation, §3.2).
    pub monotonic_violations: u64,
    /// Reads that returned an older version than this client's own last
    /// committed write of the key (read-your-writes violation).
    pub ryw_violations: u64,
    /// Completed reads checked against the session state.
    pub reads_checked: u64,
    /// High-water mark of the in-flight table.
    pub peak_in_flight: u64,
}

/// One finished operation, drained by the engine each window.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct CompletedOp {
    /// Operation id.
    pub op_id: u64,
    /// Issuing client index.
    pub client: u32,
    /// Read or write.
    pub kind: OpKind,
    /// Target key.
    pub key: u64,
    /// Issue time.
    pub start: SimTime,
    /// Completion time (`None` = client-side timeout).
    pub finish: Option<SimTime>,
    /// Write: the coordinator-assigned sequence; read: the returned
    /// sequence (`None` = empty read or timeout).
    pub seq: Option<u64>,
    /// Commit time (writes only; `None` = failed or timed out).
    pub commit: Option<SimTime>,
    /// The writer id of the version involved: the coordinator that
    /// assigned a write's version, or the writer component of a read's
    /// returned version (`None` = empty read or timeout). Together with
    /// `seq` this identifies the exact [`crate::version::Version`], which
    /// the order oracle matches reads against known writes.
    pub writer: Option<u32>,
    /// Reads: the replica whose response supplied the returned version
    /// (`None` for empty reads, timeouts, and all writes).
    pub source: Option<u32>,
    /// Quorum provenance as a bitmask over node ids below 64. Writes: the
    /// replicas that had acked (and therefore applied) the version when
    /// the result was produced. Reads: the first `R` responders. Zero for
    /// timeouts; bits for nodes ≥ 64 are omitted (the oracle treats a
    /// missing bit as absence of evidence, never as a violation).
    pub quorum_mask: u64,
}

#[derive(Debug, Clone, Copy)]
struct Pending {
    key: u64,
    kind: OpKind,
    start: SimTime,
}

/// The open-loop client actor.
pub struct ClientActor {
    index: u32,
    /// First node this client may coordinate through.
    coord_base: usize,
    /// Number of eligible coordinators starting at `coord_base`. Under the
    /// parallel engine a client is pinned to its partition's node range
    /// (client↔coordinator traffic is zero-delay and must stay on one
    /// worker); a serial cluster passes the whole node range.
    coord_count: usize,
    opts: ClientOptions,
    rng: StdRng,
    source: Box<dyn OpSource>,
    down: Arc<DownTracker>,
    /// Stream epoch: the simulated instant of the (most recent)
    /// `StartClient`.
    base: SimTime,
    /// Stream-clock offset at the epoch: `at_ms` values already consumed
    /// from the source before the (re)start. An arrival maps to
    /// `base + (op.at_ms − offset_ms)`, so a stop→start cycle resumes
    /// immediately instead of replaying the consumed stream time as dead
    /// air.
    offset_ms: f64,
    /// Stream-clock value of the last op pulled from the source.
    consumed_ms: f64,
    /// The pre-pulled next arrival (exactly one is buffered).
    next: Option<pbs_workload::Op>,
    next_local: u64,
    stopped: bool,
    in_flight: FxHashMap<u64, Pending>,
    /// Probe tokens → key, for reads scheduled at commit + offset.
    probe_pending: FxHashMap<u64, u64>,
    /// Completed ops awaiting the driver's window drain (bounded).
    pub completed: Vec<CompletedOp>,
    /// Highest sequence seen by this client's reads, per key.
    last_read_seq: FxHashMap<u64, u64>,
    /// Highest sequence committed by this client's writes, per key.
    last_write_seq: FxHashMap<u64, u64>,
    /// Cumulative counters.
    pub stats: ClientStats,
}

impl std::fmt::Debug for ClientActor {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("ClientActor")
            .field("index", &self.index)
            .field("in_flight", &self.in_flight.len())
            .field("completed", &self.completed.len())
            .field("stopped", &self.stopped)
            .finish()
    }
}

impl ClientActor {
    /// Build client `index` coordinating through the nodes in `coords`
    /// (a contiguous node-id range), with its own deterministic RNG
    /// stream derived from the cluster seed.
    pub fn new(
        index: u32,
        coords: std::ops::Range<usize>,
        source: Box<dyn OpSource>,
        opts: ClientOptions,
        down: Arc<DownTracker>,
        cluster_seed: u64,
    ) -> Self {
        assert!(index < MAX_CLIENTS, "at most {MAX_CLIENTS} clients per cluster");
        assert!(!coords.is_empty(), "client needs at least one coordinator");
        assert!(opts.max_in_flight >= 1 && opts.result_capacity >= 1);
        assert!(opts.op_timeout_ms > 0.0);
        let seed = cluster_seed
            ^ (index as u64 + 1).wrapping_mul(0xa076_1d64_78bd_642f)
            ^ 0x2545_f491_4f6c_dd1d;
        Self {
            index,
            coord_base: coords.start,
            coord_count: coords.len(),
            opts,
            rng: StdRng::seed_from_u64(seed),
            source,
            down,
            base: SimTime::ZERO,
            offset_ms: 0.0,
            consumed_ms: 0.0,
            next: None,
            next_local: 0,
            stopped: false,
            in_flight: FxHashMap::default(),
            probe_pending: FxHashMap::default(),
            completed: Vec::new(),
            last_read_seq: FxHashMap::default(),
            last_write_seq: FxHashMap::default(),
            stats: ClientStats::default(),
        }
    }

    /// The client's logical index.
    pub fn index(&self) -> u32 {
        self.index
    }

    /// Operations currently awaiting a result or timeout.
    pub fn in_flight(&self) -> usize {
        self.in_flight.len()
    }

    /// Drain the completed-op buffer into `out` (driver-side, between
    /// events). Appends; the client's buffer keeps its capacity, so the
    /// window-by-window plumbing allocates nothing in steady state.
    pub fn drain_completed_into(&mut self, out: &mut Vec<CompletedOp>) {
        out.append(&mut self.completed);
    }

    fn alloc_local(&mut self) -> u64 {
        let local = self.next_local;
        self.next_local += 1;
        debug_assert!(local < (1 << CLIENT_OP_SHIFT));
        ((self.index as u64 + 1) << CLIENT_OP_SHIFT) | local
    }

    fn push_completed(&mut self, op: CompletedOp) {
        if self.completed.len() >= self.opts.result_capacity {
            self.stats.dropped_results += 1;
        } else {
            self.completed.push(op);
        }
    }

    fn schedule_next_arrival(&mut self, ctx: &mut Context<'_, Msg>) {
        if self.stopped {
            return;
        }
        let op = self.source.next_op(&mut self.rng);
        self.consumed_ms = op.at_ms;
        let at = self.base + SimDuration::from_ms((op.at_ms - self.offset_ms).max(0.0));
        let delay = at.duration_since(ctx.now()).as_ms();
        self.next = Some(op);
        ctx.set_timer(delay, ctag(CKIND_ARRIVAL, 0));
    }

    fn issue(&mut self, ctx: &mut Context<'_, Msg>, kind: OpKind, key: u64) {
        if self.in_flight.len() >= self.opts.max_in_flight {
            self.stats.shed += 1;
            return;
        }
        let op_id = self.alloc_local();
        self.in_flight.insert(op_id, Pending { key, kind, start: ctx.now() });
        self.stats.issued += 1;
        self.stats.peak_in_flight = self.stats.peak_in_flight.max(self.in_flight.len() as u64);
        let coord = self.down.pick_up_node_in(&mut self.rng, self.coord_base, self.coord_count);
        let msg = match kind {
            OpKind::Write => Msg::ClientWrite { op_id, key },
            OpKind::Read => Msg::ClientRead { op_id, key },
        };
        ctx.send(coord, 0.0, msg);
        ctx.set_timer(self.opts.op_timeout_ms, ctag(CKIND_OP_TIMEOUT, op_id));
    }

    fn on_arrival(&mut self, ctx: &mut Context<'_, Msg>) {
        if self.stopped {
            return;
        }
        if let Some(op) = self.next.take() {
            self.issue(ctx, op.kind, op.key);
        }
        self.schedule_next_arrival(ctx);
    }

    fn on_result(&mut self, ctx: &mut Context<'_, Msg>, result: ClientResult) {
        match result {
            ClientResult::Write { op_id, key, version, start, commit, acked } => {
                if self.in_flight.remove(&op_id).is_none() {
                    return; // already timed out client-side
                }
                if let Some(ct) = commit {
                    let entry = self.last_write_seq.entry(key).or_insert(0);
                    *entry = (*entry).max(version.seq);
                    if let Some(offset) = self.opts.probe_read_offset_ms {
                        // The commit result arrives at the commit instant
                        // (zero-delay delivery), so the probe read fires at
                        // commit + offset.
                        debug_assert_eq!(ctx.now(), ct);
                        let token = self.next_local;
                        self.next_local += 1;
                        self.probe_pending.insert(token, key);
                        ctx.set_timer(offset, ctag(CKIND_PROBE_READ, token));
                    }
                }
                self.push_completed(CompletedOp {
                    op_id,
                    client: self.index,
                    kind: OpKind::Write,
                    key,
                    start,
                    finish: Some(ctx.now()),
                    seq: Some(version.seq),
                    commit,
                    writer: Some(version.writer),
                    source: None,
                    quorum_mask: acked,
                });
            }
            ClientResult::Read { op_id, key, start, finish, version, source, responders } => {
                if self.in_flight.remove(&op_id).is_none() {
                    return;
                }
                let returned = version.map(|v| v.seq);
                let seen = returned.unwrap_or(0);
                self.stats.reads_checked += 1;
                if seen < self.last_read_seq.get(&key).copied().unwrap_or(0) {
                    self.stats.monotonic_violations += 1;
                }
                if seen < self.last_write_seq.get(&key).copied().unwrap_or(0) {
                    self.stats.ryw_violations += 1;
                }
                let entry = self.last_read_seq.entry(key).or_insert(0);
                *entry = (*entry).max(seen);
                self.push_completed(CompletedOp {
                    op_id,
                    client: self.index,
                    kind: OpKind::Read,
                    key,
                    start,
                    finish: Some(finish),
                    seq: returned,
                    commit: None,
                    writer: version.map(|v| v.writer),
                    source,
                    quorum_mask: responders,
                });
            }
        }
    }

    fn on_op_timeout(&mut self, op_id: u64) {
        let Some(p) = self.in_flight.remove(&op_id) else {
            return; // completed in time
        };
        self.push_completed(CompletedOp {
            op_id,
            client: self.index,
            kind: p.kind,
            key: p.key,
            start: p.start,
            finish: None,
            seq: None,
            commit: None,
            writer: None,
            source: None,
            quorum_mask: 0,
        });
    }

    fn on_probe_read(&mut self, ctx: &mut Context<'_, Msg>, token: u64) {
        if let Some(key) = self.probe_pending.remove(&token) {
            self.issue(ctx, OpKind::Read, key);
        }
    }
}

impl Actor for ClientActor {
    type Msg = Msg;

    fn on_event(&mut self, ctx: &mut Context<'_, Msg>, event: Event<Msg>) {
        match event {
            Event::Message { msg, .. } => match msg {
                Msg::StartClient => {
                    self.base = ctx.now();
                    // Re-base onto the stream time already consumed, so a
                    // restarted client resumes generating immediately.
                    self.offset_ms = self.consumed_ms;
                    self.stopped = false;
                    self.schedule_next_arrival(ctx);
                }
                Msg::StopClient => {
                    self.stopped = true;
                    self.next = None;
                }
                Msg::OpResult { result } => self.on_result(ctx, result),
                other => unreachable!("client actor received {other:?}"),
            },
            Event::Timer { tag } => match ctag_kind(tag) {
                CKIND_ARRIVAL => self.on_arrival(ctx),
                CKIND_OP_TIMEOUT => self.on_op_timeout(ctag_op(tag)),
                CKIND_PROBE_READ => self.on_probe_read(ctx, ctag_op(tag)),
                other => unreachable!("unknown client timer kind {other}"),
            },
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn op_ids_are_disjoint_across_clients_and_harness() {
        let down = Arc::new(DownTracker::new(3));
        let mk = |i| {
            ClientActor::new(
                i,
                0..3,
                Box::new(pbs_workload::OpStream::new(
                    pbs_workload::FixedRate::new(1.0),
                    pbs_workload::UniformKeys::new(4),
                    pbs_workload::OpMix::linkedin(),
                    1,
                )),
                ClientOptions::default(),
                Arc::clone(&down),
                9,
            )
        };
        let mut a = mk(0);
        let mut b = mk(1);
        let ida = a.alloc_local();
        let idb = b.alloc_local();
        assert_ne!(ida, idb);
        assert!(ida >= (1 << CLIENT_OP_SHIFT), "client ids sit above harness ids");
        assert_eq!(ctag_op(ctag(CKIND_OP_TIMEOUT, ida)), ida, "ids survive timer tags");
    }

    #[test]
    fn client_tag_round_trip() {
        let t = ctag(CKIND_PROBE_READ, 0xDEAD_BEEF);
        assert_eq!(ctag_kind(t), CKIND_PROBE_READ);
        assert_eq!(ctag_op(t), 0xDEAD_BEEF);
    }
}
