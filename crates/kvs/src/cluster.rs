//! The cluster harness: builds the simulated store, drives client
//! operations, and labels every read against ground truth.

use crate::messages::Msg;
use crate::network::NetworkModel;
use crate::node::{ClientResult, DetectorEvent, Node, NodeOptions};
use crate::ring::Ring;
use crate::staleness::{GroundTruth, ReadLabel};
use crate::version::Version;
use pbs_core::ReplicaConfig;
use pbs_sim::{SimTime, Simulation};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use std::collections::HashMap;
use std::sync::Arc;

/// Cluster-wide configuration.
#[derive(Debug, Clone, Copy)]
pub struct ClusterOptions {
    /// Physical nodes in the cluster (≥ the replication factor).
    pub nodes: u32,
    /// `(N, R, W)` replication parameters.
    pub replication: ReplicaConfig,
    /// Virtual nodes per physical node on the consistent-hashing ring.
    pub vnodes: u32,
    /// Enable read repair (§4.2). Off for WARS validation, as in the paper.
    pub read_repair: bool,
    /// Enable hinted handoff (Dynamo §4.6).
    pub hinted_handoff: bool,
    /// Write-straggler deadline before hinting.
    pub hint_timeout_ms: f64,
    /// Hint redelivery period.
    pub hint_flush_interval_ms: f64,
    /// Message loss probability.
    pub drop_prob: f64,
    /// Merkle anti-entropy period (None = disabled, Cassandra's default
    /// posture per §4.2).
    pub sync_interval_ms: Option<f64>,
    /// Whether crashed nodes lose their stores.
    pub wipe_on_crash: bool,
    /// Client-side operation timeout.
    pub op_timeout_ms: f64,
    /// Record per-message one-way W/A/R/S delays for online prediction
    /// (§5.5/§6); drain with [`Cluster::drain_leg_samples`].
    pub record_leg_samples: bool,
    /// Master seed (node RNGs derive from it).
    pub seed: u64,
}

impl ClusterOptions {
    /// The §5.2 validation setup: a cluster of exactly `N` nodes, read
    /// repair disabled, no anti-entropy, reliable messages.
    pub fn validation(replication: ReplicaConfig, seed: u64) -> Self {
        Self {
            nodes: replication.n(),
            replication,
            vnodes: 16,
            read_repair: false,
            hinted_handoff: false,
            hint_timeout_ms: 250.0,
            hint_flush_interval_ms: 500.0,
            drop_prob: 0.0,
            sync_interval_ms: None,
            wipe_on_crash: false,
            op_timeout_ms: 60_000.0,
            record_leg_samples: false,
            seed,
        }
    }
}

/// Outcome of a blocking write.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct WriteOutcome {
    /// Operation id.
    pub op_id: u64,
    /// Key written.
    pub key: u64,
    /// Assigned dense sequence number.
    pub seq: u64,
    /// Issue time.
    pub start: SimTime,
    /// Commit time (None = failed/timed out).
    pub commit: Option<SimTime>,
}

impl WriteOutcome {
    /// Commit latency in ms, if the write committed.
    pub fn latency_ms(&self) -> Option<f64> {
        self.commit.map(|c| (c - self.start).as_ms())
    }
}

/// Outcome of a blocking read.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ReadOutcome {
    /// Operation id.
    pub op_id: u64,
    /// Key read.
    pub key: u64,
    /// Issue time.
    pub start: SimTime,
    /// Completion time (None = timed out).
    pub finish: Option<SimTime>,
    /// Returned sequence number (None = no responder had the key, or
    /// timeout).
    pub returned_seq: Option<u64>,
    /// Ground-truth verdict (None = timed out).
    pub label: Option<ReadLabel>,
}

impl ReadOutcome {
    /// Operation latency in ms, if completed.
    pub fn latency_ms(&self) -> Option<f64> {
        self.finish.map(|f| (f - self.start).as_ms())
    }

    /// Whether this read satisfied t-visibility.
    pub fn consistent(&self) -> bool {
        self.label.map(|l| l.consistent).unwrap_or(false)
    }
}

/// One operation of a pre-generated trace.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct TraceOp {
    /// Issue time (ms).
    pub at_ms: f64,
    /// True for reads, false for writes.
    pub is_read: bool,
    /// Target key.
    pub key: u64,
}

/// A labelled read from a trace run.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct LabeledRead {
    /// Operation id.
    pub op_id: u64,
    /// Key read.
    pub key: u64,
    /// Issue time.
    pub start: SimTime,
    /// Returned sequence (None = empty read).
    pub returned_seq: Option<u64>,
    /// Ground-truth verdict.
    pub label: ReadLabel,
    /// Whether the §4.3 detector flagged this read.
    pub flagged: bool,
}

/// Detector performance against ground truth (§4.3).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct DetectorStats {
    /// Reads flagged by the detector.
    pub flagged: usize,
    /// Flagged reads that were truly inconsistent.
    pub true_positives: usize,
    /// Flagged reads that were actually consistent (in-flight/newer
    /// versions — the paper's predicted false-positive mode).
    pub false_positives: usize,
    /// Inconsistent reads the detector missed (e.g. the fresher replica
    /// never responded).
    pub missed_stale: usize,
}

/// Aggregate results of a trace run.
#[derive(Debug, Clone, Default)]
pub struct TraceReport {
    /// Committed write latencies (ms).
    pub write_latencies: Vec<f64>,
    /// Completed read latencies (ms).
    pub read_latencies: Vec<f64>,
    /// Writes that never committed.
    pub failed_writes: usize,
    /// Reads that never completed.
    pub incomplete_reads: usize,
    /// All labelled reads.
    pub reads: Vec<LabeledRead>,
    /// Staleness-detector performance.
    pub detector: DetectorStats,
}

impl TraceReport {
    /// Fraction of completed reads that were consistent.
    pub fn consistency_rate(&self) -> f64 {
        if self.reads.is_empty() {
            return 1.0;
        }
        let ok = self.reads.iter().filter(|r| r.label.consistent).count();
        ok as f64 / self.reads.len() as f64
    }
}

/// A simulated Dynamo-style cluster with a blocking client API.
pub struct Cluster {
    sim: Simulation<Node>,
    ring: Arc<Ring>,
    net: Arc<NetworkModel>,
    opts: ClusterOptions,
    rng: StdRng,
    next_op: u64,
    next_seq: HashMap<u64, u64>,
    ground_truth: GroundTruth,
}

impl std::fmt::Debug for Cluster {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Cluster")
            .field("nodes", &self.opts.nodes)
            .field("replication", &self.opts.replication)
            .field("now", &self.sim.now())
            .finish()
    }
}

impl Cluster {
    /// Build a cluster.
    pub fn new(opts: ClusterOptions, network: NetworkModel) -> Self {
        assert!(
            opts.nodes >= opts.replication.n(),
            "cluster needs at least N={} nodes, got {}",
            opts.replication.n(),
            opts.nodes
        );
        let ring = Arc::new(Ring::new(opts.nodes, opts.vnodes, opts.replication.n()));
        let net = Arc::new(network);
        let node_opts = NodeOptions {
            r: opts.replication.r(),
            w: opts.replication.w(),
            read_repair: opts.read_repair,
            hinted_handoff: opts.hinted_handoff,
            hint_timeout_ms: opts.hint_timeout_ms,
            hint_flush_interval_ms: opts.hint_flush_interval_ms,
            drop_prob: opts.drop_prob,
            record_leg_samples: opts.record_leg_samples,
        };
        let mut sim = Simulation::new();
        for id in 0..opts.nodes as usize {
            let node = Node::new(id, node_opts, Arc::clone(&net), Arc::clone(&ring), opts.seed);
            let actor = sim.add_actor(node);
            debug_assert_eq!(actor, id);
        }
        if let Some(interval) = opts.sync_interval_ms {
            for id in 0..opts.nodes as usize {
                sim.inject(id, 0.0, Msg::StartSync { interval_ms: interval });
            }
        }
        Self {
            sim,
            ring,
            net,
            opts,
            rng: StdRng::seed_from_u64(opts.seed.wrapping_mul(0xd134_2543_de82_ef95)),
            next_op: 1,
            next_seq: HashMap::new(),
            ground_truth: GroundTruth::new(),
        }
    }

    /// Current simulated time.
    pub fn now(&self) -> SimTime {
        self.sim.now()
    }

    /// The cluster's replication configuration.
    pub fn replication(&self) -> ReplicaConfig {
        self.opts.replication
    }

    /// The consistent-hashing ring.
    pub fn ring(&self) -> &Ring {
        &self.ring
    }

    /// The cluster's network model. Its dynamic-condition methods
    /// (partitions, link faults, regime swaps) take `&self`, so faults can
    /// be injected mid-run: `cluster.network().partition(vec![0, 0, 1])`.
    pub fn network(&self) -> &NetworkModel {
        &self.net
    }

    /// Apply a new `(N, R, W)` configuration to the **running** cluster
    /// (§6 "Variable configurations" — the reconfiguration an adaptive
    /// controller issues when conditions drift).
    ///
    /// `R`/`W` changes take effect for every subsequent operation and for
    /// the next response of any operation still in flight (coordinators
    /// test quorums with `≥`). Changing `N` rebuilds the placement ring:
    /// data written under the old placement stays where it is and new
    /// replica sets take over for subsequent operations, so freshly added
    /// replicas serve empty reads until read repair or anti-entropy
    /// migrates the data — exactly the transient a real Dynamo-style
    /// reconfiguration exhibits.
    pub fn set_replication(&mut self, cfg: ReplicaConfig) {
        assert!(
            self.opts.nodes >= cfg.n(),
            "cluster has {} nodes; cannot replicate {}-way",
            self.opts.nodes,
            cfg.n()
        );
        if cfg.n() != self.opts.replication.n() {
            let ring = Arc::new(Ring::new(self.opts.nodes, self.opts.vnodes, cfg.n()));
            self.ring = Arc::clone(&ring);
            for id in 0..self.opts.nodes as usize {
                self.sim.actor_mut(id).set_ring(Arc::clone(&ring));
            }
        }
        self.opts.replication = cfg;
        for id in 0..self.opts.nodes as usize {
            self.sim.actor_mut(id).set_quorums(cfg.r(), cfg.w());
        }
    }

    /// Ground-truth commit history (for custom analyses).
    pub fn ground_truth(&self) -> &GroundTruth {
        &self.ground_truth
    }

    /// Direct access to a node (stats, stored versions, crash state).
    pub fn node(&self, id: usize) -> &Node {
        self.sim.actor(id)
    }

    /// Advance simulated time, processing all events up to `at`.
    pub fn advance_to(&mut self, at: SimTime) {
        self.sim.run_until(at);
    }

    /// Schedule a crash of `node` at `at` for `down_ms` (state wiped when
    /// the cluster's `wipe_on_crash` is set).
    pub fn crash_node_at(&mut self, node: usize, at: SimTime, down_ms: f64) {
        let wipe = self.opts.wipe_on_crash;
        self.sim.inject_at(node, at, Msg::Crash { down_ms, wipe });
    }

    fn pick_coordinator(&mut self) -> usize {
        self.rng.gen_range(0..self.opts.nodes as usize)
    }

    fn alloc_op(&mut self) -> u64 {
        let id = self.next_op;
        self.next_op += 1;
        id
    }

    fn alloc_seq(&mut self, key: u64) -> u64 {
        let seq = self.next_seq.entry(key).or_insert(0);
        *seq += 1;
        *seq
    }

    fn step_until_result(&mut self, coord: usize, op_id: u64, deadline: SimTime) -> Option<ClientResult> {
        loop {
            if let Some(res) = self.sim.actor_mut(coord).client_results.remove(&op_id) {
                return Some(res);
            }
            match self.sim.peek_next_time() {
                Some(t) if t <= deadline => {
                    self.sim.step();
                }
                _ => return None,
            }
        }
    }

    /// Blocking quorum write from a random coordinator; returns at commit
    /// time (or after the op timeout).
    pub fn write(&mut self, key: u64) -> WriteOutcome {
        let coord = self.pick_coordinator();
        self.write_from(coord, key)
    }

    /// Blocking quorum write from a specific coordinator.
    pub fn write_from(&mut self, coord: usize, key: u64) -> WriteOutcome {
        let op_id = self.alloc_op();
        let seq = self.alloc_seq(key);
        let version = Version::new(seq, coord as u32);
        let replicas: Vec<usize> = self.ring.replicas(key).iter().map(|&n| n as usize).collect();
        let start = self.sim.now();
        self.sim.inject(coord, 0.0, Msg::ClientWrite { op_id, key, version, replicas });
        let deadline = start + pbs_sim::SimDuration::from_ms(self.opts.op_timeout_ms);
        let result = self.step_until_result(coord, op_id, deadline);
        let commit = match result {
            Some(ClientResult::Write { commit, .. }) => commit,
            Some(other) => unreachable!("write op returned {other:?}"),
            None => None,
        };
        if let Some(ct) = commit {
            self.ground_truth.record_commit(key, seq, ct);
        }
        WriteOutcome { op_id, key, seq, start, commit }
    }

    /// Blocking quorum read issued immediately.
    pub fn read(&mut self, key: u64) -> ReadOutcome {
        let at = self.sim.now();
        self.read_at(key, at)
    }

    /// Blocking quorum read issued at absolute simulated time `at`
    /// (≥ now) — used to probe "t ms after commit".
    pub fn read_at(&mut self, key: u64, at: SimTime) -> ReadOutcome {
        let coord = self.pick_coordinator();
        self.read_at_from(coord, key, at)
    }

    /// Blocking quorum read from a specific coordinator at time `at`.
    pub fn read_at_from(&mut self, coord: usize, key: u64, at: SimTime) -> ReadOutcome {
        let op_id = self.alloc_op();
        let replicas: Vec<usize> = self.ring.replicas(key).iter().map(|&n| n as usize).collect();
        self.sim.inject_at(coord, at, Msg::ClientRead { op_id, key, replicas });
        let deadline = at + pbs_sim::SimDuration::from_ms(self.opts.op_timeout_ms);
        let result = self.step_until_result(coord, op_id, deadline);
        match result {
            Some(ClientResult::Read { start, finish, version, .. }) => {
                let returned_seq = version.map(|v| v.seq);
                let label = self.ground_truth.label_read(key, start, returned_seq);
                ReadOutcome { op_id, key, start, finish: Some(finish), returned_seq, label: Some(label) }
            }
            Some(other) => unreachable!("read op returned {other:?}"),
            None => ReadOutcome {
                op_id,
                key,
                start: at,
                finish: None,
                returned_seq: None,
                label: None,
            },
        }
    }

    /// Drain the per-leg WARS latency samples recorded by every node
    /// (requires `record_leg_samples`). Feed these into
    /// `pbs_predictor::Predictor::from_samples` to close the
    /// measure→predict loop of §6.
    pub fn drain_leg_samples(&mut self) -> crate::node::LegSamples {
        let mut all = crate::node::LegSamples::default();
        for id in 0..self.opts.nodes as usize {
            all.merge(&mut self.sim.actor_mut(id).leg_samples);
        }
        all
    }

    /// Drain the staleness-detector logs of every node.
    pub fn drain_detector_events(&mut self) -> Vec<DetectorEvent> {
        let mut all = Vec::new();
        for id in 0..self.opts.nodes as usize {
            all.append(&mut self.sim.actor_mut(id).detector_log);
        }
        all.sort_by_key(|e| (e.at, e.op_id));
        all
    }

    /// Run a pre-generated trace of operations (times must be
    /// nondecreasing), then settle and label everything.
    pub fn run_trace(&mut self, trace: &[TraceOp]) -> TraceReport {
        let base = self.sim.now();
        let mut last_at = base;
        for op in trace {
            let at = base + pbs_sim::SimDuration::from_ms(op.at_ms);
            assert!(at >= last_at, "trace must be time-ordered");
            last_at = at;
            let coord = self.pick_coordinator();
            let op_id = self.alloc_op();
            let replicas: Vec<usize> =
                self.ring.replicas(op.key).iter().map(|&n| n as usize).collect();
            if op.is_read {
                self.sim.inject_at(coord, at, Msg::ClientRead { op_id, key: op.key, replicas });
            } else {
                let seq = self.alloc_seq(op.key);
                let version = Version::new(seq, coord as u32);
                self.sim.inject_at(
                    coord,
                    at,
                    Msg::ClientWrite { op_id, key: op.key, version, replicas },
                );
            }
        }
        // Let everything settle (including the op timeout window).
        let settle = last_at + pbs_sim::SimDuration::from_ms(self.opts.op_timeout_ms);
        self.sim.run_until(settle);

        // Drain results from every node.
        let mut results: Vec<ClientResult> = Vec::new();
        for id in 0..self.opts.nodes as usize {
            results.extend(self.sim.actor_mut(id).client_results.drain().map(|(_, v)| v));
        }
        // Record commits in time order.
        let mut commits: Vec<(u64, u64, SimTime)> = results
            .iter()
            .filter_map(|r| match r {
                ClientResult::Write { key, version, commit: Some(ct), .. } => {
                    Some((*key, version.seq, *ct))
                }
                _ => None,
            })
            .collect();
        commits.sort_by_key(|&(_, _, ct)| ct);
        for (key, seq, ct) in &commits {
            self.ground_truth.record_commit(*key, *seq, *ct);
        }

        let detector_events = self.drain_detector_events();
        let flagged_ops: std::collections::HashSet<u64> =
            detector_events.iter().map(|e| e.op_id).collect();

        let mut report = TraceReport::default();
        let mut seen_reads = 0usize;
        let mut seen_writes = 0usize;
        for r in &results {
            match r {
                ClientResult::Write { start, commit, .. } => {
                    seen_writes += 1;
                    match commit {
                        Some(ct) => report.write_latencies.push((*ct - *start).as_ms()),
                        None => report.failed_writes += 1,
                    }
                }
                ClientResult::Read { op_id, key, start, finish, version } => {
                    seen_reads += 1;
                    report.read_latencies.push((*finish - *start).as_ms());
                    let returned_seq = version.map(|v| v.seq);
                    let label = self.ground_truth.label_read(*key, *start, returned_seq);
                    let flagged = flagged_ops.contains(op_id);
                    report.reads.push(LabeledRead {
                        op_id: *op_id,
                        key: *key,
                        start: *start,
                        returned_seq,
                        label,
                        flagged,
                    });
                    if flagged {
                        report.detector.flagged += 1;
                        if label.consistent {
                            report.detector.false_positives += 1;
                        } else {
                            report.detector.true_positives += 1;
                        }
                    } else if !label.consistent {
                        report.detector.missed_stale += 1;
                    }
                }
            }
        }
        let total_reads = trace.iter().filter(|o| o.is_read).count();
        let total_writes = trace.len() - total_reads;
        report.incomplete_reads = total_reads - seen_reads;
        report.failed_writes += total_writes - seen_writes;
        report
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use pbs_dist::{Constant, Exponential};
    use std::sync::Arc;

    fn exp_net(w_rate: f64, ars_rate: f64) -> NetworkModel {
        NetworkModel::w_ars(
            Arc::new(Exponential::from_rate(w_rate)),
            Arc::new(Exponential::from_rate(ars_rate)),
        )
    }

    fn cfg(n: u32, r: u32, w: u32) -> ReplicaConfig {
        ReplicaConfig::new(n, r, w).unwrap()
    }

    #[test]
    fn write_then_full_read_returns_it() {
        let mut cluster = Cluster::new(
            ClusterOptions::validation(cfg(3, 3, 3), 1),
            exp_net(0.2, 0.5),
        );
        let w = cluster.write(42);
        assert!(w.commit.is_some());
        assert_eq!(w.seq, 1);
        let r = cluster.read(42);
        assert_eq!(r.returned_seq, Some(1));
        assert!(r.consistent());
    }

    #[test]
    fn strict_quorum_reads_always_consistent() {
        let mut cluster = Cluster::new(
            ClusterOptions::validation(cfg(3, 2, 2), 2),
            exp_net(0.05, 0.5),
        );
        for i in 0..200 {
            let key = i % 7;
            let w = cluster.write(key);
            let commit = w.commit.expect("write commits");
            let r = cluster.read_at(key, commit);
            assert!(r.consistent(), "strict quorum read {i} was stale");
            assert_eq!(r.returned_seq, Some(w.seq));
        }
    }

    #[test]
    fn partial_quorum_shows_staleness_at_t0() {
        // Slow writes + fast reads ⇒ reads at commit time frequently race
        // ahead of propagation (the §5.3 effect).
        let mut cluster = Cluster::new(
            ClusterOptions::validation(cfg(3, 1, 1), 3),
            exp_net(0.05, 2.0),
        );
        let mut stale = 0;
        let trials = 400;
        for _ in 0..trials {
            let w = cluster.write(7);
            let commit = w.commit.expect("commits");
            let r = cluster.read_at(7, commit);
            if !r.consistent() {
                stale += 1;
            }
        }
        let stale_frac = stale as f64 / trials as f64;
        assert!(
            stale_frac > 0.2 && stale_frac < 0.9,
            "expected substantial staleness at t=0, got {stale_frac}"
        );
    }

    #[test]
    fn versions_are_dense_per_key() {
        let mut cluster = Cluster::new(
            ClusterOptions::validation(cfg(2, 1, 1), 4),
            exp_net(0.5, 0.5),
        );
        for expected in 1..=5u64 {
            assert_eq!(cluster.write(1).seq, expected);
        }
        assert_eq!(cluster.write(2).seq, 1, "independent per key");
    }

    #[test]
    fn crash_prevents_commit_without_quorum() {
        // N=W=2 with one replica down and no hinted handoff: the write can
        // never gather 2 acks; the op times out.
        let mut opts = ClusterOptions::validation(cfg(2, 1, 2), 5);
        opts.op_timeout_ms = 2_000.0;
        let mut cluster = Cluster::new(opts, exp_net(1.0, 1.0));
        let replicas = cluster.ring().replicas(9);
        cluster.crash_node_at(replicas[0] as usize, SimTime::from_ms(0.0), 10_000.0);
        cluster.advance_to(SimTime::from_ms(1.0));
        let w = cluster.write(9);
        assert!(w.commit.is_none(), "write should fail without a quorum");
    }

    #[test]
    fn hinted_handoff_heals_after_recovery() {
        let mut opts = ClusterOptions::validation(cfg(3, 1, 1), 6);
        opts.hinted_handoff = true;
        opts.hint_timeout_ms = 50.0;
        opts.hint_flush_interval_ms = 100.0;
        let mut cluster = Cluster::new(opts, NetworkModel::w_ars(
            Arc::new(Constant::new(1.0)),
            Arc::new(Constant::new(1.0)),
        ));
        let key = 3u64;
        let victim = cluster.ring().replicas(key)[2] as usize;
        cluster.crash_node_at(victim, SimTime::from_ms(0.0), 500.0);
        cluster.advance_to(SimTime::from_ms(1.0));
        // Coordinate from a healthy node (a crashed coordinator would drop
        // the client request entirely).
        let coord = (victim + 1) % 3;
        let w = cluster.write_from(coord, key);
        assert!(w.commit.is_some(), "W=1 commits via healthy replicas");
        // The down replica missed the write; after recovery the hint heals it.
        cluster.advance_to(SimTime::from_ms(2_000.0));
        assert_eq!(
            cluster.node(victim).stored_version(key).map(|v| v.seq),
            Some(1),
            "hint delivered after recovery"
        );
    }

    #[test]
    fn anti_entropy_converges_divergent_replicas() {
        // Wipe a replica, disable repair paths except Merkle sync, and check
        // convergence.
        let mut opts = ClusterOptions::validation(cfg(3, 1, 3), 7);
        opts.sync_interval_ms = Some(200.0);
        opts.wipe_on_crash = true;
        let mut cluster = Cluster::new(opts, NetworkModel::w_ars(
            Arc::new(Constant::new(1.0)),
            Arc::new(Constant::new(1.0)),
        ));
        let key = 11u64;
        let w = cluster.write(key);
        assert!(w.commit.is_some());
        let victim = cluster.ring().replicas(key)[1] as usize;
        // Crash + wipe the replica: it forgets the key. Check while it is
        // still down (recovery immediately triggers a sync round).
        cluster.crash_node_at(victim, cluster.now(), 500.0);
        cluster.advance_to(cluster.now() + pbs_sim::SimDuration::from_ms(60.0));
        assert!(cluster.node(victim).is_down());
        assert_eq!(cluster.node(victim).stored_version(key), None, "wiped");
        // Anti-entropy restores it after recovery.
        cluster.advance_to(cluster.now() + pbs_sim::SimDuration::from_ms(3_000.0));
        assert_eq!(
            cluster.node(victim).stored_version(key).map(|v| v.seq),
            Some(1),
            "Merkle sync restored the key"
        );
    }

    #[test]
    fn read_repair_heals_stale_replicas() {
        let mut opts = ClusterOptions::validation(cfg(3, 1, 1), 8);
        opts.read_repair = true;
        let mut cluster = Cluster::new(opts, exp_net(0.05, 1.0));
        let key = 13u64;
        let w = cluster.write(key);
        let commit = w.commit.unwrap();
        let _ = cluster.read_at(key, commit);
        // After the read completes and repairs propagate, all replicas hold
        // the version.
        cluster.advance_to(cluster.now() + pbs_sim::SimDuration::from_ms(60_000.0));
        for &rep in &cluster.ring().replicas(key) {
            assert_eq!(
                cluster.node(rep as usize).stored_version(key).map(|v| v.seq),
                Some(1),
                "replica {rep} repaired"
            );
        }
        let repairs: u64 = (0..3).map(|i| cluster.node(i).repairs_sent).sum();
        let _ = repairs; // repairs may be zero if the quorum had propagated
    }

    #[test]
    fn trace_run_reports_consistency_and_detector() {
        let mut cluster = Cluster::new(
            ClusterOptions::validation(cfg(3, 1, 1), 9),
            exp_net(0.05, 1.0),
        );
        let mut trace = Vec::new();
        for i in 0..600 {
            trace.push(TraceOp { at_ms: i as f64 * 5.0, is_read: i % 3 != 0, key: i % 4 });
        }
        let report = cluster.run_trace(&trace);
        assert_eq!(report.failed_writes, 0);
        assert_eq!(report.incomplete_reads, 0);
        assert_eq!(report.reads.len(), 400);
        let rate = report.consistency_rate();
        assert!(rate > 0.3, "consistency rate {rate}");
        // Detector bookkeeping is internally consistent.
        let d = report.detector;
        assert_eq!(d.flagged, d.true_positives + d.false_positives);
        let stale_reads = report.reads.iter().filter(|r| !r.label.consistent).count();
        assert_eq!(stale_reads, d.true_positives + d.missed_stale);
    }

    #[test]
    fn partition_blocks_quorum_until_healed() {
        // N=W=3: a minority partition starves the write quorum entirely.
        let mut opts = ClusterOptions::validation(cfg(3, 1, 3), 21);
        opts.op_timeout_ms = 500.0;
        let mut cluster = Cluster::new(opts, NetworkModel::w_ars(
            Arc::new(Constant::new(1.0)),
            Arc::new(Constant::new(1.0)),
        ));
        cluster.network().partition(vec![0, 0, 1]);
        let w = cluster.write_from(0, 5);
        assert!(w.commit.is_none(), "W=3 cannot commit across a partition");
        cluster.network().heal_partition();
        let w = cluster.write_from(0, 5);
        assert!(w.commit.is_some(), "healing restores delivery");
    }

    #[test]
    fn set_replication_changes_quorums_live() {
        let mut opts = ClusterOptions::validation(cfg(3, 1, 1), 22);
        opts.op_timeout_ms = 500.0;
        let mut cluster = Cluster::new(opts, NetworkModel::w_ars(
            Arc::new(Constant::new(1.0)),
            Arc::new(Constant::new(1.0)),
        ));
        // R=W=1 under a minority partition: a majority-side coordinator
        // still commits (itself is a replica).
        cluster.network().partition(vec![0, 0, 1]);
        let w = cluster.write_from(0, 7);
        assert!(w.commit.is_some());
        // Tighten to W=3 live: the same write now fails under partition.
        cluster.set_replication(cfg(3, 3, 3));
        assert_eq!(cluster.replication(), cfg(3, 3, 3));
        let w = cluster.write_from(0, 7);
        assert!(w.commit.is_none(), "new W=3 quorum respected immediately");
        cluster.network().heal_partition();
        let w = cluster.write_from(0, 7);
        assert!(w.commit.is_some());
        let r = cluster.read(7);
        assert!(r.consistent(), "R=3 strict read after heal");
    }

    #[test]
    fn set_replication_rebuilds_ring_for_new_n() {
        let mut opts = ClusterOptions::validation(cfg(2, 1, 2), 23);
        opts.nodes = 4;
        let mut cluster = Cluster::new(opts, NetworkModel::w_ars(
            Arc::new(Constant::new(1.0)),
            Arc::new(Constant::new(1.0)),
        ));
        assert_eq!(cluster.ring().replicas(9).len(), 2);
        cluster.set_replication(cfg(3, 1, 3));
        assert_eq!(cluster.ring().replicas(9).len(), 3, "ring re-placed for N=3");
        let w = cluster.write(9);
        assert!(w.commit.is_some(), "W=3 write commits on the new replica set");
    }

    #[test]
    fn deterministic_given_seed() {
        let run = |seed| {
            let mut cluster = Cluster::new(
                ClusterOptions::validation(cfg(3, 1, 1), seed),
                exp_net(0.1, 0.5),
            );
            let mut sum = 0.0;
            for _ in 0..50 {
                let w = cluster.write(1);
                sum += w.latency_ms().unwrap();
            }
            sum
        };
        assert_eq!(run(42), run(42));
        assert_ne!(run(42), run(43));
    }
}
