//! The cluster harness: builds the simulated store, hosts both the
//! blocking client API and the open-loop client actors, and labels every
//! read against ground truth.
//!
//! Two client paths share one simulation (sequentially, never
//! interleaved — blocking ops are allowed only before `start_clients`,
//! where they are handy for seeding data):
//!
//! * **Blocking** ([`Cluster::write`] / [`Cluster::read`]) — the harness
//!   injects one operation, steps the simulation until its result appears,
//!   and labels it immediately. One op at a time; the §5.2 probe shape.
//! * **Open loop** ([`Cluster::add_client`] + [`Cluster::drain_window`]) —
//!   clients live *inside* the simulation as one [`ClientTable`] per PDES
//!   worker, generate arrivals lazily from streaming `pbs-workload`
//!   sources, and keep thousands of operations in flight. Completed ops
//!   stream out through each table's bounded buffer; the driver drains
//!   them every window, folds commits into the online [`GroundTruth`]
//!   watermark, and labels reads incrementally. Memory is bounded by
//!   client count + in-flight work, never by workload length — and with
//!   [`Cluster::add_clients_shared`] the per-client footprint is roughly
//!   one cache line, so a single process sustains millions of clients.

use crate::buggify::ProtocolMutations;
use crate::checker::{CrashRecord, OpHistory};
use crate::client::{ClientOptions, ClientStats, ClientTable, CompletedOp};
use crate::fxhash::FxHashMap;
use crate::messages::Msg;
use crate::network::NetworkModel;
use crate::node::{ClientResult, DetectorEvent, DownTracker, Node, NodeOptions};
use crate::partition::PartitionPlan;
use crate::ring::Ring;
use crate::staleness::{GroundTruth, ReadLabel};
use pbs_core::ReplicaConfig;
use pbs_sim::{
    Actor, ActorId, Context, Event, ParallelSimulation, PdesError, PdesStats, SimDuration,
    SimTime, Simulation,
};
use pbs_workload::{OpKind, OpSource, SharedOpSource};
use rand::rngs::StdRng;
use rand::SeedableRng;
use std::collections::VecDeque;
use std::sync::Arc;

/// Cluster-wide configuration.
#[derive(Debug, Clone, Copy)]
pub struct ClusterOptions {
    /// Physical nodes in the cluster (≥ the replication factor).
    pub nodes: u32,
    /// `(N, R, W)` replication parameters.
    pub replication: ReplicaConfig,
    /// Virtual nodes per physical node on the consistent-hashing ring.
    pub vnodes: u32,
    /// Enable read repair (§4.2). Off for WARS validation, as in the paper.
    pub read_repair: bool,
    /// Enable hinted handoff (Dynamo §4.6).
    pub hinted_handoff: bool,
    /// Write-straggler deadline before hinting.
    pub hint_timeout_ms: f64,
    /// Hint redelivery period.
    pub hint_flush_interval_ms: f64,
    /// Message loss probability.
    pub drop_prob: f64,
    /// Merkle anti-entropy period (None = disabled, Cassandra's default
    /// posture per §4.2).
    pub sync_interval_ms: Option<f64>,
    /// Whether crashed nodes lose their stores.
    pub wipe_on_crash: bool,
    /// Client-side operation timeout. Also the retention horizon for the
    /// coordinators' pending-op sweep and the detector-matching grace
    /// window.
    pub op_timeout_ms: f64,
    /// Record per-message one-way W/A/R/S delays for online prediction
    /// (§5.5/§6); drain with [`Cluster::drain_leg_samples`].
    pub record_leg_samples: bool,
    /// Garbage-collect the online ground truth behind the watermark
    /// (lagged by `op_timeout_ms`, the oldest start any still-unlabelled
    /// read can have). Labels are bit-identical with it on or off — see
    /// the [`staleness`](crate::staleness) module docs — while per-key
    /// history memory becomes independent of run length. Default on.
    pub gc_ground_truth: bool,
    /// Test-only protocol mutations for oracle validation — each flag
    /// deliberately breaks one anti-entropy mechanism so the checker's
    /// order oracle can prove it would catch the regression. All off in
    /// any real run.
    pub mutations: ProtocolMutations,
    /// Master seed (node and client RNGs derive from it).
    pub seed: u64,
}

impl ClusterOptions {
    /// The §5.2 validation setup: a cluster of exactly `N` nodes, read
    /// repair disabled, no anti-entropy, reliable messages.
    pub fn validation(replication: ReplicaConfig, seed: u64) -> Self {
        Self {
            nodes: replication.n(),
            replication,
            vnodes: 16,
            read_repair: false,
            hinted_handoff: false,
            hint_timeout_ms: 250.0,
            hint_flush_interval_ms: 500.0,
            drop_prob: 0.0,
            sync_interval_ms: None,
            wipe_on_crash: false,
            op_timeout_ms: 60_000.0,
            record_leg_samples: false,
            gc_ground_truth: true,
            mutations: ProtocolMutations::default(),
            seed,
        }
    }
}

/// Outcome of a blocking write.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct WriteOutcome {
    /// Operation id.
    pub op_id: u64,
    /// Key written.
    pub key: u64,
    /// Coordinator-assigned sequence number — the write's start instant
    /// in nanoseconds + 1, so versions order by write-start time (0 when
    /// the operation produced no result at all — e.g. the op timed out
    /// before the coordinator reported back).
    pub seq: u64,
    /// Issue time.
    pub start: SimTime,
    /// Commit time (None = failed/timed out).
    pub commit: Option<SimTime>,
}

impl WriteOutcome {
    /// Commit latency in ms, if the write committed.
    pub fn latency_ms(&self) -> Option<f64> {
        self.commit.map(|c| (c - self.start).as_ms())
    }
}

/// Outcome of a blocking read.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ReadOutcome {
    /// Operation id.
    pub op_id: u64,
    /// Key read.
    pub key: u64,
    /// Issue time.
    pub start: SimTime,
    /// Completion time (None = timed out).
    pub finish: Option<SimTime>,
    /// Returned sequence number (None = no responder had the key, or
    /// timeout).
    pub returned_seq: Option<u64>,
    /// Ground-truth verdict (None = timed out).
    pub label: Option<ReadLabel>,
}

impl ReadOutcome {
    /// Operation latency in ms, if completed.
    pub fn latency_ms(&self) -> Option<f64> {
        self.finish.map(|f| (f - self.start).as_ms())
    }

    /// Whether this read satisfied t-visibility.
    pub fn consistent(&self) -> bool {
        self.label.map(|l| l.consistent).unwrap_or(false)
    }
}

/// Detector performance against ground truth (§4.3).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct DetectorStats {
    /// Reads flagged by the detector.
    pub flagged: usize,
    /// Flagged reads that were truly inconsistent.
    pub true_positives: usize,
    /// Flagged reads that were actually consistent (in-flight/newer
    /// versions — the paper's predicted false-positive mode).
    pub false_positives: usize,
    /// Inconsistent reads the detector missed (e.g. the fresher replica
    /// never responded).
    pub missed_stale: usize,
}

impl DetectorStats {
    /// Precision: fraction of flags that were truly stale (1 with no
    /// flags).
    pub fn precision(&self) -> f64 {
        if self.flagged == 0 {
            1.0
        } else {
            self.true_positives as f64 / self.flagged as f64
        }
    }

    /// Recall: fraction of truly stale reads that were flagged (1 with no
    /// stale reads).
    pub fn recall(&self) -> f64 {
        let stale = self.true_positives + self.missed_stale;
        if stale == 0 {
            1.0
        } else {
            self.true_positives as f64 / stale as f64
        }
    }
}

/// Streaming matcher between labelled reads and asynchronous detector
/// flags. A flag can arrive a window or two after its read was labelled
/// (the `N − R` late responses trickle in), so verdicts are retained for
/// one op-timeout after labelling and matched as flags drain.
#[derive(Debug, Default)]
struct DetectorTracker {
    /// op id → (consistent, already flagged).
    verdicts: FxHashMap<u64, (bool, bool)>,
    /// `(expires_at, op_id)` in insertion (= time) order.
    expiry: VecDeque<(SimTime, u64)>,
    flagged: usize,
    true_positives: usize,
    false_positives: usize,
    stale_seen: usize,
}

impl DetectorTracker {
    fn observe_read(&mut self, op_id: u64, consistent: bool, expires_at: SimTime) {
        if !consistent {
            self.stale_seen += 1;
        }
        self.verdicts.insert(op_id, (consistent, false));
        self.expiry.push_back((expires_at, op_id));
    }

    fn observe_flag(&mut self, op_id: u64) {
        if let Some((consistent, flagged)) = self.verdicts.get_mut(&op_id) {
            if *flagged {
                return; // several late responses can flag one read
            }
            *flagged = true;
            self.flagged += 1;
            if *consistent {
                self.false_positives += 1;
            } else {
                self.true_positives += 1;
            }
        }
    }

    fn expire(&mut self, now: SimTime) {
        while let Some(&(at, op_id)) = self.expiry.front() {
            if at > now {
                break;
            }
            self.expiry.pop_front();
            self.verdicts.remove(&op_id);
        }
    }

    fn stats(&self) -> DetectorStats {
        DetectorStats {
            flagged: self.flagged,
            true_positives: self.true_positives,
            false_positives: self.false_positives,
            missed_stale: self.stale_seen - self.true_positives,
        }
    }
}

/// A read drained from the open-loop engine, labelled against the online
/// ground-truth watermark.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct OpenRead {
    /// The completed operation (`finish: None` = client-side timeout).
    pub op: CompletedOp,
    /// Ground-truth verdict (None when the read timed out).
    pub label: Option<ReadLabel>,
}

/// Everything that finished during one open-loop window.
#[derive(Debug, Clone, Default)]
pub struct WindowDrain {
    /// The window's closing instant (= the new commit watermark).
    pub until_ms: f64,
    /// Completed writes (committed, failed, and timed out).
    pub writes: Vec<CompletedOp>,
    /// Completed reads with their online labels.
    pub reads: Vec<OpenRead>,
}

/// One item yielded by [`WindowDrain::fold`].
#[derive(Debug, Clone, Copy)]
pub enum WindowOp<'a> {
    /// A completed write (committed, failed, or timed out).
    Write(&'a CompletedOp),
    /// A completed read with its online label.
    Read(&'a OpenRead),
}

impl WindowDrain {
    /// Visit every drained op with its reporting-window index — the one
    /// shared definition of window attribution (by op **start**, clamped
    /// to the grid) used by every open-loop consumer, so the scenario
    /// time-series and the engine reports can never diverge on it.
    pub fn fold<F>(&self, window_ms: f64, last_window: usize, mut visit: F)
    where
        F: FnMut(usize, WindowOp<'_>),
    {
        let widx = |start: SimTime| ((start.as_ms() / window_ms) as usize).min(last_window);
        for w in &self.writes {
            visit(widx(w.start), WindowOp::Write(w));
        }
        for r in &self.reads {
            visit(widx(r.op.start), WindowOp::Read(r));
        }
    }
}

/// Either a storage node or a worker's client table — the two inhabitants
/// of the cluster's simulation.
#[allow(clippy::large_enum_variant)]
pub enum ClusterActor {
    /// A Dynamo-style storage node (coordinator + replica).
    Node(Node),
    /// All open-loop clients of one PDES worker, as a single
    /// struct-of-arrays actor.
    Clients(ClientTable),
}

impl Actor for ClusterActor {
    type Msg = Msg;

    fn on_event(&mut self, ctx: &mut Context<'_, Msg>, event: Event<Msg>) {
        match self {
            ClusterActor::Node(n) => n.on_event(ctx, event),
            ClusterActor::Clients(t) => t.on_event(ctx, event),
        }
    }
}

/// Which event engine a [`Cluster`] runs on.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum EngineKind {
    /// The ordinary single-threaded engine over one partition — the
    /// default, and bit-identical to every pre-parallel release.
    Serial,
    /// The serial engine, but with clients restricted to the coordinator
    /// ranges of a `workers`-way [`PartitionPlan`] — issues exactly the
    /// operations a [`Parallel`](Self::Parallel) run with the same
    /// `workers` would, on one thread. The reference side of the
    /// serial-vs-parallel equivalence checks.
    SerialPartitioned {
        /// Partition count to plan for.
        workers: usize,
    },
    /// The conservative parallel engine: `workers` threads, each owning a
    /// contiguous node range plus its affine clients, synchronized by
    /// lookahead windows derived from the network model's minimum
    /// cross-partition delay.
    Parallel {
        /// Worker-thread count.
        workers: usize,
    },
}

impl EngineKind {
    fn workers(self) -> usize {
        match self {
            EngineKind::Serial => 1,
            EngineKind::SerialPartitioned { workers } | EngineKind::Parallel { workers } => workers,
        }
    }
}

/// The engine behind a cluster: one serial event loop, or the partitioned
/// parallel one. All driver-side plumbing (drains, injections, actor
/// access) dispatches through this, so both paths share every line of the
/// harness above it.
enum Engine {
    Serial(Simulation<ClusterActor>),
    Parallel(ParallelSimulation<ClusterActor>),
}

impl Engine {
    fn now(&self) -> SimTime {
        match self {
            Engine::Serial(s) => s.now(),
            Engine::Parallel(p) => p.now(),
        }
    }

    fn add_actor(&mut self, actor: ClusterActor, worker: usize) -> ActorId {
        match self {
            Engine::Serial(s) => s.add_actor(actor),
            Engine::Parallel(p) => p.add_actor(actor, worker),
        }
    }

    fn actor(&self, id: ActorId) -> &ClusterActor {
        match self {
            Engine::Serial(s) => s.actor(id),
            Engine::Parallel(p) => p.actor(id),
        }
    }

    fn actor_mut(&mut self, id: ActorId) -> &mut ClusterActor {
        match self {
            Engine::Serial(s) => s.actor_mut(id),
            Engine::Parallel(p) => p.actor_mut(id),
        }
    }

    fn inject(&mut self, target: ActorId, delay_ms: f64, msg: Msg) {
        match self {
            Engine::Serial(s) => s.inject(target, delay_ms, msg),
            Engine::Parallel(p) => p.inject(target, delay_ms, msg),
        }
    }

    fn inject_at(&mut self, target: ActorId, at: SimTime, msg: Msg) {
        match self {
            Engine::Serial(s) => s.inject_at(target, at, msg),
            Engine::Parallel(p) => p.inject_at(target, at, msg),
        }
    }

    fn run_until(&mut self, deadline: SimTime) {
        match self {
            Engine::Serial(s) => s.run_until(deadline),
            Engine::Parallel(p) => p.run_until(deadline),
        }
    }

    fn pending_events(&self) -> usize {
        match self {
            Engine::Serial(s) => s.pending_events(),
            Engine::Parallel(p) => p.pending_events(),
        }
    }

    fn events_processed(&self) -> u64 {
        match self {
            Engine::Serial(s) => s.events_processed(),
            Engine::Parallel(p) => p.events_processed(),
        }
    }

    fn scheduler_stats(&self) -> pbs_sim::SchedulerStats {
        match self {
            Engine::Serial(s) => s.scheduler_stats(),
            Engine::Parallel(p) => p.scheduler_stats(),
        }
    }

    /// The serial simulation, for the blocking single-step client path.
    /// The parallel engine executes whole lookahead windows and cannot
    /// single-step, so blocking operations require a serial cluster.
    fn serial_mut(&mut self) -> &mut Simulation<ClusterActor> {
        match self {
            Engine::Serial(s) => s,
            Engine::Parallel(_) => panic!(
                "blocking operations single-step the event loop and require a serial \
                 cluster; drive a parallel cluster through the open-loop path"
            ),
        }
    }
}

/// A simulated Dynamo-style cluster hosting storage nodes and (optionally)
/// open-loop client actors.
pub struct Cluster {
    engine: Engine,
    plan: PartitionPlan,
    ring: Arc<Ring>,
    net: Arc<NetworkModel>,
    opts: ClusterOptions,
    rng: StdRng,
    next_op: u64,
    down: Arc<DownTracker>,
    /// The client table of each worker (created lazily on the first client
    /// routed there).
    tables: Vec<Option<ActorId>>,
    client_count: u32,
    clients_started: bool,
    ground_truth: GroundTruth,
    detector: DetectorTracker,
    /// Recorded op history for the offline [`checker`](crate::checker)
    /// (None = recording off, the default: the open-loop engine's
    /// O(in-flight) memory story is preserved unless a checker asks).
    history: Option<OpHistory>,
    /// Reusable window-drain buffers (completed ops, detector events) so
    /// the per-window plumbing performs no steady-state allocation.
    drain_scratch: Vec<CompletedOp>,
    detector_scratch: Vec<DetectorEvent>,
    /// Every crash scheduled on this cluster, attached to taken histories
    /// so the order oracle can discount evidence from wiped replicas.
    crash_log: Vec<CrashRecord>,
}

impl std::fmt::Debug for Cluster {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Cluster")
            .field("nodes", &self.opts.nodes)
            .field("clients", &self.client_count)
            .field("replication", &self.opts.replication)
            .field("workers", &self.plan.workers())
            .field("now", &self.engine.now())
            .finish()
    }
}

impl Cluster {
    /// Build a serial cluster (the default engine).
    pub fn new(opts: ClusterOptions, network: NetworkModel) -> Self {
        Self::with_engine(opts, network, EngineKind::Serial)
            .expect("the serial engine has no rejectable configuration")
    }

    /// Build a cluster on an explicit engine. With
    /// [`EngineKind::Parallel`], the lookahead is the network model's
    /// minimum cross-partition delay
    /// ([`NetworkModel::min_cross_delay_ms`]); a model whose legs can be
    /// arbitrarily fast (e.g. exponential) has a zero minimum and is
    /// rejected as [`PdesError::DegenerateLookahead`] here, at partition
    /// time — conservative windows could never make progress under it.
    pub fn with_engine(
        opts: ClusterOptions,
        network: NetworkModel,
        kind: EngineKind,
    ) -> Result<Self, PdesError> {
        assert!(
            opts.nodes >= opts.replication.n(),
            "cluster needs at least N={} nodes, got {}",
            opts.replication.n(),
            opts.nodes
        );
        assert!(opts.op_timeout_ms > 0.0);
        let plan = PartitionPlan::contiguous(opts.nodes, kind.workers());
        let ring = Arc::new(Ring::new(opts.nodes, opts.vnodes, opts.replication.n()));
        let net = Arc::new(network);
        let down = Arc::new(DownTracker::new(opts.nodes as usize));
        let node_opts = NodeOptions {
            r: opts.replication.r(),
            w: opts.replication.w(),
            read_repair: opts.read_repair,
            hinted_handoff: opts.hinted_handoff,
            hint_timeout_ms: opts.hint_timeout_ms,
            hint_flush_interval_ms: opts.hint_flush_interval_ms,
            drop_prob: opts.drop_prob,
            record_leg_samples: opts.record_leg_samples,
            mutations: opts.mutations,
        };
        let mut engine = match kind {
            EngineKind::Serial | EngineKind::SerialPartitioned { .. } => {
                Engine::Serial(Simulation::new())
            }
            EngineKind::Parallel { workers } => {
                let lookahead = SimDuration::from_ms(net.min_cross_delay_ms());
                Engine::Parallel(ParallelSimulation::new(workers, lookahead)?)
            }
        };
        for id in 0..opts.nodes as usize {
            let node = Node::new(
                id,
                node_opts,
                Arc::clone(&net),
                Arc::clone(&ring),
                Arc::clone(&down),
                opts.seed,
            );
            let actor = engine.add_actor(ClusterActor::Node(node), plan.worker_of_node(id as u32));
            debug_assert_eq!(actor, id);
        }
        if let Some(interval) = opts.sync_interval_ms {
            for id in 0..opts.nodes as usize {
                engine.inject(id, 0.0, Msg::StartSync { interval_ms: interval });
            }
        }
        // Pending-op GC keeps coordinator state bounded by in-flight work.
        for id in 0..opts.nodes as usize {
            engine.inject(id, 0.0, Msg::StartGc { interval_ms: opts.op_timeout_ms });
        }
        let workers = plan.workers();
        Ok(Self {
            engine,
            plan,
            ring,
            net,
            opts,
            rng: StdRng::seed_from_u64(opts.seed.wrapping_mul(0xd134_2543_de82_ef95)),
            next_op: 1,
            down,
            tables: vec![None; workers],
            client_count: 0,
            clients_started: false,
            ground_truth: GroundTruth::new(),
            detector: DetectorTracker::default(),
            history: None,
            drain_scratch: Vec::new(),
            detector_scratch: Vec::new(),
            crash_log: Vec::new(),
        })
    }

    /// Current simulated time.
    pub fn now(&self) -> SimTime {
        self.engine.now()
    }

    /// The partition plan in effect (a single all-owning partition on a
    /// plain serial cluster).
    pub fn partition_plan(&self) -> &PartitionPlan {
        &self.plan
    }

    /// Per-worker execution counters of the parallel engine (`None` on a
    /// serial cluster).
    pub fn pdes_stats(&self) -> Option<PdesStats> {
        match &self.engine {
            Engine::Serial(_) => None,
            Engine::Parallel(p) => Some(p.stats()),
        }
    }

    /// The cluster's replication configuration.
    pub fn replication(&self) -> ReplicaConfig {
        self.opts.replication
    }

    /// The consistent-hashing ring.
    pub fn ring(&self) -> &Ring {
        &self.ring
    }

    /// The cluster's network model. Its dynamic-condition methods
    /// (partitions, link faults, regime swaps, buggify fault profiles)
    /// take `&self`, so faults can be injected mid-run:
    /// `cluster.network().partition(vec![0, 0, 1])` — or, with explicit
    /// length checking, `cluster.network().try_partition(groups,
    /// cluster.node_count())`.
    pub fn network(&self) -> &NetworkModel {
        &self.net
    }

    /// Number of storage nodes (client actors excluded).
    pub fn node_count(&self) -> usize {
        self.opts.nodes as usize
    }

    /// The current replica set of `key`, as node indices.
    pub fn replicas_of(&self, key: u64) -> Vec<usize> {
        self.ring.replicas(key).iter().map(|&n| n as usize).collect()
    }

    /// Start recording every completed operation (and its online label)
    /// into an [`OpHistory`] for the offline [`checker`](crate::checker).
    /// Costs O(operations) memory — a deliberate trade for auditability;
    /// leave it off for long measurement runs.
    pub fn enable_history(&mut self) {
        self.history.get_or_insert_with(OpHistory::new);
    }

    /// Take the recorded history (recording continues into a fresh one if
    /// it was enabled), stamped with every crash scheduled so far so the
    /// order oracle can discount evidence from wiped replicas. Returns an
    /// empty history when recording was never enabled.
    ///
    /// Taking the history closes the run from the checker's point of
    /// view: every client operation still in flight is flushed into it as
    /// an open (no-response) invocation first. A write pending at
    /// shutdown may already have applied on replicas — its coordinator
    /// may have crashed holding the op — so later reads can return its
    /// version; without the open record the linearizability checker would
    /// convict those reads as phantoms.
    pub fn take_history(&mut self) -> OpHistory {
        if self.history.is_some() {
            let mut pending = Vec::new();
            for worker in 0..self.tables.len() {
                if let Some(id) = self.tables[worker] {
                    pending.append(&mut self.table_mut(id).take_in_flight());
                }
            }
            pending.sort_unstable_by_key(|op| op.op_id);
            let history = self.history.as_mut().expect("checked above");
            for op in pending {
                history.push(op, None);
            }
        }
        let mut h = match self.history.as_mut() {
            Some(h) => std::mem::take(h),
            None => OpHistory::new(),
        };
        h.set_crashes(self.crash_log.clone());
        h
    }

    /// Apply a new `(N, R, W)` configuration to the **running** cluster
    /// (§6 "Variable configurations" — the reconfiguration an adaptive
    /// controller issues when conditions drift).
    ///
    /// `R`/`W` changes take effect for every subsequent operation and for
    /// the next response of any operation still in flight (coordinators
    /// test quorums with `≥`). Changing `N` rebuilds the placement ring:
    /// data written under the old placement stays where it is and new
    /// replica sets take over for subsequent operations, so freshly added
    /// replicas serve empty reads until read repair or anti-entropy
    /// migrates the data — exactly the transient a real Dynamo-style
    /// reconfiguration exhibits.
    pub fn set_replication(&mut self, cfg: ReplicaConfig) {
        assert!(
            self.opts.nodes >= cfg.n(),
            "cluster has {} nodes; cannot replicate {}-way",
            self.opts.nodes,
            cfg.n()
        );
        if cfg.n() != self.opts.replication.n() {
            let ring = Arc::new(Ring::new(self.opts.nodes, self.opts.vnodes, cfg.n()));
            self.ring = Arc::clone(&ring);
            for id in 0..self.opts.nodes as usize {
                self.node_mut(id).set_ring(Arc::clone(&ring));
            }
        }
        self.opts.replication = cfg;
        for id in 0..self.opts.nodes as usize {
            self.node_mut(id).set_quorums(cfg.r(), cfg.w());
        }
    }

    /// Ground-truth commit history (for custom analyses).
    pub fn ground_truth(&self) -> &GroundTruth {
        &self.ground_truth
    }

    /// Direct access to a node (stats, stored versions, crash state).
    /// Panics if `id` is a client actor.
    pub fn node(&self, id: usize) -> &Node {
        match self.engine.actor(id) {
            ClusterActor::Node(n) => n,
            ClusterActor::Clients(_) => panic!("actor {id} is a client table, not a node"),
        }
    }

    fn node_mut(&mut self, id: usize) -> &mut Node {
        match self.engine.actor_mut(id) {
            ClusterActor::Node(n) => n,
            ClusterActor::Clients(_) => panic!("actor {id} is a client table, not a node"),
        }
    }

    fn table(&self, id: ActorId) -> &ClientTable {
        match self.engine.actor(id) {
            ClusterActor::Clients(t) => t,
            ClusterActor::Node(_) => panic!("actor {id} is a node, not a client table"),
        }
    }

    fn table_mut(&mut self, id: ActorId) -> &mut ClientTable {
        match self.engine.actor_mut(id) {
            ClusterActor::Clients(t) => t,
            ClusterActor::Node(_) => panic!("actor {id} is a node, not a client table"),
        }
    }

    /// The client-table actor of `worker`, created on first use.
    fn table_id(&mut self, worker: usize, copts: ClientOptions) -> ActorId {
        if let Some(id) = self.tables[worker] {
            return id;
        }
        let table = ClientTable::new(
            worker,
            self.plan.workers(),
            // Client affinity: a client lives on one worker and coordinates
            // only through that worker's node range — client↔coordinator
            // traffic is zero-delay, so it must never cross partitions. On
            // a one-partition plan the range is every node, reproducing the
            // unrestricted pick bit-for-bit.
            self.plan.node_range(worker),
            copts,
            Arc::clone(&self.down),
            self.opts.seed,
        );
        let id = self.engine.add_actor(ClusterActor::Clients(table), worker);
        self.tables[worker] = Some(id);
        id
    }

    /// Advance simulated time, processing all events up to `at`.
    ///
    /// On a parallel cluster, the lookahead is re-derived from the
    /// network model first: scenario events between windows can reshape
    /// the latency regime, and the conservative horizon must track it.
    /// Panics if a mid-run regime swap collapses the minimum
    /// cross-partition delay to zero — parallel clusters require latency
    /// models with a positive support minimum throughout the run (build
    /// with [`EngineKind::Serial`] to use such models).
    pub fn advance_to(&mut self, at: SimTime) {
        if let Engine::Parallel(p) = &mut self.engine {
            let lookahead = SimDuration::from_ms(self.net.min_cross_delay_ms());
            p.set_lookahead(lookahead).unwrap_or_else(|e| {
                panic!("a condition change degenerated the parallel lookahead mid-run: {e}")
            });
        }
        self.engine.run_until(at);
    }

    /// Schedule a crash of `node` at `at` for `down_ms` (state wiped when
    /// the cluster's `wipe_on_crash` is set).
    pub fn crash_node_at(&mut self, node: usize, at: SimTime, down_ms: f64) {
        let wipe = self.opts.wipe_on_crash;
        assert!(node < self.opts.nodes as usize, "cannot crash client actor {node}");
        self.crash_log.push(CrashRecord { node: node as u32, at, down_ms, wipe });
        self.engine.inject_at(node, at, Msg::Crash { down_ms, wipe });
    }

    /// Choose a coordinator for the next operation: uniform over **up**
    /// nodes, falling back to an arbitrary node only when the whole
    /// cluster is down (the op then times out, as it must). Handing an
    /// operation to a crashed node would silently turn it into an op
    /// timeout.
    fn pick_coordinator(&mut self) -> usize {
        self.down.pick_up_node(&mut self.rng, self.opts.nodes as usize)
    }

    fn alloc_op(&mut self) -> u64 {
        let id = self.next_op;
        self.next_op += 1;
        id
    }

    /// The two client paths cannot *interleave*: a blocking op steps the
    /// simulation and records its commit directly, advancing the ground
    /// truth past open-loop results still buffered in client actors —
    /// which would corrupt the watermark. Blocking ops are fine **before**
    /// clients start (e.g. seeding data); once `start_clients` has run,
    /// only the open-loop drain may drive this cluster.
    fn assert_blocking_allowed(&self) {
        assert!(
            !self.clients_started,
            "blocking operations cannot interleave with started open-loop clients \
             (seed data before start_clients, or use the open-loop path)"
        );
    }

    fn step_until_result(&mut self, coord: usize, op_id: u64, deadline: SimTime) -> Option<ClientResult> {
        loop {
            if let Some(res) = self.node_mut(coord).client_results.remove(&op_id) {
                return Some(res);
            }
            let sim = self.engine.serial_mut();
            match sim.peek_next_time() {
                Some(t) if t <= deadline => {
                    sim.step();
                }
                _ => return None,
            }
        }
    }

    /// Blocking quorum write from a random up coordinator; returns at
    /// commit time (or after the op timeout).
    pub fn write(&mut self, key: u64) -> WriteOutcome {
        let coord = self.pick_coordinator();
        self.write_from(coord, key)
    }

    /// Blocking quorum write from a specific coordinator. The coordinator
    /// assigns the version's sequence number when the write starts.
    pub fn write_from(&mut self, coord: usize, key: u64) -> WriteOutcome {
        self.assert_blocking_allowed();
        let op_id = self.alloc_op();
        let start = self.engine.now();
        self.engine.inject(coord, 0.0, Msg::ClientWrite { op_id, key });
        let deadline = start + pbs_sim::SimDuration::from_ms(self.opts.op_timeout_ms);
        let result = self.step_until_result(coord, op_id, deadline);
        let (seq, writer, commit, acked) = match result {
            Some(ClientResult::Write { version, commit, acked, .. }) => {
                (version.seq, Some(version.writer), commit, acked)
            }
            Some(other) => unreachable!("write op returned {other:?}"),
            None => (0, None, None, 0),
        };
        if let Some(ct) = commit {
            self.ground_truth.record_commit(key, seq, ct);
        }
        // A recorded history must contain every write the cluster saw —
        // commits so the offline relabelling agrees with the online ground
        // truth, and failures/timeouts so the order oracle knows which
        // versions may legitimately surface on replicas (a failed write
        // still installed its version somewhere; a timed-out one marks the
        // key's write set incomplete). Blocking ops carry the client
        // sentinel `u32::MAX`, which never collides with an open-loop
        // client index and is skipped by the session replay.
        if let Some(history) = self.history.as_mut() {
            let finish = match (commit, result.is_some()) {
                (Some(ct), _) => Some(ct),
                (None, true) => Some(self.engine.now()),
                (None, false) => None,
            };
            let op = CompletedOp {
                op_id,
                client: u32::MAX,
                kind: OpKind::Write,
                key,
                start,
                finish,
                seq: result.is_some().then_some(seq),
                commit,
                writer,
                source: None,
                quorum_mask: acked,
            };
            history.push(op, None);
        }
        WriteOutcome { op_id, key, seq, start, commit }
    }

    /// Blocking quorum read issued immediately.
    pub fn read(&mut self, key: u64) -> ReadOutcome {
        let at = self.engine.now();
        self.read_at(key, at)
    }

    /// Blocking quorum read issued at absolute simulated time `at`
    /// (≥ now) — used to probe "t ms after commit".
    pub fn read_at(&mut self, key: u64, at: SimTime) -> ReadOutcome {
        let coord = self.pick_coordinator();
        self.read_at_from(coord, key, at)
    }

    /// Blocking quorum read from a specific coordinator at time `at`.
    pub fn read_at_from(&mut self, coord: usize, key: u64, at: SimTime) -> ReadOutcome {
        self.assert_blocking_allowed();
        let op_id = self.alloc_op();
        self.engine.inject_at(coord, at, Msg::ClientRead { op_id, key });
        let deadline = at + pbs_sim::SimDuration::from_ms(self.opts.op_timeout_ms);
        let result = self.step_until_result(coord, op_id, deadline);
        let outcome = match result {
            Some(ClientResult::Read { start, finish, version, source, responders, .. }) => {
                let returned_seq = version.map(|v| v.seq);
                let label = self.ground_truth.label_read(key, start, returned_seq);
                if let Some(history) = self.history.as_mut() {
                    let op = CompletedOp {
                        op_id,
                        client: u32::MAX,
                        kind: OpKind::Read,
                        key,
                        start,
                        finish: Some(finish),
                        seq: returned_seq,
                        commit: None,
                        writer: version.map(|v| v.writer),
                        source,
                        quorum_mask: responders,
                    };
                    history.push(op, Some(label));
                }
                ReadOutcome { op_id, key, start, finish: Some(finish), returned_seq, label: Some(label) }
            }
            Some(other) => unreachable!("read op returned {other:?}"),
            None => {
                if let Some(history) = self.history.as_mut() {
                    let op = CompletedOp {
                        op_id,
                        client: u32::MAX,
                        kind: OpKind::Read,
                        key,
                        start: at,
                        finish: None,
                        seq: None,
                        commit: None,
                        writer: None,
                        source: None,
                        quorum_mask: 0,
                    };
                    history.push(op, None);
                }
                ReadOutcome { op_id, key, start: at, finish: None, returned_seq: None, label: None }
            }
        };
        outcome
    }

    // ----- the open-loop client path -----

    /// Add an in-sim client that will pull operations from its own boxed
    /// `source` once [`start_clients`](Self::start_clients) runs. Returns
    /// the client's index. All clients routed to one worker share that
    /// table's [`ClientOptions`] (asserted on every add).
    pub fn add_client(&mut self, source: Box<dyn OpSource>, copts: ClientOptions) -> u32 {
        assert!(!self.clients_started, "add clients before starting them");
        let index = self.client_count;
        let worker = self.plan.worker_of_client(index);
        let id = self.table_id(worker, copts);
        let table = self.table_mut(id);
        assert_eq!(table.options(), &copts, "clients of one worker share one option set");
        table.push_client(index, source);
        self.client_count += 1;
        index
    }

    /// Add `count` clients drawing from one **shared** stateless source —
    /// the million-client path: no per-client box, no per-client map, no
    /// per-client pending timer; marginal cost ≈ one cache line per
    /// client. The per-client RNG streams (and therefore histories) are
    /// identical to `count` boxed [`add_client`](Self::add_client) calls
    /// with per-client copies of the same stationary source.
    ///
    /// Shared-source clients cannot be mixed with boxed clients on the
    /// same cluster.
    pub fn add_clients_shared(
        &mut self,
        count: u32,
        source: Arc<dyn SharedOpSource>,
        copts: ClientOptions,
    ) {
        assert!(!self.clients_started, "add clients before starting them");
        assert_eq!(self.client_count, 0, "shared-source clients must be added first and once");
        let workers = self.plan.workers();
        for worker in 0..workers.min(count as usize) {
            let id = self.table_id(worker, copts);
            let rows = (count as usize - worker).div_ceil(workers);
            let table = self.table_mut(id);
            table.set_shared_source(Arc::clone(&source));
            table.reserve_rows(rows);
        }
        for index in 0..count {
            let worker = self.plan.worker_of_client(index);
            let id = self.tables[worker].expect("table created above");
            self.table_mut(id).push_shared_client(index);
        }
        self.client_count = count;
    }

    /// Number of open-loop clients.
    pub fn client_count(&self) -> usize {
        self.client_count as usize
    }

    /// Worker client-table actor ids, in worker order.
    fn table_ids(&self) -> impl Iterator<Item = ActorId> + '_ {
        self.tables.iter().filter_map(|t| *t)
    }

    /// Start every client's arrival stream at the current simulated time.
    pub fn start_clients(&mut self) {
        self.clients_started = true;
        let ids: Vec<ActorId> = self.table_ids().collect();
        for id in ids {
            self.engine.inject(id, 0.0, Msg::StartClient);
        }
    }

    /// Stop every client's arrival stream (in-flight operations still
    /// complete or time out).
    pub fn stop_clients(&mut self) {
        let ids: Vec<ActorId> = self.table_ids().collect();
        for id in ids {
            self.engine.inject(id, 0.0, Msg::StopClient);
        }
    }

    /// Total in-flight operations across all clients.
    pub fn in_flight_total(&self) -> usize {
        self.table_ids().map(|id| self.table(id).in_flight() as usize).sum()
    }

    /// Touched `(client, key)` session-state entries across all client
    /// tables — the component of client memory that scales with the key
    /// universe rather than the client count (memory observability for the
    /// `profile` harness).
    pub fn session_entries_total(&self) -> usize {
        self.table_ids().map(|id| self.table(id).session_entries()).sum()
    }

    /// Events currently pending in the simulation's scheduler — the
    /// open-loop memory story: this stays O(clients + in-flight), never
    /// O(workload length).
    pub fn pending_events(&self) -> usize {
        self.engine.pending_events()
    }

    /// Total events the simulation has dispatched.
    pub fn events_processed(&self) -> u64 {
        self.engine.events_processed()
    }

    /// Scheduler counters (peak queue depth, cascades, slot occupancy) —
    /// surfaced for the `profile` harness. On a parallel cluster these
    /// are summed across the worker wheels.
    pub fn scheduler_stats(&self) -> pbs_sim::SchedulerStats {
        self.engine.scheduler_stats()
    }

    /// Summed per-client counters.
    pub fn client_stats(&self) -> ClientStats {
        let mut total = ClientStats::default();
        for id in self.table_ids() {
            let s = self.table(id).stats();
            total.issued += s.issued;
            total.shed += s.shed;
            total.dropped_results += s.dropped_results;
            total.monotonic_violations += s.monotonic_violations;
            total.ryw_violations += s.ryw_violations;
            total.reads_checked += s.reads_checked;
            // Per-client peaks sum to an upper bound on the global peak.
            total.peak_in_flight += s.peak_in_flight;
        }
        total
    }

    /// Advance to `until`, drain every client's completed operations, fold
    /// the commits into the online ground truth, advance the commit
    /// watermark to `until`, and label the drained reads.
    ///
    /// Correctness of the watermark: `run_until(until)` has processed every
    /// event at or before `until`, and results are delivered to clients
    /// with zero delay, so every commit at or before `until` has been
    /// drained — no commit below the watermark can appear later.
    pub fn drain_window(&mut self, until: SimTime) -> WindowDrain {
        let mut drain = WindowDrain::default();
        self.drain_window_into(until, &mut drain);
        drain
    }

    /// [`drain_window`](Self::drain_window) into caller-owned buffers:
    /// `drain` is cleared and refilled, keeping its capacity, so a driver
    /// looping over many windows allocates nothing in steady state.
    pub fn drain_window_into(&mut self, until: SimTime, drain: &mut WindowDrain) {
        if self.opts.gc_ground_truth && !self.ground_truth.gc_enabled() {
            // The GC horizon lags the watermark by the oldest start any
            // still-unlabelled read can have: a read drained in a later
            // window must have finished after this one, and it started at
            // most one client op-timeout before finishing. The cluster-side
            // timeout is folded in as a floor for good measure (it bounds
            // the coordinator's own retention).
            let lag = self
                .table_ids()
                .map(|id| self.table(id).options().op_timeout_ms)
                .fold(self.opts.op_timeout_ms, f64::max);
            self.ground_truth.enable_gc(lag);
        }
        self.advance_to(until);
        drain.until_ms = until.as_ms();
        drain.writes.clear();
        drain.reads.clear();
        let mut ops = std::mem::take(&mut self.drain_scratch);
        debug_assert!(ops.is_empty());
        for worker in 0..self.tables.len() {
            if let Some(id) = self.tables[worker] {
                self.table_mut(id).drain_completed_into(&mut ops);
            }
        }
        // Pass 1: commits feed the ground-truth watermark.
        for op in &ops {
            if matches!(op.kind, OpKind::Write) {
                if let (Some(seq), Some(ct)) = (op.seq, op.commit) {
                    self.ground_truth.ingest_commit(op.key, seq, ct);
                }
                drain.writes.push(*op);
            }
        }
        self.ground_truth.advance_watermark(until);

        // Pass 2: label the window's reads against the advanced watermark.
        let grace = pbs_sim::SimDuration::from_ms(self.opts.op_timeout_ms);
        for op in &ops {
            if matches!(op.kind, OpKind::Read) {
                let label =
                    op.finish.map(|_| self.ground_truth.label_read(op.key, op.start, op.seq));
                if let Some(l) = label {
                    self.detector.observe_read(op.op_id, l.consistent, until + grace);
                }
                drain.reads.push(OpenRead { op: *op, label });
            }
        }
        // Pass 3 (only when a checker asked): append the window to the
        // offline history, pairing each read with the label pass 2 just
        // produced. Drain order preserves each client's completion order,
        // which is the order session guarantees are defined over.
        if let Some(history) = self.history.as_mut() {
            let mut next_read = 0;
            for op in &ops {
                match op.kind {
                    OpKind::Write => history.push(*op, None),
                    OpKind::Read => {
                        let labelled = &drain.reads[next_read];
                        next_read += 1;
                        debug_assert_eq!(labelled.op.op_id, op.op_id);
                        history.push(*op, labelled.label);
                    }
                }
            }
        }
        ops.clear();
        self.drain_scratch = ops;
        let mut events = std::mem::take(&mut self.detector_scratch);
        self.collect_detector_events(&mut events);
        for ev in &events {
            self.detector.observe_flag(ev.op_id);
        }
        events.clear();
        self.detector_scratch = events;
        self.detector.expire(until);
    }

    /// Cumulative staleness-detector performance over every drained
    /// window (§4.3), matched against ground-truth labels.
    pub fn detector_stats(&self) -> DetectorStats {
        self.detector.stats()
    }

    /// Drain the per-leg WARS latency samples recorded by every node
    /// (requires `record_leg_samples`). Feed these into
    /// `pbs_predictor::Predictor::from_samples` to close the
    /// measure→predict loop of §6.
    pub fn drain_leg_samples(&mut self) -> crate::node::LegSamples {
        let mut all = crate::node::LegSamples::default();
        for id in 0..self.opts.nodes as usize {
            all.merge(&mut self.node_mut(id).leg_samples);
        }
        all
    }

    /// Drain the staleness-detector logs of every node.
    pub fn drain_detector_events(&mut self) -> Vec<DetectorEvent> {
        let mut all = Vec::new();
        self.collect_detector_events(&mut all);
        all
    }

    fn collect_detector_events(&mut self, out: &mut Vec<DetectorEvent>) {
        for id in 0..self.opts.nodes as usize {
            out.append(&mut self.node_mut(id).detector_log);
        }
        out.sort_by_key(|e| (e.at, e.op_id));
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use pbs_dist::{Constant, Exponential};
    use std::sync::Arc;

    fn exp_net(w_rate: f64, ars_rate: f64) -> NetworkModel {
        NetworkModel::w_ars(
            Arc::new(Exponential::from_rate(w_rate)),
            Arc::new(Exponential::from_rate(ars_rate)),
        )
    }

    fn cfg(n: u32, r: u32, w: u32) -> ReplicaConfig {
        ReplicaConfig::new(n, r, w).unwrap()
    }

    #[test]
    fn write_then_full_read_returns_it() {
        let mut cluster = Cluster::new(
            ClusterOptions::validation(cfg(3, 3, 3), 1),
            exp_net(0.2, 0.5),
        );
        let w = cluster.write(42);
        assert!(w.commit.is_some());
        assert!(w.seq > 0, "committed writes carry a nonzero version");
        let r = cluster.read(42);
        assert_eq!(r.returned_seq, Some(w.seq));
        assert!(r.consistent());
    }

    #[test]
    fn strict_quorum_reads_always_consistent() {
        let mut cluster = Cluster::new(
            ClusterOptions::validation(cfg(3, 2, 2), 2),
            exp_net(0.05, 0.5),
        );
        for i in 0..200 {
            let key = i % 7;
            let w = cluster.write(key);
            let commit = w.commit.expect("write commits");
            let r = cluster.read_at(key, commit);
            assert!(r.consistent(), "strict quorum read {i} was stale");
            assert_eq!(r.returned_seq, Some(w.seq));
        }
    }

    #[test]
    fn partial_quorum_shows_staleness_at_t0() {
        // Slow writes + fast reads ⇒ reads at commit time frequently race
        // ahead of propagation (the §5.3 effect).
        let mut cluster = Cluster::new(
            ClusterOptions::validation(cfg(3, 1, 1), 3),
            exp_net(0.05, 2.0),
        );
        let mut stale = 0;
        let trials = 400;
        for _ in 0..trials {
            let w = cluster.write(7);
            let commit = w.commit.expect("commits");
            let r = cluster.read_at(7, commit);
            if !r.consistent() {
                stale += 1;
            }
        }
        let stale_frac = stale as f64 / trials as f64;
        assert!(
            stale_frac > 0.2 && stale_frac < 0.9,
            "expected substantial staleness at t=0, got {stale_frac}"
        );
    }

    #[test]
    fn versions_order_by_write_start_time() {
        let mut cluster = Cluster::new(
            ClusterOptions::validation(cfg(2, 1, 1), 4),
            exp_net(0.5, 0.5),
        );
        let mut last = 0u64;
        for i in 0..5 {
            let w = cluster.write(1);
            assert_eq!(
                w.seq,
                w.start.as_nanos() + 1,
                "seq is the write-start instant (+1 keeps 0 as the absent sentinel)"
            );
            assert!(w.seq > last, "write {i} not ordered after its predecessor");
            last = w.seq;
        }
        let w2 = cluster.write(2);
        assert!(w2.seq > last, "timestamps order writes across keys too");
    }

    #[test]
    fn crash_prevents_commit_without_quorum() {
        // N=W=2 with one replica down and no hinted handoff: the write can
        // never gather 2 acks; the op times out.
        let mut opts = ClusterOptions::validation(cfg(2, 1, 2), 5);
        opts.op_timeout_ms = 2_000.0;
        let mut cluster = Cluster::new(opts, exp_net(1.0, 1.0));
        let replicas = cluster.ring().replicas(9);
        cluster.crash_node_at(replicas[0] as usize, SimTime::from_ms(0.0), 10_000.0);
        cluster.advance_to(SimTime::from_ms(1.0));
        let w = cluster.write(9);
        assert!(w.commit.is_none(), "write should fail without a quorum");
    }

    #[test]
    fn coordinator_selection_skips_down_nodes() {
        // Regression: a crashed node must not coordinate (it would drop
        // the request, silently turning it into an op timeout). With node
        // 0 down, every one of 60 R=W=1 operations must still complete —
        // before the fix, ~1/3 of them would be handed to node 0 and die.
        let mut opts = ClusterOptions::validation(cfg(3, 1, 1), 6);
        opts.op_timeout_ms = 1_000.0;
        let mut cluster = Cluster::new(opts, exp_net(1.0, 1.0));
        cluster.crash_node_at(0, SimTime::from_ms(0.0), 600_000.0);
        cluster.advance_to(SimTime::from_ms(1.0));
        for i in 0..60 {
            let w = cluster.write(i);
            assert!(w.commit.is_some(), "write {i} routed to a crashed coordinator");
            let r = cluster.read(i);
            assert!(r.finish.is_some(), "read {i} routed to a crashed coordinator");
        }
        // When every node is down, selection falls back (and ops time out).
        cluster.crash_node_at(1, cluster.now(), 600_000.0);
        cluster.crash_node_at(2, cluster.now(), 600_000.0);
        let at = cluster.now() + pbs_sim::SimDuration::from_ms(1.0);
        cluster.advance_to(at);
        let w = cluster.write(1);
        assert!(w.commit.is_none(), "all-down cluster cannot commit");
    }

    #[test]
    fn hinted_handoff_heals_after_recovery() {
        let mut opts = ClusterOptions::validation(cfg(3, 1, 1), 6);
        opts.hinted_handoff = true;
        opts.hint_timeout_ms = 50.0;
        opts.hint_flush_interval_ms = 100.0;
        let mut cluster = Cluster::new(opts, NetworkModel::w_ars(
            Arc::new(Constant::new(1.0)),
            Arc::new(Constant::new(1.0)),
        ));
        let key = 3u64;
        let victim = cluster.ring().replicas(key)[2] as usize;
        cluster.crash_node_at(victim, SimTime::from_ms(0.0), 500.0);
        cluster.advance_to(SimTime::from_ms(1.0));
        // Coordinate from a healthy node (a crashed coordinator would drop
        // the client request entirely).
        let coord = (victim + 1) % 3;
        let w = cluster.write_from(coord, key);
        assert!(w.commit.is_some(), "W=1 commits via healthy replicas");
        // The down replica missed the write; after recovery the hint heals it.
        cluster.advance_to(SimTime::from_ms(2_000.0));
        assert_eq!(
            cluster.node(victim).stored_version(key).map(|v| v.seq),
            Some(w.seq),
            "hint delivered after recovery"
        );
    }

    #[test]
    fn hints_coalesce_and_expire_past_the_op_timeout() {
        // Regression for the write-state hinting leak: a permanently
        // crashed replica used to accumulate one hint per timed-out write,
        // rebroadcast on every flush, forever. Hints for the same
        // (target, key) must coalesce, and the GC sweep must expire hints
        // whose target stays unreachable past the op-timeout horizon.
        let mut opts = ClusterOptions::validation(cfg(3, 1, 1), 9);
        opts.hinted_handoff = true;
        opts.hint_timeout_ms = 50.0;
        opts.hint_flush_interval_ms = 100.0;
        opts.op_timeout_ms = 1_000.0;
        let mut cluster = Cluster::new(opts, NetworkModel::w_ars(
            Arc::new(Constant::new(1.0)),
            Arc::new(Constant::new(1.0)),
        ));
        let key = 3u64;
        let victim = cluster.ring().replicas(key)[2] as usize;
        cluster.crash_node_at(victim, SimTime::from_ms(0.0), 60_000.0);
        cluster.advance_to(SimTime::from_ms(1.0));
        let coord = (victim + 1) % 3;
        let w1 = cluster.write_from(coord, key);
        let w2 = cluster.write_from(coord, key);
        assert!(w1.commit.is_some() && w2.commit.is_some(), "W=1 commits");
        // Both write timeouts hint the same missed replica and key: one
        // coalesced hint carrying the newer version, not two.
        cluster.advance_to(SimTime::from_ms(500.0));
        assert_eq!(cluster.node(coord).hint_count(), 1, "hints coalesced");
        assert_eq!(cluster.node(coord).hints_expired, 0);
        // The target stays down past the op-timeout sweep: the hint is
        // garbage-collected rather than re-flushed forever.
        cluster.advance_to(SimTime::from_ms(2_500.0));
        assert_eq!(cluster.node(coord).hint_count(), 0, "hint expired by GC");
        assert!(cluster.node(coord).hints_expired >= 1);
        // Recovery long after the horizon: no stale hint arrives; healing
        // is anti-entropy's job now (disabled here, so the key is absent).
        cluster.advance_to(SimTime::from_ms(61_000.0));
        assert_eq!(cluster.node(victim).stored_version(key), None);
    }

    #[test]
    fn anti_entropy_converges_divergent_replicas() {
        // Wipe a replica, disable repair paths except Merkle sync, and check
        // convergence.
        let mut opts = ClusterOptions::validation(cfg(3, 1, 3), 7);
        opts.sync_interval_ms = Some(200.0);
        opts.wipe_on_crash = true;
        let mut cluster = Cluster::new(opts, NetworkModel::w_ars(
            Arc::new(Constant::new(1.0)),
            Arc::new(Constant::new(1.0)),
        ));
        let key = 11u64;
        let w = cluster.write(key);
        assert!(w.commit.is_some());
        let victim = cluster.ring().replicas(key)[1] as usize;
        // Crash + wipe the replica: it forgets the key. Check while it is
        // still down (recovery immediately triggers a sync round).
        cluster.crash_node_at(victim, cluster.now(), 500.0);
        cluster.advance_to(cluster.now() + pbs_sim::SimDuration::from_ms(60.0));
        assert!(cluster.node(victim).is_down());
        assert_eq!(cluster.node(victim).stored_version(key), None, "wiped");
        // Anti-entropy restores it after recovery.
        cluster.advance_to(cluster.now() + pbs_sim::SimDuration::from_ms(3_000.0));
        assert_eq!(
            cluster.node(victim).stored_version(key).map(|v| v.seq),
            Some(w.seq),
            "Merkle sync restored the key"
        );
    }

    #[test]
    fn read_repair_heals_stale_replicas() {
        let mut opts = ClusterOptions::validation(cfg(3, 1, 1), 8);
        opts.read_repair = true;
        let mut cluster = Cluster::new(opts, exp_net(0.05, 1.0));
        let key = 13u64;
        let w = cluster.write(key);
        let commit = w.commit.unwrap();
        let _ = cluster.read_at(key, commit);
        // After the read completes and repairs propagate, all replicas hold
        // the version.
        cluster.advance_to(cluster.now() + pbs_sim::SimDuration::from_ms(60_000.0));
        for &rep in cluster.ring().replicas(key) {
            assert_eq!(
                cluster.node(rep as usize).stored_version(key).map(|v| v.seq),
                Some(w.seq),
                "replica {rep} repaired"
            );
        }
        let repairs: u64 = (0..3).map(|i| cluster.node(i).repairs_sent).sum();
        let _ = repairs; // repairs may be zero if the quorum had propagated
    }

    #[test]
    fn partition_blocks_quorum_until_healed() {
        // N=W=3: a minority partition starves the write quorum entirely.
        let mut opts = ClusterOptions::validation(cfg(3, 1, 3), 21);
        opts.op_timeout_ms = 500.0;
        let mut cluster = Cluster::new(opts, NetworkModel::w_ars(
            Arc::new(Constant::new(1.0)),
            Arc::new(Constant::new(1.0)),
        ));
        cluster.network().partition(vec![0, 0, 1]);
        let w = cluster.write_from(0, 5);
        assert!(w.commit.is_none(), "W=3 cannot commit across a partition");
        cluster.network().heal_partition();
        let w = cluster.write_from(0, 5);
        assert!(w.commit.is_some(), "healing restores delivery");
    }

    #[test]
    fn set_replication_changes_quorums_live() {
        let mut opts = ClusterOptions::validation(cfg(3, 1, 1), 22);
        opts.op_timeout_ms = 500.0;
        let mut cluster = Cluster::new(opts, NetworkModel::w_ars(
            Arc::new(Constant::new(1.0)),
            Arc::new(Constant::new(1.0)),
        ));
        // R=W=1 under a minority partition: a majority-side coordinator
        // still commits (itself is a replica).
        cluster.network().partition(vec![0, 0, 1]);
        let w = cluster.write_from(0, 7);
        assert!(w.commit.is_some());
        // Tighten to W=3 live: the same write now fails under partition.
        cluster.set_replication(cfg(3, 3, 3));
        assert_eq!(cluster.replication(), cfg(3, 3, 3));
        let w = cluster.write_from(0, 7);
        assert!(w.commit.is_none(), "new W=3 quorum respected immediately");
        cluster.network().heal_partition();
        let w = cluster.write_from(0, 7);
        assert!(w.commit.is_some());
        let r = cluster.read(7);
        assert!(r.consistent(), "R=3 strict read after heal");
    }

    #[test]
    fn set_replication_rebuilds_ring_for_new_n() {
        let mut opts = ClusterOptions::validation(cfg(2, 1, 2), 23);
        opts.nodes = 4;
        let mut cluster = Cluster::new(opts, NetworkModel::w_ars(
            Arc::new(Constant::new(1.0)),
            Arc::new(Constant::new(1.0)),
        ));
        assert_eq!(cluster.ring().replicas(9).len(), 2);
        cluster.set_replication(cfg(3, 1, 3));
        assert_eq!(cluster.ring().replicas(9).len(), 3, "ring re-placed for N=3");
        let w = cluster.write(9);
        assert!(w.commit.is_some(), "W=3 write commits on the new replica set");
    }

    #[test]
    fn deterministic_given_seed() {
        let run = |seed| {
            let mut cluster = Cluster::new(
                ClusterOptions::validation(cfg(3, 1, 1), seed),
                exp_net(0.1, 0.5),
            );
            let mut sum = 0.0;
            for _ in 0..50 {
                let w = cluster.write(1);
                sum += w.latency_ms().unwrap();
            }
            sum
        };
        assert_eq!(run(42), run(42));
        assert_ne!(run(42), run(43));
    }
}
