//! Buggify-style deterministic fault injection for the simulated store.
//!
//! FoundationDB's simulation testing popularised "buggify": seed-driven
//! fault hooks compiled into the normal code path, so every test run can
//! double as a chaos run without giving up reproducibility. This module
//! is the configuration surface for our port of that idea: a
//! [`FaultProfile`] describes per-message and per-node fault rates, and
//! the [`NetworkModel`](crate::NetworkModel) plus [`Node`](crate::node::Node)
//! consult it on the hot path.
//!
//! Two invariants make the layer safe to weave through existing code:
//!
//! 1. **No profile, no perturbation.** When no profile is installed the
//!    message path consumes *exactly* the RNG draws it consumed before
//!    this module existed, so every seeded run in the repo stays
//!    bit-identical.
//! 2. **Per-site determinism.** All fault decisions are functions of
//!    either (a) the owning node's private RNG stream (message rolls) or
//!    (b) a pure hash of `(profile.seed, node id)` (slow-node selection,
//!    clock drift). Neither depends on cross-node event interleaving, so
//!    sharded runs stay bit-reproducible per `(seed, threads)` exactly
//!    like fault-free runs.
//!
//! The faults themselves:
//!
//! * **drop** — a message vanishes (models loss; the paper's partial
//!   quorums only matter *because* messages go missing).
//! * **duplicate** — a message is delivered twice with independent
//!   delays (at-least-once networks; exercises idempotency of replica
//!   apply, ack, and hint handling).
//! * **reorder** — extra uniform delay up to a bound, reordering the
//!   message against its peers (models queueing jitter beyond the WARS
//!   distributions).
//! * **slow node** — a deterministic subset of nodes sees all of its
//!   message latencies multiplied (the paper's §5.2 "degraded node"
//!   regime).
//! * **disk lag** — replica apply (the `W` leg's server-side write) is
//!   deferred by a random lag before the ack is sent (models fsync
//!   stalls; stretches the `A` leg seen by coordinators).
//! * **clock skew** — each node's *protocol timers* (hint timeout, hint
//!   flush, anti-entropy cadence) run on a private clock with a rate
//!   drawn from `1 ± clock_drift_max` (models unsynchronised clocks;
//!   the paper's t-visibility is defined on global time, which the
//!   simulator — like a linearizable history recorder — keeps).

use pbs_sim::SkewedClock;
use std::fmt;

/// Golden-ratio multiplier shared with the workspace's seed-derivation
/// scheme (`pbs-mc` shards, per-node RNG streams).
const PHI: u64 = 0x9e37_79b9_7f4a_7c15;

/// Salts separating the per-node derivation domains.
const SALT_SLOW: u64 = 0x5103;
const SALT_DRIFT: u64 = 0xd21f7;

/// A rejected [`FaultProfile`] or fault-surface parameter.
///
/// Returned instead of panicking so scenario timelines (which apply
/// events to a *running* cluster) can surface bad configuration as data
/// rather than aborting a sharded run mid-flight.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum FaultConfigError {
    /// A probability field fell outside `[0, 1]` (or was not finite).
    BadProbability {
        /// Which field was rejected.
        field: &'static str,
        /// The offending value.
        value: f64,
    },
    /// A magnitude field (milliseconds, multiplier, drift) was not
    /// finite or fell outside its documented range.
    BadMagnitude {
        /// Which field was rejected.
        field: &'static str,
        /// The offending value.
        value: f64,
    },
    /// A partition grouping did not assign every node exactly one group.
    GroupCountMismatch {
        /// Number of group assignments supplied.
        groups: usize,
        /// Number of nodes in the cluster.
        nodes: usize,
    },
    /// A [`FaultSchedule`] with no segments.
    EmptySchedule,
    /// A [`FaultSchedule`] segment start that is not finite, or not
    /// strictly after the previous segment's start (the first segment
    /// must start at exactly 0 ms so every instant has a profile).
    BadScheduleSegment {
        /// Index of the offending segment.
        index: usize,
        /// Its `from_ms`.
        from_ms: f64,
    },
}

impl fmt::Display for FaultConfigError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            FaultConfigError::BadProbability { field, value } => {
                write!(f, "{field} must be a probability in [0, 1], got {value}")
            }
            FaultConfigError::BadMagnitude { field, value } => {
                write!(f, "{field} out of range: {value}")
            }
            FaultConfigError::GroupCountMismatch { groups, nodes } => {
                write!(f, "partition supplies {groups} group assignments for {nodes} nodes")
            }
            FaultConfigError::EmptySchedule => {
                write!(f, "fault schedule has no segments")
            }
            FaultConfigError::BadScheduleSegment { index, from_ms } => {
                write!(
                    f,
                    "fault schedule segment {index} starts at {from_ms} ms; starts must be \
                     finite, strictly increasing, and begin at 0"
                )
            }
        }
    }
}

impl std::error::Error for FaultConfigError {}

/// How the network decided to deliver one message.
///
/// Produced by [`NetworkModel::transmit_buggified`](crate::NetworkModel::transmit_buggified);
/// the sending node turns each arm into zero, one, or two `ctx.send`s.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum Delivery {
    /// The message is lost (partition or injected drop).
    Dropped,
    /// Normal delivery after the given one-way delay (milliseconds).
    Once(f64),
    /// The message is duplicated: two copies with independent delays.
    Twice(f64, f64),
}

/// Seed-driven fault rates for a chaos run.
///
/// All probabilities are per-message (or per-replica-apply for
/// `disk_lag_prob`); magnitudes are milliseconds unless noted. The
/// default profile ([`FaultProfile::new`]) injects nothing; build up
/// faults with the `with_*` methods or start from the
/// [`storm`](FaultProfile::storm) preset. Validate with
/// [`validate`](FaultProfile::validate) before installing — the network
/// rejects invalid profiles with a [`FaultConfigError`].
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct FaultProfile {
    /// Seed for the *per-node trait* derivations (slow-node membership,
    /// clock drift). Message-level rolls use each node's private RNG
    /// stream instead, so this seed only selects *which* nodes are
    /// slow/skewed, independent of the run seed.
    pub seed: u64,
    /// Probability a message is silently dropped.
    pub drop_prob: f64,
    /// Probability a (non-dropped) message is delivered twice.
    pub duplicate_prob: f64,
    /// Probability a delivery picks up extra reorder jitter.
    pub reorder_prob: f64,
    /// Upper bound on the uniform reorder jitter (ms).
    pub reorder_max_ms: f64,
    /// Fraction of nodes deterministically designated "slow".
    pub slow_node_frac: f64,
    /// Latency multiplier applied to messages touching a slow node
    /// (must be ≥ 1).
    pub slow_node_factor: f64,
    /// Probability a replica apply is deferred by disk lag.
    pub disk_lag_prob: f64,
    /// Upper bound on the uniform disk lag (ms).
    pub disk_lag_max_ms: f64,
    /// Maximum relative clock drift per node: each node's protocol
    /// timers run at a rate drawn deterministically from
    /// `[1 − max, 1 + max]`. Must be in `[0, 0.5)`.
    pub clock_drift_max: f64,
}

impl FaultProfile {
    /// A profile that injects nothing (all rates zero, all clocks true).
    pub fn new(seed: u64) -> Self {
        FaultProfile {
            seed,
            drop_prob: 0.0,
            duplicate_prob: 0.0,
            reorder_prob: 0.0,
            reorder_max_ms: 0.0,
            slow_node_frac: 0.0,
            slow_node_factor: 1.0,
            disk_lag_prob: 0.0,
            disk_lag_max_ms: 0.0,
            clock_drift_max: 0.0,
        }
    }

    /// The everything-at-once preset used by the `chaos` bench mode and
    /// the CI smoke job: moderate drop/duplicate/reorder, a third of the
    /// nodes slow, occasional disk lag, and ±2% clock drift.
    pub fn storm(seed: u64) -> Self {
        FaultProfile::new(seed)
            .with_drop(0.02)
            .with_duplicate(0.02)
            .with_reorder(0.15, 4.0)
            .with_slow_nodes(0.34, 2.5)
            .with_disk_lag(0.10, 3.0)
            .with_clock_drift(0.02)
    }

    /// Set the per-message drop probability.
    pub fn with_drop(mut self, prob: f64) -> Self {
        self.drop_prob = prob;
        self
    }

    /// Set the per-message duplication probability.
    pub fn with_duplicate(mut self, prob: f64) -> Self {
        self.duplicate_prob = prob;
        self
    }

    /// Set the reorder probability and jitter bound (ms).
    pub fn with_reorder(mut self, prob: f64, max_ms: f64) -> Self {
        self.reorder_prob = prob;
        self.reorder_max_ms = max_ms;
        self
    }

    /// Set the slow-node fraction and latency multiplier.
    pub fn with_slow_nodes(mut self, frac: f64, factor: f64) -> Self {
        self.slow_node_frac = frac;
        self.slow_node_factor = factor;
        self
    }

    /// Set the disk-lag probability and bound (ms) for replica applies.
    pub fn with_disk_lag(mut self, prob: f64, max_ms: f64) -> Self {
        self.disk_lag_prob = prob;
        self.disk_lag_max_ms = max_ms;
        self
    }

    /// Set the maximum per-node clock drift (relative rate, `[0, 0.5)`).
    pub fn with_clock_drift(mut self, max: f64) -> Self {
        self.clock_drift_max = max;
        self
    }

    /// This profile with every *probability* (and the drift bound) scaled
    /// by `factor`, clamped back into range. Magnitudes (jitter and lag
    /// bounds, the slow multiplier) and the seed are kept, so a ramp
    /// built from one peak profile varies intensity, not character.
    /// `factor = 0` yields a fully inert profile.
    pub fn scaled(mut self, factor: f64) -> Self {
        let p = |v: f64| (v * factor).clamp(0.0, 1.0);
        self.drop_prob = p(self.drop_prob);
        self.duplicate_prob = p(self.duplicate_prob);
        self.reorder_prob = p(self.reorder_prob);
        self.slow_node_frac = p(self.slow_node_frac);
        self.disk_lag_prob = p(self.disk_lag_prob);
        self.clock_drift_max = (self.clock_drift_max * factor).clamp(0.0, 0.499);
        self
    }

    /// Check every field against its documented range.
    pub fn validate(&self) -> Result<(), FaultConfigError> {
        let probs = [
            ("drop_prob", self.drop_prob),
            ("duplicate_prob", self.duplicate_prob),
            ("reorder_prob", self.reorder_prob),
            ("slow_node_frac", self.slow_node_frac),
            ("disk_lag_prob", self.disk_lag_prob),
        ];
        for (field, value) in probs {
            if !(value.is_finite() && (0.0..=1.0).contains(&value)) {
                return Err(FaultConfigError::BadProbability { field, value });
            }
        }
        let nonneg = [
            ("reorder_max_ms", self.reorder_max_ms),
            ("disk_lag_max_ms", self.disk_lag_max_ms),
        ];
        for (field, value) in nonneg {
            if !(value.is_finite() && value >= 0.0) {
                return Err(FaultConfigError::BadMagnitude { field, value });
            }
        }
        if !(self.slow_node_factor.is_finite() && self.slow_node_factor >= 1.0) {
            return Err(FaultConfigError::BadMagnitude {
                field: "slow_node_factor",
                value: self.slow_node_factor,
            });
        }
        if !(self.clock_drift_max.is_finite() && (0.0..0.5).contains(&self.clock_drift_max)) {
            return Err(FaultConfigError::BadMagnitude {
                field: "clock_drift_max",
                value: self.clock_drift_max,
            });
        }
        Ok(())
    }

    /// Whether any *message-path* fault is active (drop, duplicate,
    /// reorder, or slow nodes). Disk lag and clock skew act on nodes,
    /// not deliveries.
    pub fn any_message_faults(&self) -> bool {
        self.drop_prob > 0.0
            || self.duplicate_prob > 0.0
            || self.reorder_prob > 0.0
            || (self.slow_node_frac > 0.0 && self.slow_node_factor > 1.0)
    }

    /// Whether `node` is in the deterministic slow set.
    pub fn is_slow(&self, node: u32) -> bool {
        self.slow_node_frac > 0.0 && site_unit(self.seed, node, SALT_SLOW) < self.slow_node_frac
    }

    /// The latency multiplier for messages touching `node` (1.0 when the
    /// node is not slow).
    pub fn slow_factor(&self, node: u32) -> f64 {
        if self.is_slow(node) {
            self.slow_node_factor
        } else {
            1.0
        }
    }

    /// The deterministic relative clock drift assigned to `node`, in
    /// `[−clock_drift_max, +clock_drift_max]`.
    pub fn clock_drift(&self, node: u32) -> f64 {
        if self.clock_drift_max == 0.0 {
            0.0
        } else {
            (2.0 * site_unit(self.seed, node, SALT_DRIFT) - 1.0) * self.clock_drift_max
        }
    }

    /// The protocol-timer clock assigned to `node`.
    pub fn clock_of(&self, node: u32) -> SkewedClock {
        let drift = self.clock_drift(node);
        if drift == 0.0 {
            SkewedClock::IDENTITY
        } else {
            SkewedClock::with_rate(1.0 + drift)
        }
    }
}

/// One segment of a [`FaultSchedule`]: `profile` is in force from
/// `from_ms` (inclusive) until the next segment's start.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ScheduleSegment {
    /// Simulated instant (ms) at which this segment takes effect.
    pub from_ms: f64,
    /// The fault profile in force during the segment.
    pub profile: FaultProfile,
}

impl ScheduleSegment {
    /// Construct a segment.
    pub fn new(from_ms: f64, profile: FaultProfile) -> Self {
        Self { from_ms, profile }
    }
}

/// A piecewise time-varying fault profile: scheduled storms.
///
/// A schedule is a sorted list of [`ScheduleSegment`]s; the profile in
/// force at simulated time `t` is the last segment with `from_ms ≤ t`,
/// and the final segment persists forever. The first segment must start
/// at 0 ms, so every instant has a well-defined profile.
///
/// Schedules preserve both buggify invariants. Fault decisions are still
/// sender-local functions of `(sender RNG, send time)` — the active
/// profile is looked up at the instant the message is sent, never at
/// delivery — so scheduled storms stay bit-reproducible per
/// `(seed, threads)` and identical between the serial and PDES engines.
/// And the strict RNG-draw discipline holds *per segment*: during a
/// segment whose probabilities are all zero the message path consumes
/// exactly the draws a profile-free run consumes, so a calm segment is
/// indistinguishable from no profile at all.
///
/// Scheduled profiles never *shrink* delivery delays (slow factors are
/// ≥ 1, reorder only adds jitter), so the PDES lookahead derived from
/// the base latency model remains a valid lower bound throughout.
#[derive(Debug, Clone, PartialEq)]
pub struct FaultSchedule {
    segments: Vec<ScheduleSegment>,
}

impl FaultSchedule {
    /// A schedule with a single profile in force forever — how a plain
    /// [`FaultProfile`] installs internally.
    pub fn constant(profile: FaultProfile) -> Self {
        Self { segments: vec![ScheduleSegment::new(0.0, profile)] }
    }

    /// An arbitrary piecewise schedule. Validate with
    /// [`validate`](FaultSchedule::validate) before installing.
    pub fn piecewise(segments: Vec<ScheduleSegment>) -> Self {
        Self { segments }
    }

    /// Preset: ramp from inert to `peak` in `steps` equal intensity
    /// increments over `ramp_ms`, then hold the full peak forever.
    pub fn ramp(peak: FaultProfile, steps: usize, ramp_ms: f64) -> Self {
        assert!(steps >= 1 && ramp_ms > 0.0);
        let segments = (0..=steps)
            .map(|i| {
                let frac = i as f64 / steps as f64;
                ScheduleSegment::new(frac * ramp_ms, peak.scaled(frac))
            })
            .collect();
        Self { segments }
    }

    /// Preset: `bursts` storms of `burst_ms` each, one per `period_ms`,
    /// starting at `first_at_ms`; calm (inert) in between and after.
    pub fn burst(
        peak: FaultProfile,
        first_at_ms: f64,
        burst_ms: f64,
        period_ms: f64,
        bursts: usize,
    ) -> Self {
        assert!(first_at_ms > 0.0 && burst_ms > 0.0 && bursts >= 1);
        assert!(period_ms > burst_ms, "bursts must not overlap");
        let calm = FaultProfile::new(peak.seed);
        let mut segments = vec![ScheduleSegment::new(0.0, calm)];
        for k in 0..bursts {
            let at = first_at_ms + k as f64 * period_ms;
            segments.push(ScheduleSegment::new(at, peak));
            segments.push(ScheduleSegment::new(at + burst_ms, calm));
        }
        Self { segments }
    }

    /// Preset: calm until `storm_from_ms`, `storm` until
    /// `storm_until_ms`, calm again afterwards — the canonical
    /// crash-during-storm audit timeline.
    pub fn calm_storm_calm(storm: FaultProfile, storm_from_ms: f64, storm_until_ms: f64) -> Self {
        assert!(0.0 < storm_from_ms && storm_from_ms < storm_until_ms);
        let calm = FaultProfile::new(storm.seed);
        Self {
            segments: vec![
                ScheduleSegment::new(0.0, calm),
                ScheduleSegment::new(storm_from_ms, storm),
                ScheduleSegment::new(storm_until_ms, calm),
            ],
        }
    }

    /// Check segment ordering and every segment's profile.
    pub fn validate(&self) -> Result<(), FaultConfigError> {
        if self.segments.is_empty() {
            return Err(FaultConfigError::EmptySchedule);
        }
        let mut prev = f64::NEG_INFINITY;
        for (index, seg) in self.segments.iter().enumerate() {
            let bad_first_start = index == 0 && seg.from_ms != 0.0;
            if !seg.from_ms.is_finite() || seg.from_ms <= prev || bad_first_start {
                return Err(FaultConfigError::BadScheduleSegment {
                    index,
                    from_ms: seg.from_ms,
                });
            }
            seg.profile.validate()?;
            prev = seg.from_ms;
        }
        Ok(())
    }

    /// The profile in force at simulated time `now_ms`: the last segment
    /// with `from_ms ≤ now_ms` (the final segment persists forever).
    pub fn active_at(&self, now_ms: f64) -> &FaultProfile {
        let idx = self.segments.partition_point(|s| s.from_ms <= now_ms);
        &self.segments[idx.saturating_sub(1)].profile
    }

    /// `Some(profile)` when the schedule is a single constant segment.
    pub fn as_constant(&self) -> Option<FaultProfile> {
        (self.segments.len() == 1).then(|| self.segments[0].profile)
    }

    /// The segments, sorted by start time.
    pub fn segments(&self) -> &[ScheduleSegment] {
        &self.segments
    }

    /// Whether *any* segment injects message-path faults. Used for the
    /// network's fast-path gate; per-instant zero-draw discipline comes
    /// from the per-field guards on the active profile.
    pub fn any_message_faults(&self) -> bool {
        self.segments.iter().any(|s| s.profile.any_message_faults())
    }
}

/// Deliberate, test-only protocol breakages for **mutation testing** the
/// checker's order oracle: each flag disables or corrupts one healing /
/// merge mechanism in [`Node`](crate::node::Node), and
/// `tests/oracle_mutations.rs` proves the oracle catches each one with
/// the expected [`OrderViolation`](crate::checker::OrderViolation) type.
/// All flags default to `false`; production code never sets them — they
/// exist so a silent future regression in the *checker* (an oracle that
/// stops detecting real bugs) fails CI instead of rotting quietly.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct ProtocolMutations {
    /// Read repair observes stale replicas but never sends the repair
    /// write (healing silently stops; replicas stay divergent).
    pub skip_read_repair: bool,
    /// Read repair sends a *corrupted* version: a fabricated sequence
    /// number far in the future that no write ever committed.
    pub corrupt_read_repair: bool,
    /// Replica apply overwrites unconditionally instead of keeping the
    /// per-key max — a hinted or duplicated old write rolls the replica
    /// back to a superseded version.
    pub drop_version_merge: bool,
    /// The hint-flush timer fires but delivers nothing: hints accumulate
    /// until they expire and recovered replicas never hear the writes
    /// they missed.
    pub swallow_hints: bool,
}

impl ProtocolMutations {
    /// Whether any mutation is active.
    pub fn any(&self) -> bool {
        self.skip_read_repair
            || self.corrupt_read_repair
            || self.drop_version_merge
            || self.swallow_hints
    }
}

/// SplitMix64 finalizer: the same mixer the `rand` shim uses for seeding,
/// reused here to hash `(seed, node, salt)` into an independent uniform.
fn splitmix64(mut z: u64) -> u64 {
    z = z.wrapping_add(PHI);
    z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
    z ^ (z >> 31)
}

/// A uniform in `[0, 1)` derived purely from `(seed, node, salt)`.
fn site_unit(seed: u64, node: u32, salt: u64) -> f64 {
    let h = splitmix64(seed ^ salt.wrapping_mul(PHI) ^ (u64::from(node) + 1).wrapping_mul(PHI));
    (h >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn default_profile_is_inert_and_valid() {
        let p = FaultProfile::new(7);
        assert!(p.validate().is_ok());
        assert!(!p.any_message_faults());
        for node in 0..16 {
            assert!(!p.is_slow(node));
            assert_eq!(p.slow_factor(node), 1.0);
            assert_eq!(p.clock_drift(node), 0.0);
            assert!(p.clock_of(node).is_identity());
        }
    }

    #[test]
    fn storm_preset_validates_and_activates_everything() {
        let p = FaultProfile::storm(3);
        assert!(p.validate().is_ok());
        assert!(p.any_message_faults());
        assert!(p.drop_prob > 0.0 && p.duplicate_prob > 0.0 && p.reorder_prob > 0.0);
        assert!(p.disk_lag_prob > 0.0 && p.clock_drift_max > 0.0);
    }

    #[test]
    fn validation_rejects_each_bad_field() {
        let bad_prob = FaultProfile::new(0).with_drop(1.5);
        assert_eq!(
            bad_prob.validate(),
            Err(FaultConfigError::BadProbability { field: "drop_prob", value: 1.5 })
        );
        let nan_prob = FaultProfile::new(0).with_duplicate(f64::NAN);
        assert!(matches!(
            nan_prob.validate(),
            Err(FaultConfigError::BadProbability { field: "duplicate_prob", .. })
        ));
        let neg_ms = FaultProfile::new(0).with_reorder(0.1, -1.0);
        assert!(matches!(
            neg_ms.validate(),
            Err(FaultConfigError::BadMagnitude { field: "reorder_max_ms", .. })
        ));
        let shrink = FaultProfile::new(0).with_slow_nodes(0.5, 0.5);
        assert!(matches!(
            shrink.validate(),
            Err(FaultConfigError::BadMagnitude { field: "slow_node_factor", .. })
        ));
        let wild_drift = FaultProfile::new(0).with_clock_drift(0.5);
        assert!(matches!(
            wild_drift.validate(),
            Err(FaultConfigError::BadMagnitude { field: "clock_drift_max", .. })
        ));
    }

    #[test]
    fn per_node_traits_are_deterministic_in_profile_seed() {
        let a = FaultProfile::new(42).with_slow_nodes(0.5, 2.0).with_clock_drift(0.1);
        let b = FaultProfile::new(42).with_slow_nodes(0.5, 2.0).with_clock_drift(0.1);
        for node in 0..64 {
            assert_eq!(a.is_slow(node), b.is_slow(node));
            assert_eq!(a.clock_drift(node), b.clock_drift(node));
        }
        // A different profile seed reshuffles the slow set.
        let c = FaultProfile::new(43).with_slow_nodes(0.5, 2.0);
        assert!((0..64).any(|n| a.is_slow(n) != c.is_slow(n)));
    }

    #[test]
    fn slow_fraction_extremes() {
        let none = FaultProfile::new(9).with_slow_nodes(0.0, 3.0);
        let all = FaultProfile::new(9).with_slow_nodes(1.0, 3.0);
        for node in 0..32 {
            assert!(!none.is_slow(node));
            assert!(all.is_slow(node), "frac=1.0 marks every node slow");
            assert_eq!(all.slow_factor(node), 3.0);
        }
    }

    #[test]
    fn schedule_lookup_is_boundary_inclusive_and_last_persists() {
        let storm = FaultProfile::storm(5);
        let s = FaultSchedule::calm_storm_calm(storm, 100.0, 300.0);
        assert!(s.validate().is_ok());
        let calm = FaultProfile::new(5);
        assert_eq!(*s.active_at(0.0), calm);
        assert_eq!(*s.active_at(99.999), calm, "strictly before the boundary: calm");
        assert_eq!(*s.active_at(100.0), storm, "segment starts are inclusive");
        assert_eq!(*s.active_at(299.999), storm);
        assert_eq!(*s.active_at(300.0), calm, "storm ends exactly at its bound");
        assert_eq!(*s.active_at(1.0e12), calm, "the final segment persists forever");
        assert!(s.as_constant().is_none());
        assert!(s.any_message_faults());
    }

    #[test]
    fn schedule_validation_rejects_malformed_segment_lists() {
        assert_eq!(
            FaultSchedule::piecewise(vec![]).validate(),
            Err(FaultConfigError::EmptySchedule)
        );
        let late_start =
            FaultSchedule::piecewise(vec![ScheduleSegment::new(5.0, FaultProfile::new(0))]);
        assert_eq!(
            late_start.validate(),
            Err(FaultConfigError::BadScheduleSegment { index: 0, from_ms: 5.0 })
        );
        let unsorted = FaultSchedule::piecewise(vec![
            ScheduleSegment::new(0.0, FaultProfile::new(0)),
            ScheduleSegment::new(10.0, FaultProfile::storm(0)),
            ScheduleSegment::new(10.0, FaultProfile::new(0)),
        ]);
        assert_eq!(
            unsorted.validate(),
            Err(FaultConfigError::BadScheduleSegment { index: 2, from_ms: 10.0 })
        );
        let bad_profile = FaultSchedule::piecewise(vec![ScheduleSegment::new(
            0.0,
            FaultProfile::new(0).with_drop(2.0),
        )]);
        assert!(matches!(
            bad_profile.validate(),
            Err(FaultConfigError::BadProbability { field: "drop_prob", .. })
        ));
    }

    #[test]
    fn constant_schedule_round_trips_the_profile() {
        let p = FaultProfile::storm(9);
        let s = FaultSchedule::constant(p);
        assert!(s.validate().is_ok());
        assert_eq!(s.as_constant(), Some(p));
        assert_eq!(*s.active_at(0.0), p);
        assert_eq!(*s.active_at(1.0e9), p);
    }

    #[test]
    fn ramp_preset_scales_intensity_monotonically() {
        let peak = FaultProfile::storm(3);
        let s = FaultSchedule::ramp(peak, 4, 400.0);
        assert!(s.validate().is_ok());
        assert_eq!(s.segments().len(), 5);
        assert!(!s.active_at(0.0).any_message_faults(), "ramp starts inert");
        let mut prev = -1.0;
        for i in 0..=4 {
            let p = s.active_at(i as f64 * 100.0);
            assert!(p.drop_prob >= prev, "intensity must not decrease along the ramp");
            prev = p.drop_prob;
        }
        assert_eq!(*s.active_at(400.0), peak, "ramp tops out at the full peak");
        // Magnitudes are preserved at every step — only rates scale.
        assert_eq!(s.active_at(100.0).reorder_max_ms, peak.reorder_max_ms);
        assert!(s.active_at(100.0).slow_node_factor >= 1.0);
    }

    #[test]
    fn burst_preset_alternates_storm_and_calm() {
        let peak = FaultProfile::storm(7);
        let s = FaultSchedule::burst(peak, 200.0, 50.0, 300.0, 3);
        assert!(s.validate().is_ok());
        for k in 0..3 {
            let at = 200.0 + k as f64 * 300.0;
            assert!(!s.active_at(at - 1.0).any_message_faults(), "calm before burst {k}");
            assert_eq!(*s.active_at(at + 1.0), peak, "burst {k} active");
            assert!(!s.active_at(at + 51.0).any_message_faults(), "calm after burst {k}");
        }
        assert!(!s.active_at(1.0e6).any_message_faults(), "calm forever after");
    }

    #[test]
    fn scaled_profile_clamps_and_zero_is_inert() {
        let p = FaultProfile::storm(1).with_drop(0.8);
        let double = p.scaled(2.0);
        assert!(double.validate().is_ok(), "scaling clamps back into range");
        assert_eq!(double.drop_prob, 1.0);
        let zero = p.scaled(0.0);
        assert!(!zero.any_message_faults());
        assert_eq!(zero.disk_lag_prob, 0.0);
        assert_eq!(zero.clock_drift_max, 0.0);
        assert_eq!(zero.reorder_max_ms, p.reorder_max_ms, "magnitudes survive scaling");
    }

    #[test]
    fn mutations_default_inert() {
        let m = ProtocolMutations::default();
        assert!(!m.any());
        assert!(ProtocolMutations { swallow_hints: true, ..Default::default() }.any());
    }

    #[test]
    fn clock_drift_stays_in_bounds_and_varies() {
        let p = FaultProfile::new(11).with_clock_drift(0.05);
        let drifts: Vec<f64> = (0..32).map(|n| p.clock_drift(n)).collect();
        for &d in &drifts {
            assert!(d.abs() <= 0.05, "drift {d} out of bounds");
            let clock = p.clock_of(0);
            assert!(clock.rate() > 0.0);
        }
        assert!(drifts.iter().any(|&d| d > 0.0) && drifts.iter().any(|&d| d < 0.0));
    }
}
