//! Buggify-style deterministic fault injection for the simulated store.
//!
//! FoundationDB's simulation testing popularised "buggify": seed-driven
//! fault hooks compiled into the normal code path, so every test run can
//! double as a chaos run without giving up reproducibility. This module
//! is the configuration surface for our port of that idea: a
//! [`FaultProfile`] describes per-message and per-node fault rates, and
//! the [`NetworkModel`](crate::NetworkModel) plus [`Node`](crate::node::Node)
//! consult it on the hot path.
//!
//! Two invariants make the layer safe to weave through existing code:
//!
//! 1. **No profile, no perturbation.** When no profile is installed the
//!    message path consumes *exactly* the RNG draws it consumed before
//!    this module existed, so every seeded run in the repo stays
//!    bit-identical.
//! 2. **Per-site determinism.** All fault decisions are functions of
//!    either (a) the owning node's private RNG stream (message rolls) or
//!    (b) a pure hash of `(profile.seed, node id)` (slow-node selection,
//!    clock drift). Neither depends on cross-node event interleaving, so
//!    sharded runs stay bit-reproducible per `(seed, threads)` exactly
//!    like fault-free runs.
//!
//! The faults themselves:
//!
//! * **drop** — a message vanishes (models loss; the paper's partial
//!   quorums only matter *because* messages go missing).
//! * **duplicate** — a message is delivered twice with independent
//!   delays (at-least-once networks; exercises idempotency of replica
//!   apply, ack, and hint handling).
//! * **reorder** — extra uniform delay up to a bound, reordering the
//!   message against its peers (models queueing jitter beyond the WARS
//!   distributions).
//! * **slow node** — a deterministic subset of nodes sees all of its
//!   message latencies multiplied (the paper's §5.2 "degraded node"
//!   regime).
//! * **disk lag** — replica apply (the `W` leg's server-side write) is
//!   deferred by a random lag before the ack is sent (models fsync
//!   stalls; stretches the `A` leg seen by coordinators).
//! * **clock skew** — each node's *protocol timers* (hint timeout, hint
//!   flush, anti-entropy cadence) run on a private clock with a rate
//!   drawn from `1 ± clock_drift_max` (models unsynchronised clocks;
//!   the paper's t-visibility is defined on global time, which the
//!   simulator — like a linearizable history recorder — keeps).

use pbs_sim::SkewedClock;
use std::fmt;

/// Golden-ratio multiplier shared with the workspace's seed-derivation
/// scheme (`pbs-mc` shards, per-node RNG streams).
const PHI: u64 = 0x9e37_79b9_7f4a_7c15;

/// Salts separating the per-node derivation domains.
const SALT_SLOW: u64 = 0x5103;
const SALT_DRIFT: u64 = 0xd21f7;

/// A rejected [`FaultProfile`] or fault-surface parameter.
///
/// Returned instead of panicking so scenario timelines (which apply
/// events to a *running* cluster) can surface bad configuration as data
/// rather than aborting a sharded run mid-flight.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum FaultConfigError {
    /// A probability field fell outside `[0, 1]` (or was not finite).
    BadProbability {
        /// Which field was rejected.
        field: &'static str,
        /// The offending value.
        value: f64,
    },
    /// A magnitude field (milliseconds, multiplier, drift) was not
    /// finite or fell outside its documented range.
    BadMagnitude {
        /// Which field was rejected.
        field: &'static str,
        /// The offending value.
        value: f64,
    },
    /// A partition grouping did not assign every node exactly one group.
    GroupCountMismatch {
        /// Number of group assignments supplied.
        groups: usize,
        /// Number of nodes in the cluster.
        nodes: usize,
    },
}

impl fmt::Display for FaultConfigError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            FaultConfigError::BadProbability { field, value } => {
                write!(f, "{field} must be a probability in [0, 1], got {value}")
            }
            FaultConfigError::BadMagnitude { field, value } => {
                write!(f, "{field} out of range: {value}")
            }
            FaultConfigError::GroupCountMismatch { groups, nodes } => {
                write!(f, "partition supplies {groups} group assignments for {nodes} nodes")
            }
        }
    }
}

impl std::error::Error for FaultConfigError {}

/// How the network decided to deliver one message.
///
/// Produced by [`NetworkModel::transmit_buggified`](crate::NetworkModel::transmit_buggified);
/// the sending node turns each arm into zero, one, or two `ctx.send`s.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum Delivery {
    /// The message is lost (partition or injected drop).
    Dropped,
    /// Normal delivery after the given one-way delay (milliseconds).
    Once(f64),
    /// The message is duplicated: two copies with independent delays.
    Twice(f64, f64),
}

/// Seed-driven fault rates for a chaos run.
///
/// All probabilities are per-message (or per-replica-apply for
/// `disk_lag_prob`); magnitudes are milliseconds unless noted. The
/// default profile ([`FaultProfile::new`]) injects nothing; build up
/// faults with the `with_*` methods or start from the
/// [`storm`](FaultProfile::storm) preset. Validate with
/// [`validate`](FaultProfile::validate) before installing — the network
/// rejects invalid profiles with a [`FaultConfigError`].
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct FaultProfile {
    /// Seed for the *per-node trait* derivations (slow-node membership,
    /// clock drift). Message-level rolls use each node's private RNG
    /// stream instead, so this seed only selects *which* nodes are
    /// slow/skewed, independent of the run seed.
    pub seed: u64,
    /// Probability a message is silently dropped.
    pub drop_prob: f64,
    /// Probability a (non-dropped) message is delivered twice.
    pub duplicate_prob: f64,
    /// Probability a delivery picks up extra reorder jitter.
    pub reorder_prob: f64,
    /// Upper bound on the uniform reorder jitter (ms).
    pub reorder_max_ms: f64,
    /// Fraction of nodes deterministically designated "slow".
    pub slow_node_frac: f64,
    /// Latency multiplier applied to messages touching a slow node
    /// (must be ≥ 1).
    pub slow_node_factor: f64,
    /// Probability a replica apply is deferred by disk lag.
    pub disk_lag_prob: f64,
    /// Upper bound on the uniform disk lag (ms).
    pub disk_lag_max_ms: f64,
    /// Maximum relative clock drift per node: each node's protocol
    /// timers run at a rate drawn deterministically from
    /// `[1 − max, 1 + max]`. Must be in `[0, 0.5)`.
    pub clock_drift_max: f64,
}

impl FaultProfile {
    /// A profile that injects nothing (all rates zero, all clocks true).
    pub fn new(seed: u64) -> Self {
        FaultProfile {
            seed,
            drop_prob: 0.0,
            duplicate_prob: 0.0,
            reorder_prob: 0.0,
            reorder_max_ms: 0.0,
            slow_node_frac: 0.0,
            slow_node_factor: 1.0,
            disk_lag_prob: 0.0,
            disk_lag_max_ms: 0.0,
            clock_drift_max: 0.0,
        }
    }

    /// The everything-at-once preset used by the `chaos` bench mode and
    /// the CI smoke job: moderate drop/duplicate/reorder, a third of the
    /// nodes slow, occasional disk lag, and ±2% clock drift.
    pub fn storm(seed: u64) -> Self {
        FaultProfile::new(seed)
            .with_drop(0.02)
            .with_duplicate(0.02)
            .with_reorder(0.15, 4.0)
            .with_slow_nodes(0.34, 2.5)
            .with_disk_lag(0.10, 3.0)
            .with_clock_drift(0.02)
    }

    /// Set the per-message drop probability.
    pub fn with_drop(mut self, prob: f64) -> Self {
        self.drop_prob = prob;
        self
    }

    /// Set the per-message duplication probability.
    pub fn with_duplicate(mut self, prob: f64) -> Self {
        self.duplicate_prob = prob;
        self
    }

    /// Set the reorder probability and jitter bound (ms).
    pub fn with_reorder(mut self, prob: f64, max_ms: f64) -> Self {
        self.reorder_prob = prob;
        self.reorder_max_ms = max_ms;
        self
    }

    /// Set the slow-node fraction and latency multiplier.
    pub fn with_slow_nodes(mut self, frac: f64, factor: f64) -> Self {
        self.slow_node_frac = frac;
        self.slow_node_factor = factor;
        self
    }

    /// Set the disk-lag probability and bound (ms) for replica applies.
    pub fn with_disk_lag(mut self, prob: f64, max_ms: f64) -> Self {
        self.disk_lag_prob = prob;
        self.disk_lag_max_ms = max_ms;
        self
    }

    /// Set the maximum per-node clock drift (relative rate, `[0, 0.5)`).
    pub fn with_clock_drift(mut self, max: f64) -> Self {
        self.clock_drift_max = max;
        self
    }

    /// Check every field against its documented range.
    pub fn validate(&self) -> Result<(), FaultConfigError> {
        let probs = [
            ("drop_prob", self.drop_prob),
            ("duplicate_prob", self.duplicate_prob),
            ("reorder_prob", self.reorder_prob),
            ("slow_node_frac", self.slow_node_frac),
            ("disk_lag_prob", self.disk_lag_prob),
        ];
        for (field, value) in probs {
            if !(value.is_finite() && (0.0..=1.0).contains(&value)) {
                return Err(FaultConfigError::BadProbability { field, value });
            }
        }
        let nonneg = [
            ("reorder_max_ms", self.reorder_max_ms),
            ("disk_lag_max_ms", self.disk_lag_max_ms),
        ];
        for (field, value) in nonneg {
            if !(value.is_finite() && value >= 0.0) {
                return Err(FaultConfigError::BadMagnitude { field, value });
            }
        }
        if !(self.slow_node_factor.is_finite() && self.slow_node_factor >= 1.0) {
            return Err(FaultConfigError::BadMagnitude {
                field: "slow_node_factor",
                value: self.slow_node_factor,
            });
        }
        if !(self.clock_drift_max.is_finite() && (0.0..0.5).contains(&self.clock_drift_max)) {
            return Err(FaultConfigError::BadMagnitude {
                field: "clock_drift_max",
                value: self.clock_drift_max,
            });
        }
        Ok(())
    }

    /// Whether any *message-path* fault is active (drop, duplicate,
    /// reorder, or slow nodes). Disk lag and clock skew act on nodes,
    /// not deliveries.
    pub fn any_message_faults(&self) -> bool {
        self.drop_prob > 0.0
            || self.duplicate_prob > 0.0
            || self.reorder_prob > 0.0
            || (self.slow_node_frac > 0.0 && self.slow_node_factor > 1.0)
    }

    /// Whether `node` is in the deterministic slow set.
    pub fn is_slow(&self, node: u32) -> bool {
        self.slow_node_frac > 0.0 && site_unit(self.seed, node, SALT_SLOW) < self.slow_node_frac
    }

    /// The latency multiplier for messages touching `node` (1.0 when the
    /// node is not slow).
    pub fn slow_factor(&self, node: u32) -> f64 {
        if self.is_slow(node) {
            self.slow_node_factor
        } else {
            1.0
        }
    }

    /// The deterministic relative clock drift assigned to `node`, in
    /// `[−clock_drift_max, +clock_drift_max]`.
    pub fn clock_drift(&self, node: u32) -> f64 {
        if self.clock_drift_max == 0.0 {
            0.0
        } else {
            (2.0 * site_unit(self.seed, node, SALT_DRIFT) - 1.0) * self.clock_drift_max
        }
    }

    /// The protocol-timer clock assigned to `node`.
    pub fn clock_of(&self, node: u32) -> SkewedClock {
        let drift = self.clock_drift(node);
        if drift == 0.0 {
            SkewedClock::IDENTITY
        } else {
            SkewedClock::with_rate(1.0 + drift)
        }
    }
}

/// SplitMix64 finalizer: the same mixer the `rand` shim uses for seeding,
/// reused here to hash `(seed, node, salt)` into an independent uniform.
fn splitmix64(mut z: u64) -> u64 {
    z = z.wrapping_add(PHI);
    z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
    z ^ (z >> 31)
}

/// A uniform in `[0, 1)` derived purely from `(seed, node, salt)`.
fn site_unit(seed: u64, node: u32, salt: u64) -> f64 {
    let h = splitmix64(seed ^ salt.wrapping_mul(PHI) ^ (u64::from(node) + 1).wrapping_mul(PHI));
    (h >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn default_profile_is_inert_and_valid() {
        let p = FaultProfile::new(7);
        assert!(p.validate().is_ok());
        assert!(!p.any_message_faults());
        for node in 0..16 {
            assert!(!p.is_slow(node));
            assert_eq!(p.slow_factor(node), 1.0);
            assert_eq!(p.clock_drift(node), 0.0);
            assert!(p.clock_of(node).is_identity());
        }
    }

    #[test]
    fn storm_preset_validates_and_activates_everything() {
        let p = FaultProfile::storm(3);
        assert!(p.validate().is_ok());
        assert!(p.any_message_faults());
        assert!(p.drop_prob > 0.0 && p.duplicate_prob > 0.0 && p.reorder_prob > 0.0);
        assert!(p.disk_lag_prob > 0.0 && p.clock_drift_max > 0.0);
    }

    #[test]
    fn validation_rejects_each_bad_field() {
        let bad_prob = FaultProfile::new(0).with_drop(1.5);
        assert_eq!(
            bad_prob.validate(),
            Err(FaultConfigError::BadProbability { field: "drop_prob", value: 1.5 })
        );
        let nan_prob = FaultProfile::new(0).with_duplicate(f64::NAN);
        assert!(matches!(
            nan_prob.validate(),
            Err(FaultConfigError::BadProbability { field: "duplicate_prob", .. })
        ));
        let neg_ms = FaultProfile::new(0).with_reorder(0.1, -1.0);
        assert!(matches!(
            neg_ms.validate(),
            Err(FaultConfigError::BadMagnitude { field: "reorder_max_ms", .. })
        ));
        let shrink = FaultProfile::new(0).with_slow_nodes(0.5, 0.5);
        assert!(matches!(
            shrink.validate(),
            Err(FaultConfigError::BadMagnitude { field: "slow_node_factor", .. })
        ));
        let wild_drift = FaultProfile::new(0).with_clock_drift(0.5);
        assert!(matches!(
            wild_drift.validate(),
            Err(FaultConfigError::BadMagnitude { field: "clock_drift_max", .. })
        ));
    }

    #[test]
    fn per_node_traits_are_deterministic_in_profile_seed() {
        let a = FaultProfile::new(42).with_slow_nodes(0.5, 2.0).with_clock_drift(0.1);
        let b = FaultProfile::new(42).with_slow_nodes(0.5, 2.0).with_clock_drift(0.1);
        for node in 0..64 {
            assert_eq!(a.is_slow(node), b.is_slow(node));
            assert_eq!(a.clock_drift(node), b.clock_drift(node));
        }
        // A different profile seed reshuffles the slow set.
        let c = FaultProfile::new(43).with_slow_nodes(0.5, 2.0);
        assert!((0..64).any(|n| a.is_slow(n) != c.is_slow(n)));
    }

    #[test]
    fn slow_fraction_extremes() {
        let none = FaultProfile::new(9).with_slow_nodes(0.0, 3.0);
        let all = FaultProfile::new(9).with_slow_nodes(1.0, 3.0);
        for node in 0..32 {
            assert!(!none.is_slow(node));
            assert!(all.is_slow(node), "frac=1.0 marks every node slow");
            assert_eq!(all.slow_factor(node), 3.0);
        }
    }

    #[test]
    fn clock_drift_stays_in_bounds_and_varies() {
        let p = FaultProfile::new(11).with_clock_drift(0.05);
        let drifts: Vec<f64> = (0..32).map(|n| p.clock_drift(n)).collect();
        for &d in &drifts {
            assert!(d.abs() <= 0.05, "drift {d} out of bounds");
            let clock = p.clock_of(0);
            assert!(clock.rate() > 0.0);
        }
        assert!(drifts.iter().any(|&d| d > 0.0) && drifts.iter().any(|&d| d < 0.0));
    }
}
