//! Jepsen-style offline history checking: an independent oracle for the
//! streaming consistency machinery.
//!
//! The open-loop engine labels staleness *online* (watermark-fed
//! [`GroundTruth`]) and counts session-guarantee violations *streaming*
//! (per-client state updated in completion order). Both are clever enough
//! to be wrong. This module re-derives every verdict from first
//! principles over a recorded [`OpHistory`]:
//!
//! * [`replay_sessions`] — rebuild each client's per-key session state
//!   from the history alone and recount monotonic-reads / read-your-writes
//!   violations (§3.2); the counts must equal the streaming counters
//!   exactly.
//! * [`relabel_reads`] — rebuild the commit history from the recorded
//!   writes (batch path, no watermark), relabel every read, and compare
//!   against the online labels; any mismatch is a bug in the watermark
//!   plumbing.
//! * [`check_convergence`] — after quiescence, every live replica of every
//!   written key must hold the same version, at least as new as the
//!   newest committed one (read repair + hinted handoff + anti-entropy
//!   actually converged).
//!
//! The checker is a test/diagnostic harness: recording a history is
//! O(operations) memory, deliberately trading the engine's O(in-flight)
//! discipline for auditability. Enable it with
//! [`Cluster::enable_history`](crate::Cluster::enable_history) (done for
//! you by [`run_open_loop_checked`](crate::run_open_loop_checked) and the
//! `scenarios --chaos` bench mode).

use crate::client::{ClientStats, CompletedOp};
use crate::cluster::Cluster;
use crate::fxhash::FxHashMap;
use crate::staleness::{GroundTruth, ReadLabel};
use pbs_mc::Mergeable;
use pbs_sim::SimTime;
use pbs_workload::OpKind;

/// One operation as recorded for offline checking.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct HistoryOp {
    /// The completed operation (timed-out ops appear with `finish: None`).
    pub op: CompletedOp,
    /// The online staleness label (labelled reads only).
    pub label: Option<ReadLabel>,
}

/// The full recorded op history of a run, in drain order (which preserves
/// each client's completion order — the order session guarantees are
/// defined over).
#[derive(Debug, Clone, Default, PartialEq)]
pub struct OpHistory {
    ops: Vec<HistoryOp>,
}

impl OpHistory {
    /// Empty history.
    pub fn new() -> Self {
        Self::default()
    }

    /// Append one recorded operation.
    pub fn push(&mut self, op: CompletedOp, label: Option<ReadLabel>) {
        self.ops.push(HistoryOp { op, label });
    }

    /// The recorded operations, in drain order.
    pub fn ops(&self) -> &[HistoryOp] {
        &self.ops
    }

    /// Number of recorded operations.
    pub fn len(&self) -> usize {
        self.ops.len()
    }

    /// Whether nothing was recorded.
    pub fn is_empty(&self) -> bool {
        self.ops.is_empty()
    }
}

/// Offline session-guarantee recount vs. the streaming counters.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct SessionCheck {
    /// Reads the offline replay checked (completed reads only).
    pub reads_checked: u64,
    /// Monotonic-reads violations found by the offline replay.
    pub monotonic_violations: u64,
    /// Read-your-writes violations found by the offline replay.
    pub ryw_violations: u64,
    /// Streaming counterpart of `reads_checked`.
    pub streaming_reads_checked: u64,
    /// Streaming counterpart of `monotonic_violations`.
    pub streaming_monotonic: u64,
    /// Streaming counterpart of `ryw_violations`.
    pub streaming_ryw: u64,
}

impl SessionCheck {
    /// Whether the offline replay and the streaming counters agree on all
    /// three counts.
    pub fn agrees(&self) -> bool {
        self.reads_checked == self.streaming_reads_checked
            && self.monotonic_violations == self.streaming_monotonic
            && self.ryw_violations == self.streaming_ryw
    }
}

/// Offline relabelling vs. the online staleness labels.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct LabelCheck {
    /// Reads that carried an online label and were relabelled.
    pub labelled_reads: u64,
    /// Reads whose offline label disagreed with the online one.
    pub mismatches: u64,
    /// Reads the offline relabelling found inconsistent (stale).
    pub stale_reads: u64,
}

/// Post-quiescence replica agreement per written key.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct ConvergenceCheck {
    /// Keys with at least one committed write.
    pub keys_checked: u64,
    /// Keys whose live replicas disagree with each other.
    pub divergent_keys: u64,
    /// Live replicas holding something older than the newest committed
    /// version of their key.
    pub stale_replicas: u64,
}

impl ConvergenceCheck {
    /// Whether every live replica of every written key agreed and was
    /// at least as new as the newest committed version.
    pub fn converged(&self) -> bool {
        self.divergent_keys == 0 && self.stale_replicas == 0
    }
}

/// The combined verdict of one checked run (mergeable across shards).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct CheckReport {
    /// Session-guarantee recount.
    pub sessions: SessionCheck,
    /// Staleness-label recount.
    pub labels: LabelCheck,
    /// Replica convergence (when requested — only meaningful after the
    /// run has quiesced with faults cleared).
    pub convergence: Option<ConvergenceCheck>,
    /// Runs merged into this report.
    pub runs: u32,
}

impl CheckReport {
    /// Whether every cross-check passed: streaming and offline session
    /// counts agree, no label mismatches, and (when checked) replicas
    /// converged. Violations themselves do **not** make a report unclean
    /// — under injected faults violations are expected; the checker's job
    /// is that both derivations agree on them.
    pub fn is_clean(&self) -> bool {
        self.sessions.agrees()
            && self.labels.mismatches == 0
            && self.convergence.is_none_or(|c| c.converged())
    }
}

impl Mergeable for CheckReport {
    fn merge(&mut self, other: Self) {
        let s = &mut self.sessions;
        s.reads_checked += other.sessions.reads_checked;
        s.monotonic_violations += other.sessions.monotonic_violations;
        s.ryw_violations += other.sessions.ryw_violations;
        s.streaming_reads_checked += other.sessions.streaming_reads_checked;
        s.streaming_monotonic += other.sessions.streaming_monotonic;
        s.streaming_ryw += other.sessions.streaming_ryw;
        self.labels.labelled_reads += other.labels.labelled_reads;
        self.labels.mismatches += other.labels.mismatches;
        self.labels.stale_reads += other.labels.stale_reads;
        self.convergence = match (self.convergence, other.convergence) {
            (Some(mut a), Some(b)) => {
                a.keys_checked += b.keys_checked;
                a.divergent_keys += b.divergent_keys;
                a.stale_replicas += b.stale_replicas;
                Some(a)
            }
            (a, b) => a.or(b),
        };
        self.runs += other.runs;
    }
}

/// Recount session-guarantee violations from the history alone and
/// compare against the streaming totals (`streaming` should be the
/// cluster-wide [`ClientStats`] sum).
///
/// The replay mirrors the streaming rules exactly: per `(client, key)`,
/// in completion order; timed-out operations don't touch session state;
/// a write advances the read-your-writes floor only once committed; an
/// empty read counts as sequence 0.
pub fn replay_sessions(history: &OpHistory, streaming: &ClientStats) -> SessionCheck {
    let mut last_read: FxHashMap<(u32, u64), u64> = FxHashMap::default();
    let mut last_write: FxHashMap<(u32, u64), u64> = FxHashMap::default();
    let mut check = SessionCheck {
        streaming_reads_checked: streaming.reads_checked,
        streaming_monotonic: streaming.monotonic_violations,
        streaming_ryw: streaming.ryw_violations,
        ..SessionCheck::default()
    };
    for h in history.ops() {
        let op = &h.op;
        if op.finish.is_none() {
            continue; // timed out: the client never saw a result
        }
        let session = (op.client, op.key);
        match op.kind {
            OpKind::Write => {
                if op.commit.is_some() {
                    let seq = op.seq.expect("completed writes carry their sequence");
                    let floor = last_write.entry(session).or_insert(0);
                    *floor = (*floor).max(seq);
                }
            }
            OpKind::Read => {
                let seen = op.seq.unwrap_or(0);
                check.reads_checked += 1;
                if seen < last_read.get(&session).copied().unwrap_or(0) {
                    check.monotonic_violations += 1;
                }
                if seen < last_write.get(&session).copied().unwrap_or(0) {
                    check.ryw_violations += 1;
                }
                let floor = last_read.entry(session).or_insert(0);
                *floor = (*floor).max(seen);
            }
        }
    }
    check
}

/// Rebuild the commit history from the recorded writes and relabel every
/// online-labelled read through the batch [`GroundTruth`] path — no
/// watermark, no windowing. Any disagreement with the online label is a
/// mismatch (a bug in the online machinery, never an artefact of faults:
/// both derivations see the same committed writes).
pub fn relabel_reads(history: &OpHistory) -> LabelCheck {
    let mut commits: Vec<(SimTime, u64, u64)> = history
        .ops()
        .iter()
        .filter_map(|h| {
            let op = &h.op;
            match (op.kind, op.commit) {
                (OpKind::Write, Some(ct)) => {
                    Some((ct, op.key, op.seq.expect("committed writes carry their sequence")))
                }
                _ => None,
            }
        })
        .collect();
    // Stable sort: equal commit times keep recorded (event) order, the
    // same tie-break the online ingestion path uses.
    commits.sort_by_key(|&(t, _, _)| t);
    let mut gt = GroundTruth::new();
    for (commit, key, seq) in commits {
        gt.record_commit(key, seq, commit);
    }
    let mut check = LabelCheck::default();
    for h in history.ops() {
        let (op, Some(online)) = (&h.op, h.label) else {
            continue;
        };
        debug_assert_eq!(op.kind, OpKind::Read, "only reads carry labels");
        check.labelled_reads += 1;
        let offline = gt.label_read(op.key, op.start, op.seq);
        if !offline.consistent {
            check.stale_reads += 1;
        }
        if offline != online {
            check.mismatches += 1;
        }
    }
    check
}

/// Verify that, after quiescence, all live replicas of every written key
/// agree — and agree on something at least as new as the newest committed
/// version. Only meaningful once in-flight traffic has drained and any
/// fault profile has been cleared long enough for anti-entropy to run;
/// with active message drops, divergence is expected, not a bug.
pub fn check_convergence(cluster: &Cluster) -> ConvergenceCheck {
    let gt = cluster.ground_truth();
    let mut check = ConvergenceCheck::default();
    for key in gt.tracked_keys() {
        let latest = gt.latest_committed_at(key, SimTime::MAX).unwrap_or(0);
        let stored: Vec<u64> = cluster
            .replicas_of(key)
            .into_iter()
            .filter(|&n| !cluster.node(n).is_down())
            .map(|n| cluster.node(n).stored_version(key).map_or(0, |v| v.seq))
            .collect();
        let Some(&first) = stored.first() else {
            continue; // every replica down: nothing to compare
        };
        check.keys_checked += 1;
        if stored.iter().any(|&s| s != first) {
            check.divergent_keys += 1;
        }
        check.stale_replicas += stored.iter().filter(|&&s| s < latest).count() as u64;
    }
    check
}

/// Run every offline check against a finished cluster: session replay vs.
/// the streaming counters, label recount, and (optionally) convergence.
pub fn check_run(history: &OpHistory, cluster: &Cluster, convergence: bool) -> CheckReport {
    let streaming = cluster.client_stats();
    CheckReport {
        sessions: replay_sessions(history, &streaming),
        labels: relabel_reads(history),
        convergence: convergence.then(|| check_convergence(cluster)),
        runs: 1,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn t(ms: f64) -> SimTime {
        SimTime::from_ms(ms)
    }

    fn write(client: u32, key: u64, seq: u64, start: f64, commit: Option<f64>) -> CompletedOp {
        CompletedOp {
            op_id: seq,
            client,
            kind: OpKind::Write,
            key,
            start: t(start),
            finish: commit.map(t),
            seq: Some(seq),
            commit: commit.map(t),
        }
    }

    fn read(client: u32, key: u64, seq: Option<u64>, start: f64, finish: f64) -> CompletedOp {
        CompletedOp {
            op_id: 1_000 + start as u64,
            client,
            kind: OpKind::Read,
            key,
            start: t(start),
            finish: Some(t(finish)),
            seq,
            commit: None,
        }
    }

    #[test]
    fn session_replay_counts_violations_per_client() {
        let mut h = OpHistory::new();
        h.push(write(0, 1, 1, 0.0, Some(1.0)), None);
        h.push(read(0, 1, Some(1), 2.0, 3.0), None); // fine
        h.push(read(0, 1, None, 4.0, 5.0), None); // MR + RYW violation
        h.push(read(1, 1, None, 4.0, 5.0), None); // other client: no state, fine
        let streaming = ClientStats {
            reads_checked: 3,
            monotonic_violations: 1,
            ryw_violations: 1,
            ..ClientStats::default()
        };
        let check = replay_sessions(&h, &streaming);
        assert_eq!(check.reads_checked, 3);
        assert_eq!(check.monotonic_violations, 1);
        assert_eq!(check.ryw_violations, 1);
        assert!(check.agrees());
        let off = replay_sessions(&h, &ClientStats::default());
        assert!(!off.agrees(), "disagreement with zeroed streaming counters is detected");
    }

    #[test]
    fn session_replay_skips_timeouts_and_uncommitted_writes() {
        let mut h = OpHistory::new();
        h.push(write(0, 1, 5, 0.0, None), None); // failed write: no RYW floor
        let mut timed_out = read(0, 1, None, 1.0, 0.0);
        timed_out.finish = None;
        timed_out.seq = None;
        h.push(timed_out, None); // timed out: not checked
        h.push(read(0, 1, None, 2.0, 3.0), None); // empty read, no floor: fine
        let check = replay_sessions(&h, &ClientStats::default());
        assert_eq!(check.reads_checked, 1);
        assert_eq!(check.monotonic_violations, 0);
        assert_eq!(check.ryw_violations, 0);
    }

    #[test]
    fn relabel_matches_correct_online_labels_and_flags_wrong_ones() {
        let consistent = ReadLabel { consistent: true, versions_behind: 0 };
        let stale1 = ReadLabel { consistent: false, versions_behind: 1 };
        let mut h = OpHistory::new();
        h.push(write(0, 7, 1, 0.0, Some(10.0)), None);
        h.push(write(0, 7, 2, 11.0, Some(20.0)), None);
        h.push(read(1, 7, Some(2), 25.0, 26.0), Some(consistent));
        h.push(read(1, 7, Some(1), 25.0, 26.0), Some(stale1));
        let check = relabel_reads(&h);
        assert_eq!(check.labelled_reads, 2);
        assert_eq!(check.stale_reads, 1);
        assert_eq!(check.mismatches, 0);

        // Corrupt an online label: the offline pass must catch it.
        let mut bad = OpHistory::new();
        bad.push(write(0, 7, 1, 0.0, Some(10.0)), None);
        bad.push(read(1, 7, None, 15.0, 16.0), Some(consistent));
        let check = relabel_reads(&bad);
        assert_eq!(check.mismatches, 1);
    }

    #[test]
    fn merged_reports_sum() {
        let mut a = CheckReport {
            sessions: SessionCheck { reads_checked: 2, streaming_reads_checked: 2, ..Default::default() },
            labels: LabelCheck { labelled_reads: 2, ..Default::default() },
            convergence: Some(ConvergenceCheck { keys_checked: 3, ..Default::default() }),
            runs: 1,
        };
        let b = a;
        a.merge(b);
        assert_eq!(a.runs, 2);
        assert_eq!(a.sessions.reads_checked, 4);
        assert_eq!(a.labels.labelled_reads, 4);
        assert_eq!(a.convergence.unwrap().keys_checked, 6);
        assert!(a.is_clean());
    }
}
