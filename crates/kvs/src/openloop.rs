//! The open-loop concurrency engine: drive a cluster of in-sim client
//! actors window by window and aggregate a streaming report.
//!
//! This replaces the old buffering `run_trace` path. Where `run_trace`
//! pre-injected the whole trace into the event heap (O(trace) memory) and
//! labelled reads only after a final settle, the open-loop engine:
//!
//! * generates arrivals lazily inside the simulation (heap stays
//!   O(clients + in-flight));
//! * labels reads **online** as the [`GroundTruth`](crate::staleness::GroundTruth)
//!   commit watermark passes each window boundary;
//! * streams completed operations out through bounded per-client buffers,
//!   folding them into O(1)-memory `pbs-mc` summaries.
//!
//! Whole-workload replication shards over the deterministic `pbs-mc`
//! runner ([`run_open_loop_sharded`]) and stays bit-reproducible per
//! `(seed, threads)`.

use crate::checker::{self, CheckReport};
use crate::client::ClientOptions;
use crate::cluster::{Cluster, ClusterOptions, DetectorStats, EngineKind, WindowDrain, WindowOp};
use crate::network::NetworkModel;
use pbs_mc::{Mergeable, Runner, Summary};
use pbs_sim::{PdesError, SimTime};
use pbs_workload::OpSource;

/// Engine-level knobs (per-client knobs live in [`ClientOptions`]).
#[derive(Debug, Clone, Copy)]
pub struct OpenLoopOptions {
    /// Workload length: clients generate arrivals in `[0, duration_ms)`.
    pub duration_ms: f64,
    /// Drain cadence (also the reporting-window width).
    pub window_ms: f64,
    /// Extra time after `duration_ms` for in-flight operations to finish
    /// or time out before the final drain.
    pub settle_ms: f64,
}

impl OpenLoopOptions {
    /// `duration / window`, with a settle of one client op timeout.
    pub fn new(duration_ms: f64, window_ms: f64, settle_ms: f64) -> Self {
        assert!(duration_ms > 0.0 && window_ms > 0.0 && settle_ms >= 0.0);
        Self { duration_ms, window_ms, settle_ms }
    }

    /// Number of reporting windows.
    pub fn window_count(&self) -> usize {
        (self.duration_ms / self.window_ms).ceil() as usize
    }
}

/// Per-window counts (merge element-wise across replica runs).
#[derive(Debug, Clone, Copy, Default, PartialEq)]
pub struct OpenWindow {
    /// Window start (ms).
    pub start_ms: f64,
    /// Committed writes whose op started in this window.
    pub writes: u64,
    /// Writes that failed or timed out.
    pub failed_writes: u64,
    /// Labelled reads that started in this window.
    pub reads: u64,
    /// Labelled reads that were consistent.
    pub consistent: u64,
    /// Reads that timed out client-side.
    pub incomplete_reads: u64,
}

impl OpenWindow {
    /// Measured `P(consistent)` in this window (`None` with no reads).
    pub fn measured(&self) -> Option<f64> {
        (self.reads > 0).then(|| self.consistent as f64 / self.reads as f64)
    }
}

/// The merged result of one or more open-loop runs.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct OpenLoopReport {
    /// Windowed consistency/availability time-series.
    pub windows: Vec<OpenWindow>,
    /// Operations issued to coordinators.
    pub issued: u64,
    /// Arrivals shed at the client in-flight cap.
    pub shed: u64,
    /// Committed writes.
    pub commits: u64,
    /// Failed or timed-out writes.
    pub failed_writes: u64,
    /// Labelled (completed) reads.
    pub reads: u64,
    /// Labelled reads that were consistent.
    pub consistent: u64,
    /// Total versions-behind over stale reads (capped per read).
    pub versions_behind_total: u64,
    /// Reads that timed out client-side.
    pub incomplete_reads: u64,
    /// Empirical monotonic-reads violations (§3.2) across client sessions.
    pub monotonic_violations: u64,
    /// Empirical read-your-writes violations across client sessions.
    pub ryw_violations: u64,
    /// Commit latencies of committed writes (ms).
    pub write_latency: Summary,
    /// Latencies of completed reads (ms).
    pub read_latency: Summary,
    /// Staleness-detector performance (§4.3) vs. online ground truth.
    pub detector: DetectorStats,
    /// Upper bound on peak concurrent in-flight ops (sum of per-client
    /// peaks).
    pub peak_in_flight: u64,
    /// Peak scheduler-queue length observed at window boundaries — the
    /// memory-boundedness witness (O(clients + in-flight), not O(trace)).
    pub peak_pending_events: u64,
    /// Simulated duration per run (ms).
    pub sim_ms: f64,
    /// Replica runs folded into this report.
    pub runs: u64,
}

impl OpenLoopReport {
    /// Fraction of labelled reads that were consistent.
    pub fn consistency_rate(&self) -> f64 {
        if self.reads == 0 {
            return 1.0;
        }
        self.consistent as f64 / self.reads as f64
    }

    /// Completed operations (commits + labelled reads) per simulated
    /// second, per run.
    pub fn achieved_ops_per_sec(&self) -> f64 {
        if self.sim_ms <= 0.0 || self.runs == 0 {
            return 0.0;
        }
        (self.commits + self.reads) as f64 / self.runs as f64 / (self.sim_ms / 1000.0)
    }

    /// Monotonic-reads violation rate over session-checked reads.
    pub fn monotonic_violation_rate(&self) -> f64 {
        if self.reads == 0 {
            return 0.0;
        }
        self.monotonic_violations as f64 / self.reads as f64
    }
}

impl Mergeable for OpenLoopReport {
    fn merge(&mut self, other: Self) {
        if other.runs == 0 {
            return;
        }
        if self.runs == 0 {
            *self = other;
            return;
        }
        assert_eq!(self.windows.len(), other.windows.len(), "window grids differ");
        for (a, b) in self.windows.iter_mut().zip(other.windows) {
            assert_eq!(a.start_ms, b.start_ms, "window grids differ");
            a.writes += b.writes;
            a.failed_writes += b.failed_writes;
            a.reads += b.reads;
            a.consistent += b.consistent;
            a.incomplete_reads += b.incomplete_reads;
        }
        self.issued += other.issued;
        self.shed += other.shed;
        self.commits += other.commits;
        self.failed_writes += other.failed_writes;
        self.reads += other.reads;
        self.consistent += other.consistent;
        self.versions_behind_total += other.versions_behind_total;
        self.incomplete_reads += other.incomplete_reads;
        self.monotonic_violations += other.monotonic_violations;
        self.ryw_violations += other.ryw_violations;
        self.write_latency.merge(other.write_latency);
        self.read_latency.merge(other.read_latency);
        self.detector.flagged += other.detector.flagged;
        self.detector.true_positives += other.detector.true_positives;
        self.detector.false_positives += other.detector.false_positives;
        self.detector.missed_stale += other.detector.missed_stale;
        self.peak_in_flight = self.peak_in_flight.max(other.peak_in_flight);
        self.peak_pending_events = self.peak_pending_events.max(other.peak_pending_events);
        self.sim_ms = self.sim_ms.max(other.sim_ms);
        self.runs += other.runs;
    }
}

/// Run one open-loop workload: `clients` client actors pulling from
/// `make_source(client_index)`, drained every window. `prepare` runs once
/// on the freshly built cluster before load starts (schedule crashes,
/// partitions, etc.); pass `|_| {}` when unused.
pub fn run_open_loop<F, P>(
    opts: ClusterOptions,
    network: &NetworkModel,
    engine: &OpenLoopOptions,
    clients: usize,
    copts: ClientOptions,
    make_source: F,
    prepare: P,
) -> OpenLoopReport
where
    F: Fn(u32) -> Box<dyn OpSource>,
    P: FnOnce(&mut Cluster),
{
    run_open_loop_with(opts, network, engine, clients, copts, make_source, prepare, |_| {})
}

/// [`run_open_loop`] with the offline [`checker`] as a
/// post-pass: the cluster records its full op history, and after the
/// final drain the history is replayed against the streaming session
/// counters and the online staleness labels. With `check_convergence`,
/// live replicas are also audited for post-quiescence agreement — only
/// ask for that when `prepare` leaves no fault active past the settle.
#[allow(clippy::too_many_arguments)] // a deliberate flat harness entry point
pub fn run_open_loop_checked<F, P>(
    opts: ClusterOptions,
    network: &NetworkModel,
    engine: &OpenLoopOptions,
    clients: usize,
    copts: ClientOptions,
    make_source: F,
    prepare: P,
    check_convergence: bool,
) -> (OpenLoopReport, CheckReport)
where
    F: Fn(u32) -> Box<dyn OpSource>,
    P: FnOnce(&mut Cluster),
{
    run_open_loop_checked_on(
        EngineKind::Serial,
        opts,
        network,
        engine,
        clients,
        copts,
        make_source,
        prepare,
        check_convergence,
    )
    .expect("the serial engine has no rejectable configuration")
}

/// [`run_open_loop_checked`] on an explicit [`EngineKind`] — the entry
/// point of the serial-vs-parallel equivalence harness: run the same
/// workload on [`EngineKind::Parallel`] and on
/// [`EngineKind::SerialPartitioned`] with the same `workers`, and the two
/// recorded histories (and reports) must be identical.
#[allow(clippy::too_many_arguments)] // a deliberate flat harness entry point
pub fn run_open_loop_checked_on<F, P>(
    kind: EngineKind,
    opts: ClusterOptions,
    network: &NetworkModel,
    engine: &OpenLoopOptions,
    clients: usize,
    copts: ClientOptions,
    make_source: F,
    prepare: P,
    check_convergence: bool,
) -> Result<(OpenLoopReport, CheckReport), PdesError>
where
    F: Fn(u32) -> Box<dyn OpSource>,
    P: FnOnce(&mut Cluster),
{
    let mut check = CheckReport::default();
    let report = run_open_loop_on(
        kind,
        opts,
        network,
        engine,
        clients,
        copts,
        make_source,
        |cluster| {
            cluster.enable_history();
            prepare(cluster);
        },
        |cluster| {
            let history = cluster.take_history();
            check = checker::check_run(&history, cluster, check_convergence);
        },
    )?;
    Ok((report, check))
}

/// [`run_open_loop`] on the conservative parallel engine: the cluster's
/// nodes and clients are partitioned across `workers` threads (see
/// [`crate::partition`]), synchronized by lookahead windows derived from
/// the network model's minimum cross-partition delay. Bit-reproducible
/// per `(seed, workers)`; returns [`PdesError::DegenerateLookahead`] when
/// the latency model's support minimum is zero (e.g. exponential legs).
#[allow(clippy::too_many_arguments)] // a deliberate flat harness entry point
pub fn run_open_loop_parallel<F, P>(
    opts: ClusterOptions,
    network: &NetworkModel,
    engine: &OpenLoopOptions,
    clients: usize,
    copts: ClientOptions,
    workers: usize,
    make_source: F,
    prepare: P,
) -> Result<OpenLoopReport, PdesError>
where
    F: Fn(u32) -> Box<dyn OpSource>,
    P: FnOnce(&mut Cluster),
{
    run_open_loop_on(
        EngineKind::Parallel { workers },
        opts,
        network,
        engine,
        clients,
        copts,
        make_source,
        prepare,
        |_| {},
    )
}

/// [`run_open_loop`] with a `finish` hook that runs on the settled
/// cluster after the final drain — for harnesses that report node-level
/// stats (hints delivered, sync rounds, stored versions) alongside the
/// engine report.
#[allow(clippy::too_many_arguments)] // a deliberate flat harness entry point
pub fn run_open_loop_with<F, P, Q>(
    opts: ClusterOptions,
    network: &NetworkModel,
    engine: &OpenLoopOptions,
    clients: usize,
    copts: ClientOptions,
    make_source: F,
    prepare: P,
    finish: Q,
) -> OpenLoopReport
where
    F: Fn(u32) -> Box<dyn OpSource>,
    P: FnOnce(&mut Cluster),
    Q: FnOnce(&mut Cluster),
{
    run_open_loop_on(
        EngineKind::Serial,
        opts,
        network,
        engine,
        clients,
        copts,
        make_source,
        prepare,
        finish,
    )
    .expect("the serial engine has no rejectable configuration")
}

/// The engine-generic open-loop driver every entry point above lands on:
/// build a cluster on `kind`, run the windowed drain loop, fold the
/// report. The driver itself is engine-agnostic — drains happen at
/// `run_until` boundaries, which on the parallel engine are global
/// barriers, so the labelling, history, and detector plumbing is shared
/// verbatim between the serial and parallel paths.
#[allow(clippy::too_many_arguments)] // a deliberate flat harness entry point
pub fn run_open_loop_on<F, P, Q>(
    kind: EngineKind,
    opts: ClusterOptions,
    network: &NetworkModel,
    engine: &OpenLoopOptions,
    clients: usize,
    copts: ClientOptions,
    make_source: F,
    prepare: P,
    finish: Q,
) -> Result<OpenLoopReport, PdesError>
where
    F: Fn(u32) -> Box<dyn OpSource>,
    P: FnOnce(&mut Cluster),
    Q: FnOnce(&mut Cluster),
{
    assert!(clients >= 1);
    let mut cluster = Cluster::with_engine(opts, network.clone(), kind)?;
    prepare(&mut cluster);
    for i in 0..clients {
        cluster.add_client(make_source(i as u32), copts);
    }
    cluster.start_clients();

    let mut report = OpenLoopReport {
        windows: (0..engine.window_count())
            .map(|i| OpenWindow { start_ms: i as f64 * engine.window_ms, ..OpenWindow::default() })
            .collect(),
        sim_ms: engine.duration_ms,
        runs: 1,
        ..OpenLoopReport::default()
    };
    let last_window = report.windows.len() - 1;

    let mut next = engine.window_ms;
    let mut stopped = false;
    // One drain buffer for the whole run: window plumbing reuses its
    // capacity instead of allocating per window.
    let mut drain = WindowDrain::default();
    loop {
        let until = next.min(engine.duration_ms + engine.settle_ms);
        if until >= engine.duration_ms && !stopped {
            // Stop arrivals exactly at the workload end, then settle.
            cluster.drain_and_fold(
                SimTime::from_ms(engine.duration_ms),
                &mut report,
                engine.window_ms,
                last_window,
                &mut drain,
            );
            cluster.stop_clients();
            stopped = true;
        }
        cluster.drain_and_fold(
            SimTime::from_ms(until),
            &mut report,
            engine.window_ms,
            last_window,
            &mut drain,
        );
        if until >= engine.duration_ms + engine.settle_ms {
            break;
        }
        next += engine.window_ms;
    }

    let stats = cluster.client_stats();
    report.issued = stats.issued;
    report.shed = stats.shed;
    report.monotonic_violations = stats.monotonic_violations;
    report.ryw_violations = stats.ryw_violations;
    report.peak_in_flight = stats.peak_in_flight;
    report.detector = cluster.detector_stats();
    assert_eq!(stats.dropped_results, 0, "driver drained too rarely for the result buffers");
    report.write_latency.seal();
    report.read_latency.seal();
    finish(&mut cluster);
    Ok(report)
}

impl Cluster {
    /// [`Cluster::drain_window_into`] + fold into an [`OpenLoopReport`].
    fn drain_and_fold(
        &mut self,
        until: SimTime,
        report: &mut OpenLoopReport,
        window_ms: f64,
        last_window: usize,
        drain: &mut WindowDrain,
    ) {
        if until <= self.now() && self.now() > SimTime::ZERO {
            return; // boundary already drained
        }
        self.drain_window_into(until, drain);
        report.peak_pending_events =
            report.peak_pending_events.max(self.pending_events() as u64);
        drain.fold(window_ms, last_window, |idx, item| match item {
            WindowOp::Write(w) => {
                let win = &mut report.windows[idx];
                match w.commit {
                    Some(_) => {
                        win.writes += 1;
                        report.commits += 1;
                        let latency = (w.finish.expect("committed") - w.start).as_ms();
                        report.write_latency.record(latency);
                    }
                    None => {
                        win.failed_writes += 1;
                        report.failed_writes += 1;
                    }
                }
            }
            WindowOp::Read(r) => {
                let win = &mut report.windows[idx];
                match r.label {
                    Some(label) => {
                        win.reads += 1;
                        report.reads += 1;
                        if label.consistent {
                            win.consistent += 1;
                            report.consistent += 1;
                        } else {
                            report.versions_behind_total += label.versions_behind;
                        }
                        let latency = (r.op.finish.expect("labelled") - r.op.start).as_ms();
                        report.read_latency.record(latency);
                    }
                    None => {
                        win.incomplete_reads += 1;
                        report.incomplete_reads += 1;
                    }
                }
            }
        });
    }
}

/// Replicate an open-loop workload across `trials` independent runs
/// sharded over `threads` on the deterministic `pbs-mc` runner: shard `i`
/// seeds `seed ^ i`, run `j` of a shard derives `shard_seed ^ (j · φ64)`,
/// and reports merge in shard order — bit-reproducible for a fixed
/// `(seed, threads)` pair.
#[allow(clippy::too_many_arguments)] // a deliberate flat harness entry point
pub fn run_open_loop_sharded<F, P>(
    opts: ClusterOptions,
    network: &NetworkModel,
    engine: &OpenLoopOptions,
    clients: usize,
    copts: ClientOptions,
    trials: usize,
    threads: usize,
    make_source: F,
    prepare: P,
) -> OpenLoopReport
where
    F: Fn(u32, u64) -> Box<dyn OpSource> + Sync,
    P: Fn(&mut Cluster) + Sync,
{
    assert!(trials > 0 && threads > 0);
    Runner::new(trials, opts.seed, threads).run(|_rng, info| {
        let mut acc = OpenLoopReport::default();
        for j in 0..info.trials {
            let run_seed = info.seed ^ (j as u64).wrapping_mul(0x9e37_79b9_7f4a_7c15);
            let mut run_opts = opts;
            run_opts.seed = run_seed;
            acc.merge(run_open_loop(
                run_opts,
                network,
                engine,
                clients,
                copts,
                |client| make_source(client, run_seed),
                &prepare,
            ));
        }
        acc
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use pbs_core::ReplicaConfig;
    use pbs_dist::Exponential;
    use pbs_workload::{OpMix, OpStream, Poisson, UniformKeys};
    use std::sync::Arc;

    fn exp_net(w_rate: f64, ars_rate: f64) -> NetworkModel {
        NetworkModel::w_ars(
            Arc::new(Exponential::from_rate(w_rate)),
            Arc::new(Exponential::from_rate(ars_rate)),
        )
    }

    fn source(rate_per_sec: f64, keys: u64, read_frac: f64) -> Box<dyn OpSource> {
        Box::new(OpStream::new(
            Poisson::per_second(rate_per_sec),
            UniformKeys::new(keys),
            OpMix::new(read_frac),
            1,
        ))
    }

    fn small_opts(seed: u64) -> ClusterOptions {
        let mut o = ClusterOptions::validation(ReplicaConfig::new(3, 1, 1).unwrap(), seed);
        o.op_timeout_ms = 2_000.0;
        o
    }

    #[test]
    fn open_loop_reports_consistency_and_detector() {
        let engine = OpenLoopOptions::new(3_000.0, 500.0, 2_000.0);
        let report = run_open_loop(
            small_opts(9),
            &exp_net(0.05, 1.0),
            &engine,
            4,
            ClientOptions { op_timeout_ms: 2_000.0, ..ClientOptions::default() },
            |_| source(50.0, 4, 2.0 / 3.0),
            |_| {},
        );
        assert_eq!(report.runs, 1);
        assert!(report.issued > 400, "~600 ops expected, got {}", report.issued);
        assert_eq!(report.failed_writes, 0);
        assert_eq!(report.incomplete_reads, 0);
        assert_eq!(report.shed, 0);
        let rate = report.consistency_rate();
        assert!(rate > 0.3 && rate < 1.0, "consistency rate {rate}");
        // Detector bookkeeping is internally consistent.
        let d = report.detector;
        assert_eq!(d.flagged, d.true_positives + d.false_positives);
        let stale = report.reads - report.consistent;
        assert_eq!(stale as usize, d.true_positives + d.missed_stale);
        assert!(report.read_latency.count() == report.reads);
        assert_eq!(report.write_latency.count(), report.commits);
        // Per-window counts roll up to the totals.
        let by_window: u64 = report.windows.iter().map(|w| w.reads).sum();
        assert_eq!(by_window, report.reads);
    }

    #[test]
    fn sharded_open_loop_is_bit_reproducible() {
        let engine = OpenLoopOptions::new(1_000.0, 250.0, 1_000.0);
        let run = || {
            run_open_loop_sharded(
                small_opts(11),
                &exp_net(0.1, 0.5),
                &engine,
                2,
                ClientOptions { op_timeout_ms: 1_000.0, ..ClientOptions::default() },
                6,
                3,
                |_, run_seed| source(40.0 + (run_seed % 3) as f64, 4, 0.5),
                |_| {},
            )
        };
        let (a, b) = (run(), run());
        assert_eq!(a, b, "same (seed, threads) must be bit-identical");
        assert_eq!(a.runs, 6);
    }

    #[test]
    fn stopped_clients_resume_immediately_on_restart() {
        use pbs_sim::SimTime;
        let mut cluster = Cluster::new(small_opts(21), exp_net(0.5, 1.0));
        cluster.add_client(
            Box::new(OpStream::new(
                pbs_workload::FixedRate::new(10.0),
                UniformKeys::new(4),
                OpMix::new(0.5),
                1,
            )),
            ClientOptions { op_timeout_ms: 1_000.0, ..ClientOptions::default() },
        );
        cluster.start_clients();
        cluster.drain_window(SimTime::from_ms(500.0));
        let after_first = cluster.client_stats().issued;
        assert!(after_first >= 45, "~50 arrivals in 500ms, got {after_first}");
        cluster.stop_clients();
        // A long quiet gap: nothing should be generated.
        cluster.drain_window(SimTime::from_ms(5_000.0));
        let during_stop = cluster.client_stats().issued;
        assert!(during_stop <= after_first + 1, "stopped client kept generating");
        // Restart: arrivals must resume immediately, not replay the
        // consumed stream time as dead air.
        cluster.start_clients();
        cluster.drain_window(SimTime::from_ms(5_500.0));
        let after_restart = cluster.client_stats().issued;
        assert!(
            after_restart >= during_stop + 45,
            "restart should resume at full rate: {during_stop} -> {after_restart}"
        );
    }

    #[test]
    fn checked_fault_free_run_is_clean() {
        // The history checker must agree with the streaming machinery on
        // every count and find zero violations on a fault-free run — any
        // disagreement here is a checker (or engine) bug, not a fault.
        let engine = OpenLoopOptions::new(2_000.0, 500.0, 2_000.0);
        let (report, check) = run_open_loop_checked(
            small_opts(17),
            &exp_net(0.1, 0.5),
            &engine,
            4,
            ClientOptions { op_timeout_ms: 2_000.0, ..ClientOptions::default() },
            |_| source(40.0, 4, 0.5),
            |_| {},
            false,
        );
        assert!(check.is_clean(), "fault-free run failed cross-checks: {check:?}");
        assert!(check.sessions.agrees());
        assert_eq!(check.labels.mismatches, 0);
        assert_eq!(check.labels.labelled_reads, report.reads);
        assert_eq!(check.sessions.monotonic_violations, report.monotonic_violations);
        assert_eq!(check.sessions.ryw_violations, report.ryw_violations);
        assert_eq!(
            check.labels.stale_reads,
            report.reads - report.consistent,
            "offline staleness count must match the online one"
        );
    }

    #[test]
    fn strict_quorums_stay_consistent_under_open_loop_load() {
        let mut opts = ClusterOptions::validation(ReplicaConfig::new(3, 2, 2).unwrap(), 13);
        opts.op_timeout_ms = 2_000.0;
        let engine = OpenLoopOptions::new(2_000.0, 500.0, 2_000.0);
        let report = run_open_loop(
            opts,
            &exp_net(0.1, 0.5),
            &engine,
            8,
            ClientOptions { op_timeout_ms: 2_000.0, ..ClientOptions::default() },
            |_| source(25.0, 8, 0.6),
            |_| {},
        );
        assert!(report.reads > 100);
        assert_eq!(report.consistency_rate(), 1.0, "R+W>N must never go stale");
        assert_eq!(report.monotonic_violations, 0);
        assert_eq!(report.ryw_violations, 0);
    }
}
