//! # pbs-kvs — a Dynamo-style quorum-replicated key-value store
//!
//! The substrate for the paper's §5.2 validation: a faithful implementation
//! of the Dynamo replication protocol (§2.2) running on the deterministic
//! discrete-event simulator from `pbs-sim`, with per-message latencies drawn
//! from the same W/A/R/S distributions the paper injected into Cassandra.
//!
//! Implemented protocol surface:
//!
//! * **Coordinated quorum writes/reads** — a coordinator forwards each
//!   operation to all `N` replicas and answers the client after `W` acks
//!   (`R` responses), exactly as in Figure 1 of the paper. Replica sets
//!   come from a consistent-hashing [`ring`] with virtual nodes.
//! * **Expanding quorums** — replicas keep receiving the write after
//!   commit; reads race those deliveries, which is the entire source of
//!   staleness being studied.
//! * **Read repair** (§4.2) — optional; disabled for validation runs, as the
//!   paper disabled it in Cassandra.
//! * **Merkle-style anti-entropy** (§4.2) — optional periodic digest
//!   exchange (Cassandra's `nodetool repair` analogue).
//! * **Hinted handoff and failure injection** (§6 "Failure modes") — nodes
//!   crash and recover (optionally losing state), messages can be dropped,
//!   coordinators stash hints for unresponsive replicas.
//! * **Asynchronous staleness detection** (§4.3) — coordinators compare the
//!   `N − R` late read responses against the returned value and log
//!   potential staleness, with ground-truth labelling to measure the false
//!   positive rate.
//! * **Buggify fault injection** — a seed-driven [`buggify::FaultProfile`]
//!   installed on the [`NetworkModel`] drops, duplicates, reorders, and
//!   slows messages, lags replica disk applies, and skews per-node protocol
//!   clocks, all bit-reproducibly; the [`checker`] module replays recorded
//!   op histories as an independent oracle for the streaming session
//!   guarantees, the online staleness labels, and replica convergence.
//!
//! Ground-truth staleness comes from [`staleness::GroundTruth`]: the harness
//! records every commit (version, commit time) and labels every read against
//! the versions actually committed before it started — the oracle the paper
//! could only approximate with instrumentation.
//!
//! Two client paths drive the store:
//!
//! * **Blocking** — [`Cluster::write`]/[`Cluster::read`] serialise one
//!   operation at a time (the §5.2 probe shape used by
//!   [`experiments`]).
//! * **Open loop** — in-sim clients (one [`client::ClientTable`] per PDES
//!   worker) generate arrivals lazily from streaming `pbs-workload`
//!   sources and keep thousands of operations in flight;
//!   [`openloop::run_open_loop`] drives them window by window with online
//!   (watermark-based) staleness labelling and O(clients + in-flight)
//!   memory — about a cache line per client, so a single process sustains
//!   millions of them. See [`openloop`].

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod buggify;
pub mod checker;
pub mod client;
pub mod cluster;
pub mod experiments;
pub mod fxhash;
pub mod merkle;
pub mod messages;
pub mod network;
pub mod node;
pub mod openloop;
pub mod partition;
pub mod ring;
pub mod staleness;
pub mod version;

pub use buggify::{
    Delivery, FaultConfigError, FaultProfile, FaultSchedule, ProtocolMutations, ScheduleSegment,
};
pub use checker::{
    check_order, CheckReport, ConvergenceCheck, CrashRecord, KeyLinResult, KeyLinVerdict,
    LabelCheck, LinCheck, LinOptions, LinViolation, OpHistory, OrderCheck, OrderViolation,
    SessionCheck,
};
pub use client::{ClientOptions, ClientStats, ClientTable, CompletedOp, MAX_CLIENTS};
pub use cluster::{
    Cluster, ClusterOptions, DetectorStats, EngineKind, OpenRead, ReadOutcome, WindowDrain,
    WindowOp, WriteOutcome,
};
pub use network::{LinkFault, NetworkModel};
pub use node::DownTracker;
pub use openloop::{
    run_open_loop, run_open_loop_checked, run_open_loop_checked_on, run_open_loop_on,
    run_open_loop_parallel, run_open_loop_sharded, run_open_loop_with, OpenLoopOptions,
    OpenLoopReport, OpenWindow,
};
pub use partition::PartitionPlan;
pub use ring::Ring;
pub use version::{CausalOrder, VectorClock, Version};
