//! Virtual time: nanosecond-resolution instants and durations.
//!
//! Latencies throughout the workspace are `f64` milliseconds (matching the
//! paper's units); the simulator stores integer nanoseconds internally so
//! event ordering is exact and runs are bit-reproducible across platforms.

use std::fmt;
use std::ops::{Add, AddAssign, Sub};

/// Nanoseconds per millisecond.
const NANOS_PER_MS: f64 = 1_000_000.0;

/// A point in simulated time (nanoseconds since simulation start).
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub struct SimTime(u64);

impl SimTime {
    /// The simulation epoch.
    pub const ZERO: SimTime = SimTime(0);

    /// Largest representable instant.
    pub const MAX: SimTime = SimTime(u64::MAX);

    /// Construct from a millisecond offset (must be finite and nonnegative).
    pub fn from_ms(ms: f64) -> Self {
        assert!(ms >= 0.0 && ms.is_finite(), "time must be finite and nonnegative, got {ms}");
        SimTime((ms * NANOS_PER_MS).round() as u64)
    }

    /// Raw nanosecond count.
    pub fn as_nanos(self) -> u64 {
        self.0
    }

    /// Convert to milliseconds (lossless for times below ~2^53 ns ≈ 104
    /// simulated days, far beyond any experiment here).
    pub fn as_ms(self) -> f64 {
        self.0 as f64 / NANOS_PER_MS
    }

    /// Saturating difference `self − earlier`.
    pub fn duration_since(self, earlier: SimTime) -> SimDuration {
        SimDuration(self.0.saturating_sub(earlier.0))
    }
}

impl fmt::Display for SimTime {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{:.6}ms", self.as_ms())
    }
}

/// A span of simulated time.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub struct SimDuration(u64);

impl SimDuration {
    /// Zero-length duration.
    pub const ZERO: SimDuration = SimDuration(0);

    /// Construct from milliseconds (finite, nonnegative).
    pub fn from_ms(ms: f64) -> Self {
        assert!(ms >= 0.0 && ms.is_finite(), "duration must be finite and nonnegative, got {ms}");
        SimDuration((ms * NANOS_PER_MS).round() as u64)
    }

    /// Raw nanosecond count.
    pub fn as_nanos(self) -> u64 {
        self.0
    }

    /// Convert to milliseconds.
    pub fn as_ms(self) -> f64 {
        self.0 as f64 / NANOS_PER_MS
    }
}

impl Add<SimDuration> for SimTime {
    type Output = SimTime;
    fn add(self, rhs: SimDuration) -> SimTime {
        SimTime(self.0.checked_add(rhs.0).expect("simulated time overflow"))
    }
}

impl AddAssign<SimDuration> for SimTime {
    fn add_assign(&mut self, rhs: SimDuration) {
        *self = *self + rhs;
    }
}

impl Add for SimDuration {
    type Output = SimDuration;
    fn add(self, rhs: SimDuration) -> SimDuration {
        SimDuration(self.0.checked_add(rhs.0).expect("simulated duration overflow"))
    }
}

impl Sub for SimTime {
    type Output = SimDuration;
    fn sub(self, rhs: SimTime) -> SimDuration {
        assert!(self >= rhs, "negative duration: {self} - {rhs}");
        SimDuration(self.0 - rhs.0)
    }
}

/// A per-node clock running at a fixed rate relative to simulated time.
///
/// The simulator's clock is the global (true) time axis — the paper's
/// t-visibility and the staleness ground truth are defined on it. Real
/// deployments have no such axis: each node schedules its protocol
/// timers (hinted-handoff flushes, anti-entropy rounds, timeouts) on a
/// local clock that drifts. `SkewedClock` models that drift as a
/// constant rate: a clock with `rate > 1` runs fast, so a timer armed
/// for `local_ms` on it fires after only `local_ms / rate` of global
/// time.
///
/// The conversion is deliberately stateless (a pure rate, no offset):
/// fault injection derives each node's rate from a seed, keeping skewed
/// runs bit-reproducible.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct SkewedClock {
    rate: f64,
}

impl SkewedClock {
    /// A true clock (rate exactly 1): local and global time agree.
    pub const IDENTITY: SkewedClock = SkewedClock { rate: 1.0 };

    /// A clock running at `rate` × global time (must be finite and
    /// positive).
    pub fn with_rate(rate: f64) -> Self {
        assert!(rate.is_finite() && rate > 0.0, "clock rate must be finite and positive, got {rate}");
        SkewedClock { rate }
    }

    /// The clock's rate relative to global time.
    pub fn rate(self) -> f64 {
        self.rate
    }

    /// Whether this clock is exactly the identity (no skew).
    pub fn is_identity(self) -> bool {
        self.rate == 1.0
    }

    /// Global milliseconds until a timer armed for `local_ms` on this
    /// clock fires.
    pub fn global_delay_ms(self, local_ms: f64) -> f64 {
        local_ms / self.rate
    }

    /// Local milliseconds this clock shows elapsing over `global_ms` of
    /// global time.
    pub fn local_elapsed_ms(self, global_ms: f64) -> f64 {
        global_ms * self.rate
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn conversion_round_trip() {
        for ms in [0.0, 0.001, 1.0, 2.5, 1234.567, 1e9] {
            let t = SimTime::from_ms(ms);
            assert!((t.as_ms() - ms).abs() < 1e-6, "{ms}");
        }
    }

    #[test]
    fn ordering_is_exact() {
        // Nanosecond resolution: a 1 ns difference is preserved…
        let a = SimTime::from_ms(1.000001);
        let b = SimTime::from_ms(1.000002);
        assert!(a < b);
        // …while sub-nanosecond differences collapse (by design).
        assert_eq!(SimTime::from_ms(1.0000001), SimTime::from_ms(1.0000002));
        assert_eq!(SimTime::from_ms(2.0), SimTime::from_ms(2.0));
    }

    #[test]
    fn arithmetic() {
        let t = SimTime::from_ms(10.0) + SimDuration::from_ms(2.5);
        assert!((t.as_ms() - 12.5).abs() < 1e-9);
        let d = SimTime::from_ms(12.5) - SimTime::from_ms(10.0);
        assert!((d.as_ms() - 2.5).abs() < 1e-9);
        let mut t2 = SimTime::ZERO;
        t2 += SimDuration::from_ms(1.0);
        assert_eq!(t2, SimTime::from_ms(1.0));
    }

    #[test]
    fn duration_since_saturates() {
        let early = SimTime::from_ms(1.0);
        let late = SimTime::from_ms(2.0);
        assert_eq!(early.duration_since(late), SimDuration::ZERO);
        assert!((late.duration_since(early).as_ms() - 1.0).abs() < 1e-9);
    }

    #[test]
    #[should_panic(expected = "nonnegative")]
    fn negative_time_rejected() {
        let _ = SimTime::from_ms(-1.0);
    }

    #[test]
    #[should_panic(expected = "negative duration")]
    fn backwards_subtraction_panics() {
        let _ = SimTime::from_ms(1.0) - SimTime::from_ms(2.0);
    }

    #[test]
    fn skewed_clock_round_trips() {
        let fast = SkewedClock::with_rate(1.25);
        // A fast clock fires its timers early in global time…
        assert!((fast.global_delay_ms(100.0) - 80.0).abs() < 1e-12);
        // …and sees more local time elapse per global millisecond.
        assert!((fast.local_elapsed_ms(80.0) - 100.0).abs() < 1e-12);
        let slow = SkewedClock::with_rate(0.5);
        assert!((slow.global_delay_ms(50.0) - 100.0).abs() < 1e-12);
        // Round trip: local → global → local is the identity.
        for rate in [0.9, 1.0, 1.013, 2.0] {
            let c = SkewedClock::with_rate(rate);
            let back = c.local_elapsed_ms(c.global_delay_ms(7.5));
            assert!((back - 7.5).abs() < 1e-12, "rate {rate}");
        }
    }

    #[test]
    fn skewed_clock_identity() {
        assert!(SkewedClock::IDENTITY.is_identity());
        assert_eq!(SkewedClock::IDENTITY.global_delay_ms(42.0), 42.0);
        assert!(!SkewedClock::with_rate(1.001).is_identity());
    }

    #[test]
    #[should_panic(expected = "finite and positive")]
    fn zero_rate_clock_rejected() {
        let _ = SkewedClock::with_rate(0.0);
    }
}
